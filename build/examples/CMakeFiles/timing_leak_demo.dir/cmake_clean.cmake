file(REMOVE_RECURSE
  "CMakeFiles/timing_leak_demo.dir/timing_leak_demo.cpp.o"
  "CMakeFiles/timing_leak_demo.dir/timing_leak_demo.cpp.o.d"
  "timing_leak_demo"
  "timing_leak_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_leak_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
