# Empty compiler generated dependencies file for timing_leak_demo.
# This may be replaced when dependencies are built.
