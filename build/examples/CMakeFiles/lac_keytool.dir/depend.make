# Empty dependencies file for lac_keytool.
# This may be replaced when dependencies are built.
