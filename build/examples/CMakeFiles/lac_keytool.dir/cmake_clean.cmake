file(REMOVE_RECURSE
  "CMakeFiles/lac_keytool.dir/lac_keytool.cpp.o"
  "CMakeFiles/lac_keytool.dir/lac_keytool.cpp.o.d"
  "lac_keytool"
  "lac_keytool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lac_keytool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
