file(REMOVE_RECURSE
  "CMakeFiles/secure_message.dir/secure_message.cpp.o"
  "CMakeFiles/secure_message.dir/secure_message.cpp.o.d"
  "secure_message"
  "secure_message.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_message.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
