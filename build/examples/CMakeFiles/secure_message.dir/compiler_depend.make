# Empty compiler generated dependencies file for secure_message.
# This may be replaced when dependencies are built.
