file(REMOVE_RECURSE
  "CMakeFiles/accelerator_tour.dir/accelerator_tour.cpp.o"
  "CMakeFiles/accelerator_tour.dir/accelerator_tour.cpp.o.d"
  "accelerator_tour"
  "accelerator_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerator_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
