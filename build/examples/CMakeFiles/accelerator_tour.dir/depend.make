# Empty dependencies file for accelerator_tour.
# This may be replaced when dependencies are built.
