file(REMOVE_RECURSE
  "CMakeFiles/riscv_playground.dir/riscv_playground.cpp.o"
  "CMakeFiles/riscv_playground.dir/riscv_playground.cpp.o.d"
  "riscv_playground"
  "riscv_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riscv_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
