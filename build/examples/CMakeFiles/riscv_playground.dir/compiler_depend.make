# Empty compiler generated dependencies file for riscv_playground.
# This may be replaced when dependencies are built.
