file(REMOVE_RECURSE
  "CMakeFiles/isa_extension_demo.dir/isa_extension_demo.cpp.o"
  "CMakeFiles/isa_extension_demo.dir/isa_extension_demo.cpp.o.d"
  "isa_extension_demo"
  "isa_extension_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_extension_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
