# Empty dependencies file for wave_dump.
# This may be replaced when dependencies are built.
