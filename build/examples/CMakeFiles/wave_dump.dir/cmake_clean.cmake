file(REMOVE_RECURSE
  "CMakeFiles/wave_dump.dir/wave_dump.cpp.o"
  "CMakeFiles/wave_dump.dir/wave_dump.cpp.o.d"
  "wave_dump"
  "wave_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
