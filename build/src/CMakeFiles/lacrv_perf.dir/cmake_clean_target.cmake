file(REMOVE_RECURSE
  "liblacrv_perf.a"
)
