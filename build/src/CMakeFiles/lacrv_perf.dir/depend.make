# Empty dependencies file for lacrv_perf.
# This may be replaced when dependencies are built.
