file(REMOVE_RECURSE
  "CMakeFiles/lacrv_perf.dir/perf/iss_bch.cpp.o"
  "CMakeFiles/lacrv_perf.dir/perf/iss_bch.cpp.o.d"
  "CMakeFiles/lacrv_perf.dir/perf/iss_kernels.cpp.o"
  "CMakeFiles/lacrv_perf.dir/perf/iss_kernels.cpp.o.d"
  "CMakeFiles/lacrv_perf.dir/perf/rtl_backend.cpp.o"
  "CMakeFiles/lacrv_perf.dir/perf/rtl_backend.cpp.o.d"
  "CMakeFiles/lacrv_perf.dir/perf/tables.cpp.o"
  "CMakeFiles/lacrv_perf.dir/perf/tables.cpp.o.d"
  "liblacrv_perf.a"
  "liblacrv_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lacrv_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
