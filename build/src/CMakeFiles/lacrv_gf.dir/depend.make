# Empty dependencies file for lacrv_gf.
# This may be replaced when dependencies are built.
