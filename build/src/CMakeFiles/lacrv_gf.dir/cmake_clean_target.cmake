file(REMOVE_RECURSE
  "liblacrv_gf.a"
)
