file(REMOVE_RECURSE
  "CMakeFiles/lacrv_gf.dir/gf/gf512.cpp.o"
  "CMakeFiles/lacrv_gf.dir/gf/gf512.cpp.o.d"
  "liblacrv_gf.a"
  "liblacrv_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lacrv_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
