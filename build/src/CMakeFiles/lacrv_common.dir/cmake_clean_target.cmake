file(REMOVE_RECURSE
  "liblacrv_common.a"
)
