# Empty compiler generated dependencies file for lacrv_common.
# This may be replaced when dependencies are built.
