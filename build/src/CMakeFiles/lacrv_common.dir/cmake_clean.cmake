file(REMOVE_RECURSE
  "CMakeFiles/lacrv_common.dir/common/rng.cpp.o"
  "CMakeFiles/lacrv_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/lacrv_common.dir/common/types.cpp.o"
  "CMakeFiles/lacrv_common.dir/common/types.cpp.o.d"
  "liblacrv_common.a"
  "liblacrv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lacrv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
