
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/area.cpp" "src/CMakeFiles/lacrv_rtl.dir/rtl/area.cpp.o" "gcc" "src/CMakeFiles/lacrv_rtl.dir/rtl/area.cpp.o.d"
  "/root/repo/src/rtl/barrett_unit.cpp" "src/CMakeFiles/lacrv_rtl.dir/rtl/barrett_unit.cpp.o" "gcc" "src/CMakeFiles/lacrv_rtl.dir/rtl/barrett_unit.cpp.o.d"
  "/root/repo/src/rtl/chien_unit.cpp" "src/CMakeFiles/lacrv_rtl.dir/rtl/chien_unit.cpp.o" "gcc" "src/CMakeFiles/lacrv_rtl.dir/rtl/chien_unit.cpp.o.d"
  "/root/repo/src/rtl/gf_mul.cpp" "src/CMakeFiles/lacrv_rtl.dir/rtl/gf_mul.cpp.o" "gcc" "src/CMakeFiles/lacrv_rtl.dir/rtl/gf_mul.cpp.o.d"
  "/root/repo/src/rtl/mul_ter.cpp" "src/CMakeFiles/lacrv_rtl.dir/rtl/mul_ter.cpp.o" "gcc" "src/CMakeFiles/lacrv_rtl.dir/rtl/mul_ter.cpp.o.d"
  "/root/repo/src/rtl/sha256_core.cpp" "src/CMakeFiles/lacrv_rtl.dir/rtl/sha256_core.cpp.o" "gcc" "src/CMakeFiles/lacrv_rtl.dir/rtl/sha256_core.cpp.o.d"
  "/root/repo/src/rtl/trace.cpp" "src/CMakeFiles/lacrv_rtl.dir/rtl/trace.cpp.o" "gcc" "src/CMakeFiles/lacrv_rtl.dir/rtl/trace.cpp.o.d"
  "/root/repo/src/rtl/vcd.cpp" "src/CMakeFiles/lacrv_rtl.dir/rtl/vcd.cpp.o" "gcc" "src/CMakeFiles/lacrv_rtl.dir/rtl/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lacrv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
