file(REMOVE_RECURSE
  "liblacrv_rtl.a"
)
