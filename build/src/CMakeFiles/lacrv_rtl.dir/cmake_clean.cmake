file(REMOVE_RECURSE
  "CMakeFiles/lacrv_rtl.dir/rtl/area.cpp.o"
  "CMakeFiles/lacrv_rtl.dir/rtl/area.cpp.o.d"
  "CMakeFiles/lacrv_rtl.dir/rtl/barrett_unit.cpp.o"
  "CMakeFiles/lacrv_rtl.dir/rtl/barrett_unit.cpp.o.d"
  "CMakeFiles/lacrv_rtl.dir/rtl/chien_unit.cpp.o"
  "CMakeFiles/lacrv_rtl.dir/rtl/chien_unit.cpp.o.d"
  "CMakeFiles/lacrv_rtl.dir/rtl/gf_mul.cpp.o"
  "CMakeFiles/lacrv_rtl.dir/rtl/gf_mul.cpp.o.d"
  "CMakeFiles/lacrv_rtl.dir/rtl/mul_ter.cpp.o"
  "CMakeFiles/lacrv_rtl.dir/rtl/mul_ter.cpp.o.d"
  "CMakeFiles/lacrv_rtl.dir/rtl/sha256_core.cpp.o"
  "CMakeFiles/lacrv_rtl.dir/rtl/sha256_core.cpp.o.d"
  "CMakeFiles/lacrv_rtl.dir/rtl/trace.cpp.o"
  "CMakeFiles/lacrv_rtl.dir/rtl/trace.cpp.o.d"
  "CMakeFiles/lacrv_rtl.dir/rtl/vcd.cpp.o"
  "CMakeFiles/lacrv_rtl.dir/rtl/vcd.cpp.o.d"
  "liblacrv_rtl.a"
  "liblacrv_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lacrv_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
