# Empty dependencies file for lacrv_rtl.
# This may be replaced when dependencies are built.
