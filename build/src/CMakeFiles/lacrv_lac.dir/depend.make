# Empty dependencies file for lacrv_lac.
# This may be replaced when dependencies are built.
