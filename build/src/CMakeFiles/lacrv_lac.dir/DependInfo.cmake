
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lac/backend.cpp" "src/CMakeFiles/lacrv_lac.dir/lac/backend.cpp.o" "gcc" "src/CMakeFiles/lacrv_lac.dir/lac/backend.cpp.o.d"
  "/root/repo/src/lac/codec.cpp" "src/CMakeFiles/lacrv_lac.dir/lac/codec.cpp.o" "gcc" "src/CMakeFiles/lacrv_lac.dir/lac/codec.cpp.o.d"
  "/root/repo/src/lac/gen_a.cpp" "src/CMakeFiles/lacrv_lac.dir/lac/gen_a.cpp.o" "gcc" "src/CMakeFiles/lacrv_lac.dir/lac/gen_a.cpp.o.d"
  "/root/repo/src/lac/kem.cpp" "src/CMakeFiles/lacrv_lac.dir/lac/kem.cpp.o" "gcc" "src/CMakeFiles/lacrv_lac.dir/lac/kem.cpp.o.d"
  "/root/repo/src/lac/nist_api.cpp" "src/CMakeFiles/lacrv_lac.dir/lac/nist_api.cpp.o" "gcc" "src/CMakeFiles/lacrv_lac.dir/lac/nist_api.cpp.o.d"
  "/root/repo/src/lac/params.cpp" "src/CMakeFiles/lacrv_lac.dir/lac/params.cpp.o" "gcc" "src/CMakeFiles/lacrv_lac.dir/lac/params.cpp.o.d"
  "/root/repo/src/lac/pke.cpp" "src/CMakeFiles/lacrv_lac.dir/lac/pke.cpp.o" "gcc" "src/CMakeFiles/lacrv_lac.dir/lac/pke.cpp.o.d"
  "/root/repo/src/lac/sampler.cpp" "src/CMakeFiles/lacrv_lac.dir/lac/sampler.cpp.o" "gcc" "src/CMakeFiles/lacrv_lac.dir/lac/sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lacrv_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_bch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
