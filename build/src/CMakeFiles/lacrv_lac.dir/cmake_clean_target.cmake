file(REMOVE_RECURSE
  "liblacrv_lac.a"
)
