file(REMOVE_RECURSE
  "CMakeFiles/lacrv_lac.dir/lac/backend.cpp.o"
  "CMakeFiles/lacrv_lac.dir/lac/backend.cpp.o.d"
  "CMakeFiles/lacrv_lac.dir/lac/codec.cpp.o"
  "CMakeFiles/lacrv_lac.dir/lac/codec.cpp.o.d"
  "CMakeFiles/lacrv_lac.dir/lac/gen_a.cpp.o"
  "CMakeFiles/lacrv_lac.dir/lac/gen_a.cpp.o.d"
  "CMakeFiles/lacrv_lac.dir/lac/kem.cpp.o"
  "CMakeFiles/lacrv_lac.dir/lac/kem.cpp.o.d"
  "CMakeFiles/lacrv_lac.dir/lac/nist_api.cpp.o"
  "CMakeFiles/lacrv_lac.dir/lac/nist_api.cpp.o.d"
  "CMakeFiles/lacrv_lac.dir/lac/params.cpp.o"
  "CMakeFiles/lacrv_lac.dir/lac/params.cpp.o.d"
  "CMakeFiles/lacrv_lac.dir/lac/pke.cpp.o"
  "CMakeFiles/lacrv_lac.dir/lac/pke.cpp.o.d"
  "CMakeFiles/lacrv_lac.dir/lac/sampler.cpp.o"
  "CMakeFiles/lacrv_lac.dir/lac/sampler.cpp.o.d"
  "liblacrv_lac.a"
  "liblacrv_lac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lacrv_lac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
