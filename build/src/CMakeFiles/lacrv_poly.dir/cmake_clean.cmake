file(REMOVE_RECURSE
  "CMakeFiles/lacrv_poly.dir/poly/karatsuba.cpp.o"
  "CMakeFiles/lacrv_poly.dir/poly/karatsuba.cpp.o.d"
  "CMakeFiles/lacrv_poly.dir/poly/ring.cpp.o"
  "CMakeFiles/lacrv_poly.dir/poly/ring.cpp.o.d"
  "CMakeFiles/lacrv_poly.dir/poly/split_mul.cpp.o"
  "CMakeFiles/lacrv_poly.dir/poly/split_mul.cpp.o.d"
  "liblacrv_poly.a"
  "liblacrv_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lacrv_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
