file(REMOVE_RECURSE
  "liblacrv_poly.a"
)
