# Empty compiler generated dependencies file for lacrv_poly.
# This may be replaced when dependencies are built.
