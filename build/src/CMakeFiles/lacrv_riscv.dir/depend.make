# Empty dependencies file for lacrv_riscv.
# This may be replaced when dependencies are built.
