file(REMOVE_RECURSE
  "CMakeFiles/lacrv_riscv.dir/riscv/assembler.cpp.o"
  "CMakeFiles/lacrv_riscv.dir/riscv/assembler.cpp.o.d"
  "CMakeFiles/lacrv_riscv.dir/riscv/compressed.cpp.o"
  "CMakeFiles/lacrv_riscv.dir/riscv/compressed.cpp.o.d"
  "CMakeFiles/lacrv_riscv.dir/riscv/cpu.cpp.o"
  "CMakeFiles/lacrv_riscv.dir/riscv/cpu.cpp.o.d"
  "CMakeFiles/lacrv_riscv.dir/riscv/encoding.cpp.o"
  "CMakeFiles/lacrv_riscv.dir/riscv/encoding.cpp.o.d"
  "CMakeFiles/lacrv_riscv.dir/riscv/pq_alu.cpp.o"
  "CMakeFiles/lacrv_riscv.dir/riscv/pq_alu.cpp.o.d"
  "CMakeFiles/lacrv_riscv.dir/riscv/soc.cpp.o"
  "CMakeFiles/lacrv_riscv.dir/riscv/soc.cpp.o.d"
  "liblacrv_riscv.a"
  "liblacrv_riscv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lacrv_riscv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
