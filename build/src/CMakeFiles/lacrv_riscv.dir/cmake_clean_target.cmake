file(REMOVE_RECURSE
  "liblacrv_riscv.a"
)
