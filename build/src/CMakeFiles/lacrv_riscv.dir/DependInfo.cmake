
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/riscv/assembler.cpp" "src/CMakeFiles/lacrv_riscv.dir/riscv/assembler.cpp.o" "gcc" "src/CMakeFiles/lacrv_riscv.dir/riscv/assembler.cpp.o.d"
  "/root/repo/src/riscv/compressed.cpp" "src/CMakeFiles/lacrv_riscv.dir/riscv/compressed.cpp.o" "gcc" "src/CMakeFiles/lacrv_riscv.dir/riscv/compressed.cpp.o.d"
  "/root/repo/src/riscv/cpu.cpp" "src/CMakeFiles/lacrv_riscv.dir/riscv/cpu.cpp.o" "gcc" "src/CMakeFiles/lacrv_riscv.dir/riscv/cpu.cpp.o.d"
  "/root/repo/src/riscv/encoding.cpp" "src/CMakeFiles/lacrv_riscv.dir/riscv/encoding.cpp.o" "gcc" "src/CMakeFiles/lacrv_riscv.dir/riscv/encoding.cpp.o.d"
  "/root/repo/src/riscv/pq_alu.cpp" "src/CMakeFiles/lacrv_riscv.dir/riscv/pq_alu.cpp.o" "gcc" "src/CMakeFiles/lacrv_riscv.dir/riscv/pq_alu.cpp.o.d"
  "/root/repo/src/riscv/soc.cpp" "src/CMakeFiles/lacrv_riscv.dir/riscv/soc.cpp.o" "gcc" "src/CMakeFiles/lacrv_riscv.dir/riscv/soc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lacrv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
