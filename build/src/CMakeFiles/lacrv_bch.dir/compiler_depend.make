# Empty compiler generated dependencies file for lacrv_bch.
# This may be replaced when dependencies are built.
