
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bch/berlekamp.cpp" "src/CMakeFiles/lacrv_bch.dir/bch/berlekamp.cpp.o" "gcc" "src/CMakeFiles/lacrv_bch.dir/bch/berlekamp.cpp.o.d"
  "/root/repo/src/bch/chien.cpp" "src/CMakeFiles/lacrv_bch.dir/bch/chien.cpp.o" "gcc" "src/CMakeFiles/lacrv_bch.dir/bch/chien.cpp.o.d"
  "/root/repo/src/bch/code.cpp" "src/CMakeFiles/lacrv_bch.dir/bch/code.cpp.o" "gcc" "src/CMakeFiles/lacrv_bch.dir/bch/code.cpp.o.d"
  "/root/repo/src/bch/decoder.cpp" "src/CMakeFiles/lacrv_bch.dir/bch/decoder.cpp.o" "gcc" "src/CMakeFiles/lacrv_bch.dir/bch/decoder.cpp.o.d"
  "/root/repo/src/bch/encoder.cpp" "src/CMakeFiles/lacrv_bch.dir/bch/encoder.cpp.o" "gcc" "src/CMakeFiles/lacrv_bch.dir/bch/encoder.cpp.o.d"
  "/root/repo/src/bch/syndrome.cpp" "src/CMakeFiles/lacrv_bch.dir/bch/syndrome.cpp.o" "gcc" "src/CMakeFiles/lacrv_bch.dir/bch/syndrome.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lacrv_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
