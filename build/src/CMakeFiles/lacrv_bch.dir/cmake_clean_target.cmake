file(REMOVE_RECURSE
  "liblacrv_bch.a"
)
