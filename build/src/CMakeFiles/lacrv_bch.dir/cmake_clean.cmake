file(REMOVE_RECURSE
  "CMakeFiles/lacrv_bch.dir/bch/berlekamp.cpp.o"
  "CMakeFiles/lacrv_bch.dir/bch/berlekamp.cpp.o.d"
  "CMakeFiles/lacrv_bch.dir/bch/chien.cpp.o"
  "CMakeFiles/lacrv_bch.dir/bch/chien.cpp.o.d"
  "CMakeFiles/lacrv_bch.dir/bch/code.cpp.o"
  "CMakeFiles/lacrv_bch.dir/bch/code.cpp.o.d"
  "CMakeFiles/lacrv_bch.dir/bch/decoder.cpp.o"
  "CMakeFiles/lacrv_bch.dir/bch/decoder.cpp.o.d"
  "CMakeFiles/lacrv_bch.dir/bch/encoder.cpp.o"
  "CMakeFiles/lacrv_bch.dir/bch/encoder.cpp.o.d"
  "CMakeFiles/lacrv_bch.dir/bch/syndrome.cpp.o"
  "CMakeFiles/lacrv_bch.dir/bch/syndrome.cpp.o.d"
  "liblacrv_bch.a"
  "liblacrv_bch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lacrv_bch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
