# Empty dependencies file for lacrv_hash.
# This may be replaced when dependencies are built.
