file(REMOVE_RECURSE
  "liblacrv_hash.a"
)
