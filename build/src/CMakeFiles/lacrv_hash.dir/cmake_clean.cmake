file(REMOVE_RECURSE
  "CMakeFiles/lacrv_hash.dir/hash/keccak.cpp.o"
  "CMakeFiles/lacrv_hash.dir/hash/keccak.cpp.o.d"
  "CMakeFiles/lacrv_hash.dir/hash/prg.cpp.o"
  "CMakeFiles/lacrv_hash.dir/hash/prg.cpp.o.d"
  "CMakeFiles/lacrv_hash.dir/hash/sha256.cpp.o"
  "CMakeFiles/lacrv_hash.dir/hash/sha256.cpp.o.d"
  "liblacrv_hash.a"
  "liblacrv_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lacrv_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
