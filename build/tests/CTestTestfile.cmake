# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sha256_test[1]_include.cmake")
include("/root/repo/build/tests/prg_test[1]_include.cmake")
include("/root/repo/build/tests/gf512_test[1]_include.cmake")
include("/root/repo/build/tests/poly_test[1]_include.cmake")
include("/root/repo/build/tests/bch_test[1]_include.cmake")
include("/root/repo/build/tests/lac_test[1]_include.cmake")
include("/root/repo/build/tests/rtl_test[1]_include.cmake")
include("/root/repo/build/tests/riscv_test[1]_include.cmake")
include("/root/repo/build/tests/perf_test[1]_include.cmake")
include("/root/repo/build/tests/leakage_test[1]_include.cmake")
include("/root/repo/build/tests/compressed_test[1]_include.cmake")
include("/root/repo/build/tests/kat_test[1]_include.cmake")
include("/root/repo/build/tests/bch_property_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_property_test[1]_include.cmake")
include("/root/repo/build/tests/gf_exhaustive_test[1]_include.cmake")
include("/root/repo/build/tests/lac_edge_test[1]_include.cmake")
include("/root/repo/build/tests/keccak_test[1]_include.cmake")
include("/root/repo/build/tests/soc_test[1]_include.cmake")
include("/root/repo/build/tests/vcd_test[1]_include.cmake")
include("/root/repo/build/tests/iss_bch_test[1]_include.cmake")
include("/root/repo/build/tests/nist_api_test[1]_include.cmake")
include("/root/repo/build/tests/lac_shake_test[1]_include.cmake")
include("/root/repo/build/tests/costs_test[1]_include.cmake")
include("/root/repo/build/tests/ledger_sections_test[1]_include.cmake")
