file(REMOVE_RECURSE
  "CMakeFiles/iss_bch_test.dir/iss_bch_test.cpp.o"
  "CMakeFiles/iss_bch_test.dir/iss_bch_test.cpp.o.d"
  "iss_bch_test"
  "iss_bch_test.pdb"
  "iss_bch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iss_bch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
