# Empty dependencies file for iss_bch_test.
# This may be replaced when dependencies are built.
