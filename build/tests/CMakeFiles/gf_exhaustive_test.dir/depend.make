# Empty dependencies file for gf_exhaustive_test.
# This may be replaced when dependencies are built.
