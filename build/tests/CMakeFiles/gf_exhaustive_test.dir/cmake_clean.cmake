file(REMOVE_RECURSE
  "CMakeFiles/gf_exhaustive_test.dir/gf_exhaustive_test.cpp.o"
  "CMakeFiles/gf_exhaustive_test.dir/gf_exhaustive_test.cpp.o.d"
  "gf_exhaustive_test"
  "gf_exhaustive_test.pdb"
  "gf_exhaustive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf_exhaustive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
