file(REMOVE_RECURSE
  "CMakeFiles/prg_test.dir/prg_test.cpp.o"
  "CMakeFiles/prg_test.dir/prg_test.cpp.o.d"
  "prg_test"
  "prg_test.pdb"
  "prg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
