# Empty compiler generated dependencies file for gf512_test.
# This may be replaced when dependencies are built.
