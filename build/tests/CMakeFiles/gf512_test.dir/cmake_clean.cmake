file(REMOVE_RECURSE
  "CMakeFiles/gf512_test.dir/gf512_test.cpp.o"
  "CMakeFiles/gf512_test.dir/gf512_test.cpp.o.d"
  "gf512_test"
  "gf512_test.pdb"
  "gf512_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf512_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
