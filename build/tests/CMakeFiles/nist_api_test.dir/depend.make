# Empty dependencies file for nist_api_test.
# This may be replaced when dependencies are built.
