file(REMOVE_RECURSE
  "CMakeFiles/nist_api_test.dir/nist_api_test.cpp.o"
  "CMakeFiles/nist_api_test.dir/nist_api_test.cpp.o.d"
  "nist_api_test"
  "nist_api_test.pdb"
  "nist_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nist_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
