file(REMOVE_RECURSE
  "CMakeFiles/bch_property_test.dir/bch_property_test.cpp.o"
  "CMakeFiles/bch_property_test.dir/bch_property_test.cpp.o.d"
  "bch_property_test"
  "bch_property_test.pdb"
  "bch_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bch_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
