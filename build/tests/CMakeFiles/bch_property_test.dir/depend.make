# Empty dependencies file for bch_property_test.
# This may be replaced when dependencies are built.
