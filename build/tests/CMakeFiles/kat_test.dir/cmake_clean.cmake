file(REMOVE_RECURSE
  "CMakeFiles/kat_test.dir/kat_test.cpp.o"
  "CMakeFiles/kat_test.dir/kat_test.cpp.o.d"
  "kat_test"
  "kat_test.pdb"
  "kat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
