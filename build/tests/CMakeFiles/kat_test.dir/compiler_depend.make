# Empty compiler generated dependencies file for kat_test.
# This may be replaced when dependencies are built.
