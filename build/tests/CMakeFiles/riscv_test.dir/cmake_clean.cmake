file(REMOVE_RECURSE
  "CMakeFiles/riscv_test.dir/riscv_test.cpp.o"
  "CMakeFiles/riscv_test.dir/riscv_test.cpp.o.d"
  "riscv_test"
  "riscv_test.pdb"
  "riscv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riscv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
