# Empty dependencies file for ledger_sections_test.
# This may be replaced when dependencies are built.
