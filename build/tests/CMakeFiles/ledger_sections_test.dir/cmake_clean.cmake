file(REMOVE_RECURSE
  "CMakeFiles/ledger_sections_test.dir/ledger_sections_test.cpp.o"
  "CMakeFiles/ledger_sections_test.dir/ledger_sections_test.cpp.o.d"
  "ledger_sections_test"
  "ledger_sections_test.pdb"
  "ledger_sections_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ledger_sections_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
