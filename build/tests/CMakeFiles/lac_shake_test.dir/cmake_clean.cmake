file(REMOVE_RECURSE
  "CMakeFiles/lac_shake_test.dir/lac_shake_test.cpp.o"
  "CMakeFiles/lac_shake_test.dir/lac_shake_test.cpp.o.d"
  "lac_shake_test"
  "lac_shake_test.pdb"
  "lac_shake_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lac_shake_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
