# Empty dependencies file for lac_shake_test.
# This may be replaced when dependencies are built.
