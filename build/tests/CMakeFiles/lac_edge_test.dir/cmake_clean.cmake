file(REMOVE_RECURSE
  "CMakeFiles/lac_edge_test.dir/lac_edge_test.cpp.o"
  "CMakeFiles/lac_edge_test.dir/lac_edge_test.cpp.o.d"
  "lac_edge_test"
  "lac_edge_test.pdb"
  "lac_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lac_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
