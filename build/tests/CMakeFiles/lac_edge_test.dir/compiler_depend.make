# Empty compiler generated dependencies file for lac_edge_test.
# This may be replaced when dependencies are built.
