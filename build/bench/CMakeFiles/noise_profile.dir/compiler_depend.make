# Empty compiler generated dependencies file for noise_profile.
# This may be replaced when dependencies are built.
