
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/noise_profile.cpp" "bench/CMakeFiles/noise_profile.dir/noise_profile.cpp.o" "gcc" "bench/CMakeFiles/noise_profile.dir/noise_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lacrv_lac.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_bch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
