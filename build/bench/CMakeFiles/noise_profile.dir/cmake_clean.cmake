file(REMOVE_RECURSE
  "CMakeFiles/noise_profile.dir/noise_profile.cpp.o"
  "CMakeFiles/noise_profile.dir/noise_profile.cpp.o.d"
  "noise_profile"
  "noise_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
