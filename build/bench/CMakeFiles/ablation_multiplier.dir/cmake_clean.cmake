file(REMOVE_RECURSE
  "CMakeFiles/ablation_multiplier.dir/ablation_multiplier.cpp.o"
  "CMakeFiles/ablation_multiplier.dir/ablation_multiplier.cpp.o.d"
  "ablation_multiplier"
  "ablation_multiplier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multiplier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
