file(REMOVE_RECURSE
  "CMakeFiles/table1_bch_timing.dir/table1_bch_timing.cpp.o"
  "CMakeFiles/table1_bch_timing.dir/table1_bch_timing.cpp.o.d"
  "table1_bch_timing"
  "table1_bch_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_bch_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
