# Empty compiler generated dependencies file for table1_bch_timing.
# This may be replaced when dependencies are built.
