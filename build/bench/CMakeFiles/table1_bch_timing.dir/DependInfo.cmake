
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_bch_timing.cpp" "bench/CMakeFiles/table1_bch_timing.dir/table1_bch_timing.cpp.o" "gcc" "bench/CMakeFiles/table1_bch_timing.dir/table1_bch_timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lacrv_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_lac.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_bch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_riscv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacrv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
