file(REMOVE_RECURSE
  "CMakeFiles/ablation_keccak.dir/ablation_keccak.cpp.o"
  "CMakeFiles/ablation_keccak.dir/ablation_keccak.cpp.o.d"
  "ablation_keccak"
  "ablation_keccak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_keccak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
