# Empty compiler generated dependencies file for ablation_keccak.
# This may be replaced when dependencies are built.
