file(REMOVE_RECURSE
  "CMakeFiles/ablation_chien.dir/ablation_chien.cpp.o"
  "CMakeFiles/ablation_chien.dir/ablation_chien.cpp.o.d"
  "ablation_chien"
  "ablation_chien.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chien.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
