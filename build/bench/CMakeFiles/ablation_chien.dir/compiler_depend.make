# Empty compiler generated dependencies file for ablation_chien.
# This may be replaced when dependencies are built.
