file(REMOVE_RECURSE
  "CMakeFiles/ablation_karatsuba.dir/ablation_karatsuba.cpp.o"
  "CMakeFiles/ablation_karatsuba.dir/ablation_karatsuba.cpp.o.d"
  "ablation_karatsuba"
  "ablation_karatsuba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_karatsuba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
