# Empty compiler generated dependencies file for ablation_karatsuba.
# This may be replaced when dependencies are built.
