file(REMOVE_RECURSE
  "CMakeFiles/table2_kem_cycles.dir/table2_kem_cycles.cpp.o"
  "CMakeFiles/table2_kem_cycles.dir/table2_kem_cycles.cpp.o.d"
  "table2_kem_cycles"
  "table2_kem_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_kem_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
