# Empty dependencies file for table2_kem_cycles.
# This may be replaced when dependencies are built.
