// Host-speed microbenchmarks (google-benchmark) of every primitive layer:
// useful for spotting performance regressions in the library itself, and
// for comparing the algorithmic flavours (table vs shift-and-add GF
// multiplication, dense vs sparse vs split polynomial multiplication,
// submission vs constant-time BCH decoding) on real hardware.
//
//   micro_primitives [--json]   # --json: google-benchmark JSON output
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "hash/keccak.h"
#include "hash/sha256.h"
#include "lac/kem.h"
#include "lac/sampler.h"
#include "perf/iss_kernels.h"
#include "poly/karatsuba.h"
#include "poly/split_mul.h"
#include "rtl/mul_ter.h"

namespace {

using namespace lacrv;

hash::Seed seed_of(u64 x) {
  hash::Seed s{};
  for (int i = 0; i < 8; ++i) s[i] = static_cast<u8>(x >> (8 * i));
  return s;
}

poly::Ternary random_ternary(Xoshiro256& rng, std::size_t n) {
  poly::Ternary t(n);
  for (auto& v : t)
    v = static_cast<i8>(static_cast<int>(rng.next_below(3)) - 1);
  return t;
}

poly::Coeffs random_coeffs(Xoshiro256& rng, std::size_t n) {
  poly::Coeffs c(n);
  for (auto& v : c) v = static_cast<u8>(rng.next_below(poly::kQ));
  return c;
}

void BM_Sha256_1KiB(benchmark::State& state) {
  Xoshiro256 rng(1);
  const Bytes data = rng.bytes(1024);
  for (auto _ : state) benchmark::DoNotOptimize(hash::sha256(data));
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_KeccakF1600(benchmark::State& state) {
  hash::KeccakState keccak_state{};
  for (auto _ : state) {
    hash::keccak_f1600(keccak_state);
    benchmark::DoNotOptimize(keccak_state);
  }
}
BENCHMARK(BM_KeccakF1600);

void BM_Shake128_1KiB(benchmark::State& state) {
  Xoshiro256 rng(8);
  const Bytes seed = rng.bytes(32);
  for (auto _ : state) {
    hash::Shake128 xof(seed);
    std::array<u8, 1024> out;
    xof.fill(out.data(), out.size());
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 1024);
}
BENCHMARK(BM_Shake128_1KiB);

void BM_GfMul(benchmark::State& state) {
  const bool table = state.range(0) == 0;
  Xoshiro256 rng(2);
  const auto a = static_cast<gf::Element>(rng.next_below(512));
  const auto b = static_cast<gf::Element>(rng.next_below(512));
  for (auto _ : state)
    benchmark::DoNotOptimize(table ? gf::mul_table(a, b)
                                   : gf::mul_shift_add(a, b));
}
BENCHMARK(BM_GfMul)->Arg(0)->Arg(1)->ArgName("shiftadd");

void BM_BchEncode(benchmark::State& state) {
  const bch::CodeSpec& spec = bch::CodeSpec::bch_511_367_16();
  bch::Message msg{};
  msg[0] = 0x5A;
  for (auto _ : state) benchmark::DoNotOptimize(bch::encode(spec, msg));
}
BENCHMARK(BM_BchEncode);

void BM_BchDecode(benchmark::State& state) {
  const bch::CodeSpec& spec = bch::CodeSpec::bch_511_367_16();
  const auto flavor = state.range(0) == 0 ? bch::Flavor::kSubmission
                                          : bch::Flavor::kConstantTime;
  Xoshiro256 rng(3);
  bch::Message msg{};
  rng.fill(msg.data(), msg.size());
  bch::BitVec cw = bch::encode(spec, msg);
  for (int i = 0; i < 16; ++i) cw[static_cast<std::size_t>(7 + 13 * i)] ^= 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(bch::decode(spec, cw, flavor));
}
BENCHMARK(BM_BchDecode)->Arg(0)->Arg(1)->ArgName("ct");

void BM_PolyMul(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const int kind = static_cast<int>(state.range(1));
  Xoshiro256 rng(4);
  const poly::Ternary s = random_ternary(rng, n);
  const poly::Coeffs b = random_coeffs(rng, n);
  for (auto _ : state) {
    switch (kind) {
      case 0:
        benchmark::DoNotOptimize(poly::mul_sparse(b, s, true));
        break;
      case 1:
        benchmark::DoNotOptimize(poly::mul_ref(b, s, true));
        break;
      default:
        benchmark::DoNotOptimize(
            poly::mul_general_negacyclic(poly::from_ternary(s), b));
    }
  }
}
BENCHMARK(BM_PolyMul)
    ->ArgsProduct({{512, 1024}, {0, 1, 2}})
    ->ArgNames({"n", "kind"});

void BM_SplitMulHigh(benchmark::State& state) {
  Xoshiro256 rng(5);
  const poly::Ternary s = random_ternary(rng, 1024);
  const poly::Coeffs b = random_coeffs(rng, 1024);
  const poly::MulTer512 unit = poly::software_mul_ter();
  for (auto _ : state)
    benchmark::DoNotOptimize(poly::split_mul_high(s, b, unit));
}
BENCHMARK(BM_SplitMulHigh);

void BM_SampleFixedWeight(benchmark::State& state) {
  const lac::Params& params = lac::Params::lac256();
  for (auto _ : state)
    benchmark::DoNotOptimize(lac::sample_fixed_weight(seed_of(9), params));
}
BENCHMARK(BM_SampleFixedWeight);

void BM_GenA(benchmark::State& state) {
  const lac::Params& params = lac::Params::lac256();
  for (auto _ : state)
    benchmark::DoNotOptimize(lac::gen_a(seed_of(10), params));
}
BENCHMARK(BM_GenA);

void BM_KemKeygen(benchmark::State& state) {
  const lac::Params& params = lac::Params::lac128();
  const lac::Backend backend = lac::Backend::reference();
  for (auto _ : state)
    benchmark::DoNotOptimize(lac::kem_keygen(params, backend, seed_of(11)));
}
BENCHMARK(BM_KemKeygen);

void BM_KemEncapsDecaps(benchmark::State& state) {
  const lac::Params& params = lac::Params::lac128();
  const lac::Backend backend = lac::Backend::reference();
  const lac::KemKeyPair keys = lac::kem_keygen(params, backend, seed_of(12));
  for (auto _ : state) {
    const lac::EncapsResult enc =
        lac::encapsulate(params, backend, keys.pk, seed_of(13));
    benchmark::DoNotOptimize(
        lac::decapsulate(params, backend, keys, enc.ct));
  }
}
BENCHMARK(BM_KemEncapsDecaps);

void BM_RtlMulTer512(benchmark::State& state) {
  Xoshiro256 rng(6);
  const poly::Ternary s = random_ternary(rng, 512);
  const poly::Coeffs b = random_coeffs(rng, 512);
  rtl::MulTerRtl unit(512);
  for (auto _ : state) {
    unit.reset();
    benchmark::DoNotOptimize(unit.multiply(s, b, true));
  }
}
BENCHMARK(BM_RtlMulTer512);

void BM_IssMulTerKernel(benchmark::State& state) {
  Xoshiro256 rng(7);
  const poly::Ternary s = random_ternary(rng, 512);
  const poly::Coeffs b = random_coeffs(rng, 512);
  for (auto _ : state)
    benchmark::DoNotOptimize(perf::iss_mul_ter(s, b, true));
}
BENCHMARK(BM_IssMulTerKernel);

// ---- per-slot modeled cycle counts -----------------------------------------
// One benchmark per kernel registry slot, named after the slot's
// canonical name ("BM_PqSlotCycles/<slot>"). Each run reports the
// pq-instruction cycle model's per-call cost as the `model_cycles`
// counter in the --json dump, so a regression in the cost model shows up
// keyed by the same name used for trace spans, breaker labels and --mix
// flags.
void run_pq_slot(benchmark::State& state, lac::Slot slot) {
  Xoshiro256 rng(20);
  const poly::Ternary a = random_ternary(rng, 512);
  const poly::Coeffs b = random_coeffs(rng, 512);
  const bch::CodeSpec& spec = bch::CodeSpec::bch_511_367_16();
  bch::Message msg{};
  rng.fill(msg.data(), msg.size());
  bch::BitVec word = bch::encode(spec, msg);
  for (int i = 0; i < 16; ++i) word[static_cast<std::size_t>(5 + 11 * i)] ^= 1;
  const auto synd = bch::syndromes(spec, word, bch::Flavor::kConstantTime);
  const bch::Locator loc =
      bch::berlekamp_massey(spec, synd, bch::Flavor::kConstantTime);
  const Bytes data = rng.bytes(1024);

  CycleLedger ledger;
  u64 calls = 0;
  for (auto _ : state) {
    ++calls;
    switch (slot) {
      case lac::Slot::kMulTer:
        benchmark::DoNotOptimize(lac::modeled_mul_ter()(a, b, true, &ledger));
        break;
      case lac::Slot::kChien:
        benchmark::DoNotOptimize(lac::modeled_chien()(spec, loc, &ledger));
        break;
      case lac::Slot::kSha256: {
        // The sha256 slot's callable is purely functional; its cycle
        // model is charged by the caller per compression block.
        hash::Sha256 h;
        h.update(data);
        benchmark::DoNotOptimize(h.finalize());
        charge(&ledger, h.compressions() *
                            lac::hash_block_cost(lac::HashImpl::kAccelerated));
        break;
      }
      case lac::Slot::kModq:
        benchmark::DoNotOptimize(
            lac::modeled_modq()(static_cast<u32>(rng.next_below(65536)),
                                &ledger));
        break;
    }
  }
  state.counters["model_cycles"] = benchmark::Counter(
      calls ? static_cast<double>(ledger.total()) / static_cast<double>(calls)
            : 0.0);
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the table binaries take
// `--json` for their machine-readable dump, so this one does too —
// translated to google-benchmark's own --benchmark_format=json.
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::string json_flag = "--benchmark_format=json";
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0)
      args.push_back(json_flag.data());
    else
      args.push_back(argv[i]);
  }
  // One benchmark per kernel registry slot, keyed by canonical slot name.
  for (lacrv::lac::Slot slot : lacrv::lac::kAllSlots) {
    benchmark::RegisterBenchmark(
        (std::string("BM_PqSlotCycles/") + lacrv::lac::slot_name(slot))
            .c_str(),
        [slot](benchmark::State& state) { run_pq_slot(state, slot); });
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
