// Regenerates Table II: full CCA-KEM cycle counts (KeyGen / Encaps /
// Decaps) and the four bottleneck kernels for LAC-128/192/256 on the
// reference, constant-time-BCH and ISA-extension implementations, plus
// the external baselines the paper quotes. Also prints the headline
// speedups from the abstract (7.66 / 14.42 / 13.36) and a host
// wall-clock throughput column measured through the concurrent
// KemService (the cycle model says what the hardware would cost; the
// service column says what this model sustains end to end).
//
//   table2_kem_cycles [--json]     # --json: machine-readable dump only
//   table2_kem_cycles --mix <spec> # per-slot implementation mix, e.g.
//                                  #   --mix mul_ter=rtl,sha256=sw
//                                  # (slots: mul_ter, chien, sha256, modq;
//                                  # unlisted slots stay on the modeled
//                                  # software implementation)
#include <chrono>
#include <cstring>
#include <future>
#include <iomanip>
#include <iostream>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "obs/json.h"
#include "perf/iss_kernels.h"
#include "perf/rtl_backend.h"
#include "perf/tables.h"
#include "riscv/profiler.h"
#include "service/service.h"

namespace {

using namespace lacrv;

struct Throughput {
  const char* level;
  // Paper-faithful service: per-request seed expansion, one queue
  // round-trip per submission.
  double encaps_ops_per_sec = 0.0;
  double decaps_ops_per_sec = 0.0;
  // Amortized service: per-worker KeyContext + submit_batch() with
  // worker-side micro-batching.
  double encaps_amortized_ops_per_sec = 0.0;
  double decaps_amortized_ops_per_sec = 0.0;
};

/// One encaps burst + the paired decaps burst against `svc`; returns
/// {encaps_ops_per_sec, decaps_ops_per_sec}. `batched` submits the whole
/// burst via submit_batch() (one queue lock round-trip).
std::pair<double, double> run_burst(service::KemService& svc,
                                    std::size_t ops, bool batched) {
  using clock = std::chrono::steady_clock;
  std::vector<service::KemRequest> requests;
  std::vector<std::future<service::KemResponse>> futures;
  futures.reserve(ops);

  auto start = clock::now();
  if (batched) {
    requests.reserve(ops);
    for (std::size_t i = 0; i < ops; ++i) {
      hash::Seed entropy{};
      entropy[0] = static_cast<u8>(i);
      entropy[1] = static_cast<u8>(i >> 8);
      requests.push_back(
          {service::OpKind::kEncaps, entropy, {}, service::kNoDeadline});
    }
    futures = svc.submit_batch(std::move(requests));
  } else {
    for (std::size_t i = 0; i < ops; ++i) {
      hash::Seed entropy{};
      entropy[0] = static_cast<u8>(i);
      entropy[1] = static_cast<u8>(i >> 8);
      futures.push_back(svc.submit(
          {service::OpKind::kEncaps, entropy, {}, service::kNoDeadline}));
    }
  }
  std::vector<lac::Ciphertext> cts;
  cts.reserve(ops);
  for (auto& f : futures) cts.push_back(f.get().encaps.ct);
  double secs = std::chrono::duration<double>(clock::now() - start).count();
  const double encaps_rate =
      secs > 0 ? static_cast<double>(ops) / secs : 0;

  futures.clear();
  requests.clear();
  start = clock::now();
  if (batched) {
    requests.reserve(ops);
    for (auto& ct : cts) {
      service::KemRequest req;
      req.op = service::OpKind::kDecaps;
      req.ct = std::move(ct);
      requests.push_back(std::move(req));
    }
    futures = svc.submit_batch(std::move(requests));
  } else {
    for (auto& ct : cts) {
      service::KemRequest req;
      req.op = service::OpKind::kDecaps;
      req.ct = std::move(ct);
      futures.push_back(svc.submit(std::move(req)));
    }
  }
  for (auto& f : futures) (void)f.get();
  secs = std::chrono::duration<double>(clock::now() - start).count();
  const double decaps_rate =
      secs > 0 ? static_cast<double>(ops) / secs : 0;
  return {encaps_rate, decaps_rate};
}

/// Wall-clock ops/sec through a KemService worker pool, measured twice:
/// the per-request-expansion baseline and the amortized configuration
/// (KeyContext + batched submission) side by side.
Throughput service_throughput(const lac::Params& params, const char* level,
                              std::size_t ops) {
  Throughput t;
  t.level = level;

  service::ServiceConfig cfg;
  cfg.params = &params;
  cfg.workers = 4;
  cfg.queue_capacity = ops + 8;
  cfg.enable_prober = false;  // measure the pool, not the prober
  {
    service::ServiceConfig baseline = cfg;
    baseline.use_key_context = false;
    baseline.max_batch = 1;
    service::KemService svc(baseline);
    std::tie(t.encaps_ops_per_sec, t.decaps_ops_per_sec) =
        run_burst(svc, ops, /*batched=*/false);
  }
  {
    service::KemService svc(cfg);  // context + micro-batching defaults
    std::tie(t.encaps_amortized_ops_per_sec,
             t.decaps_amortized_ops_per_sec) =
        run_burst(svc, ops, /*batched=*/true);
  }
  return t;
}

/// One profiled ISS kernel run: the measured cycles plus the profiler's
/// attribution of them to the pq.* extension vs the base ISA.
struct IssProfile {
  const char* kernel;
  perf::IssRunResult run;
  rv::IssProfiler profiler;
};

/// Machine-readable dump of everything this binary measures: the Table
/// II rows, the headline speedups, the ISS profiler cross-check and the
/// service throughput column.
void print_rows_json(std::ostream& os,
                     const std::vector<perf::Table2Row>& rows) {
  using obs::json::escape;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const perf::Table2Row& r = rows[i];
    os << "    {\"scheme\": \"" << escape(r.scheme) << "\", \"device\": \""
       << escape(r.device) << "\", \"security\": \""
       << escape(r.security) << "\", \"keygen\": " << r.keygen
       << ", \"encaps\": " << r.encaps << ", \"decaps\": " << r.decaps
       << ", \"gen_a\": " << r.gen_a << ", \"sample_poly\": " << r.sample_poly
       << ", \"mult\": " << r.mult << ", \"bch_dec\": " << r.bch_dec
       << ", \"encaps_amortized\": " << r.encaps_amortized
       << ", \"decaps_amortized\": " << r.decaps_amortized
       << ", \"context_build\": " << r.context_build
       << ", \"external\": " << (r.external ? "true" : "false") << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
}

void print_json(std::ostream& os, const std::vector<perf::Table2Row>& rows,
                const perf::Speedups& s,
                const std::vector<IssProfile>& profiles,
                const std::vector<Throughput>& throughput) {
  using obs::json::escape;
  os << "{\n  \"table2\": [\n";
  print_rows_json(os, rows);
  os << "  ],\n  \"headline_speedups\": {\"lac128\": " << s.lac128
     << ", \"lac192\": " << s.lac192 << ", \"lac256\": " << s.lac256
     << "},\n  \"iss_profile\": [\n";
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const IssProfile& p = profiles[i];
    os << "    {\"kernel\": \"" << escape(p.kernel)
       << "\", \"cycles\": " << p.run.cycles
       << ", \"instructions\": " << p.run.instructions
       << ", \"profiled_cycles\": " << p.profiler.total_cycles()
       << ", \"pq_cycles\": " << p.profiler.pq_cycles()
       << ", \"base_cycles\": " << p.profiler.base_cycles() << "}"
       << (i + 1 < profiles.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"service_throughput\": [\n";
  for (std::size_t i = 0; i < throughput.size(); ++i) {
    os << "    {\"level\": \"" << throughput[i].level
       << "\", \"encaps_ops_per_sec\": " << throughput[i].encaps_ops_per_sec
       << ", \"decaps_ops_per_sec\": " << throughput[i].decaps_ops_per_sec
       << ", \"encaps_amortized_ops_per_sec\": "
       << throughput[i].encaps_amortized_ops_per_sec
       << ", \"decaps_amortized_ops_per_sec\": "
       << throughput[i].decaps_amortized_ops_per_sec << "}"
       << (i + 1 < throughput.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

/// Build the --mix backend: every slot the spec marks `rtl` gets the
/// cycle-accurate RTL callable injected through the registry's KAT-gated
/// path; the rest keep the modeled software implementation. All sixteen
/// mixes are bit-identical by construction (tests enforce it); the rows
/// exist to attribute cycle deltas per primitive.
int run_mix(const std::string& spec, bool json) {
  std::array<bool, lac::kNumSlots> use_rtl{};
  std::string error;
  if (!lac::parse_slot_mix(spec, &use_rtl, &error)) {
    std::cerr << "--mix: " << error << "\n";
    return 1;
  }
  auto registry =
      std::make_shared<lac::KernelRegistry>(lac::KernelRegistry::modeled());
  if (use_rtl[0]) registry->inject_mul_ter(perf::rtl_mul_ter());
  if (use_rtl[1]) registry->inject_chien(perf::rtl_chien());
  if (use_rtl[2])
    registry->inject_sha256(
        perf::rtl_sha256(std::make_shared<rtl::Sha256Rtl>()));
  if (use_rtl[3]) registry->inject_modq(perf::rtl_modq());
  const lac::Backend backend = lac::Backend::optimized_from(registry);

  std::vector<perf::Table2Row> rows;
  for (const lac::Params* params : lac::Params::all())
    rows.push_back(perf::table2_row(
        *params, backend, std::string(params->name) + " opt."));
  if (json) {
    std::cout << "{\n  \"mix\": \"" << obs::json::escape(spec)
              << "\",\n  \"table2\": [\n";
    print_rows_json(std::cout, rows);
    std::cout << "  ]\n}\n";
  } else {
    std::cout << "Per-slot implementation mix: " << spec
              << " (unlisted slots: modeled software)\n";
    perf::print_table2(std::cout, rows);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string mix_spec;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0)
      json = true;
    else if (std::strcmp(argv[i], "--mix") == 0 && i + 1 < argc)
      mix_spec = argv[++i];
    else if (std::strncmp(argv[i], "--mix=", 6) == 0)
      mix_spec = argv[i] + 6;
  }
  if (!mix_spec.empty()) return run_mix(mix_spec, json);
  const auto rows = perf::table2();
  const perf::Speedups s = perf::headline_speedups(rows);

  constexpr std::size_t kThroughputOps = 32;
  std::vector<Throughput> throughput;
  throughput.push_back(
      service_throughput(lac::Params::lac128(), "LAC-128", kThroughputOps));
  throughput.push_back(
      service_throughput(lac::Params::lac192(), "LAC-192", kThroughputOps));
  throughput.push_back(
      service_throughput(lac::Params::lac256(), "LAC-256", kThroughputOps));

  // Cross-check: the Multiplication column measured as real machine code
  // on the ISS (independent of the layer-2 cost model), with the
  // profiler attributing every retired cycle to the pq.* extension or
  // the base ISA.
  std::vector<IssProfile> profiles(2);
  {
    Xoshiro256 rng(3);
    poly::Ternary a512(512), a1024(1024);
    poly::Coeffs b512(512), b1024(1024);
    for (auto& v : a512)
      v = static_cast<i8>(static_cast<int>(rng.next_below(3)) - 1);
    for (auto& v : a1024)
      v = static_cast<i8>(static_cast<int>(rng.next_below(3)) - 1);
    for (auto& v : b512) v = static_cast<u8>(rng.next_below(poly::kQ));
    for (auto& v : b1024) v = static_cast<u8>(rng.next_below(poly::kQ));
    profiles[0].kernel = "mul_ter_512";
    profiles[0].run =
        perf::iss_mul_ter(a512, b512, true, &profiles[0].profiler);
    profiles[1].kernel = "split_mul_1024";
    profiles[1].run =
        perf::iss_split_mul_1024(a1024, b1024, &profiles[1].profiler);
  }

  if (json) {
    print_json(std::cout, rows, s, profiles, throughput);
    return 0;
  }

  perf::print_table2(std::cout, rows);

  std::cout << "\nHeadline speedups (opt vs unprotected reference, "
               "KeyGen+Encaps+Decaps):\n"
            << std::fixed << std::setprecision(2)
            << "  LAC-128: " << s.lac128 << "x   (paper: 7.66x)\n"
            << "  LAC-192: " << s.lac192 << "x   (paper: 14.42x)\n"
            << "  LAC-256: " << s.lac256 << "x   (paper: 13.36x)\n";

  // Sec. VI-B: "our LAC implementation requires around 3.12 million
  // additional cycles ... mainly due to the slower SHA256, the additional
  // error-correcting code, and the re-encryption step" (vs the CPA-secure
  // NewHope co-design). Quantify the re-encryption share with the
  // CPA-secure LAC variant.
  {
    const lac::Params& params = lac::Params::lac256();
    const lac::Backend backend = lac::Backend::optimized();
    hash::Seed seed{};
    seed.fill(0x42);
    const lac::KemKeyPair keys = lac::kem_keygen(params, backend, seed);
    CycleLedger cca_enc, cca_dec, cpa_enc, cpa_dec;
    const lac::EncapsResult e1 =
        lac::encapsulate(params, backend, keys.pk, seed, &cca_enc);
    lac::decapsulate(params, backend, keys, e1.ct, &cca_dec);
    const lac::EncapsResult e2 =
        lac::encapsulate_cpa(params, backend, keys.pk, seed, &cpa_enc);
    lac::decapsulate_cpa(params, backend, keys, e2.ct, &cpa_dec);
    std::cout << "\nCCA vs CPA (LAC-256 opt., Sec. VI-B discussion):\n"
              << "  CCA decapsulation: " << cca_dec.total()
              << " cycles (with re-encryption)\n"
              << "  CPA decapsulation: " << cpa_dec.total()
              << " cycles (NewHope-comparable security class)\n"
              << "  re-encryption overhead: "
              << cca_dec.total() - cpa_dec.total() << " cycles\n"
              << "  NewHope CPA (V) decapsulation [8]: 167,647 cycles\n";
  }
  std::cout << "\nMultiplication column, measured as machine code on the "
               "RV32IMC ISS:\n"
            << "  n=512:  " << profiles[0].run.cycles
            << " cycles (model 6,156; paper 6,390)\n"
            << "  n=1024: " << profiles[1].run.cycles
            << " cycles (model 146,112; paper 151,354)\n";
  std::cout << "\nProfiler attribution of those cycles (pq.* vs base ISA):\n";
  for (const IssProfile& p : profiles) {
    const rv::IssProfiler& prof = p.profiler;
    const double pct = prof.total_cycles()
                           ? 100.0 * static_cast<double>(prof.pq_cycles()) /
                                 static_cast<double>(prof.total_cycles())
                           : 0.0;
    std::cout << "  " << p.kernel << ": pq.* " << prof.pq_cycles()
              << " cycles (" << std::setprecision(1) << pct
              << "%), base ISA " << prof.base_cycles() << " cycles\n";
  }
  // Host wall-clock throughput through the concurrent KemService (4
  // workers, modeled accelerator rigs). Not a paper number — it sizes
  // what this repository's model sustains as a running service.
  std::cout << "\nService throughput (wall-clock, 4 workers, "
            << kThroughputOps << " concurrent ops/burst;\n"
            << " baseline = per-request expansion, amortized = KeyContext "
               "+ submit_batch):\n"
            << std::fixed << std::setprecision(1);
  for (const Throughput& t : throughput)
    std::cout << "  " << t.level << ": encaps " << t.encaps_ops_per_sec
              << " -> " << t.encaps_amortized_ops_per_sec
              << " ops/s, decaps " << t.decaps_ops_per_sec << " -> "
              << t.decaps_amortized_ops_per_sec << " ops/s\n";
  std::cout << "(run with --json for a machine-readable dump)\n";
  return 0;
}
