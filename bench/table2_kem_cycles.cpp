// Regenerates Table II: full CCA-KEM cycle counts (KeyGen / Encaps /
// Decaps) and the four bottleneck kernels for LAC-128/192/256 on the
// reference, constant-time-BCH and ISA-extension implementations, plus
// the external baselines the paper quotes. Also prints the headline
// speedups from the abstract (7.66 / 14.42 / 13.36).
#include <iomanip>
#include <iostream>

#include "common/rng.h"
#include "perf/iss_kernels.h"
#include "perf/tables.h"

int main() {
  using namespace lacrv;
  const auto rows = perf::table2();
  perf::print_table2(std::cout, rows);

  const perf::Speedups s = perf::headline_speedups(rows);
  std::cout << "\nHeadline speedups (opt vs unprotected reference, "
               "KeyGen+Encaps+Decaps):\n"
            << std::fixed << std::setprecision(2)
            << "  LAC-128: " << s.lac128 << "x   (paper: 7.66x)\n"
            << "  LAC-192: " << s.lac192 << "x   (paper: 14.42x)\n"
            << "  LAC-256: " << s.lac256 << "x   (paper: 13.36x)\n";

  // Sec. VI-B: "our LAC implementation requires around 3.12 million
  // additional cycles ... mainly due to the slower SHA256, the additional
  // error-correcting code, and the re-encryption step" (vs the CPA-secure
  // NewHope co-design). Quantify the re-encryption share with the
  // CPA-secure LAC variant.
  {
    const lac::Params& params = lac::Params::lac256();
    const lac::Backend backend = lac::Backend::optimized();
    hash::Seed seed{};
    seed.fill(0x42);
    const lac::KemKeyPair keys = lac::kem_keygen(params, backend, seed);
    CycleLedger cca_enc, cca_dec, cpa_enc, cpa_dec;
    const lac::EncapsResult e1 =
        lac::encapsulate(params, backend, keys.pk, seed, &cca_enc);
    lac::decapsulate(params, backend, keys, e1.ct, &cca_dec);
    const lac::EncapsResult e2 =
        lac::encapsulate_cpa(params, backend, keys.pk, seed, &cpa_enc);
    lac::decapsulate_cpa(params, backend, keys, e2.ct, &cpa_dec);
    std::cout << "\nCCA vs CPA (LAC-256 opt., Sec. VI-B discussion):\n"
              << "  CCA decapsulation: " << cca_dec.total()
              << " cycles (with re-encryption)\n"
              << "  CPA decapsulation: " << cpa_dec.total()
              << " cycles (NewHope-comparable security class)\n"
              << "  re-encryption overhead: "
              << cca_dec.total() - cpa_dec.total() << " cycles\n"
              << "  NewHope CPA (V) decapsulation [8]: 167,647 cycles\n";
  }
  // Cross-check: the Multiplication column measured as real machine code
  // on the ISS (independent of the layer-2 cost model).
  {
    Xoshiro256 rng(3);
    poly::Ternary a512(512), a1024(1024);
    poly::Coeffs b512(512), b1024(1024);
    for (auto& v : a512)
      v = static_cast<i8>(static_cast<int>(rng.next_below(3)) - 1);
    for (auto& v : a1024)
      v = static_cast<i8>(static_cast<int>(rng.next_below(3)) - 1);
    for (auto& v : b512) v = static_cast<u8>(rng.next_below(poly::kQ));
    for (auto& v : b1024) v = static_cast<u8>(rng.next_below(poly::kQ));
    const perf::IssRunResult m512 = perf::iss_mul_ter(a512, b512, true);
    const perf::IssRunResult m1024 = perf::iss_split_mul_1024(a1024, b1024);
    std::cout << "\nMultiplication column, measured as machine code on the "
                 "RV32IMC ISS:\n"
              << "  n=512:  " << m512.cycles
              << " cycles (model 6,156; paper 6,390)\n"
              << "  n=1024: " << m1024.cycles
              << " cycles (model 146,112; paper 151,354)\n";
  }
  return 0;
}
