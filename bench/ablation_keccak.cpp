// Ablation: the paper's named future work (Sec. VI-B) — "Changing the
// SHA256 accelerator with a Keccak accelerator to further increase the
// performance of LAC". We implement SHAKE-128 (the primitive behind the
// NewHope co-design's fast GenA [8]) and model a tightly-coupled Keccak
// core: 24-cycle Keccak-f[1600] permutation, word-wise state I/O.
//
// The experiment answers two questions the paper leaves open:
//  1. how many cycles the hash swap saves per GenA / Sample call;
//  2. whether the swap alone closes the gap to NewHope's GenA (42,050
//     cycles) — it does not: the rejection-sampling software glue
//     dominates LAC's polynomial generation either way.
#include <iomanip>
#include <iostream>

#include "common/costs.h"
#include "hash/keccak.h"
#include "lac/kem.h"

namespace {

using namespace lacrv;

// Tightly-coupled Keccak core model: permutation in 24 cycles + start,
// rate-block readback as 42 word transfers.
constexpr u64 kKeccakPermutation = 24 + 1;
constexpr u64 kKeccakIoWord = 3;
constexpr u64 kKeccakBlockCost =
    kKeccakPermutation + (hash::Shake128::kRate / 4) * kKeccakIoWord;

struct GenACost {
  u64 hash_cycles;
  u64 glue_cycles;
  u64 total() const { return hash_cycles + glue_cycles; }
};

GenACost gen_a_sha256(const lac::Params& params, bool hw) {
  hash::Seed seed{};
  CycleLedger ledger;
  lac::gen_a(seed, params,
             hw ? lac::HashImpl::kAccelerated : lac::HashImpl::kSoftware,
             &ledger);
  const u64 glue = params.n * cost::kGenACoeffStep;
  return {ledger.total() - glue, glue};
}

GenACost gen_a_shake(const lac::Params& params) {
  // Same rejection-sampling structure, SHAKE-128 as the PRG.
  hash::Seed seed{};
  hash::Shake128 xof(ByteView(seed.data(), seed.size()));
  for (std::size_t i = 0; i < params.n; ++i) xof.next_below(poly::kQ);
  return {xof.permutations() * kKeccakBlockCost,
          params.n * cost::kGenACoeffStep};
}

}  // namespace

int main() {
  std::cout << "Ablation: SHA-256 accelerator vs Keccak/SHAKE-128 "
               "accelerator for polynomial generation\n\n";
  std::cout << std::left << std::setw(10) << "level" << std::right
            << std::setw(14) << "SW SHA-256" << std::setw(14) << "HW SHA-256"
            << std::setw(14) << "HW Keccak" << std::setw(16)
            << "hash cycles" << "\n";
  for (const lac::Params* params : lac::Params::all()) {
    const GenACost sw = gen_a_sha256(*params, false);
    const GenACost hw = gen_a_sha256(*params, true);
    const GenACost keccak = gen_a_shake(*params);
    std::cout << std::left << std::setw(10) << params->name << std::right
              << std::setw(14) << sw.total() << std::setw(14) << hw.total()
              << std::setw(14) << keccak.total() << "      "
              << sw.hash_cycles << " / " << hw.hash_cycles << " / "
              << keccak.hash_cycles << "\n";
  }

  const GenACost hw1024 = gen_a_sha256(lac::Params::lac256(), true);
  const GenACost kc1024 = gen_a_shake(lac::Params::lac256());
  std::cout << "\nFindings (n = 1024):\n";
  std::cout << "  hash cycles drop " << hw1024.hash_cycles << " -> "
            << kc1024.hash_cycles << " ("
            << std::fixed << std::setprecision(1)
            << static_cast<double>(hw1024.hash_cycles) /
                   static_cast<double>(kc1024.hash_cycles)
            << "x): the 168-byte SHAKE rate and word-wise I/O beat the "
               "byte-fed 32-byte SHA-256 interface decisively.\n";
  // Full-KEM projection: the SHAKE variant is a complete scheme in this
  // library (lac::Params::lac256_shake()); run it end to end.
  {
    const lac::Backend backend = lac::Backend::optimized();
    for (const lac::Params* params :
         {&lac::Params::lac256(), &lac::Params::lac256_shake()}) {
      hash::Seed seed{};
      seed.fill(0x21);
      CycleLedger kg, enc, dec;
      const lac::KemKeyPair keys =
          lac::kem_keygen(*params, backend, seed, &kg);
      const lac::EncapsResult e =
          lac::encapsulate(*params, backend, keys.pk, seed, &enc);
      lac::decapsulate(*params, backend, keys, e.ct, &dec);
      std::cout << "  " << params->name << " full KEM (opt): keygen "
                << kg.total() << ", encaps " << enc.total() << ", decaps "
                << dec.total() << "\n";
    }
  }
  std::cout << "  but GenA only improves "
            << hw1024.total() << " -> " << kc1024.total() << " ("
            << 100.0 * (1.0 - static_cast<double>(kc1024.total()) /
                                  static_cast<double>(hw1024.total()))
            << "%): the rejection-sampling glue ("
            << kc1024.glue_cycles
            << " cycles) dominates. NewHope's GenA [8] runs at 42,050 "
               "cycles — reaching it needs the sampler itself in hardware, "
               "not just the hash (consistent with the paper's Table II, "
               "where the SHA-256 accelerator buys GenA almost nothing).\n";
  return 0;
}
