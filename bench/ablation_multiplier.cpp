// Ablation: MUL TER unit length (Sec. IV-A design discussion).
//
// The paper fixes the unit at length 512 and argues it is a good
// area/performance trade-off: "a larger MUL TER unit for high-speed
// applications or a smaller one for area-limited devices can be used",
// and enlarging it is pointless once the multiplication is cheaper than
// the SHA-256-bound polynomial generation. This bench sweeps the unit
// length and reproduces that trade-off curve.
//
// The cycle model is the validated pq.mul_ter cost model (the L=512
// column reproduces Table II's 6,390 / 151,354 multiplications); the area
// columns come from the structural model of rtl::MulTerRtl.
#include <iomanip>
#include <iostream>

#include "common/costs.h"
#include "common/rng.h"
#include "lac/backend.h"
#include "lac/gen_a.h"
#include "poly/split_mul.h"
#include "rtl/mul_ter.h"

namespace {

using namespace lacrv;

u64 call_cost(u64 unit_len, u64 significant) {
  const u64 load_chunks = (significant + 4) / 5;
  const u64 read_chunks = (unit_len + 3) / 4;
  return cost::kKernelCallOverhead + load_chunks * cost::kMulTerLoadChunk +
         cost::kMulTerStartOverhead + unit_len +
         read_chunks * cost::kMulTerReadChunk;
}

/// Full product of two length-m polynomials using a length-L unit.
u64 full_product_cost(u64 m, u64 unit_len) {
  if (2 * m <= unit_len) return call_cost(unit_len, m);
  return 4 * full_product_cost(m / 2, unit_len) +
         3 * m * cost::kSplitRecombineStep;
}

/// Negacyclic multiplication in R_n using a length-L unit.
u64 negacyclic_cost(u64 n, u64 unit_len) {
  if (n == unit_len) return call_cost(unit_len, n);
  if (n < unit_len)  // run as full product, reduce by x^n + 1 in software
    return full_product_cost(n, unit_len) + n * cost::kSplitRecombineStep;
  return 4 * full_product_cost(n / 2, unit_len) +
         2 * n * cost::kSplitRecombineStep;
}

}  // namespace

int main() {
  std::cout << "Ablation: MUL TER unit length vs cycles and area\n";
  std::cout << "(paper design point: length 512 -> 6,390 / 151,354 cycles, "
               "31,465 LUTs)\n\n";
  std::cout << std::left << std::setw(8) << "length" << std::right
            << std::setw(14) << "mul n=512" << std::setw(14) << "mul n=1024"
            << std::setw(10) << "LUTs" << std::setw(12) << "registers"
            << "\n";
  for (u64 len : {128u, 256u, 512u, 1024u, 2048u}) {
    const rtl::AreaReport area = rtl::MulTerRtl(len).area();
    std::cout << std::left << std::setw(8) << len << std::right
              << std::setw(14) << negacyclic_cost(512, len) << std::setw(14)
              << negacyclic_cost(1024, len) << std::setw(10) << area.luts
              << std::setw(12) << area.registers << "\n";
  }

  // The paper's saturation argument: once the accelerated multiplication
  // undercuts GenA, a bigger unit cannot improve the protocol.
  CycleLedger ledger;
  hash::Seed seed{};
  lac::gen_a(seed, lac::Params::lac256(), lac::HashImpl::kAccelerated,
             &ledger);
  std::cout << "\nGenA (LAC-256, accelerated SHA-256): " << ledger.total()
            << " cycles — already >> the accelerated multiplication at "
               "length 512, so enlarging MUL TER does not speed up LAC "
               "(Sec. IV-A).\n";

  // Sanity anchor: the real two-level split algorithms charge exactly the
  // analytic L=512 numbers.
  std::cout << "analytic L=512 n=1024: " << negacyclic_cost(1024, 512)
            << " (Table II opt multiplication: 151,354; our measured model: "
               "146,112)\n";

  // Executable cross-check: run the *generic* splitter with the modeled
  // pq.mul_ter cost attached and compare its charged cycles against the
  // analytic curve (they differ only by the fused wrap of Algorithm 1,
  // which the generic path performs as a separate software pass).
  std::cout << "\nexecutable generic splitter (modeled unit costs):\n";
  Xoshiro256 rng(5);
  for (u64 len : {256u, 512u, 1024u}) {
    for (u64 n : {512u, 1024u}) {
      poly::Ternary a(n);
      poly::Coeffs b(n);
      for (auto& v : a)
        v = static_cast<i8>(static_cast<int>(rng.next_below(3)) - 1);
      for (auto& v : b) v = static_cast<u8>(rng.next_below(poly::kQ));
      CycleLedger ledger;
      poly::mul_negacyclic_with_unit(a, b, len, lac::modeled_mul_ter(),
                                     &ledger);
      std::cout << "  n=" << n << " L=" << len << ": measured "
                << ledger.total() << " vs analytic " << negacyclic_cost(n, len)
                << "\n";
    }
  }
  return 0;
}
