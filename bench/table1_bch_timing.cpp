// Regenerates Table I: cycle counts of BCH(511,367,16) decoding on RISC-V
// for the round-2 submission decoder vs the Walters/Roy constant-time
// decoder, at 0 and 16 injected errors, split into the three decoder
// stages. The experiment demonstrates the timing side-channel: the
// submission decoder's error-locator stage leaks the error count.
//
//   table1_bch_timing [--json]   # --json: machine-readable dump only
#include <cstring>
#include <iostream>
#include <vector>

#include "obs/json.h"
#include "perf/tables.h"

namespace {

using namespace lacrv;

u64 abs_delta(u64 a, u64 b) { return a > b ? a - b : b - a; }

void print_rows_json(std::ostream& os,
                     const std::vector<perf::Table1Row>& rows) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const perf::Table1Row& r = rows[i];
    os << "    {\"scheme\": \"" << obs::json::escape(r.scheme)
       << "\", \"fails\": " << r.fails << ", \"syndrome\": " << r.syndrome
       << ", \"error_loc\": " << r.error_loc << ", \"chien\": " << r.chien
       << ", \"decode\": " << r.decode
       << ", \"paper_decode\": " << r.paper_decode << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
}

/// Machine-readable dump: the Table I rows (t=16 and the t=8 extension)
/// plus the leakage deltas — the same object-of-arrays shape
/// table2_kem_cycles --json emits.
void print_json(std::ostream& os, const std::vector<perf::Table1Row>& rows,
                const std::vector<perf::Table1Row>& rows_t8, u64 sub_delta,
                u64 ct_delta) {
  os << "{\n  \"table1\": [\n";
  print_rows_json(os, rows);
  os << "  ],\n  \"table1_t8\": [\n";
  print_rows_json(os, rows_t8);
  os << "  ],\n  \"leakage\": {\"submission_delta\": " << sub_delta
     << ", \"constant_time_delta\": " << ct_delta
     << ", \"paper_submission_delta\": 8276"
     << ", \"paper_constant_time_delta\": 259}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lacrv;
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  const auto rows = perf::table1();
  const auto rows_t8 = perf::table1_t8();
  const u64 sub_delta = abs_delta(rows[1].decode, rows[0].decode);
  const u64 ct_delta = abs_delta(rows[3].decode, rows[2].decode);

  if (json) {
    print_json(std::cout, rows, rows_t8, sub_delta, ct_delta);
    return 0;
  }

  perf::print_table1(std::cout, rows);
  std::cout << "\nExtension (not in the paper): the same experiment for "
               "LAC-192's BCH(511,439,8):\n";
  perf::print_table1(std::cout, rows_t8);

  std::cout << "\nLeakage summary:\n";
  std::cout << "  submission decoder 0-vs-16-error cycle delta: " << sub_delta
            << " (exploitable; paper: 8,276)\n";
  std::cout << "  constant-time decoder 0-vs-16-error cycle delta: "
            << ct_delta << " (paper: 259)\n";
  std::cout << "(run with --json for a machine-readable dump)\n";
  return 0;
}
