// Regenerates Table I: cycle counts of BCH(511,367,16) decoding on RISC-V
// for the round-2 submission decoder vs the Walters/Roy constant-time
// decoder, at 0 and 16 injected errors, split into the three decoder
// stages. The experiment demonstrates the timing side-channel: the
// submission decoder's error-locator stage leaks the error count.
#include <iostream>

#include "perf/tables.h"

int main() {
  using namespace lacrv;
  const auto rows = perf::table1();
  perf::print_table1(std::cout, rows);
  std::cout << "\nExtension (not in the paper): the same experiment for "
               "LAC-192's BCH(511,439,8):\n";
  perf::print_table1(std::cout, perf::table1_t8());

  std::cout << "\nLeakage summary:\n";
  const u64 sub_delta = rows[1].decode > rows[0].decode
                            ? rows[1].decode - rows[0].decode
                            : rows[0].decode - rows[1].decode;
  const u64 ct_delta = rows[3].decode > rows[2].decode
                           ? rows[3].decode - rows[2].decode
                           : rows[2].decode - rows[3].decode;
  std::cout << "  submission decoder 0-vs-16-error cycle delta: " << sub_delta
            << " (exploitable; paper: 8,276)\n";
  std::cout << "  constant-time decoder 0-vs-16-error cycle delta: "
            << ct_delta << " (paper: 259)\n";
  return 0;
}
