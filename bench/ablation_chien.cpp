// Ablation: degree of parallelism in the MUL CHIEN unit (Fig. 4 uses four
// GF multipliers; Eq. (4) splits the locator into t/4 groups). This bench
// sweeps the multiplier count and reports the accelerated BCH-decode
// cycles and the GF-multiplier area — showing why four multipliers are a
// sensible knee for both t = 8 and t = 16.
#include <iomanip>
#include <iostream>

#include "common/costs.h"
#include "rtl/gf_mul.h"

namespace {

using namespace lacrv;

struct CodeCfg {
  const char* name;
  int t;
  int length;  // shortened codeword bits
  int points;  // Chien window size
};

u64 chien_cycles(const CodeCfg& code, int parallel) {
  const u64 groups =
      static_cast<u64>((code.t + parallel - 1) / parallel);
  return cost::kKernelCallOverhead + groups * cost::kChienHwLambdaLoad +
         static_cast<u64>(code.points) *
             (groups * (cost::kChienHwGroupCompute +
                        cost::kChienHwGroupControl) +
              cost::kChienHwPointOverhead);
}

u64 decode_cycles(const CodeCfg& code, int parallel) {
  const u64 synd = static_cast<u64>(code.length) * 2 * code.t *
                   cost::kCtSyndromeStep;
  const u64 bm = static_cast<u64>(2 * code.t) *
                 (static_cast<u64>(code.t + 1) * cost::kCtBmTermStep +
                  cost::kCtBmIterOverhead);
  return synd + bm + chien_cycles(code, parallel);
}

}  // namespace

int main() {
  const CodeCfg codes[] = {{"BCH(511,367,16)", 16, 400, 257},
                           {"BCH(511,439,8)", 8, 328, 257}};
  std::cout << "Ablation: MUL CHIEN parallel GF multipliers (paper: 4)\n\n";
  for (const CodeCfg& code : codes) {
    std::cout << code.name << " (t=" << code.t << "):\n";
    std::cout << std::left << std::setw(14) << "  multipliers" << std::right
              << std::setw(14) << "chien cycles" << std::setw(16)
              << "decode cycles" << std::setw(12) << "GF LUTs"
              << std::setw(10) << "GF regs" << "\n";
    for (int p : {1, 2, 4, 8, 16}) {
      const rtl::AreaReport one = rtl::GfMulRtl::area_single();
      std::cout << std::left << std::setw(14) << ("  " + std::to_string(p))
                << std::right << std::setw(14) << chien_cycles(code, p)
                << std::setw(16) << decode_cycles(code, p) << std::setw(12)
                << one.luts * static_cast<u64>(p) << std::setw(10)
                << one.registers * static_cast<u64>(p) << "\n";
    }
    std::cout << "\n";
  }
  std::cout << "At 4 multipliers the Chien stage stops dominating the "
               "constant-time syndrome/BM software stages; further "
               "parallelism buys little (Amdahl) while area grows "
               "linearly.\n";
  return 0;
}
