// loadgen — adversarial load generator for the async TCP serving tier.
//
// A single-threaded epoll client that drives thousands of concurrent
// connections against kem_server --listen and reports wire-level
// latency percentiles from the server's own histogram type. Two traffic
// shapes plus a chaos mix:
//
//   * closed loop (default): every honest connection runs full KEM
//     handshakes back to back — encaps (32-byte entropy), then decaps
//     of the returned ciphertext, then *verifies the two shared keys
//     agree* — so the bench doubles as an end-to-end correctness check.
//   * open loop (--rate R): encaps requests are fired at a fixed
//     aggregate rate regardless of completions (pipelined per
//     connection), the canonical way to observe queueing collapse and
//     typed kOverloaded shedding instead of coordinated omission.
//   * chaos (--chaos): every 8th connection misbehaves — slowloris
//     (one byte of a valid frame per tick), garbage bursts (random
//     bytes, expecting a typed protocol-error reply back), half-closes
//     (valid request, then SHUT_WR, expecting the reply anyway) and
//     mid-close (valid request, then close before the reply). A
//     hardened server sheds all of them with typed verdicts and
//     deadlines; a fragile one crashes, leaks connections or stalls the
//     honest cohort.
//
// Exit code 0 iff the honest cohort made progress and saw zero
// failures: no key mismatches, no protocol errors aimed at well-formed
// traffic, no unexpected disconnects mid-request, no garbage burst left
// without its typed reply. Shed verdicts (kOverloaded / kUnavailable /
// kDeadlineExceeded) are counted but are *correct* behaviour, not
// failures. A global hard deadline turns a hung server into exit 2
// instead of a hung CI job.
//
//   loadgen --port P | --port-file F  [--host 127.0.0.1]
//           [--connections 64] [--duration-ms 3000] [--requests N]
//           [--rate R] [--chaos] [--seed S] [--json] [--max-runtime-ms M]
//
// --seed makes a run reproducible: it drives the payload/garbage RNG
// and the chaos-role schedule (which of the four misbehaving roles
// lands on which connection), so a failure seen in CI can be replayed
// locally with the same byte streams. The seed is echoed in --json.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "net/protocol.h"

namespace {

using namespace lacrv;

u64 now_micros() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::microseconds>(t).count());
}

u64 splitmix(u64& state) {
  u64 z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Bytes random_bytes(u64& state, std::size_t n) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<u8>(splitmix(state));
  return out;
}

enum class Role { kHonest, kSlowloris, kGarbage, kHalfClose, kMidClose };

const char* role_name(Role r) {
  switch (r) {
    case Role::kHonest: return "honest";
    case Role::kSlowloris: return "slowloris";
    case Role::kGarbage: return "garbage";
    case Role::kHalfClose: return "halfclose";
    case Role::kMidClose: return "midclose";
  }
  return "?";
}

enum class Phase { kConnecting, kIdle, kEncapsSent, kDecapsSent, kDone };

struct Conn {
  int fd = -1;
  u64 id = 0;
  Role role = Role::kHonest;
  Phase phase = Phase::kConnecting;
  net::ResponseParser parser;
  Bytes out;
  std::size_t out_head = 0;
  bool want_write = false;
  bool dead = false;

  // Closed-loop handshake state.
  u64 inflight_id = 0;
  u64 sent_at = 0;
  std::array<u8, 32> expect_key{};
  std::size_t handshakes = 0;

  // Open-loop: request id -> send time for pipelined requests.
  std::unordered_map<u64, u64> outstanding;

  // Slowloris: the frame being trickled one byte at a time.
  Bytes trickle;
  std::size_t trickled = 0;
  u64 next_action = 0;

  bool got_typed_error = false;  // garbage role: the expected verdict
};

struct Tally {
  u64 sent = 0;
  u64 replies = 0;
  u64 handshakes_ok = 0;
  u64 shed = 0;  // typed kOverloaded / kUnavailable / kDeadlineExceeded
  u64 key_mismatches = 0;
  u64 honest_protocol_errors = 0;
  u64 honest_unexpected_eof = 0;
  u64 honest_other_errors = 0;
  u64 connect_failures = 0;
  u64 garbage_typed = 0;
  u64 garbage_unanswered = 0;
  u64 halfclose_replies = 0;
  u64 halfclose_unanswered = 0;
  u64 slowloris_reaped = 0;
  u64 slowloris_completed = 0;
  u64 midclose_sent = 0;
  stats::LatencyHistogram latency;

  u64 failures() const {
    return key_mismatches + honest_protocol_errors + honest_unexpected_eof +
           honest_other_errors + connect_failures + garbage_unanswered +
           halfclose_unanswered;
  }
};

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string port_file;
  std::size_t connections = 64;
  u64 duration_ms = 3000;
  std::size_t requests = 0;  // per honest connection; 0: until duration
  double rate = 0;           // >0: open loop, aggregate requests/sec
  bool chaos = false;
  bool json = false;
  u64 max_runtime_ms = 0;  // 0: duration + 15s
  u64 trickle_interval_ms = 25;
  /// Drives the payload/garbage RNG and the chaos-role schedule; two
  /// runs with the same seed and options produce the same byte streams.
  u64 seed = 0x10adc0de;
};

class LoadGen {
 public:
  explicit LoadGen(Options opt) : opt_(std::move(opt)), rng_(opt_.seed) {}

  int run() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      std::cerr << "loadgen: epoll_create1: " << std::strerror(errno) << "\n";
      return 2;
    }
    const u64 start = now_micros();
    stop_issuing_at_ = start + opt_.duration_ms * 1000;
    hard_deadline_ =
        start + (opt_.max_runtime_ms ? opt_.max_runtime_ms
                                     : opt_.duration_ms + 15'000) *
                    1000;
    next_fire_ = start;

    conns_.reserve(opt_.connections);
    for (std::size_t i = 0; i < opt_.connections; ++i)
      if (!open_conn(pick_role(i))) tally_.connect_failures++;

    loop();
    ::close(epoll_fd_);
    return report(now_micros() - start);
  }

 private:
  Role pick_role(std::size_t i) const {
    if (!opt_.chaos) return Role::kHonest;
    const std::size_t slot = i % 8;
    if (slot < 4) return Role::kHonest;
    // Seed-derived schedule: every block of eight connections still
    // fields four honest clients and one of each misbehaving role, but
    // which role lands on which slot rotates with --seed — so distinct
    // seeds exercise distinct interleavings while the mix (and thus the
    // assertions CI makes about it) stays fixed.
    static constexpr Role kChaosRoles[4] = {Role::kSlowloris, Role::kGarbage,
                                            Role::kHalfClose, Role::kMidClose};
    u64 state = opt_.seed ^ (i / 8) * 0x9E3779B97F4A7C15ull;
    return kChaosRoles[(slot + splitmix(state)) % 4];
  }

  bool open_conn(Role role) {
    const int fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<u16>(opt_.port));
    if (::inet_pton(AF_INET, opt_.host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      return false;
    }
    const int rc =
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    if (rc != 0 && errno != EINPROGRESS) {
      ::close(fd);
      return false;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->role = role;
    conn->phase = Phase::kConnecting;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      return false;
    }
    conns_.emplace(conn->id, std::move(conn));
    return true;
  }

  void update_interest(Conn& c) {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    if (c.want_write) ev.events |= EPOLLOUT;
    ev.data.u64 = c.id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
  }

  void close_conn(Conn& c) {
    if (c.dead) return;
    c.dead = true;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c.fd, nullptr);
    ::close(c.fd);
    c.fd = -1;
    reap_.push_back(c.id);
  }

  void send_bytes(Conn& c, Bytes bytes) {
    c.out.insert(c.out.end(), bytes.begin(), bytes.end());
    flush(c);
  }

  void flush(Conn& c) {
    while (c.out_head < c.out.size()) {
      const ssize_t n = ::send(c.fd, c.out.data() + c.out_head,
                               c.out.size() - c.out_head, MSG_NOSIGNAL);
      if (n > 0) {
        c.out_head += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      on_disconnect(c);
      return;
    }
    if (c.out_head == c.out.size()) {
      c.out.clear();
      c.out_head = 0;
      if (c.want_write) {
        c.want_write = false;
        update_interest(c);
      }
    } else if (!c.want_write) {
      c.want_write = true;
      update_interest(c);
    }
  }

  Bytes encaps_frame(Conn& c, u64* id_out) {
    net::RequestFrame f;
    f.op = net::WireOp::kEncaps;
    f.request_id = next_request_id_++;
    f.payload = random_bytes(rng_, 32);
    *id_out = f.request_id;
    ++tally_.sent;
    c.sent_at = now_micros();
    return net::encode_request(f);
  }

  void start_handshake(Conn& c) {
    c.phase = Phase::kEncapsSent;
    send_bytes(c, encaps_frame(c, &c.inflight_id));
  }

  void send_decaps(Conn& c, const Bytes& ct) {
    net::RequestFrame f;
    f.op = net::WireOp::kDecaps;
    f.request_id = next_request_id_++;
    f.payload = ct;
    c.inflight_id = f.request_id;
    c.phase = Phase::kDecapsSent;
    ++tally_.sent;
    c.sent_at = now_micros();
    send_bytes(c, net::encode_request(f));
  }

  bool issuing_open() const {
    return now_micros() < stop_issuing_at_;
  }

  void on_connected(Conn& c) {
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ++tally_.connect_failures;
      close_conn(c);
      return;
    }
    switch (c.role) {
      case Role::kHonest:
        if (opt_.rate > 0) {
          c.phase = Phase::kIdle;  // open loop: the pacer fires requests
          honest_ready_.push_back(c.id);
        } else {
          start_handshake(c);
        }
        break;
      case Role::kSlowloris: {
        u64 id;
        c.trickle = encaps_frame(c, &id);
        c.trickled = 0;
        c.next_action = now_micros();
        c.phase = Phase::kEncapsSent;
        break;
      }
      case Role::kGarbage:
        c.phase = Phase::kEncapsSent;
        send_bytes(c, random_bytes(rng_, 64));
        break;
      case Role::kHalfClose: {
        start_handshake(c);
        ::shutdown(c.fd, SHUT_WR);
        break;
      }
      case Role::kMidClose: {
        u64 id;
        send_bytes(c, encaps_frame(c, &id));
        ++tally_.midclose_sent;
        close_conn(c);
        break;
      }
    }
  }

  void on_disconnect(Conn& c) {
    switch (c.role) {
      case Role::kHonest:
        if (c.phase == Phase::kEncapsSent || c.phase == Phase::kDecapsSent ||
            !c.outstanding.empty())
          ++tally_.honest_unexpected_eof;
        break;
      case Role::kSlowloris:
        ++tally_.slowloris_reaped;  // read-deadline reap: the server won
        break;
      case Role::kGarbage:
        if (c.got_typed_error)
          ++tally_.garbage_typed;
        else
          ++tally_.garbage_unanswered;
        break;
      case Role::kHalfClose:
        if (c.phase == Phase::kEncapsSent || c.phase == Phase::kDecapsSent)
          ++tally_.halfclose_unanswered;
        break;
      case Role::kMidClose:
        break;
    }
    close_conn(c);
  }

  void handle_reply(Conn& c, net::ResponseFrame&& r) {
    ++tally_.replies;
    const bool shed_status = r.status == net::WireStatus::kOverloaded ||
                             r.status == net::WireStatus::kUnavailable ||
                             r.status == net::WireStatus::kDeadlineExceeded;

    if (c.role == Role::kGarbage) {
      if (net::is_protocol_error(r.status)) c.got_typed_error = true;
      return;  // the server closes; on_disconnect scores the outcome
    }
    if (c.role == Role::kSlowloris) {
      ++tally_.slowloris_completed;  // long server deadline: frame landed
      c.phase = Phase::kIdle;
      return;
    }

    // Honest and half-close cohorts: full verdict accounting.
    if (net::is_protocol_error(r.status)) {
      ++tally_.honest_protocol_errors;
      std::cerr << "loadgen: " << role_name(c.role)
                << " conn got protocol error "
                << net::wire_status_name(r.status) << ": "
                << std::string(r.payload.begin(), r.payload.end()) << "\n";
      return;
    }

    if (opt_.rate > 0 && c.role == Role::kHonest) {
      auto it = c.outstanding.find(r.request_id);
      if (it != c.outstanding.end()) {
        tally_.latency.record(now_micros() - it->second);
        c.outstanding.erase(it);
      }
      if (shed_status)
        ++tally_.shed;
      else if (r.status != net::WireStatus::kOk)
        ++tally_.honest_other_errors;
      return;
    }

    if (r.request_id != c.inflight_id) return;  // stale (already recycled)
    tally_.latency.record(now_micros() - c.sent_at);

    if (shed_status) {
      ++tally_.shed;
      next_cycle(c);
      return;
    }
    if (r.status != net::WireStatus::kOk) {
      ++tally_.honest_other_errors;
      next_cycle(c);
      return;
    }

    if (c.phase == Phase::kEncapsSent) {
      if (r.payload.size() < 32) {
        ++tally_.honest_other_errors;
        next_cycle(c);
        return;
      }
      std::copy(r.payload.end() - 32, r.payload.end(), c.expect_key.begin());
      if (c.role == Role::kHalfClose) {
        // The write side is already shut; the reply itself is the win.
        ++tally_.halfclose_replies;
        c.phase = Phase::kDone;
        return;
      }
      send_decaps(c, Bytes(r.payload.begin(), r.payload.end() - 32));
      return;
    }
    if (c.phase == Phase::kDecapsSent) {
      if (r.payload.size() == 32 &&
          std::equal(r.payload.begin(), r.payload.end(),
                     c.expect_key.begin()))
        ++tally_.handshakes_ok;
      else
        ++tally_.key_mismatches;
      ++c.handshakes;
      next_cycle(c);
    }
  }

  void next_cycle(Conn& c) {
    const bool budget_left =
        opt_.requests == 0 || c.handshakes < opt_.requests;
    if (budget_left && issuing_open())
      start_handshake(c);
    else {
      c.phase = Phase::kDone;
      close_conn(c);
    }
  }

  void on_readable(Conn& c) {
    u8 buf[16384];
    for (;;) {
      const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
      if (n > 0) {
        c.parser.feed(ByteView(buf, static_cast<std::size_t>(n)));
        net::ResponseFrame r;
        for (;;) {
          const net::ParseResult pr = c.parser.next(&r);
          if (pr == net::ParseResult::kFrame) {
            handle_reply(c, std::move(r));
            if (c.dead) return;
            continue;
          }
          if (pr == net::ParseResult::kNeedMore) break;
          // The *server* broke framing — that is always a failure.
          ++tally_.honest_protocol_errors;
          close_conn(c);
          return;
        }
        continue;
      }
      if (n == 0) {
        on_disconnect(c);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      on_disconnect(c);
      return;
    }
  }

  void pace_open_loop(u64 t) {
    if (opt_.rate <= 0 || !issuing_open() || honest_ready_.empty()) return;
    const u64 interval =
        static_cast<u64>(1'000'000.0 / opt_.rate) + (opt_.rate > 1e6 ? 0 : 0);
    while (t >= next_fire_) {
      next_fire_ += (interval == 0 ? 1 : interval);
      Conn* c = nullptr;
      for (std::size_t tries = 0;
           tries < honest_ready_.size() && c == nullptr; ++tries) {
        const u64 id = honest_ready_[rr_++ % honest_ready_.size()];
        auto it = conns_.find(id);
        if (it != conns_.end() && !it->second->dead) c = it->second.get();
      }
      if (!c) return;
      net::RequestFrame f;
      f.op = net::WireOp::kEncaps;
      f.request_id = next_request_id_++;
      f.payload = random_bytes(rng_, 32);
      c->outstanding.emplace(f.request_id, now_micros());
      ++tally_.sent;
      send_bytes(*c, net::encode_request(f));
    }
  }

  void trickle_slowloris(u64 t) {
    if (!opt_.chaos) return;
    for (auto& [id, conn] : conns_) {
      Conn& c = *conn;
      if (c.dead || c.role != Role::kSlowloris ||
          c.phase != Phase::kEncapsSent)
        continue;
      if (t < c.next_action || c.trickled >= c.trickle.size()) continue;
      const u8 byte = c.trickle[c.trickled];
      const ssize_t n = ::send(c.fd, &byte, 1, MSG_NOSIGNAL);
      if (n == 1) ++c.trickled;
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
          errno != EINTR) {
        on_disconnect(c);
        continue;
      }
      c.next_action = t + opt_.trickle_interval_ms * 1000;
    }
  }

  void loop() {
    epoll_event events[128];
    bool draining = false;
    u64 drain_deadline = 0;
    for (;;) {
      const u64 t = now_micros();
      if (t >= hard_deadline_) {
        std::cerr << "loadgen: hard deadline hit — server hung?\n";
        hung_ = true;
        return;
      }
      if (!draining && t >= stop_issuing_at_) {
        draining = true;
        drain_deadline = t + 3'000'000;
        // Stop chaos conns that will never resolve on their own.
        for (auto& [id, conn] : conns_)
          if (!conn->dead && (conn->role == Role::kSlowloris ||
                              conn->phase == Phase::kIdle ||
                              conn->phase == Phase::kDone))
            close_conn(*conn);
      }
      if (draining) {
        bool outstanding = false;
        for (auto& [id, conn] : conns_)
          if (!conn->dead) outstanding = true;
        if (!outstanding || t >= drain_deadline) {
          for (auto& [id, conn] : conns_)
            if (!conn->dead) on_disconnect(*conn);
          reap();
          return;
        }
      }

      const int n = ::epoll_wait(epoll_fd_, events, 128, 10);
      if (n < 0 && errno != EINTR) return;
      for (int i = 0; i < n; ++i) {
        auto it = conns_.find(events[i].data.u64);
        if (it == conns_.end() || it->second->dead) continue;
        Conn& c = *it->second;
        if (c.phase == Phase::kConnecting) {
          if (events[i].events & (EPOLLOUT | EPOLLIN | EPOLLERR)) {
            c.phase = Phase::kIdle;
            update_interest(c);
            on_connected(c);
          }
          continue;
        }
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          on_readable(c);  // collect any final reply bytes first
          if (!c.dead) on_disconnect(c);
          continue;
        }
        if (events[i].events & EPOLLOUT) {
          flush(c);
          if (c.dead) continue;
        }
        if (events[i].events & (EPOLLIN | EPOLLRDHUP)) on_readable(c);
      }
      const u64 t2 = now_micros();
      pace_open_loop(t2);
      trickle_slowloris(t2);
      reap();
    }
  }

  void reap() {
    for (u64 id : reap_) conns_.erase(id);
    reap_.clear();
  }

  int report(u64 elapsed_micros) {
    const Tally& s = tally_;
    const double secs =
        static_cast<double>(elapsed_micros) / 1e6;
    const double rps =
        secs > 0 ? static_cast<double>(s.replies) / secs : 0;
    if (opt_.json) {
      std::cout << "{\"sent\":" << s.sent << ",\"replies\":" << s.replies
                << ",\"handshakes_ok\":" << s.handshakes_ok
                << ",\"shed\":" << s.shed
                << ",\"key_mismatches\":" << s.key_mismatches
                << ",\"honest_protocol_errors\":" << s.honest_protocol_errors
                << ",\"honest_unexpected_eof\":" << s.honest_unexpected_eof
                << ",\"honest_other_errors\":" << s.honest_other_errors
                << ",\"connect_failures\":" << s.connect_failures
                << ",\"garbage_typed\":" << s.garbage_typed
                << ",\"garbage_unanswered\":" << s.garbage_unanswered
                << ",\"halfclose_replies\":" << s.halfclose_replies
                << ",\"halfclose_unanswered\":" << s.halfclose_unanswered
                << ",\"slowloris_reaped\":" << s.slowloris_reaped
                << ",\"slowloris_completed\":" << s.slowloris_completed
                << ",\"midclose_sent\":" << s.midclose_sent
                << ",\"rps\":" << rps
                << ",\"p50_micros\":" << s.latency.percentile_micros(50)
                << ",\"p99_micros\":" << s.latency.percentile_micros(99)
                << ",\"p999_micros\":" << s.latency.percentile_micros(99.9)
                << ",\"failures\":" << s.failures()
                << ",\"seed\":" << opt_.seed
                << ",\"hung\":" << (hung_ ? "true" : "false") << "}\n";
    } else {
      std::cout << "loadgen: " << opt_.connections << " conns ("
                << (opt_.chaos ? "chaos mix" : "all honest") << "), "
                << (opt_.rate > 0 ? "open loop" : "closed loop") << ", "
                << secs << "s, seed " << opt_.seed << "\n"
                << "  sent " << s.sent << " | replies " << s.replies << " ("
                << rps << " rps) | handshakes ok " << s.handshakes_ok
                << " | shed " << s.shed << "\n"
                << "  latency p50 " << s.latency.percentile_micros(50)
                << "us  p99 " << s.latency.percentile_micros(99)
                << "us  p99.9 " << s.latency.percentile_micros(99.9)
                << "us  (" << s.latency.count() << " samples)\n";
      if (opt_.chaos)
        std::cout << "  chaos: garbage typed " << s.garbage_typed << "/"
                  << (s.garbage_typed + s.garbage_unanswered)
                  << " | halfclose replies " << s.halfclose_replies
                  << " | slowloris reaped " << s.slowloris_reaped
                  << " completed " << s.slowloris_completed
                  << " | midclose " << s.midclose_sent << "\n";
      std::cout << "  failures: " << s.failures() << " (key mismatch "
                << s.key_mismatches << ", protocol " << s.honest_protocol_errors
                << ", eof " << s.honest_unexpected_eof << ", other "
                << s.honest_other_errors << ", connect "
                << s.connect_failures << ", garbage unanswered "
                << s.garbage_unanswered << ", halfclose unanswered "
                << s.halfclose_unanswered << ")\n";
    }
    if (hung_) return 2;
    if (s.failures() > 0) return 1;
    // Progress gate: an honest cohort that completed nothing means the
    // server never actually served.
    const bool had_honest = opt_.connections > 0;
    if (had_honest && s.replies == 0) {
      std::cerr << "loadgen: no replies received\n";
      return 1;
    }
    return 0;
  }

  Options opt_;
  int epoll_fd_ = -1;
  std::unordered_map<u64, std::unique_ptr<Conn>> conns_;
  std::vector<u64> reap_;
  std::vector<u64> honest_ready_;
  std::size_t rr_ = 0;
  u64 next_conn_id_ = 1;
  u64 next_request_id_ = 1;
  u64 rng_;  // seeded from opt_.seed in the constructor
  u64 stop_issuing_at_ = 0;
  u64 hard_deadline_ = 0;
  u64 next_fire_ = 0;
  bool hung_ = false;
  Tally tally_;
};

int read_port_file(const std::string& path) {
  // The server writes the resolved ephemeral port once listening; poll
  // briefly so CI can launch both sides without a sleep.
  const u64 deadline = now_micros() + 10'000'000;
  while (now_micros() < deadline) {
    std::ifstream in(path);
    int port = 0;
    if (in >> port && port > 0) return port;
    ::usleep(50'000);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? std::string(argv[++i]) : std::string();
    };
    if (arg == "--host") opt.host = next();
    else if (arg == "--port") opt.port = std::stoi(next());
    else if (arg == "--port-file") opt.port_file = next();
    else if (arg == "--connections") opt.connections = std::stoul(next());
    else if (arg == "--duration-ms") opt.duration_ms = std::stoull(next());
    else if (arg == "--requests") opt.requests = std::stoul(next());
    else if (arg == "--rate") opt.rate = std::stod(next());
    else if (arg == "--chaos") opt.chaos = true;
    else if (arg == "--seed") opt.seed = std::stoull(next(), nullptr, 0);
    else if (arg == "--json") opt.json = true;
    else if (arg == "--max-runtime-ms") opt.max_runtime_ms = std::stoull(next());
    else if (arg == "--trickle-interval-ms")
      opt.trickle_interval_ms = std::stoull(next());
    else {
      std::cerr << "loadgen: unknown option " << arg << "\n";
      return 2;
    }
  }
  if (!opt.port_file.empty()) opt.port = read_port_file(opt.port_file);
  if (opt.port <= 0 || opt.port > 65535) {
    std::cerr << "loadgen: need --port or --port-file (got "
              << opt.port << ")\n";
    return 2;
  }
  return LoadGen(opt).run();
}
