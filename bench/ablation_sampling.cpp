// Ablation: what a hardware fixed-weight sampler would buy.
//
// The Keccak ablation (ablation_keccak) shows the hash swap alone cannot
// close the gap to NewHope's 42k-cycle GenA: LAC's polynomial generation
// is bound by the *sampling software* around the PRG. This bench projects
// the next co-design step the paper's data implies — moving the
// rejection/shuffle loops into hardware next to the PRG core:
//
//   model: the sampler unit consumes PRG output directly (no register
//   round trips), retiring one candidate per cycle plus a fixed-weight
//   shuffle pipeline of one position per cycle; software only issues the
//   command and reads back packed coefficients (n/4 word reads).
#include <iomanip>
#include <iostream>

#include "common/costs.h"
#include "hash/keccak.h"
#include "lac/sampler.h"

namespace {

using namespace lacrv;

constexpr u64 kKeccakBlockCost = 25 + (hash::Shake128::kRate / 4) * 3;

struct Projection {
  u64 gen_a, sample;
};

/// Current optimized implementation (pq.sha256 + software glue).
Projection current(const lac::Params& params) {
  hash::Seed seed{};
  CycleLedger ga, sp;
  lac::gen_a(seed, params, lac::HashImpl::kAccelerated, &ga);
  lac::sample_fixed_weight(seed, params, lac::HashImpl::kAccelerated, &sp);
  return {ga.total(), sp.total()};
}

/// Hardware sampler next to a Keccak core: PRG blocks feed the sampler
/// directly; coefficients come back packed 4-per-word.
Projection hw_sampler(const lac::Params& params) {
  // GenA: ~n candidates (rejection rate 251/256), 1/cycle, plus block
  // permutations and the packed readback.
  hash::Seed seed{};
  hash::Shake128 xof(ByteView(seed.data(), seed.size()));
  for (std::size_t i = 0; i < params.n; ++i) xof.next_below(poly::kQ);
  const u64 gen_a = xof.permutations() * kKeccakBlockCost + params.n /*1/cyc*/ +
                    (params.n / 4) * (cost::kPqIssue + cost::kStore) +
                    cost::kKernelCallOverhead;
  // fixed-weight sampler: h shuffle picks at 1/cycle + readback.
  const u64 prg_blocks = (4 * params.weight) / hash::Shake128::kRate + 1;
  const u64 sample = prg_blocks * kKeccakBlockCost + params.weight +
                     (params.n / 4) * (cost::kPqIssue + cost::kStore) +
                     cost::kKernelCallOverhead;
  return {gen_a, sample};
}

}  // namespace

int main() {
  std::cout << "Ablation: hardware fixed-weight sampler projection\n\n";
  std::cout << std::left << std::setw(10) << "level" << std::right
            << std::setw(16) << "GenA now" << std::setw(16) << "GenA HW-smp"
            << std::setw(16) << "Sample now" << std::setw(17)
            << "Sample HW-smp" << "\n";
  for (const lac::Params* params : lac::Params::all()) {
    const Projection now = current(*params);
    const Projection hw = hw_sampler(*params);
    std::cout << std::left << std::setw(10) << params->name << std::right
              << std::setw(16) << now.gen_a << std::setw(16) << hw.gen_a
              << std::setw(16) << now.sample << std::setw(17) << hw.sample
              << "\n";
  }
  const Projection hw1024 = hw_sampler(lac::Params::lac256());
  std::cout << "\nWith sampling in hardware, LAC-256's polynomial "
               "generation drops to ~"
            << hw1024.gen_a
            << " cycles — an idealized 1-coefficient-per-cycle bound, two "
               "orders of magnitude below today's ~286k and far below even "
               "NewHope's 42,050-cycle GenA [8]. The conclusion matches "
               "the Keccak ablation from the other side: the sampling "
               "software, not the hash primitive, is the binding "
               "constraint the paper's co-design leaves on the table.\n";
  return 0;
}
