// Ablation: Karatsuba vs the paper's 4-multiplication splitting
// (Sec. IV-A, left as future work in the paper — implemented here).
//
// Karatsuba reduces the four length-512 partial products of Algorithm 1
// to three, but the middle product multiplies *sums* of operand halves:
// the ternary operand sums are no longer ternary, so MUL TER cannot
// compute them — a general (G x G) multiplier would be required, which
// exchanges every MAU's adder/subtractor for a byte multiplier (DSP or
// ~3x LUTs). This bench quantifies both sides of that trade-off and
// functionally validates the Karatsuba path.
#include <iomanip>
#include <iostream>

#include "common/costs.h"
#include "common/rng.h"
#include "poly/karatsuba.h"
#include "poly/split_mul.h"
#include "rtl/mul_ter.h"

namespace {

using namespace lacrv;

u64 call_cost(u64 unit_len, u64 significant) {
  return cost::kKernelCallOverhead +
         (significant + 4) / 5 * cost::kMulTerLoadChunk +
         cost::kMulTerStartOverhead + unit_len +
         (unit_len + 3) / 4 * cost::kMulTerReadChunk;
}

u64 full_product_cost(u64 m, u64 unit_len) {
  if (2 * m <= unit_len) return call_cost(unit_len, m);
  return 4 * full_product_cost(m / 2, unit_len) +
         3 * m * cost::kSplitRecombineStep;
}

}  // namespace

int main() {
  constexpr u64 kN = 1024, kUnit = 512;

  // Paper's scheme: 4 full 512-products on the ternary unit.
  const u64 four_mult =
      4 * full_product_cost(kN / 2, kUnit) + 2 * kN * cost::kSplitRecombineStep;

  // Karatsuba at the top level: 3 full 512-products on a hypothetical
  // general unit + operand-sum additions + middle-term corrections.
  const u64 three_mult = 3 * full_product_cost(kN / 2, kUnit) +
                         2 * (kN / 2) * cost::kSplitRecombineStep +  // al+ah, bl+bh
                         3 * kN * cost::kSplitRecombineStep;         // p1-p0-p2 & wrap

  std::cout << "Ablation: Karatsuba vs 4-mult splitting (n = 1024, "
               "length-512 unit)\n\n";
  std::cout << "  4-mult ternary splitting (paper):      " << four_mult
            << " cycles, ternary MUL TER suffices\n";
  std::cout << "  3-mult Karatsuba (future work):        " << three_mult
            << " cycles ("
            << std::fixed << std::setprecision(1)
            << 100.0 * (1.0 - static_cast<double>(three_mult) /
                                  static_cast<double>(four_mult))
            << "% fewer), but requires a G x G unit\n\n";

  // Area consequence of a general unit: every MAU gains an 8x8 modular
  // multiplier. With DSP packing that is ~1 DSP per 2 lanes; in LUTs,
  // roughly +35 LUTs per lane on top of the MAU.
  const rtl::AreaReport ternary = rtl::MulTerRtl(kUnit).area();
  std::cout << "  ternary unit area:  " << ternary.luts << " LUTs, 0 DSPs\n";
  std::cout << "  general unit area:  ~" << ternary.luts + kUnit * 35
            << " LUTs (or " << ternary.luts << " LUTs + " << kUnit / 2
            << " DSPs) — the complexity increase Sec. IV-A cites for "
               "leaving Karatsuba as future work\n\n";

  // Functional validation of the Karatsuba path against the two oracles.
  Xoshiro256 rng(1);
  poly::Ternary s(kN);
  poly::Coeffs b(kN);
  for (auto& v : s)
    v = static_cast<i8>(static_cast<int>(rng.next_below(3)) - 1);
  for (auto& v : b) v = static_cast<u8>(rng.next_below(poly::kQ));
  const poly::Coeffs via_kara =
      poly::mul_general_negacyclic(poly::from_ternary(s), b);
  const poly::Coeffs via_split =
      poly::split_mul_high(s, b, poly::software_mul_ter());
  std::cout << "  functional check (Karatsuba == Algorithm 1 splitting): "
            << (via_kara == via_split ? "PASS" : "FAIL") << "\n";
  return via_kara == via_split ? 0 : 1;
}
