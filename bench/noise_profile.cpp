// Decryption-noise profile — the experiment behind LAC's design choice
// that the paper's Sec. I summarizes: one-byte coefficients (q = 251)
// push the per-bit error rate up, and the strong BCH code (plus D2 for
// LAC-256) absorbs it. This bench runs Monte-Carlo encryptions and
// reports the observed codeword-bit error distribution per security
// level against the code's correction capability t.
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <map>

#include "common/rng.h"
#include "lac/pke.h"

namespace {

using namespace lacrv;

hash::Seed seed_of(u64 x) {
  hash::Seed s{};
  for (int i = 0; i < 8; ++i) s[i] = static_cast<u8>(x >> (8 * i));
  return s;
}

/// Count how many codeword bits the BCH decoder had to fix for one
/// keygen/encrypt/decrypt round (plus whether the message survived).
struct Trial {
  int bit_errors;
  bool ok;
};

Trial run_trial(const lac::Params& params, u64 seed) {
  const lac::Backend backend = lac::Backend::reference_const_bch();
  Xoshiro256 rng(seed);
  const lac::KeyPair kp = lac::keygen(params, backend, seed_of(seed));
  bch::Message msg;
  rng.fill(msg.data(), msg.size());
  const lac::Ciphertext ct =
      lac::encrypt(params, backend, kp.pk, msg, seed_of(seed ^ 0xABCD));

  // Recompute the pre-BCH bit estimates to count raw channel errors:
  // decrypt() corrects them silently, so we re-derive w here.
  const poly::Coeffs us = poly::mul_sparse(ct.u, kp.sk.s, true);
  const std::size_t lv = params.v_len();
  poly::Coeffs w(lv);
  for (std::size_t i = 0; i < lv; ++i)
    w[i] = poly::sub_mod(lac::decompress4(ct.v[i]), us[i]);

  const bch::BitVec cw = bch::encode(*params.code, msg);
  const std::size_t L = params.cw_bits();
  int errors = 0;
  for (std::size_t i = 0; i < L; ++i) {
    u32 dist_one = lac::ring_distance(w[i], lac::kHalfQ);
    u32 dist_zero = lac::ring_distance(w[i], 0);
    if (params.d2) {
      dist_one += lac::ring_distance(w[i + L], lac::kHalfQ);
      dist_zero += lac::ring_distance(w[i + L], 0);
    }
    const int bit = dist_one < dist_zero ? 1 : 0;
    errors += (bit != cw[i]);
  }
  const lac::DecryptResult dec = lac::decrypt(params, backend, kp.sk, ct);
  return {errors, dec.ok && dec.message == msg};
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 60;
  std::cout << "Decryption-noise profile (" << trials
            << " Monte-Carlo trials per level)\n\n";
  for (const lac::Params* params : lac::Params::all()) {
    std::map<int, int> histogram;
    int max_errors = 0, failures = 0;
    for (int i = 0; i < trials; ++i) {
      const Trial t = run_trial(*params, 1000 + static_cast<u64>(i));
      ++histogram[t.bit_errors];
      max_errors = std::max(max_errors, t.bit_errors);
      failures += !t.ok;
    }
    std::cout << params->name << "  (n=" << params->n
              << ", h=" << params->weight << ", t=" << params->code->t
              << (params->d2 ? ", D2" : "") << ")\n";
    std::cout << "  raw codeword bit errors per encryption:";
    for (const auto& [errors, count] : histogram)
      std::cout << "  " << errors << "x" << count;
    std::cout << "\n  max observed: " << max_errors
              << "  (capability t = " << params->code->t << ")"
              << "   message failures: " << failures << "/" << trials
              << "\n\n";
  }
  std::cout << "LAC-192's sparser secrets (h = 256 over n = 1024) keep the "
               "noise low enough for t = 8; LAC-256 needs both t = 16 and "
               "the D2 duplication.\n";
  return 0;
}
