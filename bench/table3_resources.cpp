// Regenerates Table III: FPGA resource utilization via the structural
// area model (DESIGN.md documents the substitution: primitive inventories
// of the RTL models mapped to UltraScale+ LUT/FF/DSP estimates; platform
// baseline rows are quoted constants).
#include <iostream>

#include "perf/tables.h"
#include "riscv/pq_alu.h"

int main() {
  using namespace lacrv;
  perf::print_table3(std::cout, perf::table3());

  rv::PqAlu alu;
  const rtl::AreaReport total = alu.area();
  std::cout << "\nPQ-ALU accelerator total: " << total.luts << " LUTs, "
            << total.registers << " registers, " << total.dsps
            << " DSP slices (paper abstract: 32,617 LUTs, 11,019 "
               "registers, two DSP slices)\n";
  return 0;
}
