// kem_server — the resilient KEM service end to end: a worker pool
// terminating KEM handshakes while a fault campaign attacks the
// accelerator units underneath it.
//
// The demo runs three acts:
//   1. healthy burst    — concurrent encaps/decaps on the PQ-ALU rigs
//   2. fault campaign   — a stuck-at fault is armed on the live pool;
//                         breakers trip and traffic reroutes to the
//                         software fallback without dropping a request
//   3. recovery         — the campaign ends, the health prober walks the
//                         breakers half-open -> closed, hardware returns
//
// After each act it prints the service counters; at the end, the latency
// histograms and the DegradeReport (the service's incident log).
//
//   ./build/examples/kem_server [handshakes-per-act]   (default 64)
#include <chrono>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "fault/plan.h"
#include "service/service.h"

namespace {

using namespace lacrv;

hash::Seed entropy_for(u64 i) {
  hash::Seed s{};
  u64 state = 0xd3a0 ^ (i * 0x9E3779B97F4A7C15ull);
  for (std::size_t b = 0; b < s.size(); b += 8) {
    const u64 draw = fault::splitmix64(state);
    for (std::size_t k = 0; k < 8; ++k)
      s[b + k] = static_cast<u8>(draw >> (8 * k));
  }
  return s;
}

struct ActTally {
  std::size_t agreed = 0;
  std::size_t rejected = 0;
  std::size_t degraded = 0;
};

/// One act: `n` full handshakes (encaps burst, then decaps of every
/// produced ciphertext), tallying key agreement vs. typed rejection.
ActTally run_act(service::KemService& svc, std::size_t n, u64 tag) {
  std::vector<std::future<service::KemResponse>> encs;
  encs.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    encs.push_back(svc.submit({service::OpKind::kEncaps,
                               entropy_for(tag * 100'000 + i),
                               {},
                               service::kNoDeadline}));

  ActTally tally;
  std::vector<lac::EncapsResult> handshakes;
  for (auto& f : encs) {
    service::KemResponse r = f.get();
    if (r.served_by_fallback) ++tally.degraded;
    if (r.status == Status::kOk)
      handshakes.push_back(r.encaps);
    else
      ++tally.rejected;
  }

  std::vector<std::future<service::KemResponse>> decs;
  decs.reserve(handshakes.size());
  for (const lac::EncapsResult& h : handshakes) {
    service::KemRequest req;
    req.op = service::OpKind::kDecaps;
    req.ct = h.ct;
    decs.push_back(svc.submit(std::move(req)));
  }
  for (std::size_t i = 0; i < decs.size(); ++i) {
    service::KemResponse r = decs[i].get();
    if (r.served_by_fallback) ++tally.degraded;
    if (r.status == Status::kOk && r.key == handshakes[i].key)
      ++tally.agreed;
    else
      ++tally.rejected;
  }
  return tally;
}

void report(const char* act, const ActTally& t,
            const service::KemService& svc) {
  std::cout << "  " << act << ": " << t.agreed << " keys agreed, "
            << t.rejected << " typed rejections, " << t.degraded
            << " ops on software fallback\n  counters: "
            << svc.counters().to_string() << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 64;

  service::ServiceConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 2 * n + 8;
  cfg.probe_interval_micros = 5'000;
  service::KemService svc(cfg);
  std::cout << "kem_server: " << cfg.workers << " workers, queue capacity "
            << cfg.queue_capacity << ", " << svc.params().name << "\n\n";

  std::cout << "[act 1] healthy accelerators\n";
  report("healthy", run_act(svc, n, 1), svc);

  std::cout << "[act 2] fault campaign: stuck-at-1 bit in the ternary "
               "multiplier datapath\n";
  fault::FaultPlan plan;
  plan.add({fault::Unit::kMulTer, rtl::FaultKind::kStuckAtOne, 0, 5, 3});
  svc.arm_faults(plan);
  report("under fault", run_act(svc, n, 2), svc);
  print_status(std::cout, "kem-server",
               svc.breaker_state(fault::Unit::kMulTer) ==
                       service::BreakerState::kOpen
                   ? Status::kUnavailable
                   : Status::kOk,
               std::string("mul_ter breaker ") +
                   service::breaker_state_name(
                       svc.breaker_state(fault::Unit::kMulTer)));

  std::cout << "\n[act 3] campaign over: waiting for the prober to heal "
               "the breakers\n";
  svc.clear_faults();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (svc.breaker_state(fault::Unit::kMulTer) !=
             service::BreakerState::kClosed &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  print_status(std::cout, "kem-server", Status::kOk,
               std::string("mul_ter breaker ") +
                   service::breaker_state_name(
                       svc.breaker_state(fault::Unit::kMulTer)));
  report("recovered", run_act(svc, n, 3), svc);

  std::cout << "latency (encaps):\n"
            << svc.raw_counters().encaps_latency.to_string()
            << "\nlatency (decaps):\n"
            << svc.raw_counters().decaps_latency.to_string()
            << "\nincident log:\n  " << svc.degrade_report().to_string()
            << "\n";
  svc.stop();
  return 0;
}
