// kem_server — the resilient KEM service end to end: a worker pool
// terminating KEM handshakes while a fault campaign attacks the
// accelerator units underneath it.
//
// The demo runs three acts:
//   1. healthy burst    — concurrent encaps/decaps on the PQ-ALU rigs
//   2. fault campaign   — a stuck-at fault is armed on the live pool;
//                         breakers trip and traffic reroutes to the
//                         software fallback without dropping a request
//   3. recovery         — the campaign ends, the health prober walks the
//                         breakers half-open -> closed, hardware returns
//
// After each act it prints the service counters; at the end, the latency
// histograms and the DegradeReport (the service's incident log).
//
//   kem_server [handshakes-per-act] [--trace t.json] [--metrics m.prom]
//              [--mix mul_ter=rtl,sha256=sw,...]
//
// --mix selects the per-slot implementation mix of the worker rigs
// (slots: mul_ter, chien, sha256, modq; unlisted slots run the modeled
// software implementation).
//
// --trace installs a process-wide tracer and writes a Chrome
// trace-event / Perfetto JSON timeline of every request (queue wait,
// attempts, KEM phases, RTL busy windows, breaker transitions).
// --metrics dumps the unified Prometheus-style exposition after every
// act (on demand) and again at shutdown. Both writes are checked:
// a disk-full / unwritable path is a typed kInternalError on stderr and
// a nonzero exit, never a silently-empty artifact.
//
// Serving mode (docs/serving.md):
//
//   kem_server --listen <port> [--port-file F] [--workers N]
//              [--queue-capacity Q] [--max-connections M]
//              [--read-deadline-ms R] [--idle-deadline-ms I]
//              [--request-deadline-ms D] [--drain-ms G]
//              [--verify-sample P] [--fault-storm unit,count,seed,max_edge]
//              [--trace ...] [--metrics ...]
//
// runs the epoll TCP front end (src/net/) over the same service until
// SIGTERM/SIGINT, then shuts down gracefully: the server stops
// accepting, finishes in-flight requests and flushes every reply
// (TcpServer::stop(drain)), then the service executes what is still
// queued (KemService::drain()) — no request that was admitted is
// dropped. Port 0 binds an ephemeral port; --port-file publishes the
// resolved port for the load generator. --drain-ms bounds the graceful
// drain (in-flight requests and reply flushes; default 10000).
//
// --verify-sample P enables shadow verification (docs/robustness.md):
// P‰ of live requests are re-executed on the golden scalar models and
// compared bit for bit; a divergence quarantines the implicated slots.
// --fault-storm arms an *evasive* transient-bit-flip campaign
// (FaultPlan::storm) on one unit — the adversary the KAT gate cannot
// catch — so CI can assert the sampler trips the quarantine
// (lacrv_verify_quarantine_trips_total) on a live server. Units:
// mul_ter, gf_mul, chien, sha256, barrett.
#include <csignal>
#include <cstdio>

#include <chrono>
#include <fstream>
#include <functional>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "fault/plan.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/service.h"

namespace {

using namespace lacrv;

hash::Seed entropy_for(u64 i) {
  hash::Seed s{};
  u64 state = 0xd3a0 ^ (i * 0x9E3779B97F4A7C15ull);
  for (std::size_t b = 0; b < s.size(); b += 8) {
    const u64 draw = fault::splitmix64(state);
    for (std::size_t k = 0; k < 8; ++k)
      s[b + k] = static_cast<u8>(draw >> (8 * k));
  }
  return s;
}

struct ActTally {
  std::size_t agreed = 0;
  std::size_t rejected = 0;
  std::size_t degraded = 0;
};

/// One act: `n` full handshakes (encaps burst, then decaps of every
/// produced ciphertext), tallying key agreement vs. typed rejection.
/// Bursts go through submit_batch(): one queue lock round-trip admits
/// the act, and the workers' micro-batches show up as service.batch
/// spans in the trace.
ActTally run_act(service::KemService& svc, std::size_t n, u64 tag) {
  std::vector<service::KemRequest> encaps_burst;
  encaps_burst.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    encaps_burst.push_back({service::OpKind::kEncaps,
                            entropy_for(tag * 100'000 + i),
                            {},
                            service::kNoDeadline});
  std::vector<std::future<service::KemResponse>> encs =
      svc.submit_batch(std::move(encaps_burst));

  ActTally tally;
  std::vector<lac::EncapsResult> handshakes;
  for (auto& f : encs) {
    service::KemResponse r = f.get();
    if (r.served_by_fallback) ++tally.degraded;
    if (r.status == Status::kOk)
      handshakes.push_back(r.encaps);
    else
      ++tally.rejected;
  }

  std::vector<service::KemRequest> decaps_burst;
  decaps_burst.reserve(handshakes.size());
  for (const lac::EncapsResult& h : handshakes) {
    service::KemRequest req;
    req.op = service::OpKind::kDecaps;
    req.ct = h.ct;
    decaps_burst.push_back(std::move(req));
  }
  std::vector<std::future<service::KemResponse>> decs =
      svc.submit_batch(std::move(decaps_burst));
  for (std::size_t i = 0; i < decs.size(); ++i) {
    service::KemResponse r = decs[i].get();
    if (r.served_by_fallback) ++tally.degraded;
    if (r.status == Status::kOk && r.key == handshakes[i].key)
      ++tally.agreed;
    else
      ++tally.rejected;
  }
  return tally;
}

void report(const char* act, const ActTally& t,
            const service::KemService& svc) {
  std::cout << "  " << act << ": " << t.agreed << " keys agreed, "
            << t.rejected << " typed rejections, " << t.degraded
            << " ops on software fallback\n  counters: "
            << svc.counters().to_string() << "\n\n";
}

// I/O-error propagation (satellite of the serving tier): every file
// artifact this binary promises (--metrics, --trace, --port-file) is
// written through here, and a failed write is a typed status on stderr
// plus a nonzero exit — operators must never trust a silently-truncated
// metrics dump or trace.
bool write_checked(const std::string& path, const char* what,
                   const std::function<void(std::ostream&)>& writer) {
  std::ofstream out(path);
  if (!out) {
    print_status(std::cerr, "kem-server", Status::kInternalError,
                 std::string("cannot open ") + what + " file " + path);
    return false;
  }
  writer(out);
  out.flush();
  if (!out) {
    print_status(std::cerr, "kem-server", Status::kInternalError,
                 std::string("write failed for ") + what + " file " + path);
    return false;
  }
  return true;
}

// SIGTERM/SIGINT -> graceful drain. Only a flag is set in the handler;
// the serving loop polls it (async-signal-safety). Both signals take
// the identical path: Ctrl-C on a terminal drains exactly like an
// orchestrator's SIGTERM — no fast-exit special case.
volatile std::sig_atomic_t g_shutdown = 0;
void on_signal(int) { g_shutdown = 1; }

bool unit_from_name(const std::string& name, fault::Unit* out) {
  for (const fault::Unit u : fault::kRtlUnits) {
    if (name == fault::unit_name(u)) {
      *out = u;
      return true;
    }
  }
  return false;
}

/// "--fault-storm unit,count,seed,max_edge" -> an armed evasive plan.
bool parse_storm_spec(const std::string& spec, fault::Unit* unit, u64* count,
                      u64* seed, u64* max_edge) {
  std::size_t pos = 0;
  std::vector<std::string> parts;
  while (parts.size() < 4) {
    const std::size_t comma = spec.find(',', pos);
    parts.push_back(spec.substr(pos, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (parts.size() != 4) return false;
  if (!unit_from_name(parts[0], unit)) return false;
  try {
    *count = std::stoull(parts[1]);
    *seed = std::stoull(parts[2], nullptr, 0);
    *max_edge = std::stoull(parts[3]);
  } catch (...) {
    return false;
  }
  return true;
}

int run_listen(service::KemService& svc, obs::MetricsRegistry& registry,
               const net::ServerConfig& net_cfg, const std::string& port_file,
               const std::string& metrics_path, bool* io_failed) {
  net::TcpServer server(svc, net_cfg);
  server.register_metrics(registry);
  std::string error;
  const Status st = server.start(&error);
  if (st != Status::kOk) {
    print_status(std::cerr, "kem-server", st, error);
    return 1;
  }
  std::cout << "kem-server: listening on " << net_cfg.bind_address << ":"
            << server.port() << " (SIGTERM drains gracefully)\n";
  if (!port_file.empty()) {
    // Write-then-rename so a polling client can never observe a
    // partially written port number.
    const std::string tmp = port_file + ".tmp";
    if (!write_checked(tmp, "port", [&](std::ostream& os) {
          os << server.port() << "\n";
        }) ||
        std::rename(tmp.c_str(), port_file.c_str()) != 0) {
      print_status(std::cerr, "kem-server", Status::kInternalError,
                   "cannot publish port file " + port_file);
      *io_failed = true;
    }
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  while (!g_shutdown && server.running())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Shutdown choreography: the network tier drains first (stop
  // accepting/reading, finish in-flight, flush replies), then the
  // service executes whatever is still queued. Reverse order would shed
  // admitted requests that already have a client waiting on a reply.
  std::cout << "kem-server: draining...\n";
  server.stop(/*drain=*/true);
  svc.drain();
  std::cout << "kem-server: " << server.counters().to_string() << "\n"
            << "kem-server: " << svc.counters().to_string() << "\n";
  if (const auto& v = svc.verifier(); v.checked().load() > 0)
    std::cout << "kem-server: shadow verify: " << v.checked().load()
              << " checked, " << v.mismatches().load() << " diverged, "
              << v.corrected().load() << " corrected from golden\n";
  if (!metrics_path.empty() &&
      !write_checked(metrics_path, "metrics", [&](std::ostream& os) {
        registry.expose(os);
      }))
    *io_failed = true;
  print_status(std::cout, "kem-server", Status::kOk, "drained");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 64;
  std::string trace_path, metrics_path, mix_spec, port_file, storm_spec;
  bool listen_mode = false;
  net::ServerConfig net_cfg;
  std::size_t workers = 4;
  std::size_t queue_capacity = 0;  // 0: derived below
  unsigned long verify_sample_per_mille = 0;  // 0: verification off
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc)
      trace_path = argv[++i];
    else if (arg == "--metrics" && i + 1 < argc)
      metrics_path = argv[++i];
    else if (arg == "--mix" && i + 1 < argc)
      mix_spec = argv[++i];
    else if (arg == "--listen" && i + 1 < argc) {
      listen_mode = true;
      net_cfg.port = static_cast<u16>(std::stoul(argv[++i]));
    } else if (arg == "--port-file" && i + 1 < argc)
      port_file = argv[++i];
    else if (arg == "--workers" && i + 1 < argc)
      workers = std::stoul(argv[++i]);
    else if (arg == "--queue-capacity" && i + 1 < argc)
      queue_capacity = std::stoul(argv[++i]);
    else if (arg == "--max-connections" && i + 1 < argc)
      net_cfg.max_connections = std::stoul(argv[++i]);
    else if (arg == "--read-deadline-ms" && i + 1 < argc)
      net_cfg.read_deadline_micros = std::stoull(argv[++i]) * 1000;
    else if (arg == "--idle-deadline-ms" && i + 1 < argc)
      net_cfg.idle_deadline_micros = std::stoull(argv[++i]) * 1000;
    else if (arg == "--request-deadline-ms" && i + 1 < argc)
      net_cfg.request_deadline_micros = std::stoull(argv[++i]) * 1000;
    else if (arg == "--drain-ms" && i + 1 < argc)
      net_cfg.drain_deadline_micros = std::stoull(argv[++i]) * 1000;
    else if (arg == "--verify-sample" && i + 1 < argc)
      verify_sample_per_mille = std::stoul(argv[++i]);
    else if (arg == "--fault-storm" && i + 1 < argc)
      storm_spec = argv[++i];
    else
      n = std::stoul(arg);
  }

  // The tracer outlives the service: workers record spans until stop().
  obs::Tracer tracer;
  if (!trace_path.empty()) tracer.install();

  service::ServiceConfig cfg;
  cfg.workers = workers;
  cfg.queue_capacity = queue_capacity ? queue_capacity : 2 * n + 8;
  cfg.probe_interval_micros = 5'000;
  if (!mix_spec.empty()) {
    std::string error;
    if (!lac::parse_slot_mix(mix_spec, &cfg.slot_use_rtl, &error)) {
      std::cerr << "--mix: " << error << "\n";
      return 1;
    }
  }
  if (verify_sample_per_mille > 0) {
    cfg.verify.enabled = true;
    cfg.verify.sample_per_mille = static_cast<u32>(
        verify_sample_per_mille > 1000 ? 1000 : verify_sample_per_mille);
  }
  service::KemService svc(cfg);

  // The storm plan must outlive the service: armed hooks hold pointers
  // into it until clear_faults()/stop().
  fault::FaultPlan storm_plan;
  if (!storm_spec.empty()) {
    fault::Unit storm_unit;
    u64 storm_count = 0, storm_seed = 0, storm_max_edge = 0;
    if (!parse_storm_spec(storm_spec, &storm_unit, &storm_count, &storm_seed,
                          &storm_max_edge)) {
      std::cerr << "--fault-storm: want unit,count,seed,max_edge (units: "
                   "mul_ter gf_mul chien sha256 barrett), got "
                << storm_spec << "\n";
      return 1;
    }
    storm_plan = fault::FaultPlan::storm(storm_unit, storm_seed,
                                         static_cast<std::size_t>(storm_count),
                                         storm_max_edge);
    svc.arm_faults(storm_plan);
    std::cout << "kem_server: evasive fault storm armed on "
              << fault::unit_name(storm_unit) << " (" << storm_count
              << " transient bit-flips, seed " << storm_seed
              << ", edges < " << storm_max_edge << ")\n";
  }

  std::cout << "kem_server: " << cfg.workers << " workers, queue capacity "
            << cfg.queue_capacity << ", " << svc.params().name;
  if (!mix_spec.empty()) std::cout << ", mix " << mix_spec;
  if (cfg.verify.enabled)
    std::cout << ", shadow verify " << cfg.verify.sample_per_mille
              << "/1000";
  std::cout << "\n\n";

  obs::MetricsRegistry registry;
  svc.register_metrics(registry);

  bool io_failed = false;
  if (listen_mode) {
    const int rc =
        run_listen(svc, registry, net_cfg, port_file, metrics_path,
                   &io_failed);
    if (!trace_path.empty()) {
      obs::Tracer::uninstall();
      if (!write_checked(trace_path, "trace", [&](std::ostream& os) {
            tracer.write_chrome_json(os);
          }))
        io_failed = true;
      else
        std::cout << "trace: " << tracer.size() << " events ("
                  << tracer.dropped() << " dropped) -> " << trace_path
                  << "\n";
    }
    return rc != 0 ? rc : (io_failed ? 1 : 0);
  }
  // The modeled cycle breakdown of one handshake on the golden software
  // backend — the CycleLedger channel in the same exposition.
  CycleLedger model_ledger;
  {
    const lac::Backend golden = lac::Backend::optimized();
    const lac::EncapsResult enc = lac::encapsulate(
        svc.params(), golden, svc.keys().pk, entropy_for(0), &model_ledger);
    lac::decapsulate(svc.params(), golden, svc.keys(), enc.ct, &model_ledger);
  }
  registry.add_ledger("lacrv_kem_model_cycles",
                      "Modeled cycle cost of one handshake per pipeline "
                      "section (golden backend)",
                      &model_ledger);
  const auto dump_metrics = [&](const char* stage) {
    if (metrics_path.empty()) return;
    if (!write_checked(metrics_path, "metrics", [&](std::ostream& os) {
          registry.expose(os);
        })) {
      io_failed = true;
      return;
    }
    std::cout << "  [metrics] " << registry.families() << " families -> "
              << metrics_path << " (" << stage << ")\n";
  };

  std::cout << "[act 1] healthy accelerators\n";
  report("healthy", run_act(svc, n, 1), svc);
  dump_metrics("act 1");

  std::cout << "[act 2] fault campaign: stuck-at-1 bit in the ternary "
               "multiplier datapath\n";
  fault::FaultPlan plan;
  plan.add({fault::Unit::kMulTer, rtl::FaultKind::kStuckAtOne, 0, 5, 3});
  svc.arm_faults(plan);
  report("under fault", run_act(svc, n, 2), svc);
  dump_metrics("act 2");
  print_status(std::cout, "kem-server",
               svc.breaker_state(fault::Unit::kMulTer) ==
                       service::BreakerState::kOpen
                   ? Status::kUnavailable
                   : Status::kOk,
               std::string("mul_ter breaker ") +
                   service::breaker_state_name(
                       svc.breaker_state(fault::Unit::kMulTer)));

  std::cout << "\n[act 3] campaign over: waiting for the prober to heal "
               "the breakers\n";
  svc.clear_faults();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (svc.breaker_state(fault::Unit::kMulTer) !=
             service::BreakerState::kClosed &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  print_status(std::cout, "kem-server", Status::kOk,
               std::string("mul_ter breaker ") +
                   service::breaker_state_name(
                       svc.breaker_state(fault::Unit::kMulTer)));
  report("recovered", run_act(svc, n, 3), svc);
  dump_metrics("act 3");

  std::cout << "latency (encaps):\n"
            << svc.raw_counters().encaps_latency.to_string()
            << "\nlatency (decaps):\n"
            << svc.raw_counters().decaps_latency.to_string()
            << "\nincident log:\n  " << svc.degrade_report().to_string()
            << "\n";
  svc.stop();
  dump_metrics("shutdown");
  if (!trace_path.empty()) {
    obs::Tracer::uninstall();
    if (!write_checked(trace_path, "trace", [&](std::ostream& os) {
          tracer.write_chrome_json(os);
        }))
      io_failed = true;
    else
      std::cout << "trace: " << tracer.size() << " events ("
                << tracer.dropped() << " dropped) -> " << trace_path << "\n";
  }
  return io_failed ? 1 : 0;
}
