// kem_server — the resilient KEM service end to end: a worker pool
// terminating KEM handshakes while a fault campaign attacks the
// accelerator units underneath it.
//
// The demo runs three acts:
//   1. healthy burst    — concurrent encaps/decaps on the PQ-ALU rigs
//   2. fault campaign   — a stuck-at fault is armed on the live pool;
//                         breakers trip and traffic reroutes to the
//                         software fallback without dropping a request
//   3. recovery         — the campaign ends, the health prober walks the
//                         breakers half-open -> closed, hardware returns
//
// After each act it prints the service counters; at the end, the latency
// histograms and the DegradeReport (the service's incident log).
//
//   kem_server [handshakes-per-act] [--trace t.json] [--metrics m.prom]
//              [--mix mul_ter=rtl,sha256=sw,...]
//
// --mix selects the per-slot implementation mix of the worker rigs
// (slots: mul_ter, chien, sha256, modq; unlisted slots run the modeled
// software implementation).
//
// --trace installs a process-wide tracer and writes a Chrome
// trace-event / Perfetto JSON timeline of every request (queue wait,
// attempts, KEM phases, RTL busy windows, breaker transitions).
// --metrics dumps the unified Prometheus-style exposition after every
// act (on demand) and again at shutdown.
#include <chrono>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "fault/plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/service.h"

namespace {

using namespace lacrv;

hash::Seed entropy_for(u64 i) {
  hash::Seed s{};
  u64 state = 0xd3a0 ^ (i * 0x9E3779B97F4A7C15ull);
  for (std::size_t b = 0; b < s.size(); b += 8) {
    const u64 draw = fault::splitmix64(state);
    for (std::size_t k = 0; k < 8; ++k)
      s[b + k] = static_cast<u8>(draw >> (8 * k));
  }
  return s;
}

struct ActTally {
  std::size_t agreed = 0;
  std::size_t rejected = 0;
  std::size_t degraded = 0;
};

/// One act: `n` full handshakes (encaps burst, then decaps of every
/// produced ciphertext), tallying key agreement vs. typed rejection.
/// Bursts go through submit_batch(): one queue lock round-trip admits
/// the act, and the workers' micro-batches show up as service.batch
/// spans in the trace.
ActTally run_act(service::KemService& svc, std::size_t n, u64 tag) {
  std::vector<service::KemRequest> encaps_burst;
  encaps_burst.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    encaps_burst.push_back({service::OpKind::kEncaps,
                            entropy_for(tag * 100'000 + i),
                            {},
                            service::kNoDeadline});
  std::vector<std::future<service::KemResponse>> encs =
      svc.submit_batch(std::move(encaps_burst));

  ActTally tally;
  std::vector<lac::EncapsResult> handshakes;
  for (auto& f : encs) {
    service::KemResponse r = f.get();
    if (r.served_by_fallback) ++tally.degraded;
    if (r.status == Status::kOk)
      handshakes.push_back(r.encaps);
    else
      ++tally.rejected;
  }

  std::vector<service::KemRequest> decaps_burst;
  decaps_burst.reserve(handshakes.size());
  for (const lac::EncapsResult& h : handshakes) {
    service::KemRequest req;
    req.op = service::OpKind::kDecaps;
    req.ct = h.ct;
    decaps_burst.push_back(std::move(req));
  }
  std::vector<std::future<service::KemResponse>> decs =
      svc.submit_batch(std::move(decaps_burst));
  for (std::size_t i = 0; i < decs.size(); ++i) {
    service::KemResponse r = decs[i].get();
    if (r.served_by_fallback) ++tally.degraded;
    if (r.status == Status::kOk && r.key == handshakes[i].key)
      ++tally.agreed;
    else
      ++tally.rejected;
  }
  return tally;
}

void report(const char* act, const ActTally& t,
            const service::KemService& svc) {
  std::cout << "  " << act << ": " << t.agreed << " keys agreed, "
            << t.rejected << " typed rejections, " << t.degraded
            << " ops on software fallback\n  counters: "
            << svc.counters().to_string() << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 64;
  std::string trace_path, metrics_path, mix_spec;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc)
      trace_path = argv[++i];
    else if (arg == "--metrics" && i + 1 < argc)
      metrics_path = argv[++i];
    else if (arg == "--mix" && i + 1 < argc)
      mix_spec = argv[++i];
    else
      n = std::stoul(arg);
  }

  // The tracer outlives the service: workers record spans until stop().
  obs::Tracer tracer;
  if (!trace_path.empty()) tracer.install();

  service::ServiceConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 2 * n + 8;
  cfg.probe_interval_micros = 5'000;
  if (!mix_spec.empty()) {
    std::string error;
    if (!lac::parse_slot_mix(mix_spec, &cfg.slot_use_rtl, &error)) {
      std::cerr << "--mix: " << error << "\n";
      return 1;
    }
  }
  service::KemService svc(cfg);
  std::cout << "kem_server: " << cfg.workers << " workers, queue capacity "
            << cfg.queue_capacity << ", " << svc.params().name;
  if (!mix_spec.empty()) std::cout << ", mix " << mix_spec;
  std::cout << "\n\n";

  obs::MetricsRegistry registry;
  svc.register_metrics(registry);
  // The modeled cycle breakdown of one handshake on the golden software
  // backend — the CycleLedger channel in the same exposition.
  CycleLedger model_ledger;
  {
    const lac::Backend golden = lac::Backend::optimized();
    const lac::EncapsResult enc = lac::encapsulate(
        svc.params(), golden, svc.keys().pk, entropy_for(0), &model_ledger);
    lac::decapsulate(svc.params(), golden, svc.keys(), enc.ct, &model_ledger);
  }
  registry.add_ledger("lacrv_kem_model_cycles",
                      "Modeled cycle cost of one handshake per pipeline "
                      "section (golden backend)",
                      &model_ledger);
  const auto dump_metrics = [&](const char* stage) {
    if (metrics_path.empty()) return;
    std::ofstream out(metrics_path);
    registry.expose(out);
    std::cout << "  [metrics] " << registry.families() << " families -> "
              << metrics_path << " (" << stage << ")\n";
  };

  std::cout << "[act 1] healthy accelerators\n";
  report("healthy", run_act(svc, n, 1), svc);
  dump_metrics("act 1");

  std::cout << "[act 2] fault campaign: stuck-at-1 bit in the ternary "
               "multiplier datapath\n";
  fault::FaultPlan plan;
  plan.add({fault::Unit::kMulTer, rtl::FaultKind::kStuckAtOne, 0, 5, 3});
  svc.arm_faults(plan);
  report("under fault", run_act(svc, n, 2), svc);
  dump_metrics("act 2");
  print_status(std::cout, "kem-server",
               svc.breaker_state(fault::Unit::kMulTer) ==
                       service::BreakerState::kOpen
                   ? Status::kUnavailable
                   : Status::kOk,
               std::string("mul_ter breaker ") +
                   service::breaker_state_name(
                       svc.breaker_state(fault::Unit::kMulTer)));

  std::cout << "\n[act 3] campaign over: waiting for the prober to heal "
               "the breakers\n";
  svc.clear_faults();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (svc.breaker_state(fault::Unit::kMulTer) !=
             service::BreakerState::kClosed &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  print_status(std::cout, "kem-server", Status::kOk,
               std::string("mul_ter breaker ") +
                   service::breaker_state_name(
                       svc.breaker_state(fault::Unit::kMulTer)));
  report("recovered", run_act(svc, n, 3), svc);
  dump_metrics("act 3");

  std::cout << "latency (encaps):\n"
            << svc.raw_counters().encaps_latency.to_string()
            << "\nlatency (decaps):\n"
            << svc.raw_counters().decaps_latency.to_string()
            << "\nincident log:\n  " << svc.degrade_report().to_string()
            << "\n";
  svc.stop();
  dump_metrics("shutdown");
  if (!trace_path.empty()) {
    obs::Tracer::uninstall();
    std::ofstream out(trace_path);
    tracer.write_chrome_json(out);
    std::cout << "trace: " << tracer.size() << " events ("
              << tracer.dropped() << " dropped) -> " << trace_path << "\n";
  }
  return 0;
}
