// A small CLI around the ISS: assemble a RISC-V (RV32IM + pq.*) source
// file, run it, and dump registers and counters. Useful for exploring the
// ISA extension interactively:
//
//   ./build/examples/riscv_playground [--profile] [program.s]
//   ./build/examples/riscv_playground            # runs a built-in demo
//
// --profile attaches the ISS hot-spot profiler and prints the ranked
// per-PC-range report (cycles per opcode class, pq.* vs base ISA split).
//
// The built-in demo times a modular-reduction loop twice — once with
// div/rem software arithmetic, once with pq.modq — and prints the
// speedup, reproducing the motivation for the MOD q unit in miniature.
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/status.h"
#include "riscv/assembler.h"
#include "riscv/cpu.h"
#include "riscv/encoding.h"
#include "riscv/profiler.h"

namespace {

constexpr const char* kDemo = R"(
  # Reduce 2000 values modulo 251, twice: with rem, then with pq.modq.
  # Results land in s0 (rem cycles) and s1 (pq.modq cycles).
      li   t0, 0          # value
      li   t1, 0          # counter
      li   t2, 2000
      li   t3, 251
      rdcycle s2
  rem_loop:
      rem  a0, t0, t3
      addi t0, t0, 37
      addi t1, t1, 1
      blt  t1, t2, rem_loop
      rdcycle s3
      sub  s0, s3, s2

      li   t0, 0
      li   t1, 0
      rdcycle s2
  modq_loop:
      pq.modq a0, t0, zero
      addi t0, t0, 37
      andi t0, t0, 0x7FF   # keep inside the 16-bit datapath
      addi t1, t1, 1
      blt  t1, t2, modq_loop
      rdcycle s3
      sub  s1, s3, s2
      ebreak
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace lacrv;

  bool profile = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--profile")
      profile = true;
    else
      path = argv[i];
  }

  std::string source;
  if (path) {
    std::ifstream file(path);
    if (!file) {
      print_status(std::cerr, "riscv-playground", Status::kBadArgument,
                   std::string("cannot open ") + path);
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    source = buffer.str();
  } else {
    std::cout << "(no source file given — running the built-in "
                 "modq-vs-rem demo)\n\n";
    source = kDemo;
  }

  rv::Program program;
  try {
    program = rv::assemble(source);
  } catch (const std::exception& e) {
    print_status(std::cerr, "riscv-playground", Status::kBadArgument,
                 std::string("assembly error: ") + e.what());
    return 1;
  }
  std::cout << "assembled " << program.words.size() << " words";
  if (!program.labels.empty()) {
    std::cout << "; labels:";
    for (const auto& [name, addr] : program.labels)
      std::cout << " " << name << "=0x" << std::hex << addr << std::dec;
  }
  std::cout << "\n\nfirst instructions:\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(8, program.words.size());
       ++i)
    std::cout << "  0x" << std::hex << 4 * i << ": " << std::dec
              << rv::disassemble(program.words[i]) << "\n";

  rv::Cpu cpu;
  rv::IssProfiler profiler;
  if (profile) cpu.set_profiler(&profiler);
  cpu.load_words(0, program.words);
  cpu.run(50'000'000);
  if (cpu.trapped()) {
    std::ostringstream what;
    what << "trap: " << rv::trap_cause_name(cpu.trap_cause()) << " at pc=0x"
         << std::hex << cpu.mepc() << " (mtval=0x" << cpu.mtval() << std::dec
         << ") after " << cpu.instructions() << " instructions";
    print_status(std::cerr, "riscv-playground", Status::kInternalError,
                 what.str());
    return 1;
  }
  std::cout << "\n" << (cpu.halted() ? "halted" : "step limit reached")
            << " after " << cpu.instructions() << " instructions, "
            << cpu.cycles() << " cycles\n\nregisters:\n";
  for (int i = 1; i < 32; ++i) {
    if (cpu.reg(i) == 0) continue;
    std::cout << "  " << rv::register_name(i) << " = " << cpu.reg(i)
              << " (0x" << std::hex << cpu.reg(i) << std::dec << ")\n";
  }

  if (!path) {
    std::cout << "\nmodular reduction of 2000 values:\n"
              << "  rem (35-cycle divider): " << cpu.reg(8) << " cycles\n"
              << "  pq.modq (Barrett unit): " << cpu.reg(9) << " cycles\n";
  }
  if (profile) {
    std::cout << "\n";
    profiler.report(std::cout);
  }
  return 0;
}
