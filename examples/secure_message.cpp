// Public-key encryption of a short message, demonstrating the role of the
// BCH code: LAC's decryption is *noisy* by construction (RLWE noise plus
// 4-bit ciphertext compression) and the error-correcting code is what
// turns the noisy bit estimates back into the exact plaintext. We also
// corrupt ciphertext coefficients on the wire and watch the BCH decoder
// absorb the extra errors — up to its correction capability.
#include <cstring>
#include <iostream>

#include "lac/pke.h"

int main() {
  using namespace lacrv;

  const lac::Params& params = lac::Params::lac128();
  const lac::Backend backend = lac::Backend::reference_const_bch();

  hash::Seed master{};
  master.fill(0x11);
  const lac::KeyPair keys = lac::keygen(params, backend, master);

  // A 256-bit message (LAC's native plaintext size — in practice a
  // symmetric key or a hash).
  bch::Message msg{};
  const char* text = "lattices + BCH on RISC-V";
  std::memcpy(msg.data(), text, std::min(msg.size(), std::strlen(text)));

  hash::Seed coins{};
  coins.fill(0x22);
  lac::Ciphertext ct = lac::encrypt(params, backend, keys.pk, msg, coins);
  std::cout << "Encrypted " << msg.size() << "-byte message into "
            << lac::serialize(params, ct).size() << "-byte ciphertext ("
            << params.name << ")\n";

  const lac::DecryptResult clean = lac::decrypt(params, backend, keys.sk, ct);
  std::cout << "clean channel:   decrypt "
            << (clean.ok && clean.message == msg ? "OK" : "FAILED") << "\n";

  // Corrupt v-coefficients (flip their top compression nibble bits): each
  // corrupted coefficient likely flips one codeword bit. BCH(511,367,16)
  // corrects up to 16.
  for (int corrupted : {5, 14, 40}) {
    lac::Ciphertext noisy = ct;
    for (int i = 0; i < corrupted; ++i)
      noisy.v[static_cast<std::size_t>(7 * i + 3)] ^= 0x8;
    const lac::DecryptResult result =
        lac::decrypt(params, backend, keys.sk, noisy);
    const bool recovered = result.ok && result.message == msg;
    std::cout << corrupted << " corrupted v-coefficients: decrypt "
              << (recovered ? "OK (BCH corrected the damage)"
                            : "FAILED (beyond t=16 correction capability)")
              << "\n";
  }
  std::cout << "\nThis is exactly why LAC can use one-byte coefficients "
               "(q = 251): the strong BCH code absorbs the higher noise "
               "rate (Sec. I).\n";
  return 0;
}
