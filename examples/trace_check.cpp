// trace_check — validator for the observability artifacts kem_server
// emits. Exits 0 iff the trace (and, if given, the metrics dump) are
// well-formed AND at least one request's spans connect across every
// layer through a shared trace id: the CI trace-smoke job runs this
// against a live kem_server run.
//
//   trace_check trace.json [metrics.prom]
//
// Trace checks: parses as JSON, has a non-empty traceEvents array of
// well-formed Chrome trace events, and some trace id links
// service.queued -> service.attempt -> a kem.* phase -> an RTL unit
// busy window. Batch checks: at least one service.batch span exists and
// every service.attempt span is time-contained in a service.batch span
// on the same worker thread (batch spans cover several requests so they
// carry no trace id -- containment by tid + time is the nesting proof).
// Metrics checks: Prometheus text shape (HELP/TYPE headers, numeric
// samples) and the required service families.
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "obs/json.h"

namespace {

using namespace lacrv;

int failures = 0;

void fail(const std::string& what) {
  std::cerr << "FAIL: " << what << "\n";
  ++failures;
}

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    fail("cannot open " + path);
    return {};
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// ---- trace ----------------------------------------------------------------

bool is_rtl_busy(const std::string& name) {
  return name == "mul_ter.busy" || name == "chien.busy" ||
         name == "sha256.busy" || name == "sha256.hash_message";
}

void check_trace(const std::string& path) {
  const std::string text = read_file(path);
  if (text.empty()) return;

  obs::json::Value doc;
  std::string error;
  if (!obs::json::parse(text, &doc, &error)) {
    fail(path + ": " + error);
    return;
  }
  if (!doc.is_object()) return fail(path + ": top level is not an object");
  const obs::json::Value* events = doc.find("traceEvents");
  if (!events || !events->is_array())
    return fail(path + ": no traceEvents array");
  if (events->array.empty()) return fail(path + ": traceEvents is empty");

  // Per trace id, the set of span/instant names recorded under it.
  std::map<u64, std::set<std::string>> by_id;
  // Worker micro-batch nesting: [ts, ts+dur] windows per tid. Batch
  // spans carry no trace id (they cover several requests), so the
  // containment proof is per-thread time intervals.
  struct Window {
    double begin, end;
  };
  std::map<u64, std::vector<Window>> batches_by_tid;
  std::vector<std::pair<u64, Window>> attempts;
  std::size_t complete = 0, instants = 0;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const obs::json::Value& e = events->array[i];
    const std::string where = path + ": event " + std::to_string(i);
    if (!e.is_object()) {
      fail(where + " is not an object");
      continue;
    }
    const obs::json::Value* name = e.find("name");
    const obs::json::Value* ph = e.find("ph");
    const obs::json::Value* ts = e.find("ts");
    if (!name || !name->is_string()) fail(where + ": missing name");
    if (!ph || !ph->is_string() || (ph->str != "X" && ph->str != "i"))
      fail(where + ": ph must be \"X\" or \"i\"");
    if (!ts || !ts->is_number()) fail(where + ": missing numeric ts");
    if (ph && ph->is_string() && ph->str == "X") {
      ++complete;
      const obs::json::Value* dur = e.find("dur");
      if (!dur || !dur->is_number())
        fail(where + ": complete event without numeric dur");
      const obs::json::Value* tid = e.find("tid");
      if (name && name->is_string() && ts && ts->is_number() && dur &&
          dur->is_number() && tid && tid->is_number()) {
        const Window w{ts->number, ts->number + dur->number};
        const u64 thread = static_cast<u64>(tid->number);
        if (name->str == "service.batch")
          batches_by_tid[thread].push_back(w);
        else if (name->str == "service.attempt")
          attempts.emplace_back(thread, w);
      }
    } else {
      ++instants;
    }
    const obs::json::Value* args = e.find("args");
    if (!args || !args->is_object()) {
      fail(where + ": missing args object");
      continue;
    }
    const obs::json::Value* trace_id = args->find("trace_id");
    if (trace_id && trace_id->is_number() && name && name->is_string())
      by_id[static_cast<u64>(trace_id->number)].insert(name->str);
  }

  // The acceptance chain: one request id carrying every layer.
  std::size_t connected = 0;
  for (const auto& [id, names] : by_id) {
    if (!names.count("service.queued") || !names.count("service.attempt"))
      continue;
    bool has_kem = false, has_rtl = false;
    for (const std::string& n : names) {
      if (starts_with(n, "kem.")) has_kem = true;
      if (is_rtl_busy(n)) has_rtl = true;
    }
    if (has_kem && has_rtl) ++connected;
  }
  if (connected == 0)
    fail(path +
         ": no trace id connects service.queued -> service.attempt -> "
         "kem.* -> RTL busy window");

  // Every attempt must execute inside a worker micro-batch span on the
  // same thread (inclusive bounds: a batch of one has identical edges).
  std::size_t batch_spans = 0;
  for (const auto& [tid, windows] : batches_by_tid)
    batch_spans += windows.size();
  if (batch_spans == 0) fail(path + ": no service.batch span recorded");
  std::size_t orphaned = 0;
  for (const auto& [tid, attempt] : attempts) {
    bool nested = false;
    const auto it = batches_by_tid.find(tid);
    if (it != batches_by_tid.end())
      for (const Window& batch : it->second)
        if (batch.begin <= attempt.begin && attempt.end <= batch.end) {
          nested = true;
          break;
        }
    if (!nested) ++orphaned;
  }
  if (orphaned > 0)
    fail(path + ": " + std::to_string(orphaned) + " of " +
         std::to_string(attempts.size()) +
         " service.attempt spans are not nested in a service.batch span "
         "on their thread");

  std::cout << "trace: " << events->array.size() << " events (" << complete
            << " spans, " << instants << " instants), " << by_id.size()
            << " trace ids, " << connected
            << " fully connected service->kem->rtl chains, "
            << attempts.size() << " attempts nested in " << batch_spans
            << " micro-batches\n";
}

// ---- metrics --------------------------------------------------------------

void check_metrics(const std::string& path) {
  const std::string text = read_file(path);
  if (text.empty()) return;

  std::set<std::string> families;
  std::set<std::string> typed;
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    const std::string where = path + ":" + std::to_string(lineno);
    if (line.empty()) continue;
    if (starts_with(line, "# HELP ") || starts_with(line, "# TYPE ")) {
      std::istringstream fields(line);
      std::string hash, kind, name;
      fields >> hash >> kind >> name;
      if (name.empty()) fail(where + ": malformed " + kind + " line");
      if (kind == "TYPE") {
        std::string type;
        fields >> type;
        if (type != "counter" && type != "gauge" && type != "histogram")
          fail(where + ": unknown metric type " + type);
        typed.insert(name);
      }
      continue;
    }
    if (line[0] == '#') {
      fail(where + ": unrecognized comment line");
      continue;
    }
    // Sample: name[{labels}] value
    const std::size_t brace = line.find('{');
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) {
      fail(where + ": sample without value");
      continue;
    }
    const std::string name =
        line.substr(0, brace == std::string::npos ? space
                                                  : std::min(brace, space));
    if (name.empty() ||
        !(std::isalpha(static_cast<unsigned char>(name[0])) ||
          name[0] == '_'))
      fail(where + ": bad metric name");
    if (brace != std::string::npos) {
      const std::size_t close = line.find('}', brace);
      if (close == std::string::npos || close > line.rfind(' '))
        fail(where + ": unterminated label set");
    }
    const std::string value = line.substr(line.rfind(' ') + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
      fail(where + ": non-numeric sample value " + value);
    families.insert(name);
  }

  const char* required[] = {
      "lacrv_service_requests_submitted_total",
      "lacrv_service_requests_completed_total",
      "lacrv_service_queue_depth",
      "lacrv_service_breaker_state",
      "lacrv_service_latency_micros_bucket",
      "lacrv_service_latency_micros_sum",
      "lacrv_service_latency_micros_count",
  };
  for (const char* name : required)
    if (!families.count(name)) fail(path + ": missing family " + name);

  std::cout << "metrics: " << families.size() << " sample families, "
            << typed.size() << " TYPE headers\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: trace_check trace.json [metrics.prom]\n";
    return 2;
  }
  check_trace(argv[1]);
  if (argc > 2) check_metrics(argv[2]);
  if (failures > 0) {
    std::cerr << failures << " check(s) failed\n";
    return 1;
  }
  std::cout << "all checks passed\n";
  return 0;
}
