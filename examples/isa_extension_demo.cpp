// The ISA extension end to end: assemble the pq.mul_ter driver kernel,
// show a few disassembled instructions, execute it on the RV32IM ISS with
// the PQ-ALU attached, and compare both the result (against the software
// golden model) and the cycle count (against the instruction-level cost
// model that Table II's "Multiplication 6,390" column rests on).
#include <iostream>

#include "common/costs.h"
#include "common/rng.h"
#include "perf/iss_kernels.h"
#include "riscv/assembler.h"
#include "riscv/encoding.h"

int main() {
  using namespace lacrv;

  // Show what the custom instructions look like at the encoding level.
  const rv::Program prog = rv::assemble(perf::mul_ter_kernel_source(true));
  std::cout << "Kernel: " << prog.words.size()
            << " instruction words. Custom-opcode excerpt:\n";
  int shown = 0;
  for (u32 word : prog.words) {
    if (rv::get_opcode(word) == rv::kOpPq && shown < 3) {
      std::cout << "    0x" << std::hex << word << std::dec << "  "
                << rv::disassemble(word) << "\n";
      ++shown;
    }
  }
  std::cout << "  (opcode 0x77, R-type — Fig. 6; funct3 selects the "
               "accelerator)\n\n";

  // Run a real multiplication through the machine code.
  Xoshiro256 rng(7);
  poly::Ternary a(512);
  poly::Coeffs b(512);
  for (auto& v : a)
    v = static_cast<i8>(static_cast<int>(rng.next_below(3)) - 1);
  for (auto& v : b) v = static_cast<u8>(rng.next_below(poly::kQ));

  const perf::IssRunResult run = perf::iss_mul_ter(a, b, true);
  const bool correct = run.result == poly::mul_ter_sw(a, b, true);
  std::cout << "Executed on the ISS: " << run.instructions
            << " instructions, " << run.cycles << " cycles\n";
  std::cout << "Result matches software golden model: "
            << (correct ? "yes" : "NO") << "\n\n";

  // Phases of the paper's operand protocol (Sec. V):
  const u64 load = 103 * cost::kMulTerLoadChunk;
  const u64 compute = 512;
  const u64 read = 128 * cost::kMulTerReadChunk;
  std::cout << "Cost-model decomposition used in Table II (paper: 6,390):\n"
            << "    load 103 chunks (5 general + 5 ternary each): ~" << load
            << " cycles\n"
            << "    compute (one coefficient per clock):           " << compute
            << " cycles\n"
            << "    read 128 chunks (4 coefficients each):        ~" << read
            << " cycles\n";
  std::cout << "The machine-code kernel lands in the same regime — the "
               "packing software dominates, the multiplier itself is only "
               "512 cycles.\n";
  return correct ? 0 : 1;
}
