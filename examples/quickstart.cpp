// Quickstart: establish a shared secret with the LAC CCA-KEM.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Alice generates a key pair, Bob encapsulates against her public key,
// Alice decapsulates — both end up with the same 256-bit shared secret.
// The `Backend` selects the implementation flavour; here we use the
// paper's optimized co-design backend and also print the cycle estimate
// the RISC-V timing model attributes to each operation.
#include <iostream>

#include "lac/kem.h"

int main() {
  using namespace lacrv;

  const lac::Params& params = lac::Params::lac256();
  const lac::Backend backend = lac::Backend::optimized();
  std::cout << "LAC KEM quickstart — " << params.name << " (NIST category "
            << params.nist_category << "), backend: " << backend.name
            << "\n\n";

  // In production these seeds come from a TRNG; the library keeps all
  // randomness explicit so protocols are reproducible and testable.
  hash::Seed alice_seed{};
  alice_seed.fill(0xA1);
  hash::Seed bob_entropy{};
  bob_entropy.fill(0xB0);

  // Alice: key generation.
  CycleLedger kg;
  const lac::KemKeyPair alice =
      lac::kem_keygen(params, backend, alice_seed, &kg);
  const Bytes pk_bytes = lac::serialize(params, alice.pk);
  std::cout << "Alice's public key: " << pk_bytes.size() << " bytes ("
            << kg.total() << " modeled RISC-V cycles)\n";

  // Bob: encapsulation against Alice's public key.
  CycleLedger enc;
  const lac::EncapsResult bob =
      lac::encapsulate(params, backend, alice.pk, bob_entropy, &enc);
  std::cout << "Bob's ciphertext:   "
            << lac::serialize(params, bob.ct).size() << " bytes ("
            << enc.total() << " cycles)\n";

  // Alice: decapsulation.
  CycleLedger dec;
  const lac::SharedKey alice_key =
      lac::decapsulate(params, backend, alice, bob.ct, &dec);
  std::cout << "Alice decapsulates  (" << dec.total() << " cycles)\n\n";

  std::cout << "Bob's   key: "
            << to_hex(ByteView(bob.key.data(), bob.key.size())) << "\n";
  std::cout << "Alice's key: "
            << to_hex(ByteView(alice_key.data(), alice_key.size())) << "\n";
  if (alice_key != bob.key) {
    std::cerr << "MISMATCH — this must never happen\n";
    return 1;
  }
  std::cout << "\nShared secrets agree.\n";
  return 0;
}
