// lac_keytool — a file-based KEM workflow, the way a downstream user
// would drive the library:
//
//   lac_keytool keygen <level> <keyfile> <pubfile>
//   lac_keytool encaps <level> <pubfile> <ctfile>      (prints the key)
//   lac_keytool decaps <level> <keyfile> <ctfile>      (prints the key)
//
// level is 128, 192 or 256. Files are raw wire format (pk / ct / full
// decapsulation key). Demonstrates serialization round trips across
// process boundaries; run without arguments for a self-contained demo in
// /tmp.
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>

#include "common/status.h"
#include "lac/kem.h"

namespace {

using namespace lacrv;

const lac::Params& level_of(const std::string& s) {
  if (s == "128") return lac::Params::lac128();
  if (s == "192") return lac::Params::lac192();
  if (s == "256") return lac::Params::lac256();
  throw std::runtime_error("level must be 128, 192 or 256");
}

Bytes read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path);
  return Bytes(std::istreambuf_iterator<char>(f),
               std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, ByteView data) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot write " + path);
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
}

hash::Seed os_entropy() {
  std::random_device rd;
  hash::Seed seed;
  for (std::size_t i = 0; i < seed.size(); i += 4)
    store_le32(&seed[i], rd());
  return seed;
}

int keygen(const lac::Params& params, const std::string& keyfile,
           const std::string& pubfile) {
  const lac::Backend backend = lac::Backend::optimized();
  const lac::KemKeyPair keys = lac::kem_keygen(params, backend, os_entropy());
  write_file(keyfile, lac::serialize_kem_sk(params, keys));
  write_file(pubfile, lac::serialize(params, keys.pk));
  std::cout << "wrote " << keyfile << " (" << lac::kem_sk_bytes(params)
            << " bytes) and " << pubfile << " (" << params.pk_bytes()
            << " bytes)\n";
  return 0;
}

int encaps(const lac::Params& params, const std::string& pubfile,
           const std::string& ctfile) {
  const lac::Backend backend = lac::Backend::optimized();
  const lac::PublicKey pk = lac::deserialize_pk(params, read_file(pubfile));
  const lac::EncapsOutcome out =
      lac::encapsulate_checked(params, backend, pk, os_entropy());
  print_status(std::cout, "keytool", out.status, out.detail);
  if (out.status != Status::kOk) return 1;
  write_file(ctfile, lac::serialize(params, out.result.ct));
  std::cout << "ciphertext: " << ctfile << " (" << params.ct_bytes()
            << " bytes)\nshared key: "
            << to_hex(
                   ByteView(out.result.key.data(), out.result.key.size()))
            << "\n";
  return 0;
}

int decaps(const lac::Params& params, const std::string& keyfile,
           const std::string& ctfile) {
  const lac::Backend backend = lac::Backend::optimized();
  const lac::KemKeyPair keys =
      lac::deserialize_kem_sk(params, read_file(keyfile));
  const lac::Ciphertext ct = lac::deserialize_ct(params, read_file(ctfile));
  // The checked entry point makes the verdict visible on the CLI; the
  // printed key is still always usable (implicit rejection on non-kOk),
  // exactly as the FO transform prescribes.
  const lac::DecapsOutcome out =
      lac::decapsulate_checked(params, backend, keys, ct);
  print_status(std::cout, "keytool", out.status, out.detail);
  std::cout << "shared key: "
            << to_hex(ByteView(out.key.data(), out.key.size())) << "\n";
  return 0;
}

int demo() {
  std::cout << "(demo mode: full keygen/encaps/decaps via files in /tmp)\n";
  const lac::Params& params = lac::Params::lac256();
  keygen(params, "/tmp/lac.key", "/tmp/lac.pub");
  encaps(params, "/tmp/lac.pub", "/tmp/lac.ct");
  decaps(params, "/tmp/lac.key", "/tmp/lac.ct");
  std::cout << "(the two shared keys above must match)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc == 1) return demo();
    if (argc == 5) {
      const std::string cmd = argv[1];
      const lac::Params& params = level_of(argv[2]);
      if (cmd == "keygen") return keygen(params, argv[3], argv[4]);
      if (cmd == "encaps") return encaps(params, argv[3], argv[4]);
      if (cmd == "decaps") return decaps(params, argv[3], argv[4]);
    }
    std::cerr << "usage: lac_keytool keygen|encaps|decaps <level> <a> <b>\n";
    return 2;
  } catch (const std::exception& e) {
    lacrv::print_status(std::cerr, "keytool", lacrv::Status::kBadArgument,
                        e.what());
    return 1;
  }
}
