// A tour of the four hardware accelerators as cycle-accurate RTL models:
// drives each unit clock by clock, checks it against the software golden
// model, and prints latency plus the structural area estimate (Table III).
#include <iomanip>
#include <iostream>

#include "common/rng.h"
#include "poly/split_mul.h"
#include "rtl/barrett_unit.h"
#include "rtl/chien_unit.h"
#include "rtl/gf_mul.h"
#include "rtl/mul_ter.h"
#include "rtl/sha256_core.h"

namespace {

void print_area(const lacrv::rtl::AreaReport& area) {
  std::cout << "    area: " << area.luts << " LUTs, " << area.registers
            << " FFs, " << area.dsps << " DSPs\n\n";
}

}  // namespace

int main() {
  using namespace lacrv;
  Xoshiro256 rng(2026);

  std::cout << "== MUL TER (Fig. 2): serial ternary polynomial multiplier\n";
  {
    rtl::MulTerRtl unit(512);
    poly::Ternary a(512);
    poly::Coeffs b(512);
    for (auto& v : a)
      v = static_cast<i8>(static_cast<int>(rng.next_below(3)) - 1);
    for (auto& v : b) v = static_cast<u8>(rng.next_below(poly::kQ));
    for (std::size_t i = 0; i < 512; ++i) {
      unit.load_a(i, a[i]);
      unit.load_b(i, b[i]);
    }
    unit.start(/*negacyclic=*/true);
    const u64 latency = unit.run_to_completion();
    poly::Coeffs result(512);
    for (std::size_t i = 0; i < 512; ++i) result[i] = unit.read_c(i);
    std::cout << "    512-coefficient negacyclic product in " << latency
              << " clock cycles; matches software model: "
              << (result == poly::mul_ter_sw(a, b, true) ? "yes" : "NO")
              << "\n";
    print_area(unit.area());
  }

  std::cout << "== MUL GF (Fig. 3): bit-serial GF(2^9) multiplier\n";
  {
    rtl::GfMulRtl unit;
    const gf::Element a = gf::alpha_pow(100), b = gf::alpha_pow(321);
    unit.load(a, b);
    unit.start();
    const u64 latency = unit.run_to_completion();
    std::cout << "    alpha^100 * alpha^321 = alpha^" << gf::log(unit.result())
              << " in " << latency << " cycles (m = 9)\n";
    print_area(rtl::GfMulRtl::area_single());
  }

  std::cout << "== MUL CHIEN (Fig. 4): 4-parallel locator evaluation\n";
  {
    rtl::ChienRtl unit;
    // Locator with a root at alpha^200 -> error position 511-200 = 311.
    std::vector<gf::Element> lambda(17, 0);
    lambda[0] = 1;
    lambda[1] = gf::alpha_pow(511 - 200);
    unit.configure(lambda, 112);
    int root_at = -1;
    for (int l = 112; l <= 368; ++l)
      if (unit.eval_next() == 0) root_at = l;
    std::cout << "    scanned alpha^112..alpha^368, root at alpha^" << root_at
              << " -> error bit " << (511 - root_at) << "; "
              << unit.cycles() << " multiplier cycles for 257 points\n";
    print_area(unit.area());
  }

  std::cout << "== SHA256 core: round-per-cycle compression\n";
  {
    rtl::Sha256Rtl core;
    const Bytes msg = {'l', 'a', 'c'};
    const hash::Digest digest = core.hash_message(msg);
    std::cout << "    sha256(\"lac\") = "
              << to_hex(ByteView(digest.data(), 8)) << "... in "
              << core.cycles() << " cycles (65 per block)\n";
    print_area(core.area());
  }

  std::cout << "== MOD q: Barrett reduction (the PQ-ALU's only DSP user)\n";
  {
    rtl::BarrettRtl unit;
    std::cout << "    62001 mod 251 = " << static_cast<int>(unit.reduce(62001))
              << " (two multiplications, constant time)\n";
    print_area(unit.area());
  }
  return 0;
}
