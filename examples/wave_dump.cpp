// Dump VCD waveforms of the accelerator models — open them in GTKWave to
// watch Fig. 2's register rotation and Fig. 3's shift-and-add reduction
// clock by clock:
//
//   ./build/examples/wave_dump [outdir]
//   gtkwave mul_ter.vcd
#include <fstream>
#include <iostream>

#include "common/rng.h"
#include "rtl/trace.h"

int main(int argc, char** argv) {
  using namespace lacrv;
  const std::string outdir = argc > 1 ? argv[1] : ".";

  // A small (n = 16) ternary multiplication so the trace stays readable.
  Xoshiro256 rng(7);
  poly::Ternary a(16);
  poly::Coeffs b(16);
  for (auto& v : a)
    v = static_cast<i8>(static_cast<int>(rng.next_below(3)) - 1);
  for (auto& v : b) v = static_cast<u8>(rng.next_below(poly::kQ));

  {
    std::ofstream vcd(outdir + "/mul_ter.vcd");
    rtl::MulTerRtl unit(16);
    const poly::Coeffs result =
        rtl::trace_mul_ter(unit, a, b, /*negacyclic=*/true, vcd, 16);
    const bool ok = result == poly::mul_ter_sw(a, b, true);
    std::cout << "mul_ter.vcd: n=16 negacyclic multiplication, "
              << unit.cycles() << " cycles, result "
              << (ok ? "verified" : "MISMATCH") << "\n";
  }
  {
    std::ofstream vcd(outdir + "/mul_gf.vcd");
    const gf::Element a_gf = gf::alpha_pow(100);
    const gf::Element b_gf = gf::alpha_pow(321);
    const gf::Element r = rtl::trace_gf_mul(a_gf, b_gf, vcd);
    std::cout << "mul_gf.vcd: alpha^100 * alpha^321 = alpha^" << gf::log(r)
              << " over 9 shift-and-add cycles\n";
  }
  std::cout << "open with: gtkwave " << outdir << "/mul_ter.vcd\n";
  return 0;
}
