// The timing side channel that motivates Sec. VI-A: the round-2 LAC
// submission's BCH decoder takes a different number of cycles depending
// on how many errors it corrects — and the error count correlates with
// the secret key (D'Anvers et al. [14] turned exactly this into a key
// recovery). This demo measures decode cycles as a function of the error
// count for both decoders and prints the resulting "attacker's view".
#include <iomanip>
#include <iostream>

#include "common/rng.h"
#include "bch/decoder.h"

int main() {
  using namespace lacrv;
  const bch::CodeSpec& spec = bch::CodeSpec::bch_511_367_16();
  Xoshiro256 rng(99);

  std::cout << "BCH(511,367,16) decode cycles vs number of errors\n\n";
  std::cout << std::left << std::setw(8) << "errors" << std::right
            << std::setw(16) << "submission" << std::setw(16)
            << "constant-time" << "\n";

  u64 sub_min = ~0ull, sub_max = 0, ct_min = ~0ull, ct_max = 0;
  for (int errors : {0, 1, 2, 4, 8, 12, 16}) {
    bch::Message msg{};
    rng.fill(msg.data(), msg.size());
    bch::BitVec cw = bch::encode(spec, msg);
    for (int i = 0; i < errors; ++i)
      cw[static_cast<std::size_t>(rng.next_below(spec.length()))] ^= 1;

    CycleLedger sub, ct;
    bch::decode(spec, cw, bch::Flavor::kSubmission, &sub);
    bch::decode(spec, cw, bch::Flavor::kConstantTime, &ct);
    sub_min = std::min(sub_min, sub.total());
    sub_max = std::max(sub_max, sub.total());
    ct_min = std::min(ct_min, ct.total());
    ct_max = std::max(ct_max, ct.total());
    std::cout << std::left << std::setw(8) << errors << std::right
              << std::setw(16) << sub.total() << std::setw(16) << ct.total()
              << "\n";
  }

  std::cout << "\nAttacker's view (max - min cycles over the sweep):\n";
  std::cout << "  submission decoder:    " << sub_max - sub_min
            << " cycles of spread -> error count (and hence key-dependent "
               "noise) is observable\n";
  std::cout << "  constant-time decoder: " << ct_max - ct_min
            << " cycles of spread -> nothing usable\n";
  std::cout << "\nThe paper therefore builds on the Walters/Roy decoder and "
               "accelerates its dominant stage (Chien search) in hardware, "
               "recovering the lost performance without reopening the "
               "channel (Tables I and II).\n";
  return 0;
}
