#include <gtest/gtest.h>

#include "common/rng.h"
#include "lac/nist_api.h"

namespace lacrv::lac::nist {
namespace {

/// Deterministic randombytes for KAT-style driving.
RandomBytes drbg(u64 seed) {
  auto rng = std::make_shared<Xoshiro256>(seed);
  return [rng](u8* out, std::size_t len) { rng->fill(out, len); };
}

class NistApiSweep : public ::testing::TestWithParam<SecurityLevel> {};

TEST_P(NistApiSweep, KeypairEncDecRoundTrip) {
  const Params& params = Params::get(GetParam());
  const Backend backend = Backend::optimized();
  const Sizes sz = sizes(params);

  Bytes pk(sz.public_key), sk(sz.secret_key), ct(sz.ciphertext);
  Bytes ss_enc(sz.shared_secret), ss_dec(sz.shared_secret);

  crypto_kem_keypair(params, backend, pk.data(), sk.data(), drbg(1));
  crypto_kem_enc(params, backend, ct.data(), ss_enc.data(), pk.data(),
                 drbg(2));
  crypto_kem_dec(params, backend, ss_dec.data(), ct.data(), sk.data());
  EXPECT_EQ(ss_enc, ss_dec);
}

TEST_P(NistApiSweep, DeterministicUnderFixedDrbg) {
  const Params& params = Params::get(GetParam());
  const Backend backend = Backend::reference();
  const Sizes sz = sizes(params);
  Bytes pk1(sz.public_key), sk1(sz.secret_key);
  Bytes pk2(sz.public_key), sk2(sz.secret_key);
  crypto_kem_keypair(params, backend, pk1.data(), sk1.data(), drbg(7));
  crypto_kem_keypair(params, backend, pk2.data(), sk2.data(), drbg(7));
  EXPECT_EQ(pk1, pk2);
  EXPECT_EQ(sk1, sk2);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, NistApiSweep,
                         ::testing::Values(SecurityLevel::kLac128,
                                           SecurityLevel::kLac192,
                                           SecurityLevel::kLac256),
                         [](const auto& info) {
                           return std::string(Params::get(info.param).name)
                               .substr(4);
                         });

TEST(NistApi, SizesMatchParams) {
  const Sizes sz = sizes(Params::lac256());
  EXPECT_EQ(sz.public_key, 1056u);
  EXPECT_EQ(sz.ciphertext, 1424u);
  EXPECT_EQ(sz.secret_key, 1024u + 32u + 1056u);
  EXPECT_EQ(sz.shared_secret, 32u);
}

TEST(NistApi, TamperedCiphertextRejectsImplicitly) {
  const Params& params = Params::lac128();
  const Backend backend = Backend::reference();
  const Sizes sz = sizes(params);
  Bytes pk(sz.public_key), sk(sz.secret_key), ct(sz.ciphertext);
  Bytes ss(sz.shared_secret), ss_bad(sz.shared_secret);
  crypto_kem_keypair(params, backend, pk.data(), sk.data(), drbg(3));
  crypto_kem_enc(params, backend, ct.data(), ss.data(), pk.data(), drbg(4));
  ct[17] ^= 0x40;
  crypto_kem_dec(params, backend, ss_bad.data(), ct.data(), sk.data());
  EXPECT_NE(ss, ss_bad);
}

TEST(NistApi, NullArgumentsRejected) {
  const Params& params = Params::lac128();
  const Backend backend = Backend::reference();
  Bytes buf(8192);
  EXPECT_EQ(Status::kBadArgument,
            crypto_kem_keypair(params, backend, nullptr, buf.data(), drbg(1)));
  EXPECT_EQ(Status::kBadArgument,
            crypto_kem_enc(params, backend, buf.data(), buf.data(), nullptr,
                           drbg(2)));
  EXPECT_EQ(Status::kBadArgument,
            crypto_kem_dec(params, backend, buf.data(), buf.data(), nullptr));
  // A null randombytes callable is also a bad argument, not a crash.
  EXPECT_EQ(Status::kBadArgument,
            crypto_kem_keypair(params, backend, buf.data(), buf.data(),
                               RandomBytes()));
}

TEST(NistApi, MalformedSecretKeyRejected) {
  const Params& params = Params::lac128();
  const Backend backend = Backend::reference();
  const Sizes sz = sizes(params);
  Bytes ct(sz.ciphertext), ss(sz.shared_secret);
  // A secret key with an out-of-range ternary coefficient must surface as
  // kBadArgument (typed), never as an uncaught exception.
  Bytes sk(sz.secret_key, 0x7F);
  EXPECT_EQ(Status::kBadArgument,
            crypto_kem_dec(params, backend, ss.data(), ct.data(), sk.data()));
}

}  // namespace
}  // namespace lacrv::lac::nist
