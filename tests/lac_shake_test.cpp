// The SHAKE-128 scheme variant — the paper's Sec. VI-B future work as a
// running cryptosystem: GenA and the samplers draw from SHAKE-128 instead
// of SHA-256-CTR. Wire formats are unchanged; the polynomials (and hence
// keys/ciphertexts) differ.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "lac/kem.h"
#include "lac/sampler.h"

namespace lacrv::lac {
namespace {

hash::Seed seed_of(u64 x) {
  hash::Seed s{};
  for (int i = 0; i < 8; ++i) s[i] = static_cast<u8>(x >> (8 * i));
  return s;
}

class ShakeSweep : public ::testing::TestWithParam<const Params*> {};

TEST_P(ShakeSweep, KemRoundTripBothBackendFlavours) {
  const Params& params = *GetParam();
  for (const Backend& backend :
       {Backend::reference_const_bch(), Backend::optimized()}) {
    const KemKeyPair keys = kem_keygen(params, backend, seed_of(1));
    const EncapsResult enc =
        encapsulate(params, backend, keys.pk, seed_of(2));
    EXPECT_EQ(decapsulate(params, backend, keys, enc.ct), enc.key)
        << params.name << "/" << backend.name;
  }
}

TEST_P(ShakeSweep, WireSizesIdenticalToBaseVariant) {
  const Params& shake = *GetParam();
  const Params& base = Params::get(shake.level);
  EXPECT_EQ(shake.pk_bytes(), base.pk_bytes());
  EXPECT_EQ(shake.ct_bytes(), base.ct_bytes());
  EXPECT_EQ(shake.v_len(), base.v_len());
}

TEST_P(ShakeSweep, ProducesDifferentPolynomialsThanSha256Variant) {
  const Params& shake = *GetParam();
  const Params& base = Params::get(shake.level);
  EXPECT_NE(gen_a(seed_of(3), shake), gen_a(seed_of(3), base));
  EXPECT_NE(sample_fixed_weight(seed_of(3), shake),
            sample_fixed_weight(seed_of(3), base));
}

TEST_P(ShakeSweep, SamplerKeepsFixedWeight) {
  const Params& params = *GetParam();
  const poly::Ternary t = sample_fixed_weight(seed_of(4), params);
  std::size_t plus = 0, minus = 0;
  for (i8 v : t) {
    plus += (v == 1);
    minus += (v == -1);
  }
  EXPECT_EQ(plus, params.weight / 2);
  EXPECT_EQ(minus, params.weight / 2);
}

INSTANTIATE_TEST_SUITE_P(AllShakeLevels, ShakeSweep,
                         ::testing::ValuesIn(Params::all_shake()),
                         [](const auto& info) {
                           return std::string(info.param->name)
                               .substr(4, 3);  // "128"/"192"/"256"
                         });

TEST(Shake, AcceleratedGenAFarCheaperThanSha256Path) {
  // The whole point of the variant: with a Keccak core, polynomial
  // generation stops paying the byte-fed SHA-256 interface.
  CycleLedger sha, shake;
  gen_a(seed_of(5), Params::lac256(), HashImpl::kAccelerated, &sha);
  gen_a(seed_of(5), Params::lac256_shake(), HashImpl::kAccelerated, &shake);
  EXPECT_LT(shake.total(), sha.total());
  // the hash share drops ~28x; the totals differ by the glue-dominated rest
  EXPECT_GT(sha.total() - shake.total(), 25000u);
}

TEST(Shake, DecryptionNoiseStillWithinBchCapability) {
  // Different PRG, same noise structure: run several full PKE round trips.
  const Params& params = Params::lac256_shake();
  const Backend backend = Backend::reference_const_bch();
  Xoshiro256 rng(6);
  for (int trial = 0; trial < 5; ++trial) {
    const KeyPair kp = keygen(params, backend, seed_of(100 + trial));
    bch::Message msg;
    rng.fill(msg.data(), msg.size());
    const Ciphertext ct =
        encrypt(params, backend, kp.pk, msg, seed_of(200 + trial));
    const DecryptResult dec = decrypt(params, backend, kp.sk, ct);
    ASSERT_TRUE(dec.ok);
    ASSERT_EQ(dec.message, msg);
  }
}

TEST(Shake, PinnedKat) {
  // Self-generated KAT for the variant (one level suffices — the sweep
  // covers functionality; this guards against silent PRG drift).
  const Params& params = Params::lac256_shake();
  const Backend backend = Backend::reference();
  const KemKeyPair keys = kem_keygen(params, backend, seed_of(0x5A5A));
  const EncapsResult enc =
      encapsulate(params, backend, keys.pk, seed_of(0x3C3C));
  const hash::Digest d = hash::sha256(serialize(params, enc.ct));
  // Pinned after first verified-green run of this suite.
  EXPECT_EQ(to_hex(ByteView(d.data(), 8)), "6a80ce22bb23810e");
}

}  // namespace
}  // namespace lacrv::lac
