// The silent-data-corruption defense (src/verify/): the quarantine
// state machine, the deterministic shadow sampler, the golden
// re-execution comparators, and their KemService integration.
//
// The service-level tests pin the end-to-end contract of
// docs/robustness.md: an *evasive* transient fault — one that fires
// during a live operation and leaves every subsequent KAT green — is
// caught by shadow verification, the implicated slots are quarantined,
// and (under the default policy) the caller still receives the golden
// answer: zero wrong answers leave the process once sampling catches
// the fault. With verification disabled or sampled at zero, responses
// are bit-identical to the pre-verification service.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/status.h"
#include "fault/plan.h"
#include "lac/backend.h"
#include "lac/kem.h"
#include "service/service.h"
#include "verify/quarantine.h"
#include "verify/verifier.h"

namespace lacrv::service {
namespace {

using verify::QuarantinePolicy;
using verify::QuarantineState;
using verify::SlotQuarantine;

hash::Seed seed_from(u8 tag) {
  hash::Seed s{};
  s[0] = tag;
  s[31] = static_cast<u8>(tag ^ 0x3c);
  return s;
}

QuarantinePolicy small_policy() {
  QuarantinePolicy p;
  p.rejoin_probes = 2;
  p.probation_full_clean = 2;
  p.probation_ramp_clean = 2;
  p.ramp_sample_per_mille = 500;
  return p;
}

struct Transition {
  QuarantineState from;
  QuarantineState to;
};

TEST(Quarantine, MismatchTripsFromHealthyAndBlocksHardware) {
  SlotQuarantine q;
  std::vector<Transition> log;
  q.configure("mul_ter", small_policy(),
              [&](const char*, QuarantineState from, QuarantineState to,
                  const std::string&) { log.push_back({from, to}); });

  EXPECT_TRUE(q.allow());
  EXPECT_EQ(q.state(), QuarantineState::kHealthy);
  EXPECT_EQ(q.sample_override_per_mille(), 0u);

  q.record_mismatch("served != golden");
  EXPECT_FALSE(q.allow());
  EXPECT_EQ(q.state(), QuarantineState::kQuarantined);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].from, QuarantineState::kHealthy);
  EXPECT_EQ(log[0].to, QuarantineState::kQuarantined);

  // Already quarantined: further mismatches are absorbed, not re-logged.
  q.record_mismatch("again");
  EXPECT_EQ(log.size(), 1u);
}

TEST(Quarantine, ProbeWalkThenCleanTrafficRejoins) {
  SlotQuarantine q;
  std::vector<Transition> log;
  q.configure("chien", small_policy(),
              [&](const char*, QuarantineState from, QuarantineState to,
                  const std::string&) { log.push_back({from, to}); });
  q.record_mismatch("diverged");

  // A failing probe resets the consecutive-pass walk.
  q.probe_passed();
  q.probe_failed("kat failed");
  q.probe_passed();
  EXPECT_EQ(q.state(), QuarantineState::kQuarantined);
  q.probe_passed();
  EXPECT_EQ(q.state(), QuarantineState::kProbationFull);
  EXPECT_TRUE(q.allow());  // hardware serves again, under full sampling
  EXPECT_EQ(q.sample_override_per_mille(), 1000u);

  // Clean verified traffic steps probation-full -> probation-ramp.
  q.record_clean_verify();
  EXPECT_EQ(q.state(), QuarantineState::kProbationFull);
  q.record_clean_verify();
  EXPECT_EQ(q.state(), QuarantineState::kProbationRamp);
  EXPECT_EQ(q.sample_override_per_mille(), 500u);

  // And probation-ramp -> healthy.
  q.record_clean_verify();
  q.record_clean_verify();
  EXPECT_EQ(q.state(), QuarantineState::kHealthy);
  EXPECT_EQ(q.sample_override_per_mille(), 0u);

  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log.back().to, QuarantineState::kHealthy);
}

TEST(Quarantine, MismatchDuringProbationRestartsTheWalk) {
  SlotQuarantine q;
  q.configure("sha256", small_policy(), nullptr);
  q.record_mismatch("diverged");
  q.probe_passed();
  q.probe_passed();
  ASSERT_EQ(q.state(), QuarantineState::kProbationFull);

  q.record_mismatch("diverged again under probation");
  EXPECT_EQ(q.state(), QuarantineState::kQuarantined);
  EXPECT_FALSE(q.allow());

  // The probe walk starts over — one pass is no longer enough.
  q.probe_passed();
  EXPECT_EQ(q.state(), QuarantineState::kQuarantined);
}

TEST(Quarantine, CleanVerifyAndProbesAreNoOpsOutsideTheirStates) {
  SlotQuarantine q;
  q.configure("modq", small_policy(), nullptr);
  q.record_clean_verify();
  q.probe_passed();
  q.probe_failed("noise");
  EXPECT_EQ(q.state(), QuarantineState::kHealthy);
  EXPECT_TRUE(q.allow());
}

TEST(ShadowVerifier, SamplingIsDeterministicAndBounded) {
  verify::VerifyConfig cfg;
  cfg.enabled = true;
  cfg.sample_per_mille = 0;
  verify::ShadowVerifier off(cfg);
  for (u64 id = 0; id < 64; ++id) EXPECT_FALSE(off.should_verify(id));
  // The probation override forces sampling even at a zero baseline.
  EXPECT_TRUE(off.should_verify(7, 1000));

  cfg.sample_per_mille = 1000;
  verify::ShadowVerifier full(cfg);
  for (u64 id = 0; id < 64; ++id) EXPECT_TRUE(full.should_verify(id));

  cfg.sample_per_mille = 500;
  verify::ShadowVerifier half(cfg);
  std::size_t hits = 0;
  for (u64 id = 0; id < 10'000; ++id) {
    const bool first = half.should_verify(id);
    EXPECT_EQ(first, half.should_verify(id));  // decision is a pure function
    if (first) ++hits;
  }
  EXPECT_GT(hits, 4'000u);
  EXPECT_LT(hits, 6'000u);

  cfg.enabled = false;
  verify::ShadowVerifier disabled(cfg);
  EXPECT_FALSE(disabled.should_verify(1, 1000));  // master switch wins
}

TEST(ShadowVerifier, DivergenceLogKeepsTheOldestRecords) {
  verify::VerifyConfig cfg;
  cfg.max_divergence_records = 2;
  verify::ShadowVerifier v(cfg);
  for (u64 i = 0; i < 5; ++i) {
    verify::DivergenceRecord r;
    r.trace_id = i;
    v.record_divergence(std::move(r));
  }
  const auto records = v.divergences();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].trace_id, 0u);
  EXPECT_EQ(records[1].trace_id, 1u);
}

TEST(ShadowCompare, CleanAndTamperedServedAnswers) {
  const lac::Params& params = lac::Params::lac128();
  const lac::Backend golden = lac::Backend::optimized();
  const lac::KemKeyPair keys = lac::kem_keygen(params, golden, seed_from(1));
  const hash::Seed entropy = seed_from(2);
  const lac::EncapsResult enc =
      lac::encapsulate(params, golden, keys.pk, entropy);

  // Served == golden: clean.
  EXPECT_FALSE(verify::shadow_encaps(params, golden, keys.pk, entropy,
                                     Status::kOk, enc)
                   .diverged);

  // One flipped shared-key bit: diverged, named.
  lac::EncapsResult bad_key = enc;
  bad_key.key[0] ^= 0x01;
  const verify::ShadowResult key_diff = verify::shadow_encaps(
      params, golden, keys.pk, entropy, Status::kOk, bad_key);
  EXPECT_TRUE(key_diff.diverged);
  EXPECT_NE(key_diff.detail.find("shared-key"), std::string::npos);

  // One flipped ciphertext byte: diverged, named.
  lac::EncapsResult bad_ct = enc;
  bad_ct.ct.v[0] = static_cast<u8>(bad_ct.ct.v[0] ^ 0x01);
  const verify::ShadowResult ct_diff = verify::shadow_encaps(
      params, golden, keys.pk, entropy, Status::kOk, bad_ct);
  EXPECT_TRUE(ct_diff.diverged);
  EXPECT_NE(ct_diff.detail.find("ciphertext"), std::string::npos);

  // Decaps: the served key must match bit-for-bit, and a served status
  // that disagrees with the golden verdict is itself a divergence.
  const lac::SharedKey dec = lac::decapsulate(params, golden, keys, enc.ct);
  EXPECT_FALSE(verify::shadow_decaps(params, golden, keys, enc.ct,
                                     Status::kOk, dec)
                   .diverged);
  const verify::ShadowResult status_diff = verify::shadow_decaps(
      params, golden, keys, enc.ct, Status::kDecodeFailure, dec);
  EXPECT_TRUE(status_diff.diverged);
  EXPECT_NE(status_diff.detail.find("status"), std::string::npos);
}

ServiceConfig verified_config(ManualClock& clock) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 8;
  cfg.clock = &clock;
  cfg.enable_prober = false;
  cfg.retry.jitter_percent = 0;
  cfg.verify.enabled = true;
  cfg.verify.sample_per_mille = 1000;
  cfg.verify.quarantine = small_policy();
  return cfg;
}

TEST(VerifyService, CleanTrafficIsCheckedWithoutMismatches) {
  ManualClock clock;
  KemService svc(verified_config(clock));

  for (u8 i = 0; i < 4; ++i) {
    KemResponse enc =
        svc.submit({OpKind::kEncaps, seed_from(i), {}, kNoDeadline}).get();
    ASSERT_EQ(enc.status, Status::kOk);
    EXPECT_TRUE(enc.shadow_checked);
    EXPECT_FALSE(enc.integrity_corrected);

    KemRequest dec_req;
    dec_req.op = OpKind::kDecaps;
    dec_req.ct = enc.encaps.ct;
    KemResponse dec = svc.submit(std::move(dec_req)).get();
    ASSERT_EQ(dec.status, Status::kOk);
    EXPECT_TRUE(dec.shadow_checked);
    EXPECT_EQ(dec.key, enc.encaps.key);
  }

  EXPECT_EQ(svc.verifier().checked().load(), 8u);
  EXPECT_EQ(svc.verifier().mismatches().load(), 0u);
  for (lac::Slot slot : lac::kAllSlots)
    EXPECT_EQ(svc.quarantine_state(slot), QuarantineState::kHealthy);
  EXPECT_TRUE(svc.divergences().empty());
}

TEST(VerifyService, SampleZeroChecksNothingAndMatchesDisabledBitForBit) {
  ManualClock clock_a, clock_b;
  ServiceConfig off_cfg;
  off_cfg.workers = 1;
  off_cfg.clock = &clock_a;
  off_cfg.enable_prober = false;
  KemService off(off_cfg);

  ServiceConfig zero_cfg = off_cfg;
  zero_cfg.clock = &clock_b;
  zero_cfg.verify.enabled = true;
  zero_cfg.verify.sample_per_mille = 0;
  KemService zero(zero_cfg);

  for (u8 i = 0; i < 4; ++i) {
    KemResponse a =
        off.submit({OpKind::kEncaps, seed_from(i), {}, kNoDeadline}).get();
    KemResponse b =
        zero.submit({OpKind::kEncaps, seed_from(i), {}, kNoDeadline}).get();
    ASSERT_EQ(a.status, Status::kOk);
    ASSERT_EQ(b.status, Status::kOk);
    EXPECT_EQ(a.encaps.ct.u, b.encaps.ct.u);
    EXPECT_EQ(a.encaps.ct.v, b.encaps.ct.v);
    EXPECT_EQ(a.encaps.key, b.encaps.key);
    EXPECT_FALSE(b.shadow_checked);
  }
  EXPECT_EQ(zero.verifier().checked().load(), 0u);
}

/// Drive encaps traffic into an armed evasive storm until the shadow
/// sampler sees a divergence (or `limit` requests pass clean). Every
/// kOk response is compared against an independent golden re-execution
/// — the zero-wrong-answers assertion — when `expect_golden` is set.
std::size_t drive_until_divergence(KemService& svc, std::size_t limit,
                                   bool expect_golden) {
  const lac::Backend golden = lac::Backend::optimized();
  for (std::size_t i = 0; i < limit; ++i) {
    const hash::Seed entropy = seed_from(static_cast<u8>(i));
    KemResponse r =
        svc.submit({OpKind::kEncaps, entropy, {}, kNoDeadline}).get();
    if (expect_golden && r.status == Status::kOk) {
      const lac::EncapsResult want =
          lac::encapsulate(svc.params(), golden, svc.keys().pk, entropy);
      EXPECT_EQ(r.encaps.ct.u, want.ct.u);
      EXPECT_EQ(r.encaps.ct.v, want.ct.v);
      EXPECT_EQ(r.encaps.key, want.key);
    }
    if (svc.verifier().mismatches().load() > 0) return i + 1;
  }
  return 0;
}

TEST(VerifyService, EvasiveStormIsCaughtCorrectedAndQuarantined) {
  ManualClock clock;
  KemService svc(verified_config(clock));

  // A dense transient-bit-flip storm on the ternary multiplier: fires
  // once per drawn edge, is consumed by live multiplies, and leaves
  // KATs green — invisible to every layer below the shadow verifier.
  fault::FaultPlan storm =
      fault::FaultPlan::storm(fault::Unit::kMulTer, 0x5dc0ffee, 400, 60'000);
  svc.arm_faults(storm);

  const std::size_t detected_at =
      drive_until_divergence(svc, 200, /*expect_golden=*/true);
  ASSERT_GT(detected_at, 0u) << "storm never produced a divergence";
  EXPECT_GE(svc.verifier().mismatches().load(), 1u);
  EXPECT_GE(svc.verifier().corrected().load(), 1u);
  EXPECT_EQ(svc.verifier().integrity_responses().load(), 0u);
  EXPECT_EQ(svc.quarantine_state(lac::Slot::kMulTer),
            QuarantineState::kQuarantined);

  const auto records = svc.divergences();
  ASSERT_FALSE(records.empty());
  EXPECT_STREQ(records[0].op, "encaps");
  EXPECT_NE(records[0].slots.find("mul_ter"), std::string::npos);

  // After the trip the multiplier slot is pinned to software: traffic
  // keeps flowing, correct, marked as degraded.
  svc.clear_faults();
  KemResponse after =
      svc.submit({OpKind::kEncaps, seed_from(0xee), {}, kNoDeadline}).get();
  ASSERT_EQ(after.status, Status::kOk);
  EXPECT_TRUE(after.served_by_fallback);
  EXPECT_EQ(after.encaps.key,
            lac::encapsulate(svc.params(), lac::Backend::optimized(),
                             svc.keys().pk, seed_from(0xee))
                .key);
}

TEST(VerifyService, IntegrityRefusalPolicyWithholdsTheAnswer) {
  ManualClock clock;
  ServiceConfig cfg = verified_config(clock);
  cfg.verify.serve_golden_on_mismatch = false;
  KemService svc(cfg);

  fault::FaultPlan storm =
      fault::FaultPlan::storm(fault::Unit::kMulTer, 0x5dc0ffee, 400, 60'000);
  svc.arm_faults(storm);

  for (std::size_t i = 0; i < 200; ++i) {
    KemResponse r =
        svc.submit({OpKind::kEncaps, seed_from(static_cast<u8>(i)), {},
                    kNoDeadline})
            .get();
    if (r.status == Status::kIntegrity) {
      // The answer is withheld, not substituted.
      EXPECT_TRUE(r.encaps.ct.u.empty());
      EXPECT_EQ(r.key, lac::SharedKey{});
      EXPECT_GE(svc.verifier().integrity_responses().load(), 1u);
      EXPECT_EQ(svc.verifier().corrected().load(), 0u);
      return;
    }
    ASSERT_EQ(r.status, Status::kOk);
  }
  FAIL() << "storm never produced an integrity refusal";
}

TEST(VerifyService, ProbationRampRejoinsAfterCleanTraffic) {
  ManualClock clock;
  KemService svc(verified_config(clock));

  fault::FaultPlan storm =
      fault::FaultPlan::storm(fault::Unit::kMulTer, 0x5dc0ffee, 400, 60'000);
  svc.arm_faults(storm);
  ASSERT_GT(drive_until_divergence(svc, 200, /*expect_golden=*/true), 0u);
  ASSERT_EQ(svc.quarantine_state(lac::Slot::kMulTer),
            QuarantineState::kQuarantined);

  // Campaign over: the fault hooks detach and the transients are gone.
  svc.clear_faults();

  // rejoin_probes consecutive KAT passes walk quarantined -> probation.
  EXPECT_TRUE(svc.probe_now());
  EXPECT_TRUE(svc.probe_now());
  EXPECT_EQ(svc.quarantine_state(lac::Slot::kMulTer),
            QuarantineState::kProbationFull);

  // Clean shadow-verified traffic (still at 100% sampling) completes
  // the ramp back to healthy; the hardware path serves throughout.
  for (u8 i = 0; i < 8; ++i) {
    KemResponse r =
        svc.submit({OpKind::kEncaps, seed_from(static_cast<u8>(0x40 + i)), {},
                    kNoDeadline})
            .get();
    ASSERT_EQ(r.status, Status::kOk);
    if (svc.quarantine_state(lac::Slot::kMulTer) == QuarantineState::kHealthy)
      break;
  }
  EXPECT_EQ(svc.quarantine_state(lac::Slot::kMulTer),
            QuarantineState::kHealthy);

  // Healthy again: hardware serves without the fallback flag.
  KemResponse healed =
      svc.submit({OpKind::kEncaps, seed_from(0xfe), {}, kNoDeadline}).get();
  ASSERT_EQ(healed.status, Status::kOk);
  EXPECT_FALSE(healed.served_by_fallback);
}

}  // namespace
}  // namespace lacrv::service
