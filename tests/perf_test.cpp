#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "perf/iss_kernels.h"
#include "perf/rtl_backend.h"
#include "lac/gen_a.h"
#include "perf/tables.h"

namespace lacrv::perf {
namespace {

hash::Seed seed_of(u64 x) {
  hash::Seed s{};
  for (int i = 0; i < 8; ++i) s[i] = static_cast<u8>(x >> (8 * i));
  return s;
}

// ---- RTL-backed backend ----------------------------------------------------

TEST(RtlBackend, MatchesModeledBackendBitExactly) {
  const lac::Params& params = lac::Params::lac192();
  const lac::Backend modeled = lac::Backend::optimized();
  const lac::Backend rtl = rtl_optimized_backend();

  const lac::KeyPair kp_m = lac::keygen(params, modeled, seed_of(1));
  const lac::KeyPair kp_r = lac::keygen(params, rtl, seed_of(1));
  EXPECT_EQ(kp_m.pk.b, kp_r.pk.b);

  Xoshiro256 rng(2);
  bch::Message msg;
  rng.fill(msg.data(), msg.size());
  const lac::Ciphertext ct_m =
      lac::encrypt(params, modeled, kp_m.pk, msg, seed_of(3));
  const lac::Ciphertext ct_r =
      lac::encrypt(params, rtl, kp_r.pk, msg, seed_of(3));
  EXPECT_EQ(ct_m.u, ct_r.u);
  EXPECT_EQ(ct_m.v, ct_r.v);

  EXPECT_EQ(lac::decrypt(params, rtl, kp_r.sk, ct_r).message, msg);
}

TEST(RtlBackend, CycleChargesAgreeWithModeledBackend) {
  // The modeled unit charges n compute cycles from a constant; the RTL
  // unit charges the observed latency. They must coincide.
  const lac::Params& params = lac::Params::lac128();
  CycleLedger modeled, rtl;
  lac::keygen(params, lac::Backend::optimized(), seed_of(9), &modeled);
  lac::keygen(params, rtl_optimized_backend(), seed_of(9), &rtl);
  EXPECT_EQ(modeled.section("mult"), rtl.section("mult"));
}

TEST(RtlBackend, KemRoundTripAllLevels) {
  for (const lac::Params* params : lac::Params::all()) {
    const lac::Backend backend = rtl_optimized_backend();
    const lac::KemKeyPair keys =
        lac::kem_keygen(*params, backend, seed_of(11));
    const lac::EncapsResult enc =
        lac::encapsulate(*params, backend, keys.pk, seed_of(12));
    EXPECT_EQ(lac::decapsulate(*params, backend, keys, enc.ct), enc.key)
        << params->name;
  }
}

// ---- ISS kernels -----------------------------------------------------------

TEST(IssKernels, MulTerKernelComputesCorrectProduct) {
  Xoshiro256 rng(5);
  poly::Ternary a(512);
  poly::Coeffs b(512);
  for (auto& v : a)
    v = static_cast<i8>(static_cast<int>(rng.next_below(3)) - 1);
  for (auto& v : b) v = static_cast<u8>(rng.next_below(poly::kQ));

  for (bool negacyclic : {true, false}) {
    const IssRunResult run = iss_mul_ter(a, b, negacyclic);
    EXPECT_EQ(run.result, poly::mul_ter_sw(a, b, negacyclic))
        << "negacyclic=" << negacyclic;
  }
}

TEST(IssKernels, MulTerKernelCyclesNearInstructionModel) {
  // The instruction-level cost model says ~6.2k cycles for a full n=512
  // call (Table II: 6,390). The machine-code kernel must land in the same
  // regime — the packing loop is the dominant term in both.
  Xoshiro256 rng(6);
  poly::Ternary a(512);
  poly::Coeffs b(512);
  for (auto& v : a)
    v = static_cast<i8>(static_cast<int>(rng.next_below(3)) - 1);
  for (auto& v : b) v = static_cast<u8>(rng.next_below(poly::kQ));
  const IssRunResult run = iss_mul_ter(a, b, true);
  EXPECT_GT(run.cycles, 4000u);
  EXPECT_LT(run.cycles, 13000u);
  // compute phase alone is 512 cycles of the total
  EXPECT_GT(run.cycles, 512u);
}

TEST(IssKernels, ModqKernelReducesEveryValue) {
  std::vector<u16> values;
  Xoshiro256 rng(7);
  for (int i = 0; i < 200; ++i)
    values.push_back(static_cast<u16>(rng.next_below(1u << 16)));
  const IssRunResult run = iss_modq(values);
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_EQ(run.result[i], values[i] % poly::kQ) << i;
  // lhu(2) + pq(1) + sb(1) + 3 addi + blt(3) = 10 per element + setup
  EXPECT_NEAR(static_cast<double>(run.cycles), 10.0 * values.size(), 100.0);
}




TEST(IssKernels, SplitMul1024MatchesOracle) {
  // The complete optimized LAC-192/256 multiplication as machine code:
  // Algorithms 1 + 2 with sixteen pq.mul_ter convolutions and pq.modq
  // recombination. Must equal the negacyclic product exactly.
  Xoshiro256 rng(42);
  poly::Ternary a(1024);
  poly::Coeffs b(1024);
  for (auto& v : a)
    v = static_cast<i8>(static_cast<int>(rng.next_below(3)) - 1);
  for (auto& v : b) v = static_cast<u8>(rng.next_below(poly::kQ));

  const IssRunResult run = iss_split_mul_1024(a, b);
  EXPECT_EQ(run.result, poly::mul_ter_sw(a, b, true));
  // Table II pins the optimized n=1024 multiplication at 151,354 cycles;
  // the machine-code kernel must land in the same regime.
  EXPECT_GT(run.cycles, 80000u);
  EXPECT_LT(run.cycles, 260000u);
}

TEST(IssKernels, GenAKernelMatchesLibraryGenA) {
  hash::Seed seed{};
  for (std::size_t i = 0; i < seed.size(); ++i) seed[i] = static_cast<u8>(i * 7 + 1);
  const IssRunResult run = iss_gen_a(seed, 512);
  const poly::Coeffs expected = lac::gen_a(seed, lac::Params::lac128());
  EXPECT_EQ(run.result, expected);
}


TEST(IssKernels, GenAKernelLargerCount) {
  hash::Seed seed{};
  seed.fill(0x31);
  const IssRunResult run = iss_gen_a(seed, 1024);
  const poly::Coeffs expected = lac::gen_a(seed, lac::Params::lac192());
  EXPECT_EQ(run.result, expected);
}

TEST(IssKernels, GenAKernelCyclesShowSamplingGlueDominating) {
  // The paper's surprising GenA result (Table II: the SHA-256 accelerator
  // saves only ~3%) traces to exactly this: per 32-byte block the kernel
  // spends ~65 cycles hashing but hundreds on byte-wise operand loading
  // and rejection-sampling software.
  hash::Seed seed{};
  seed.fill(9);
  const IssRunResult run = iss_gen_a(seed, 512);
  // ~17 blocks; each block: 64 loads x ~8 cycles + 65 hash + read/sample.
  EXPECT_GT(run.cycles, 17u * 65u * 2);  // far more than the pure hash time
  EXPECT_LT(run.cycles, 60000u);
  EXPECT_GT(run.instructions, 5000u);
}

TEST(IssKernels, ChienKernelMatchesSoftwareSearch) {
  // Locator with two known roots inside the t=16 window.
  const int e1 = 180, e2 = 330;
  const gf::Element x1 = gf::alpha_pow(e1), x2 = gf::alpha_pow(e2);
  std::vector<gf::Element> lambda(17, 0);
  lambda[0] = 1;
  lambda[1] = gf::add(x1, x2);
  lambda[2] = gf::mul_table(x1, x2);

  const IssChienResult run = iss_chien(lambda, 112, 368);
  ASSERT_EQ(run.root_flags.size(), 257u);
  std::vector<int> roots;
  for (int l = 112; l <= 368; ++l)
    if (run.root_flags[static_cast<std::size_t>(l - 112)]) roots.push_back(l);
  EXPECT_EQ(roots, (std::vector<int>{511 - e2, 511 - e1}));
}

TEST(IssKernels, ChienKernelBothCodeConfigs) {
  // Random locators: the kernel must agree point-by-point with direct
  // polynomial evaluation, for both t = 8 and t = 16.
  Xoshiro256 rng(77);
  for (int t : {8, 16}) {
    std::vector<gf::Element> lambda(static_cast<std::size_t>(t) + 1);
    for (auto& c : lambda)
      c = static_cast<gf::Element>(rng.next_below(gf::kFieldSize));
    const int first = t == 16 ? 112 : 184;
    const int last = first + 60;
    const IssChienResult run = iss_chien(lambda, first, last);
    for (int l = first; l <= last; ++l) {
      const bool is_root =
          gf::poly_eval(lambda, gf::alpha_pow(static_cast<u32>(l)),
                        gf::MulKind::kTable) == 0;
      ASSERT_EQ(run.root_flags[static_cast<std::size_t>(l - first)],
                is_root ? 1 : 0)
          << "t=" << t << " l=" << l;
    }
  }
}

TEST(IssKernels, ChienKernelCyclesInModelRegime) {
  std::vector<gf::Element> lambda(17, 1);
  const IssChienResult run = iss_chien(lambda, 112, 368);
  // model: 257 points x (4 groups x (9+12) + 16) = 25.7k; the machine
  // code achieves ~55 cycles/point (tighter control than the model's
  // conservative per-group constants) — same regime.
  EXPECT_GT(run.cycles, 10000u);
  EXPECT_LT(run.cycles, 40000u);
}

// ---- Table I ---------------------------------------------------------------

TEST(Table1, ShapeMatchesPaper) {
  const auto rows = table1();
  ASSERT_EQ(rows.size(), 4u);
  // submission: error-locator leaks; walters: near-constant
  EXPECT_LT(rows[0].error_loc, 500u);
  EXPECT_GT(rows[1].error_loc, 5000u);
  EXPECT_EQ(rows[2].syndrome, rows[3].syndrome);
  EXPECT_EQ(rows[2].chien, rows[3].chien);
  EXPECT_LE(rows[3].decode - rows[2].decode, 100u);
  // each decode within 15% of the paper value
  for (const auto& r : rows)
    EXPECT_NEAR(static_cast<double>(r.decode),
                static_cast<double>(r.paper_decode),
                static_cast<double>(r.paper_decode) * 0.15)
        << r.scheme << " " << r.fails;
}

// ---- Table II --------------------------------------------------------------

class Table2Fixture : public ::testing::Test {
 protected:
  static const std::vector<Table2Row>& rows() {
    static const std::vector<Table2Row> r = table2();
    return r;
  }
  static const Table2Row& row(const std::string& scheme) {
    for (const auto& r : rows())
      if (r.scheme == scheme) return r;
    throw std::runtime_error("row not found: " + scheme);
  }
};

TEST_F(Table2Fixture, HasAllConfigurations) {
  EXPECT_EQ(rows().size(), 3u + 9u + 1u);
}

TEST_F(Table2Fixture, MeasuredRowsWithin20PercentOfPaper) {
  for (const auto& r : rows()) {
    if (!r.paper) continue;
    const std::array<u64, 3> paper = *r.paper;
    const std::array<u64, 3> mine = {r.keygen, r.encaps, r.decaps};
    for (int i = 0; i < 3; ++i)
      EXPECT_NEAR(static_cast<double>(mine[static_cast<std::size_t>(i)]),
                  static_cast<double>(paper[static_cast<std::size_t>(i)]),
                  static_cast<double>(paper[static_cast<std::size_t>(i)]) *
                      0.20)
          << r.scheme << " column " << i;
  }
}

TEST_F(Table2Fixture, HeadlineSpeedupsNearPaper) {
  const Speedups s = headline_speedups(rows());
  EXPECT_NEAR(s.lac128, 7.66, 7.66 * 0.2);
  EXPECT_NEAR(s.lac192, 14.42, 14.42 * 0.2);
  EXPECT_NEAR(s.lac256, 13.36, 13.36 * 0.2);
  // ordering: 192 fastest relative gain, 128 smallest
  EXPECT_GT(s.lac192, s.lac256);
  EXPECT_GT(s.lac256, s.lac128);
}

TEST_F(Table2Fixture, OptimizedMultiplicationMassivelyFaster) {
  EXPECT_GT(row("LAC-128 ref.").mult / row("LAC-128 opt.").mult, 100u);
  EXPECT_GT(row("LAC-192 ref.").mult / row("LAC-192 opt.").mult, 30u);
}

TEST_F(Table2Fixture, OptMultiplicationCheaperThanGenA) {
  // The paper's argument for not enlarging MUL TER: the accelerated
  // multiplication is already cheaper than polynomial generation.
  EXPECT_LT(row("LAC-128 opt.").mult, row("LAC-128 opt.").gen_a);
  EXPECT_LT(row("LAC-192 opt.").mult, row("LAC-192 opt.").gen_a);
  EXPECT_LT(row("LAC-256 opt.").mult, row("LAC-256 opt.").gen_a);
}

TEST_F(Table2Fixture, BchDecodeImprovementFactorsNearPaper) {
  // Paper: 3.21x for the 128/256 categories, 4.22x for 192
  // (const-BCH software vs accelerated Chien).
  const double f128 =
      static_cast<double>(row("LAC-128 const. BCH").bch_dec) /
      static_cast<double>(row("LAC-128 opt.").bch_dec);
  const double f192 =
      static_cast<double>(row("LAC-192 const. BCH").bch_dec) /
      static_cast<double>(row("LAC-192 opt.").bch_dec);
  EXPECT_NEAR(f128, 3.21, 3.21 * 0.25);
  EXPECT_NEAR(f192, 4.22, 4.22 * 0.35);
}

TEST_F(Table2Fixture, ConstBchSlowsOnlyDecapsulation) {
  const Table2Row& ref = row("LAC-128 ref.");
  const Table2Row& ct = row("LAC-128 const. BCH");
  EXPECT_NEAR(static_cast<double>(ct.keygen), static_cast<double>(ref.keygen),
              static_cast<double>(ref.keygen) * 0.01);
  EXPECT_NEAR(static_cast<double>(ct.encaps), static_cast<double>(ref.encaps),
              static_cast<double>(ref.encaps) * 0.01);
  EXPECT_GT(ct.decaps, ref.decaps + 200000);  // + (514k - 161k) BCH delta
}

// ---- Table III -------------------------------------------------------------

TEST(Table3, RowsWithinFivePercentOfPaper) {
  for (const auto& r : table3()) {
    if (!r.paper || r.external) continue;
    EXPECT_NEAR(static_cast<double>(r.area.luts),
                static_cast<double>((*r.paper)[0]),
                std::max(5.0, static_cast<double>((*r.paper)[0]) * 0.05))
        << r.area.name;
    EXPECT_NEAR(static_cast<double>(r.area.registers),
                static_cast<double>((*r.paper)[1]),
                std::max(5.0, static_cast<double>((*r.paper)[1]) * 0.05))
        << r.area.name;
    EXPECT_EQ(r.area.brams, (*r.paper)[2]) << r.area.name;
    EXPECT_EQ(r.area.dsps, (*r.paper)[3]) << r.area.name;
  }
}

TEST(Table3, TernaryMultiplierDominatesAcceleratorLuts) {
  const auto rows = table3();
  u64 mul_ter = 0, others = 0;
  for (const auto& r : rows) {
    if (r.external || r.area.name == "RISC-V core total") continue;
    if (r.area.name == "Ternary Multiplier")
      mul_ter = r.area.luts;
    else
      others += r.area.luts;
  }
  EXPECT_GT(mul_ter, 10 * others);
}

TEST(Printers, ProduceNonEmptyOutput) {
  std::ostringstream os;
  print_table1(os, table1());
  print_table3(os, table3());
  EXPECT_NE(os.str().find("Table I"), std::string::npos);
  EXPECT_NE(os.str().find("Ternary Multiplier"), std::string::npos);
}

}  // namespace
}  // namespace lacrv::perf
