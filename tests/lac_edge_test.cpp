// Edge cases and failure injection for the scheme layer: malformed wire
// data, codec boundaries, D2 combining, robustness of decapsulation under
// targeted corruption.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "lac/kem.h"
#include "lac/sampler.h"

namespace lacrv::lac {
namespace {

hash::Seed seed_of(u64 x) {
  hash::Seed s{};
  for (int i = 0; i < 8; ++i) s[i] = static_cast<u8>(x >> (8 * i));
  return s;
}

TEST(WireFormat, RejectsWrongSizes) {
  const Params& params = Params::lac128();
  EXPECT_ANY_THROW(deserialize_pk(params, Bytes(10)));
  EXPECT_ANY_THROW(deserialize_pk(params, Bytes(params.pk_bytes() + 1)));
  EXPECT_ANY_THROW(deserialize_ct(params, Bytes(params.ct_bytes() - 1)));
  EXPECT_ANY_THROW(deserialize_ct(Params::lac256(),
                                  Bytes(Params::lac128().ct_bytes())));
}

TEST(WireFormat, CrossLevelSizesAreDistinct) {
  std::set<std::size_t> ct_sizes, pk_sizes;
  for (const Params* p : Params::all()) {
    ct_sizes.insert(p->ct_bytes());
    pk_sizes.insert(p->pk_bytes());
  }
  EXPECT_EQ(ct_sizes.size(), 3u);
  // LAC-192 and LAC-256 share n = 1024, hence the same public-key size.
  EXPECT_EQ(pk_sizes.size(), 2u);
}

TEST(Codec, CompressIsMonotoneAndOnto) {
  // compress4 must be a monotone step function covering all 16 buckets
  // (with the wrap value 251 -> 0 at the top).
  int last = 0;
  std::set<u8> seen;
  for (int v = 0; v < poly::kQ; ++v) {
    const u8 c = compress4(static_cast<u8>(v));
    seen.insert(c);
    if (v < 244) {  // before the wrap-around region
      EXPECT_GE(c, last) << "v=" << v;
      last = c;
    }
  }
  EXPECT_EQ(seen.size(), 16u);
}

TEST(Codec, DecompressInverseWithinHalfStep) {
  for (u8 c = 0; c < 16; ++c) {
    const u8 v = decompress4(c);
    EXPECT_LT(v, poly::kQ);
    EXPECT_EQ(compress4(v), c);  // fixed point of the round trip
  }
}

TEST(Codec, D2CombiningOutvotesOneBadCoefficient) {
  // With D2, one of the two copies being badly corrupted must not flip
  // the decoded bit if the other copy is clean.
  const Params& params = Params::lac256();
  Xoshiro256 rng(1);
  bch::Message msg;
  rng.fill(msg.data(), msg.size());
  poly::Coeffs w = encode_payload(params, msg);
  // corrupt first-copy coefficients 0..9 all the way to the opposite symbol
  for (std::size_t i = 0; i < 10; ++i)
    w[i] = w[i] == 0 ? kHalfQ : 0;
  // the duplicates w[L + i] are intact -> distances tie; corrupt slightly
  // less than the tie-break so the clean copy wins
  for (std::size_t i = 0; i < 10; ++i)
    w[i] = poly::add_mod(w[i], poly::kQ - 20);  // pull back towards truth
  const auto decoded = decode_payload(params, Backend::reference(), w);
  EXPECT_TRUE(decoded.ok);
  EXPECT_EQ(decoded.message, msg);
}

TEST(Codec, WithoutD2SameCorruptionBreaksBitsButBchRecovers) {
  const Params& params = Params::lac128();
  Xoshiro256 rng(2);
  bch::Message msg;
  rng.fill(msg.data(), msg.size());
  poly::Coeffs w = encode_payload(params, msg);
  // flip 10 coefficients to the opposite symbol (payload area only)
  for (std::size_t i = 0; i < 10; ++i)
    w[params.code->parity_bits() + 3 * i] ^= 0;  // index into message bits
  for (std::size_t i = 0; i < 10; ++i) {
    const std::size_t idx = params.code->parity_bits() + 3 * i;
    w[idx] = w[idx] == 0 ? kHalfQ : 0;
  }
  const auto decoded = decode_payload(params, Backend::reference(), w);
  EXPECT_TRUE(decoded.ok);  // 10 < t = 16
  EXPECT_EQ(decoded.message, msg);
}

TEST(Decaps, RobustAgainstEveryRegionOfCorruption) {
  const Params& params = Params::lac128();
  const Backend backend = Backend::reference();
  const KemKeyPair keys = kem_keygen(params, backend, seed_of(1));
  const EncapsResult enc = encapsulate(params, backend, keys.pk, seed_of(2));
  const Bytes good = serialize(params, enc.ct);

  // corrupt one byte in u, in v, first byte, last byte — all must yield
  // implicit rejection, never a crash or the real key.
  for (std::size_t pos : {std::size_t{0}, params.n / 2, params.n + 1,
                          good.size() - 1}) {
    Bytes bad = good;
    bad[pos] ^= 0xFF;
    const Ciphertext ct = deserialize_ct(params, bad);
    const SharedKey key = decapsulate(params, backend, keys, ct);
    EXPECT_NE(key, enc.key) << "corrupt byte " << pos;
  }
}

TEST(Decaps, VNibbleTamperingDetectedDespiteBchCorrection) {
  // Flipping a couple of v nibbles still *decrypts* to the right message
  // (BCH fixes it) — but the FO re-encryption check must still reject,
  // because the ciphertext no longer matches the re-encryption.
  const Params& params = Params::lac128();
  const Backend backend = Backend::reference_const_bch();
  const KemKeyPair keys = kem_keygen(params, backend, seed_of(3));
  const EncapsResult enc = encapsulate(params, backend, keys.pk, seed_of(4));

  Ciphertext tampered = enc.ct;
  tampered.v[5] ^= 0x8;
  const DecryptResult dec = decrypt(params, backend, keys.sk, tampered);
  EXPECT_TRUE(dec.ok);  // BCH absorbed the flip at the PKE level
  const SharedKey key = decapsulate(params, backend, keys, tampered);
  EXPECT_NE(key, enc.key);  // but CCA decapsulation rejects
}

TEST(Sampler, RejectsInvalidWeights) {
  EXPECT_ANY_THROW(sample_fixed_weight_raw(seed_of(1), 16, 17));  // > n
  EXPECT_ANY_THROW(sample_fixed_weight_raw(seed_of(1), 16, 3));   // odd
}

TEST(Sampler, FullWeightAndZeroWeight) {
  const poly::Ternary full = sample_fixed_weight_raw(seed_of(2), 16, 16);
  EXPECT_EQ(poly::weight(full), 16u);
  const poly::Ternary empty = sample_fixed_weight_raw(seed_of(2), 16, 0);
  EXPECT_EQ(poly::weight(empty), 0u);
}

TEST(Keys, DistinctMastersGiveDistinctKeys) {
  const Params& params = Params::lac128();
  const Backend backend = Backend::reference();
  const KeyPair a = keygen(params, backend, seed_of(10));
  const KeyPair b = keygen(params, backend, seed_of(11));
  EXPECT_NE(a.pk.b, b.pk.b);
  EXPECT_NE(a.sk.s, b.sk.s);
}

TEST(Pke, SameMessageDifferentCoinsDifferentCiphertexts) {
  const Params& params = Params::lac128();
  const Backend backend = Backend::reference();
  const KeyPair kp = keygen(params, backend, seed_of(20));
  bch::Message msg{};
  msg[0] = 1;
  const Ciphertext a = encrypt(params, backend, kp.pk, msg, seed_of(21));
  const Ciphertext b = encrypt(params, backend, kp.pk, msg, seed_of(22));
  EXPECT_NE(a.u, b.u);
  EXPECT_NE(a.v, b.v);
  EXPECT_EQ(decrypt(params, backend, kp.sk, a).message, msg);
  EXPECT_EQ(decrypt(params, backend, kp.sk, b).message, msg);
}

}  // namespace
}  // namespace lacrv::lac
