#include <gtest/gtest.h>

#include "common/rng.h"
#include "riscv/compressed.h"
#include "common/check.h"
#include "riscv/assembler.h"
#include "riscv/cpu.h"
#include "riscv/encoding.h"

namespace lacrv::rv {
namespace {

/// Load raw 16-bit parcels at address 0 and run to ebreak.
Cpu run_compressed(const std::vector<u16>& parcels) {
  Cpu cpu;
  Bytes bytes;
  for (u16 p : parcels) {
    bytes.push_back(static_cast<u8>(p));
    bytes.push_back(static_cast<u8>(p >> 8));
  }
  cpu.load_bytes(0, bytes);
  cpu.run(100000);
  EXPECT_TRUE(cpu.halted());
  return cpu;
}

// ---- known encodings from the RISC-V spec / binutils ----------------------

TEST(Compressed, WellKnownEncodings) {
  EXPECT_EQ(c_nop(), 0x0001);
  EXPECT_EQ(c_ebreak(), 0x9002);
  EXPECT_EQ(c_jr(1), 0x8082);       // "ret"
  EXPECT_EQ(c_mv(10, 11), 0x852E);  // mv a0, a1
  EXPECT_EQ(c_add(10, 11), 0x952E); // add a0, a0, a1
  EXPECT_EQ(c_li(10, 0), 0x4501);   // li a0, 0
  EXPECT_EQ(c_addi(10, 1), 0x0505); // addi a0, a0, 1
}

TEST(Compressed, ExpansionOfWellKnownEncodings) {
  EXPECT_EQ(expand_compressed(0x0001), encode_i(kOpImm, 0, 0, 0, 0));  // nop
  EXPECT_EQ(expand_compressed(0x9002), 0x00100073u);                   // ebreak
  EXPECT_EQ(expand_compressed(0x8082), encode_i(kOpJalr, 0, 0, 1, 0)); // ret
  EXPECT_EQ(expand_compressed(0x852E), encode_r(kOpReg, 10, 0, 0, 11, 0));
  EXPECT_EQ(expand_compressed(0x4501), encode_i(kOpImm, 10, 0, 0, 0));
}

TEST(Compressed, IllegalEncodingsRejected) {
  EXPECT_ANY_THROW(expand_compressed(0x0000));  // defined illegal
  // c.addi4spn with zero immediate is reserved (funct3=000, imm=0, rd'=x9)
  EXPECT_ANY_THROW(expand_compressed(static_cast<u16>(1 << 2)));
}

// ---- semantic equivalence: run compressed vs expanded 32-bit ---------------

TEST(Compressed, ArithmeticSequence) {
  const Cpu cpu = run_compressed({
      c_li(10, 21),      // a0 = 21
      c_addi(10, 10),    // a0 = 31
      c_mv(11, 10),      // a1 = 31
      c_add(11, 10),     // a1 = 62
      c_ebreak(),
  });
  EXPECT_EQ(cpu.reg(10), 31u);
  EXPECT_EQ(cpu.reg(11), 62u);
}

TEST(Compressed, PrimeRegisterAluOps) {
  const Cpu cpu = run_compressed({
      c_li(8, 0b1100),   // s0
      c_li(9, 0b1010),   // s1
      c_mv(12, 8),       // a2 = s0
      c_and(12, 9),      // a2 = 8
      c_mv(13, 8),
      c_or(13, 9),       // a3 = 14
      c_mv(14, 8),
      c_xor(14, 9),      // a4 = 6
      c_mv(15, 8),
      c_sub(15, 9),      // a5 = 2
      c_ebreak(),
  });
  EXPECT_EQ(cpu.reg(12), 8u);
  EXPECT_EQ(cpu.reg(13), 14u);
  EXPECT_EQ(cpu.reg(14), 6u);
  EXPECT_EQ(cpu.reg(15), 2u);
}

TEST(Compressed, ShiftsAndAndi) {
  const Cpu cpu = run_compressed({
      c_li(8, -2),        // s0 = 0xFFFFFFFE
      c_srai(8, 1),       // s0 = -1
      c_li(9, 16),
      c_slli(9, 3),       // s1 = 128
      c_srli(9, 2),       // wait: c_srli needs prime reg (9 is prime)
      c_andi(9, 0x1F),    // s1 = 32 & 31 = 0... see expectations below
      c_ebreak(),
  });
  EXPECT_EQ(cpu.reg(8), 0xFFFFFFFFu);
  // 16 << 3 = 128; 128 >> 2 = 32; 32 & 31 = 0
  EXPECT_EQ(cpu.reg(9), 0u);
}

TEST(Compressed, StackLoadsAndStores) {
  const Cpu cpu = run_compressed({
      c_addi(2, 16),        // sp = 16 (was 0)
      c_li(10, 17),
      c_swsp(10, 4),        // [sp+4] = 17
      c_lwsp(11, 4),        // a1 = 17
      c_addi4spn(8, 4),     // s0 = sp + 4 = 20
      c_li(12, 5),
      c_sw(12, 8, 8),       // [s0 + 8] = [28] = 5
      c_lw(13, 8, 8),       // a3 = 5
      c_ebreak(),
  });
  EXPECT_EQ(cpu.reg(11), 17u);
  EXPECT_EQ(cpu.reg(8), 20u);
  EXPECT_EQ(cpu.reg(13), 5u);
  EXPECT_EQ(cpu.read_word(20 + 8), 5u);
}

TEST(Compressed, BranchesAndJumps) {
  // countdown loop with c.bnez and a c.j skip
  const Cpu cpu = run_compressed({
      c_li(8, 5),        // s0 = 5
      c_li(10, 0),       // a0 = 0
      // loop:
      c_addi(10, 1),     // a0++
      c_addi(8, -1),     // s0--
      c_bnez(8, -4),     // back to loop
      c_j(4),            // skip the poison below
      c_li(10, -1),      // (skipped)
      c_ebreak(),
  });
  EXPECT_EQ(cpu.reg(10), 5u);
}

TEST(Compressed, BeqzTakenAndNotTaken) {
  const Cpu cpu = run_compressed({
      c_li(8, 0),
      c_beqz(8, 4),   // taken: skip next
      c_li(10, 31),   // skipped
      c_li(9, 1),
      c_beqz(9, 4),   // not taken
      c_li(11, 31),   // executed
      c_ebreak(),
  });
  EXPECT_EQ(cpu.reg(10), 0u);
  EXPECT_EQ(cpu.reg(11), 31u);
}

TEST(Compressed, JalLinksPcPlus2) {
  const Cpu cpu = run_compressed({
      c_jal(6),        // at pc 0: jump to 6, ra = 2
      c_ebreak(),      // at pc 2 (return target)
      c_nop(),         // at pc 4
      c_li(10, 7),     // at pc 6
      c_jr(1),         // back to ra = 2
  });
  EXPECT_EQ(cpu.reg(10), 7u);
  EXPECT_EQ(cpu.reg(1), 2u);
}

TEST(Compressed, JalrLinksAndJumps) {
  const Cpu cpu = run_compressed({
      c_li(8, 8),
      c_jalr(8),       // at pc 2: jump to 8, ra = 4
      c_ebreak(),      // at pc 4
      c_nop(),
      c_li(10, 3),     // at pc 8
      c_jr(1),
  });
  EXPECT_EQ(cpu.reg(10), 3u);
  EXPECT_EQ(cpu.reg(1), 4u);
}

TEST(Compressed, LuiAndAddi16Sp) {
  const Cpu cpu = run_compressed({
      c_lui(10, 5),        // a0 = 5 << 12
      c_lui(11, -1),       // a1 = 0xFFFFF000
      c_addi(2, 16),       // sp = 16
      c_addi16sp(-16),     // sp = 0
      c_ebreak(),
  });
  EXPECT_EQ(cpu.reg(10), 5u << 12);
  EXPECT_EQ(cpu.reg(11), 0xFFFFF000u);
  EXPECT_EQ(cpu.reg(2), 0u);
}

TEST(Compressed, MixedWith32BitCode) {
  // 32-bit li (lui+addi) followed by compressed ops — parcel alignment
  // and mixed fetch must work.
  Cpu cpu;
  Bytes bytes;
  const u32 lui = encode_u(kOpLui, 10, 0x12345);
  const u32 addi = encode_i(kOpImm, 10, 0, 10, 0x678);
  for (u32 w : {lui, addi}) {
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<u8>(w >> (8 * i)));
  }
  for (u16 p : {c_mv(11, 10), c_addi(11, 1), c_ebreak()}) {
    bytes.push_back(static_cast<u8>(p));
    bytes.push_back(static_cast<u8>(p >> 8));
  }
  cpu.load_bytes(0, bytes);
  cpu.run(100);
  EXPECT_TRUE(cpu.halted());
  EXPECT_EQ(cpu.reg(10), 0x12345678u);
  EXPECT_EQ(cpu.reg(11), 0x12345679u);
}

TEST(Compressed, RandomizedAluEquivalence) {
  // Property: for random operand values, each compressed ALU op must give
  // exactly the same result as its expanded 32-bit twin run on a second CPU.
  Xoshiro256 rng(404);
  for (int trial = 0; trial < 200; ++trial) {
    const u32 x = rng.next_u32();
    const u32 y = rng.next_u32();
    const int op = static_cast<int>(rng.next_below(4));
    const u16 comp = op == 0   ? c_sub(8, 9)
                     : op == 1 ? c_xor(8, 9)
                     : op == 2 ? c_or(8, 9)
                               : c_and(8, 9);

    Cpu a;
    a.set_reg(8, x);
    a.set_reg(9, y);
    Bytes bytes = {static_cast<u8>(comp), static_cast<u8>(comp >> 8),
                   static_cast<u8>(c_ebreak()),
                   static_cast<u8>(c_ebreak() >> 8)};
    a.load_bytes(0, bytes);
    a.run(10);

    Cpu b;
    b.set_reg(8, x);
    b.set_reg(9, y);
    const u32 expanded = expand_compressed(comp);
    b.load_words(0, std::array<u32, 2>{expanded, 0x00100073});
    b.run(10);

    ASSERT_EQ(a.reg(8), b.reg(8)) << "trial " << trial << " op " << op;
  }
}

TEST(Compressed, CodeSizeHalvesInstructionBytes) {
  // The point of the C extension: the countdown loop in compressed form
  // is half the code size of the 32-bit form with identical semantics.
  const std::vector<u16> compressed = {c_li(8, 30), c_addi(8, -1),
                                       c_bnez(8, -2), c_ebreak()};
  const Cpu cpu = run_compressed(compressed);
  EXPECT_EQ(cpu.reg(8), 0u);
  EXPECT_EQ(compressed.size() * 2, 8u);  // vs 16 bytes in RV32I
}


// ---- assembler-level c.* support -------------------------------------------


TEST(Compressed, ExhaustiveDecoderSweepProducesLegalExpansions) {
  // Every 16-bit parcel either throws (reserved/unsupported) or expands
  // to a well-formed 32-bit instruction whose opcode is one we execute.
  // This sweep pins the decoder against accidental garbage expansions.
  int expanded = 0, rejected = 0;
  for (u32 raw = 0; raw < 0x10000; ++raw) {
    const u16 c = static_cast<u16>(raw);
    if (!is_compressed(c)) continue;  // quadrant 3 = 32-bit space
    try {
      const u32 insn = expand_compressed(c);
      ++expanded;
      const u32 op = get_opcode(insn);
      ASSERT_TRUE(op == kOpImm || op == kOpLui || op == kOpJal ||
                  op == kOpJalr || op == kOpBranch || op == kOpLoad ||
                  op == kOpStore || op == kOpReg || insn == 0x00100073)
          << "parcel 0x" << std::hex << raw << " -> opcode " << op;
      // expansions must always be uncompressed encodings
      ASSERT_EQ(insn & 3u, 3u) << "parcel 0x" << std::hex << raw;
    } catch (const CheckError&) {
      ++rejected;
    }
  }
  // the supported quadrants cover most of the space
  EXPECT_GT(expanded, 28000);
  EXPECT_GT(rejected, 1000);  // FP forms, reserved encodings
}

TEST(Compressed, EncodersRoundTripThroughDecoder) {
  // Encode -> expand -> compare against the directly-encoded 32-bit twin
  // for a representative operand grid of each mnemonic.
  for (int rd : {8, 9, 15}) {
    for (i32 imm : {-32, -1, 0, 5, 31}) {
      EXPECT_EQ(expand_compressed(c_li(rd, imm)),
                encode_i(kOpImm, static_cast<u32>(rd), 0, 0, imm));
      if (imm != 0) {
        EXPECT_EQ(expand_compressed(c_addi(rd, imm)),
                  encode_i(kOpImm, static_cast<u32>(rd), 0,
                           static_cast<u32>(rd), imm));
      }
    }
    for (u32 sh : {1u, 7u, 31u}) {
      EXPECT_EQ(expand_compressed(c_srli(rd, sh)),
                encode_i(kOpImm, static_cast<u32>(rd), 5,
                         static_cast<u32>(rd), static_cast<i32>(sh)));
      EXPECT_EQ(expand_compressed(c_srai(rd, sh)),
                encode_i(kOpImm, static_cast<u32>(rd), 5,
                         static_cast<u32>(rd), static_cast<i32>(sh | 0x400)));
    }
    for (u32 off : {0u, 4u, 64u, 124u}) {
      EXPECT_EQ(expand_compressed(c_lw(rd, 8, off)),
                encode_i(kOpLoad, static_cast<u32>(rd), 2, 8,
                         static_cast<i32>(off)));
      EXPECT_EQ(expand_compressed(c_sw(rd, 8, off)),
                encode_s(kOpStore, 2, 8, static_cast<u32>(rd),
                         static_cast<i32>(off)));
    }
  }
  for (i32 off : {-256, -2, 0, 2, 254}) {
    EXPECT_EQ(imm_b(expand_compressed(c_beqz(8, off))), off);
    EXPECT_EQ(imm_b(expand_compressed(c_bnez(9, off))), off);
  }
  for (i32 off : {-2048, -2, 0, 2, 2046}) {
    EXPECT_EQ(imm_j(expand_compressed(c_j(off))), off);
    EXPECT_EQ(imm_j(expand_compressed(c_jal(off))), off);
  }
}

TEST(CompressedAsm, MixedSourceWithLabels) {
  const Program prog = assemble(R"(
      c.li   s0, 6
      li     a0, 0          # 32-bit pseudo (8 bytes)
    loop:
      c.addi a0, 2
      c.addi s0, -1
      c.bnez s0, loop
      c.j    end
      c.li   a0, -1         # skipped
    end:
      c.ebreak
  )");
  Cpu cpu;
  cpu.load_bytes(0, prog.image);
  cpu.run(1000);
  EXPECT_TRUE(cpu.halted());
  EXPECT_EQ(cpu.reg(10), 12u);
}

TEST(CompressedAsm, ImageIsDenserThan32BitEquivalent) {
  const Program compressed = assemble(R"(
    c.li  a0, 5
    c.mv  a1, a0
    c.add a1, a0
    c.ebreak
  )");
  EXPECT_EQ(compressed.image.size(), 8u);  // 4 x 2 bytes
  const Program wide = assemble(R"(
    addi a0, zero, 5
    mv   a1, a0
    add  a1, a1, a0
    ebreak
  )");
  EXPECT_EQ(wide.image.size(), 16u);
}

TEST(CompressedAsm, MemoryFormsAndStackForms) {
  const Program prog = assemble(R"(
      c.addi  sp, 16
      c.li    a0, 9
      c.swsp  a0, 8
      c.lwsp  a1, 8
      c.addi4spn s0, 8
      c.sw    a1, 4(s0)
      c.lw    a2, 4(s0)
      c.ebreak
  )");
  Cpu cpu;
  cpu.load_bytes(0, prog.image);
  cpu.run(100);
  EXPECT_TRUE(cpu.halted());
  EXPECT_EQ(cpu.reg(11), 9u);
  EXPECT_EQ(cpu.reg(12), 9u);
}

TEST(CompressedAsm, CallAndReturnViaJalJr) {
  const Program prog = assemble(R"(
      c.li   a0, 4
      c.jal  double
      c.jal  double
      c.ebreak
    double:
      c.add  a0, a0
      c.jr   ra
  )");
  Cpu cpu;
  cpu.load_bytes(0, prog.image);
  cpu.run(100);
  EXPECT_TRUE(cpu.halted());
  EXPECT_EQ(cpu.reg(10), 16u);
}

TEST(CompressedAsm, DiagnosesBadOperands) {
  EXPECT_ANY_THROW(assemble("c.li a0, 32"));       // imm out of range
  EXPECT_ANY_THROW(assemble("c.sub t0, a1"));      // t0 is not x8..x15
  EXPECT_ANY_THROW(assemble("c.lui sp, 1"));       // rd=2 reserved for sp form
  EXPECT_ANY_THROW(assemble("c.bogus a0, a1"));
}

TEST(Disassembly, ParcelAwareHelper) {
  EXPECT_EQ(disassemble_parcel(c_mv(10, 11)), "c: add a0, zero, a1");
  EXPECT_EQ(disassemble_parcel(0x0000), "<illegal>");
  EXPECT_EQ(disassemble_parcel(encode_i(kOpImm, 10, 0, 0, 42)),
            "addi a0, zero, 42");
}

}  // namespace
}  // namespace lacrv::rv
