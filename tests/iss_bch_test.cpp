#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "perf/iss_bch.h"

namespace lacrv::perf {
namespace {

bch::BitVec noisy_word(const bch::CodeSpec& spec, int errors, u64 seed,
                       bch::Message* msg_out) {
  Xoshiro256 rng(seed);
  bch::Message msg;
  rng.fill(msg.data(), msg.size());
  if (msg_out) *msg_out = msg;
  bch::BitVec cw = bch::encode(spec, msg);
  std::set<int> positions;
  while (static_cast<int>(positions.size()) < errors)
    positions.insert(static_cast<int>(rng.next_below(spec.length())));
  for (int p : positions) cw[static_cast<std::size_t>(p)] ^= 1;
  return cw;
}

class FirmwareSweep
    : public ::testing::TestWithParam<std::tuple<const bch::CodeSpec*, int>> {
};

TEST_P(FirmwareSweep, CorrectsLikeTheLibraryDecoder) {
  const auto [spec, errors] = GetParam();
  bch::Message msg;
  const bch::BitVec word = noisy_word(*spec, errors, 40 + errors, &msg);

  const IssBchResult fw = iss_bch_decode(*spec, word);

  // syndromes must match the library stage exactly
  EXPECT_EQ(fw.syndromes,
            bch::syndromes(*spec, word, bch::Flavor::kConstantTime));

  // the corrected word must carry the original message
  EXPECT_EQ(bch::extract_message(*spec, fw.corrected), msg);

  // and the firmware's corrections must equal the library decoder's
  const bch::DecodeResult lib =
      bch::decode(*spec, word, bch::Flavor::kConstantTime);
  EXPECT_TRUE(lib.ok);
  EXPECT_EQ(bch::extract_message(*spec, fw.corrected), lib.message);
}

INSTANTIATE_TEST_SUITE_P(
    CodesAndErrors, FirmwareSweep,
    ::testing::Combine(::testing::Values(&bch::CodeSpec::bch_511_367_16(),
                                         &bch::CodeSpec::bch_511_439_8()),
                       ::testing::Values(0, 1, 3, 8)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)->t == 16 ? "t16" : "t8") +
             "_e" + std::to_string(std::get<1>(info.param));
    });

TEST(Firmware, SixteenErrorsAtFullCapability) {
  const bch::CodeSpec& spec = bch::CodeSpec::bch_511_367_16();
  bch::Message msg;
  const bch::BitVec word = noisy_word(spec, 16, 99, &msg);
  const IssBchResult fw = iss_bch_decode(spec, word);
  EXPECT_EQ(bch::extract_message(spec, fw.corrected), msg);
}

TEST(Firmware, CycleCountIsAnHonestFirmwareMeasurement) {
  // The software-GF-multiplication syndromes dominate; this firmware is
  // slower than the table-driven implementation the cost model reflects.
  // Document the regime rather than a calibrated number.
  const bch::CodeSpec& spec = bch::CodeSpec::bch_511_367_16();
  const bch::BitVec word = noisy_word(spec, 4, 7, nullptr);
  const IssBchResult fw = iss_bch_decode(spec, word);
  EXPECT_GT(fw.cycles, 500'000u);   // 12,800 software GF mults
  EXPECT_LT(fw.cycles, 5'000'000u);
  EXPECT_GT(fw.instructions, 100'000u);
}

}  // namespace
}  // namespace lacrv::perf
