#include <gtest/gtest.h>

#include "common/rng.h"
#include "lac/kem.h"
#include "lac/sampler.h"

namespace lacrv::lac {
namespace {

hash::Seed seed_of(u64 x) {
  hash::Seed s{};
  for (int i = 0; i < 8; ++i) s[i] = static_cast<u8>(x >> (8 * i));
  return s;
}

bch::Message random_msg(Xoshiro256& rng) {
  bch::Message m;
  rng.fill(m.data(), m.size());
  return m;
}

TEST(Params, WireSizesMatchPaper) {
  // Sec. VI: LAC-256 has ||pk|| ~ 1054, ||sk|| = 1024, ||ct|| = 1424.
  EXPECT_EQ(Params::lac256().pk_bytes(), 1056u);  // 32-byte seed + 1024
  EXPECT_EQ(Params::lac256().sk_bytes(), 1024u);
  EXPECT_EQ(Params::lac256().ct_bytes(), 1424u);
  EXPECT_EQ(Params::lac128().pk_bytes(), 544u);
  EXPECT_EQ(Params::lac128().ct_bytes(), 712u);
  EXPECT_EQ(Params::lac192().ct_bytes(), 1188u);
}

TEST(Params, StructuralConsistency) {
  for (const Params* p : Params::all()) {
    EXPECT_EQ(p->code->msg_bits, 256);
    EXPECT_TRUE(p->n == 512 || p->n == 1024);
    EXPECT_LE(p->weight, p->n);
    EXPECT_EQ(p->v_len(), p->cw_bits() * (p->d2 ? 2u : 1u));
  }
  EXPECT_EQ(Params::lac192().code->t, 8);
  EXPECT_EQ(Params::lac256().code->t, 16);
}

TEST(GenA, DeterministicUniformInRange) {
  const auto a1 = gen_a(seed_of(1), Params::lac128());
  const auto a2 = gen_a(seed_of(1), Params::lac128());
  const auto a3 = gen_a(seed_of(2), Params::lac128());
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, a3);
  EXPECT_EQ(a1.size(), 512u);
  for (u8 c : a1) EXPECT_LT(c, poly::kQ);
  // crude uniformity: mean of Z_251 uniform is 125
  double mean = 0;
  for (u8 c : a1) mean += c;
  mean /= static_cast<double>(a1.size());
  EXPECT_NEAR(mean, 125.0, 12.0);
}

TEST(GenA, HardwareHashSameValuesFewerCycles) {
  CycleLedger sw, hw;
  const auto a1 = gen_a(seed_of(3), Params::lac128(), HashImpl::kSoftware, &sw);
  const auto a2 =
      gen_a(seed_of(3), Params::lac128(), HashImpl::kAccelerated, &hw);
  EXPECT_EQ(a1, a2);
  EXPECT_LT(hw.total(), sw.total());
  // Table II: GenA gains only a few thousand cycles from the accelerator.
  EXPECT_LT(sw.total() - hw.total(), 20000u);
}

TEST(Sampler, ExactWeightAndBalance) {
  for (const Params* p : Params::all()) {
    const poly::Ternary t = sample_fixed_weight(seed_of(7), *p);
    ASSERT_EQ(t.size(), p->n);
    std::size_t plus = 0, minus = 0;
    for (i8 v : t) {
      plus += (v == 1);
      minus += (v == -1);
    }
    EXPECT_EQ(plus, p->weight / 2) << p->name;
    EXPECT_EQ(minus, p->weight / 2) << p->name;
  }
}

TEST(Sampler, DeterministicPerSeedDistinctAcrossSeeds) {
  const Params& p = Params::lac128();
  EXPECT_EQ(sample_fixed_weight(seed_of(1), p),
            sample_fixed_weight(seed_of(1), p));
  EXPECT_NE(sample_fixed_weight(seed_of(1), p),
            sample_fixed_weight(seed_of(2), p));
}

TEST(Sampler, PositionsLookUniform) {
  // Aggregate over many seeds: every position should be hit sometimes.
  const std::size_t n = 128, w = 32;
  std::vector<int> hits(n, 0);
  for (u64 s = 0; s < 200; ++s) {
    const poly::Ternary t = sample_fixed_weight_raw(seed_of(s), n, w);
    for (std::size_t i = 0; i < n; ++i) hits[i] += (t[i] != 0);
  }
  const auto [lo, hi] = std::minmax_element(hits.begin(), hits.end());
  EXPECT_GT(*lo, 10);   // expected 50
  EXPECT_LT(*hi, 120);
}

TEST(Codec, Compress4RoundTripErrorBounded) {
  for (int v = 0; v < poly::kQ; ++v) {
    const u8 c = compress4(static_cast<u8>(v));
    ASSERT_LT(c, 16);
    const u8 back = decompress4(c);
    EXPECT_LE(ring_distance(static_cast<u8>(v), back), 8) << "v=" << v;
  }
}

TEST(Codec, RingDistanceSymmetricBounded) {
  for (int a = 0; a < poly::kQ; a += 7)
    for (int b = 0; b < poly::kQ; b += 11) {
      const u16 d = ring_distance(static_cast<u8>(a), static_cast<u8>(b));
      EXPECT_EQ(d, ring_distance(static_cast<u8>(b), static_cast<u8>(a)));
      EXPECT_LE(d, poly::kQ / 2);
    }
  EXPECT_EQ(ring_distance(0, 250), 1);  // wraparound
  EXPECT_EQ(ring_distance(0, 125), 125);
}

TEST(Codec, PayloadRoundTripNoiseless) {
  Xoshiro256 rng(5);
  for (const Params* p : Params::all()) {
    const bch::Message msg = random_msg(rng);
    const poly::Coeffs payload = encode_payload(*p, msg);
    ASSERT_EQ(payload.size(), p->v_len());
    const auto decoded = decode_payload(*p, Backend::reference(), payload);
    EXPECT_TRUE(decoded.ok) << p->name;
    EXPECT_EQ(decoded.message, msg) << p->name;
  }
}

class SchemeRoundTrip
    : public ::testing::TestWithParam<std::tuple<SecurityLevel, int>> {
 protected:
  static Backend backend_for(int kind) {
    switch (kind) {
      case 0:
        return Backend::reference();
      case 1:
        return Backend::reference_const_bch();
      default:
        return Backend::optimized();
    }
  }
};

TEST_P(SchemeRoundTrip, PkeEncryptDecrypt) {
  const auto [level, kind] = GetParam();
  const Params& params = Params::get(level);
  const Backend backend = backend_for(kind);
  Xoshiro256 rng(42 + kind);
  const KeyPair kp = keygen(params, backend, seed_of(100));
  for (int trial = 0; trial < 3; ++trial) {
    const bch::Message msg = random_msg(rng);
    const Ciphertext ct =
        encrypt(params, backend, kp.pk, msg, seed_of(200 + trial));
    const DecryptResult dec = decrypt(params, backend, kp.sk, ct);
    ASSERT_TRUE(dec.ok);
    ASSERT_EQ(dec.message, msg);
  }
}

TEST_P(SchemeRoundTrip, KemSharedSecretAgreement) {
  const auto [level, kind] = GetParam();
  const Params& params = Params::get(level);
  const Backend backend = backend_for(kind);
  const KemKeyPair keys = kem_keygen(params, backend, seed_of(7));
  const EncapsResult enc = encapsulate(params, backend, keys.pk, seed_of(8));
  const SharedKey dec_key = decapsulate(params, backend, keys, enc.ct);
  EXPECT_EQ(enc.key, dec_key);
}

INSTANTIATE_TEST_SUITE_P(
    LevelsAndBackends, SchemeRoundTrip,
    ::testing::Combine(::testing::Values(SecurityLevel::kLac128,
                                         SecurityLevel::kLac192,
                                         SecurityLevel::kLac256),
                       ::testing::Values(0, 1, 2)),
    [](const auto& info) {
      const char* level = std::get<0>(info.param) == SecurityLevel::kLac128
                              ? "Lac128"
                              : std::get<0>(info.param) ==
                                        SecurityLevel::kLac192
                                    ? "Lac192"
                                    : "Lac256";
      const char* kind = std::get<1>(info.param) == 0
                             ? "Ref"
                             : std::get<1>(info.param) == 1 ? "CtBch" : "Opt";
      return std::string(level) + kind;
    });

TEST(Backends, FunctionallyIdenticalCiphertexts) {
  // The co-design changes cost, never values: all three backends must
  // produce byte-identical keys and ciphertexts from the same seeds.
  const Params& params = Params::lac192();
  Xoshiro256 rng(9);
  const bch::Message msg = random_msg(rng);
  const Backend ref = Backend::reference();
  const Backend ct_bch = Backend::reference_const_bch();
  const Backend opt = Backend::optimized();

  const KeyPair kp_ref = keygen(params, ref, seed_of(1));
  const KeyPair kp_ct = keygen(params, ct_bch, seed_of(1));
  const KeyPair kp_opt = keygen(params, opt, seed_of(1));
  EXPECT_EQ(kp_ref.pk.b, kp_ct.pk.b);
  EXPECT_EQ(kp_ref.pk.b, kp_opt.pk.b);
  EXPECT_EQ(kp_ref.sk.s, kp_opt.sk.s);

  const Ciphertext c_ref = encrypt(params, ref, kp_ref.pk, msg, seed_of(2));
  const Ciphertext c_opt = encrypt(params, opt, kp_opt.pk, msg, seed_of(2));
  EXPECT_EQ(c_ref.u, c_opt.u);
  EXPECT_EQ(c_ref.v, c_opt.v);
}

TEST(Kem, TamperedCiphertextYieldsImplicitRejection) {
  const Params& params = Params::lac128();
  const Backend backend = Backend::reference_const_bch();
  const KemKeyPair keys = kem_keygen(params, backend, seed_of(11));
  const EncapsResult enc = encapsulate(params, backend, keys.pk, seed_of(12));

  Ciphertext tampered = enc.ct;
  tampered.u[0] = poly::add_mod(tampered.u[0], 100);
  const SharedKey k1 = decapsulate(params, backend, keys, tampered);
  EXPECT_NE(k1, enc.key);

  // Deterministic implicit rejection: same tampered ct -> same key.
  const SharedKey k2 = decapsulate(params, backend, keys, tampered);
  EXPECT_EQ(k1, k2);
}

TEST(Kem, DistinctEntropyDistinctKeys) {
  const Params& params = Params::lac128();
  const Backend backend = Backend::reference();
  const KemKeyPair keys = kem_keygen(params, backend, seed_of(13));
  const EncapsResult a = encapsulate(params, backend, keys.pk, seed_of(14));
  const EncapsResult b = encapsulate(params, backend, keys.pk, seed_of(15));
  EXPECT_NE(a.key, b.key);
  EXPECT_NE(serialize(params, a.ct), serialize(params, b.ct));
}

TEST(Serialization, RoundTrips) {
  const Params& params = Params::lac256();
  const Backend backend = Backend::reference();
  const KeyPair kp = keygen(params, backend, seed_of(21));
  const Bytes pk_bytes = serialize(params, kp.pk);
  EXPECT_EQ(pk_bytes.size(), params.pk_bytes());
  const PublicKey pk2 = deserialize_pk(params, pk_bytes);
  EXPECT_EQ(pk2.seed_a, kp.pk.seed_a);
  EXPECT_EQ(pk2.b, kp.pk.b);

  Xoshiro256 rng(1);
  const bch::Message msg = random_msg(rng);
  const Ciphertext ct = encrypt(params, backend, kp.pk, msg, seed_of(22));
  const Bytes ct_bytes = serialize(params, ct);
  EXPECT_EQ(ct_bytes.size(), params.ct_bytes());
  const Ciphertext ct2 = deserialize_ct(params, ct_bytes);
  EXPECT_EQ(ct2.u, ct.u);
  EXPECT_EQ(ct2.v, ct.v);
}

TEST(Robustness, ManySeedsNeverFailDecryption) {
  // Decryption-failure probability must be negligible at LAC parameters;
  // a correctness bug (noise model, codec thresholds) shows up here fast.
  const Params& params = Params::lac128();
  const Backend backend = Backend::reference();
  Xoshiro256 rng(31);
  for (u64 s = 0; s < 10; ++s) {
    const KeyPair kp = keygen(params, backend, seed_of(1000 + s));
    const bch::Message msg = random_msg(rng);
    const Ciphertext ct =
        encrypt(params, backend, kp.pk, msg, seed_of(2000 + s));
    const DecryptResult dec = decrypt(params, backend, kp.sk, ct);
    ASSERT_TRUE(dec.ok) << "seed " << s;
    ASSERT_EQ(dec.message, msg) << "seed " << s;
  }
}

}  // namespace
}  // namespace lacrv::lac
