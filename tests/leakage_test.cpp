// TVLA-style leakage assessment of the two BCH decoders, following the
// methodology the paper cites from Walters & Roy [15]: collect cycle
// traces for two input classes (valid codewords vs maximally-corrupted
// codewords) and compute Welch's t-statistic. The submission decoder must
// fail the test (|t| >> 4.5); the constant-time decoder must pass.
#include <gtest/gtest.h>

#include <set>

#include "bch/decoder.h"
#include "common/rng.h"
#include "common/stats.h"

namespace lacrv {
namespace {

std::vector<double> cycle_trace(const bch::CodeSpec& spec, bch::Flavor flavor,
                                int errors, int samples, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<double> trace;
  trace.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    bch::Message msg{};
    rng.fill(msg.data(), msg.size());
    bch::BitVec cw = bch::encode(spec, msg);
    std::set<std::size_t> flipped;
    while (static_cast<int>(flipped.size()) < errors) {
      const auto pos = static_cast<std::size_t>(rng.next_below(spec.length()));
      if (flipped.insert(pos).second) cw[pos] ^= 1;
    }
    CycleLedger ledger;
    bch::decode(spec, cw, flavor, &ledger);
    trace.push_back(static_cast<double>(ledger.total()));
  }
  return trace;
}

class LeakageSweep : public ::testing::TestWithParam<const bch::CodeSpec*> {};

TEST_P(LeakageSweep, SubmissionDecoderFailsTvla) {
  const bch::CodeSpec& spec = *GetParam();
  const auto clean = cycle_trace(spec, bch::Flavor::kSubmission, 0, 40, 1);
  const auto noisy =
      cycle_trace(spec, bch::Flavor::kSubmission, spec.t, 40, 2);
  EXPECT_GT(std::abs(stats::welch_t(clean, noisy)), stats::kTvlaThreshold);
}

TEST_P(LeakageSweep, ConstantTimeDecoderPassesTvla) {
  const bch::CodeSpec& spec = *GetParam();
  const auto clean =
      cycle_trace(spec, bch::Flavor::kConstantTime, 0, 40, 3);
  const auto noisy =
      cycle_trace(spec, bch::Flavor::kConstantTime, spec.t, 40, 4);
  // Traces are near-constant; the few-cycle BM residue must stay well
  // under the detectability the paper tolerates (Table I: 259 cycles of
  // spread on a 514k baseline). Relative spread < 0.1%.
  const double spread =
      std::abs(stats::mean(clean) - stats::mean(noisy));
  EXPECT_LT(spread / stats::mean(clean), 0.001);
}

INSTANTIATE_TEST_SUITE_P(BothCodes, LeakageSweep,
                         ::testing::Values(&bch::CodeSpec::bch_511_367_16(),
                                           &bch::CodeSpec::bch_511_439_8()),
                         [](const auto& info) {
                           return info.param->t == 16 ? "t16" : "t8";
                         });

TEST(LeakageStats, WelchBasics) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const std::vector<double> b = {1, 2, 3, 4, 5};
  EXPECT_NEAR(stats::welch_t(a, b), 0.0, 1e-12);
  const std::vector<double> c = {101, 102, 103, 104, 105};
  EXPECT_GT(std::abs(stats::welch_t(a, c)), 50.0);
  EXPECT_EQ(stats::welch_t({5, 5, 5}, {5, 5, 5}), 0.0);
}

TEST(LeakageStats, MeanVariance) {
  EXPECT_DOUBLE_EQ(stats::mean({2, 4, 6}), 4.0);
  EXPECT_DOUBLE_EQ(stats::variance({2, 4, 6}), 4.0);
  EXPECT_ANY_THROW(stats::variance({1.0}));
}

}  // namespace
}  // namespace lacrv
