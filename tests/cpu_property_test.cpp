// Randomized per-instruction semantics of the ISS against host-computed
// oracles, plus encoder/decoder/disassembler consistency sweeps.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "riscv/assembler.h"
#include "riscv/cpu.h"
#include "riscv/encoding.h"

namespace lacrv::rv {
namespace {

/// Execute a single R-type/I-type instruction with preset registers.
u32 exec_one(u32 insn, u32 x5, u32 x6) {
  Cpu cpu;
  cpu.set_reg(5, x5);
  cpu.set_reg(6, x6);
  cpu.load_words(0, std::array<u32, 2>{insn, 0x00100073});
  cpu.run(4);
  return cpu.reg(7);  // convention: rd = x7
}

struct AluCase {
  const char* name;
  u32 funct3, funct7;
  u32 (*oracle)(u32, u32);
};

constexpr AluCase kAluCases[] = {
    {"add", 0, 0, [](u32 a, u32 b) { return a + b; }},
    {"sub", 0, 0x20, [](u32 a, u32 b) { return a - b; }},
    {"sll", 1, 0, [](u32 a, u32 b) { return a << (b & 31); }},
    {"slt", 2, 0,
     [](u32 a, u32 b) {
       return static_cast<u32>(static_cast<i32>(a) < static_cast<i32>(b));
     }},
    {"sltu", 3, 0, [](u32 a, u32 b) { return static_cast<u32>(a < b); }},
    {"xor", 4, 0, [](u32 a, u32 b) { return a ^ b; }},
    {"srl", 5, 0, [](u32 a, u32 b) { return a >> (b & 31); }},
    {"sra", 5, 0x20,
     [](u32 a, u32 b) {
       return static_cast<u32>(static_cast<i32>(a) >>
                               static_cast<i32>(b & 31));
     }},
    {"or", 6, 0, [](u32 a, u32 b) { return a | b; }},
    {"and", 7, 0, [](u32 a, u32 b) { return a & b; }},
    {"mul", 0, 1, [](u32 a, u32 b) { return a * b; }},
    {"mulhu", 3, 1,
     [](u32 a, u32 b) {
       return static_cast<u32>((static_cast<u64>(a) * b) >> 32);
     }},
};

class AluSweep : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluSweep, MatchesOracleOnRandomOperands) {
  const AluCase& c = GetParam();
  const u32 insn = encode_r(kOpReg, 7, c.funct3, 5, 6, c.funct7);
  Xoshiro256 rng(static_cast<u64>(c.funct3) * 131 + c.funct7);
  for (int trial = 0; trial < 300; ++trial) {
    const u32 a = rng.next_u32();
    const u32 b = rng.next_u32();
    ASSERT_EQ(exec_one(insn, a, b), c.oracle(a, b))
        << c.name << "(" << a << ", " << b << ")";
  }
}

TEST_P(AluSweep, EdgeOperands) {
  const AluCase& c = GetParam();
  const u32 insn = encode_r(kOpReg, 7, c.funct3, 5, 6, c.funct7);
  const u32 edges[] = {0, 1, 31, 32, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF};
  for (u32 a : edges)
    for (u32 b : edges)
      ASSERT_EQ(exec_one(insn, a, b), c.oracle(a, b))
          << c.name << "(" << a << ", " << b << ")";
}

INSTANTIATE_TEST_SUITE_P(AllOps, AluSweep, ::testing::ValuesIn(kAluCases),
                         [](const auto& info) { return info.param.name; });

TEST(CpuSigned, MulhVariants) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    const u32 a = rng.next_u32();
    const u32 b = rng.next_u32();
    const i64 sa = static_cast<i32>(a), sb = static_cast<i32>(b);
    EXPECT_EQ(exec_one(encode_r(kOpReg, 7, 1, 5, 6, 1), a, b),
              static_cast<u32>((sa * sb) >> 32));
    EXPECT_EQ(exec_one(encode_r(kOpReg, 7, 2, 5, 6, 1), a, b),
              static_cast<u32>((sa * static_cast<i64>(static_cast<u64>(b))) >>
                               32));
  }
}

TEST(CpuSigned, DivRemRandom) {
  Xoshiro256 rng(8);
  for (int trial = 0; trial < 300; ++trial) {
    const u32 a = rng.next_u32();
    u32 b = rng.next_u32();
    if (b == 0) b = 1;
    if (!(a == 0x80000000u && b == 0xFFFFFFFFu)) {
      EXPECT_EQ(exec_one(encode_r(kOpReg, 7, 4, 5, 6, 1), a, b),
                static_cast<u32>(static_cast<i32>(a) / static_cast<i32>(b)));
      EXPECT_EQ(exec_one(encode_r(kOpReg, 7, 6, 5, 6, 1), a, b),
                static_cast<u32>(static_cast<i32>(a) % static_cast<i32>(b)));
    }
    EXPECT_EQ(exec_one(encode_r(kOpReg, 7, 5, 5, 6, 1), a, b), a / b);
    EXPECT_EQ(exec_one(encode_r(kOpReg, 7, 7, 5, 6, 1), a, b), a % b);
  }
}

TEST(CpuImm, OpImmMatchesOpOnRandomOperands) {
  // addi/xori/ori/andi/slti/sltiu against the register form.
  Xoshiro256 rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    const u32 a = rng.next_u32();
    const i32 imm = static_cast<i32>(rng.next_below(4096)) - 2048;
    for (u32 f3 : {0u, 2u, 3u, 4u, 6u, 7u}) {
      const u32 via_imm = exec_one(encode_i(kOpImm, 7, f3, 5, imm), a, 0);
      const u32 via_reg = exec_one(encode_r(kOpReg, 7, f3, 5, 6, 0), a,
                                   static_cast<u32>(imm));
      ASSERT_EQ(via_imm, via_reg) << "f3=" << f3 << " a=" << a
                                  << " imm=" << imm;
    }
  }
}

TEST(CpuMemory, HalfAndByteStoresArePartial) {
  Cpu cpu;
  cpu.write_word(0x100, 0xDDCCBBAA);
  cpu.set_reg(5, 0x100);
  cpu.set_reg(6, 0x11223344);
  // sh x6, 0(x5): only the low half changes
  cpu.load_words(0, std::array<u32, 2>{encode_s(kOpStore, 1, 5, 6, 0),
                                       0x00100073});
  cpu.run(4);
  EXPECT_EQ(cpu.read_word(0x100), 0xDDCC3344u);
}

TEST(CpuControl, BranchOffsetsBothDirections) {
  // forward and backward branch targets across the 12-bit range
  const Program prog = assemble(R"(
      li   a0, 0
      j    fwd
    back:
      addi a0, a0, 100
      j    end
    fwd:
      addi a0, a0, 10
      j    back
    end:
      ebreak
  )");
  Cpu cpu;
  cpu.load_words(0, prog.words);
  cpu.run(100);
  EXPECT_EQ(cpu.reg(10), 110u);
}

TEST(Disassembler, CoversEveryMnemonicWeEmit) {
  // Every instruction the assembler can emit must disassemble to its own
  // mnemonic (spot consistency between the two directions).
  const std::map<std::string, std::string> cases = {
      {"add a0, a1, a2", "add"},     {"sub a0, a1, a2", "sub"},
      {"mul a0, a1, a2", "mul"},     {"divu a0, a1, a2", "divu"},
      {"lw a0, 4(a1)", "lw"},        {"sb a0, -1(a1)", "sb"},
      {"beq a0, a1, 0", "beq"},      {"bgeu a0, a1, 0", "bgeu"},
      {"lui a0, 5", "lui"},          {"auipc a0, 5", "auipc"},
      {"jal ra, 0", "jal"},          {"jalr ra, 4(a0)", "jalr"},
      {"addi a0, a1, -7", "addi"},   {"srai a0, a1, 3", "srai"},
      {"pq.mul_ter a0, a1, a2", "pq.mul_ter"},
      {"pq.mul_chien a0, a1, a2", "pq.mul_chien"},
      {"pq.sha256 a0, a1, a2", "pq.sha256"},
      {"pq.modq a0, a1, a2", "pq.modq"},
      {"ebreak", "ebreak"}};
  for (const auto& [source, mnemonic] : cases) {
    const Program prog = assemble(source);
    ASSERT_FALSE(prog.words.empty()) << source;
    const std::string dis = disassemble(prog.words.back());
    EXPECT_EQ(dis.substr(0, mnemonic.size()), mnemonic) << source;
  }
}

TEST(Assembler, EncodesNegativeBranchExactly) {
  // two-instruction loop: verify the encoded branch offset is -4.
  const Program prog = assemble(R"(
    top:
      addi a0, a0, 1
      bne a0, a1, top
  )");
  EXPECT_EQ(imm_b(prog.words[1]), -4);
}

TEST(Assembler, WordDataWithLabelReferences) {
  const Program prog = assemble(R"(
      j start
    table:
      .word start, table, 42
    start:
      ebreak
  )");
  EXPECT_EQ(prog.words[1], prog.label("start"));
  EXPECT_EQ(prog.words[2], prog.label("table"));
  EXPECT_EQ(prog.words[3], 42u);
}

TEST(Cpu, RunStopsAtMaxSteps) {
  const Program prog = assemble("spin: j spin");
  Cpu cpu;
  cpu.load_words(0, prog.words);
  EXPECT_EQ(cpu.run(500), 500u);
  EXPECT_FALSE(cpu.halted());
}

TEST(Cpu, InstructionAndCycleCountersAdvance) {
  Cpu cpu;
  const Program prog = assemble("nop\nnop\nmul a0, a1, a2\nebreak");
  cpu.load_words(0, prog.words);
  cpu.run(10);
  EXPECT_EQ(cpu.instructions(), 4u);
  EXPECT_EQ(cpu.cycles(), 4u);  // 3 single-cycle + ebreak
}

}  // namespace
}  // namespace lacrv::rv
