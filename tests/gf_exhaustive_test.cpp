// Exhaustive verification of GF(2^9): all 262,144 products of the two
// multiplier flavours against an independent carry-less reference, plus
// field axioms checked over the full field.
#include <gtest/gtest.h>

#include "gf/gf512.h"

namespace lacrv::gf {
namespace {

/// Independent reference: schoolbook carry-less multiplication followed
/// by explicit reduction by p(x) = x^9 + x^4 + 1.
Element reference_mul(Element a, Element b) {
  u32 product = 0;
  for (int i = 0; i < kFieldBits; ++i)
    if (b >> i & 1) product ^= static_cast<u32>(a) << i;
  for (int i = 2 * kFieldBits - 2; i >= kFieldBits; --i)
    if (product >> i & 1) product ^= static_cast<u32>(kPrimitivePoly)
                                     << (i - kFieldBits);
  return static_cast<Element>(product & (kFieldSize - 1));
}

TEST(GfExhaustive, AllProductsAgainstCarrylessReference) {
  for (u32 a = 0; a < kFieldSize; ++a) {
    for (u32 b = 0; b < kFieldSize; ++b) {
      const Element expected =
          reference_mul(static_cast<Element>(a), static_cast<Element>(b));
      ASSERT_EQ(mul_table(static_cast<Element>(a), static_cast<Element>(b)),
                expected)
          << a << " * " << b;
      ASSERT_EQ(
          mul_shift_add(static_cast<Element>(a), static_cast<Element>(b)),
          expected)
          << a << " * " << b;
    }
  }
}

TEST(GfExhaustive, EveryNonzeroElementHasOrderDividing511) {
  // x^511 = 1 for all nonzero x (Lagrange); 511 = 7 * 73 so element
  // orders are in {1, 7, 73, 511}.
  for (Element x = 1; x < kFieldSize; ++x) {
    ASSERT_EQ(pow(x, 511), 1u) << "x=" << x;
    const u16 order_candidates[] = {1, 7, 73, 511};
    bool found = false;
    for (u16 d : order_candidates)
      if (pow(x, d) == 1) {
        found = true;
        break;
      }
    ASSERT_TRUE(found) << "x=" << x;
  }
}

TEST(GfExhaustive, TraceMapIsGf2Linear) {
  // Tr(x) = sum x^(2^i) maps to GF(2) and is linear — a deep structural
  // property that any multiplication bug would break.
  const auto trace = [](Element x) {
    Element acc = 0;
    Element power = x;
    for (int i = 0; i < kFieldBits; ++i) {
      acc = add(acc, power);
      power = mul_table(power, power);
    }
    return acc;
  };
  for (Element x = 0; x < kFieldSize; ++x)
    ASSERT_LE(trace(x), 1u) << "trace not in GF(2) for x=" << x;
  for (Element x = 0; x < 64; ++x)
    for (Element y = 0; y < 64; ++y)
      ASSERT_EQ(trace(add(x, y)), add(trace(x), trace(y)));
}

TEST(GfExhaustive, InversePairsAreInvolutive) {
  for (Element x = 1; x < kFieldSize; ++x) ASSERT_EQ(inv(inv(x)), x);
}

}  // namespace
}  // namespace lacrv::gf
