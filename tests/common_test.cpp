#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "common/ledger.h"
#include "common/rng.h"
#include "common/types.h"

namespace lacrv {
namespace {

TEST(Hex, RoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7e};
  EXPECT_EQ(to_hex(data), "0001abff7e");
  EXPECT_EQ(from_hex("0001abff7e"), data);
  EXPECT_EQ(from_hex("0001ABFF7E"), data);
}

TEST(Hex, EmptyInput) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Hex, RejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

// The diagnostics must name the problem: odd length vs. which character
// was not a hex digit.
TEST(Hex, MalformedInputDiagnostics) {
  try {
    from_hex("abc");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("odd length"), std::string::npos)
        << e.what();
  }
  try {
    from_hex("0g");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invalid hex digit"), std::string::npos) << what;
    EXPECT_NE(what.find('g'), std::string::npos) << what;
  }
  // Characters adjacent to the accepted ranges must still be rejected.
  EXPECT_THROW(from_hex("0/"), std::invalid_argument);  // '0' - 1
  EXPECT_THROW(from_hex("0:"), std::invalid_argument);  // '9' + 1
  EXPECT_THROW(from_hex("0`"), std::invalid_argument);  // 'a' - 1
  EXPECT_THROW(from_hex("0G"), std::invalid_argument);  // 'F' + 1
  EXPECT_THROW(from_hex(" 00"), std::invalid_argument);
}

TEST(CtEqual, Basics) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(EndianHelpers, RoundTrip) {
  u8 buf[4];
  store_le32(buf, 0x12345678u);
  EXPECT_EQ(buf[0], 0x78);
  EXPECT_EQ(load_le32(buf), 0x12345678u);
  store_be32(buf, 0x12345678u);
  EXPECT_EQ(buf[0], 0x12);
  EXPECT_EQ(load_be32(buf), 0x12345678u);
}

TEST(Check, ThrowsWithLocation) {
  try {
    LACRV_CHECK_MSG(1 == 2, "impossible");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("impossible"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("common_test.cpp"), std::string::npos);
  }
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Xoshiro, NextBelowInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(251), 251u);
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Xoshiro, NextBelowCoversRange) {
  Xoshiro256 rng(9);
  std::set<u64> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro, FillProducesDifferentTails) {
  Xoshiro256 rng(1);
  Bytes a = rng.bytes(33);
  Bytes b = rng.bytes(33);
  EXPECT_EQ(a.size(), 33u);
  EXPECT_NE(a, b);
}

TEST(Ledger, ChargesIntoInnermostSection) {
  CycleLedger ledger;
  ledger.push_section("outer");
  ledger.charge(10);
  ledger.push_section("inner");
  ledger.charge(5);
  ledger.pop_section();
  ledger.charge(1);
  ledger.pop_section();
  EXPECT_EQ(ledger.total(), 16u);
  EXPECT_EQ(ledger.section("outer"), 11u);
  EXPECT_EQ(ledger.section("inner"), 5u);
  EXPECT_EQ(ledger.section("absent"), 0u);
}

TEST(Ledger, ScopeIsRaii) {
  CycleLedger ledger;
  {
    LedgerScope scope(&ledger, "s");
    ledger.charge(3);
  }
  ledger.charge(4);
  EXPECT_EQ(ledger.section("s"), 3u);
  EXPECT_EQ(ledger.total(), 7u);
}

TEST(Ledger, NullLedgerScopeIsNoop) {
  LedgerScope scope(nullptr, "s");
  charge(nullptr, 100);  // must not crash
}

TEST(Ledger, ResetClearsEverything) {
  CycleLedger ledger;
  ledger.push_section("a");
  ledger.charge(2);
  ledger.reset();
  EXPECT_EQ(ledger.total(), 0u);
  EXPECT_TRUE(ledger.sections().empty());
}

}  // namespace
}  // namespace lacrv
