// The ISS hot-spot profiler against real kernel runs: attribution must
// be exhaustive (every retired cycle lands in exactly one opcode class),
// the pq-vs-base split must match what the cycle counters report, and
// the hot-range coalescing must reproduce the kernels' loop structure.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "perf/iss_kernels.h"
#include "riscv/profiler.h"

namespace lacrv {
namespace {

poly::Ternary random_ternary(Xoshiro256& rng, std::size_t n) {
  poly::Ternary t(n);
  for (auto& v : t)
    v = static_cast<i8>(static_cast<int>(rng.next_below(3)) - 1);
  return t;
}

poly::Coeffs random_coeffs(Xoshiro256& rng, std::size_t n) {
  poly::Coeffs c(n);
  for (auto& v : c) v = static_cast<u8>(rng.next_below(poly::kQ));
  return c;
}

TEST(IssProfiler, AttributionIsExhaustiveOnMulTer) {
  Xoshiro256 rng(1);
  const poly::Ternary a = random_ternary(rng, 512);
  const poly::Coeffs b = random_coeffs(rng, 512);

  rv::IssProfiler profiler;
  const perf::IssRunResult run = perf::iss_mul_ter(a, b, true, &profiler);

  // Every retired cycle and instruction attributed, none double-counted.
  EXPECT_EQ(profiler.total_cycles(), run.cycles);
  EXPECT_EQ(profiler.total_instructions(), run.instructions);
  EXPECT_EQ(profiler.pq_cycles() + profiler.base_cycles(),
            profiler.total_cycles());
  u64 class_sum = 0, insn_sum = 0;
  for (std::size_t c = 0; c < static_cast<std::size_t>(rv::OpClass::kCount);
       ++c) {
    class_sum += profiler.class_cycles(static_cast<rv::OpClass>(c));
    insn_sum += profiler.class_instructions(static_cast<rv::OpClass>(c));
  }
  EXPECT_EQ(class_sum, profiler.total_cycles());
  EXPECT_EQ(insn_sum, profiler.total_instructions());

  // A mul_ter kernel issues pq.mul_ter, never the other three units.
  EXPECT_GT(profiler.class_cycles(rv::OpClass::kPqMulTer), 0u);
  EXPECT_EQ(profiler.class_cycles(rv::OpClass::kPqMulChien), 0u);
  EXPECT_EQ(profiler.class_cycles(rv::OpClass::kPqSha256), 0u);
  EXPECT_EQ(profiler.class_cycles(rv::OpClass::kPqModq), 0u);
  // ... and it does real software work too (packing loops).
  EXPECT_GT(profiler.base_cycles(), 0u);
}

TEST(IssProfiler, SplitMatchesTable2WithinOnePercent) {
  // Acceptance check: the profiler's pq-vs-base decomposition of the
  // table2 multiplication kernel must agree with the kernel's own cycle
  // counter within 1% (here they derive from the same retire stream, so
  // the match is exact — the 1% bound guards future drift).
  Xoshiro256 rng(3);  // same seed the table2 bench uses
  const poly::Ternary a = random_ternary(rng, 512);
  const poly::Coeffs b = random_coeffs(rng, 512);

  rv::IssProfiler profiler;
  const perf::IssRunResult run = perf::iss_mul_ter(a, b, true, &profiler);
  const double delta = static_cast<double>(profiler.total_cycles()) -
                       static_cast<double>(run.cycles);
  EXPECT_LE(std::abs(delta), 0.01 * static_cast<double>(run.cycles));
  EXPECT_GT(profiler.pq_cycles(), 0u);
  EXPECT_LT(profiler.pq_cycles(), profiler.total_cycles());
}

TEST(IssProfiler, ModqKernelChargesPqModq) {
  std::vector<u16> values(64);
  for (std::size_t i = 0; i < values.size(); ++i)
    values[i] = static_cast<u16>(i * 1021);

  rv::IssProfiler profiler;
  const perf::IssRunResult run = perf::iss_modq(values, &profiler);
  EXPECT_EQ(profiler.total_cycles(), run.cycles);
  EXPECT_GT(profiler.class_cycles(rv::OpClass::kPqModq), 0u);
  EXPECT_EQ(profiler.class_cycles(rv::OpClass::kPqMulTer), 0u);
  EXPECT_EQ(profiler.class_instructions(rv::OpClass::kPqModq),
            values.size());
}

TEST(IssProfiler, HotRangesCoverTheRunAndAreRanked) {
  Xoshiro256 rng(2);
  const poly::Ternary a = random_ternary(rng, 512);
  const poly::Coeffs b = random_coeffs(rng, 512);
  rv::IssProfiler profiler;
  perf::iss_mul_ter(a, b, false, &profiler);

  const auto ranges = profiler.hot_ranges();
  ASSERT_FALSE(ranges.empty());
  u64 cycles = 0, instructions = 0;
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    const auto& r = ranges[i];
    EXPECT_LE(r.first_pc, r.last_pc);
    EXPECT_GE(r.top_pc, r.first_pc);
    EXPECT_LE(r.top_pc, r.last_pc);
    EXPECT_LE(r.top_cycles, r.cycles);
    if (i > 0) EXPECT_GE(ranges[i - 1].cycles, r.cycles);  // ranked
    cycles += r.cycles;
    instructions += r.instructions;
  }
  // Ranges partition the sampled PCs: totals must be preserved.
  EXPECT_EQ(cycles, profiler.total_cycles());
  EXPECT_EQ(instructions, profiler.total_instructions());
}

TEST(IssProfiler, ReportContainsTheSplitAndHotRanges) {
  Xoshiro256 rng(4);
  const poly::Ternary a = random_ternary(rng, 512);
  const poly::Coeffs b = random_coeffs(rng, 512);
  rv::IssProfiler profiler;
  perf::iss_mul_ter(a, b, true, &profiler);

  std::ostringstream os;
  profiler.report(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("cycle split: pq.*"), std::string::npos);
  EXPECT_NE(text.find("hot ranges"), std::string::npos);
  EXPECT_NE(text.find("pq.mul_ter"), std::string::npos);
}

TEST(IssProfiler, ResetClearsEverything) {
  rv::IssProfiler profiler;
  profiler.on_retire(0x100, 0x00000013 /* nop: addi x0,x0,0 */, 1);
  EXPECT_EQ(profiler.total_instructions(), 1u);
  EXPECT_GT(profiler.class_cycles(rv::OpClass::kAlu), 0u);
  profiler.reset();
  EXPECT_EQ(profiler.total_cycles(), 0u);
  EXPECT_EQ(profiler.total_instructions(), 0u);
  EXPECT_EQ(profiler.class_cycles(rv::OpClass::kAlu), 0u);
  EXPECT_TRUE(profiler.hot_ranges().empty());
}

TEST(IssProfiler, ClassifierRecognisesBaseClasses) {
  using rv::OpClass;
  EXPECT_EQ(rv::classify_insn(0x00000013), OpClass::kAlu);     // addi
  EXPECT_EQ(rv::classify_insn(0x02c585b3), OpClass::kMulDiv);  // mul
  EXPECT_EQ(rv::classify_insn(0x0005a583), OpClass::kLoad);    // lw
  EXPECT_EQ(rv::classify_insn(0x00b5a023), OpClass::kStore);   // sw
  EXPECT_EQ(rv::classify_insn(0x00b50463), OpClass::kBranch);  // beq
  EXPECT_EQ(rv::classify_insn(0x0000006f), OpClass::kJump);    // jal
  EXPECT_EQ(rv::classify_insn(0x00000073), OpClass::kSystem);  // ecall
}

}  // namespace
}  // namespace lacrv
