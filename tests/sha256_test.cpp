#include <gtest/gtest.h>

#include "common/types.h"
#include "hash/sha256.h"

namespace lacrv::hash {
namespace {

std::string hex_of(const Digest& d) { return to_hex(ByteView(d.data(), d.size())); }

ByteView view(const std::string& s) {
  return ByteView(reinterpret_cast<const u8*>(s.data()), s.size());
}

// FIPS 180-4 / NIST CAVP known-answer vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_of(sha256(ByteView{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_of(sha256(view("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_of(sha256(view(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(view(chunk));
  EXPECT_EQ(hex_of(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly and at odd "
      "buffer boundaries to exercise the block buffer.";
  const Digest expected = sha256(view(msg));
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.update(view(msg.substr(0, split)));
    h.update(view(msg.substr(split)));
    EXPECT_EQ(h.finalize(), expected) << "split at " << split;
  }
}

TEST(Sha256, TwoPartHelperMatchesConcatenation) {
  const std::string a = "first part|";
  const std::string b = "second part";
  EXPECT_EQ(sha256(view(a), view(b)), sha256(view(a + b)));
}

TEST(Sha256, PaddingBoundaries) {
  // Lengths around the 55/56/64 padding edges must each hash correctly.
  // Reference digests computed from the FIPS algorithm via the one-shot
  // path are checked for self-consistency across chunked updates.
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string msg(len, 'x');
    const Digest expected = sha256(view(msg));
    Sha256 h;
    for (char c : msg) h.update(ByteView(reinterpret_cast<const u8*>(&c), 1));
    EXPECT_EQ(h.finalize(), expected) << "len " << len;
  }
}

TEST(Sha256, CompressionCountMatchesPaddedLength) {
  Sha256 h;
  h.update(view(std::string(55, 'a')));  // fits one padded block
  h.finalize();
  EXPECT_EQ(h.compressions(), 1u);

  Sha256 h2;
  h2.update(view(std::string(56, 'a')));  // padding overflows to 2nd block
  h2.finalize();
  EXPECT_EQ(h2.compressions(), 2u);

  Sha256 h3;
  h3.update(view(std::string(128, 'a')));
  h3.finalize();
  EXPECT_EQ(h3.compressions(), 3u);
}

TEST(Sha256, UpdateAfterFinalizeRejected) {
  Sha256 h;
  h.update(view("abc"));
  h.finalize();
  EXPECT_ANY_THROW(h.update(view("more")));
  EXPECT_ANY_THROW(h.finalize());
  h.reset();
  EXPECT_EQ(hex_of(h.finalize()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

}  // namespace
}  // namespace lacrv::hash
