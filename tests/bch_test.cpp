#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "bch/decoder.h"
#include "common/rng.h"

namespace lacrv::bch {
namespace {

Message random_message(Xoshiro256& rng) {
  Message m;
  rng.fill(m.data(), m.size());
  return m;
}

/// Flip `count` distinct bits of w, restricted to [lo, hi).
void inject_errors(Xoshiro256& rng, BitVec& w, int count, int lo, int hi) {
  std::set<int> positions;
  while (static_cast<int>(positions.size()) < count)
    positions.insert(lo + static_cast<int>(rng.next_below(hi - lo)));
  for (int p : positions) w[p] ^= 1;
}

TEST(CodeSpec, GeneratorDegrees) {
  EXPECT_EQ(CodeSpec::bch_511_367_16().generator.size(), 145u);  // deg 144
  EXPECT_EQ(CodeSpec::bch_511_439_8().generator.size(), 73u);    // deg 72
  EXPECT_EQ(CodeSpec::bch_511_367_16().length(), 400);
  EXPECT_EQ(CodeSpec::bch_511_439_8().length(), 328);
}

TEST(CodeSpec, GeneratorHasDesignedRoots) {
  // g(alpha^j) must vanish for j = 1..2t (the defining property).
  for (const CodeSpec* spec :
       {&CodeSpec::bch_511_367_16(), &CodeSpec::bch_511_439_8()}) {
    std::vector<gf::Element> g(spec->generator.begin(),
                               spec->generator.end());
    for (int j = 1; j <= 2 * spec->t; ++j)
      EXPECT_EQ(gf::poly_eval(g, gf::alpha_pow(j), gf::MulKind::kTable), 0u)
          << "j=" << j;
    // and not for j = 0 (g(1) != 0 would make the code degenerate; the
    // generator has odd weight so g(1) = 1).
    EXPECT_NE(gf::poly_eval(g, 1, gf::MulKind::kTable), 0u);
  }
}

TEST(CodeSpec, ChienWindowCoversMessagePositions) {
  for (const CodeSpec* spec :
       {&CodeSpec::bch_511_367_16(), &CodeSpec::bch_511_439_8()}) {
    // Window from the paper: alpha^112..368 (t=16), alpha^184..440 (t=8).
    // Error at degree d corresponds to exponent 511 - d.
    for (int i = 0; i < spec->msg_bits; ++i) {
      const int exponent = gf::kGroupOrder - spec->message_degree(i);
      EXPECT_GE(exponent, spec->chien_first);
      EXPECT_LE(exponent, spec->chien_last);
    }
  }
}

TEST(Gf2Poly, MulAndMod) {
  // (x + 1)(x^2 + x + 1) = x^3 + 1 over GF(2)
  EXPECT_EQ(poly_mul_gf2({1, 1}, {1, 1, 1}), (BitVec{1, 0, 0, 1}));
  // (x^3 + 1) mod (x + 1) = 0
  EXPECT_EQ(poly_mod_gf2({1, 0, 0, 1}, {1, 1}), (BitVec{0}));
  // x^2 mod (x^2 + x + 1) = x + 1
  EXPECT_EQ(poly_mod_gf2({0, 0, 1}, {1, 1, 1}), (BitVec{1, 1}));
}

TEST(Encoder, CodewordIsSystematicAndDivisibleByGenerator) {
  Xoshiro256 rng(1);
  const CodeSpec& spec = CodeSpec::bch_511_367_16();
  const Message msg = random_message(rng);
  const BitVec cw = encode(spec, msg);
  ASSERT_EQ(static_cast<int>(cw.size()), spec.length());
  // systematic placement
  for (int i = 0; i < spec.msg_bits; ++i)
    EXPECT_EQ(cw[spec.message_degree(i)], get_bit(msg, i));
  // c(x) mod g(x) == 0
  const BitVec rem = poly_mod_gf2(cw, spec.generator);
  EXPECT_TRUE(std::all_of(rem.begin(), rem.end(),
                          [](u8 b) { return b == 0; }));
  EXPECT_EQ(extract_message(spec, cw), msg);
}


TEST(Encoder, ConstantTimeVariantMatchesReference) {
  Xoshiro256 rng(42);
  for (const CodeSpec* spec :
       {&CodeSpec::bch_511_367_16(), &CodeSpec::bch_511_439_8()}) {
    for (int trial = 0; trial < 20; ++trial) {
      const Message msg = random_message(rng);
      ASSERT_EQ(encode_ct(*spec, msg), encode(*spec, msg))
          << spec->t << " trial " << trial;
    }
    // corner messages
    Message zeros{}, ones;
    ones.fill(0xFF);
    EXPECT_EQ(encode_ct(*spec, zeros), encode(*spec, zeros));
    EXPECT_EQ(encode_ct(*spec, ones), encode(*spec, ones));
  }
}

TEST(Syndromes, ZeroForValidCodeword) {
  Xoshiro256 rng(2);
  for (const CodeSpec* spec :
       {&CodeSpec::bch_511_367_16(), &CodeSpec::bch_511_439_8()}) {
    const BitVec cw = encode(*spec, random_message(rng));
    EXPECT_TRUE(all_zero(syndromes(*spec, cw, Flavor::kSubmission)));
    EXPECT_TRUE(all_zero(syndromes(*spec, cw, Flavor::kConstantTime)));
  }
}

TEST(Syndromes, FlavoursAgreeAndDetectErrors) {
  Xoshiro256 rng(3);
  const CodeSpec& spec = CodeSpec::bch_511_367_16();
  BitVec cw = encode(spec, random_message(rng));
  inject_errors(rng, cw, 3, 0, spec.length());
  const auto a = syndromes(spec, cw, Flavor::kSubmission);
  const auto b = syndromes(spec, cw, Flavor::kConstantTime);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(all_zero(a));
}

TEST(Syndromes, SingleErrorHasPowerStructure) {
  // One error at degree d: S_j = alpha^(j*d).
  const CodeSpec& spec = CodeSpec::bch_511_439_8();
  const int d = 100;
  BitVec w(spec.length(), 0);
  w[d] = 1;
  const auto s = syndromes(spec, w, Flavor::kSubmission);
  for (int j = 1; j <= 2 * spec.t; ++j)
    EXPECT_EQ(s[j - 1], gf::alpha_pow(static_cast<u32>(j) * d)) << "j=" << j;
}

TEST(BerlekampMassey, DegreeEqualsErrorCount) {
  Xoshiro256 rng(4);
  const CodeSpec& spec = CodeSpec::bch_511_367_16();
  for (int errors = 0; errors <= spec.t; ++errors) {
    BitVec cw = encode(spec, random_message(rng));
    inject_errors(rng, cw, errors, 0, spec.length());
    const auto synd = syndromes(spec, cw, Flavor::kSubmission);
    EXPECT_EQ(berlekamp_massey(spec, synd, Flavor::kSubmission).degree,
              errors);
    EXPECT_EQ(berlekamp_massey(spec, synd, Flavor::kConstantTime).degree,
              errors);
  }
}

TEST(BerlekampMassey, CtLocatorIsScalarMultipleOfSubmission) {
  Xoshiro256 rng(5);
  const CodeSpec& spec = CodeSpec::bch_511_367_16();
  BitVec cw = encode(spec, random_message(rng));
  inject_errors(rng, cw, 7, 0, spec.length());
  const auto synd = syndromes(spec, cw, Flavor::kSubmission);
  const Locator a = berlekamp_massey(spec, synd, Flavor::kSubmission);
  const Locator b = berlekamp_massey(spec, synd, Flavor::kConstantTime);
  ASSERT_EQ(a.degree, b.degree);
  ASSERT_NE(a.lambda[0], 0u);
  ASSERT_NE(b.lambda[0], 0u);
  // b = scale * a for one field scalar
  const gf::Element scale = gf::mul_table(b.lambda[0], gf::inv(a.lambda[0]));
  for (std::size_t i = 0; i < a.lambda.size(); ++i)
    EXPECT_EQ(b.lambda[i], gf::mul_table(scale, a.lambda[i])) << "i=" << i;
}

TEST(Chien, FindsInjectedMessageErrors) {
  Xoshiro256 rng(6);
  const CodeSpec& spec = CodeSpec::bch_511_367_16();
  BitVec cw = encode(spec, random_message(rng));
  BitVec clean = cw;
  inject_errors(rng, cw, 5, spec.parity_bits(), spec.length());
  const auto synd = syndromes(spec, cw, Flavor::kConstantTime);
  const Locator loc = berlekamp_massey(spec, synd, Flavor::kConstantTime);
  const ChienResult roots = chien_search(spec, loc, Flavor::kConstantTime);
  EXPECT_EQ(roots.roots_found, 5);
  for (int d : roots.error_degrees) {
    EXPECT_NE(cw[d], clean[d]);
  }
  EXPECT_EQ(roots.error_degrees.size(), 5u);
}

class DecodeSweep
    : public ::testing::TestWithParam<std::tuple<const CodeSpec*, Flavor>> {};

TEST_P(DecodeSweep, CorrectsUpToTErrorsAnywhere) {
  const auto [spec, flavor] = GetParam();
  Xoshiro256 rng(7);
  for (int errors = 0; errors <= spec->t; ++errors) {
    const Message msg = random_message(rng);
    BitVec cw = encode(*spec, msg);
    inject_errors(rng, cw, errors, 0, spec->length());
    const DecodeResult result = decode(*spec, cw, flavor);
    EXPECT_TRUE(result.ok) << errors << " errors";
    EXPECT_EQ(result.message, msg) << errors << " errors";
  }
}

TEST_P(DecodeSweep, MessageIntactWithParityOnlyErrors) {
  const auto [spec, flavor] = GetParam();
  Xoshiro256 rng(8);
  const Message msg = random_message(rng);
  BitVec cw = encode(*spec, msg);
  inject_errors(rng, cw, spec->t, 0, spec->parity_bits());
  const DecodeResult result = decode(*spec, cw, flavor);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.message, msg);
  EXPECT_EQ(result.errors_corrected, 0);  // parity roots are out of window
}

INSTANTIATE_TEST_SUITE_P(
    CodesAndFlavours, DecodeSweep,
    ::testing::Combine(::testing::Values(&CodeSpec::bch_511_367_16(),
                                         &CodeSpec::bch_511_439_8()),
                       ::testing::Values(Flavor::kSubmission,
                                         Flavor::kConstantTime)),
    [](const auto& info) {
      const auto* spec = std::get<0>(info.param);
      return std::string(spec->t == 16 ? "t16" : "t8") +
             (std::get<1>(info.param) == Flavor::kSubmission ? "_submission"
                                                             : "_ct");
    });

TEST(Decode, RandomizedRoundTripsManySeeds) {
  const CodeSpec& spec = CodeSpec::bch_511_367_16();
  Xoshiro256 rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    const Message msg = random_message(rng);
    BitVec cw = encode(spec, msg);
    const int errors = static_cast<int>(rng.next_below(spec.t + 1));
    inject_errors(rng, cw, errors, 0, spec.length());
    const DecodeResult r = decode(spec, cw, Flavor::kConstantTime);
    ASSERT_TRUE(r.ok);
    ASSERT_EQ(r.message, msg) << "trial " << trial;
  }
}

TEST(Decode, BeyondCapacityDoesNotRoundTrip) {
  // t+heavy error bursts: decoding may fail or miscorrect, but must not
  // silently return the original message while reporting inconsistency.
  const CodeSpec& spec = CodeSpec::bch_511_439_8();
  Xoshiro256 rng(10);
  int failures = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Message msg = random_message(rng);
    BitVec cw = encode(spec, msg);
    inject_errors(rng, cw, 3 * spec.t, 0, spec.length());
    const DecodeResult r = decode(spec, cw, Flavor::kConstantTime);
    if (!r.ok || r.message != msg) ++failures;
  }
  EXPECT_GT(failures, 15);  // overwhelming majority must not round-trip
}

// ---- Table I timing shape ------------------------------------------------

struct StageCycles {
  u64 syndrome, error_loc, chien, total;
};

StageCycles decode_cycles(const CodeSpec& spec, const BitVec& w,
                          Flavor flavor) {
  CycleLedger ledger;
  decode(spec, w, flavor, &ledger);
  return {ledger.section("bch_syndrome"), ledger.section("bch_error_loc"),
          ledger.section("bch_chien"), ledger.total()};
}

TEST(TimingShape, SubmissionDecoderIsVariableTime) {
  Xoshiro256 rng(11);
  const CodeSpec& spec = CodeSpec::bch_511_367_16();
  const BitVec clean = encode(spec, random_message(rng));
  BitVec noisy = clean;
  inject_errors(rng, noisy, spec.t, 0, spec.length());

  const StageCycles c0 = decode_cycles(spec, clean, Flavor::kSubmission);
  const StageCycles c16 = decode_cycles(spec, noisy, Flavor::kSubmission);
  // Table I: the error-locator stage leaks the error count hard
  // (158 vs ~10k cycles).
  EXPECT_LT(c0.error_loc, 500u);
  EXPECT_GT(c16.error_loc, 5000u);
  EXPECT_NE(c0.total, c16.total);
}

TEST(TimingShape, ConstantTimeDecoderIsNearlyFixed) {
  Xoshiro256 rng(12);
  const CodeSpec& spec = CodeSpec::bch_511_367_16();
  const BitVec clean = encode(spec, random_message(rng));
  BitVec noisy = clean;
  inject_errors(rng, noisy, spec.t, 0, spec.length());

  const StageCycles c0 = decode_cycles(spec, clean, Flavor::kConstantTime);
  const StageCycles c16 = decode_cycles(spec, noisy, Flavor::kConstantTime);
  // Walters et al.: syndromes and Chien bit-exact equal; BM differs only
  // by a few cycles (masked-inversion residue), Table I: 33,810 vs 33,867.
  EXPECT_EQ(c0.syndrome, c16.syndrome);
  EXPECT_EQ(c0.chien, c16.chien);
  EXPECT_LE(c16.error_loc - c0.error_loc, 100u);
  EXPECT_LE(c16.total - c0.total, 100u);
}

TEST(TimingShape, MagnitudesNearTableI) {
  Xoshiro256 rng(13);
  const CodeSpec& spec = CodeSpec::bch_511_367_16();
  const BitVec clean = encode(spec, random_message(rng));
  BitVec noisy = clean;
  inject_errors(rng, noisy, spec.t, 0, spec.length());

  const StageCycles sub0 = decode_cycles(spec, clean, Flavor::kSubmission);
  const StageCycles sub16 = decode_cycles(spec, noisy, Flavor::kSubmission);
  const StageCycles ct = decode_cycles(spec, clean, Flavor::kConstantTime);

  // Paper values with a 15% modelling band.
  EXPECT_NEAR(static_cast<double>(sub0.syndrome), 61994, 61994 * 0.15);
  EXPECT_NEAR(static_cast<double>(sub16.error_loc), 10172, 10172 * 0.25);
  EXPECT_NEAR(static_cast<double>(sub0.chien), 107431, 107431 * 0.15);
  EXPECT_NEAR(static_cast<double>(ct.syndrome), 89335, 89335 * 0.15);
  EXPECT_NEAR(static_cast<double>(ct.error_loc), 33810, 33810 * 0.15);
  EXPECT_NEAR(static_cast<double>(ct.chien), 380546, 380546 * 0.15);
  EXPECT_NEAR(static_cast<double>(ct.total), 514169, 514169 * 0.15);
}

}  // namespace
}  // namespace lacrv::bch
