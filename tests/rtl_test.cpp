#include <gtest/gtest.h>

#include "common/rng.h"
#include "rtl/barrett_unit.h"
#include "rtl/chien_unit.h"
#include "rtl/gf_mul.h"
#include "poly/karatsuba.h"
#include "rtl/mul_ter.h"
#include "rtl/sha256_core.h"

namespace lacrv::rtl {
namespace {

poly::Ternary random_ternary(Xoshiro256& rng, std::size_t n) {
  poly::Ternary t(n);
  for (auto& v : t)
    v = static_cast<i8>(static_cast<int>(rng.next_below(3)) - 1);
  return t;
}

poly::Coeffs random_coeffs(Xoshiro256& rng, std::size_t n) {
  poly::Coeffs c(n);
  for (auto& v : c) v = static_cast<u8>(rng.next_below(poly::kQ));
  return c;
}

// ---- MUL TER --------------------------------------------------------------

TEST(MulTerRtl, MatchesGoldenModelBothConvolutions) {
  Xoshiro256 rng(1);
  for (std::size_t n : {8u, 64u, 512u}) {
    MulTerRtl unit(n);
    for (bool negacyclic : {false, true}) {
      const poly::Ternary a = random_ternary(rng, n);
      const poly::Coeffs b = random_coeffs(rng, n);
      unit.reset();
      EXPECT_EQ(unit.multiply(a, b, negacyclic),
                poly::mul_ter_sw(a, b, negacyclic))
          << "n=" << n << " negacyclic=" << negacyclic;
    }
  }
}

TEST(MulTerRtl, TakesExactlyNCycles) {
  Xoshiro256 rng(2);
  MulTerRtl unit(512);
  const poly::Ternary a = random_ternary(rng, 512);
  const poly::Coeffs b = random_coeffs(rng, 512);
  for (std::size_t i = 0; i < 512; ++i) {
    unit.load_a(i, a[i]);
    unit.load_b(i, b[i]);
  }
  unit.start(true);
  EXPECT_TRUE(unit.busy());
  EXPECT_EQ(unit.run_to_completion(), 512u);
  EXPECT_FALSE(unit.busy());
}

TEST(MulTerRtl, PaddedLength256OperandsGiveFullProduct) {
  // The splitting layers rely on this: a cyclic length-512 convolution of
  // two length-256 operands equals the unreduced full product.
  Xoshiro256 rng(3);
  poly::Ternary a(512, 0);
  poly::Coeffs b(512, 0);
  for (int i = 0; i < 256; ++i) {
    a[i] = static_cast<i8>(static_cast<int>(rng.next_below(3)) - 1);
    b[i] = static_cast<u8>(rng.next_below(poly::kQ));
  }
  MulTerRtl unit(512);
  const poly::Coeffs got = unit.multiply(a, b, false);
  const poly::Coeffs full = poly::mul_general_full(
      poly::from_ternary(poly::Ternary(a.begin(), a.begin() + 256)),
      poly::Coeffs(b.begin(), b.begin() + 256));
  for (std::size_t i = 0; i < full.size(); ++i)
    ASSERT_EQ(got[i], full[i]) << "coeff " << i;
  for (std::size_t i = full.size(); i < 512; ++i) ASSERT_EQ(got[i], 0);
}

TEST(MulTerRtl, OperandAccessGuards) {
  MulTerRtl unit(16);
  EXPECT_ANY_THROW(unit.load_b(16, 1));
  EXPECT_ANY_THROW(unit.load_b(0, 251));
  EXPECT_ANY_THROW(unit.load_a(0, 2));
  unit.start(false);
  EXPECT_ANY_THROW(unit.load_b(0, 1));
  EXPECT_ANY_THROW(unit.read_c(0));
  EXPECT_ANY_THROW(unit.start(true));
  unit.run_to_completion();
  EXPECT_NO_THROW(unit.read_c(0));
}

TEST(MulTerRtl, AreaNearTableIII) {
  const AreaReport area = MulTerRtl(512).area();
  EXPECT_NEAR(static_cast<double>(area.luts), 31465, 31465 * 0.05);
  EXPECT_NEAR(static_cast<double>(area.registers), 9305, 9305 * 0.02);
  EXPECT_EQ(area.dsps, 0u);
  EXPECT_EQ(area.brams, 0u);
}


TEST(MulTerRtl, ArbitraryLengthsIncludingOdd) {
  // The register-rotation schedule is length-agnostic; the paper's unit
  // is 512 but nothing in the architecture requires a power of two.
  Xoshiro256 rng(77);
  for (std::size_t n : {3u, 7u, 12u, 100u}) {
    MulTerRtl unit(n);
    const poly::Ternary a = random_ternary(rng, n);
    const poly::Coeffs b = random_coeffs(rng, n);
    for (bool negacyclic : {false, true}) {
      unit.reset();
      ASSERT_EQ(unit.multiply(a, b, negacyclic),
                poly::mul_ter_sw(a, b, negacyclic))
          << "n=" << n;
    }
  }
}

TEST(MulTerRtl, ResetClearsEverything) {
  MulTerRtl unit(8);
  unit.load_a(0, 1);
  unit.load_b(0, 99);
  unit.start(false);
  unit.run_to_completion();
  EXPECT_EQ(unit.read_c(0), 99);
  unit.reset();
  EXPECT_EQ(unit.cycles(), 0u);
  unit.start(false);
  unit.run_to_completion();
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(unit.read_c(i), 0);
}

// ---- MUL GF ---------------------------------------------------------------

TEST(GfMulRtl, MatchesFieldMultiplicationExhaustiveSample) {
  Xoshiro256 rng(4);
  GfMulRtl unit;
  for (int trial = 0; trial < 3000; ++trial) {
    const auto a = static_cast<gf::Element>(rng.next_below(gf::kFieldSize));
    const auto b = static_cast<gf::Element>(rng.next_below(gf::kFieldSize));
    unit.reset();
    unit.load(a, b);
    unit.start();
    ASSERT_EQ(unit.run_to_completion(), 9u);  // m = 9 clock cycles
    ASSERT_EQ(unit.result(), gf::mul_table(a, b)) << a << "*" << b;
  }
}

TEST(GfMulRtl, NineCyclesAlways) {
  GfMulRtl unit;
  unit.load(0, 0);
  unit.start();
  EXPECT_EQ(unit.run_to_completion(), 9u);
  EXPECT_EQ(unit.result(), 0u);
}

// ---- MUL CHIEN ------------------------------------------------------------

TEST(ChienRtl, EvaluatesLocatorAlongWindow) {
  Xoshiro256 rng(5);
  for (int t : {8, 16}) {
    std::vector<gf::Element> lambda(t + 1);
    for (auto& c : lambda)
      c = static_cast<gf::Element>(rng.next_below(gf::kFieldSize));
    const int first = t == 16 ? 112 : 184;
    ChienRtl unit;
    unit.configure(lambda, first);
    for (int i = first; i < first + 40; ++i) {
      const gf::Element expected =
          gf::poly_eval(lambda, gf::alpha_pow(static_cast<u32>(i)),
                        gf::MulKind::kTable);
      ASSERT_EQ(unit.eval_next(), expected) << "t=" << t << " i=" << i;
    }
  }
}

TEST(ChienRtl, GroupPassesAndCyclesMatchEq4) {
  std::vector<gf::Element> lambda16(17, 1), lambda8(9, 1);
  ChienRtl unit;
  unit.configure(lambda16, 112);
  EXPECT_EQ(unit.group_passes_per_point(), 4);  // t=16 -> four parts
  unit.eval_next();
  EXPECT_EQ(unit.cycles(), 4u * 9u);

  unit.configure(lambda8, 184);
  EXPECT_EQ(unit.group_passes_per_point(), 2);  // t=8 -> two parts
  unit.eval_next();
  EXPECT_EQ(unit.cycles(), 2u * 9u);
}

TEST(ChienRtl, FindsRootsOfConstructedLocator) {
  // Build Lambda(x) = (1 - alpha^e1 x)(1 - alpha^e2 x): roots at
  // alpha^(-e1), alpha^(-e2) -> window exponents 511-e1, 511-e2.
  const int e1 = 200, e2 = 300;  // inside the t=16 window after negation
  const gf::Element x1 = gf::alpha_pow(e1), x2 = gf::alpha_pow(e2);
  std::vector<gf::Element> lambda(17, 0);
  lambda[0] = 1;
  lambda[1] = gf::add(x1, x2);
  lambda[2] = gf::mul_table(x1, x2);

  ChienRtl unit;
  unit.configure(lambda, 112);
  std::vector<int> roots;
  for (int i = 112; i <= 368; ++i)
    if (unit.eval_next() == 0) roots.push_back(i);
  EXPECT_EQ(roots, (std::vector<int>{511 - e2, 511 - e1}));
}

TEST(ChienRtl, RejectsNonMultipleOfFourT) {
  std::vector<gf::Element> lambda(6, 1);  // t = 5
  ChienRtl unit;
  EXPECT_ANY_THROW(unit.configure(lambda, 112));
}

TEST(ChienRtl, AreaNearTableIII) {
  const AreaReport area = ChienRtl().area();
  EXPECT_NEAR(static_cast<double>(area.luts), 86, 5);
  EXPECT_NEAR(static_cast<double>(area.registers), 158, 5);
  EXPECT_EQ(area.dsps, 0u);
}

// ---- SHA256 ---------------------------------------------------------------

TEST(Sha256Rtl, MatchesSoftwareSha256) {
  Xoshiro256 rng(6);
  Sha256Rtl core;
  for (std::size_t len : {0u, 1u, 3u, 55u, 56u, 64u, 100u, 200u}) {
    const Bytes msg = rng.bytes(len);
    EXPECT_EQ(core.hash_message(msg), hash::sha256(msg)) << "len " << len;
  }
}

TEST(Sha256Rtl, SixtyFiveCyclesPerBlock) {
  Sha256Rtl core;
  core.reset_state();
  for (std::size_t i = 0; i < 64; ++i) core.load_byte(i, 0);
  core.start();
  EXPECT_EQ(core.run_to_completion(), 65u);  // 64 rounds + state update
}

TEST(Sha256Rtl, AreaNearTableIII) {
  const AreaReport area = Sha256Rtl().area();
  EXPECT_NEAR(static_cast<double>(area.luts), 1031, 1031 * 0.05);
  EXPECT_NEAR(static_cast<double>(area.registers), 1556, 1556 * 0.05);
}

// ---- Barrett --------------------------------------------------------------

TEST(BarrettRtl, ExhaustiveAgainstModulo) {
  BarrettRtl unit;
  for (u32 x = 0; x < (1u << 16); ++x)
    ASSERT_EQ(unit.reduce(x), x % poly::kQ) << x;
  EXPECT_EQ(unit.operations(), u64{1} << 16);
  EXPECT_ANY_THROW(unit.reduce(1u << 16));
}

TEST(BarrettRtl, AreaMatchesTableIII) {
  const AreaReport area = BarrettRtl().area();
  EXPECT_EQ(area.luts, 35u);
  EXPECT_EQ(area.registers, 0u);
  EXPECT_EQ(area.dsps, 2u);  // the only DSP slices of the PQ-ALU
}

// ---- Aggregate (Table III accelerator block) ------------------------------

TEST(Area, AcceleratorTotalsNearPaperAbstract) {
  // Abstract: 32,617 LUTs and 11,019 registers for the PQ extension.
  const AreaReport total = combine(
      "PQ-ALU", {MulTerRtl(512).area(), ChienRtl().area(),
                 Sha256Rtl().area(), BarrettRtl().area()});
  EXPECT_NEAR(static_cast<double>(total.luts), 32617, 32617 * 0.05);
  EXPECT_NEAR(static_cast<double>(total.registers), 11019, 11019 * 0.05);
  EXPECT_EQ(total.dsps, 2u);
  EXPECT_EQ(total.brams, 0u);
}

}  // namespace
}  // namespace lacrv::rtl
