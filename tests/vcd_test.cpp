#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "rtl/trace.h"
#include "rtl/vcd.h"

namespace lacrv::rtl {
namespace {

TEST(VcdWriter, HeaderAndChanges) {
  std::ostringstream os;
  VcdWriter vcd(os);
  const auto clk = vcd.add_signal("clk", 1);
  const auto bus = vcd.add_signal("data", 8);
  vcd.begin();
  vcd.change(clk, 0);
  vcd.change(bus, 0xA5);
  vcd.advance(1);
  vcd.change(clk, 1);
  vcd.change(bus, 0xA5);  // unchanged: must not emit a record
  vcd.finish(2);

  const std::string out = os.str();
  EXPECT_NE(out.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 ! clk $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 8 \" data $end"), std::string::npos);
  EXPECT_NE(out.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(out.find("b10100101 \""), std::string::npos);
  EXPECT_NE(out.find("#0"), std::string::npos);
  EXPECT_NE(out.find("#1"), std::string::npos);
  EXPECT_NE(out.find("#2"), std::string::npos);
  // the unchanged bus value at t=1 appears exactly once
  EXPECT_EQ(out.find("b10100101 \""), out.rfind("b10100101 \""));
}

TEST(VcdWriter, GuardsMisuse) {
  std::ostringstream os;
  VcdWriter vcd(os);
  const auto sig = vcd.add_signal("x", 1);
  EXPECT_ANY_THROW(vcd.change(sig, 1));  // begin() not called
  vcd.begin();
  EXPECT_ANY_THROW(vcd.add_signal("late", 1));
  vcd.advance(5);
  EXPECT_ANY_THROW(vcd.advance(4));  // time reversal
  EXPECT_ANY_THROW(vcd.change(99, 1));
}

TEST(Trace, MulTerTraceProducesCorrectResultAndWaveform) {
  Xoshiro256 rng(1);
  poly::Ternary a(16);
  poly::Coeffs b(16);
  for (auto& v : a)
    v = static_cast<i8>(static_cast<int>(rng.next_below(3)) - 1);
  for (auto& v : b) v = static_cast<u8>(rng.next_below(poly::kQ));

  std::ostringstream vcd;
  MulTerRtl unit(16);
  const poly::Coeffs result = trace_mul_ter(unit, a, b, true, vcd, 4);
  EXPECT_EQ(result, poly::mul_ter_sw(a, b, true));

  const std::string out = vcd.str();
  EXPECT_NE(out.find("$var wire 1 ! clk $end"), std::string::npos);
  EXPECT_NE(out.find(" cntr $end"), std::string::npos);
  EXPECT_NE(out.find(" c0 $end"), std::string::npos);
  EXPECT_NE(out.find(" c3 $end"), std::string::npos);
  EXPECT_EQ(out.find(" c4 $end"), std::string::npos);  // only 4 probes
  // 16 compute cycles -> 2 samples each plus boundaries: >= 33 time marks
  std::size_t marks = 0;
  for (std::size_t pos = out.find('#'); pos != std::string::npos;
       pos = out.find('#', pos + 1))
    ++marks;
  EXPECT_GE(marks, 33u);
}

TEST(Trace, GfMulTraceMatchesFieldProduct) {
  std::ostringstream vcd;
  const gf::Element product = trace_gf_mul(gf::alpha_pow(5), gf::alpha_pow(9), vcd);
  EXPECT_EQ(product, gf::alpha_pow(14));
  EXPECT_NE(vcd.str().find("$var wire 9 "), std::string::npos);
}

}  // namespace
}  // namespace lacrv::rtl
