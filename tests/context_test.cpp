// The per-key precomputed context layer (lac/context.h) and its service
// integration. Three properties are pinned here:
//
//  1. Coherence — context-served operations are bit-identical to the
//     per-request path across every parameter set, PRG kind and backend
//     (a KAT-style sweep: same inputs, byte-equal ct / keys).
//  2. Accounting — for any key, uncached_op == cached_op + build_cycles,
//     exactly: the build charges precisely the gen_a and H(pk) blocks
//     the hot path no longer pays, so the paper-faithful Table II
//     columns are provably unchanged by the amortization.
//  3. Amortization — a warmed KemService performs zero seed expansions
//     per request (counter-pinned via lac::gen_a_expansions()).
#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/status.h"
#include "lac/context.h"
#include "lac/gen_a.h"
#include "lac/kem.h"
#include "service/service.h"

namespace lacrv::lac {
namespace {

hash::Seed seed_from(u8 tag) {
  hash::Seed s{};
  s[0] = tag;
  s[31] = static_cast<u8>(tag ^ 0x5a);
  return s;
}

/// Every (params, backend) configuration the scheme ships: the paper's
/// three levels plus the SHAKE variants, on the reference and optimized
/// backends.
std::vector<std::pair<const Params*, Backend>> all_configs() {
  std::vector<std::pair<const Params*, Backend>> configs;
  for (const Params* p : Params::all()) {
    configs.emplace_back(p, Backend::reference());
    configs.emplace_back(p, Backend::optimized());
  }
  for (const Params* p : Params::all_shake())
    configs.emplace_back(p, Backend::optimized());
  return configs;
}

TEST(KeyContext, CachedOperationsAreBitIdenticalToUncached) {
  for (const auto& [params, backend] : all_configs()) {
    const KemKeyPair keys = kem_keygen(*params, backend, seed_from(1));
    const KeyContext ctx = build_kem_context(*params, backend, keys);
    ASSERT_TRUE(ctx.has_secret);

    const hash::Seed entropy = seed_from(2);
    const EncapsResult plain = encapsulate(*params, backend, keys.pk, entropy);
    const EncapsResult cached = encapsulate(*params, backend, ctx, entropy);
    ASSERT_EQ(plain.ct.u, cached.ct.u) << params->name;
    ASSERT_EQ(plain.ct.v, cached.ct.v) << params->name;
    ASSERT_EQ(plain.key, cached.key) << params->name;

    const SharedKey dec_plain = decapsulate(*params, backend, keys, plain.ct);
    const SharedKey dec_cached = decapsulate(*params, backend, ctx, plain.ct);
    ASSERT_EQ(dec_plain, dec_cached) << params->name;
    ASSERT_EQ(dec_cached, plain.key) << params->name;
  }
}

TEST(KeyContext, ImplicitRejectionSurvivesTheContextPath) {
  const Params& params = Params::lac128();
  const Backend backend = Backend::optimized();
  const KemKeyPair keys = kem_keygen(params, backend, seed_from(3));
  const KeyContext ctx = build_kem_context(params, backend, keys);

  EncapsResult enc = encapsulate(params, backend, ctx, seed_from(4));
  enc.ct.v[0] ^= 0x0f;  // tamper -> FO comparison must fail identically
  const SharedKey plain = decapsulate(params, backend, keys, enc.ct);
  const SharedKey cached = decapsulate(params, backend, ctx, enc.ct);
  EXPECT_EQ(plain, cached);
  EXPECT_NE(cached, enc.key);

  const DecapsOutcome outcome =
      decapsulate_checked(params, backend, ctx, enc.ct);
  EXPECT_NE(outcome.status, Status::kOk);
  EXPECT_EQ(outcome.key, cached);
}

TEST(KeyContext, BuildPlusCachedOpEqualsUncachedOpExactly) {
  for (const auto& [params, backend] : all_configs()) {
    const KemKeyPair keys = kem_keygen(*params, backend, seed_from(5));
    CycleLedger build_ledger;
    const KeyContext ctx =
        build_kem_context(*params, backend, keys, &build_ledger);
    // The caller's ledger sees the whole build under one section.
    ASSERT_GT(ctx.build_cycles, 0u) << params->name;
    ASSERT_EQ(build_ledger.total(), ctx.build_cycles) << params->name;
    ASSERT_EQ(build_ledger.section("context_build"), ctx.build_cycles)
        << params->name;

    const hash::Seed entropy = seed_from(6);
    CycleLedger enc_plain, enc_cached;
    const EncapsResult enc =
        encapsulate(*params, backend, keys.pk, entropy, &enc_plain);
    encapsulate(*params, backend, ctx, entropy, &enc_cached);
    ASSERT_EQ(enc_plain.total(), enc_cached.total() + ctx.build_cycles)
        << params->name << ": encaps amortization leaks cycles";
    // The cached path must charge no seed expansion at all.
    ASSERT_EQ(enc_cached.section("gen_a"), 0u) << params->name;

    CycleLedger dec_plain, dec_cached;
    decapsulate(*params, backend, keys, enc.ct, &dec_plain);
    decapsulate(*params, backend, ctx, enc.ct, &dec_cached);
    ASSERT_EQ(dec_plain.total(), dec_cached.total() + ctx.build_cycles)
        << params->name << ": decaps amortization leaks cycles";
    ASSERT_EQ(dec_cached.section("gen_a"), 0u) << params->name;
  }
}

TEST(KeyContext, EncapsOnlyContextCarriesNoSecret) {
  const Params& params = Params::lac192();
  const Backend backend = Backend::reference();
  const KemKeyPair keys = kem_keygen(params, backend, seed_from(7));
  const KeyContext ctx = build_key_context(params, backend, keys.pk);
  EXPECT_FALSE(ctx.has_secret);
  EXPECT_TRUE(ctx.s.empty());
  EXPECT_TRUE(ctx.s_plus.empty() && ctx.s_minus.empty());

  const EncapsResult enc = encapsulate(params, backend, ctx, seed_from(8));
  EXPECT_EQ(decapsulate(params, backend, keys, enc.ct), enc.key);
}

TEST(KeyContext, SparseSecretIndicesMatchTheTernary) {
  const Params& params = Params::lac256();
  const Backend backend = Backend::reference();
  const KemKeyPair keys = kem_keygen(params, backend, seed_from(9));
  const KeyContext ctx = build_kem_context(params, backend, keys);
  ASSERT_EQ(ctx.s.size(), params.n);
  std::size_t plus = 0, minus = 0;
  for (std::size_t j = 0; j < ctx.s.size(); ++j) {
    if (ctx.s[j] == 1) ++plus;
    if (ctx.s[j] == -1) ++minus;
  }
  EXPECT_EQ(ctx.s_plus.size(), plus);
  EXPECT_EQ(ctx.s_minus.size(), minus);
  for (u16 j : ctx.s_plus) EXPECT_EQ(ctx.s[j], 1) << "j=" << j;
  for (u16 j : ctx.s_minus) EXPECT_EQ(ctx.s[j], -1) << "j=" << j;
}

// ---- ContextCache ----------------------------------------------------------

TEST(ContextCache, SecondLookupHitsWithoutRebuilding) {
  const Params& params = Params::lac128();
  const Backend backend = Backend::optimized();
  const KemKeyPair keys = kem_keygen(params, backend, seed_from(10));

  ContextCache cache(4);
  const auto first = cache.get_or_build(params, backend, keys);
  const auto second = cache.get_or_build(params, backend, keys);
  EXPECT_EQ(first.get(), second.get());  // shared, not rebuilt
  EXPECT_EQ(cache.builds().load(), 1u);
  EXPECT_EQ(cache.hits().load(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ContextCache, SecretBearingEntryServesSecretlessLookups) {
  const Params& params = Params::lac128();
  const Backend backend = Backend::optimized();
  const KemKeyPair keys = kem_keygen(params, backend, seed_from(11));

  ContextCache cache(4);
  const auto full = cache.get_or_build(params, backend, keys);
  const auto pk_only = cache.get_or_build(params, backend, keys.pk);
  EXPECT_EQ(full.get(), pk_only.get());
  EXPECT_EQ(cache.builds().load(), 1u);
  EXPECT_EQ(cache.hits().load(), 1u);
}

TEST(ContextCache, SecretlessEntryIsSupersededBySecretBearingBuild) {
  const Params& params = Params::lac128();
  const Backend backend = Backend::optimized();
  const KemKeyPair keys = kem_keygen(params, backend, seed_from(12));

  ContextCache cache(4);
  const auto pk_only = cache.get_or_build(params, backend, keys.pk);
  EXPECT_FALSE(pk_only->has_secret);
  // A decaps lookup cannot be served by the secretless entry: it builds
  // the full context and replaces the stale one instead of duplicating.
  const auto full = cache.get_or_build(params, backend, keys);
  EXPECT_TRUE(full->has_secret);
  EXPECT_EQ(cache.builds().load(), 2u);
  EXPECT_EQ(cache.size(), 1u);
  // From now on both lookup flavours hit the secret-bearing entry.
  EXPECT_EQ(cache.get_or_build(params, backend, keys.pk).get(), full.get());
}

TEST(ContextCache, EvictsLeastRecentlyUsedAtCapacity) {
  const Params& params = Params::lac128();
  const Backend backend = Backend::optimized();
  ContextCache cache(2);
  const KemKeyPair k1 = kem_keygen(params, backend, seed_from(13));
  const KemKeyPair k2 = kem_keygen(params, backend, seed_from(14));
  const KemKeyPair k3 = kem_keygen(params, backend, seed_from(15));

  cache.get_or_build(params, backend, k1);
  cache.get_or_build(params, backend, k2);
  cache.get_or_build(params, backend, k1);  // k1 now MRU, k2 LRU
  cache.get_or_build(params, backend, k3);  // evicts k2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions().load(), 1u);
  cache.get_or_build(params, backend, k1);  // still cached
  EXPECT_EQ(cache.builds().load(), 3u);
  cache.get_or_build(params, backend, k2);  // rebuilt after eviction
  EXPECT_EQ(cache.builds().load(), 4u);
}

TEST(ContextCache, ChecksumCoversPublicAndSecretFields) {
  const Params& params = Params::lac128();
  const Backend backend = Backend::optimized();
  const KemKeyPair keys = kem_keygen(params, backend, seed_from(21));

  KeyContext ctx = build_kem_context(params, backend, keys);
  EXPECT_TRUE(context_integrity_ok(ctx));

  // One flipped bit anywhere in the covered set must be caught.
  ctx.a[ctx.a.size() / 2] ^= 0x01;
  EXPECT_FALSE(context_integrity_ok(ctx));
  ctx.a[ctx.a.size() / 2] ^= 0x01;
  EXPECT_TRUE(context_integrity_ok(ctx));

  ctx.s[0] = static_cast<i8>(ctx.s[0] ^ 1);
  EXPECT_FALSE(context_integrity_ok(ctx));
  ctx.s[0] = static_cast<i8>(ctx.s[0] ^ 1);

  ctx.pk_hash[3] ^= 0x80;
  EXPECT_FALSE(context_integrity_ok(ctx));
}

TEST(ContextCache, CorruptedCachedEntryIsDetectedAndRebuilt) {
  const Params& params = Params::lac128();
  const Backend backend = Backend::optimized();
  const KemKeyPair keys = kem_keygen(params, backend, seed_from(22));

  ContextCache cache(4);
  const auto first = cache.get_or_build(params, backend, keys);
  ASSERT_EQ(cache.builds().load(), 1u);
  ASSERT_TRUE(context_integrity_ok(*first));

  // Model a memory fault against the cached (shared, nominally
  // immutable) entry, then check it out again: the checksum must veto
  // the hit and the cache must rebuild instead of serving poison.
  ASSERT_TRUE(cache.corrupt_for_test(keys.pk.seed_a, params.n));
  EXPECT_FALSE(context_integrity_ok(*first));

  const auto rebuilt = cache.get_or_build(params, backend, keys);
  EXPECT_EQ(cache.corruptions().load(), 1u);
  EXPECT_EQ(cache.builds().load(), 2u);
  EXPECT_NE(rebuilt.get(), first.get());
  EXPECT_TRUE(context_integrity_ok(*rebuilt));

  // The rebuilt context serves bit-identically to a fresh build.
  const hash::Seed entropy = seed_from(23);
  const EncapsResult via_cache =
      encapsulate(params, backend, *rebuilt, entropy);
  const EncapsResult plain = encapsulate(params, backend, keys.pk, entropy);
  EXPECT_EQ(via_cache.ct.u, plain.ct.u);
  EXPECT_EQ(via_cache.ct.v, plain.ct.v);
  EXPECT_EQ(via_cache.key, plain.key);
}

TEST(ContextCache, ConcurrentChurnUnderCapacityPressure) {
  // Four threads hammer a capacity-2 cache with five distinct keys:
  // every checkout races hits, builds, evictions and the checksum
  // validation path. The invariants: every returned context passes its
  // integrity check and belongs to the requested key, and the hit/build
  // accounting adds up exactly.
  const Params& params = Params::lac128();
  const Backend backend = Backend::optimized();
  constexpr std::size_t kKeys = 5;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kItersPerThread = 40;

  std::vector<KemKeyPair> keys;
  for (std::size_t k = 0; k < kKeys; ++k)
    keys.push_back(
        kem_keygen(params, backend, seed_from(static_cast<u8>(30 + k))));

  ContextCache cache(2);
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kItersPerThread; ++i) {
        const KemKeyPair& key = keys[(t * 3 + i) % kKeys];
        const auto ctx = cache.get_or_build(params, backend, key);
        if (!ctx || !context_integrity_ok(*ctx) ||
            ctx->pk.seed_a != key.pk.seed_a || !ctx->has_secret)
          violations.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_LE(cache.size(), 2u);
  EXPECT_EQ(cache.hits().load() + cache.builds().load(),
            kThreads * kItersPerThread);
  EXPECT_EQ(cache.corruptions().load(), 0u);
}

TEST(ContextCache, DistinguishesParameterSetsUnderOneSeed) {
  // Same seed_a but different (n, prg) must not alias.
  const Backend backend = Backend::optimized();
  const hash::Seed master = seed_from(16);
  const KemKeyPair k128 = kem_keygen(Params::lac128(), backend, master);
  const KemKeyPair k192 = kem_keygen(Params::lac192(), backend, master);

  ContextCache cache(4);
  const auto c128 = cache.get_or_build(Params::lac128(), backend, k128);
  const auto c192 = cache.get_or_build(Params::lac192(), backend, k192);
  EXPECT_NE(c128.get(), c192.get());
  EXPECT_EQ(c128->a.size(), Params::lac128().n);
  EXPECT_EQ(c192->a.size(), Params::lac192().n);
  EXPECT_EQ(cache.builds().load(), 2u);
}

}  // namespace
}  // namespace lacrv::lac

namespace lacrv::service {
namespace {

hash::Seed entropy_of(u8 tag) {
  hash::Seed s{};
  s[0] = tag;
  s[1] = 0xc3;
  return s;
}

ServiceConfig quiet_config() {
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 64;
  cfg.enable_prober = false;
  return cfg;
}

TEST(KemServiceContext, WarmedServicePerformsZeroSeedExpansions) {
  KemService svc(quiet_config());
  // Worker start-up built the service key's context (one build, shared
  // by every rig); everything after this snapshot is steady state.
  const u64 warm = lac::gen_a_expansions();

  constexpr std::size_t kRequests = 16;
  std::vector<std::future<KemResponse>> encs;
  for (std::size_t i = 0; i < kRequests; ++i)
    encs.push_back(svc.submit({OpKind::kEncaps,
                               entropy_of(static_cast<u8>(i)),
                               {},
                               kNoDeadline}));
  std::vector<lac::EncapsResult> done;
  for (auto& f : encs) {
    KemResponse r = f.get();
    ASSERT_EQ(r.status, Status::kOk);
    done.push_back(r.encaps);
  }
  for (const lac::EncapsResult& e : done) {
    KemRequest req;
    req.op = OpKind::kDecaps;
    req.ct = e.ct;
    KemResponse r = svc.submit(std::move(req)).get();
    ASSERT_EQ(r.status, Status::kOk);
    ASSERT_EQ(r.key, e.key);
  }
  // The amortization claim, counter-pinned: 16 encaps + 16 decaps (each
  // decaps internally re-encrypts) and not a single GenA expansion.
  EXPECT_EQ(lac::gen_a_expansions(), warm);

  const CountersSnapshot s = svc.counters();
  EXPECT_EQ(s.context_builds, 1u);
  EXPECT_GE(s.context_hits, quiet_config().workers - 1);
}

TEST(KemServiceContext, DisabledContextMatchesEnabledBitForBit) {
  ServiceConfig with = quiet_config();
  ServiceConfig without = quiet_config();
  without.use_key_context = false;
  without.max_batch = 1;
  // Same key_seed -> same service keypair in both services.
  KemService a(with), b(without);
  EXPECT_EQ(b.counters().context_builds, 0u);

  const u64 before = lac::gen_a_expansions();
  KemResponse ra =
      a.submit({OpKind::kEncaps, entropy_of(7), {}, kNoDeadline}).get();
  KemResponse rb =
      b.submit({OpKind::kEncaps, entropy_of(7), {}, kNoDeadline}).get();
  ASSERT_EQ(ra.status, Status::kOk);
  ASSERT_EQ(rb.status, Status::kOk);
  EXPECT_EQ(ra.encaps.ct.u, rb.encaps.ct.u);
  EXPECT_EQ(ra.encaps.ct.v, rb.encaps.ct.v);
  EXPECT_EQ(ra.encaps.key, rb.encaps.key);
  // Only the paper-faithful service expanded the seed.
  EXPECT_EQ(lac::gen_a_expansions(), before + 1);
}

TEST(KemServiceBatch, SubmitBatchPreservesOrderAndKeyAgreement) {
  KemService svc(quiet_config());
  constexpr std::size_t kBurst = 12;
  std::vector<KemRequest> burst;
  for (std::size_t i = 0; i < kBurst; ++i)
    burst.push_back({OpKind::kEncaps, entropy_of(static_cast<u8>(0x40 + i)),
                     {}, kNoDeadline});
  auto futures = svc.submit_batch(std::move(burst));
  ASSERT_EQ(futures.size(), kBurst);

  std::vector<lac::EncapsResult> encs;
  for (auto& f : futures) {
    KemResponse r = f.get();
    ASSERT_EQ(r.status, Status::kOk);
    encs.push_back(r.encaps);
  }
  // Futures map to requests in order: resubmitting the same entropies
  // one at a time reproduces the same ciphertexts positionally.
  for (std::size_t i = 0; i < kBurst; ++i) {
    KemResponse r = svc.submit({OpKind::kEncaps,
                                entropy_of(static_cast<u8>(0x40 + i)),
                                {},
                                kNoDeadline})
                        .get();
    ASSERT_EQ(r.status, Status::kOk);
    ASSERT_EQ(r.encaps.ct.u, encs[i].ct.u) << "position " << i;
  }

  std::vector<KemRequest> dec_burst;
  for (const lac::EncapsResult& e : encs) {
    KemRequest req;
    req.op = OpKind::kDecaps;
    req.ct = e.ct;
    dec_burst.push_back(std::move(req));
  }
  auto decs = svc.submit_batch(std::move(dec_burst));
  for (std::size_t i = 0; i < decs.size(); ++i) {
    KemResponse r = decs[i].get();
    ASSERT_EQ(r.status, Status::kOk);
    ASSERT_EQ(r.key, encs[i].key) << "position " << i;
  }

  const CountersSnapshot s = svc.counters();
  EXPECT_GE(s.batch_submissions, 2u);
  EXPECT_GE(s.micro_batches, 1u);
}

TEST(KemServiceBatch, OverflowingBatchRejectsExactlyTheTail) {
  ServiceConfig cfg = quiet_config();
  cfg.workers = 1;
  cfg.queue_capacity = 4;
  KemService svc(cfg);

  // Park the single worker so queue occupancy is deterministic.
  std::promise<void> started;
  std::promise<void> open;
  auto gate = svc.submit_job([&](lac::Backend&) {
    started.set_value();
    open.get_future().wait();
    KemResponse r;
    r.status = Status::kOk;
    return r;
  });
  started.get_future().wait();

  std::vector<KemRequest> burst;
  for (std::size_t i = 0; i < cfg.queue_capacity + 3; ++i)
    burst.push_back({OpKind::kEncaps, entropy_of(static_cast<u8>(0x60 + i)),
                     {}, kNoDeadline});
  auto futures = svc.submit_batch(std::move(burst));
  ASSERT_EQ(futures.size(), cfg.queue_capacity + 3);

  // The tail that did not fit resolves immediately with kOverloaded.
  for (std::size_t i = cfg.queue_capacity; i < futures.size(); ++i)
    EXPECT_EQ(futures[i].get().status, Status::kOverloaded) << "i=" << i;

  open.set_value();
  ASSERT_EQ(gate.get().status, Status::kOk);
  for (std::size_t i = 0; i < cfg.queue_capacity; ++i)
    EXPECT_EQ(futures[i].get().status, Status::kOk) << "i=" << i;
}

TEST(KemServiceBatch, BatchAfterStopResolvesUnavailable) {
  KemService svc(quiet_config());
  svc.stop();
  std::vector<KemRequest> burst(3);
  auto futures = svc.submit_batch(std::move(burst));
  ASSERT_EQ(futures.size(), 3u);
  for (auto& f : futures)
    EXPECT_EQ(f.get().status, Status::kUnavailable);
}

}  // namespace
}  // namespace lacrv::service
