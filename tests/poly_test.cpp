#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "poly/karatsuba.h"
#include "poly/ring.h"
#include "poly/split_mul.h"

namespace lacrv::poly {
namespace {

Ternary random_ternary(Xoshiro256& rng, std::size_t n) {
  Ternary t(n);
  for (auto& v : t) v = static_cast<i8>(static_cast<int>(rng.next_below(3)) - 1);
  return t;
}

Coeffs random_coeffs(Xoshiro256& rng, std::size_t n) {
  Coeffs c(n);
  for (auto& v : c) v = static_cast<u8>(rng.next_below(kQ));
  return c;
}

TEST(ModArith, AddSubRoundTrip) {
  for (int a = 0; a < kQ; ++a)
    for (int b = 0; b < kQ; ++b) {
      const u8 s = add_mod(static_cast<u8>(a), static_cast<u8>(b));
      ASSERT_LT(s, kQ);
      ASSERT_EQ(sub_mod(s, static_cast<u8>(b)), a);
    }
}

TEST(ModArith, BarrettMatchesOperatorPercentExhaustively) {
  for (u32 x = 0; x < (1u << 16); ++x)
    ASSERT_EQ(barrett_reduce(x), x % kQ) << "x=" << x;
}

TEST(PolyOps, AddSubInverse) {
  Xoshiro256 rng(1);
  const Coeffs a = random_coeffs(rng, 64), b = random_coeffs(rng, 64);
  EXPECT_EQ(sub(add(a, b), b), a);
}

TEST(PolyOps, FromTernaryMapsMinusOne) {
  const Ternary t = {1, 0, -1};
  const Coeffs c = from_ternary(t);
  EXPECT_EQ(c, (Coeffs{1, 0, 250}));
  EXPECT_EQ(weight(t), 2u);
}

// Schoolbook model used as an independent oracle for all multipliers:
// plain Eq. (1) evaluation.
Coeffs oracle_mul(const Coeffs& b, const Ternary& s, bool negacyclic) {
  const std::size_t n = b.size();
  Coeffs c(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    i32 acc = 0;
    for (std::size_t j = 0; j <= i; ++j) acc += s[j] * b[i - j];
    for (std::size_t j = i + 1; j < n; ++j) {
      const i32 term = s[j] * b[n + i - j];
      acc += negacyclic ? -term : term;
    }
    acc %= kQ;
    if (acc < 0) acc += kQ;
    c[i] = static_cast<u8>(acc);
  }
  return c;
}

class MulAgreement : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(MulAgreement, AllMultipliersMatchOracle) {
  const auto [n, negacyclic] = GetParam();
  Xoshiro256 rng(n * 2 + negacyclic);
  for (int trial = 0; trial < 10; ++trial) {
    const Ternary s = random_ternary(rng, n);
    const Coeffs b = random_coeffs(rng, n);
    const Coeffs expected = oracle_mul(b, s, negacyclic);
    ASSERT_EQ(mul_ref(b, s, negacyclic), expected);
    ASSERT_EQ(mul_sparse(b, s, negacyclic), expected);
    ASSERT_EQ(mul_ter_sw(s, b, negacyclic), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndModes, MulAgreement,
    ::testing::Combine(::testing::Values(4, 8, 16, 64, 512),
                       ::testing::Bool()),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_negacyclic" : "_cyclic");
    });

TEST(MulRef, ChargesReferenceCycleModel) {
  Xoshiro256 rng(3);
  const std::size_t n = 512;
  CycleLedger ledger;
  mul_ref(random_coeffs(rng, n), random_ternary(rng, n), true, &ledger);
  // n outer rows x (12 + 9n): the Table II reference magnitude (~2.38M).
  EXPECT_EQ(ledger.total(), n * (12 + 9 * n));
  EXPECT_NEAR(static_cast<double>(ledger.total()), 2381843.0, 25000.0);
}

TEST(MulRef, N1024ChargeNearPaperValue) {
  Xoshiro256 rng(4);
  const std::size_t n = 1024;
  CycleLedger ledger;
  mul_ref(random_coeffs(rng, n), random_ternary(rng, n), true, &ledger);
  EXPECT_NEAR(static_cast<double>(ledger.total()), 9482261.0, 50000.0);
}

TEST(MulTerSw, ReusedRotationBufferStaysExactOnSparseOperands) {
  // Regression for the per-cycle buffer allocation fix: the rotation
  // buffer is now rewritten in place each cntr step, so any lane the
  // rewrite skipped would leak the previous cycle's value. Sparse `a`
  // maximizes the ai == 0 copy-through lanes that a partial rewrite
  // would corrupt.
  Xoshiro256 rng(41);
  for (const bool negacyclic : {false, true}) {
    for (const std::size_t n : {8u, 64u, 512u}) {
      Ternary a(n, 0);
      a[0] = 1;
      a[n / 2] = -1;
      a[n - 1] = 1;
      const Coeffs b = random_coeffs(rng, n);
      ASSERT_EQ(mul_ter_sw(a, b, negacyclic), oracle_mul(b, a, negacyclic))
          << "n=" << n << " negacyclic=" << negacyclic;
    }
  }
}

TEST(MulTerSw, RepeatedCallsAreDeterministic) {
  Xoshiro256 rng(42);
  const Ternary a = random_ternary(rng, 512);
  const Coeffs b = random_coeffs(rng, 512);
  const Coeffs first = mul_ter_sw(a, b, true);
  for (int i = 0; i < 3; ++i) ASSERT_EQ(mul_ter_sw(a, b, true), first);
}

/// Split a ternary polynomial into the sparse index lists
/// mul_ref_indexed consumes (the KeyContext precomputation).
void split_indices(const Ternary& s, std::vector<u16>& plus,
                   std::vector<u16>& minus) {
  for (std::size_t j = 0; j < s.size(); ++j) {
    if (s[j] == 1) plus.push_back(static_cast<u16>(j));
    if (s[j] == -1) minus.push_back(static_cast<u16>(j));
  }
}

TEST(MulRefIndexed, MatchesMulRefBitForBit) {
  Xoshiro256 rng(43);
  for (const bool negacyclic : {false, true}) {
    for (const std::size_t n : {16u, 512u, 1024u}) {
      const Ternary s = random_ternary(rng, n);
      const Coeffs b = random_coeffs(rng, n);
      std::vector<u16> plus, minus;
      split_indices(s, plus, minus);
      ASSERT_EQ(mul_ref_indexed(b, plus, minus, negacyclic),
                mul_ref(b, s, negacyclic))
          << "n=" << n << " negacyclic=" << negacyclic;
    }
  }
}

TEST(MulRefIndexed, ChargesTheDenseReferenceModel) {
  // The sparse form is a memory-layout optimization, not a cycle-count
  // one: the paper's reference multiplier walks all n rows regardless,
  // so the indexed variant must charge the identical dense model.
  Xoshiro256 rng(44);
  const std::size_t n = 512;
  const Ternary s = random_ternary(rng, n);
  const Coeffs b = random_coeffs(rng, n);
  std::vector<u16> plus, minus;
  split_indices(s, plus, minus);
  CycleLedger dense, indexed;
  mul_ref(b, s, true, &dense);
  mul_ref_indexed(b, plus, minus, true, &indexed);
  EXPECT_EQ(indexed.total(), dense.total());
}

TEST(MulRefIndexed, RejectsOutOfRangeIndex) {
  const Coeffs b(16, 1);
  const std::vector<u16> bad = {16};  // one past the end
  EXPECT_THROW(mul_ref_indexed(b, bad, {}, true), CheckError);
  EXPECT_THROW(mul_ref_indexed(b, {}, bad, true), CheckError);
}

TEST(SplitMul, LowLevelMatchesFullProduct) {
  Xoshiro256 rng(5);
  const Ternary a = random_ternary(rng, 512);
  const Coeffs b = random_coeffs(rng, 512);
  const Coeffs got = split_mul_low(a, b, software_mul_ter());
  const Coeffs full = mul_general_full(from_ternary(a), b);  // 1023 coeffs
  ASSERT_EQ(got.size(), 1024u);
  for (std::size_t i = 0; i < full.size(); ++i)
    ASSERT_EQ(got[i], full[i]) << "coeff " << i;
  EXPECT_EQ(got[1023], 0);
}

TEST(SplitMul, HighLevelMatchesNegacyclicOracle) {
  Xoshiro256 rng(6);
  const Ternary a = random_ternary(rng, 1024);
  const Coeffs b = random_coeffs(rng, 1024);
  EXPECT_EQ(split_mul_high(a, b, software_mul_ter()),
            oracle_mul(b, a, /*negacyclic=*/true));
}

TEST(SplitMul, MulWithUnitDispatchesBySize) {
  Xoshiro256 rng(7);
  {
    const Ternary a = random_ternary(rng, 512);
    const Coeffs b = random_coeffs(rng, 512);
    EXPECT_EQ(mul_with_unit(a, b, software_mul_ter()),
              oracle_mul(b, a, true));
  }
  {
    const Ternary a = random_ternary(rng, 1024);
    const Coeffs b = random_coeffs(rng, 1024);
    EXPECT_EQ(mul_with_unit(a, b, software_mul_ter()),
              oracle_mul(b, a, true));
  }
  const Ternary bad(100, 0);
  const Coeffs badb(100, 0);
  EXPECT_ANY_THROW(mul_with_unit(bad, badb, software_mul_ter()));
}

TEST(SplitMul, UnitOnlySeesLength512PositiveConvolutions) {
  // Algorithm 2 must drive the unit exclusively with zero-padded length-256
  // operands in cyclic mode — the whole point of the two-level split.
  Xoshiro256 rng(8);
  const Ternary a = random_ternary(rng, 1024);
  const Coeffs b = random_coeffs(rng, 1024);
  int calls = 0;
  MulTer512 spy = [&](const Ternary& ta, const Coeffs& tb, bool negacyclic,
                      CycleLedger*) {
    ++calls;
    EXPECT_EQ(ta.size(), 512u);
    EXPECT_EQ(tb.size(), 512u);
    EXPECT_FALSE(negacyclic);
    for (std::size_t i = 256; i < 512; ++i) {
      EXPECT_EQ(ta[i], 0);
      EXPECT_EQ(tb[i], 0);
    }
    return mul_ter_sw(ta, tb, negacyclic);
  };
  split_mul_high(a, b, spy);
  EXPECT_EQ(calls, 16);
}


class GenericSplit
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GenericSplit, MatchesNegacyclicOracleForAnyUnitLength) {
  const auto [n, unit_len] = GetParam();
  Xoshiro256 rng(static_cast<u64>(n) * 31 + static_cast<u64>(unit_len));
  const Ternary a = random_ternary(rng, static_cast<std::size_t>(n));
  const Coeffs b = random_coeffs(rng, static_cast<std::size_t>(n));
  const Coeffs got = mul_negacyclic_with_unit(
      a, b, static_cast<std::size_t>(unit_len), software_mul_ter());
  ASSERT_EQ(got, oracle_mul(b, a, true));
}

INSTANTIATE_TEST_SUITE_P(
    SizeByUnit, GenericSplit,
    ::testing::Values(std::make_tuple(512, 512), std::make_tuple(512, 256),
                      std::make_tuple(512, 1024), std::make_tuple(1024, 512),
                      std::make_tuple(1024, 256), std::make_tuple(1024, 2048),
                      std::make_tuple(256, 128), std::make_tuple(128, 512)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_L" +
             std::to_string(std::get<1>(info.param));
    });

TEST(GenericSplit, FullProductMatchesSchoolbook) {
  Xoshiro256 rng(77);
  for (std::size_t m : {64u, 128u, 512u}) {
    const Ternary a = random_ternary(rng, m);
    const Coeffs b = random_coeffs(rng, m);
    const Coeffs got =
        full_product_with_unit(a, b, 256, software_mul_ter());
    const Coeffs expected = mul_general_full(from_ternary(a), b);
    ASSERT_EQ(got.size(), 2 * m);
    for (std::size_t i = 0; i < expected.size(); ++i)
      ASSERT_EQ(got[i], expected[i]) << "m=" << m << " i=" << i;
    ASSERT_EQ(got.back(), 0);
  }
}

TEST(GenericSplit, RejectsDegenerateUnitLengthsAtEntry) {
  const Ternary a(64, 1);
  const Coeffs b(64, 1);
  // unit_len = 0 used to slip through the classic power-of-two test
  // (0 & -1 == 0) and recurse forever; 1 and non-powers are equally
  // meaningless unit shapes.
  for (const std::size_t bad : {0u, 1u, 3u, 24u})
    EXPECT_THROW(full_product_with_unit(a, b, bad, software_mul_ter()),
                 CheckError)
        << "unit_len=" << bad;
}

TEST(GenericSplit, RejectsOddDescentBeforeTouchingTheUnit) {
  // m = 12 with a length-4 unit reaches an odd m = 3 two levels down the
  // recursion; the entry-point validation must catch it with the unit
  // never invoked.
  const Ternary a(12, 1);
  const Coeffs b(12, 1);
  int calls = 0;
  MulTer512 spy = [&](const Ternary& ta, const Coeffs& tb, bool negacyclic,
                      CycleLedger*) {
    ++calls;
    return mul_ter_sw(ta, tb, negacyclic);
  };
  EXPECT_THROW(full_product_with_unit(a, b, 4, spy), CheckError);
  EXPECT_EQ(calls, 0);
  // The same length splits fine against a unit it reaches evenly.
  const Coeffs got = full_product_with_unit(a, b, 8, spy);
  EXPECT_GT(calls, 0);
  const Coeffs expected = mul_general_full(from_ternary(a), b);  // 2m-1 coeffs
  ASSERT_EQ(got.size(), 2 * a.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    ASSERT_EQ(got[i], expected[i]) << "i=" << i;
  EXPECT_EQ(got.back(), 0);
}

TEST(GenericSplit, AgreesWithAlgorithm1SpecialCase) {
  // n=1024 with a length-512 unit is exactly the paper's configuration;
  // the generic splitter and Algorithms 1+2 must agree bit for bit.
  Xoshiro256 rng(78);
  const Ternary a = random_ternary(rng, 1024);
  const Coeffs b = random_coeffs(rng, 1024);
  EXPECT_EQ(mul_negacyclic_with_unit(a, b, 512, software_mul_ter()),
            split_mul_high(a, b, software_mul_ter()));
}

TEST(Karatsuba, MatchesSchoolbookFullProduct) {
  Xoshiro256 rng(9);
  for (std::size_t n : {2u, 8u, 64u, 256u}) {
    const Coeffs a = random_coeffs(rng, n), b = random_coeffs(rng, n);
    ASSERT_EQ(karatsuba_full(a, b, 4), mul_general_full(a, b)) << "n=" << n;
  }
}

TEST(Karatsuba, NegacyclicMatchesTernaryOracleWhenOperandTernary) {
  Xoshiro256 rng(10);
  const Ternary s = random_ternary(rng, 256);
  const Coeffs b = random_coeffs(rng, 256);
  EXPECT_EQ(mul_general_negacyclic(from_ternary(s), b),
            oracle_mul(b, s, true));
}

TEST(Karatsuba, RejectsNonPowerOfTwo) {
  const Coeffs a(24, 1), b(24, 1);
  EXPECT_ANY_THROW(karatsuba_full(a, b, 4));
}

TEST(ReduceNegacyclic, WrapsWithSignFlip) {
  // full = 1 + x^n  ->  reduces to 1 - 1 = 0 at coefficient 0.
  const std::size_t n = 8;
  Coeffs full(2 * n - 1, 0);
  full[0] = 1;
  full[n] = 3;
  const Coeffs red = reduce_negacyclic(full, n);
  EXPECT_EQ(red[0], sub_mod(1, 3));
  for (std::size_t i = 1; i < n; ++i) EXPECT_EQ(red[i], 0);
}

}  // namespace
}  // namespace lacrv::poly
