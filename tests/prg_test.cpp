#include <gtest/gtest.h>

#include <array>
#include <numeric>

#include "hash/prg.h"

namespace lacrv::hash {
namespace {

Seed seed_of(u8 fill) {
  Seed s;
  s.fill(fill);
  return s;
}

TEST(Sha256Prg, DeterministicForSeed) {
  Sha256Prg a(seed_of(1)), b(seed_of(1)), c(seed_of(2));
  Bytes xa(100), xb(100), xc(100);
  a.fill(xa.data(), xa.size());
  b.fill(xb.data(), xb.size());
  c.fill(xc.data(), xc.size());
  EXPECT_EQ(xa, xb);
  EXPECT_NE(xa, xc);
}

TEST(Sha256Prg, FirstBlockIsSha256OfSeedAndCounter) {
  const Seed s = seed_of(7);
  Sha256Prg prg(s);
  Bytes first(kSha256DigestSize);
  prg.fill(first.data(), first.size());

  Sha256 h;
  const u8 ctr0[4] = {0, 0, 0, 0};
  h.update(ByteView(s.data(), s.size()));
  h.update(ByteView(ctr0, 4));
  const Digest expected = h.finalize();
  EXPECT_TRUE(std::equal(first.begin(), first.end(), expected.begin()));
}

TEST(Sha256Prg, CompressionAccountingGrowsPerBlock) {
  Sha256Prg prg(seed_of(3));
  EXPECT_EQ(prg.compressions(), 0u);
  prg.next_byte();
  const u64 per_block = prg.compressions();
  EXPECT_GT(per_block, 0u);
  Bytes buf(kSha256DigestSize);  // finish this block, trigger exactly one more
  prg.fill(buf.data(), buf.size());
  EXPECT_EQ(prg.compressions(), 2 * per_block);
}

TEST(Sha256Prg, NextBelowRangeAndDistribution) {
  Sha256Prg prg(seed_of(9));
  std::array<int, 251> histogram{};
  constexpr int kDraws = 251 * 40;
  for (int i = 0; i < kDraws; ++i) {
    const u32 v = prg.next_below(251);
    ASSERT_LT(v, 251u);
    ++histogram[v];
  }
  // Every residue should appear, and no residue should dominate: a crude
  // uniformity check adequate for a deterministic PRG smoke test.
  const auto [lo, hi] = std::minmax_element(histogram.begin(), histogram.end());
  EXPECT_GT(*lo, 0);
  EXPECT_LT(*hi, 40 * 4);
}

TEST(Sha256Prg, NextBelowLargeBound) {
  Sha256Prg prg(seed_of(5));
  for (int i = 0; i < 100; ++i) EXPECT_LT(prg.next_below(1000003), 1000003u);
}

TEST(Sha256Prg, BytesDrawnCountsRejectedBytes) {
  Sha256Prg prg(seed_of(11));
  const u64 before = prg.bytes_drawn();
  prg.next_below(251);
  EXPECT_GE(prg.bytes_drawn(), before + 1);
}

TEST(Sha256Prg, WordsAreLittleEndianOfBytes) {
  Sha256Prg a(seed_of(13)), b(seed_of(13));
  const u32 w = a.next_u32();
  u32 expected = 0;
  for (int i = 0; i < 4; ++i) expected |= static_cast<u32>(b.next_byte()) << (8 * i);
  EXPECT_EQ(w, expected);
}

}  // namespace
}  // namespace lacrv::hash
