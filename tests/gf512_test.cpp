#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "gf/gf512.h"

namespace lacrv::gf {
namespace {

TEST(Gf512, AlphaPowersMatchPaperExamples) {
  // Sec. IV-B walks through the vector representation:
  //   alpha^9  = 1 + alpha^4        -> bits {0,4}
  //   alpha^10 = alpha + alpha^5    -> bits {1,5}
  //   alpha^11 = alpha^2 + alpha^6  -> bits {2,6}
  EXPECT_EQ(alpha_pow(9), (1u << 0) | (1u << 4));
  EXPECT_EQ(alpha_pow(10), (1u << 1) | (1u << 5));
  EXPECT_EQ(alpha_pow(11), (1u << 2) | (1u << 6));
}

TEST(Gf512, GroupOrderIs511) {
  EXPECT_EQ(alpha_pow(0), 1u);
  EXPECT_EQ(alpha_pow(511), 1u);  // alpha^(2^m - 1) = 1
  EXPECT_EQ(alpha_pow(512), alpha_pow(1));
}

TEST(Gf512, PowersAreDistinct) {
  std::array<bool, kFieldSize> seen{};
  for (u32 e = 0; e < kGroupOrder; ++e) {
    const Element x = alpha_pow(e);
    ASSERT_NE(x, 0u);
    ASSERT_FALSE(seen[x]) << "repeat at exponent " << e;
    seen[x] = true;
  }
}

TEST(Gf512, LogInvertsAlphaPow) {
  for (u32 e = 0; e < kGroupOrder; ++e) EXPECT_EQ(log(alpha_pow(e)), e);
}

TEST(Gf512, LogZeroSentinelIsOutOfBand) {
  // The log table stores kLogZeroSentinel for 0 (which has no discrete
  // log); it must be unreachable as a real exponent so a missed
  // zero-check can never masquerade as log(1) = 0, the value the old
  // table aliased.
  static_assert(kLogZeroSentinel >= kGroupOrder);
  for (u32 e = 0; e < kGroupOrder; ++e)
    ASSERT_NE(log(alpha_pow(e)), kLogZeroSentinel) << "e=" << e;
}

TEST(Gf512, ZeroHasNoLogOrInverse) {
  EXPECT_THROW(log(0), lacrv::CheckError);
  EXPECT_THROW(inv(0), lacrv::CheckError);
  EXPECT_THROW(log(kFieldSize), lacrv::CheckError);  // out of field too
}

TEST(Gf512, MulTableShortCircuitsZeroBeforeTheTable) {
  // Both multipliers must agree that 0 annihilates — mul_table never
  // consults the log table for a zero operand, so the sentinel entry is
  // unreachable through arithmetic.
  for (Element a = 0; a < kFieldSize; ++a) {
    ASSERT_EQ(mul_table(0, a), 0u);
    ASSERT_EQ(mul_table(a, 0), 0u);
  }
  EXPECT_EQ(pow(0, 3), 0u);
  EXPECT_EQ(pow(0, 0), 1u);  // empty product convention
}

TEST(Gf512, MultiplierFlavoursAgreeExhaustivelyOnSample) {
  lacrv::Xoshiro256 rng(2024);
  for (int i = 0; i < 20000; ++i) {
    const Element a = static_cast<Element>(rng.next_below(kFieldSize));
    const Element b = static_cast<Element>(rng.next_below(kFieldSize));
    ASSERT_EQ(mul_table(a, b), mul_shift_add(a, b))
        << "a=" << a << " b=" << b;
  }
}

TEST(Gf512, MulByZeroAndOne) {
  for (Element a = 0; a < kFieldSize; ++a) {
    EXPECT_EQ(mul_table(a, 0), 0u);
    EXPECT_EQ(mul_shift_add(a, 0), 0u);
    EXPECT_EQ(mul_table(a, 1), a);
    EXPECT_EQ(mul_shift_add(a, 1), a);
  }
}

TEST(Gf512, MulCommutesAndAssociates) {
  lacrv::Xoshiro256 rng(99);
  for (int i = 0; i < 5000; ++i) {
    const Element a = static_cast<Element>(rng.next_below(kFieldSize));
    const Element b = static_cast<Element>(rng.next_below(kFieldSize));
    const Element c = static_cast<Element>(rng.next_below(kFieldSize));
    ASSERT_EQ(mul_table(a, b), mul_table(b, a));
    ASSERT_EQ(mul_table(mul_table(a, b), c), mul_table(a, mul_table(b, c)));
  }
}

TEST(Gf512, DistributesOverAddition) {
  lacrv::Xoshiro256 rng(123);
  for (int i = 0; i < 5000; ++i) {
    const Element a = static_cast<Element>(rng.next_below(kFieldSize));
    const Element b = static_cast<Element>(rng.next_below(kFieldSize));
    const Element c = static_cast<Element>(rng.next_below(kFieldSize));
    ASSERT_EQ(mul_table(a, add(b, c)),
              add(mul_table(a, b), mul_table(a, c)));
  }
}

TEST(Gf512, InverseIsCorrectForAllNonzero) {
  for (Element a = 1; a < kFieldSize; ++a)
    ASSERT_EQ(mul_table(a, inv(a)), 1u) << "a=" << a;
  EXPECT_ANY_THROW(inv(0));
  EXPECT_ANY_THROW(log(0));
}

TEST(Gf512, PowMatchesRepeatedMultiplication) {
  const Element x = alpha_pow(5);
  Element acc = 1;
  for (u32 e = 0; e < 30; ++e) {
    EXPECT_EQ(pow(x, e), acc);
    acc = mul_table(acc, x);
  }
  EXPECT_EQ(pow(0, 0), 1u);
  EXPECT_EQ(pow(0, 5), 0u);
}

TEST(Gf512, FrobeniusSquaringIsLinear) {
  // In characteristic 2, (a + b)^2 = a^2 + b^2 — a strong structural check.
  lacrv::Xoshiro256 rng(7);
  for (int i = 0; i < 5000; ++i) {
    const Element a = static_cast<Element>(rng.next_below(kFieldSize));
    const Element b = static_cast<Element>(rng.next_below(kFieldSize));
    ASSERT_EQ(pow(add(a, b), 2), add(pow(a, 2), pow(b, 2)));
  }
}

TEST(Gf512, PolyEvalHorner) {
  // f(x) = 1 + x + x^3; f(alpha) = 1 ^ alpha ^ alpha^3.
  const std::array<Element, 4> coeffs = {1, 1, 0, 1};
  const Element expected =
      add(add(Element{1}, alpha_pow(1)), alpha_pow(3));
  EXPECT_EQ(poly_eval(coeffs, alpha_pow(1), MulKind::kTable), expected);
  EXPECT_EQ(poly_eval(coeffs, alpha_pow(1), MulKind::kShiftAdd), expected);
  EXPECT_EQ(poly_eval({}, 5, MulKind::kTable), 0u);
}

TEST(Gf512, PolyEvalFlavoursAgreeOnRandomPolys) {
  lacrv::Xoshiro256 rng(55);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Element> coeffs(1 + rng.next_below(17));
    for (auto& c : coeffs) c = static_cast<Element>(rng.next_below(kFieldSize));
    const Element x = static_cast<Element>(rng.next_below(kFieldSize));
    ASSERT_EQ(poly_eval(coeffs, x, MulKind::kTable),
              poly_eval(coeffs, x, MulKind::kShiftAdd));
  }
}

}  // namespace
}  // namespace lacrv::gf
