// The kernel registry: slot naming, KAT-gated injection, the modq
// modulus validation, and the 16-way implementation-mix matrix — every
// combination of injected RTL / modeled software slots must produce
// bit-identical KEM transcripts and identical cycle totals.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "lac/context.h"
#include "lac/kem.h"
#include "lac/registry.h"
#include "perf/rtl_backend.h"

namespace lacrv {
namespace {

hash::Seed seed_of(u64 x) {
  hash::Seed s{};
  for (int i = 0; i < 8; ++i) s[i] = static_cast<u8>(x >> (8 * i));
  return s;
}

TEST(Registry, SlotNamesFollowFunct3Order) {
  EXPECT_STREQ(lac::slot_name(lac::Slot::kMulTer), "mul_ter");
  EXPECT_STREQ(lac::slot_name(lac::Slot::kChien), "chien");
  EXPECT_STREQ(lac::slot_name(lac::Slot::kSha256), "sha256");
  EXPECT_STREQ(lac::slot_name(lac::Slot::kModq), "modq");
  ASSERT_EQ(lac::kAllSlots.size(), lac::kNumSlots);
  for (std::size_t i = 0; i < lac::kNumSlots; ++i)
    EXPECT_EQ(static_cast<std::size_t>(lac::kAllSlots[i]), i);
}

TEST(Registry, ModeledProfilePassesEverySlotSelfTest) {
  const lac::KernelRegistry registry = lac::KernelRegistry::modeled();
  const DegradeReport report = registry.self_test_all();
  EXPECT_FALSE(report.degraded()) << report.to_string();

  const auto views = registry.slots();
  ASSERT_EQ(views.size(), lac::kNumSlots);
  for (std::size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i].slot, lac::kAllSlots[i]);
    EXPECT_STREQ(views[i].name, lac::slot_name(lac::kAllSlots[i]));
    EXPECT_FALSE(views[i].injected);
    EXPECT_TRUE(views[i].self_test(nullptr));
  }
}

TEST(Registry, RtlInjectionPassesEverySlotKat) {
  auto registry =
      std::make_shared<lac::KernelRegistry>(lac::KernelRegistry::modeled());
  DegradeReport report;
  EXPECT_EQ(registry->inject_mul_ter(perf::rtl_mul_ter(), &report),
            Status::kOk);
  EXPECT_EQ(registry->inject_chien(perf::rtl_chien(), &report), Status::kOk);
  EXPECT_EQ(registry->inject_sha256(
                perf::rtl_sha256(std::make_shared<rtl::Sha256Rtl>()), &report),
            Status::kOk);
  EXPECT_EQ(registry->inject_modq(perf::rtl_modq(), poly::kQ, &report),
            Status::kOk);
  EXPECT_FALSE(report.degraded()) << report.to_string();
  for (const auto& view : registry->slots()) EXPECT_TRUE(view.injected);
  // The injected implementations keep passing the health-probe KATs.
  EXPECT_FALSE(registry->self_test_all().degraded());
}

TEST(Registry, ModqInjectionRejectsWrongModulus) {
  lac::KernelRegistry registry = lac::KernelRegistry::modeled();
  DegradeReport report;
  // A unit configured for q = 257 computes correct reductions for *its*
  // modulus; the KAT alone would catch it, but the configuration error
  // deserves a typed rejection before any vectors run.
  const poly::ModqFn wrong_q = [](u32 x, CycleLedger*) {
    return static_cast<u8>(x % 257);
  };
  EXPECT_EQ(registry.inject_modq(wrong_q, 257, &report),
            Status::kBadArgument);
  ASSERT_TRUE(report.degraded());
  EXPECT_STREQ(report.entries[0].unit, "modq");
  EXPECT_EQ(report.entries[0].status, Status::kBadArgument);
  EXPECT_NE(report.entries[0].detail.find("257"), std::string::npos);
  EXPECT_NE(report.entries[0].detail.find("rejected at injection"),
            std::string::npos);
  EXPECT_FALSE(registry.modq().injected());
  // The slot still serves the modeled implementation.
  EXPECT_EQ(registry.modq().active()(502, nullptr), 502 % poly::kQ);
}

TEST(Registry, FaultyModqBenchedWithCanonicalWording) {
  lac::KernelRegistry registry = lac::KernelRegistry::modeled();
  DegradeReport report;
  const poly::ModqFn broken = [](u32 x, CycleLedger*) {
    return static_cast<u8>((x % poly::kQ) ^ (x == 503 ? 1 : 0));
  };
  EXPECT_EQ(registry.inject_modq(broken, poly::kQ, &report),
            Status::kSelfTestFailure);
  ASSERT_TRUE(report.degraded());
  EXPECT_STREQ(report.entries[0].unit, "modq");
  EXPECT_EQ(report.entries[0].detail,
            "construction KAT failed; using modeled software unit");
  EXPECT_FALSE(registry.modq().injected());
}

/// A registry built for a non-default modulus: the second-scheme
/// extension point. The modq slot models that modulus, its KAT ladder is
/// derived from it, and injection validation compares against it — the
/// paper's q = 251 is configuration, not a constant baked into the slot.
TEST(Registry, NonDefaultModulusRegistryFlowsThroughModqSlot) {
  lac::KernelRegistry registry = lac::KernelRegistry::modeled(17);
  EXPECT_EQ(registry.modq_modulus(), 17u);
  EXPECT_EQ(registry.modq().active()(503, nullptr), 503 % 17);
  EXPECT_EQ(registry.modq().active()(16, nullptr), 16u);
  // The modulus-parameterized KAT accepts the slot's own model...
  EXPECT_TRUE(lac::modq_kat_mod(registry.modq().modeled(), 17));
  // ...and rejects a unit that reduces by the wrong modulus.
  EXPECT_FALSE(lac::modq_kat_mod(lac::modeled_modq_for(19), 17));

  // A paper-modulus unit is rejected at injection time with the same
  // configuration-validation verdict the default registry gives.
  DegradeReport report;
  EXPECT_EQ(registry.inject_modq(lac::modeled_modq_for(poly::kQ), poly::kQ,
                                 &report),
            Status::kBadArgument);
  EXPECT_FALSE(registry.modq().injected());
  // A matching-modulus unit passes the gate.
  EXPECT_EQ(registry.inject_modq(lac::modeled_modq_for(17), 17, nullptr),
            Status::kOk);
  EXPECT_TRUE(registry.modq().injected());
}

TEST(Registry, ParseSlotMixAcceptsAndRejects) {
  std::array<bool, lac::kNumSlots> use_rtl{};
  std::string error;
  EXPECT_TRUE(lac::parse_slot_mix("mul_ter=rtl,sha256=sw,modq=rtl", &use_rtl,
                                  &error))
      << error;
  EXPECT_TRUE(use_rtl[0]);
  EXPECT_FALSE(use_rtl[1]);  // unlisted -> software
  EXPECT_FALSE(use_rtl[2]);
  EXPECT_TRUE(use_rtl[3]);

  EXPECT_TRUE(lac::parse_slot_mix("", &use_rtl, &error));
  for (bool f : use_rtl) EXPECT_FALSE(f);

  EXPECT_FALSE(lac::parse_slot_mix("barrett=rtl", &use_rtl, &error));
  EXPECT_NE(error.find("unknown slot"), std::string::npos);
  EXPECT_FALSE(lac::parse_slot_mix("mul_ter=fpga", &use_rtl, &error));
  EXPECT_NE(error.find("unknown implementation"), std::string::npos);
  EXPECT_FALSE(lac::parse_slot_mix("mul_ter", &use_rtl, &error));
}

/// One full KEM transcript plus its cycle totals under a backend.
struct Transcript {
  Bytes ct;
  lac::SharedKey enc_key{};
  lac::SharedKey dec_key{};
  u64 keygen_cycles = 0, encaps_cycles = 0, decaps_cycles = 0;
  u64 encaps_cached_cycles = 0, context_build_cycles = 0;
};

Transcript run_transcript(const lac::Params& params,
                          const lac::Backend& backend) {
  Transcript t;
  CycleLedger kg, enc_ledger, dec_ledger;
  const lac::KemKeyPair keys =
      lac::kem_keygen(params, backend, seed_of(1234), &kg);
  const lac::EncapsResult enc =
      lac::encapsulate(params, backend, keys.pk, seed_of(77), &enc_ledger);
  const lac::SharedKey dec_key =
      lac::decapsulate(params, backend, keys, enc.ct, &dec_ledger);
  t.ct = lac::serialize(params, enc.ct);
  t.enc_key = enc.key;
  t.dec_key = dec_key;
  t.keygen_cycles = kg.total();
  t.encaps_cycles = enc_ledger.total();
  t.decaps_cycles = dec_ledger.total();

  // Amortized-context ledger invariant: the uncached operation costs
  // exactly the cached operation plus the one-time context build.
  const lac::KeyContext ctx = lac::build_kem_context(params, backend, keys);
  CycleLedger cached;
  lac::encapsulate(params, backend, ctx, seed_of(77), &cached);
  t.encaps_cached_cycles = cached.total();
  t.context_build_cycles = ctx.build_cycles;
  return t;
}

lac::Backend mix_backend(std::size_t mask) {
  auto registry =
      std::make_shared<lac::KernelRegistry>(lac::KernelRegistry::modeled());
  DegradeReport report;
  if (mask & 1u) registry->inject_mul_ter(perf::rtl_mul_ter(), &report);
  if (mask & 2u) registry->inject_chien(perf::rtl_chien(), &report);
  if (mask & 4u)
    registry->inject_sha256(
        perf::rtl_sha256(std::make_shared<rtl::Sha256Rtl>()), &report);
  if (mask & 8u) registry->inject_modq(perf::rtl_modq(), poly::kQ, &report);
  EXPECT_FALSE(report.degraded()) << report.to_string();
  return lac::Backend::optimized_from(std::move(registry));
}

/// Every one of the 2^4 injected/modeled slot combinations must be
/// indistinguishable from the all-modeled optimized() backend: same
/// bytes on the wire, same shared secrets, same cycle totals — for both
/// ring sizes (n = 512 and n = 1024).
TEST(Registry, AllSixteenMixesAreBitAndCycleIdentical) {
  for (const lac::Params* params :
       {&lac::Params::lac128(), &lac::Params::lac256()}) {
    const Transcript golden =
        run_transcript(*params, lac::Backend::optimized());
    EXPECT_EQ(golden.enc_key, golden.dec_key);
    EXPECT_EQ(golden.encaps_cycles,
              golden.encaps_cached_cycles + golden.context_build_cycles);
    for (std::size_t mask = 0; mask < 16; ++mask) {
      const Transcript t = run_transcript(*params, mix_backend(mask));
      SCOPED_TRACE(std::string(params->name) + " mix mask " +
                   std::to_string(mask));
      EXPECT_EQ(t.ct, golden.ct);
      EXPECT_EQ(t.enc_key, golden.enc_key);
      EXPECT_EQ(t.dec_key, golden.dec_key);
      EXPECT_EQ(t.keygen_cycles, golden.keygen_cycles);
      EXPECT_EQ(t.encaps_cycles, golden.encaps_cycles);
      EXPECT_EQ(t.decaps_cycles, golden.decaps_cycles);
      EXPECT_EQ(t.encaps_cycles,
                t.encaps_cached_cycles + t.context_build_cycles);
    }
  }
}

/// The injected modq slot actually runs on the general-multiplication
/// reduction path and charges the pq.modq cycle model.
TEST(Registry, ModqSlotDrivesGeneralMultiplicationReduction) {
  u64 calls = 0;
  const poly::ModqFn counting = [&calls](u32 x, CycleLedger* ledger) {
    ++calls;
    charge(ledger, 1);
    return poly::barrett_reduce(x);
  };
  poly::Coeffs a(8), b(8);
  for (std::size_t i = 0; i < 8; ++i) {
    a[i] = static_cast<u8>(3 * i + 1);
    b[i] = static_cast<u8>(5 * i + 2);
  }
  CycleLedger ledger;
  const poly::Coeffs with_slot = poly::mul_general_full(a, b, &counting,
                                                        &ledger);
  const poly::Coeffs inline_reduction = poly::mul_general_full(a, b);
  EXPECT_EQ(with_slot, inline_reduction);
  EXPECT_EQ(calls, 64u);  // one reduction per coefficient product
  EXPECT_EQ(ledger.total(), calls);
}

/// Guard: the per-unit KAT vectors of the pq.* slots live in
/// lac/registry.cpp and nowhere else. Any other file constructing a
/// MulTer512 / ChienStage self-test would reintroduce the duplicated
/// per-unit logic this registry replaced.
TEST(Registry, GuardNoStrayKernelKatsOutsideRegistry) {
  namespace fs = std::filesystem;
  const fs::path src = fs::path(LACRV_SOURCE_DIR) / "src";
  ASSERT_TRUE(fs::exists(src)) << src;
  // The KAT detail strings double as construction markers: they only
  // appear next to the vectors that produce them.
  const std::vector<std::string> markers = {
      "convolution KAT mismatch",         // MulTer512 self-test
      "locator evaluation KAT mismatch",  // ChienStage self-test
  };
  std::size_t scanned = 0;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cpp") continue;
    if (entry.path().filename() == "registry.cpp") continue;
    ++scanned;
    std::ifstream in(entry.path());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string content = buffer.str();
    for (const std::string& marker : markers)
      EXPECT_EQ(content.find(marker), std::string::npos)
          << entry.path() << " constructs a kernel slot KAT (found \""
          << marker << "\"); the registry is the single home of these";
  }
  EXPECT_GT(scanned, 50u);  // the scan really walked the tree
}

}  // namespace
}  // namespace lacrv
