// Deterministic tests for the resilient KEM service: deadline and
// backoff edge cases on an injected ManualClock (no real sleeps, no
// timing assertions), breaker trip/recovery driven by explicit probes,
// and backpressure semantics of the bounded submission queue. The
// concurrent chaos coverage lives in service_soak_test.cpp.
#include <future>
#include <stdexcept>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/stats.h"
#include "common/status.h"
#include "fault/plan.h"
#include "lac/backend.h"
#include "lac/kem.h"
#include "service/queue.h"
#include "service/retry.h"
#include "service/service.h"

namespace lacrv::service {
namespace {

hash::Seed seed_from(u8 tag) {
  hash::Seed s{};
  s[0] = tag;
  s[31] = static_cast<u8>(tag ^ 0xa5);
  return s;
}

KemResponse ok_response() {
  KemResponse r;
  r.status = Status::kOk;
  return r;
}

KemResponse rejected_response() {
  KemResponse r;
  r.status = Status::kRejected;
  r.detail = "synthetic fault-indicating status";
  return r;
}

/// A job that parks its worker until the test opens the gate, and
/// reports (via `started`) that the worker has actually picked it up —
/// the only synchronization the concurrency-free tests need.
KemService::Job gate_job(std::promise<void>& started,
                         std::shared_future<void> open) {
  return [&started, open](lac::Backend&) {
    started.set_value();
    open.wait();
    return ok_response();
  };
}

ServiceConfig manual_config(ManualClock& clock) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 8;
  cfg.clock = &clock;
  cfg.enable_prober = false;  // probes driven explicitly via probe_now()
  cfg.retry.jitter_percent = 0;
  return cfg;
}

TEST(KemServiceTest, RoundTripKeyAgreementThroughThePool) {
  ManualClock clock;
  ServiceConfig cfg = manual_config(clock);
  cfg.workers = 2;
  KemService svc(cfg);

  auto enc_future = svc.submit({OpKind::kEncaps, seed_from(1), {}, kNoDeadline});
  KemResponse enc = enc_future.get();
  ASSERT_EQ(enc.status, Status::kOk);
  EXPECT_EQ(enc.attempts, 1);
  EXPECT_FALSE(enc.served_by_fallback);

  // The service's own decapsulation and a golden software decapsulation
  // must both land on the encapsulated key.
  KemRequest dec_req;
  dec_req.op = OpKind::kDecaps;
  dec_req.ct = enc.encaps.ct;
  KemResponse dec = svc.submit(std::move(dec_req)).get();
  ASSERT_EQ(dec.status, Status::kOk);
  EXPECT_EQ(dec.key, enc.encaps.key);
  EXPECT_EQ(lac::decapsulate(svc.params(), lac::Backend::optimized(),
                             svc.keys(), enc.encaps.ct),
            enc.encaps.key);

  CountersSnapshot snap = svc.counters();
  EXPECT_EQ(snap.submitted, 2u);
  EXPECT_EQ(snap.completed, 2u);
  EXPECT_EQ(snap.ok, 2u);
  EXPECT_EQ(snap.retries, 0u);
  EXPECT_EQ(svc.raw_counters().encaps_latency.count(), 1u);
  EXPECT_EQ(svc.raw_counters().decaps_latency.count(), 1u);
}

TEST(KemServiceTest, FullQueueRejectsWithTypedOverload) {
  ManualClock clock;
  ServiceConfig cfg = manual_config(clock);
  cfg.queue_capacity = 1;
  KemService svc(cfg);

  std::promise<void> started, open;
  auto busy = svc.submit_job(gate_job(started, open.get_future().share()));
  started.get_future().wait();  // worker is parked, queue is empty

  auto queued = svc.submit_job([](lac::Backend&) { return ok_response(); });
  auto shed = svc.submit_job([](lac::Backend&) { return ok_response(); });

  // Backpressure is immediate: the overloaded future is already ready.
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  KemResponse r = shed.get();
  EXPECT_EQ(r.status, Status::kOverloaded);
  EXPECT_EQ(r.attempts, 0);
  EXPECT_EQ(svc.counters().rejected_overload, 1u);

  open.set_value();
  EXPECT_EQ(busy.get().status, Status::kOk);
  EXPECT_EQ(queued.get().status, Status::kOk);
  EXPECT_EQ(svc.counters().rejected_overload, 1u);
}

TEST(KemServiceTest, SubmitAfterStopIsUnavailable) {
  ManualClock clock;
  KemService svc(manual_config(clock));
  svc.stop();
  KemResponse r = svc.submit({OpKind::kEncaps, seed_from(2), {}, kNoDeadline})
                      .get();
  EXPECT_EQ(r.status, Status::kUnavailable);
  EXPECT_EQ(svc.counters().shed_at_shutdown, 1u);
}

TEST(KemServiceTest, ZeroDeadlineIsShedBeforeExecution) {
  ManualClock clock;
  KemService svc(manual_config(clock));
  bool executed = false;
  KemResponse r = svc.submit_job(
                         [&executed](lac::Backend&) {
                           executed = true;
                           return ok_response();
                         },
                         /*deadline_micros=*/0)
                      .get();
  EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  EXPECT_EQ(r.attempts, 0);
  EXPECT_FALSE(executed);
  EXPECT_EQ(svc.counters().rejected_deadline, 1u);
}

TEST(KemServiceTest, DeadlineExpiringWhileQueuedShedsWithoutExecution) {
  ManualClock clock;
  KemService svc(manual_config(clock));

  std::promise<void> started, open;
  auto busy = svc.submit_job(gate_job(started, open.get_future().share()));
  started.get_future().wait();

  bool executed = false;
  auto target = svc.submit_job(
      [&executed](lac::Backend&) {
        executed = true;
        return ok_response();
      },
      clock.now_micros() + 1'000);

  // The deadline passes while the request sits in the queue behind the
  // gated job; the worker must shed it without running it.
  clock.advance(2'000);
  open.set_value();

  EXPECT_EQ(busy.get().status, Status::kOk);
  KemResponse r = target.get();
  EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  EXPECT_EQ(r.attempts, 0);
  EXPECT_FALSE(executed);
  EXPECT_NE(r.detail.find("while queued"), std::string::npos);
}

TEST(KemServiceTest, DeadlineExpiringDuringBackoffEndsTheRetryLoop) {
  ManualClock clock;
  ServiceConfig cfg = manual_config(clock);
  cfg.retry.max_attempts = 5;
  cfg.retry.base_backoff_micros = 1'000;
  KemService svc(cfg);

  int runs = 0;
  // First backoff (1000us) already overshoots the 500us budget: exactly
  // one attempt executes, then the request is shed mid-retry.
  KemResponse r = svc.submit_job(
                         [&runs](lac::Backend&) {
                           ++runs;
                           return rejected_response();
                         },
                         clock.now_micros() + 500)
                      .get();
  EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(runs, 1);
  EXPECT_NE(r.detail.find("during retry backoff"), std::string::npos);
  EXPECT_NE(r.detail.find("rejected"), std::string::npos);
  EXPECT_EQ(svc.counters().retries, 0u);
  EXPECT_EQ(svc.counters().rejected_deadline, 1u);
}

TEST(KemServiceTest, RetryBudgetExhaustionReturnsTheLastTypedStatus) {
  ManualClock clock;
  ServiceConfig cfg = manual_config(clock);
  cfg.retry.max_attempts = 3;
  KemService svc(cfg);

  const u64 before = clock.now_micros();
  int runs = 0;
  KemResponse r = svc.submit_job([&runs](lac::Backend&) {
                       ++runs;
                       return rejected_response();
                     }).get();
  EXPECT_EQ(r.status, Status::kRejected);
  EXPECT_EQ(r.attempts, 3);
  EXPECT_EQ(runs, 3);

  CountersSnapshot snap = svc.counters();
  EXPECT_EQ(snap.failed_attempts, 3u);
  EXPECT_EQ(snap.retries, 2u);
  EXPECT_EQ(snap.ok, 0u);
  EXPECT_EQ(snap.completed, 1u);
  // Backoffs consumed virtual time only: 1000 + 2000 microseconds.
  EXPECT_EQ(clock.now_micros() - before, 3'000u);
}

TEST(RetryPolicyTest, BackoffIsCappedMonotoneAndDeterministic) {
  RetryPolicy p;
  p.base_backoff_micros = 1'000;
  p.max_backoff_micros = 8'000;
  p.jitter_percent = 0;
  EXPECT_EQ(p.backoff_micros(1, 7), 1'000u);
  EXPECT_EQ(p.backoff_micros(2, 7), 2'000u);
  EXPECT_EQ(p.backoff_micros(3, 7), 4'000u);
  EXPECT_EQ(p.backoff_micros(4, 7), 8'000u);
  EXPECT_EQ(p.backoff_micros(5, 7), 8'000u);   // capped
  EXPECT_EQ(p.backoff_micros(63, 7), 8'000u);  // shift saturates safely

  p.jitter_percent = 25;
  for (int attempt = 1; attempt <= 5; ++attempt) {
    const u64 base = RetryPolicy{p.max_attempts, p.base_backoff_micros,
                                 p.max_backoff_micros, 0, p.jitter_seed}
                         .backoff_micros(attempt, 42);
    const u64 jittered = p.backoff_micros(attempt, 42);
    EXPECT_GE(jittered, base);                    // jitter only adds
    EXPECT_LE(jittered, base + base / 4);         // bounded amplitude
    EXPECT_EQ(jittered, p.backoff_micros(attempt, 42));  // reproducible
  }
  // Different requests draw different jitter streams.
  EXPECT_NE(p.backoff_micros(1, 1), p.backoff_micros(1, 2));
}

TEST(KemServiceTest, AttributedFaultTripsBreakerAndReroutesToFallback) {
  fault::FaultPlan plan;
  plan.add({fault::Unit::kMulTer, rtl::FaultKind::kStuckAtOne, 0, 5, 3});

  ManualClock clock;
  ServiceConfig cfg = manual_config(clock);
  cfg.retry.max_attempts = 3;  // one request = three attributed failures
  KemService svc(cfg);
  svc.arm_faults(plan);

  EXPECT_EQ(svc.breaker_state(fault::Unit::kMulTer), BreakerState::kClosed);
  KemResponse r = svc.submit_job([](lac::Backend&) {
                       return rejected_response();
                     }).get();
  EXPECT_EQ(r.status, Status::kRejected);

  // Each failed attempt re-ran the per-unit KATs; only the faulted
  // multiplier failed them, so only its breaker tripped.
  EXPECT_EQ(svc.breaker_state(fault::Unit::kMulTer), BreakerState::kOpen);
  EXPECT_EQ(svc.breaker_state(fault::Unit::kChien), BreakerState::kClosed);
  EXPECT_EQ(svc.breaker_state(fault::Unit::kSha256), BreakerState::kClosed);
  EXPECT_EQ(svc.counters().breaker_trips, 1u);

  DegradeReport report = svc.degrade_report();
  ASSERT_TRUE(report.degraded());
  EXPECT_STREQ(report.entries[0].unit, "mul_ter");
  EXPECT_EQ(report.entries[0].status, Status::kUnavailable);
  EXPECT_NE(report.entries[0].detail.find("closed -> open"),
            std::string::npos);

  // With the breaker open the stuck-at multiplier is out of the path:
  // encapsulation succeeds on the software fallback and still agrees
  // with a golden decapsulation.
  KemResponse enc =
      svc.submit({OpKind::kEncaps, seed_from(9), {}, kNoDeadline}).get();
  ASSERT_EQ(enc.status, Status::kOk);
  EXPECT_TRUE(enc.served_by_fallback);
  EXPECT_EQ(lac::decapsulate(svc.params(), lac::Backend::optimized(),
                             svc.keys(), enc.encaps.ct),
            enc.encaps.key);
  EXPECT_GE(svc.counters().served_degraded, 1u);
}

TEST(KemServiceTest, ProbeWalksBreakerThroughHalfOpenToClosed) {
  fault::FaultPlan plan;
  plan.add({fault::Unit::kMulTer, rtl::FaultKind::kStuckAtOne, 0, 5, 3});

  ManualClock clock;
  KemService svc(manual_config(clock));
  svc.arm_faults(plan);
  (void)svc.submit_job([](lac::Backend&) { return rejected_response(); })
      .get();
  ASSERT_EQ(svc.breaker_state(fault::Unit::kMulTer), BreakerState::kOpen);

  // While the fault is present the probe keeps the breaker open.
  EXPECT_FALSE(svc.probe_now());
  EXPECT_EQ(svc.breaker_state(fault::Unit::kMulTer), BreakerState::kOpen);

  // Fault cleared: first passing probe half-opens, the next ones close.
  svc.clear_faults();
  EXPECT_TRUE(svc.probe_now());
  EXPECT_EQ(svc.breaker_state(fault::Unit::kMulTer), BreakerState::kHalfOpen);
  EXPECT_TRUE(svc.probe_now());
  EXPECT_EQ(svc.breaker_state(fault::Unit::kMulTer), BreakerState::kHalfOpen);
  EXPECT_TRUE(svc.probe_now());
  EXPECT_EQ(svc.breaker_state(fault::Unit::kMulTer), BreakerState::kClosed);
  EXPECT_EQ(svc.counters().breaker_recoveries, 1u);

  // Recovered: accelerator traffic restored, no fallback involved.
  KemResponse enc =
      svc.submit({OpKind::kEncaps, seed_from(11), {}, kNoDeadline}).get();
  ASSERT_EQ(enc.status, Status::kOk);
  EXPECT_FALSE(enc.served_by_fallback);
}

TEST(KemServiceTest, HalfOpenRacingANewFaultReopensTheBreaker) {
  fault::FaultPlan plan;
  plan.add({fault::Unit::kMulTer, rtl::FaultKind::kStuckAtOne, 0, 5, 3});

  ManualClock clock;
  KemService svc(manual_config(clock));
  svc.arm_faults(plan);
  (void)svc.submit_job([](lac::Backend&) { return rejected_response(); })
      .get();
  svc.clear_faults();
  ASSERT_TRUE(svc.probe_now());
  ASSERT_EQ(svc.breaker_state(fault::Unit::kMulTer), BreakerState::kHalfOpen);

  // The fault returns inside the half-open trial window. The next
  // attributed failure must re-open immediately (no threshold grace).
  svc.arm_faults(plan);
  (void)svc.submit_job([](lac::Backend&) { return rejected_response(); })
      .get();
  EXPECT_EQ(svc.breaker_state(fault::Unit::kMulTer), BreakerState::kOpen);
  EXPECT_EQ(svc.counters().breaker_trips, 2u);

  DegradeReport report = svc.degrade_report();
  bool saw_half_open_failure = false;
  for (const auto& e : report.entries)
    if (e.detail.find("half-open trial failed") != std::string::npos)
      saw_half_open_failure = true;
  EXPECT_TRUE(saw_half_open_failure);
}

TEST(KemServiceTest, StopShedsQueuedWorkWithTypedStatus) {
  ManualClock clock;
  ServiceConfig cfg = manual_config(clock);
  cfg.queue_capacity = 4;
  KemService svc(cfg);

  std::promise<void> started;
  std::promise<void> open;
  auto busy = svc.submit_job(gate_job(started, open.get_future().share()));
  started.get_future().wait();
  auto queued = svc.submit_job([](lac::Backend&) { return ok_response(); });

  // stop() closes the queue and joins; release the gate from another
  // thread so the parked worker can finish its in-flight job.
  std::thread releaser([&open] { open.set_value(); });
  svc.stop();
  releaser.join();

  EXPECT_EQ(busy.get().status, Status::kOk);
  // The queued job was either executed before the stop flag landed or
  // shed with a typed status — never dropped, never untyped.
  KemResponse r = queued.get();
  EXPECT_TRUE(r.status == Status::kOk || r.status == Status::kUnavailable);
}

TEST(BoundedQueueTest, BackpressureAndCloseSemantics) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  int spill = 3;
  EXPECT_FALSE(q.try_push(std::move(spill)));
  EXPECT_EQ(spill, 3);  // rejected item is not consumed
  EXPECT_EQ(q.depth(), 2u);

  EXPECT_EQ(q.pop(), std::optional<int>(1));
  EXPECT_TRUE(q.try_push(3));
  q.close();
  EXPECT_FALSE(q.try_push(std::move(spill)));  // closed queue rejects
  EXPECT_EQ(q.pop(), std::optional<int>(2));   // drains what it holds
  EXPECT_EQ(q.pop(), std::optional<int>(3));
  EXPECT_EQ(q.pop(), std::nullopt);            // closed and empty
}

TEST(LatencyHistogramTest, BucketsCountsAndPercentiles) {
  stats::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  for (int i = 0; i < 90; ++i) h.record(10);
  for (int i = 0; i < 10; ++i) h.record(100'000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_GT(h.mean_micros(), 10.0);
  // p50 sits in the 10us bucket, p99 in the 100ms-ish tail bucket.
  EXPECT_LE(h.percentile_micros(50), 16u);
  EXPECT_GE(h.percentile_micros(99), 100'000u / 2);
  EXPECT_FALSE(h.to_string().empty());
}

// ---- callback submission (the async front end's path) ----------------------

TEST(KemServiceTest, CallbackDeliveryMatchesFutureSemantics) {
  ManualClock clock;
  KemService svc(manual_config(clock));

  std::promise<KemResponse> delivered;
  svc.submit_with_callback({OpKind::kEncaps, seed_from(21), {}, kNoDeadline},
                           [&](KemResponse r) {
                             delivered.set_value(std::move(r));
                           });
  KemResponse enc = delivered.get_future().get();
  ASSERT_EQ(enc.status, Status::kOk);
  EXPECT_EQ(enc.attempts, 1);
  // The callback result is the same object submit() would have resolved:
  // the ciphertext decapsulates to the delivered key.
  EXPECT_EQ(lac::decapsulate(svc.params(), lac::Backend::optimized(),
                             svc.keys(), enc.encaps.ct),
            enc.encaps.key);
}

TEST(KemServiceTest, CallbackOverloadRejectionFiresOnCallerThread) {
  ManualClock clock;
  ServiceConfig cfg = manual_config(clock);
  cfg.queue_capacity = 1;
  KemService svc(cfg);

  std::promise<void> started, open;
  auto busy = svc.submit_job(gate_job(started, open.get_future().share()));
  started.get_future().wait();
  auto queued = svc.submit_job([](lac::Backend&) { return ok_response(); });

  // The queue is full: the rejection callback must fire synchronously,
  // inside submit_with_callback, on this thread.
  const std::thread::id caller = std::this_thread::get_id();
  bool fired = false;
  svc.submit_with_callback({OpKind::kEncaps, seed_from(22), {}, kNoDeadline},
                           [&](KemResponse r) {
                             EXPECT_EQ(std::this_thread::get_id(), caller);
                             EXPECT_EQ(r.status, Status::kOverloaded);
                             EXPECT_EQ(r.attempts, 0);
                             fired = true;
                           });
  EXPECT_TRUE(fired);
  EXPECT_EQ(svc.counters().rejected_overload, 1u);

  open.set_value();
  EXPECT_EQ(busy.get().status, Status::kOk);
  EXPECT_EQ(queued.get().status, Status::kOk);
}

TEST(KemServiceTest, CallbackExceptionIsContained) {
  ManualClock clock;
  KemService svc(manual_config(clock));

  std::promise<void> threw;
  svc.submit_with_callback({OpKind::kEncaps, seed_from(23), {}, kNoDeadline},
                           [&](KemResponse) {
                             threw.set_value();
                             throw std::runtime_error("hostile callback");
                           });
  threw.get_future().wait();
  // The worker survived the throw: it still executes the next request.
  KemResponse r =
      svc.submit({OpKind::kEncaps, seed_from(24), {}, kNoDeadline}).get();
  EXPECT_EQ(r.status, Status::kOk);
}

// ---- drain: the graceful dual of stop() -------------------------------------

TEST(KemServiceTest, DrainExecutesQueuedWorkWhereStopShedsIt) {
  ManualClock clock;
  KemService svc(manual_config(clock));

  std::promise<void> started, open;
  auto busy = svc.submit_job(gate_job(started, open.get_future().share()));
  started.get_future().wait();
  // Queued behind the parked worker — drain() must *execute* these, not
  // shed them with kUnavailable the way stop() would.
  auto q1 = svc.submit({OpKind::kEncaps, seed_from(31), {}, kNoDeadline});
  auto q2 = svc.submit_job([](lac::Backend&) { return ok_response(); });

  std::thread release([&] {
    // drain() blocks until the queue empties; release the worker from a
    // side thread once the drain gate is known to be down.
    while (!svc.draining()) std::this_thread::yield();
    open.set_value();
  });
  svc.drain();
  release.join();

  EXPECT_EQ(busy.get().status, Status::kOk);
  EXPECT_EQ(q1.get().status, Status::kOk);
  EXPECT_EQ(q2.get().status, Status::kOk);
  const CountersSnapshot snap = svc.counters();
  EXPECT_EQ(snap.submitted, 3u);
  EXPECT_EQ(snap.completed, 3u);
  EXPECT_EQ(snap.ok, 3u);
  EXPECT_EQ(snap.queue_depth, 0u);
}

TEST(KemServiceTest, DrainRejectsNewSubmissionsWithTypedUnavailable) {
  ManualClock clock;
  KemService svc(manual_config(clock));

  // Park the worker so the drain stays in progress while we submit.
  std::promise<void> started, open;
  auto busy = svc.submit_job(gate_job(started, open.get_future().share()));
  started.get_future().wait();

  std::thread drainer([&] { svc.drain(); });
  while (!svc.draining()) std::this_thread::yield();

  // Mid-drain: rejected with the draining detail, synchronously.
  KemResponse r =
      svc.submit({OpKind::kEncaps, seed_from(32), {}, kNoDeadline}).get();
  EXPECT_EQ(r.status, Status::kUnavailable);
  EXPECT_EQ(r.detail, "service draining");

  bool fired = false;
  svc.submit_with_callback({OpKind::kEncaps, seed_from(33), {}, kNoDeadline},
                           [&](KemResponse cb) {
                             EXPECT_EQ(cb.status, Status::kUnavailable);
                             fired = true;
                           });
  EXPECT_TRUE(fired);

  open.set_value();
  drainer.join();
  EXPECT_EQ(busy.get().status, Status::kOk);

  // Post-drain the verdict hardens to the stopped detail; drain() and
  // stop() stay idempotent no-ops.
  r = svc.submit({OpKind::kEncaps, seed_from(34), {}, kNoDeadline}).get();
  EXPECT_EQ(r.status, Status::kUnavailable);
  EXPECT_EQ(r.detail, "service stopped");
  svc.drain();
  svc.stop();
}

TEST(PrintStatusTest, UniformStatusLineFormat) {
  std::ostringstream os;
  print_status(os, "kem-server", Status::kOverloaded, "queue full");
  EXPECT_EQ(os.str(), "[kem-server] overloaded: queue full\n");
  os.str("");
  print_status(os, "keytool", Status::kOk);
  EXPECT_EQ(os.str(), "[keytool] ok\n");
  // The service-layer statuses have stable names for log grepping.
  EXPECT_STREQ(status_name(Status::kDeadlineExceeded), "deadline-exceeded");
  EXPECT_STREQ(status_name(Status::kUnavailable), "unavailable");
}

}  // namespace
}  // namespace lacrv::service
