// Chaos soak for the concurrent KEM service: thousands of in-flight
// requests while a single-fault campaign is live-armed, live-swapped and
// finally cleared against the running worker pool. The invariant under
// test is absolute: every request ends in key agreement or a typed
// rejection — never a silent shared-secret mismatch, never a hang,
// never a crash.
//
// LACRV_SOAK_TRIALS overrides the handshake count (CI sanitizer jobs run
// a shorter deterministic slice; the default is the full 1000-request
// soak demanded by the acceptance criteria). LACRV_SOAK_TRACE=<path>
// additionally installs a process-wide tracer for the soak and writes
// the Chrome trace JSON there — the CI trace-smoke job uses it to
// exercise tracing under maximum worker contention.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <future>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "fault/plan.h"
#include "lac/backend.h"
#include "lac/kem.h"
#include "obs/trace.h"
#include "service/service.h"

namespace lacrv::service {
namespace {

std::size_t soak_trials() {
  if (const char* env = std::getenv("LACRV_SOAK_TRIALS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 1000;
}

hash::Seed entropy_for(u64 i) {
  hash::Seed s{};
  u64 state = 0x50a4'0000 ^ i;
  for (std::size_t b = 0; b < s.size(); b += 8) {
    const u64 draw = fault::splitmix64(state);
    for (std::size_t k = 0; k < 8; ++k)
      s[b + k] = static_cast<u8>(draw >> (8 * k));
  }
  return s;
}

/// Hang check: a future that is not ready by the global deadline fails
/// the test instead of blocking it forever.
KemResponse reap(std::future<KemResponse>& f,
                 std::chrono::steady_clock::time_point deadline) {
  if (f.wait_until(deadline) != std::future_status::ready) {
    ADD_FAILURE() << "request hung past the soak deadline";
    return KemResponse{};
  }
  return f.get();
}

bool typed(Status s) {
  switch (s) {
    case Status::kOk:
    case Status::kRejected:
    case Status::kDecodeFailure:
    case Status::kSelfTestFailure:
    case Status::kInternalError:
    case Status::kOverloaded:
    case Status::kDeadlineExceeded:
    case Status::kUnavailable:
      return true;
    default:
      return false;
  }
}

TEST(KemServiceSoakTest, ChaosCampaignNeverYieldsSilentMismatch) {
  const std::size_t trials = soak_trials();
  // Env-gated tracing: soak the tracer along with the service.
  const char* trace_path = std::getenv("LACRV_SOAK_TRACE");
  obs::Tracer tracer(1u << 20);
  if (trace_path) tracer.install();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(10);

  // Phase A fault: a stuck-at bit in the ternary multiplier datapath.
  fault::FaultPlan mul_plan;
  mul_plan.add({fault::Unit::kMulTer, rtl::FaultKind::kStuckAtOne, 0, 5, 3});
  // Phase B fault: a stuck-at bit in the SHA-256 state registers — the
  // runtime hash cross-check corrects these, so the breaker has to be
  // tripped by the corrected-digest signal and the prober, not by
  // rejections.
  fault::FaultPlan sha_plan;
  sha_plan.add({fault::Unit::kSha256, rtl::FaultKind::kStuckAtOne, 0, 2, 7});

  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = trials + 16;  // bounded, sized so the full burst fits
  cfg.probe_interval_micros = 5'000;
  cfg.enable_prober = true;  // the real background prober drives recovery
  KemService svc(cfg);

  // ---- Phase A: burst all encapsulations with the multiplier faulted,
  // live-swapping the campaign to the SHA fault mid-flight.
  svc.arm_faults(mul_plan);
  std::vector<std::future<KemResponse>> enc_futures;
  enc_futures.reserve(trials);
  for (std::size_t i = 0; i < trials; ++i) {
    enc_futures.push_back(
        svc.submit({OpKind::kEncaps, entropy_for(i), {}, kNoDeadline}));
    if (i == trials / 2) {
      // Campaign swap against a live pool: atomic hook clear + re-arm
      // while workers are mid-operation.
      svc.clear_faults();
      svc.arm_faults(sha_plan);
    }
  }

  std::size_t enc_ok = 0, enc_shed = 0, enc_failed = 0;
  std::vector<lac::EncapsResult> handshakes;
  handshakes.reserve(trials);
  for (auto& f : enc_futures) {
    KemResponse r = reap(f, deadline);
    ASSERT_TRUE(typed(r.status)) << status_name(r.status);
    if (r.status == Status::kOk) {
      ++enc_ok;
      handshakes.push_back(r.encaps);
    } else if (r.status == Status::kOverloaded ||
               r.status == Status::kUnavailable) {
      ++enc_shed;
    } else {
      ++enc_failed;
    }
  }
  EXPECT_EQ(enc_shed, 0u);  // the queue was sized for the burst
  EXPECT_GT(enc_ok, 0u);

  // ---- Phase B: decapsulate every successful handshake, still under
  // the SHA fault. kOk responses must agree with the encapsulated key;
  // anything else must be a typed rejection.
  std::vector<std::future<KemResponse>> dec_futures;
  dec_futures.reserve(handshakes.size());
  for (const lac::EncapsResult& h : handshakes) {
    KemRequest req;
    req.op = OpKind::kDecaps;
    req.ct = h.ct;
    dec_futures.push_back(svc.submit(std::move(req)));
  }
  std::size_t dec_ok = 0, dec_rejected = 0, silent_mismatches = 0;
  for (std::size_t i = 0; i < dec_futures.size(); ++i) {
    KemResponse r = reap(dec_futures[i], deadline);
    ASSERT_TRUE(typed(r.status)) << status_name(r.status);
    if (r.status == Status::kOk) {
      ++dec_ok;
      if (r.key != handshakes[i].key) ++silent_mismatches;
    } else {
      ++dec_rejected;
    }
  }
  // THE invariant: kOk always means key agreement.
  EXPECT_EQ(silent_mismatches, 0u);
  EXPECT_EQ(dec_ok + dec_rejected, handshakes.size());
  EXPECT_GT(dec_ok, 0u);

  // The campaign must have left marks: the stuck-at faults trip at
  // least one breaker (via attribution or the prober), and the SHA
  // phase exercises the corrected-digest path.
  CountersSnapshot mid = svc.counters();
  EXPECT_GE(mid.breaker_trips, 1u);
  EXPECT_GE(mid.probes, 1u);

  // ---- Recovery: end the campaign; the background prober must walk
  // every breaker back to closed (bounded real-time wait on the prober's
  // 5ms cadence, far inside the soak deadline).
  svc.clear_faults();
  const auto recovery_deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(2);
  auto all_closed = [&svc] {
    return svc.breaker_state(fault::Unit::kMulTer) == BreakerState::kClosed &&
           svc.breaker_state(fault::Unit::kChien) == BreakerState::kClosed &&
           svc.breaker_state(fault::Unit::kSha256) == BreakerState::kClosed;
  };
  while (!all_closed() &&
         std::chrono::steady_clock::now() < recovery_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(all_closed()) << "prober failed to recover breakers";

  // Healed service: a fresh batch of handshakes runs entirely on the
  // accelerators and agrees end to end.
  std::vector<std::future<KemResponse>> final_encs;
  for (std::size_t i = 0; i < 8; ++i)
    final_encs.push_back(svc.submit(
        {OpKind::kEncaps, entropy_for(0xf17a1 + i), {}, kNoDeadline}));
  for (auto& f : final_encs) {
    KemResponse enc = reap(f, deadline);
    ASSERT_EQ(enc.status, Status::kOk);
    EXPECT_FALSE(enc.served_by_fallback);
    KemRequest req;
    req.op = OpKind::kDecaps;
    req.ct = enc.encaps.ct;
    auto dec_f = svc.submit(std::move(req));
    KemResponse dec = reap(dec_f, deadline);
    ASSERT_EQ(dec.status, Status::kOk);
    EXPECT_EQ(dec.key, enc.encaps.key);
  }

  svc.stop();
  if (trace_path) {
    obs::Tracer::uninstall();
    std::ofstream out(trace_path);
    tracer.write_chrome_json(out);
    ASSERT_TRUE(out.good()) << "failed to write " << trace_path;
    EXPECT_GT(tracer.size(), 0u);
  }
  CountersSnapshot snap = svc.counters();
  // Every submission is accounted for — nothing dropped on the floor.
  EXPECT_EQ(snap.completed + snap.rejected_overload + snap.rejected_deadline +
                snap.shed_at_shutdown,
            snap.submitted);
  EXPECT_EQ(snap.queue_depth, 0u);
  SUCCEED() << snap.to_string();
}

}  // namespace
}  // namespace lacrv::service
