#include <gtest/gtest.h>

#include "riscv/soc.h"

namespace lacrv::rv {
namespace {

TEST(Soc, UartPrintsAndEocTerminates) {
  // "hi!\n" through the UART register, then EOC.
  Soc soc;
  const Program prog = assemble(R"(
      li   t0, 0x1A100000   # UART
      li   a0, 104          # 'h'
      sb   a0, 0(t0)
      li   a0, 105          # 'i'
      sb   a0, 0(t0)
      li   a0, 33           # '!'
      sb   a0, 0(t0)
      li   a0, 10           # '\n'
      sb   a0, 0(t0)
      li   a0, 1
      sw   a0, 4(t0)        # EOC
      nop                   # must never execute
      nop
  )");
  soc.load(prog);
  EXPECT_TRUE(soc.run());
  EXPECT_TRUE(soc.eoc());
  EXPECT_EQ(soc.uart_output(), "hi!\n");
  EXPECT_FALSE(soc.cpu().halted());  // EOC, not ebreak
}

TEST(Soc, PrintStringLoop) {
  Soc soc;
  const Program prog = assemble(R"(
      li   t0, 0x1A100000
      la   t1, text
    print:
      lbu  a0, 0(t1)
      beq  a0, zero, done
      sb   a0, 0(t0)
      addi t1, t1, 1
      j    print
    done:
      sw   zero, 4(t0)
    text:
      .byte 80, 81, 45, 65, 76, 85, 0   # "PQ-ALU"
  )");
  soc.load(prog);
  EXPECT_TRUE(soc.run());
  EXPECT_EQ(soc.uart_output(), "PQ-ALU");
}

TEST(Soc, CycleCounterMmioMatchesCoreCounter) {
  Soc soc;
  const Program prog = assemble(R"(
      li   t0, 0x1A100008   # CYCLE_LO
      lw   s0, 0(t0)
      nop
      nop
      nop
      lw   s1, 0(t0)
      ebreak
  )");
  soc.load(prog);
  EXPECT_TRUE(soc.run());
  // between the two reads: load(2) + 3 nops = 5 cycles
  EXPECT_EQ(soc.cpu().reg(9) - soc.cpu().reg(8), 5u);
  EXPECT_EQ(soc.cpu().reg(9), static_cast<u32>(0) + soc.cpu().reg(9));
}

TEST(Soc, PqInstructionsWorkThroughTheSoc) {
  Soc soc;
  const Program prog = assemble(R"(
      li      a0, 50000
      pq.modq a1, a0, zero
      li      t0, 0x1A100000
      # print the result as two decimal digits (50000 % 251 = 49 -> "49")
      li      a2, 10
      divu    a3, a1, a2    # tens
      remu    a4, a1, a2    # ones
      addi    a3, a3, 48
      addi    a4, a4, 48
      sb      a3, 0(t0)
      sb      a4, 0(t0)
      sw      zero, 4(t0)
  )");
  soc.load(prog);
  EXPECT_TRUE(soc.run());
  EXPECT_EQ(soc.uart_output(), std::to_string(50000 % 251));
}

TEST(Soc, UnmappedPeripheralAddressFaults) {
  Soc soc;
  const Program prog = assemble(R"(
      li t0, 0x1A100040    # not a mapped register
      lw a0, 0(t0)
  )");
  soc.load(prog);
  EXPECT_FALSE(soc.run());  // abnormal stop, not a termination
  ASSERT_TRUE(soc.cpu().trapped());
  EXPECT_EQ(soc.cpu().trap_cause(), TrapCause::kLoadFault);
  EXPECT_EQ(soc.cpu().mtval(), 0x1A100040u);
}

TEST(Soc, StepLimitReported) {
  Soc soc;
  const Program prog = assemble("spin: j spin");
  soc.load(prog);
  EXPECT_FALSE(soc.run(100));
}

TEST(Soc, CompressedCodeRunsOnTheSoc) {
  Soc soc;
  const Program prog = assemble(R"(
      c.li  s0, 10
      c.li  a0, 0
    loop:
      c.addi a0, 3
      c.addi s0, -1
      c.bnez s0, loop
      li   t0, 0x1A100004
      sw   zero, 0(t0)
  )");
  soc.load(prog);
  EXPECT_TRUE(soc.run());
  EXPECT_EQ(soc.cpu().reg(10), 30u);
}

}  // namespace
}  // namespace lacrv::rv
