// Fault-campaign recall for the SDC defense: armed evasive plans must
// be *detected* (shadow divergence + quarantine trip) within the
// request budget, and — detection or not — no wrong answer may ever
// reach a caller while shadow verification samples at 100% with the
// serve-golden policy.
//
// Each trial arms a deterministic plan (an evasive transient-bit-flip
// storm on one unit, or a mixed random plan) on a fresh single-worker
// service and drives alternating encaps/decaps traffic. Every response
// is compared against an independently computed golden answer:
//
//   * encaps kOk  -> ciphertext and shared key must equal the golden
//                    re-execution of the same entropy;
//   * decaps of a well-formed golden ciphertext -> kOk with the golden
//                    shared key (a fault-corrupted decode that served
//                    kRejected would be a *wrong verdict* — the shadow
//                    verifier must have corrected it).
//
// A plan may legitimately go undetected only by being harmless: every
// drawn edge either missed the traffic window or never propagated into
// an output bit (and for sha256, the runtime hash cross-check corrects
// the digest below the shadow layer). What cannot happen is the
// in-between: a corrupted answer that ships. If any divergence was
// recorded, the implicated slot must have left the healthy state.
//
// LACRV_CAMPAIGN_TRIALS widens the sweep (more seeds per unit) for
// soak runs; the default keeps tier-1 fast.
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/status.h"
#include "fault/plan.h"
#include "lac/backend.h"
#include "lac/kem.h"
#include "service/service.h"
#include "verify/quarantine.h"

namespace lacrv::service {
namespace {

std::size_t env_trials(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

hash::Seed entropy_for(u64 i) {
  hash::Seed s{};
  for (std::size_t b = 0; b < 8; ++b)
    s[b] = static_cast<u8>((i * 0x9E3779B97F4A7C15ull) >> (8 * b));
  return s;
}

ServiceConfig campaign_config(ManualClock& clock) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 8;
  cfg.clock = &clock;
  cfg.enable_prober = false;
  cfg.retry.jitter_percent = 0;
  cfg.verify.enabled = true;
  cfg.verify.sample_per_mille = 1000;  // every request is shadow-verified
  return cfg;
}

/// Run one campaign: arm `plan`, drive up to `budget` alternating
/// encaps/decaps requests, assert the golden contract on every reply.
/// `require_ok` demands every request complete kOk — right for evasive
/// transients, which never produce a fault-indicating status (the
/// shadow layer corrects even a served kRejected misverdict back to the
/// golden kOk). Stuck-at plans may exhaust the retry budget first and
/// surface a *typed refusal*; that is correct layered behaviour, not a
/// wrong answer, so mixed campaigns pass require_ok = false and the
/// golden contract applies to every answer that was served.
/// Returns the number of shadow mismatches observed.
u64 run_campaign(fault::FaultPlan& plan, std::size_t budget, bool require_ok,
                 const std::string& label) {
  ManualClock clock;
  KemService svc(campaign_config(clock));
  const lac::Backend golden = lac::Backend::optimized();
  svc.arm_faults(plan);

  // A few extra requests after the first detection prove the
  // post-detection regime (quarantined slot pinned to software) also
  // ships only correct answers.
  std::size_t confirm_left = 8;
  for (std::size_t i = 0; i < budget; ++i) {
    const hash::Seed entropy = entropy_for(i);
    const lac::EncapsResult want =
        lac::encapsulate(svc.params(), golden, svc.keys().pk, entropy);

    if (i % 2 == 0) {
      KemResponse r =
          svc.submit({OpKind::kEncaps, entropy, {}, kNoDeadline}).get();
      if (r.status == Status::kOk) {
        EXPECT_EQ(r.encaps.ct.u, want.ct.u) << label << " request " << i;
        EXPECT_EQ(r.encaps.ct.v, want.ct.v) << label << " request " << i;
        EXPECT_EQ(r.encaps.key, want.key) << label << " request " << i;
      } else if (require_ok) {
        ADD_FAILURE() << label << " request " << i << ": status "
                      << status_name(r.status) << " (" << r.detail << ")";
      }
    } else {
      KemRequest req;
      req.op = OpKind::kDecaps;
      req.ct = want.ct;  // well-formed: the golden verdict is kOk
      KemResponse r = svc.submit(std::move(req)).get();
      if (r.status == Status::kOk) {
        EXPECT_EQ(r.key, want.key) << label << " request " << i;
      } else if (require_ok) {
        ADD_FAILURE() << label << " request " << i << ": status "
                      << status_name(r.status) << " (" << r.detail << ")";
      }
    }

    if (svc.verifier().mismatches().load() > 0 && confirm_left-- == 0) break;
  }

  const u64 mismatches = svc.verifier().mismatches().load();
  if (mismatches > 0) {
    // Detection must have consequences: at least one slot left healthy.
    bool any_quarantined = false;
    for (lac::Slot slot : lac::kAllSlots)
      any_quarantined |= svc.quarantine_state(slot) !=
                         verify::QuarantineState::kHealthy;
    EXPECT_TRUE(any_quarantined)
        << label << ": " << mismatches << " mismatches but no quarantine";
    EXPECT_FALSE(svc.divergences().empty()) << label;
    EXPECT_EQ(svc.verifier().corrected().load(), mismatches) << label;
  }
  svc.clear_faults();
  return mismatches;
}

TEST(VerifyRecallCampaign, EvasiveStormsNeverShipAWrongAnswer) {
  const std::size_t seeds_per_unit = env_trials("LACRV_CAMPAIGN_TRIALS", 1);
  constexpr std::size_t kBudget = 1000;

  // Dense storms on the two units where a single consumed flip most
  // directly corrupts an answer; soak runs widen to every RTL unit.
  struct Target {
    fault::Unit unit;
    std::size_t count;
    u64 max_edge;
  };
  std::vector<Target> targets = {
      {fault::Unit::kMulTer, 400, 60'000},
      {fault::Unit::kChien, 64, 2'000},
  };
  if (seeds_per_unit > 1) {
    targets.push_back({fault::Unit::kGfMul, 400, 200'000});
    targets.push_back({fault::Unit::kSha256, 400, 60'000});
    targets.push_back({fault::Unit::kBarrett, 64, 2'000});
  }

  u64 detected_campaigns = 0;
  for (const Target& t : targets) {
    for (std::size_t s = 0; s < seeds_per_unit; ++s) {
      const u64 seed = 0xca11ab1e + 0x1000 * s + static_cast<u64>(t.unit);
      fault::FaultPlan plan =
          fault::FaultPlan::storm(t.unit, seed, t.count, t.max_edge);
      const std::string label = std::string("storm:") +
                                fault::unit_name(t.unit) + ":" +
                                std::to_string(seed);
      if (run_campaign(plan, kBudget, /*require_ok=*/true, label) > 0)
        ++detected_campaigns;
    }
  }
  // The dense mul_ter/chien storms corrupt outputs within the budget;
  // a sweep where *nothing* was ever detected means the sampler is
  // blind, not that every storm was harmless.
  EXPECT_GT(detected_campaigns, 0u);
}

TEST(VerifyRecallCampaign, MixedRandomPlansNeverShipAWrongAnswer) {
  // Random plans mix stuck-ats (KAT-visible: the breaker tier catches
  // them and reroutes) with transients (shadow tier). Whichever layer
  // fires, the per-response golden contract must hold throughout.
  const std::size_t trials = env_trials("LACRV_CAMPAIGN_TRIALS", 2);
  for (std::size_t t = 0; t < trials; ++t) {
    fault::FaultPlan plan = fault::FaultPlan::random(0xfa117 + t, 6);
    run_campaign(plan, 64, /*require_ok=*/false,
                 "random:" + std::to_string(0xfa117 + t));
  }
}

}  // namespace
}  // namespace lacrv::service
