// Consistency invariants of the cycle-cost model itself — the relations
// the paper's tables rest on must hold structurally, independent of the
// calibrated magnitudes.
#include <gtest/gtest.h>

#include "common/costs.h"
#include "lac/gen_a.h"

namespace lacrv {
namespace {

TEST(CostModel, ConstantTimeStepsCostMoreThanTableDriven) {
  // Branch-free shift-and-add GF arithmetic is slower per step than the
  // log/alog table path — the price of constant time (Table I's 3x).
  EXPECT_GT(cost::kCtSyndromeStep, cost::kSubSyndromeStep);
  EXPECT_GT(cost::kCtChienTermStep, cost::kSubChienTermStep);
  EXPECT_GT(cost::kCtBmTermStep, cost::kSubBmTermStep);
}

TEST(CostModel, AcceleratedHashCheaperThanSoftware) {
  EXPECT_LT(cost::kHwSha256Block, cost::kSwSha256Block);
  EXPECT_LT(cost::kHwKeccakBlock, cost::kSwKeccakBlock);
  // ...and the Keccak core beats the byte-fed SHA-256 interface per byte:
  // 168-byte blocks vs 32-byte blocks.
  EXPECT_LT(cost::kHwKeccakBlock / 168.0, cost::kHwSha256Block / 32.0);
}

TEST(CostModel, PrgBlockCostDispatch) {
  using lac::HashImpl;
  using lac::PrgKind;
  EXPECT_EQ(lac::prg_block_cost(PrgKind::kSha256Ctr, HashImpl::kSoftware),
            cost::kSwSha256Block);
  EXPECT_EQ(lac::prg_block_cost(PrgKind::kSha256Ctr, HashImpl::kAccelerated),
            cost::kHwSha256Block);
  EXPECT_EQ(lac::prg_block_cost(PrgKind::kShake128, HashImpl::kAccelerated),
            cost::kHwKeccakBlock);
  EXPECT_EQ(lac::prg_block_cost(PrgKind::kShake128, HashImpl::kSoftware),
            cost::kSwKeccakBlock);
}

TEST(CostModel, ReferenceMultMagnitudeMatchesTableII) {
  // n rows x (outer + n * inner) must land on the paper's reference
  // multiplication cells — the anchor the whole layer-2 calibration
  // hangs off.
  const auto ref_mult = [](u64 n) {
    return n * (cost::kRefMultOuterStep + n * cost::kRefMultInnerStep);
  };
  EXPECT_NEAR(static_cast<double>(ref_mult(512)), 2381843.0, 25000.0);
  EXPECT_NEAR(static_cast<double>(ref_mult(1024)), 9482261.0, 50000.0);
}

TEST(CostModel, MulTerCallNearPaperValue) {
  const u64 call = cost::kKernelCallOverhead +
                   103 * cost::kMulTerLoadChunk + cost::kMulTerStartOverhead +
                   512 + 128 * cost::kMulTerReadChunk;
  EXPECT_NEAR(static_cast<double>(call), 6390.0, 6390.0 * 0.06);
}

TEST(CostModel, PipelineCostsAreOrdered) {
  EXPECT_LT(cost::kAlu, cost::kBranchTaken);
  EXPECT_LT(cost::kBranchNotTaken, cost::kBranchTaken);
  EXPECT_GT(cost::kDiv, 10 * cost::kMul);
  EXPECT_EQ(cost::kPqIssue, cost::kAlu);  // single-issue custom instruction
}

}  // namespace
}  // namespace lacrv
