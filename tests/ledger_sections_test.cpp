// Invariants of the measurement methodology itself: the Table II section
// decomposition must be internally consistent — sections are disjoint,
// sum to the total, and match standalone per-call measurements.
#include <gtest/gtest.h>

#include <numeric>

#include "lac/kem.h"
#include "lac/sampler.h"

namespace lacrv::lac {
namespace {

hash::Seed seed_of(u64 x) {
  hash::Seed s{};
  for (int i = 0; i < 8; ++i) s[i] = static_cast<u8>(x >> (8 * i));
  return s;
}

TEST(LedgerNesting, InnermostSectionGetsTheCharge) {
  CycleLedger ledger;
  ledger.charge(3);  // before any section: total only
  ledger.push_section("outer");
  ledger.charge(10);
  ledger.push_section("inner");
  ledger.charge(5);
  ledger.pop_section();
  ledger.charge(7);  // back in outer
  ledger.pop_section();
  ledger.charge(2);  // unsectioned again

  EXPECT_EQ(ledger.section("outer"), 17u);
  EXPECT_EQ(ledger.section("inner"), 5u);
  EXPECT_EQ(ledger.total(), 27u);
  u64 sum = 0;
  for (const auto& [name, cycles] : ledger.sections()) sum += cycles;
  EXPECT_EQ(sum, 22u);  // disjoint sections; total additionally has glue
}

TEST(LedgerNesting, ReenteredSectionAccumulates) {
  CycleLedger ledger;
  for (int i = 0; i < 3; ++i) {
    LedgerScope scope(&ledger, "stage");
    ledger.charge(4);
  }
  EXPECT_EQ(ledger.section("stage"), 12u);
  EXPECT_EQ(ledger.total(), 12u);
}

TEST(LedgerNesting, RecursiveSameNameSectionIsOneBucket) {
  CycleLedger ledger;
  ledger.push_section("rec");
  ledger.charge(1);
  ledger.push_section("rec");
  ledger.charge(2);
  ledger.pop_section();
  ledger.charge(4);
  ledger.pop_section();
  EXPECT_EQ(ledger.section("rec"), 7u);
  EXPECT_EQ(ledger.total(), 7u);
}

TEST(LedgerNesting, PopOnEmptyStackIsSafeAndResetClears) {
  CycleLedger ledger;
  ledger.pop_section();  // must not crash or underflow
  ledger.push_section("a");
  ledger.charge(9);
  ledger.pop_section();
  ledger.pop_section();  // extra pop after balanced use
  ledger.charge(1);
  EXPECT_EQ(ledger.section("a"), 9u);
  EXPECT_EQ(ledger.total(), 10u);

  ledger.reset();
  EXPECT_EQ(ledger.total(), 0u);
  EXPECT_EQ(ledger.section("a"), 0u);
  EXPECT_TRUE(ledger.sections().empty());
}

TEST(LedgerNesting, NullLedgerScopeIsNoOp) {
  LedgerScope scope(nullptr, "ghost");  // must not dereference
  charge(nullptr, 100);
}

TEST(LedgerSections, SectionsSumToTotal) {
  for (const Backend& backend :
       {Backend::reference(), Backend::optimized()}) {
    CycleLedger ledger;
    const KemKeyPair keys =
        kem_keygen(Params::lac192(), backend, seed_of(1), &ledger);
    const EncapsResult enc = encapsulate(Params::lac192(), backend, keys.pk,
                                         seed_of(2), &ledger);
    decapsulate(Params::lac192(), backend, keys, enc.ct, &ledger);

    u64 sum = 0;
    for (const auto& [name, cycles] : ledger.sections()) sum += cycles;
    // sections cover everything except unsectioned scheme glue
    EXPECT_LE(sum, ledger.total());
    EXPECT_GT(sum, ledger.total() / 2) << backend.name;
  }
}

TEST(LedgerSections, KeygenDecomposition) {
  // keygen = 1 GenA + 2 samples + 1 mult (+ glue): the sections must
  // match standalone calls of the same primitives exactly.
  const Params& params = Params::lac128();
  const Backend backend = Backend::reference();
  CycleLedger ledger;
  const KemKeyPair keys = kem_keygen(params, backend, seed_of(3), &ledger);

  CycleLedger ga;
  gen_a(keys.pk.seed_a, params, backend.hash_impl, &ga);
  EXPECT_EQ(ledger.section("gen_a"), ga.total());

  CycleLedger sp;
  sample_fixed_weight(seed_of(99), params, backend.hash_impl, &sp);
  EXPECT_EQ(ledger.section("sample_poly"), 2 * sp.total());

  CycleLedger mult;
  poly::mul_ref(poly::Coeffs(params.n, 1), keys.sk.s, true, &mult);
  EXPECT_EQ(ledger.section("mult"), mult.total());
}

TEST(LedgerSections, EncapsContainsThreeSamplesAndPartialMult) {
  const Params& params = Params::lac128();
  const Backend backend = Backend::reference();
  const KemKeyPair keys = kem_keygen(params, backend, seed_of(4));
  CycleLedger ledger;
  encapsulate(params, backend, keys.pk, seed_of(5), &ledger);

  // samples: s' and e' full-length, e'' lv-length with scaled weight
  CycleLedger full, epp;
  sample_fixed_weight(seed_of(1), params, backend.hash_impl, &full);
  const std::size_t lv = params.v_len();
  sample_fixed_weight_raw(seed_of(1), lv,
                          (params.weight * lv / params.n) & ~1u,
                          backend.hash_impl, &epp);
  EXPECT_EQ(ledger.section("sample_poly"), 2 * full.total() + epp.total());

  // mult: one full + one partial (lv rows)
  CycleLedger fullm, partm;
  poly::mul_ref(poly::Coeffs(params.n, 1), keys.sk.s, true, &fullm);
  poly::mul_ref_partial(poly::Coeffs(params.n, 1), keys.sk.s, lv, &partm);
  EXPECT_EQ(ledger.section("mult"), fullm.total() + partm.total());
}

TEST(LedgerSections, BchSectionsOnlyInDecapsulation) {
  const Params& params = Params::lac128();
  const Backend backend = Backend::reference_const_bch();
  const KemKeyPair keys = kem_keygen(params, backend, seed_of(6));
  CycleLedger enc_ledger;
  const EncapsResult enc =
      encapsulate(params, backend, keys.pk, seed_of(7), &enc_ledger);
  EXPECT_EQ(enc_ledger.section("bch_dec"), 0u);

  CycleLedger dec_ledger;
  decapsulate(params, backend, keys, enc.ct, &dec_ledger);
  // All decode work is attributed to the three innermost stage sections
  // (the enclosing "bch_dec" scope has no direct charges of its own).
  const u64 stages = dec_ledger.section("bch_syndrome") +
                     dec_ledger.section("bch_error_loc") +
                     dec_ledger.section("bch_chien");
  EXPECT_GT(stages, 0u);
  EXPECT_NEAR(static_cast<double>(stages), 514169.0, 514169.0 * 0.15);
}

}  // namespace
}  // namespace lacrv::lac
