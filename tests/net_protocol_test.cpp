// Frame-corpus tests for the wire protocol: the incremental parser must
// survive truncation at every byte boundary, garbage floods, oversized
// and impossible lengths, unknown versions/ops — always producing a
// typed error (or a correct frame), never a crash, an over-read or
// unbounded buffering. CI runs this suite under ASan and UBSan; the
// random corpora here are the fuzz harness of docs/serving.md.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/protocol.h"

namespace lacrv::net {
namespace {

u64 splitmix(u64& state) {
  u64 z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

RequestFrame sample_request(u64 id, std::size_t payload_len) {
  RequestFrame f;
  f.op = WireOp::kEncaps;
  f.request_id = id;
  f.key_id = 0;
  f.payload.resize(payload_len);
  for (std::size_t i = 0; i < payload_len; ++i)
    f.payload[i] = static_cast<u8>(i * 7 + id);
  return f;
}

TEST(NetProtocol, RequestRoundTrip) {
  const RequestFrame in = sample_request(0x1122334455667788ull, 32);
  const Bytes wire = encode_request(in);
  ASSERT_EQ(wire.size(), kRequestHeaderSize + 32);

  FrameParser parser;
  parser.feed(wire);
  RequestFrame out;
  ASSERT_EQ(parser.next(&out), ParseResult::kFrame);
  EXPECT_EQ(out.op, in.op);
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.key_id, in.key_id);
  EXPECT_EQ(out.payload, in.payload);
  EXPECT_EQ(parser.next(&out), ParseResult::kNeedMore);
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(NetProtocol, ResponseRoundTrip) {
  ResponseFrame in;
  in.status = WireStatus::kBadPayload;
  in.request_id = 42;
  in.payload = {'n', 'o', 'p', 'e'};
  const Bytes wire = encode_response(in);
  ASSERT_EQ(wire.size(), kResponseHeaderSize + 4);

  ResponseParser parser;
  parser.feed(wire);
  ResponseFrame out;
  ASSERT_EQ(parser.next(&out), ParseResult::kFrame);
  EXPECT_EQ(out.status, in.status);
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.payload, in.payload);
}

/// Every truncation point of a valid frame parses as kNeedMore — and the
/// remainder completes it.
TEST(NetProtocol, TruncationAtEveryBoundaryNeedsMore) {
  const Bytes wire = encode_request(sample_request(7, 48));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameParser parser;
    parser.feed(ByteView(wire.data(), cut));
    RequestFrame out;
    ASSERT_EQ(parser.next(&out), ParseResult::kNeedMore)
        << "cut at " << cut;
    EXPECT_FALSE(parser.latched());
    EXPECT_EQ(parser.mid_frame(), cut > 0);
    parser.feed(ByteView(wire.data() + cut, wire.size() - cut));
    ASSERT_EQ(parser.next(&out), ParseResult::kFrame) << "cut at " << cut;
    EXPECT_EQ(out.payload.size(), 48u);
  }
}

TEST(NetProtocol, BadMagicLatchesOnFirstByte) {
  FrameParser parser;
  parser.feed(Bytes{'X'});
  RequestFrame out;
  ASSERT_EQ(parser.next(&out), ParseResult::kError);
  EXPECT_EQ(parser.error(), WireStatus::kBadMagic);
  EXPECT_TRUE(parser.latched());
  // A latched parser drops further input instead of buffering it.
  parser.feed(Bytes(4096, 0xAB));
  EXPECT_EQ(parser.buffered(), 0u);
  EXPECT_EQ(parser.next(&out), ParseResult::kError);
}

TEST(NetProtocol, BadSecondMagicByteLatches) {
  FrameParser parser;
  parser.feed(Bytes{kMagic0, 'x'});
  RequestFrame out;
  ASSERT_EQ(parser.next(&out), ParseResult::kError);
  EXPECT_EQ(parser.error(), WireStatus::kBadMagic);
}

TEST(NetProtocol, UnknownVersionLatches) {
  Bytes wire = encode_request(sample_request(1, 8));
  wire[2] = 99;
  FrameParser parser;
  parser.feed(wire);
  RequestFrame out;
  ASSERT_EQ(parser.next(&out), ParseResult::kError);
  EXPECT_EQ(parser.error(), WireStatus::kBadVersion);
  EXPECT_NE(parser.error_detail().find("99"), std::string::npos);
}

TEST(NetProtocol, UnknownOpLatches) {
  Bytes wire = encode_request(sample_request(1, 8));
  wire[3] = 0x7F;
  FrameParser parser;
  parser.feed(wire);
  RequestFrame out;
  ASSERT_EQ(parser.next(&out), ParseResult::kError);
  EXPECT_EQ(parser.error(), WireStatus::kBadOp);
}

TEST(NetProtocol, UnknownResponseStatusLatches) {
  Bytes wire = encode_response({WireStatus::kOk, 1, {}});
  wire[3] = 200;
  ResponseParser parser;
  parser.feed(wire);
  ResponseFrame out;
  ASSERT_EQ(parser.next(&out), ParseResult::kError);
  EXPECT_EQ(parser.error(), WireStatus::kBadOp);
}

TEST(NetProtocol, OversizedLengthLatchesWithoutBuffering) {
  RequestFrame f = sample_request(1, 0);
  Bytes wire = encode_request(f);
  // Patch the length field to max_payload + 1; no payload follows, but
  // the parser must reject on the header alone.
  const u32 huge = static_cast<u32>(kMaxPayload) + 1;
  wire[16] = static_cast<u8>(huge);
  wire[17] = static_cast<u8>(huge >> 8);
  wire[18] = static_cast<u8>(huge >> 16);
  wire[19] = static_cast<u8>(huge >> 24);
  FrameParser parser;
  parser.feed(wire);
  RequestFrame out;
  ASSERT_EQ(parser.next(&out), ParseResult::kError);
  EXPECT_EQ(parser.error(), WireStatus::kOversized);
  EXPECT_EQ(parser.buffered(), 0u);  // latch releases the buffer
}

TEST(NetProtocol, PayloadAtExactCapIsAccepted) {
  FrameParser parser(/*max_payload=*/64);
  parser.feed(encode_request(sample_request(1, 64)));
  RequestFrame out;
  ASSERT_EQ(parser.next(&out), ParseResult::kFrame);
  EXPECT_EQ(out.payload.size(), 64u);

  FrameParser strict(/*max_payload=*/64);
  strict.feed(encode_request(sample_request(1, 65)));
  ASSERT_EQ(strict.next(&out), ParseResult::kError);
  EXPECT_EQ(strict.error(), WireStatus::kOversized);
}

TEST(NetProtocol, ValidFrameThenGarbageYieldsFrameThenError) {
  Bytes wire = encode_request(sample_request(5, 16));
  wire.push_back('Z');  // not kMagic0
  FrameParser parser;
  parser.feed(wire);
  RequestFrame out;
  ASSERT_EQ(parser.next(&out), ParseResult::kFrame);
  EXPECT_EQ(out.request_id, 5u);
  ASSERT_EQ(parser.next(&out), ParseResult::kError);
  EXPECT_EQ(parser.error(), WireStatus::kBadMagic);
}

/// Several frames fed in adversarial random slices must come out intact
/// and in order.
TEST(NetProtocol, RandomSlicingPreservesFrameStream) {
  u64 rng = 0xfeedface;
  for (int round = 0; round < 50; ++round) {
    Bytes stream;
    std::vector<RequestFrame> sent;
    for (u64 i = 0; i < 8; ++i) {
      RequestFrame f = sample_request(round * 100 + i,
                                      splitmix(rng) % 512);
      f.op = (i % 3 == 0) ? WireOp::kPing
                          : (i % 3 == 1 ? WireOp::kEncaps : WireOp::kDecaps);
      const Bytes wire = encode_request(f);
      stream.insert(stream.end(), wire.begin(), wire.end());
      sent.push_back(std::move(f));
    }
    FrameParser parser;
    std::vector<RequestFrame> got;
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + splitmix(rng) % 37, stream.size() - off);
      parser.feed(ByteView(stream.data() + off, n));
      off += n;
      RequestFrame f;
      while (parser.next(&f) == ParseResult::kFrame) got.push_back(f);
      ASSERT_FALSE(parser.latched());
    }
    ASSERT_EQ(got.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) {
      EXPECT_EQ(got[i].op, sent[i].op);
      EXPECT_EQ(got[i].request_id, sent[i].request_id);
      EXPECT_EQ(got[i].payload, sent[i].payload);
    }
  }
}

/// Pure-garbage corpus: random bytes in random chunks. The parser must
/// never crash, never yield a frame whose payload exceeds the cap, and
/// must end every round either latched with a typed error or waiting
/// for more input. (Under ASan/UBSan this doubles as an over-read
/// detector.)
TEST(NetProtocol, GarbageCorpusNeverCrashes) {
  u64 rng = 0xdeadbeefcafe;
  int latched_rounds = 0;
  for (int round = 0; round < 500; ++round) {
    FrameParser parser;
    RequestFrame out;
    const int chunks = 1 + static_cast<int>(splitmix(rng) % 8);
    for (int cidx = 0; cidx < chunks; ++cidx) {
      Bytes chunk(1 + splitmix(rng) % 256);
      for (u8& b : chunk) b = static_cast<u8>(splitmix(rng));
      parser.feed(chunk);
      ParseResult r;
      while ((r = parser.next(&out)) == ParseResult::kFrame)
        ASSERT_LE(out.payload.size(), kMaxPayload);
      ASSERT_TRUE(r == ParseResult::kNeedMore || r == ParseResult::kError);
    }
    if (parser.latched()) {
      ++latched_rounds;
      EXPECT_TRUE(is_protocol_error(parser.error()))
          << wire_status_name(parser.error());
      EXPECT_FALSE(parser.error_detail().empty());
    }
  }
  // A random first byte is 'L' with probability 1/256: essentially every
  // round must have latched with a typed verdict.
  EXPECT_GT(latched_rounds, 450);
}

TEST(NetProtocol, StatusMappingFollowsCcaContract) {
  // Implicit rejection must be invisible on the wire.
  EXPECT_EQ(wire_status_from(Status::kOk), WireStatus::kOk);
  EXPECT_EQ(wire_status_from(Status::kRejected), WireStatus::kOk);
  EXPECT_EQ(wire_status_from(Status::kDecodeFailure), WireStatus::kOk);
  EXPECT_EQ(wire_status_from(Status::kOverloaded), WireStatus::kOverloaded);
  EXPECT_EQ(wire_status_from(Status::kDeadlineExceeded),
            WireStatus::kDeadlineExceeded);
  EXPECT_EQ(wire_status_from(Status::kUnavailable), WireStatus::kUnavailable);
  EXPECT_EQ(wire_status_from(Status::kSelfTestFailure),
            WireStatus::kUnavailable);
  // An integrity refusal is a per-request verdict about one answer, not
  // a service- or connection-level condition.
  EXPECT_EQ(wire_status_from(Status::kIntegrity), WireStatus::kIntegrity);

  // Per-request errors keep the connection; protocol errors close it.
  EXPECT_FALSE(is_protocol_error(WireStatus::kUnknownKey));
  EXPECT_FALSE(is_protocol_error(WireStatus::kBadPayload));
  EXPECT_FALSE(is_protocol_error(WireStatus::kIntegrity));
  EXPECT_FALSE(is_protocol_error(WireStatus::kOverloaded));
  EXPECT_TRUE(is_protocol_error(WireStatus::kBadMagic));
  EXPECT_TRUE(is_protocol_error(WireStatus::kBadVersion));
  EXPECT_TRUE(is_protocol_error(WireStatus::kBadOp));
  EXPECT_TRUE(is_protocol_error(WireStatus::kOversized));

  EXPECT_STREQ(wire_status_name(WireStatus::kOversized), "oversized");
  EXPECT_STREQ(wire_status_name(WireStatus::kIntegrity), "integrity");
}

TEST(NetProtocol, IntegrityStatusRoundTripsOnTheWire) {
  ResponseFrame in;
  in.status = WireStatus::kIntegrity;
  in.request_id = 7;
  const Bytes wire = encode_response(in);

  ResponseParser parser;
  parser.feed(wire);
  ResponseFrame out;
  ASSERT_EQ(parser.next(&out), ParseResult::kFrame);
  EXPECT_EQ(out.status, WireStatus::kIntegrity);
  EXPECT_EQ(out.request_id, 7u);
  EXPECT_TRUE(out.payload.empty());
}

}  // namespace
}  // namespace lacrv::net
