#include <gtest/gtest.h>

#include "common/rng.h"
#include "hash/keccak.h"

namespace lacrv::hash {
namespace {

ByteView view(const std::string& s) {
  return ByteView(reinterpret_cast<const u8*>(s.data()), s.size());
}

TEST(KeccakF, ZeroStateKnownAnswer) {
  // Keccak-f[1600] applied to the all-zero state: first lane of the
  // reference test vector.
  KeccakState state{};
  keccak_f1600(state);
  EXPECT_EQ(state[0], 0xF1258F7940E1DDE7ULL);
  EXPECT_EQ(state[1], 0x84D5CCF933C0478AULL);
}

TEST(KeccakF, IsAPermutation) {
  // distinct inputs stay distinct
  KeccakState a{}, b{};
  b[7] = 1;
  keccak_f1600(a);
  keccak_f1600(b);
  EXPECT_NE(a, b);
}

TEST(Sha3_256, StandardVectors) {
  EXPECT_EQ(to_hex(ByteView(sha3_256({}).data(), 32)),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a");
  EXPECT_EQ(to_hex(ByteView(sha3_256(view("abc")).data(), 32)),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532");
}

TEST(Sha3_256, RateBoundaryLengths) {
  // lengths around the 136-byte rate: self-consistency across calls
  Xoshiro256 rng(1);
  for (std::size_t len : {135u, 136u, 137u, 272u}) {
    const Bytes msg = rng.bytes(len);
    EXPECT_EQ(sha3_256(msg), sha3_256(msg));
    Bytes tweaked = msg;
    tweaked[0] ^= 1;
    EXPECT_NE(sha3_256(msg), sha3_256(tweaked));
  }
}

TEST(Shake128, EmptyInputKnownAnswer) {
  Shake128 xof(ByteView{});
  std::array<u8, 32> out;
  xof.fill(out.data(), out.size());
  EXPECT_EQ(to_hex(ByteView(out.data(), out.size())),
            "7f9c2ba4e88f827d616045507605853ed73b8093f6efbc88eb1a6eacfa66ef26");
}

TEST(Shake128, StreamingMatchesBulk) {
  const std::string seed = "lac-keccak-ablation";
  Shake128 bulk(view(seed));
  std::array<u8, 500> expected;  // spans 3 rate blocks
  bulk.fill(expected.data(), expected.size());

  Shake128 stream(view(seed));
  for (std::size_t i = 0; i < expected.size(); ++i)
    ASSERT_EQ(stream.next_byte(), expected[i]) << "byte " << i;
}

TEST(Shake128, PermutationAccountingPerRateBlock) {
  Shake128 xof(view("x"));
  EXPECT_EQ(xof.permutations(), 0u);
  xof.next_byte();
  EXPECT_EQ(xof.permutations(), 1u);
  std::array<u8, Shake128::kRate> rest;
  xof.fill(rest.data(), rest.size() - 1);  // finish block 1
  EXPECT_EQ(xof.permutations(), 1u);
  xof.next_byte();  // first byte of block 2
  EXPECT_EQ(xof.permutations(), 2u);
}

TEST(Shake128, NextBelowUniformish) {
  Shake128 xof(view("distribution"));
  std::array<int, 251> histogram{};
  for (int i = 0; i < 251 * 30; ++i) ++histogram[xof.next_below(251)];
  const auto [lo, hi] = std::minmax_element(histogram.begin(), histogram.end());
  EXPECT_GT(*lo, 0);
  EXPECT_LT(*hi, 30 * 4);
}

TEST(Shake128, DistinctSeedsDistinctStreams) {
  Shake128 a(view("seed-a")), b(view("seed-b"));
  Bytes xa(64), xb(64);
  a.fill(xa.data(), xa.size());
  b.fill(xb.data(), xb.size());
  EXPECT_NE(xa, xb);
}

}  // namespace
}  // namespace lacrv::hash
