// LatencyHistogram edge cases: the bucket map and percentile behaviour
// at 0 samples, 1 sample, zero-latency samples and the max-u64 extreme
// — the values the metrics exposition (obs::MetricsRegistry) renders as
// cumulative Prometheus buckets.
#include <gtest/gtest.h>

#include "common/stats.h"

namespace lacrv::stats {
namespace {

u64 bucket_sum(const LatencyHistogram& h) {
  u64 sum = 0;
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) sum += h.bucket(b);
  return sum;
}

TEST(LatencyHistogram, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum_micros(), 0u);
  EXPECT_EQ(h.mean_micros(), 0.0);
  EXPECT_EQ(h.percentile_micros(50), 0u);
  EXPECT_EQ(h.percentile_micros(100), 0u);
  EXPECT_EQ(bucket_sum(h), 0u);
}

TEST(LatencyHistogram, SingleSampleEveryPercentileIsItsBucket) {
  LatencyHistogram h;
  h.record(1000);  // [512, 1024) is bucket 9 -> upper edge 1024
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum_micros(), 1000u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(bucket_sum(h), 1u);
  EXPECT_EQ(h.percentile_micros(1), 1024u);
  EXPECT_EQ(h.percentile_micros(50), 1024u);
  EXPECT_EQ(h.percentile_micros(99), 1024u);
  EXPECT_EQ(h.percentile_micros(100), 1024u);
}

TEST(LatencyHistogram, ZeroAndOneMicroLandInBucketZero) {
  LatencyHistogram h;
  h.record(0);
  h.record(1);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum_micros(), 1u);
  // Bucket 0's upper edge is 2 micros.
  EXPECT_EQ(h.percentile_micros(100),
            LatencyHistogram::bucket_upper_micros(0));
}

TEST(LatencyHistogram, BucketBoundariesArePowerOfTwoHalfOpen) {
  LatencyHistogram h;
  h.record(2);  // [2, 4) -> bucket 1
  h.record(3);
  h.record(4);  // [4, 8) -> bucket 2
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_upper_micros(1), 4u);
  EXPECT_EQ(LatencyHistogram::bucket_upper_micros(2), 8u);
}

TEST(LatencyHistogram, MaxU64SampleIsCountedOnce) {
  LatencyHistogram h;
  h.record(~u64{0});
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum_micros(), ~u64{0});
  // The capped search puts every astronomic sample in the last reachable
  // bucket; whatever that bucket is, the sample must be counted exactly
  // once and the percentile must land on its edge.
  EXPECT_EQ(bucket_sum(h), 1u);
  EXPECT_EQ(h.bucket(LatencyHistogram::kBuckets - 2), 1u);
  EXPECT_EQ(h.percentile_micros(100),
            LatencyHistogram::bucket_upper_micros(
                LatencyHistogram::kBuckets - 2));
}

TEST(LatencyHistogram, PercentilesSplitAcrossBuckets) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.record(10);     // bucket 3, edge 16
  h.record(1 << 20);                             // bucket 20, edge 2^21
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.percentile_micros(50), 16u);
  EXPECT_EQ(h.percentile_micros(99), 16u);
  EXPECT_EQ(h.percentile_micros(100), u64{1} << 21);
}

TEST(LatencyHistogram, BucketsSumToCountUnderLoad) {
  LatencyHistogram h;
  u64 v = 1;
  for (int i = 0; i < 1000; ++i) {
    h.record(v);
    v = v * 2862933555777941757ull + 3037000493ull;  // any spread of values
    v >>= 24;
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(bucket_sum(h), 1000u);
}

}  // namespace
}  // namespace lacrv::stats
