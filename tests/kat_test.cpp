// Known-answer tests. LAC's official KAT files target the exact round-2
// reference code, which this library reimplements from the spec (seed
// derivation and packing differ), so these are *self-generated* KATs:
// digests of keys/ciphertexts/shared secrets pinned at a known-good state
// of the library. They guard every layer (PRG, GenA, sampler, ring
// arithmetic, BCH, codec, FO transform, serialization) against silent
// behavioural drift — any change to any of those shows up here first.
//
// Also covers the CPA variant and cross-backend interoperability.
#include <gtest/gtest.h>

#include "lac/kem.h"
#include "perf/rtl_backend.h"

namespace lacrv::lac {
namespace {

hash::Seed seed_of(u8 v) {
  hash::Seed s{};
  s.fill(v);
  return s;
}

std::string digest_hex(ByteView data) {
  const hash::Digest d = hash::sha256(data);
  return to_hex(ByteView(d.data(), d.size()));
}

struct Kat {
  SecurityLevel level;
  const char* pk_digest;
  const char* ct_digest;
  const char* shared_key;
};

// Pinned 2026-07-06 from the first verified-green build (all functional
// and paper-shape tests passing).
constexpr Kat kKats[] = {
    {SecurityLevel::kLac128,
     "29688600c12599ff442e03b2c9f5a42741ea21ab166db3a36b97b2eb749c9ea9",
     "dfe3053ec4cb9924af0ab05afdf0d46aef2b4f6a80bb9995c0f96380614bd884",
     "765c6e4bd19304bb6dd1f7762033bba61f513a40fcc2a0529a73f2c0bf31856d"},
    {SecurityLevel::kLac192,
     "2c5d7f7f241b3ce5810a924756843f4e7f8f6bd7be0609f40d7cd7772da96e23",
     "31ef1eeb5dd447b7936042454a7e8200f1e7976f8125981d8cac11f561d7d3df",
     "549af73dbf04291a74cd3b73f3598dc91f2e69399ca9de78c3745631eaa34b7f"},
    {SecurityLevel::kLac256,
     "4230906bdcef70953dc0ec654fc5cbffcdd62594ab9b669c8f26450b13a724d3",
     "0fdd860f5dd160146277f11cd07fe32b1041664b0e01e446ccc7280c3a83e375",
     "0946fb98aa415f4ef48c79f11979480587b922acdb9729e3bde1815a9b7f7626"}};

class KatSweep : public ::testing::TestWithParam<Kat> {};

TEST_P(KatSweep, PinnedVectorsStillReproduce) {
  const Kat& kat = GetParam();
  const Params& params = Params::get(kat.level);
  const Backend backend = Backend::reference();

  const KemKeyPair keys = kem_keygen(params, backend, seed_of(0x5A));
  const EncapsResult enc = encapsulate(params, backend, keys.pk, seed_of(0x3C));
  const SharedKey key = decapsulate(params, backend, keys, enc.ct);

  EXPECT_EQ(digest_hex(serialize(params, keys.pk)), kat.pk_digest);
  EXPECT_EQ(digest_hex(serialize(params, enc.ct)), kat.ct_digest);
  EXPECT_EQ(to_hex(ByteView(key.data(), key.size())), kat.shared_key);
  EXPECT_EQ(key, enc.key);
}

TEST_P(KatSweep, AllBackendsReproduceTheSameVectors) {
  // The KAT is backend-independent by design: the co-design accelerates,
  // never changes values. Run the same vector through the modeled-opt and
  // the RTL-backed backends.
  const Kat& kat = GetParam();
  const Params& params = Params::get(kat.level);
  for (const Backend& backend :
       {Backend::reference_const_bch(), Backend::optimized(),
        perf::rtl_optimized_backend()}) {
    const KemKeyPair keys = kem_keygen(params, backend, seed_of(0x5A));
    const EncapsResult enc =
        encapsulate(params, backend, keys.pk, seed_of(0x3C));
    EXPECT_EQ(digest_hex(serialize(params, keys.pk)), kat.pk_digest)
        << backend.name;
    EXPECT_EQ(digest_hex(serialize(params, enc.ct)), kat.ct_digest)
        << backend.name;
    EXPECT_EQ(to_hex(ByteView(enc.key.data(), enc.key.size())),
              kat.shared_key)
        << backend.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllLevels, KatSweep, ::testing::ValuesIn(kKats),
                         [](const auto& info) {
                           return std::string(
                               Params::get(info.param.level).name)
                               .substr(4);
                         });

// ---- cross-backend interoperability ----------------------------------------

TEST(Interop, EncapsulateWithOneBackendDecapsulateWithAnother) {
  // A sender on a plain RISC-V core must interoperate with a receiver
  // using the PQ-ALU, in every combination.
  const Params& params = Params::lac128();
  const std::array<Backend, 3> backends = {Backend::reference(),
                                           Backend::reference_const_bch(),
                                           Backend::optimized()};
  for (const Backend& kg_backend : backends) {
    const KemKeyPair keys = kem_keygen(params, kg_backend, seed_of(1));
    for (const Backend& enc_backend : backends) {
      const EncapsResult enc =
          encapsulate(params, enc_backend, keys.pk, seed_of(2));
      for (const Backend& dec_backend : backends) {
        EXPECT_EQ(decapsulate(params, dec_backend, keys, enc.ct), enc.key)
            << kg_backend.name << "/" << enc_backend.name << "/"
            << dec_backend.name;
      }
    }
  }
}


TEST(KemSk, SerializationRoundTripsAllLevels) {
  for (const Params* params : Params::all()) {
    const Backend backend = Backend::reference();
    const KemKeyPair keys = kem_keygen(*params, backend, seed_of(0x77));
    const Bytes wire = serialize_kem_sk(*params, keys);
    EXPECT_EQ(wire.size(), kem_sk_bytes(*params)) << params->name;
    const KemKeyPair back = deserialize_kem_sk(*params, wire);
    EXPECT_EQ(back.sk.s, keys.sk.s);
    EXPECT_EQ(back.z, keys.z);
    EXPECT_EQ(back.pk.b, keys.pk.b);
    EXPECT_EQ(back.pk.seed_a, keys.pk.seed_a);

    // the deserialized key must decapsulate a fresh ciphertext
    const EncapsResult enc =
        encapsulate(*params, backend, keys.pk, seed_of(0x78));
    EXPECT_EQ(decapsulate(*params, backend, back, enc.ct), enc.key);
  }
}

TEST(KemSk, RejectsMalformedWireData) {
  const Params& params = Params::lac128();
  EXPECT_ANY_THROW(deserialize_kem_sk(params, Bytes(10)));
  const Backend backend = Backend::reference();
  const KemKeyPair keys = kem_keygen(params, backend, seed_of(0x79));
  Bytes wire = serialize_kem_sk(params, keys);
  wire[0] = 7;  // not a ternary coefficient encoding
  EXPECT_ANY_THROW(deserialize_kem_sk(params, wire));
}

// ---- CPA variant -------------------------------------------------------------

TEST(KemCpa, RoundTripAllLevels) {
  for (const Params* params : Params::all()) {
    const Backend backend = Backend::optimized();
    const KemKeyPair keys = kem_keygen(*params, backend, seed_of(3));
    const EncapsResult enc =
        encapsulate_cpa(*params, backend, keys.pk, seed_of(4));
    EXPECT_EQ(decapsulate_cpa(*params, backend, keys, enc.ct), enc.key)
        << params->name;
  }
}

TEST(KemCpa, CheaperThanCcaByOneEncryption) {
  // The re-encryption step is the CCA surcharge (Sec. VI-B).
  const Params& params = Params::lac256();
  const Backend backend = Backend::optimized();
  const KemKeyPair keys = kem_keygen(params, backend, seed_of(5));

  CycleLedger cca, cpa, enc_cost;
  const EncapsResult e = encapsulate(params, backend, keys.pk, seed_of(6));
  decapsulate(params, backend, keys, e.ct, &cca);
  const EncapsResult e2 =
      encapsulate_cpa(params, backend, keys.pk, seed_of(6));
  decapsulate_cpa(params, backend, keys, e2.ct, &cpa);
  encapsulate(params, backend, keys.pk, seed_of(6), &enc_cost);

  EXPECT_LT(cpa.total(), cca.total());
  const u64 saved = cca.total() - cpa.total();
  // the saving is roughly one encapsulation's worth of work
  EXPECT_NEAR(static_cast<double>(saved),
              static_cast<double>(enc_cost.total()),
              static_cast<double>(enc_cost.total()) * 0.25);
}

TEST(KemCpa, NoImplicitRejection) {
  // CPA decapsulation of a tampered ciphertext yields a *different* key
  // but is deterministic (no rejection machinery).
  const Params& params = Params::lac128();
  const Backend backend = Backend::reference();
  const KemKeyPair keys = kem_keygen(params, backend, seed_of(7));
  const EncapsResult enc =
      encapsulate_cpa(params, backend, keys.pk, seed_of(8));
  Ciphertext tampered = enc.ct;
  tampered.u[3] = poly::add_mod(tampered.u[3], 77);
  const SharedKey k1 = decapsulate_cpa(params, backend, keys, tampered);
  const SharedKey k2 = decapsulate_cpa(params, backend, keys, tampered);
  EXPECT_NE(k1, enc.key);
  EXPECT_EQ(k1, k2);
}

}  // namespace
}  // namespace lacrv::lac
