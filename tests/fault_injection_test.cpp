// Fault-injection and graceful-degradation tests (docs/robustness.md).
//
// The property under test, end to end: with any single injected fault —
// an RTL bit-flip / stuck-at / cycle-skew, or a tampered wire — the KEM
// either agrees on the shared key or returns a typed rejection status.
// Never a silent key mismatch, never an uncaught exception.
#include <gtest/gtest.h>

#include <cstdlib>

#include "fault/campaign.h"
#include "fault/plan.h"
#include "fault/selftest.h"
#include "lac/nist_api.h"
#include "perf/rtl_backend.h"

namespace lacrv::fault {
namespace {

using lac::Params;

// ---- fault plans -----------------------------------------------------------

TEST(FaultPlan, DeterministicForSeed) {
  const FaultPlan a = FaultPlan::random(42, 8);
  const FaultPlan b = FaultPlan::random(42, 8);
  ASSERT_EQ(a.faults().size(), 8u);
  for (std::size_t i = 0; i < a.faults().size(); ++i) {
    EXPECT_EQ(static_cast<int>(a.faults()[i].unit),
              static_cast<int>(b.faults()[i].unit));
    EXPECT_EQ(static_cast<int>(a.faults()[i].kind),
              static_cast<int>(b.faults()[i].kind));
    EXPECT_EQ(a.faults()[i].edge, b.faults()[i].edge);
    EXPECT_EQ(a.faults()[i].lane, b.faults()[i].lane);
    EXPECT_EQ(a.faults()[i].bit, b.faults()[i].bit);
  }
  // Different seed, different plan (first fault differs somewhere).
  const FaultPlan c = FaultPlan::random(43, 8);
  bool any_diff = false;
  for (std::size_t i = 0; i < c.faults().size(); ++i)
    any_diff = any_diff || c.faults()[i].edge != a.faults()[i].edge ||
               c.faults()[i].lane != a.faults()[i].lane;
  EXPECT_TRUE(any_diff);
}

TEST(FaultPlan, TamperFlipsExactlyOneBit) {
  FaultPlan plan;
  plan.add({Unit::kCiphertext, FaultKind::kBitFlip, 0, /*lane=*/1005,
            /*bit=*/3});
  Bytes bytes(100, 0xAB);
  Bytes tampered = bytes;
  plan.tamper(Unit::kCiphertext, tampered);
  int flipped = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    u8 diff = static_cast<u8>(bytes[i] ^ tampered[i]);
    while (diff) {
      flipped += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped, 1);
  EXPECT_EQ(bytes[5] ^ tampered[5], 1 << 3);  // 1005 % 100 = 5
  // Faults aimed at other boundaries leave the buffer alone.
  Bytes untouched = bytes;
  plan.tamper(Unit::kSecretKey, untouched);
  EXPECT_EQ(untouched, bytes);
}

// ---- accelerator self-tests ------------------------------------------------

TEST(SelfTest, CleanUnitsPass) {
  rtl::MulTerRtl mul(poly::kMulTerLength);
  rtl::GfMulRtl gf;
  rtl::ChienRtl chien;
  rtl::Sha256Rtl sha;
  rtl::BarrettRtl barrett;
  const DegradeReport report = selftest_all(mul, gf, chien, sha, barrett);
  EXPECT_FALSE(report.degraded()) << report.to_string();
}

TEST(SelfTest, StuckAtFaultCaughtInEveryUnit) {
  // A stuck-at fault fires on every clock edge, so the construction-time
  // KAT must catch it in each of the five units.
  for (const Unit unit : kRtlUnits) {
    FaultPlan plan;
    plan.add({unit, FaultKind::kStuckAtOne, /*edge=*/0, /*lane=*/3,
              /*bit=*/1});
    rtl::MulTerRtl mul(poly::kMulTerLength);
    rtl::GfMulRtl gf;
    rtl::ChienRtl chien;
    rtl::Sha256Rtl sha;
    rtl::BarrettRtl barrett;
    plan.arm(mul);
    plan.arm(gf);
    plan.arm(chien);
    plan.arm(sha);
    plan.arm(barrett);
    const DegradeReport report = selftest_all(mul, gf, chien, sha, barrett);
    ASSERT_TRUE(report.degraded()) << "stuck-at not caught in "
                                   << unit_name(unit);
    bool target_flagged = false;
    for (const auto& entry : report.entries) {
      target_flagged =
          target_flagged || std::string(entry.unit) == unit_name(unit);
      EXPECT_EQ(entry.status, Status::kSelfTestFailure);
      // A gf_mul fault legitimately also fails the Chien KAT (the Chien
      // unit evaluates through four internal GF multipliers); any other
      // collateral entry would be a hook wired to the wrong unit.
      if (std::string(entry.unit) != unit_name(unit))
        EXPECT_TRUE(unit == Unit::kGfMul &&
                    std::string(entry.unit) == "chien")
            << report.to_string();
    }
    EXPECT_TRUE(target_flagged) << report.to_string();
  }
}

// ---- backend degradation ladder --------------------------------------------

TEST(Backend, FaultyMulUnitBenchedAndRoundTripStillAgrees) {
  // A unit that fails its construction KAT is replaced by the modeled
  // software implementation; the KEM keeps working.
  poly::MulTer512 broken = [](const poly::Ternary& a, const poly::Coeffs&,
                              bool, CycleLedger*) {
    return poly::Coeffs(a.size(), 0);  // returns garbage
  };
  DegradeReport report;
  const lac::Backend backend = lac::Backend::optimized_with(
      std::move(broken), lac::modeled_chien(), &report);
  ASSERT_TRUE(report.degraded());
  EXPECT_STREQ(report.entries[0].unit, "mul_ter");

  const Params& params = Params::lac128();
  const hash::Seed master{{1}};
  const hash::Seed entropy{{2}};
  const lac::KemKeyPair keys = lac::kem_keygen(params, backend, master);
  const lac::EncapsOutcome enc =
      lac::encapsulate_checked(params, backend, keys.pk, entropy);
  ASSERT_EQ(enc.status, Status::kOk);
  const lac::DecapsOutcome dec =
      lac::decapsulate_checked(params, backend, keys, enc.result.ct);
  EXPECT_EQ(dec.status, Status::kOk);
  EXPECT_EQ(dec.key, enc.result.key);
}

TEST(Backend, FaultyHasherRejectedByConstructionKat) {
  DegradeReport report;
  lac::Backend backend = lac::Backend::optimized();
  backend.with_hasher([](ByteView) { return hash::Digest{}; },
                      /*verify=*/true, &report);
  ASSERT_TRUE(report.degraded());
  EXPECT_STREQ(report.entries[0].unit, "sha256");
  EXPECT_FALSE(static_cast<bool>(backend.hasher));  // software hash serves
}

TEST(Backend, RuntimeHashFaultDetectedAndCorrected) {
  // A hasher that passes the short construction KAT but corrupts digests
  // of longer messages — the per-digest software cross-check must catch
  // it, substitute the correct digest, and report the detection. Both
  // sides self-correct, so the shared keys still agree.
  DegradeReport report;
  lac::Backend backend = lac::Backend::optimized();
  backend.with_hasher(
      [](ByteView data) {
        hash::Digest d = hash::sha256(data);
        if (data.size() > 200) d[0] ^= 0x80;  // lie on long inputs
        return d;
      },
      /*verify=*/true, &report);
  ASSERT_FALSE(report.degraded());  // the KAT cannot see the lie
  ASSERT_TRUE(static_cast<bool>(backend.hasher));

  const Params& params = Params::lac128();
  const lac::KemKeyPair keys =
      lac::kem_keygen(params, backend, hash::Seed{{3}});
  const lac::EncapsOutcome enc =
      lac::encapsulate_checked(params, backend, keys.pk, hash::Seed{{4}});
  ASSERT_EQ(enc.status, Status::kOk);
  EXPECT_TRUE(enc.hash_fault_detected);  // pk/ct hashes exceed 200 bytes
  const lac::DecapsOutcome dec =
      lac::decapsulate_checked(params, backend, keys, enc.result.ct);
  EXPECT_EQ(dec.status, Status::kOk);
  EXPECT_TRUE(dec.hash_fault_detected);
  EXPECT_EQ(dec.key, enc.result.key);
}

TEST(Backend, RtlOptimizedBackendPassesConstructionKats) {
  DegradeReport report;
  const lac::Backend backend = perf::rtl_optimized_backend(&report);
  EXPECT_FALSE(report.degraded()) << report.to_string();
  EXPECT_STREQ(backend.name, "opt-rtl");
}

// ---- typed error propagation ----------------------------------------------

TEST(Bch, BeyondCapacityReportsDecodeFailure) {
  const bch::CodeSpec& spec = bch::CodeSpec::bch_511_439_8();  // t = 8
  bch::Message msg{};
  for (std::size_t i = 0; i < msg.size(); ++i)
    msg[i] = static_cast<u8>(i * 11 + 1);
  bch::BitVec word = bch::encode(spec, msg);

  // t errors: corrected, typed kOk.
  bch::BitVec at_capacity = word;
  for (int i = 0; i < spec.t; ++i)
    at_capacity[spec.message_degree(i * 29)] ^= 1;
  const bch::DecodeResult ok =
      bch::decode(spec, at_capacity, bch::Flavor::kConstantTime);
  EXPECT_TRUE(ok.ok);
  EXPECT_EQ(ok.status, Status::kOk);
  EXPECT_EQ(ok.message, msg);

  // t + 1 errors: undecodable, typed kDecodeFailure — and no throw.
  bch::BitVec beyond = word;
  for (int i = 0; i <= spec.t; ++i)
    beyond[spec.message_degree(i * 29)] ^= 1;
  const bch::DecodeResult bad =
      bch::decode(spec, beyond, bch::Flavor::kConstantTime);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.status, Status::kDecodeFailure);
}

TEST(Kem, TamperedCiphertextImplicitlyRejected) {
  const Params& params = Params::lac128();
  const lac::Backend backend = lac::Backend::optimized();
  const lac::KemKeyPair keys =
      lac::kem_keygen(params, backend, hash::Seed{{5}});
  const lac::EncapsResult enc =
      lac::encapsulate(params, backend, keys.pk, hash::Seed{{6}});

  // Flip one bit in the (always parseable) compressed-v tail of the wire.
  Bytes wire = lac::serialize(params, enc.ct);
  wire[wire.size() - 1] ^= 1;
  const lac::Ciphertext tampered = lac::deserialize_ct(params, wire);

  const lac::DecapsOutcome out =
      lac::decapsulate_checked(params, backend, keys, tampered);
  // Typed rejection (FO mismatch, or decode failure if the flip pushed
  // the noise over the BCH capacity) — and a usable implicit-rejection
  // key that is not the encapsulated one.
  EXPECT_TRUE(out.status == Status::kRejected ||
              out.status == Status::kDecodeFailure);
  EXPECT_NE(out.key, enc.key);

  // The implicit-rejection key is deterministic (derived from z and the
  // ciphertext), and the legacy entry point returns the same key without
  // throwing.
  const lac::DecapsOutcome again =
      lac::decapsulate_checked(params, backend, keys, tampered);
  EXPECT_EQ(again.key, out.key);
  lac::SharedKey legacy{};
  EXPECT_NO_THROW(legacy = lac::decapsulate(params, backend, keys, tampered));
  EXPECT_EQ(legacy, out.key);

  // The untampered ciphertext still round-trips.
  EXPECT_EQ(lac::decapsulate(params, backend, keys, enc.ct), enc.key);
}

// ---- directed single-fault trials ------------------------------------------

TEST(Campaign, DirectedTransientInEachUnitIsSound) {
  const Params& params = Params::lac128();
  for (const Unit unit : kRtlUnits) {
    for (const FaultKind kind : {FaultKind::kBitFlip, FaultKind::kCycleSkew}) {
      FaultPlan plan;
      plan.add({unit, kind, /*edge=*/1234, /*lane=*/2, /*bit=*/1});
      const TrialResult trial =
          run_planned_trial(params, std::move(plan), /*seed=*/77);
      EXPECT_NE(trial.verdict, TrialVerdict::kKeyMismatch)
          << unit_name(unit) << " kind " << static_cast<int>(kind);
      EXPECT_NE(trial.verdict, TrialVerdict::kInternalError)
          << unit_name(unit) << " kind " << static_cast<int>(kind);
    }
  }
}

TEST(Campaign, DirectedStuckAtInEachUnitDegradesAndAgrees) {
  // Stuck-at faults fire on every edge: the construction KATs bench the
  // unit and the software fallback carries the round trip.
  const Params& params = Params::lac128();
  for (const Unit unit : kRtlUnits) {
    FaultPlan plan;
    plan.add({unit, FaultKind::kStuckAtZero, /*edge=*/0, /*lane=*/0,
              /*bit=*/0});
    const TrialResult trial =
        run_planned_trial(params, std::move(plan), /*seed=*/99);
    EXPECT_NE(trial.verdict, TrialVerdict::kKeyMismatch) << unit_name(unit);
    EXPECT_NE(trial.verdict, TrialVerdict::kInternalError) << unit_name(unit);
  }
}

// ---- randomized campaign ---------------------------------------------------

TEST(Campaign, RandomizedSingleFaultCampaignIsSound) {
  CampaignConfig config;
  config.seed = 20260807;
  config.trials = 1000;
  if (const char* env = std::getenv("LACRV_CAMPAIGN_TRIALS"))
    config.trials = std::atoi(env);
  const CampaignResult result =
      run_campaign(Params::lac128(), config);
  SCOPED_TRACE(result.to_string());
  EXPECT_TRUE(result.sound()) << result.to_string();
  EXPECT_EQ(result.key_mismatches, 0);
  EXPECT_EQ(result.uncaught_exceptions, 0);
  EXPECT_EQ(result.agreed + result.agreed_degraded + result.rejected +
                result.internal_errors,
            result.trials);
  // The campaign must actually exercise the defenses, not just the happy
  // path: some trials degrade at construction, some reject at runtime.
  EXPECT_GT(result.agreed_degraded + result.degraded_trials, 0);
  EXPECT_GT(result.rejected, 0);
}

}  // namespace
}  // namespace lacrv::fault
