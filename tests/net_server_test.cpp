// Integration tests for the epoll TCP front end over real loopback
// sockets: honest round-trips with end-to-end key agreement, typed
// error replies for malformed and hostile input (connection surviving
// or closing exactly as the protocol contract says), admission control,
// deadline reaping, half-close handling and graceful drain. Deadlines
// use short real-clock budgets — assertions are on *events* (a reply, a
// close), never on elapsed-time windows, so the suite stays stable on
// loaded CI machines.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>

#include "lac/kem.h"
#include "lac/pke.h"
#include "net/protocol.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "service/service.h"

namespace lacrv::net {
namespace {

hash::Seed seed_from(u8 tag) {
  hash::Seed s{};
  s[0] = tag;
  s[31] = static_cast<u8>(tag ^ 0x5a);
  return s;
}

/// Minimal blocking client for the wire protocol: sends whole frames,
/// pulls whole replies through a ResponseParser, with a receive timeout
/// so a server bug fails the test instead of hanging it.
class Client {
 public:
  explicit Client(u16 port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
    timeval tv{10, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }
  ~Client() { close(); }

  bool connected() const { return connected_; }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  void half_close() { ::shutdown(fd_, SHUT_WR); }

  bool send_raw(const Bytes& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }
  bool send(const RequestFrame& f) { return send_raw(encode_request(f)); }

  /// Receive one frame. Returns false on timeout, EOF or a client-side
  /// parse error (check eof()/parse_error() to distinguish).
  bool recv(ResponseFrame* out) {
    for (;;) {
      ResponseFrame f;
      const ParseResult r = parser_.next(&f);
      if (r == ParseResult::kFrame) {
        *out = std::move(f);
        return true;
      }
      if (r == ParseResult::kError) {
        parse_error_ = true;
        return false;
      }
      u8 buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n > 0) {
        parser_.feed(ByteView(buf, static_cast<std::size_t>(n)));
        continue;
      }
      if (n == 0) eof_ = true;
      return false;
    }
  }

  /// Block until the server closes (EOF) — or a timeout/error.
  bool await_eof() {
    u8 buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n == 0) return true;
      if (n < 0) return false;
      parser_.feed(ByteView(buf, static_cast<std::size_t>(n)));
    }
  }

  bool eof() const { return eof_; }
  bool parse_error() const { return parse_error_; }

 private:
  int fd_ = -1;
  bool connected_ = false;
  bool eof_ = false;
  bool parse_error_ = false;
  ResponseParser parser_;
};

struct Rig {
  std::unique_ptr<service::KemService> svc;
  std::unique_ptr<TcpServer> server;

  explicit Rig(ServerConfig net_cfg = {}, std::size_t workers = 2,
               std::size_t queue_capacity = 32) {
    service::ServiceConfig cfg;
    cfg.workers = workers;
    cfg.queue_capacity = queue_capacity;
    cfg.enable_prober = false;
    svc = std::make_unique<service::KemService>(cfg);
    server = std::make_unique<TcpServer>(*svc, net_cfg);
    std::string error;
    const Status st = server->start(&error);
    EXPECT_EQ(st, Status::kOk) << error;
  }
  ~Rig() {
    server->stop(/*drain=*/false);
    svc->stop();
  }
  u16 port() const { return server->port(); }
};

TEST(NetServer, PingRoundTrip) {
  Rig rig;
  Client c(rig.port());
  ASSERT_TRUE(c.connected());
  ASSERT_TRUE(c.send({WireOp::kPing, 77, 0, {}}));
  ResponseFrame r;
  ASSERT_TRUE(c.recv(&r));
  EXPECT_EQ(r.status, WireStatus::kOk);
  EXPECT_EQ(r.request_id, 77u);
  EXPECT_TRUE(r.payload.empty());
  EXPECT_EQ(rig.server->counters().pings, 1u);
}

TEST(NetServer, EncapsDecapsAgreeOnTheSharedKey) {
  Rig rig;
  Client c(rig.port());
  ASSERT_TRUE(c.connected());

  const hash::Seed entropy = seed_from(9);
  RequestFrame enc;
  enc.op = WireOp::kEncaps;
  enc.request_id = 1;
  enc.payload.assign(entropy.begin(), entropy.end());
  ASSERT_TRUE(c.send(enc));
  ResponseFrame er;
  ASSERT_TRUE(c.recv(&er));
  ASSERT_EQ(er.status, WireStatus::kOk);
  const std::size_t ct_len = rig.svc->params().ct_bytes();
  ASSERT_EQ(er.payload.size(), ct_len + 32);
  const Bytes ct(er.payload.begin(),
                 er.payload.begin() + static_cast<std::ptrdiff_t>(ct_len));
  const Bytes key(er.payload.end() - 32, er.payload.end());

  // The wire bytes decapsulate to the same key — through the server and
  // through a direct golden-software computation.
  RequestFrame dec;
  dec.op = WireOp::kDecaps;
  dec.request_id = 2;
  dec.payload = ct;
  ASSERT_TRUE(c.send(dec));
  ResponseFrame dr;
  ASSERT_TRUE(c.recv(&dr));
  ASSERT_EQ(dr.status, WireStatus::kOk);
  EXPECT_EQ(dr.payload, key);

  const lac::SharedKey golden = lac::decapsulate(
      rig.svc->params(), lac::Backend::optimized(), rig.svc->keys(),
      lac::deserialize_ct(rig.svc->params(), ct));
  EXPECT_TRUE(std::equal(key.begin(), key.end(), golden.begin()));
}

/// Tampering with ciphertext bytes must yield an ordinary kOk reply
/// carrying a *different* key — never a distinguishable error (the FO
/// implicit-rejection contract, kept across the wire).
TEST(NetServer, TamperedCiphertextIsStatusBlind) {
  Rig rig;
  Client c(rig.port());
  RequestFrame enc;
  enc.op = WireOp::kEncaps;
  enc.request_id = 1;
  const hash::Seed entropy = seed_from(3);
  enc.payload.assign(entropy.begin(), entropy.end());
  ASSERT_TRUE(c.send(enc));
  ResponseFrame er;
  ASSERT_TRUE(c.recv(&er));
  ASSERT_EQ(er.status, WireStatus::kOk);
  const std::size_t ct_len = rig.svc->params().ct_bytes();
  Bytes ct(er.payload.begin(),
           er.payload.begin() + static_cast<std::ptrdiff_t>(ct_len));
  const Bytes key(er.payload.end() - 32, er.payload.end());
  ct[0] ^= 0x01;

  RequestFrame dec;
  dec.op = WireOp::kDecaps;
  dec.request_id = 2;
  dec.payload = ct;
  ASSERT_TRUE(c.send(dec));
  ResponseFrame dr;
  ASSERT_TRUE(c.recv(&dr));
  EXPECT_EQ(dr.status, WireStatus::kOk);  // blind
  ASSERT_EQ(dr.payload.size(), 32u);
  EXPECT_NE(dr.payload, key);  // but not the honest key
}

TEST(NetServer, GarbageGetsTypedErrorThenClose) {
  Rig rig;
  Client c(rig.port());
  ASSERT_TRUE(c.send_raw(Bytes{'g', 'a', 'r', 'b', 'a', 'g', 'e'}));
  ResponseFrame r;
  ASSERT_TRUE(c.recv(&r));
  EXPECT_EQ(r.status, WireStatus::kBadMagic);
  EXPECT_EQ(r.request_id, 0u);
  EXPECT_FALSE(r.payload.empty());  // carries a diagnostic
  EXPECT_TRUE(c.await_eof());
  EXPECT_EQ(rig.server->counters().protocol_errors, 1u);
}

TEST(NetServer, OversizedFrameGetsTypedErrorThenClose) {
  Rig rig;
  Client c(rig.port());
  Bytes header = encode_request({WireOp::kEncaps, 9, 0, {}});
  const u32 huge = static_cast<u32>(kMaxPayload) + 1;
  header[16] = static_cast<u8>(huge);
  header[17] = static_cast<u8>(huge >> 8);
  header[18] = static_cast<u8>(huge >> 16);
  header[19] = static_cast<u8>(huge >> 24);
  ASSERT_TRUE(c.send_raw(header));
  ResponseFrame r;
  ASSERT_TRUE(c.recv(&r));
  EXPECT_EQ(r.status, WireStatus::kOversized);
  EXPECT_TRUE(c.await_eof());
}

TEST(NetServer, BadVersionGetsTypedErrorThenClose) {
  Rig rig;
  Client c(rig.port());
  Bytes wire = encode_request({WireOp::kPing, 1, 0, {}});
  wire[2] = 42;
  ASSERT_TRUE(c.send_raw(wire));
  ResponseFrame r;
  ASSERT_TRUE(c.recv(&r));
  EXPECT_EQ(r.status, WireStatus::kBadVersion);
  EXPECT_TRUE(c.await_eof());
}

/// Per-request errors (wrong payload size, unknown key) answer typed
/// and keep the connection serving.
TEST(NetServer, BadPayloadIsTypedAndConnectionSurvives) {
  Rig rig;
  Client c(rig.port());
  RequestFrame bad;
  bad.op = WireOp::kEncaps;
  bad.request_id = 5;
  bad.payload = Bytes(7, 0xAA);  // not 32 bytes of entropy
  ASSERT_TRUE(c.send(bad));
  ResponseFrame r;
  ASSERT_TRUE(c.recv(&r));
  EXPECT_EQ(r.status, WireStatus::kBadPayload);
  EXPECT_EQ(r.request_id, 5u);

  RequestFrame unknown;
  unknown.op = WireOp::kDecaps;
  unknown.request_id = 6;
  unknown.key_id = 12345;
  unknown.payload = Bytes(rig.svc->params().ct_bytes(), 0);
  ASSERT_TRUE(c.send(unknown));
  ASSERT_TRUE(c.recv(&r));
  EXPECT_EQ(r.status, WireStatus::kUnknownKey);

  // Still alive: a ping round-trips on the same connection.
  ASSERT_TRUE(c.send({WireOp::kPing, 7, 0, {}}));
  ASSERT_TRUE(c.recv(&r));
  EXPECT_EQ(r.status, WireStatus::kOk);
  EXPECT_EQ(r.request_id, 7u);
  EXPECT_EQ(rig.server->counters().bad_requests, 2u);
}

/// An undecodable-but-right-sized ciphertext image is a typed
/// kBadPayload (boundary validation), not an exception or a crash.
TEST(NetServer, UndecodableCiphertextIsTyped) {
  Rig rig;
  Client c(rig.port());
  RequestFrame dec;
  dec.op = WireOp::kDecaps;
  dec.request_id = 8;
  dec.payload = Bytes(rig.svc->params().ct_bytes(), 0xFF);  // v-part > q
  ASSERT_TRUE(c.send(dec));
  ResponseFrame r;
  ASSERT_TRUE(c.recv(&r));
  EXPECT_EQ(r.status, WireStatus::kBadPayload);
  // Connection survives.
  ASSERT_TRUE(c.send({WireOp::kPing, 9, 0, {}}));
  ASSERT_TRUE(c.recv(&r));
  EXPECT_EQ(r.status, WireStatus::kOk);
}

TEST(NetServer, AdmissionControlShedsWithTypedOverload) {
  ServerConfig cfg;
  cfg.max_connections = 1;
  Rig rig(cfg);
  Client first(rig.port());
  ASSERT_TRUE(first.connected());
  // Make sure the first connection is registered before the second
  // arrives (accept order is the kernel's, but one round-trip serializes
  // it).
  ResponseFrame r;
  ASSERT_TRUE(first.send({WireOp::kPing, 1, 0, {}}));
  ASSERT_TRUE(first.recv(&r));

  Client second(rig.port());
  ASSERT_TRUE(second.connected());
  ASSERT_TRUE(second.recv(&r));  // unsolicited typed verdict
  EXPECT_EQ(r.status, WireStatus::kOverloaded);
  EXPECT_EQ(r.request_id, 0u);
  EXPECT_TRUE(second.await_eof());
  EXPECT_EQ(rig.server->counters().rejected_connections, 1u);

  // The admitted connection is unaffected.
  ASSERT_TRUE(first.send({WireOp::kPing, 2, 0, {}}));
  ASSERT_TRUE(first.recv(&r));
  EXPECT_EQ(r.status, WireStatus::kOk);
}

TEST(NetServer, ReadDeadlineReapsSlowloris) {
  ServerConfig cfg;
  cfg.read_deadline_micros = 100'000;  // 100ms to finish a frame
  Rig rig(cfg);
  Client c(rig.port());
  // Half a header, then silence: a slowloris trickle.
  const Bytes wire = encode_request({WireOp::kPing, 1, 0, {}});
  ASSERT_TRUE(c.send_raw(Bytes(wire.begin(), wire.begin() + 6)));
  EXPECT_TRUE(c.await_eof());  // reaped, not retained
  EXPECT_EQ(rig.server->counters().read_timeouts, 1u);
}

TEST(NetServer, IdleDeadlineClosesQuietConnections) {
  ServerConfig cfg;
  cfg.idle_deadline_micros = 100'000;
  Rig rig(cfg);
  Client c(rig.port());
  ASSERT_TRUE(c.connected());
  EXPECT_TRUE(c.await_eof());
  EXPECT_EQ(rig.server->counters().idle_closes, 1u);
}

/// A client that half-closes after sending still gets its reply — the
/// write side of the connection outlives the read side.
TEST(NetServer, HalfCloseStillGetsReply) {
  Rig rig;
  Client c(rig.port());
  RequestFrame enc;
  enc.op = WireOp::kEncaps;
  enc.request_id = 3;
  const hash::Seed entropy = seed_from(7);
  enc.payload.assign(entropy.begin(), entropy.end());
  ASSERT_TRUE(c.send(enc));
  c.half_close();
  ResponseFrame r;
  ASSERT_TRUE(c.recv(&r));
  EXPECT_EQ(r.status, WireStatus::kOk);
  EXPECT_EQ(r.request_id, 3u);
  EXPECT_TRUE(c.await_eof());
}

/// Graceful drain: a request in flight when shutdown begins is finished
/// and its reply flushed before the connection closes.
TEST(NetServer, DrainFinishesInFlightRequests) {
  Rig rig(ServerConfig{}, /*workers=*/1);
  // Park the single worker so the net request stays queued while drain
  // begins.
  std::promise<void> started, open;
  auto busy = rig.svc->submit_job([&](lac::Backend&) {
    started.set_value();
    open.get_future().wait();
    service::KemResponse ok;
    ok.status = Status::kOk;
    return ok;
  });
  started.get_future().wait();

  Client c(rig.port());
  RequestFrame enc;
  enc.op = WireOp::kEncaps;
  enc.request_id = 11;
  const hash::Seed entropy = seed_from(1);
  enc.payload.assign(entropy.begin(), entropy.end());
  ASSERT_TRUE(c.send(enc));
  // Wait until the server has actually submitted it to the service.
  while (rig.server->counters().requests_submitted == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  rig.server->request_shutdown(/*drain=*/true);
  open.set_value();  // release the worker; the queued request executes
  rig.server->join();
  EXPECT_EQ(busy.get().status, Status::kOk);

  // The reply was flushed before the drain closed the connection.
  ResponseFrame r;
  ASSERT_TRUE(c.recv(&r));
  EXPECT_EQ(r.status, WireStatus::kOk);
  EXPECT_EQ(r.request_id, 11u);
  EXPECT_TRUE(c.await_eof());
  EXPECT_FALSE(rig.server->running());
}

TEST(NetServer, StopIsIdempotentAndCountersExpose) {
  Rig rig;
  obs::MetricsRegistry registry;
  rig.server->register_metrics(registry);
  Client c(rig.port());
  ResponseFrame r;
  ASSERT_TRUE(c.send({WireOp::kPing, 1, 0, {}}));
  ASSERT_TRUE(c.recv(&r));

  const std::string text = registry.expose_text();
  EXPECT_NE(text.find("lacrv_net_connections_accepted_total 1"),
            std::string::npos);
  EXPECT_NE(text.find("lacrv_net_pings_total 1"), std::string::npos);
  EXPECT_NE(text.find("lacrv_net_open_connections 1"), std::string::npos);
  EXPECT_NE(text.find("lacrv_net_request_latency_micros_count"),
            std::string::npos);

  rig.server->stop();
  rig.server->stop();  // idempotent
  EXPECT_FALSE(rig.server->running());
  const NetCountersSnapshot snap = rig.server->counters();
  EXPECT_EQ(snap.open_connections, 0u);
  EXPECT_FALSE(snap.to_string().empty());
}

/// A flood of concurrent hostile and honest clients: the server answers
/// every honest request correctly and never crashes. (The heavier
/// closed/open-loop and chaos coverage lives in bench/loadgen.cpp and
/// the CI net-smoke job.)
TEST(NetServer, MixedHostileAndHonestBurst) {
  Rig rig(ServerConfig{}, /*workers=*/2, /*queue_capacity=*/64);
  constexpr int kClients = 12;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client c(rig.port());
      if (i % 3 == 0) {
        // Hostile: garbage, expects a typed reply.
        c.send_raw(Bytes(32, static_cast<u8>(0x80 + i)));
        ResponseFrame r;
        if (c.recv(&r) && is_protocol_error(r.status)) ok.fetch_add(1);
      } else {
        RequestFrame ping{WireOp::kPing, static_cast<u64>(i), 0, {}};
        ResponseFrame r;
        if (c.send(ping) && c.recv(&r) && r.status == WireStatus::kOk &&
            r.request_id == static_cast<u64>(i))
          ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients);
}

}  // namespace
}  // namespace lacrv::net
