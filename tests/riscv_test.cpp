#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "gf/gf512.h"
#include "riscv/assembler.h"
#include "riscv/cpu.h"
#include "riscv/encoding.h"

namespace lacrv::rv {
namespace {

/// Assemble, load at 0, run to ebreak, return the CPU for inspection.
Cpu run_program(const std::string& source, u64 max_steps = 1'000'000) {
  const Program prog = assemble(source);
  Cpu cpu;
  cpu.load_words(0, prog.words);
  cpu.run(max_steps);
  EXPECT_TRUE(cpu.halted()) << "program did not reach ebreak";
  return cpu;
}

TEST(Encoding, FieldRoundTrips) {
  const u32 r = encode_r(kOpReg, 5, 3, 7, 9, 0x20);
  EXPECT_EQ(get_opcode(r), kOpReg);
  EXPECT_EQ(get_rd(r), 5u);
  EXPECT_EQ(get_funct3(r), 3u);
  EXPECT_EQ(get_rs1(r), 7u);
  EXPECT_EQ(get_rs2(r), 9u);
  EXPECT_EQ(get_funct7(r), 0x20u);

  for (i32 imm : {-2048, -1, 0, 1, 2047}) {
    EXPECT_EQ(imm_i(encode_i(kOpImm, 1, 0, 2, imm)), imm);
    EXPECT_EQ(imm_s(encode_s(kOpStore, 2, 1, 2, imm)), imm);
  }
  for (i32 imm : {-4096, -2, 0, 2, 4094})
    EXPECT_EQ(imm_b(encode_b(kOpBranch, 0, 1, 2, imm)), imm);
  for (i32 imm : {-1048576, -2, 0, 2, 1048574})
    EXPECT_EQ(imm_j(encode_j(kOpJal, 1, imm)), imm);
}

TEST(Encoding, RegisterNames) {
  EXPECT_EQ(parse_register("zero"), 0);
  EXPECT_EQ(parse_register("x0"), 0);
  EXPECT_EQ(parse_register("ra"), 1);
  EXPECT_EQ(parse_register("sp"), 2);
  EXPECT_EQ(parse_register("a0"), 10);
  EXPECT_EQ(parse_register("t6"), 31);
  EXPECT_EQ(parse_register("fp"), 8);
  EXPECT_EQ(parse_register("x31"), 31);
  EXPECT_FALSE(parse_register("x32").has_value());
  EXPECT_FALSE(parse_register("q1").has_value());
}

TEST(Encoding, DisassembleSmoke) {
  EXPECT_EQ(disassemble(encode_r(kOpPq, 10, 0, 11, 12, 0)),
            "pq.mul_ter a0, a1, a2");
  EXPECT_EQ(disassemble(encode_i(kOpImm, 10, 0, 0, 42)),
            "addi a0, zero, 42");
}

TEST(Assembler, ArithmeticProgram) {
  const Cpu cpu = run_program(R"(
    li   a0, 100
    li   a1, 23
    add  a2, a0, a1     # 123
    sub  a3, a0, a1     # 77
    mul  a4, a0, a1     # 2300
    div  a5, a0, a1     # 4
    rem  a6, a0, a1     # 8
    ebreak
  )");
  EXPECT_EQ(cpu.reg(12), 123u);
  EXPECT_EQ(cpu.reg(13), 77u);
  EXPECT_EQ(cpu.reg(14), 2300u);
  EXPECT_EQ(cpu.reg(15), 4u);
  EXPECT_EQ(cpu.reg(16), 8u);
}

TEST(Assembler, LiHandlesFullRange) {
  const Cpu cpu = run_program(R"(
    li a0, 0x12345678
    li a1, -1
    li a2, -2048
    li a3, 0x800
    li a4, 2047
    ebreak
  )");
  EXPECT_EQ(cpu.reg(10), 0x12345678u);
  EXPECT_EQ(cpu.reg(11), 0xFFFFFFFFu);
  EXPECT_EQ(cpu.reg(12), static_cast<u32>(-2048));
  EXPECT_EQ(cpu.reg(13), 0x800u);
  EXPECT_EQ(cpu.reg(14), 2047u);
}

TEST(Assembler, LoopWithBranchesAndMemory) {
  // Sum data[0..9] stored via .word, classic loop.
  const Cpu cpu = run_program(R"(
      li   a0, 0        # sum
      la   a1, data
      li   a2, 10       # count
    loop:
      beq  a2, zero, done
      lw   a3, 0(a1)
      add  a0, a0, a3
      addi a1, a1, 4
      addi a2, a2, -1
      j    loop
    done:
      ebreak
    data:
      .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10
  )");
  EXPECT_EQ(cpu.reg(10), 55u);
}

TEST(Assembler, ByteAndHalfAccess) {
  const Cpu cpu = run_program(R"(
    li   a1, 0x200
    li   a0, 0x81
    sb   a0, 0(a1)
    lb   a2, 0(a1)    # sign-extended
    lbu  a3, 0(a1)    # zero-extended
    li   a0, 0x8001
    sh   a0, 4(a1)
    lh   a4, 4(a1)
    lhu  a5, 4(a1)
    ebreak
  )");
  EXPECT_EQ(cpu.reg(12), 0xFFFFFF81u);
  EXPECT_EQ(cpu.reg(13), 0x81u);
  EXPECT_EQ(cpu.reg(14), 0xFFFF8001u);
  EXPECT_EQ(cpu.reg(15), 0x8001u);
}

TEST(Assembler, FunctionCallAndReturn) {
  const Cpu cpu = run_program(R"(
      li   a0, 7
      call square
      mv   s0, a0
      li   a0, 9
      call square
      add  a0, a0, s0   # 49 + 81
      ebreak
    square:
      mul  a0, a0, a0
      ret
  )");
  EXPECT_EQ(cpu.reg(10), 130u);
}

TEST(Assembler, ErrorsAreDiagnosed) {
  EXPECT_ANY_THROW(assemble("bogus a0, a1"));
  EXPECT_ANY_THROW(assemble("addi a0, a1, 5000"));  // imm out of range
  EXPECT_ANY_THROW(assemble("lw a0, a1"));          // not imm(reg)
  EXPECT_ANY_THROW(assemble("beq a0, a1, nowhere"));
  EXPECT_ANY_THROW(assemble("x: nop\nx: nop"));     // duplicate label
}

namespace {
// Returns the diagnostic raised by assembling `source`, or "" if it
// unexpectedly succeeded.
std::string assemble_error(const std::string& source) {
  try {
    assemble(source);
  } catch (const CheckError& e) {
    return e.what();
  }
  return "";
}
}  // namespace

// Diagnostics must carry the (1-based) source line and name the offending
// token, so a failing kernel build points straight at the bad statement.
TEST(Assembler, ErrorMessagesNameLineAndToken) {
  struct Case {
    const char* source;
    const char* expect_line;
    const char* expect_token;
  };
  const Case cases[] = {
      {"bogus a0, a1", "line 1", "unknown mnemonic 'bogus'"},
      {"nop\naddi a0, a1, 5000", "line 2", "immediate 5000 out of range"},
      {"lw a0, a1", "line 1", "expected imm(reg), got 'a1'"},
      {"beq a0, a1, nowhere", "line 1", "unknown label 'nowhere'"},
      {"x: nop\nnop\nx: nop", "line 3", "duplicate label x"},
      {"addi q9, a1, 0", "line 1", "bad register 'q9'"},
      {"addi a0, a1, zebra", "line 1", "unknown label 'zebra'"},
  };
  for (const Case& c : cases) {
    const std::string what = assemble_error(c.source);
    ASSERT_FALSE(what.empty()) << "assembled without error: " << c.source;
    EXPECT_NE(what.find(c.expect_line), std::string::npos)
        << c.source << " -> " << what;
    EXPECT_NE(what.find(c.expect_token), std::string::npos)
        << c.source << " -> " << what;
  }
}

TEST(Cpu, ShiftAndCompareSemantics) {
  const Cpu cpu = run_program(R"(
    li   a0, -16
    srai a1, a0, 2    # -4
    srli a2, a0, 28   # 15
    slti a3, a0, 0    # 1
    sltiu a4, a0, 0   # 0 (unsigned huge)
    li   a5, 3
    sll  a6, a5, a5   # 24
    ebreak
  )");
  EXPECT_EQ(cpu.reg(11), static_cast<u32>(-4));
  EXPECT_EQ(cpu.reg(12), 15u);
  EXPECT_EQ(cpu.reg(13), 1u);
  EXPECT_EQ(cpu.reg(14), 0u);
  EXPECT_EQ(cpu.reg(16), 24u);
}

TEST(Cpu, DivisionEdgeCases) {
  const Cpu cpu = run_program(R"(
    li   a0, 10
    li   a1, 0
    div  a2, a0, a1    # -1 by spec
    rem  a3, a0, a1    # dividend
    li   a0, 0x80000000
    li   a1, -1
    div  a4, a0, a1    # overflow -> dividend
    rem  a5, a0, a1    # 0
    ebreak
  )");
  EXPECT_EQ(cpu.reg(12), 0xFFFFFFFFu);
  EXPECT_EQ(cpu.reg(13), 10u);
  EXPECT_EQ(cpu.reg(14), 0x80000000u);
  EXPECT_EQ(cpu.reg(15), 0u);
}

TEST(Cpu, X0IsHardwiredZero) {
  const Cpu cpu = run_program(R"(
    li   t0, 99
    add  zero, t0, t0
    mv   a0, zero
    ebreak
  )");
  EXPECT_EQ(cpu.reg(0), 0u);
  EXPECT_EQ(cpu.reg(10), 0u);
}

TEST(Cpu, CycleModelChargesTakenBranchesMore) {
  // 100 taken back-edges vs the same loop with fall-through exits.
  const Cpu taken = run_program(R"(
      li   a0, 100
    loop:
      addi a0, a0, -1
      bne  a0, zero, loop
      ebreak
  )");
  // 1 li (2 words, 2 cycles) + 100*(addi 1) + 99 taken(3) + 1 not(1)
  EXPECT_EQ(taken.cycles(), 2u + 100u + 99u * 3u + 1u + 1u);
}

TEST(Cpu, MemoryFaultsTrap) {
  Cpu cpu;
  // The host accessor still throws (debugging convenience)...
  EXPECT_ANY_THROW(cpu.read_word(1u << 30));
  const Program prog = assemble(R"(
    li a0, 0x7fffffff
    lw a1, 0(a0)
  )");
  cpu.load_words(0, prog.words);
  // ...but guest execution raises a machine trap instead of a C++
  // exception: run() stops with mcause/mepc/mtval describing the fault.
  cpu.run();
  EXPECT_FALSE(cpu.halted());
  ASSERT_TRUE(cpu.trapped());
  EXPECT_EQ(cpu.trap_cause(), TrapCause::kLoadFault);
  EXPECT_EQ(cpu.mtval(), 0x7fffffffu);
  EXPECT_EQ(cpu.mepc(), cpu.pc());  // pc left at the faulting lw
  // The faulting instruction did not retire (li = 2 parcels).
  EXPECT_EQ(cpu.instructions(), 2u);
  // A trap is terminal until acknowledged; then the host may skip it.
  EXPECT_ANY_THROW(cpu.step());
  cpu.clear_trap();
  EXPECT_FALSE(cpu.trapped());
  // mcause persists after the acknowledge, like the hardware CSR.
  EXPECT_EQ(cpu.trap_cause(), TrapCause::kLoadFault);
}

TEST(Cpu, IllegalOpcodeTraps) {
  Cpu cpu;
  cpu.load_words(0, std::array<u32, 1>{0x0000007Bu});  // unassigned opcode
  cpu.run(4);
  ASSERT_TRUE(cpu.trapped());
  EXPECT_EQ(cpu.trap_cause(), TrapCause::kIllegalInstruction);
  EXPECT_EQ(cpu.mtval(), 0x0000007Bu);
  EXPECT_EQ(cpu.mepc(), 0u);
}

TEST(Cpu, TrapCsrsReadableAfterRecovery) {
  // Fault on a wild store, have the host acknowledge and skip it, then
  // read mcause/mepc/mtval from guest code via csrr.
  Cpu cpu;
  const Program prog = assemble(R"(
    li t0, 0x40000000
    sw t0, 0(t0)
    csrr a0, 0x342   # mcause
    csrr a1, 0x341   # mepc
    csrr a2, 0x343   # mtval
    ebreak
  )");
  cpu.load_words(0, prog.words);
  cpu.run();
  ASSERT_TRUE(cpu.trapped());
  EXPECT_EQ(cpu.trap_cause(), TrapCause::kStoreFault);
  cpu.clear_trap();
  cpu.set_pc(cpu.mepc() + 4);  // host handler: skip the faulting store
  cpu.run();
  EXPECT_TRUE(cpu.halted());
  EXPECT_EQ(cpu.reg(10), static_cast<u32>(TrapCause::kStoreFault));
  EXPECT_EQ(cpu.reg(11), 8u);            // mepc: the sw after the 2-word li
  EXPECT_EQ(cpu.reg(12), 0x40000000u);   // mtval: faulting address
}


TEST(Csr, RdcycleAndRdinstret) {
  const Cpu cpu = run_program(R"(
    rdcycle  s0      # cycles so far
    nop
    nop
    mul a0, a1, a2
    rdcycle  s1
    rdinstret s2
    csrr s3, 0xC00
    ebreak
  )");
  // between the two rdcycle reads: rdcycle(1) + 2 nops + mul = 4 cycles
  EXPECT_EQ(cpu.reg(9) - cpu.reg(8), 4u);
  EXPECT_EQ(cpu.reg(18), 5u);         // instret before the 6th instruction
  EXPECT_GE(cpu.reg(19), cpu.reg(9)); // csrr 0xC00 == later rdcycle
}

TEST(Csr, UnknownCsrTraps) {
  const rv::Program prog = assemble("csrr a0, 0x345\nebreak");
  Cpu cpu;
  cpu.load_words(0, prog.words);
  cpu.run(10);
  ASSERT_TRUE(cpu.trapped());
  EXPECT_EQ(cpu.trap_cause(), TrapCause::kIllegalInstruction);
}

// ---- PQ instructions -------------------------------------------------------

TEST(PqInstructions, ModqReducesThroughBarrett) {
  const Cpu cpu = run_program(R"(
    li      a0, 62001   # 249^2
    pq.modq a1, a0, zero
    li      a0, 250
    pq.modq a2, a0, zero
    li      a0, 251
    pq.modq a3, a0, zero
    ebreak
  )");
  EXPECT_EQ(cpu.reg(11), 62001u % 251u);
  EXPECT_EQ(cpu.reg(12), 250u);
  EXPECT_EQ(cpu.reg(13), 0u);
}

TEST(PqInstructions, Sha256AbcThroughInstructions) {
  // Hash the padded one-block message "abc" through pq.sha256 and compare
  // with the software digest.
  std::ostringstream src;
  src << "li t2, 0\n";
  // reset state: rs2 mode 3
  src << "li t0, 0x30000000\n";
  src << "pq.sha256 zero, zero, t0\n";
  // load padded block bytes
  std::array<u8, 64> block{};
  block[0] = 'a';
  block[1] = 'b';
  block[2] = 'c';
  block[3] = 0x80;
  block[63] = 24;  // bit length
  for (int i = 0; i < 64; ++i) {
    src << "li t0, " << static_cast<int>(block[static_cast<std::size_t>(i)])
        << "\n";
    src << "li t1, " << i << "\n";  // mode 0 | offset
    src << "pq.sha256 zero, t0, t1\n";
  }
  src << "li t0, 0x10000000\n";  // mode 1: hash
  src << "pq.sha256 zero, zero, t0\n";
  // read digest words 0..7 into a0..a7 (x10..x17): mode 2 | word index
  for (int w = 0; w < 8; ++w) {
    src << "li t0, " << (0x20000000 + w) << "\n";
    src << "pq.sha256 x" << (10 + w) << ", zero, t0\n";
  }
  src << "ebreak\n";
  const Cpu cpu = run_program(src.str());

  const hash::Digest expected = hash::sha256(
      ByteView(reinterpret_cast<const u8*>("abc"), 3));
  for (int w = 0; w < 8; ++w) {
    const u32 got = cpu.reg(10 + w);
    for (int i = 0; i < 4; ++i)
      EXPECT_EQ(static_cast<u8>(got >> (8 * i)),
                expected[static_cast<std::size_t>(4 * w + i)])
          << "word " << w;
  }
}

TEST(PqInstructions, MulTerSmallConvolutionViaInstructions) {
  // Drive the unit for a tiny case we can check by hand. The unit is
  // length-512; we use coefficients 0..4 only (one LOAD chunk) with the
  // rest zero: a = [1, -1, 0, 0, 1...0], b = [3, 5, 7, ...0], negacyclic.
  // Expected: c = a * b mod (x^512 + 1) restricted to low coefficients.
  const poly::Ternary a_full = [] {
    poly::Ternary t(512, 0);
    t[0] = 1;
    t[1] = -1;
    t[4] = 1;
    return t;
  }();
  const poly::Coeffs b_full = [] {
    poly::Coeffs c(512, 0);
    c[0] = 3;
    c[1] = 5;
    c[2] = 7;
    return c;
  }();
  const poly::Coeffs expected = poly::mul_ter_sw(a_full, b_full, true);

  // LOAD chunk 0: g = {3,5,7,0,0}; ternary codes {1,2,0,0,1}.
  const u32 rs1 = 3u | 5u << 8 | 7u << 16;
  const u32 tern = 1u | 2u << 2 | 1u << 8;  // lanes 0,1,4
  const u32 rs2_load = tern << 8;           // mode 0, addr 0
  std::ostringstream src;
  src << "li t0, 0x30000000\npq.mul_ter zero, zero, t0\n";  // reset
  src << "li a0, " << rs1 << "\nli a1, " << rs2_load << "\n";
  src << "pq.mul_ter zero, a0, a1\n";
  src << "li a1, 0x10000001\npq.mul_ter zero, zero, a1\n";  // start, conv_n=1
  src << "li a1, 0x20000000\npq.mul_ter a2, zero, a1\n";    // read chunk 0
  src << "li a1, 0x20000001\npq.mul_ter a3, zero, a1\n";    // read chunk 1
  src << "ebreak\n";
  const Cpu cpu = run_program(src.str());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(static_cast<u8>(cpu.reg(12) >> (8 * i)), expected[i]) << i;
    EXPECT_EQ(static_cast<u8>(cpu.reg(13) >> (8 * i)), expected[4 + i]) << i;
  }
}

TEST(PqInstructions, MulTerStartStallsNCycles) {
  const Program prog = assemble(R"(
    li a1, 0x10000001
    pq.mul_ter zero, zero, a1
    ebreak
  )");
  Cpu cpu;
  cpu.load_words(0, prog.words);
  cpu.run();
  // 2 (li) + 1 issue + 512 stall + 1 ebreak
  EXPECT_EQ(cpu.cycles(), 2u + 1u + 512u + 1u);
}

TEST(PqInstructions, ChienComputeMatchesFieldArithmetic) {
  // Load group 0 with constants a_i and values b_i; one compute returns
  // XOR of the four products and 9 stall cycles.
  const gf::Element c0 = 17, v0 = 100, c1 = 255, v1 = 7, c2 = 300, v2 = 450,
                    c3 = 33, v3 = 210;
  const u32 rs1_left = static_cast<u32>(c0) | static_cast<u32>(v0) << 9 |
                       static_cast<u32>(c1) << 18;
  const u32 rs2_left = static_cast<u32>(v1);  // mode 0, group 0
  const u32 rs1_right = static_cast<u32>(c2) | static_cast<u32>(v2) << 9 |
                        static_cast<u32>(c3) << 18;
  const u32 rs2_right = 0x10000000u | static_cast<u32>(v3);  // mode 1
  std::ostringstream src;
  src << "li a0, " << rs1_left << "\nli a1, " << rs2_left << "\n";
  src << "pq.mul_chien zero, a0, a1\n";
  src << "li a0, " << rs1_right << "\nli a1, " << rs2_right << "\n";
  src << "pq.mul_chien zero, a0, a1\n";
  src << "li a1, 0x20000000\n";  // compute, loop=0, group 0
  src << "pq.mul_chien a2, zero, a1\n";
  src << "pq.mul_chien a3, zero, a1\n";  // recompute without loop: same
  src << "li a1, 0x20000001\n";          // compute with loop
  src << "pq.mul_chien a4, zero, a1\n";
  src << "ebreak\n";
  const Cpu cpu = run_program(src.str());

  const gf::Element once =
      gf::add(gf::add(gf::mul_table(c0, v0), gf::mul_table(c1, v1)),
              gf::add(gf::mul_table(c2, v2), gf::mul_table(c3, v3)));
  EXPECT_EQ(cpu.reg(12), once);
  EXPECT_EQ(cpu.reg(13), once);
  // loop pass multiplies the previous products by the constants again
  const gf::Element twice = gf::add(
      gf::add(gf::mul_table(c0, gf::mul_table(c0, v0)),
              gf::mul_table(c1, gf::mul_table(c1, v1))),
      gf::add(gf::mul_table(c2, gf::mul_table(c2, v2)),
              gf::mul_table(c3, gf::mul_table(c3, v3))));
  EXPECT_EQ(cpu.reg(14), twice);
}

TEST(PqInstructions, UndefinedFunct3TrapsAsPqFault) {
  // funct3 4..7 are unassigned in the pq opcode space: the ALU rejects
  // them and the core converts that into the custom PQ-unit trap.
  Cpu cpu;
  const u32 insn = encode_r(kOpPq, 10, 7, 0, 0, 0);
  cpu.load_words(0, std::array<u32, 1>{insn});
  cpu.run(4);
  ASSERT_TRUE(cpu.trapped());
  EXPECT_EQ(cpu.trap_cause(), TrapCause::kPqUnit);
  EXPECT_EQ(cpu.mtval(), insn);
}

TEST(PqAlu, AreaAggregatesAccelerators) {
  PqAlu alu;
  const rtl::AreaReport area = alu.area();
  EXPECT_NEAR(static_cast<double>(area.luts), 32617, 32617 * 0.05);
  EXPECT_NEAR(static_cast<double>(area.registers), 11019, 11019 * 0.05);
  EXPECT_EQ(area.dsps, 2u);
}

}  // namespace
}  // namespace lacrv::rv
