// The observability layer in isolation: span recording and trace-id
// propagation, Chrome-JSON emission (validated with the bundled JSON
// parser), the JSON parser itself, and the Prometheus-style metrics
// exposition.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lacrv::obs {
namespace {

class TracerInstall {
 public:
  explicit TracerInstall(Tracer& t) { t.install(); }
  ~TracerInstall() { Tracer::uninstall(); }
};

TEST(Tracer, DisabledSpanRecordsNothing) {
  ASSERT_EQ(Tracer::active(), nullptr);
  {
    TraceSpan span("noop", "test");
    span.arg("k", u64{1});
    EXPECT_FALSE(span.enabled());
  }
  instant("noop", "test");
  Tracer tracer;
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(Tracer, SpanCapturesNameCategoryArgsAndDuration) {
  Tracer tracer;
  TracerInstall guard(tracer);
  {
    TraceSpan span("work", "unit");
    EXPECT_TRUE(span.enabled());
    span.arg("cycles", u64{123});
    span.arg("mode", std::string("negacyclic"));
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "work");
  EXPECT_STREQ(events[0].category, "unit");
  EXPECT_EQ(events[0].phase, 'X');
  ASSERT_EQ(events[0].num_args.size(), 1u);
  EXPECT_EQ(events[0].num_args[0].second, 123u);
  ASSERT_EQ(events[0].str_args.size(), 1u);
  EXPECT_EQ(events[0].str_args[0].second, "negacyclic");
}

TEST(Tracer, ThreadTraceIdStampsEventsAndRestores) {
  Tracer tracer;
  TracerInstall guard(tracer);
  EXPECT_EQ(thread_trace_id(), 0u);
  {
    TraceContextScope ctx(42);
    EXPECT_EQ(thread_trace_id(), 42u);
    {
      TraceContextScope nested(7);
      instant("inner", "test");
    }
    instant("outer", "test");
  }
  EXPECT_EQ(thread_trace_id(), 0u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].trace_id, 7u);
  EXPECT_EQ(events[1].trace_id, 42u);
}

TEST(Tracer, TraceIdIsThreadLocal) {
  Tracer tracer;
  TracerInstall guard(tracer);
  TraceContextScope ctx(1);
  std::thread other([] {
    EXPECT_EQ(thread_trace_id(), 0u);
    TraceContextScope ctx2(2);
    instant("from_other", "test");
  });
  other.join();
  instant("from_main", "test");
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].trace_id, 2u);
  EXPECT_EQ(events[1].trace_id, 1u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(Tracer, CapacityBoundsMemoryAndCountsDrops) {
  Tracer tracer(4);
  TracerInstall guard(tracer);
  for (int i = 0; i < 10; ++i) instant("e", "test");
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
}

TEST(Tracer, ChromeJsonIsValidAndCarriesEvents) {
  Tracer tracer;
  TracerInstall guard(tracer);
  {
    TraceContextScope ctx(9);
    TraceSpan span("alpha \"quoted\"", "cat");
    span.arg("n", u64{512});
  }
  instant("beta", "cat");
  Tracer::uninstall();

  std::ostringstream os;
  tracer.write_chrome_json(os);
  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(os.str(), &doc, &error)) << error;
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);

  const json::Value& span = events->array[0];
  EXPECT_EQ(span.find("name")->str, "alpha \"quoted\"");
  EXPECT_EQ(span.find("ph")->str, "X");
  EXPECT_TRUE(span.find("dur")->is_number());
  EXPECT_EQ(span.find("args")->find("trace_id")->number, 9.0);
  EXPECT_EQ(span.find("args")->find("n")->number, 512.0);

  const json::Value& inst = events->array[1];
  EXPECT_EQ(inst.find("ph")->str, "i");
  EXPECT_EQ(inst.find("s")->str, "t");
}

TEST(Tracer, ConcurrentRecordingIsSafe) {
  Tracer tracer;
  TracerInstall guard(tracer);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([t] {
      TraceContextScope ctx(static_cast<u64>(t + 1));
      for (int i = 0; i < 250; ++i) TraceSpan span("s", "mt");
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.size(), 1000u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

// ---- json -----------------------------------------------------------------

TEST(Json, EscapeHandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(json::escape("plain"), "plain");
  EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json::escape("a\nb"), "a\\nb");
  EXPECT_EQ(json::escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(Json, ParsesScalarsArraysAndObjects) {
  json::Value v;
  ASSERT_TRUE(json::parse(R"({"a": [1, -2.5, true, null, "x\n"], "b": {}})",
                          &v));
  ASSERT_TRUE(v.is_object());
  const json::Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 5u);
  EXPECT_EQ(a->array[0].number, 1.0);
  EXPECT_EQ(a->array[1].number, -2.5);
  EXPECT_TRUE(a->array[2].boolean);
  EXPECT_TRUE(a->array[3].is_null());
  EXPECT_EQ(a->array[4].str, "x\n");
  EXPECT_TRUE(v.find("b")->is_object());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, RejectsMalformedInput) {
  json::Value v;
  std::string error;
  EXPECT_FALSE(json::parse("", &v, &error));
  EXPECT_FALSE(json::parse("{", &v, &error));
  EXPECT_FALSE(json::parse("[1,]", &v, &error));
  EXPECT_FALSE(json::parse("{\"a\": 1} trailing", &v, &error));
  EXPECT_FALSE(json::parse("\"unterminated", &v, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Json, DecodesUnicodeEscapes) {
  json::Value v;
  ASSERT_TRUE(json::parse(R"("Aé")", &v));
  EXPECT_EQ(v.str, "A\xc3\xa9");
}

// ---- metrics --------------------------------------------------------------

TEST(Metrics, CounterAndGaugeExposition) {
  MetricsRegistry registry;
  std::atomic<u64> hits{3};
  registry.add_counter("app_hits_total", "Total hits", &hits);
  registry.add_gauge("app_depth", "Queue depth", [] { return 1.5; });

  const std::string text = registry.expose_text();
  EXPECT_NE(text.find("# HELP app_hits_total Total hits\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE app_hits_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("app_hits_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE app_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("app_depth 1.5\n"), std::string::npos);

  hits.store(4);  // read at exposition time, not registration time
  EXPECT_NE(registry.expose_text().find("app_hits_total 4\n"),
            std::string::npos);
}

TEST(Metrics, HistogramCumulativeBuckets) {
  MetricsRegistry registry;
  stats::LatencyHistogram h;
  h.record(1);    // bucket 0 (le 2)
  h.record(3);    // bucket 1 (le 4)
  h.record(3);
  registry.add_histogram("lat_micros", "Latency", &h, "op=\"enc\"");

  const std::string text = registry.expose_text();
  EXPECT_NE(text.find("# TYPE lat_micros histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_micros_bucket{op=\"enc\",le=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_micros_bucket{op=\"enc\",le=\"4\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_micros_bucket{op=\"enc\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_micros_sum{op=\"enc\"} 7\n"), std::string::npos);
  EXPECT_NE(text.find("lat_micros_count{op=\"enc\"} 3\n"),
            std::string::npos);
}

TEST(Metrics, SharedFamilyNameGetsOneHeader) {
  MetricsRegistry registry;
  stats::LatencyHistogram enc, dec;
  registry.add_histogram("lat", "Latency", &enc, "op=\"enc\"");
  registry.add_histogram("lat", "Latency", &dec, "op=\"dec\"");
  const std::string text = registry.expose_text();
  std::size_t headers = 0, pos = 0;
  while ((pos = text.find("# TYPE lat histogram", pos)) != std::string::npos) {
    ++headers;
    ++pos;
  }
  EXPECT_EQ(headers, 1u);
}

TEST(Metrics, LedgerSectionsExposedAsLabelledGauges) {
  MetricsRegistry registry;
  CycleLedger ledger;
  ledger.push_section("mult");
  ledger.charge(100);
  ledger.pop_section();
  ledger.charge(11);
  registry.add_ledger("kem_cycles", "Modeled cycles", &ledger);

  const std::string text = registry.expose_text();
  EXPECT_NE(text.find("kem_cycles{section=\"mult\"} 100\n"),
            std::string::npos);
  EXPECT_NE(text.find("kem_cycles_total 111\n"), std::string::npos);
}

TEST(Metrics, ClearEmptiesTheRegistry) {
  MetricsRegistry registry;
  registry.add_gauge("g", "gauge", [] { return 0.0; });
  EXPECT_EQ(registry.families(), 1u);
  registry.clear();
  EXPECT_EQ(registry.families(), 0u);
  EXPECT_EQ(registry.expose_text(), "");
}

}  // namespace
}  // namespace lacrv::obs
