// Property-based sweeps over the BCH codec: exhaustive single-error
// correction, structured multi-error patterns, burst errors, linearity,
// and decoder-flavour equivalence on identical inputs.
#include <gtest/gtest.h>

#include <set>

#include "bch/decoder.h"
#include "common/rng.h"

namespace lacrv::bch {
namespace {

Message message_of(Xoshiro256& rng) {
  Message m;
  rng.fill(m.data(), m.size());
  return m;
}

class CodeSweep : public ::testing::TestWithParam<const CodeSpec*> {};

TEST_P(CodeSweep, ExhaustiveSingleErrorCorrection) {
  // Flip every single transmitted bit once; the decoder must recover the
  // message in all spec.length() cases (400 / 328 positions).
  const CodeSpec& spec = *GetParam();
  Xoshiro256 rng(1);
  const Message msg = message_of(rng);
  const BitVec clean = encode(spec, msg);
  for (int pos = 0; pos < spec.length(); ++pos) {
    BitVec noisy = clean;
    noisy[static_cast<std::size_t>(pos)] ^= 1;
    const DecodeResult r = decode(spec, noisy, Flavor::kConstantTime);
    ASSERT_TRUE(r.ok) << "position " << pos;
    ASSERT_EQ(r.message, msg) << "position " << pos;
  }
}

TEST_P(CodeSweep, ExactlyTErrorsAlwaysCorrectable) {
  const CodeSpec& spec = *GetParam();
  Xoshiro256 rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const Message msg = message_of(rng);
    BitVec noisy = encode(spec, msg);
    std::set<int> positions;
    while (static_cast<int>(positions.size()) < spec.t)
      positions.insert(static_cast<int>(rng.next_below(spec.length())));
    for (int p : positions) noisy[static_cast<std::size_t>(p)] ^= 1;
    const DecodeResult r = decode(spec, noisy, Flavor::kSubmission);
    ASSERT_TRUE(r.ok) << "trial " << trial;
    ASSERT_EQ(r.message, msg) << "trial " << trial;
  }
}

TEST_P(CodeSweep, BurstErrorsWithinCapability) {
  // t consecutive bit flips (a worst-case burst for random codes is
  // routine for BCH as long as the count stays <= t).
  const CodeSpec& spec = *GetParam();
  Xoshiro256 rng(3);
  const Message msg = message_of(rng);
  const BitVec clean = encode(spec, msg);
  for (int start : {0, 57, spec.length() - spec.t}) {
    BitVec noisy = clean;
    for (int i = 0; i < spec.t; ++i)
      noisy[static_cast<std::size_t>(start + i)] ^= 1;
    const DecodeResult r = decode(spec, noisy, Flavor::kConstantTime);
    ASSERT_TRUE(r.ok) << "burst at " << start;
    ASSERT_EQ(r.message, msg) << "burst at " << start;
  }
}

TEST_P(CodeSweep, CodeIsLinear) {
  // The XOR of two codewords is a codeword (zero syndromes).
  const CodeSpec& spec = *GetParam();
  Xoshiro256 rng(4);
  const BitVec a = encode(spec, message_of(rng));
  const BitVec b = encode(spec, message_of(rng));
  BitVec sum(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) sum[i] = a[i] ^ b[i];
  EXPECT_TRUE(all_zero(syndromes(spec, sum, Flavor::kSubmission)));
}

TEST_P(CodeSweep, ExtremeMessagesRoundTrip) {
  const CodeSpec& spec = *GetParam();
  for (u8 fill : {u8{0x00}, u8{0xFF}, u8{0xAA}, u8{0x55}}) {
    Message msg;
    msg.fill(fill);
    const BitVec cw = encode(spec, msg);
    const DecodeResult r = decode(spec, cw, Flavor::kConstantTime);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.message, msg);
  }
}

TEST_P(CodeSweep, FlavoursAgreeOnEveryDecodableWord) {
  const CodeSpec& spec = *GetParam();
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    const Message msg = message_of(rng);
    BitVec noisy = encode(spec, msg);
    const int errors = static_cast<int>(rng.next_below(spec.t + 1));
    std::set<int> positions;
    while (static_cast<int>(positions.size()) < errors)
      positions.insert(static_cast<int>(rng.next_below(spec.length())));
    for (int p : positions) noisy[static_cast<std::size_t>(p)] ^= 1;

    const DecodeResult sub = decode(spec, noisy, Flavor::kSubmission);
    const DecodeResult ct = decode(spec, noisy, Flavor::kConstantTime);
    ASSERT_EQ(sub.ok, ct.ok);
    ASSERT_EQ(sub.message, ct.message);
    ASSERT_EQ(sub.errors_corrected, ct.errors_corrected);
  }
}

TEST_P(CodeSweep, SyndromesAreLinearInErrors) {
  // S(c + e) = S(e) for codeword c: syndromes depend only on the error
  // pattern — the property the whole decoder rests on.
  const CodeSpec& spec = *GetParam();
  Xoshiro256 rng(6);
  const BitVec cw = encode(spec, message_of(rng));
  BitVec error(cw.size(), 0);
  for (int i = 0; i < 5; ++i)
    error[static_cast<std::size_t>(rng.next_below(spec.length()))] = 1;
  BitVec noisy(cw.size());
  for (std::size_t i = 0; i < cw.size(); ++i) noisy[i] = cw[i] ^ error[i];
  EXPECT_EQ(syndromes(spec, noisy, Flavor::kSubmission),
            syndromes(spec, error, Flavor::kSubmission));
}

INSTANTIATE_TEST_SUITE_P(BothCodes, CodeSweep,
                         ::testing::Values(&CodeSpec::bch_511_367_16(),
                                           &CodeSpec::bch_511_439_8()),
                         [](const auto& info) {
                           return info.param->t == 16 ? "t16" : "t8";
                         });

// ---- parameterized error-count sweep ----------------------------------------

class ErrorCountSweep
    : public ::testing::TestWithParam<std::tuple<const CodeSpec*, int>> {};

TEST_P(ErrorCountSweep, DecodesAndCountsWindowRoots) {
  const auto [spec, errors] = GetParam();
  Xoshiro256 rng(100 + errors);
  const Message msg = [&] {
    Message m;
    rng.fill(m.data(), m.size());
    return m;
  }();
  BitVec noisy = encode(*spec, msg);
  // inject only message-position errors so every root is in the window
  std::set<int> positions;
  while (static_cast<int>(positions.size()) < errors)
    positions.insert(spec->parity_bits() +
                     static_cast<int>(rng.next_below(spec->msg_bits)));
  for (int p : positions) noisy[static_cast<std::size_t>(p)] ^= 1;

  const DecodeResult r = decode(*spec, noisy, Flavor::kConstantTime);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.message, msg);
  EXPECT_EQ(r.errors_corrected, errors);
}

INSTANTIATE_TEST_SUITE_P(
    ZeroToT, ErrorCountSweep,
    ::testing::Combine(::testing::Values(&CodeSpec::bch_511_367_16(),
                                         &CodeSpec::bch_511_439_8()),
                       ::testing::Values(0, 1, 2, 3, 5, 8)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)->t == 16 ? "t16" : "t8") +
             "_e" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace lacrv::bch
