// End-to-end observability through the live service: a request's trace
// id must connect the service queue, the attempt, the KEM phase and the
// RTL unit busy windows; fault campaigns must surface retry/breaker
// events; and register_metrics must expose the full service family set.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "fault/plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/service.h"

namespace lacrv {
namespace {

hash::Seed seed_of(u64 x) {
  hash::Seed s{};
  for (int i = 0; i < 8; ++i) s[i] = static_cast<u8>(x >> (8 * i));
  return s;
}

bool is_rtl_busy(const std::string& name) {
  return name == "mul_ter.busy" || name == "chien.busy" ||
         name == "sha256.busy" || name == "sha256.hash_message";
}

std::map<u64, std::set<std::string>> names_by_trace_id(
    const obs::Tracer& tracer) {
  std::map<u64, std::set<std::string>> by_id;
  for (const auto& e : tracer.events())
    if (e.trace_id != 0) by_id[e.trace_id].insert(e.name);
  return by_id;
}

TEST(TraceE2E, RequestSpansConnectServiceKemAndRtlLayers) {
  obs::Tracer tracer;
  tracer.install();

  service::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.enable_prober = false;
  service::KemService svc(cfg);

  auto enc = svc.submit({service::OpKind::kEncaps, seed_of(1), {},
                         service::kNoDeadline});
  const service::KemResponse enc_r = enc.get();
  ASSERT_EQ(enc_r.status, Status::kOk);

  service::KemRequest dec_req;
  dec_req.op = service::OpKind::kDecaps;
  dec_req.ct = enc_r.encaps.ct;
  const service::KemResponse dec_r = svc.submit(std::move(dec_req)).get();
  ASSERT_EQ(dec_r.status, Status::kOk);
  EXPECT_EQ(dec_r.key, enc_r.encaps.key);

  svc.stop();
  obs::Tracer::uninstall();

  const auto by_id = names_by_trace_id(tracer);
  ASSERT_GE(by_id.size(), 2u);  // one id per request

  // Both requests must carry the full chain under one shared id.
  std::size_t connected = 0;
  bool saw_reencrypt = false;
  for (const auto& [id, names] : by_id) {
    if (!names.count("service.queued") || !names.count("service.attempt"))
      continue;
    bool has_kem = false, has_rtl = false;
    for (const std::string& n : names) {
      if (n.rfind("kem.", 0) == 0) has_kem = true;
      if (is_rtl_busy(n)) has_rtl = true;
    }
    if (has_kem && has_rtl) ++connected;
    // The FO re-encryption inside decapsulation must inherit the same id.
    if (names.count("kem.decaps") && names.count("kem.reencrypt"))
      saw_reencrypt = true;
  }
  EXPECT_EQ(connected, 2u);
  EXPECT_TRUE(saw_reencrypt);
}

TEST(TraceE2E, FaultCampaignEmitsRetryAndBreakerEvents) {
  obs::Tracer tracer;
  tracer.install();

  service::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.enable_prober = false;
  service::KemService svc(cfg);

  // Healthy handshake halves first: valid ciphertexts to decapsulate.
  std::vector<lac::EncapsResult> handshakes;
  for (u64 i = 0; i < 8; ++i) {
    const service::KemResponse r =
        svc.submit({service::OpKind::kEncaps, seed_of(100 + i), {},
                    service::kNoDeadline})
            .get();
    ASSERT_EQ(r.status, Status::kOk) << "request " << i;
    handshakes.push_back(r.encaps);
  }

  // Now corrupt the multiplier: decapsulation's re-encryption check
  // turns the corruption into typed kRejected failures, which the
  // service retries (fault-indicating) until the KATs trip the breaker
  // and the software fallback serves the rest.
  fault::FaultPlan plan;
  plan.add({fault::Unit::kMulTer, rtl::FaultKind::kStuckAtOne, 0, 5, 3});
  svc.arm_faults(plan);
  for (const lac::EncapsResult& h : handshakes) {
    service::KemRequest req;
    req.op = service::OpKind::kDecaps;
    req.ct = h.ct;
    const service::KemResponse r = svc.submit(std::move(req)).get();
    // The checked path never yields a silently wrong key: kOk means the
    // fallback/retry served the true shared secret.
    if (r.status == Status::kOk) EXPECT_EQ(r.key, h.key);
  }
  svc.clear_faults();
  svc.stop();
  obs::Tracer::uninstall();

  const auto snap = svc.counters();
  ASSERT_GT(snap.retries, 0u) << "campaign produced no retries; the "
                                 "trace assertions below would be vacuous";

  bool saw_backoff_with_id = false, saw_transition = false;
  for (const auto& e : tracer.events()) {
    if (std::string(e.name) == "service.retry_backoff" && e.trace_id != 0)
      saw_backoff_with_id = true;
    if (std::string(e.name) == "breaker.transition") saw_transition = true;
  }
  EXPECT_TRUE(saw_backoff_with_id);
  EXPECT_TRUE(saw_transition);
  EXPECT_NE(svc.breaker_state(fault::Unit::kMulTer),
            service::BreakerState::kClosed);
}

TEST(TraceE2E, RegisterMetricsExposesTheServiceFamilies) {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.enable_prober = false;
  service::KemService svc(cfg);

  const service::KemResponse r =
      svc.submit({service::OpKind::kEncaps, seed_of(7), {},
                  service::kNoDeadline})
          .get();
  ASSERT_EQ(r.status, Status::kOk);

  obs::MetricsRegistry registry;
  svc.register_metrics(registry);
  const std::string text = registry.expose_text();

  for (const char* family :
       {"lacrv_service_requests_submitted_total",
        "lacrv_service_requests_completed_total",
        "lacrv_service_requests_ok_total", "lacrv_service_retries_total",
        "lacrv_service_breaker_trips_total", "lacrv_service_queue_depth"})
    EXPECT_NE(text.find(family), std::string::npos) << family;

  // Per-unit breaker gauges, labelled; all closed on a healthy service.
  for (const char* unit : {"mul_ter", "chien", "sha256"})
    EXPECT_NE(text.find("lacrv_service_breaker_state{unit=\"" +
                        std::string(unit) + "\"} 0"),
              std::string::npos)
        << unit;

  // Latency histograms, one per op, with cumulative buckets.
  EXPECT_NE(text.find("lacrv_service_latency_micros_bucket{op=\"encaps\""),
            std::string::npos);
  EXPECT_NE(text.find("lacrv_service_latency_micros_count{op=\"encaps\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lacrv_service_latency_micros_count{op=\"decaps\"} 0"),
            std::string::npos);

  svc.stop();
}

}  // namespace
}  // namespace lacrv
