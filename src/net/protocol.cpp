#include "net/protocol.h"

#include <cstring>

namespace lacrv::net {
namespace {

void put_u32(Bytes& out, u32 v) {
  out.push_back(static_cast<u8>(v));
  out.push_back(static_cast<u8>(v >> 8));
  out.push_back(static_cast<u8>(v >> 16));
  out.push_back(static_cast<u8>(v >> 24));
}

void put_u64(Bytes& out, u64 v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

u32 get_u32(const u8* p) {
  return static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
         (static_cast<u32>(p[2]) << 16) | (static_cast<u32>(p[3]) << 24);
}

u64 get_u64(const u8* p) {
  u64 v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

const char* wire_status_name(WireStatus s) {
  switch (s) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kBadArgument: return "bad-argument";
    case WireStatus::kInternalError: return "internal-error";
    case WireStatus::kOverloaded: return "overloaded";
    case WireStatus::kDeadlineExceeded: return "deadline-exceeded";
    case WireStatus::kUnavailable: return "unavailable";
    case WireStatus::kUnknownKey: return "unknown-key";
    case WireStatus::kBadPayload: return "bad-payload";
    case WireStatus::kIntegrity: return "integrity";
    case WireStatus::kBadMagic: return "bad-magic";
    case WireStatus::kBadVersion: return "bad-version";
    case WireStatus::kBadOp: return "bad-op";
    case WireStatus::kOversized: return "oversized";
  }
  return "unknown";
}

WireStatus wire_status_from(Status s) {
  switch (s) {
    case Status::kOk: return WireStatus::kOk;
    // CCA contract: implicit rejection is observably silent on the wire.
    case Status::kRejected: return WireStatus::kOk;
    case Status::kDecodeFailure: return WireStatus::kOk;
    case Status::kSelfTestFailure: return WireStatus::kUnavailable;
    case Status::kBadArgument: return WireStatus::kBadArgument;
    case Status::kInternalError: return WireStatus::kInternalError;
    case Status::kOverloaded: return WireStatus::kOverloaded;
    case Status::kDeadlineExceeded: return WireStatus::kDeadlineExceeded;
    case Status::kUnavailable: return WireStatus::kUnavailable;
    case Status::kIntegrity: return WireStatus::kIntegrity;
  }
  return WireStatus::kInternalError;
}

Bytes encode_request(const RequestFrame& frame) {
  Bytes out;
  out.reserve(kRequestHeaderSize + frame.payload.size());
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<u8>(frame.op));
  put_u64(out, frame.request_id);
  put_u32(out, frame.key_id);
  put_u32(out, static_cast<u32>(frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

Bytes encode_response(const ResponseFrame& frame) {
  Bytes out;
  out.reserve(kResponseHeaderSize + frame.payload.size());
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<u8>(frame.status));
  put_u64(out, frame.request_id);
  put_u32(out, static_cast<u32>(frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

namespace detail {

void ParserBase::feed(ByteView bytes) {
  if (latched_) return;  // framing already lost: drop, don't grow
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

ParseResult ParserBase::latch(WireStatus status, std::string detail) {
  latched_ = true;
  error_ = status;
  error_detail_ = std::move(detail);
  buffer_.clear();
  buffer_.shrink_to_fit();
  return ParseResult::kError;
}

ParseResult ParserBase::pull_raw(std::size_t length_offset, const u8** frame,
                                 std::size_t* payload_len) {
  if (latched_) return ParseResult::kError;
  // Validate the preamble as soon as its bytes exist — a garbage flood
  // is rejected on byte 1, not after max_payload bytes of buffering.
  if (!buffer_.empty() && buffer_[0] != kMagic0)
    return latch(WireStatus::kBadMagic, "bad magic byte 0");
  if (buffer_.size() >= 2 && buffer_[1] != kMagic1)
    return latch(WireStatus::kBadMagic, "bad magic byte 1");
  if (buffer_.size() >= 3 && buffer_[2] != kProtocolVersion)
    return latch(WireStatus::kBadVersion,
                 "unsupported protocol version " +
                     std::to_string(static_cast<int>(buffer_[2])));
  if (buffer_.size() >= 4) {
    std::string detail;
    if (!code_valid(buffer_[3], &detail))
      return latch(WireStatus::kBadOp, std::move(detail));
  }
  if (buffer_.size() < header_size_) return ParseResult::kNeedMore;

  const u64 len = get_u32(buffer_.data() + length_offset);
  if (len > max_payload_)
    return latch(WireStatus::kOversized,
                 "payload length " + std::to_string(len) + " exceeds cap " +
                     std::to_string(max_payload_));
  if (buffer_.size() < header_size_ + len) return ParseResult::kNeedMore;

  *frame = buffer_.data();
  *payload_len = static_cast<std::size_t>(len);
  return ParseResult::kFrame;
}

void ParserBase::consume_frame(std::size_t payload_len) {
  buffer_.erase(buffer_.begin(),
                buffer_.begin() +
                    static_cast<std::ptrdiff_t>(header_size_ + payload_len));
}

}  // namespace detail

bool FrameParser::code_valid(u8 code, std::string* detail) const {
  switch (static_cast<WireOp>(code)) {
    case WireOp::kEncaps:
    case WireOp::kDecaps:
    case WireOp::kPing:
      return true;
  }
  *detail = "unknown op " + std::to_string(static_cast<int>(code));
  return false;
}

ParseResult FrameParser::next(RequestFrame* out) {
  const u8* frame = nullptr;
  std::size_t payload_len = 0;
  const ParseResult r = pull_raw(/*length_offset=*/16, &frame, &payload_len);
  if (r != ParseResult::kFrame) return r;
  out->op = static_cast<WireOp>(frame[3]);
  out->request_id = get_u64(frame + 4);
  out->key_id = get_u32(frame + 12);
  out->payload.assign(frame + kRequestHeaderSize,
                      frame + kRequestHeaderSize + payload_len);
  consume_frame(payload_len);
  return ParseResult::kFrame;
}

bool ResponseParser::code_valid(u8 code, std::string* detail) const {
  switch (static_cast<WireStatus>(code)) {
    case WireStatus::kOk:
    case WireStatus::kBadArgument:
    case WireStatus::kInternalError:
    case WireStatus::kOverloaded:
    case WireStatus::kDeadlineExceeded:
    case WireStatus::kUnavailable:
    case WireStatus::kUnknownKey:
    case WireStatus::kBadPayload:
    case WireStatus::kIntegrity:
    case WireStatus::kBadMagic:
    case WireStatus::kBadVersion:
    case WireStatus::kBadOp:
    case WireStatus::kOversized:
      return true;
  }
  *detail = "unknown status " + std::to_string(static_cast<int>(code));
  return false;
}

ParseResult ResponseParser::next(ResponseFrame* out) {
  const u8* frame = nullptr;
  std::size_t payload_len = 0;
  const ParseResult r = pull_raw(/*length_offset=*/12, &frame, &payload_len);
  if (r != ParseResult::kFrame) return r;
  out->status = static_cast<WireStatus>(frame[3]);
  out->request_id = get_u64(frame + 4);
  out->payload.assign(frame + kResponseHeaderSize,
                      frame + kResponseHeaderSize + payload_len);
  consume_frame(payload_len);
  return ParseResult::kFrame;
}

}  // namespace lacrv::net
