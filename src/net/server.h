// Hardened epoll-based async TCP front end for KemService.
//
// One IO thread owns every socket: it accepts, reads, parses, submits
// to the service's worker pool via the callback submission path, and
// flushes replies. KEM work never runs on the IO thread; socket state
// is never touched off it — the worker -> IO handoff is a mutexed
// completion queue drained on an eventfd wakeup, so no connection state
// needs a lock.
//
// Robustness posture (docs/serving.md):
//   * strict bounds-checked incremental parsing — oversized, truncated
//     and garbage frames produce one typed error reply, never a crash;
//   * per-connection state machines with read / write / idle deadlines
//     driven by the injectable Clock (slowloris and stalled-reader
//     clients are reaped, not accumulated);
//   * per-connection backpressure: reading pauses once a connection has
//     max_inflight_per_conn requests in the service queue or its write
//     buffer crosses the watermark, so a fast writer cannot grow server
//     memory or monopolize the bounded MPMC queue;
//   * admission control: beyond max_connections, new sockets receive a
//     typed kOverloaded reply and are closed; a full service queue
//     surfaces as a typed kOverloaded response per request (the
//     service's own backpressure, relayed);
//   * graceful drain: stop accepting and reading, let in-flight
//     requests finish, flush every reply, then close — the network half
//     of the SIGTERM story, paired with KemService::drain().
//
// Every behaviour is countable (NetCounters -> MetricsRegistry) and
// traceable (net.* spans join the service/KEM/RTL timeline through the
// shared request-scoped trace ids).
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "common/clock.h"
#include "common/stats.h"
#include "common/status.h"
#include "net/protocol.h"
#include "service/service.h"

namespace lacrv::obs {
class MetricsRegistry;
}  // namespace lacrv::obs

namespace lacrv::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  /// 0: bind an ephemeral port (read it back via TcpServer::port()).
  u16 port = 0;
  /// Admission cap: connections beyond this receive a typed kOverloaded
  /// reply (request id 0) and are closed immediately.
  std::size_t max_connections = 1024;
  /// Frame payload bound enforced by the parser (kOversized beyond it).
  std::size_t max_payload = kMaxPayload;
  /// Reading from a connection pauses while this many of its requests
  /// are in the service queue (per-connection backpressure into the
  /// bounded MPMC queue).
  std::size_t max_inflight_per_conn = 32;
  /// Reading also pauses while a connection's unflushed reply bytes
  /// exceed this watermark; at twice the watermark the connection is a
  /// slow-loris *reader* and is closed outright.
  std::size_t write_buffer_watermark = 64 * 1024;
  /// A partially received frame must complete within this budget
  /// (slowloris trickle detection).
  u64 read_deadline_micros = 5'000'000;
  /// Buffered reply bytes must drain within this budget (stalled
  /// reader detection).
  u64 write_deadline_micros = 5'000'000;
  /// A connection with no traffic, no in-flight work and nothing to
  /// flush is closed after this long.
  u64 idle_deadline_micros = 60'000'000;
  /// Graceful drain budget: in-flight requests and reply flushes get
  /// this long before remaining connections are force-closed.
  u64 drain_deadline_micros = 10'000'000;
  /// Per-request service deadline stamped at submission (0: none).
  u64 request_deadline_micros = 0;
  /// Injected time authority for every deadline above (null: RealClock).
  Clock* clock = nullptr;
};

struct NetCountersSnapshot {
  u64 accepted = 0;
  u64 rejected_connections = 0;  // admission-control closes
  u64 closed = 0;
  u64 frames_received = 0;
  u64 responses_sent = 0;  // fully flushed to the socket
  u64 bytes_read = 0;
  u64 bytes_written = 0;
  u64 protocol_errors = 0;  // framing lost: typed reply then close
  u64 bad_requests = 0;     // typed per-request errors (payload/key)
  u64 pings = 0;
  u64 requests_submitted = 0;
  u64 responses_ok = 0;
  u64 responses_error = 0;  // typed non-ok service verdicts relayed
  u64 shed_overloaded = 0;
  u64 shed_unavailable = 0;
  u64 shed_deadline = 0;
  u64 read_timeouts = 0;
  u64 write_timeouts = 0;
  u64 idle_closes = 0;
  u64 slow_reader_closes = 0;
  u64 backpressure_pauses = 0;
  u64 half_closes = 0;
  std::size_t open_connections = 0;
  std::string to_string() const;
};

class NetCounters {
 public:
  std::atomic<u64> accepted{0};
  std::atomic<u64> rejected_connections{0};
  std::atomic<u64> closed{0};
  std::atomic<u64> frames_received{0};
  std::atomic<u64> responses_sent{0};
  std::atomic<u64> bytes_read{0};
  std::atomic<u64> bytes_written{0};
  std::atomic<u64> protocol_errors{0};
  std::atomic<u64> bad_requests{0};
  std::atomic<u64> pings{0};
  std::atomic<u64> requests_submitted{0};
  std::atomic<u64> responses_ok{0};
  std::atomic<u64> responses_error{0};
  std::atomic<u64> shed_overloaded{0};
  std::atomic<u64> shed_unavailable{0};
  std::atomic<u64> shed_deadline{0};
  std::atomic<u64> read_timeouts{0};
  std::atomic<u64> write_timeouts{0};
  std::atomic<u64> idle_closes{0};
  std::atomic<u64> slow_reader_closes{0};
  std::atomic<u64> backpressure_pauses{0};
  std::atomic<u64> half_closes{0};
  /// Server-side request latency: frame fully received -> reply bytes
  /// handed to the socket layer.
  stats::LatencyHistogram request_latency;
};

class TcpServer {
 public:
  /// The service must outlive the server's stop()/join(); the server
  /// never owns it (the process composes drain order explicitly).
  explicit TcpServer(service::KemService& service, ServerConfig config = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Bind, listen and spawn the IO thread. kInternalError (with a
  /// diagnostic in *error) on socket failures.
  Status start(std::string* error = nullptr);

  /// The bound port (after start(); resolves port 0 to the ephemeral
  /// port the kernel assigned).
  u16 port() const { return port_; }

  /// Ask the IO thread to shut down and return immediately. With
  /// drain = true: stop accepting and reading, finish in-flight
  /// requests, flush replies, then close (bounded by
  /// drain_deadline_micros). With drain = false: close everything now.
  /// Callable from any thread; safe to call more than once.
  void request_shutdown(bool drain);

  /// Wait for the IO thread to exit (after request_shutdown, or a
  /// start() failure).
  void join();

  /// request_shutdown + join.
  void stop(bool drain = true);

  bool running() const { return running_.load(std::memory_order_acquire); }

  NetCountersSnapshot counters() const;
  const NetCounters& raw_counters() const { return counters_; }
  /// Register every net counter, the open-connections gauge and the
  /// server-side latency histogram as lacrv_net_* families.
  void register_metrics(obs::MetricsRegistry& registry);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  service::KemService& service_;
  ServerConfig config_;
  NetCounters counters_;
  std::atomic<bool> running_{false};
  std::thread io_thread_;
  u16 port_ = 0;
};

}  // namespace lacrv::net
