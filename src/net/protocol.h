// The KEM wire protocol: compact length-prefixed binary frames.
//
// Every frame is a fixed header followed by a bounded payload. Requests
// and responses share the 4-byte preamble (magic, version, code) so one
// bounds-checked incremental parser template serves both the server and
// the load generator:
//
//   request  (20-byte header)
//     0   2  magic 'L' 'Q'
//     2   1  protocol version (kProtocolVersion)
//     3   1  op: 1 encaps, 2 decaps, 3 ping
//     4   8  request id, little-endian (echoed verbatim in the response)
//     12  4  key id, little-endian (0: the service keypair)
//     16  4  payload length, little-endian, <= max_payload
//     20  N  payload (encaps: 32-byte entropy seed; decaps: serialized
//             ciphertext, ct_bytes(params); ping: empty)
//
//   response (16-byte header)
//     0   2  magic 'L' 'Q'
//     2   1  protocol version
//     3   1  wire status (WireStatus)
//     4   8  request id, little-endian
//     12  4  payload length, little-endian
//     16  N  payload (encaps ok: ct || 32-byte shared key; decaps ok:
//             32-byte shared key; errors: short ASCII diagnostic)
//
// Robustness contract: the parser never throws, never reads past its
// buffer, and never allocates more than max_payload + header per frame.
// Malformed input (bad magic, unknown version/op, oversized or
// impossible lengths) surfaces as a typed WireStatus error the caller
// turns into a typed error reply — a garbage flood costs one frame of
// memory and one diagnostic, never a crash. After an error the parser
// latches: framing is lost, the connection must be torn down.
//
// CCA note: decapsulation replies are deliberately status-blind. The FO
// transform's implicit rejection returns a pseudo-random key instead of
// an error precisely so the wire cannot distinguish a tampered
// ciphertext from an honest one; the server maps kRejected /
// kDecodeFailure to an ordinary kOk reply carrying the implicit-
// rejection key. Typed decaps errors on the wire are service verdicts
// only (overload, deadline, unavailable) — never decoder verdicts.
#pragma once

#include <cstddef>
#include <string>

#include "common/status.h"
#include "common/types.h"

namespace lacrv::net {

inline constexpr u8 kMagic0 = 'L';
inline constexpr u8 kMagic1 = 'Q';
inline constexpr u8 kProtocolVersion = 1;

inline constexpr std::size_t kRequestHeaderSize = 20;
inline constexpr std::size_t kResponseHeaderSize = 16;
/// Default payload bound. Large enough for every LAC ciphertext
/// (<= 1424 bytes) with headroom, small enough that a hostile client
/// cannot make the server stage unbounded memory per connection.
inline constexpr std::size_t kMaxPayload = 8192;
/// Error-reply diagnostics are truncated to this many bytes.
inline constexpr std::size_t kMaxErrorDetail = 96;

enum class WireOp : u8 {
  kEncaps = 1,
  kDecaps = 2,
  /// Liveness/latency probe: empty payload in, empty kOk reply out.
  kPing = 3,
};

/// Status byte of a response frame. Values < 64 mirror service-level
/// lacrv::Status verdicts; values >= 64 are protocol errors after which
/// the connection is closed (framing is unrecoverable).
enum class WireStatus : u8 {
  kOk = 0,
  kBadArgument = 3,
  kInternalError = 4,
  kOverloaded = 5,
  kDeadlineExceeded = 6,
  kUnavailable = 7,
  /// Request named a key id the server does not hold. Per-request error:
  /// the frame was well-formed, the connection survives.
  kUnknownKey = 8,
  /// Payload malformed for the op (wrong entropy/ciphertext size, or an
  /// undecodable ciphertext image). Per-request error, connection
  /// survives — framing was never lost.
  kBadPayload = 9,
  /// Shadow verification caught a silent accelerator corruption of this
  /// answer and integrity policy withheld it (the default policy serves
  /// the golden re-execution as an ordinary kOk instead). Per-request
  /// error: the frame was well-formed, the connection survives, and a
  /// retry lands on the quarantined-to-golden path.
  kIntegrity = 10,
  // -- protocol errors (framing lost; connection closes after the reply) --
  kBadMagic = 64,
  kBadVersion = 65,
  kBadOp = 66,
  kOversized = 67,
};

const char* wire_status_name(WireStatus s);

/// True for the >= 64 range: the framing is broken and the sender must
/// close the connection after emitting the typed reply.
constexpr bool is_protocol_error(WireStatus s) {
  return static_cast<u8>(s) >= 64;
}

/// Service Status -> wire status. kRejected / kDecodeFailure map to kOk
/// (see the CCA note above); kSelfTestFailure maps to kUnavailable (the
/// unit was benched, the request may be retried).
WireStatus wire_status_from(Status s);

struct RequestFrame {
  WireOp op = WireOp::kPing;
  u64 request_id = 0;
  u32 key_id = 0;
  Bytes payload;
};

struct ResponseFrame {
  WireStatus status = WireStatus::kOk;
  u64 request_id = 0;
  Bytes payload;
};

Bytes encode_request(const RequestFrame& frame);
Bytes encode_response(const ResponseFrame& frame);

// ---- incremental parsing ----------------------------------------------------

/// Outcome of one FrameParser::next() pull.
enum class ParseResult : u8 {
  kNeedMore,  // no complete frame buffered yet
  kFrame,     // one frame decoded into the out-parameter
  kError,     // typed protocol error; the parser is latched
};

namespace detail {

/// Shared incremental frame scanner. Both header layouts start with
/// magic/version/code and carry (id, [key], length); the Traits struct
/// supplies the sizes, the length offset and the code validator.
class ParserBase {
 public:
  explicit ParserBase(std::size_t header_size, std::size_t max_payload)
      : header_size_(header_size), max_payload_(max_payload) {}

  /// Append raw bytes. Accepts anything; validation happens in pull().
  /// Bounded: a latched parser drops input, and buffered data never
  /// exceeds header + max_payload per pending frame plus whatever the
  /// caller feeds before pulling.
  void feed(ByteView bytes);

  /// True while a frame header or payload is partially buffered — the
  /// caller arms its read deadline off this (slowloris detection).
  bool mid_frame() const { return !latched_ && !buffer_.empty(); }
  bool latched() const { return latched_; }
  std::size_t buffered() const { return buffer_.size(); }
  WireStatus error() const { return error_; }
  const std::string& error_detail() const { return error_detail_; }

 protected:
  /// Validate the 4-byte preamble + length field; on success exposes the
  /// complete frame bytes. Returns kNeedMore / kFrame / kError.
  ParseResult pull_raw(std::size_t length_offset, const u8** frame,
                       std::size_t* payload_len);
  void consume_frame(std::size_t payload_len);
  ParseResult latch(WireStatus status, std::string detail);

  /// Per-layout code-byte validation (op / status).
  virtual bool code_valid(u8 code, std::string* detail) const = 0;

  std::size_t header_size_;
  std::size_t max_payload_;
  Bytes buffer_;
  bool latched_ = false;
  WireStatus error_ = WireStatus::kOk;
  std::string error_detail_;
};

}  // namespace detail

/// Incremental request parser (server side).
class FrameParser final : public detail::ParserBase {
 public:
  explicit FrameParser(std::size_t max_payload = kMaxPayload)
      : ParserBase(kRequestHeaderSize, max_payload) {}

  /// Pull the next complete request. On kError the typed status and a
  /// short diagnostic are available via error()/error_detail() and the
  /// parser refuses further input.
  ParseResult next(RequestFrame* out);

 private:
  bool code_valid(u8 code, std::string* detail) const override;
};

/// Incremental response parser (client / load-generator side).
class ResponseParser final : public detail::ParserBase {
 public:
  explicit ResponseParser(std::size_t max_payload = kMaxPayload)
      : ParserBase(kResponseHeaderSize, max_payload) {}

  ParseResult next(ResponseFrame* out);

 private:
  bool code_valid(u8 code, std::string* detail) const override;
};

}  // namespace lacrv::net
