#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "lac/pke.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lacrv::net {
namespace {

std::string errno_detail(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

Bytes error_payload(const std::string& detail) {
  const std::size_t n = std::min(detail.size(), kMaxErrorDetail);
  return Bytes(detail.begin(), detail.begin() + static_cast<std::ptrdiff_t>(n));
}

}  // namespace

std::string NetCountersSnapshot::to_string() const {
  std::ostringstream os;
  os << "conns " << accepted << " accepted / " << closed << " closed / "
     << rejected_connections << " rejected (" << open_connections
     << " open) | frames " << frames_received << " in / " << responses_sent
     << " out | bytes " << bytes_read << " in / " << bytes_written
     << " out | protocol-errors " << protocol_errors << " | bad-requests "
     << bad_requests << " | pings " << pings << " | submitted "
     << requests_submitted << " | ok " << responses_ok << " | error "
     << responses_error << " | shed overload " << shed_overloaded
     << " / unavailable " << shed_unavailable << " / deadline "
     << shed_deadline << " | timeouts read " << read_timeouts << " / write "
     << write_timeouts << " | idle-closes " << idle_closes
     << " | slow-reader-closes " << slow_reader_closes << " | half-closes "
     << half_closes << " | backpressure-pauses " << backpressure_pauses;
  return os.str();
}

// ---- worker -> IO completion handoff ----------------------------------------

namespace {

struct Completion {
  u64 conn_id = 0;
  u64 request_id = 0;
  Status status = Status::kOk;
  Bytes bytes;           // fully encoded response frame
  u64 received_micros = 0;  // service-clock receipt time (latency anchor)
};

/// The only cross-thread channel: service worker callbacks push encoded
/// replies here and kick the eventfd; the IO thread swaps the batch out
/// under the lock. shared_ptr ownership lets late callbacks outlive the
/// server object itself — `alive` flips off at teardown so they become
/// no-ops instead of use-after-free.
struct CompletionRail {
  std::mutex mutex;
  std::vector<Completion> items;
  int wake_fd = -1;
  bool alive = true;

  void push(Completion c) {
    std::lock_guard<std::mutex> lock(mutex);
    if (!alive) return;
    items.push_back(std::move(c));
    const u64 one = 1;
    // A full eventfd counter (EAGAIN) still wakes the reader; other
    // errors mean teardown already closed it under `alive == false`.
    [[maybe_unused]] const ssize_t n = ::write(wake_fd, &one, sizeof one);
  }

  void retire() {
    std::lock_guard<std::mutex> lock(mutex);
    alive = false;
    items.clear();
  }
};

struct Conn {
  int fd = -1;
  u64 id = 0;
  FrameParser parser;
  std::deque<Bytes> out;
  std::size_t out_head = 0;   // flushed prefix of out.front()
  std::size_t out_bytes = 0;  // total unflushed reply bytes
  std::size_t inflight = 0;   // requests in the service, reply pending
  u64 last_activity = 0;
  u64 frame_start = 0;  // mid-frame since (0: between frames)
  u64 write_since = 0;  // unflushed bytes since (0: drained)
  bool want_read = true;
  bool want_write = false;
  bool paused = false;       // backpressure pause (inflight / watermark)
  bool closing = false;      // close once flushed and inflight == 0
  bool half_closed = false;  // peer FIN seen
  bool dead = false;         // closed this loop iteration, reap pending

  explicit Conn(std::size_t max_payload) : parser(max_payload) {}
};

}  // namespace

// ---- the IO thread ----------------------------------------------------------

struct TcpServer::Impl {
  TcpServer& server;
  service::KemService& service;
  const ServerConfig& cfg;
  NetCounters& counters;
  Clock* clock;

  int listen_fd = -1;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::shared_ptr<CompletionRail> rail;

  std::unordered_map<u64, std::unique_ptr<Conn>> conns;
  std::vector<u64> reap;  // ids closed mid-iteration, erased at the end
  u64 next_conn_id = 1;
  std::atomic<u64> open_connections{0};

  std::atomic<bool> shutdown_requested{false};
  std::atomic<bool> drain_requested{false};
  bool draining = false;
  u64 drain_deadline = 0;

  // Pre-encoded admission-control reply (request id 0).
  Bytes overload_frame;

  explicit Impl(TcpServer& s)
      : server(s),
        service(s.service_),
        cfg(s.config_),
        counters(s.counters_),
        clock(s.config_.clock ? s.config_.clock : &RealClock::instance()) {
    ResponseFrame reject;
    reject.status = WireStatus::kOverloaded;
    reject.request_id = 0;
    reject.payload = error_payload("connection limit reached");
    overload_frame = encode_response(reject);
  }

  u64 now() { return clock->now_micros(); }

  // -- epoll plumbing --

  void update_interest(Conn& c) {
    epoll_event ev{};
    // EPOLLRDHUP rides with EPOLLIN only: it is level-triggered, so a
    // half-closed connection waiting out its in-flight replies would
    // otherwise storm the loop with wakeups every tick.
    ev.events = 0;
    if (c.want_read && !c.paused && !c.closing && !c.half_closed)
      ev.events |= EPOLLIN | EPOLLRDHUP;
    if (c.want_write) ev.events |= EPOLLOUT;
    ev.data.u64 = c.id;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
  }

  Conn* find(u64 id) {
    auto it = conns.find(id);
    if (it == conns.end() || it->second->dead) return nullptr;
    return it->second.get();
  }

  void close_conn(Conn& c, const char* reason) {
    if (c.dead) return;
    c.dead = true;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, c.fd, nullptr);
    ::close(c.fd);
    c.fd = -1;
    counters.closed.fetch_add(1, std::memory_order_relaxed);
    open_connections.fetch_sub(1, std::memory_order_relaxed);
    obs::instant("net.close", "net", {{"conn", c.id}},
                 {{"reason", std::string(reason)}});
    reap.push_back(c.id);
  }

  void reap_dead() {
    for (u64 id : reap) conns.erase(id);
    reap.clear();
  }

  // -- writes --

  void try_flush(Conn& c) {
    while (!c.out.empty()) {
      const Bytes& front = c.out.front();
      const ssize_t n =
          ::send(c.fd, front.data() + c.out_head, front.size() - c.out_head,
                 MSG_NOSIGNAL);
      if (n > 0) {
        counters.bytes_written.fetch_add(static_cast<u64>(n),
                                         std::memory_order_relaxed);
        c.out_head += static_cast<std::size_t>(n);
        c.out_bytes -= static_cast<std::size_t>(n);
        if (c.out_head == front.size()) {
          c.out.pop_front();
          c.out_head = 0;
          counters.responses_sent.fetch_add(1, std::memory_order_relaxed);
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      close_conn(c, "send-error");
      return;
    }

    if (c.out.empty()) {
      c.write_since = 0;
      if (c.want_write) {
        c.want_write = false;
        update_interest(c);
      }
      maybe_unpause(c);
      if ((c.closing || c.half_closed) && c.inflight == 0)
        close_conn(c, c.closing ? "closed-after-flush" : "peer-half-close");
    } else {
      if (c.write_since == 0) c.write_since = now();
      if (!c.want_write) {
        c.want_write = true;
        update_interest(c);
      }
    }
  }

  void enqueue_reply(Conn& c, Bytes bytes) {
    if (c.dead) return;
    c.out_bytes += bytes.size();
    c.out.push_back(std::move(bytes));
    c.last_activity = now();
    if (c.out_bytes > 2 * cfg.write_buffer_watermark) {
      // The peer writes requests but never reads replies: unbounded
      // buffering is the attack, closing is the defence.
      counters.slow_reader_closes.fetch_add(1, std::memory_order_relaxed);
      close_conn(c, "slow-reader");
      return;
    }
    maybe_pause(c);
    try_flush(c);
  }

  void send_reply(Conn& c, WireStatus status, u64 request_id, Bytes payload) {
    ResponseFrame r;
    r.status = status;
    r.request_id = request_id;
    r.payload = std::move(payload);
    enqueue_reply(c, encode_response(r));
  }

  // -- backpressure --

  bool should_pause(const Conn& c) const {
    return c.inflight >= cfg.max_inflight_per_conn ||
           c.out_bytes > cfg.write_buffer_watermark;
  }

  void maybe_pause(Conn& c) {
    if (!c.paused && should_pause(c)) {
      c.paused = true;
      counters.backpressure_pauses.fetch_add(1, std::memory_order_relaxed);
      obs::instant("net.backpressure_pause", "net", {{"conn", c.id}});
      update_interest(c);
    }
  }

  void maybe_unpause(Conn& c) {
    if (c.paused && !should_pause(c) && !c.dead) {
      c.paused = false;
      update_interest(c);
    }
  }

  // -- request handling --

  void submit_kem(Conn& c, service::OpKind op, const RequestFrame& f,
                  service::KemRequest request) {
    const u64 received = now();
    request.op = op;
    if (cfg.request_deadline_micros != 0)
      request.deadline_micros = received + cfg.request_deadline_micros;

    ++c.inflight;
    counters.requests_submitted.fetch_add(1, std::memory_order_relaxed);
    maybe_pause(c);

    // Everything the callback needs must be captured by value or via
    // the shared rail: it runs on a worker (or submitter) thread and
    // may outlive this connection and even this server object — which
    // is also why counter classification happens on the IO thread in
    // drain_completions(), never here.
    auto rail_ref = rail;
    const u64 conn_id = c.id;
    const u64 request_id = f.request_id;
    const lac::Params* params = &service.params();
    service.submit_with_callback(
        std::move(request),
        [rail_ref, conn_id, request_id, received, op,
         params](service::KemResponse r) {
          Completion done;
          done.conn_id = conn_id;
          done.request_id = request_id;
          done.status = r.status;
          done.received_micros = received;
          ResponseFrame resp;
          resp.request_id = request_id;
          resp.status = wire_status_from(r.status);
          if (resp.status == WireStatus::kOk) {
            if (op == service::OpKind::kEncaps) {
              resp.payload = lac::serialize(*params, r.encaps.ct);
              resp.payload.insert(resp.payload.end(), r.encaps.key.begin(),
                                  r.encaps.key.end());
            } else {
              // CCA blinding: kOk, kRejected and kDecodeFailure all
              // deliver a 32-byte key (the implicit-rejection key on the
              // latter two) under an indistinguishable kOk reply.
              resp.payload.assign(r.key.begin(), r.key.end());
            }
          } else {
            resp.payload = error_payload(r.detail);
          }
          done.bytes = encode_response(resp);
          rail_ref->push(std::move(done));
        });
  }

  void bad_request(Conn& c, const RequestFrame& f, WireStatus status,
                   const std::string& detail) {
    counters.bad_requests.fetch_add(1, std::memory_order_relaxed);
    obs::instant("net.bad_request", "net",
                 {{"conn", c.id}, {"request", f.request_id}},
                 {{"status", std::string(wire_status_name(status))}});
    send_reply(c, status, f.request_id, error_payload(detail));
  }

  void handle_frame(Conn& c, RequestFrame&& f) {
    counters.frames_received.fetch_add(1, std::memory_order_relaxed);

    if (f.op == WireOp::kPing) {
      counters.pings.fetch_add(1, std::memory_order_relaxed);
      send_reply(c, WireStatus::kOk, f.request_id, {});
      return;
    }
    if (f.key_id != 0) {
      bad_request(c, f, WireStatus::kUnknownKey,
                  "unknown key id " + std::to_string(f.key_id));
      return;
    }
    if (draining) {
      // Reading is paused during drain, but frames already buffered in
      // the parser when drain began still land here: shed them typed.
      send_reply(c, WireStatus::kUnavailable, f.request_id,
                 error_payload("server draining"));
      return;
    }

    service::KemRequest request;
    if (f.op == WireOp::kEncaps) {
      if (f.payload.size() != hash::kSeedSize) {
        bad_request(c, f, WireStatus::kBadPayload,
                    "encaps payload must be " +
                        std::to_string(hash::kSeedSize) + " bytes, got " +
                        std::to_string(f.payload.size()));
        return;
      }
      std::copy(f.payload.begin(), f.payload.end(), request.entropy.begin());
      submit_kem(c, service::OpKind::kEncaps, f, std::move(request));
      return;
    }

    // Decaps: the ciphertext image is parsed at the boundary; malformed
    // coefficients are a typed reply, never an exception into epoll.
    const lac::Params& params = service.params();
    if (f.payload.size() != params.ct_bytes()) {
      bad_request(c, f, WireStatus::kBadPayload,
                  "decaps payload must be " +
                      std::to_string(params.ct_bytes()) + " bytes, got " +
                      std::to_string(f.payload.size()));
      return;
    }
    try {
      request.ct = lac::deserialize_ct(params, f.payload);
    } catch (const CheckError& e) {
      bad_request(c, f, WireStatus::kBadPayload,
                  std::string("undecodable ciphertext: ") + e.what());
      return;
    }
    // deserialize_ct unpacks but does not range-check: u coefficients
    // live in Z_q. An out-of-range image is not a ciphertext — reject it
    // here as a typed per-request error instead of letting the check
    // trip deep inside a worker as kInternalError.
    for (const u8 coeff : request.ct.u) {
      if (coeff >= params.q) {
        bad_request(c, f, WireStatus::kBadPayload,
                    "ciphertext coefficient out of range for q=" +
                        std::to_string(params.q));
        return;
      }
    }
    submit_kem(c, service::OpKind::kDecaps, f, std::move(request));
  }

  void on_readable(Conn& c) {
    u8 buf[16384];
    const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
    if (n > 0) {
      counters.bytes_read.fetch_add(static_cast<u64>(n),
                                    std::memory_order_relaxed);
      c.last_activity = now();
      c.parser.feed(ByteView(buf, static_cast<std::size_t>(n)));
      RequestFrame f;
      for (;;) {
        const ParseResult r = c.parser.next(&f);
        if (r == ParseResult::kFrame) {
          handle_frame(c, std::move(f));
          if (c.dead) return;
          continue;
        }
        if (r == ParseResult::kNeedMore) break;
        // Framing lost: one typed reply, then close after flush.
        counters.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        obs::instant(
            "net.protocol_error", "net", {{"conn", c.id}},
            {{"status", std::string(wire_status_name(c.parser.error()))},
             {"detail", c.parser.error_detail()}});
        send_reply(c, c.parser.error(), 0,
                   error_payload(c.parser.error_detail()));
        if (c.dead) return;
        c.closing = true;
        c.want_read = false;
        update_interest(c);
        if (c.out.empty() && c.inflight == 0) close_conn(c, "protocol-error");
        return;
      }
      c.frame_start = c.parser.mid_frame()
                          ? (c.frame_start ? c.frame_start : now())
                          : 0;
      return;
    }
    if (n == 0) {
      // Peer FIN (half-close): finish what is in flight, flush, close.
      if (!c.half_closed) {
        counters.half_closes.fetch_add(1, std::memory_order_relaxed);
        c.half_closed = true;
        c.want_read = false;
        update_interest(c);
      }
      if (c.inflight == 0 && c.out.empty()) close_conn(c, "peer-close");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    close_conn(c, "recv-error");
  }

  // -- accept / admission ------------------------------------------------

  void on_accept() {
    for (;;) {
      const int fd =
          ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;  // EAGAIN or transient error: epoll re-arms
      if (conns.size() - reap.size() >= cfg.max_connections) {
        // Admission control: a typed kOverloaded reply (best-effort on
        // the fresh socket, which virtually always has send space),
        // then close — shedding with a verdict, not a silent RST.
        counters.rejected_connections.fetch_add(1, std::memory_order_relaxed);
        obs::instant("net.conn_rejected", "net");
        [[maybe_unused]] const ssize_t sent =
            ::send(fd, overload_frame.data(), overload_frame.size(),
                   MSG_NOSIGNAL);
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

      auto conn = std::make_unique<Conn>(cfg.max_payload);
      conn->fd = fd;
      conn->id = next_conn_id++;
      conn->last_activity = now();
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLRDHUP;
      ev.data.u64 = conn->id;
      if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        continue;
      }
      counters.accepted.fetch_add(1, std::memory_order_relaxed);
      open_connections.fetch_add(1, std::memory_order_relaxed);
      obs::instant("net.accept", "net", {{"conn", conn->id}});
      conns.emplace(conn->id, std::move(conn));
    }
  }

  // -- completions -------------------------------------------------------

  void drain_completions() {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(rail->mutex);
      batch.swap(rail->items);
    }
    for (Completion& done : batch) {
      const u64 latency = now() - done.received_micros;
      counters.request_latency.record(latency);
      if (wire_status_from(done.status) == WireStatus::kOk) {
        counters.responses_ok.fetch_add(1, std::memory_order_relaxed);
      } else {
        switch (done.status) {
          case Status::kOverloaded:
            counters.shed_overloaded.fetch_add(1, std::memory_order_relaxed);
            break;
          case Status::kUnavailable:
            counters.shed_unavailable.fetch_add(1, std::memory_order_relaxed);
            break;
          case Status::kDeadlineExceeded:
            counters.shed_deadline.fetch_add(1, std::memory_order_relaxed);
            break;
          default:
            counters.responses_error.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (obs::Tracer* tracer = obs::Tracer::active()) {
        const u64 end = tracer->now_micros();
        tracer->complete_event(
            "net.request", "net", end > latency ? end - latency : 0, latency,
            {{"conn", done.conn_id}, {"request", done.request_id}},
            {{"status", std::string(status_name(done.status))}});
      }
      Conn* c = find(done.conn_id);
      if (!c) continue;  // connection already torn down: reply undeliverable
      if (c->inflight > 0) --c->inflight;
      enqueue_reply(*c, std::move(done.bytes));
      if (c->dead) continue;
      maybe_unpause(*c);
      if ((c->closing || c->half_closed) && c->inflight == 0 &&
          c->out.empty())
        close_conn(*c, "closed-after-flush");
    }
  }

  // -- deadlines ---------------------------------------------------------

  void check_deadlines() {
    const u64 t = now();
    for (auto& [id, conn] : conns) {
      Conn& c = *conn;
      if (c.dead) continue;
      if (c.frame_start != 0 && cfg.read_deadline_micros != 0 &&
          t >= c.frame_start + cfg.read_deadline_micros) {
        counters.read_timeouts.fetch_add(1, std::memory_order_relaxed);
        close_conn(c, "read-timeout");
        continue;
      }
      if (c.write_since != 0 && cfg.write_deadline_micros != 0 &&
          t >= c.write_since + cfg.write_deadline_micros) {
        counters.write_timeouts.fetch_add(1, std::memory_order_relaxed);
        close_conn(c, "write-timeout");
        continue;
      }
      if (cfg.idle_deadline_micros != 0 && c.inflight == 0 &&
          c.out.empty() && c.frame_start == 0 &&
          t >= c.last_activity + cfg.idle_deadline_micros) {
        counters.idle_closes.fetch_add(1, std::memory_order_relaxed);
        close_conn(c, "idle-timeout");
      }
    }
  }

  // -- shutdown / drain --------------------------------------------------

  void begin_drain() {
    if (draining) return;
    draining = true;
    drain_deadline = now() + cfg.drain_deadline_micros;
    obs::instant("net.drain_begin", "net",
                 {{"open_connections",
                   open_connections.load(std::memory_order_relaxed)}});
    if (listen_fd >= 0) {
      ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
      ::close(listen_fd);
      listen_fd = -1;
    }
    for (auto& [id, conn] : conns) {
      Conn& c = *conn;
      if (c.dead) continue;
      c.closing = true;
      c.want_read = false;
      update_interest(c);
      if (c.inflight == 0 && c.out.empty()) close_conn(c, "drained");
    }
  }

  void close_all(const char* reason) {
    for (auto& [id, conn] : conns)
      if (!conn->dead) close_conn(*conn, reason);
    reap_dead();
  }

  // -- the loop ----------------------------------------------------------

  static constexpr u64 kListenTag = 0;
  static constexpr u64 kWakeTag = ~u64{0};

  void io_loop() {
    epoll_event events[64];
    for (;;) {
      if (shutdown_requested.load(std::memory_order_acquire)) {
        if (!drain_requested.load(std::memory_order_acquire)) break;
        begin_drain();
      }
      if (draining) {
        if (conns.empty()) break;
        if (now() >= drain_deadline) {
          close_all("drain-deadline");
          break;
        }
      }

      const int timeout_ms = (conns.empty() && !draining) ? 200 : 20;
      const int n = ::epoll_wait(epoll_fd, events, 64, timeout_ms);
      if (n < 0 && errno != EINTR) break;

      for (int i = 0; i < n; ++i) {
        const u64 tag = events[i].data.u64;
        if (tag == kListenTag) {
          if (!draining) on_accept();
          continue;
        }
        if (tag == kWakeTag) {
          u64 drainv;
          while (::read(wake_fd, &drainv, sizeof drainv) > 0) {
          }
          continue;
        }
        Conn* c = find(tag);
        if (!c) continue;
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          // Flush what we can first: EPOLLHUP with pending output still
          // fails fast in send() if the peer is truly gone.
          if (!c->out.empty()) try_flush(*c);
          if (!c->dead) close_conn(*c, "hangup");
          continue;
        }
        if (events[i].events & EPOLLOUT) {
          try_flush(*c);
          if (c->dead) continue;
        }
        if (events[i].events & (EPOLLIN | EPOLLRDHUP)) on_readable(*c);
      }

      drain_completions();
      check_deadlines();
      reap_dead();
    }

    close_all("server-stop");
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
    }
    obs::instant("net.stopped", "net");
  }
};

// ---- TcpServer --------------------------------------------------------------

TcpServer::TcpServer(service::KemService& service, ServerConfig config)
    : service_(service), config_(std::move(config)) {
  impl_ = std::make_unique<Impl>(*this);
}

TcpServer::~TcpServer() {
  stop(/*drain=*/false);
  if (impl_->rail) impl_->rail->retire();
  if (impl_->epoll_fd >= 0) ::close(impl_->epoll_fd);
  if (impl_->wake_fd >= 0) ::close(impl_->wake_fd);
}

Status TcpServer::start(std::string* error) {
  auto fail = [&](const char* what) {
    if (error) *error = errno_detail(what);
    if (impl_->listen_fd >= 0) ::close(impl_->listen_fd);
    if (impl_->epoll_fd >= 0) ::close(impl_->epoll_fd);
    if (impl_->wake_fd >= 0) ::close(impl_->wake_fd);
    impl_->listen_fd = impl_->epoll_fd = impl_->wake_fd = -1;
    return Status::kInternalError;
  };

  impl_->listen_fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (impl_->listen_fd < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    if (error) *error = "bad bind address: " + config_.bind_address;
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
    return Status::kBadArgument;
  }
  if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0)
    return fail("bind");
  if (::listen(impl_->listen_fd, 512) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&bound),
                    &len) != 0)
    return fail("getsockname");
  port_ = ntohs(bound.sin_port);

  impl_->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (impl_->epoll_fd < 0) return fail("epoll_create1");
  impl_->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (impl_->wake_fd < 0) return fail("eventfd");

  epoll_event lev{};
  lev.events = EPOLLIN;
  lev.data.u64 = Impl::kListenTag;
  if (::epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, impl_->listen_fd, &lev) !=
      0)
    return fail("epoll_ctl(listen)");
  epoll_event wev{};
  wev.events = EPOLLIN;
  wev.data.u64 = Impl::kWakeTag;
  if (::epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, impl_->wake_fd, &wev) != 0)
    return fail("epoll_ctl(wake)");

  impl_->rail = std::make_shared<CompletionRail>();
  impl_->rail->wake_fd = impl_->wake_fd;

  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] {
    impl_->io_loop();
    running_.store(false, std::memory_order_release);
  });
  return Status::kOk;
}

void TcpServer::request_shutdown(bool drain) {
  impl_->drain_requested.store(drain, std::memory_order_release);
  impl_->shutdown_requested.store(true, std::memory_order_release);
  if (impl_->wake_fd >= 0) {
    const u64 v = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(impl_->wake_fd, &v, sizeof v);
  }
}

void TcpServer::join() {
  if (io_thread_.joinable()) io_thread_.join();
}

void TcpServer::stop(bool drain) {
  request_shutdown(drain);
  join();
}

NetCountersSnapshot TcpServer::counters() const {
  NetCountersSnapshot s;
  const NetCounters& c = counters_;
  s.accepted = c.accepted.load(std::memory_order_relaxed);
  s.rejected_connections =
      c.rejected_connections.load(std::memory_order_relaxed);
  s.closed = c.closed.load(std::memory_order_relaxed);
  s.frames_received = c.frames_received.load(std::memory_order_relaxed);
  s.responses_sent = c.responses_sent.load(std::memory_order_relaxed);
  s.bytes_read = c.bytes_read.load(std::memory_order_relaxed);
  s.bytes_written = c.bytes_written.load(std::memory_order_relaxed);
  s.protocol_errors = c.protocol_errors.load(std::memory_order_relaxed);
  s.bad_requests = c.bad_requests.load(std::memory_order_relaxed);
  s.pings = c.pings.load(std::memory_order_relaxed);
  s.requests_submitted =
      c.requests_submitted.load(std::memory_order_relaxed);
  s.responses_ok = c.responses_ok.load(std::memory_order_relaxed);
  s.responses_error = c.responses_error.load(std::memory_order_relaxed);
  s.shed_overloaded = c.shed_overloaded.load(std::memory_order_relaxed);
  s.shed_unavailable = c.shed_unavailable.load(std::memory_order_relaxed);
  s.shed_deadline = c.shed_deadline.load(std::memory_order_relaxed);
  s.read_timeouts = c.read_timeouts.load(std::memory_order_relaxed);
  s.write_timeouts = c.write_timeouts.load(std::memory_order_relaxed);
  s.idle_closes = c.idle_closes.load(std::memory_order_relaxed);
  s.slow_reader_closes =
      c.slow_reader_closes.load(std::memory_order_relaxed);
  s.backpressure_pauses =
      c.backpressure_pauses.load(std::memory_order_relaxed);
  s.half_closes = c.half_closes.load(std::memory_order_relaxed);
  s.open_connections = static_cast<std::size_t>(
      impl_->open_connections.load(std::memory_order_relaxed));
  return s;
}

void TcpServer::register_metrics(obs::MetricsRegistry& registry) {
  const struct {
    const char* name;
    const char* help;
    const std::atomic<u64>* value;
  } kCounters[] = {
      {"lacrv_net_connections_accepted_total", "Connections accepted",
       &counters_.accepted},
      {"lacrv_net_connections_rejected_total",
       "Connections shed by admission control", &counters_.rejected_connections},
      {"lacrv_net_connections_closed_total", "Connections closed",
       &counters_.closed},
      {"lacrv_net_frames_received_total", "Well-formed request frames",
       &counters_.frames_received},
      {"lacrv_net_responses_sent_total", "Response frames fully flushed",
       &counters_.responses_sent},
      {"lacrv_net_bytes_read_total", "Bytes read from sockets",
       &counters_.bytes_read},
      {"lacrv_net_bytes_written_total", "Bytes written to sockets",
       &counters_.bytes_written},
      {"lacrv_net_protocol_errors_total",
       "Framing-lost errors (typed reply, then close)",
       &counters_.protocol_errors},
      {"lacrv_net_bad_requests_total",
       "Per-request typed errors (payload/key)", &counters_.bad_requests},
      {"lacrv_net_pings_total", "Ping frames answered", &counters_.pings},
      {"lacrv_net_requests_submitted_total",
       "KEM requests handed to the service", &counters_.requests_submitted},
      {"lacrv_net_responses_ok_total", "kOk replies", &counters_.responses_ok},
      {"lacrv_net_responses_error_total",
       "Typed non-shed error replies", &counters_.responses_error},
      {"lacrv_net_shed_overloaded_total",
       "Requests shed with kOverloaded (queue backpressure)",
       &counters_.shed_overloaded},
      {"lacrv_net_shed_unavailable_total",
       "Requests shed with kUnavailable (drain/stop)",
       &counters_.shed_unavailable},
      {"lacrv_net_shed_deadline_total",
       "Requests shed with kDeadlineExceeded", &counters_.shed_deadline},
      {"lacrv_net_read_timeouts_total",
       "Connections closed mid-frame past the read deadline",
       &counters_.read_timeouts},
      {"lacrv_net_write_timeouts_total",
       "Connections closed with replies stalled past the write deadline",
       &counters_.write_timeouts},
      {"lacrv_net_idle_closes_total", "Idle connections reaped",
       &counters_.idle_closes},
      {"lacrv_net_slow_reader_closes_total",
       "Connections closed for unbounded reply buffering",
       &counters_.slow_reader_closes},
      {"lacrv_net_backpressure_pauses_total",
       "Reads paused by per-connection backpressure",
       &counters_.backpressure_pauses},
      {"lacrv_net_half_closes_total", "Peer half-closes observed",
       &counters_.half_closes},
  };
  for (const auto& c : kCounters)
    registry.add_counter(c.name, c.help, c.value);
  registry.add_gauge("lacrv_net_open_connections",
                     "Currently open connections", [this] {
                       return static_cast<double>(impl_->open_connections.load(
                           std::memory_order_relaxed));
                     });
  registry.add_histogram("lacrv_net_request_latency_micros",
                         "Frame received -> reply handed to the socket",
                         &counters_.request_latency);
}

}  // namespace lacrv::net
