#include "riscv/assembler.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/check.h"
#include "riscv/compressed.h"
#include "riscv/encoding.h"

namespace lacrv::rv {
namespace {

struct Token {
  std::string text;
};

/// One source line reduced to mnemonic + comma-separated operands.
struct Line {
  int number = 0;
  std::vector<std::string> labels;
  std::string mnemonic;  // empty for label-only / blank lines
  std::vector<std::string> operands;
};

[[noreturn]] void fail(int line, const std::string& msg) {
  LACRV_CHECK_MSG(false, "line " + std::to_string(line) + ": " + msg);
  __builtin_unreachable();
}

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::vector<Line> tokenize(const std::string& source) {
  std::vector<Line> lines;
  std::istringstream stream(source);
  std::string raw;
  int number = 0;
  while (std::getline(stream, raw)) {
    ++number;
    // strip comments
    for (const char* marker : {"#", ";", "//"}) {
      const auto pos = raw.find(marker);
      if (pos != std::string::npos) raw.resize(pos);
    }
    Line line;
    line.number = number;
    std::string rest = trim(raw);
    // labels (possibly several) terminated by ':'
    for (auto colon = rest.find(':'); colon != std::string::npos;
         colon = rest.find(':')) {
      const std::string label = trim(rest.substr(0, colon));
      if (label.empty() || label.find(' ') != std::string::npos) break;
      line.labels.push_back(label);
      rest = trim(rest.substr(colon + 1));
    }
    if (!rest.empty()) {
      const auto space = rest.find_first_of(" \t");
      line.mnemonic = rest.substr(0, space);
      std::transform(line.mnemonic.begin(), line.mnemonic.end(),
                     line.mnemonic.begin(), ::tolower);
      if (space != std::string::npos) {
        std::string ops = rest.substr(space + 1);
        std::string current;
        for (char c : ops) {
          if (c == ',') {
            line.operands.push_back(trim(current));
            current.clear();
          } else {
            current.push_back(c);
          }
        }
        if (!trim(current).empty()) line.operands.push_back(trim(current));
      }
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

/// Bytes emitted by a mnemonic (constant per mnemonic: li/la are always
/// two words so pass 1 can fix addresses before labels resolve; c.*
/// mnemonics emit one 16-bit parcel).
std::size_t bytes_for(const Line& line) {
  const std::string& m = line.mnemonic;
  if (m.empty()) return 0;
  if (m == ".word") return 4 * line.operands.size();
  if (m == ".byte") return line.operands.size();
  if (m == ".align") return 0;  // handled dynamically: worst case below
  if (m == "li" || m == "la") return 8;
  if (m.rfind("c.", 0) == 0) return 2;
  return 4;
}

class Assembler {
 public:
  Assembler(const std::string& source, u32 base) : base_(base) {
    lines_ = tokenize(source);
    // pass 1: label addresses
    u32 addr = base_;
    for (const Line& line : lines_) {
      for (const std::string& label : line.labels) {
        if (program_.labels.count(label))
          fail(line.number, "duplicate label " + label);
        program_.labels[label] = addr;
      }
      addr += static_cast<u32>(bytes_for(line));
    }
    program_.base = base_;
    // pass 2: encode
    for (const Line& line : lines_) encode_line(line);
    // pack the byte image into words (zero-padded tail; with the C
    // extension instructions are only 16-bit aligned)
    program_.image = image_;
    while (image_.size() % 4 != 0) image_.push_back(0);
    program_.words.resize(image_.size() / 4);
    for (std::size_t i = 0; i < program_.words.size(); ++i)
      program_.words[i] = load_le32(&image_[4 * i]);
  }

  Program take() { return std::move(program_); }

 private:
  int reg_or_fail(const Line& line, const std::string& name) {
    const auto r = parse_register(name);
    if (!r) fail(line.number, "bad register '" + name + "'");
    return *r;
  }

  /// Numeric immediate or label value.
  i64 value_of(const Line& line, const std::string& text) {
    if (!text.empty() &&
        (std::isdigit(static_cast<unsigned char>(text[0])) || text[0] == '-' ||
         text[0] == '+')) {
      try {
        return std::stoll(text, nullptr, 0);
      } catch (const std::exception&) {
        fail(line.number, "bad immediate '" + text + "'");
      }
    }
    const auto it = program_.labels.find(text);
    if (it == program_.labels.end())
      fail(line.number, "unknown label '" + text + "'");
    return it->second;
  }

  i32 imm_or_fail(const Line& line, const std::string& text, i64 lo, i64 hi) {
    const i64 v = value_of(line, text);
    if (v < lo || v > hi)
      fail(line.number, "immediate " + text + " out of range");
    return static_cast<i32>(v);
  }

  /// Parse "imm(rs1)" memory operands.
  std::pair<i32, int> mem_operand(const Line& line, const std::string& text) {
    const auto open = text.find('(');
    const auto close = text.find(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open)
      fail(line.number, "expected imm(reg), got '" + text + "'");
    const std::string imm_text = trim(text.substr(0, open));
    const i32 imm = imm_text.empty()
                        ? 0
                        : imm_or_fail(line, imm_text, -2048, 2047);
    return {imm, reg_or_fail(line, trim(text.substr(open + 1,
                                                    close - open - 1)))};
  }

  void need_operands(const Line& line, std::size_t count) {
    if (line.operands.size() != count)
      fail(line.number, line.mnemonic + " expects " + std::to_string(count) +
                            " operands");
  }

  void emit(u32 word) {
    for (int i = 0; i < 4; ++i)
      image_.push_back(static_cast<u8>(word >> (8 * i)));
  }
  void emit16(u16 parcel) {
    image_.push_back(static_cast<u8>(parcel));
    image_.push_back(static_cast<u8>(parcel >> 8));
  }
  i64 here_addr() const { return base_ + static_cast<i64>(image_.size()); }

  i32 branch_offset(const Line& line, const std::string& target) {
    const i64 dest = value_of(line, target);
    const i64 here = here_addr();
    const i64 offset = dest - here;
    if (offset < -4096 || offset > 4095 || (offset & 1))
      fail(line.number, "branch target out of range");
    return static_cast<i32>(offset);
  }

  void encode_line(const Line& line) {
    const std::string& m = line.mnemonic;
    if (m.empty()) return;
    const auto& ops = line.operands;

    // ---- data directives ----------------------------------------------
    if (m == ".word") {
      for (const auto& op : ops)
        emit(static_cast<u32>(value_of(line, op)));
      return;
    }
    if (m == ".byte") {
      for (const auto& op : ops)
        image_.push_back(static_cast<u8>(value_of(line, op)));
      return;
    }

    // ---- pseudo-instructions -------------------------------------------
    if (m == "nop") {
      emit(encode_i(kOpImm, 0, 0, 0, 0));
      return;
    }
    if (m == "mv") {
      need_operands(line, 2);
      emit(encode_i(kOpImm, static_cast<u32>(reg_or_fail(line, ops[0])), 0,
                    static_cast<u32>(reg_or_fail(line, ops[1])), 0));
      return;
    }
    if (m == "not") {
      need_operands(line, 2);
      emit(encode_i(kOpImm, static_cast<u32>(reg_or_fail(line, ops[0])), 4,
                    static_cast<u32>(reg_or_fail(line, ops[1])), -1));
      return;
    }
    if (m == "neg") {
      need_operands(line, 2);
      emit(encode_r(kOpReg, static_cast<u32>(reg_or_fail(line, ops[0])), 0, 0,
                    static_cast<u32>(reg_or_fail(line, ops[1])), 0x20));
      return;
    }
    if (m == "li" || m == "la") {
      need_operands(line, 2);
      const u32 rd = static_cast<u32>(reg_or_fail(line, ops[0]));
      const u32 value = static_cast<u32>(value_of(line, ops[1]));
      // lui+addi with sign correction of the low part.
      const u32 low = value & 0xFFF;
      u32 high = value >> 12;
      if (low >= 0x800) high = (high + 1) & 0xFFFFF;
      emit(encode_u(kOpLui, rd, high));
      emit(encode_i(kOpImm, rd, 0, rd,
                    static_cast<i32>(low << 20) >> 20));
      return;
    }
    if (m == "j") {
      need_operands(line, 1);
      const i64 dest = value_of(line, ops[0]);
      const i64 here = here_addr();
      emit(encode_j(kOpJal, 0, static_cast<i32>(dest - here)));
      return;
    }
    if (m == "ret") {
      emit(encode_i(kOpJalr, 0, 0, 1, 0));
      return;
    }
    if (m == "call") {
      need_operands(line, 1);
      const i64 dest = value_of(line, ops[0]);
      const i64 here = here_addr();
      emit(encode_j(kOpJal, 1, static_cast<i32>(dest - here)));
      return;
    }
    if (m == "rdcycle" || m == "rdinstret") {
      need_operands(line, 1);
      const u32 rd = static_cast<u32>(reg_or_fail(line, ops[0]));
      const i32 csr = m == "rdcycle" ? 0xC00 : 0xC02;
      emit(encode_i(kOpSystem, rd, 2, 0, csr));
      return;
    }
    if (m == "csrr") {
      need_operands(line, 2);
      const u32 rd = static_cast<u32>(reg_or_fail(line, ops[0]));
      const i32 csr = static_cast<i32>(value_of(line, ops[1]));
      emit(encode_i(kOpSystem, rd, 2, 0, csr));
      return;
    }
    if (m == "ebreak") {
      emit(0x00100073);
      return;
    }
    if (m == "ecall") {
      emit(0x00000073);
      return;
    }

    // ---- U / J types -----------------------------------------------------
    if (m == "lui" || m == "auipc") {
      need_operands(line, 2);
      const u32 rd = static_cast<u32>(reg_or_fail(line, ops[0]));
      const u32 imm = static_cast<u32>(value_of(line, ops[1])) & 0xFFFFF;
      emit(encode_u(m == "lui" ? kOpLui : kOpAuipc, rd, imm));
      return;
    }
    if (m == "jal") {
      need_operands(line, 2);
      const u32 rd = static_cast<u32>(reg_or_fail(line, ops[0]));
      const i64 dest = value_of(line, ops[1]);
      const i64 here = here_addr();
      emit(encode_j(kOpJal, rd, static_cast<i32>(dest - here)));
      return;
    }
    if (m == "jalr") {
      need_operands(line, 2);
      const u32 rd = static_cast<u32>(reg_or_fail(line, ops[0]));
      const auto [imm, rs1] = mem_operand(line, ops[1]);
      emit(encode_i(kOpJalr, rd, 0, static_cast<u32>(rs1), imm));
      return;
    }

    // ---- branches ---------------------------------------------------------
    static const std::map<std::string, u32> kBranches = {
        {"beq", 0}, {"bne", 1}, {"blt", 4}, {"bge", 5},
        {"bltu", 6}, {"bgeu", 7}};
    if (auto it = kBranches.find(m); it != kBranches.end()) {
      need_operands(line, 3);
      emit(encode_b(kOpBranch, it->second,
                    static_cast<u32>(reg_or_fail(line, ops[0])),
                    static_cast<u32>(reg_or_fail(line, ops[1])),
                    branch_offset(line, ops[2])));
      return;
    }

    // ---- loads / stores -----------------------------------------------------
    static const std::map<std::string, u32> kLoads = {
        {"lb", 0}, {"lh", 1}, {"lw", 2}, {"lbu", 4}, {"lhu", 5}};
    if (auto it = kLoads.find(m); it != kLoads.end()) {
      need_operands(line, 2);
      const u32 rd = static_cast<u32>(reg_or_fail(line, ops[0]));
      const auto [imm, rs1] = mem_operand(line, ops[1]);
      emit(encode_i(kOpLoad, rd, it->second, static_cast<u32>(rs1), imm));
      return;
    }
    static const std::map<std::string, u32> kStores = {
        {"sb", 0}, {"sh", 1}, {"sw", 2}};
    if (auto it = kStores.find(m); it != kStores.end()) {
      need_operands(line, 2);
      const u32 rs2 = static_cast<u32>(reg_or_fail(line, ops[0]));
      const auto [imm, rs1] = mem_operand(line, ops[1]);
      emit(encode_s(kOpStore, it->second, static_cast<u32>(rs1), rs2, imm));
      return;
    }

    // ---- OP-IMM -------------------------------------------------------------
    static const std::map<std::string, u32> kOpImms = {
        {"addi", 0}, {"slti", 2}, {"sltiu", 3}, {"xori", 4},
        {"ori", 6},  {"andi", 7}};
    if (auto it = kOpImms.find(m); it != kOpImms.end()) {
      need_operands(line, 3);
      emit(encode_i(kOpImm, static_cast<u32>(reg_or_fail(line, ops[0])),
                    it->second, static_cast<u32>(reg_or_fail(line, ops[1])),
                    imm_or_fail(line, ops[2], -2048, 2047)));
      return;
    }
    if (m == "slli" || m == "srli" || m == "srai") {
      need_operands(line, 3);
      const i32 shamt = imm_or_fail(line, ops[2], 0, 31);
      const u32 f3 = m == "slli" ? 1u : 5u;
      const i32 imm = m == "srai" ? (shamt | 0x400) : shamt;
      emit(encode_i(kOpImm, static_cast<u32>(reg_or_fail(line, ops[0])), f3,
                    static_cast<u32>(reg_or_fail(line, ops[1])), imm));
      return;
    }

    // ---- OP (R-type) ---------------------------------------------------------
    struct RSpec {
      u32 funct3, funct7;
    };
    static const std::map<std::string, RSpec> kRType = {
        {"add", {0, 0}},    {"sub", {0, 0x20}}, {"sll", {1, 0}},
        {"slt", {2, 0}},    {"sltu", {3, 0}},   {"xor", {4, 0}},
        {"srl", {5, 0}},    {"sra", {5, 0x20}}, {"or", {6, 0}},
        {"and", {7, 0}},    {"mul", {0, 1}},    {"mulh", {1, 1}},
        {"mulhsu", {2, 1}}, {"mulhu", {3, 1}},  {"div", {4, 1}},
        {"divu", {5, 1}},   {"rem", {6, 1}},    {"remu", {7, 1}},
        {"pq.mul_ter", {pq::kFunct3MulTer, 0}},
        {"pq.mul_chien", {pq::kFunct3MulChien, 0}},
        {"pq.sha256", {pq::kFunct3Sha256, 0}},
        {"pq.modq", {pq::kFunct3Modq, 0}}};
    if (auto it = kRType.find(m); it != kRType.end()) {
      need_operands(line, 3);
      const u32 opcode = m.rfind("pq.", 0) == 0 ? kOpPq : kOpReg;
      emit(encode_r(opcode, static_cast<u32>(reg_or_fail(line, ops[0])),
                    it->second.funct3,
                    static_cast<u32>(reg_or_fail(line, ops[1])),
                    static_cast<u32>(reg_or_fail(line, ops[2])),
                    it->second.funct7));
      return;
    }

    if (m.rfind("c.", 0) == 0) {
      encode_compressed(line);
      return;
    }

    fail(line.number, "unknown mnemonic '" + m + "'");
  }

  /// Compressed mnemonics: one 16-bit parcel each. Register constraints
  /// (x8..x15 for the prime forms, non-zero where the spec demands) are
  /// enforced by the c_* encoders.
  void encode_compressed(const Line& line) {
    const std::string& m = line.mnemonic;
    const auto& ops = line.operands;
    const auto reg = [&](std::size_t i) { return reg_or_fail(line, ops[i]); };
    const auto imm = [&](std::size_t i, i64 lo, i64 hi) {
      return imm_or_fail(line, ops[i], lo, hi);
    };
    const auto target = [&](std::size_t i) {
      const i64 dest = value_of(line, ops[i]);
      return static_cast<i32>(dest - here_addr());
    };
    try {
      if (m == "c.nop") return emit16(c_nop());
      if (m == "c.ebreak") return emit16(c_ebreak());
      if (m == "c.li") {
        need_operands(line, 2);
        return emit16(c_li(reg(0), imm(1, -32, 31)));
      }
      if (m == "c.lui") {
        need_operands(line, 2);
        return emit16(c_lui(reg(0), imm(1, -32, 31)));
      }
      if (m == "c.addi") {
        need_operands(line, 2);
        return emit16(c_addi(reg(0), imm(1, -32, 31)));
      }
      if (m == "c.addi16sp") {
        need_operands(line, 1);
        return emit16(c_addi16sp(imm(0, -512, 496)));
      }
      if (m == "c.addi4spn") {
        need_operands(line, 2);
        return emit16(c_addi4spn(reg(0), static_cast<u32>(imm(1, 4, 1020))));
      }
      if (m == "c.mv") {
        need_operands(line, 2);
        return emit16(c_mv(reg(0), reg(1)));
      }
      if (m == "c.add") {
        need_operands(line, 2);
        return emit16(c_add(reg(0), reg(1)));
      }
      if (m == "c.sub" || m == "c.xor" || m == "c.or" || m == "c.and") {
        need_operands(line, 2);
        const int rd = reg(0), rs2 = reg(1);
        if (m == "c.sub") return emit16(c_sub(rd, rs2));
        if (m == "c.xor") return emit16(c_xor(rd, rs2));
        if (m == "c.or") return emit16(c_or(rd, rs2));
        return emit16(c_and(rd, rs2));
      }
      if (m == "c.andi") {
        need_operands(line, 2);
        return emit16(c_andi(reg(0), imm(1, -32, 31)));
      }
      if (m == "c.slli" || m == "c.srli" || m == "c.srai") {
        need_operands(line, 2);
        const u32 shamt = static_cast<u32>(imm(1, 1, 31));
        if (m == "c.slli") return emit16(c_slli(reg(0), shamt));
        if (m == "c.srli") return emit16(c_srli(reg(0), shamt));
        return emit16(c_srai(reg(0), shamt));
      }
      if (m == "c.lw" || m == "c.sw") {
        need_operands(line, 2);
        const auto [offset, rs1] = mem_operand(line, ops[1]);
        LACRV_CHECK(offset >= 0);
        if (m == "c.lw")
          return emit16(c_lw(reg(0), rs1, static_cast<u32>(offset)));
        return emit16(c_sw(reg(0), rs1, static_cast<u32>(offset)));
      }
      if (m == "c.lwsp" || m == "c.swsp") {
        need_operands(line, 2);
        const u32 offset = static_cast<u32>(imm(1, 0, 252));
        if (m == "c.lwsp") return emit16(c_lwsp(reg(0), offset));
        return emit16(c_swsp(reg(0), offset));
      }
      if (m == "c.j") {
        need_operands(line, 1);
        return emit16(c_j(target(0)));
      }
      if (m == "c.jal") {
        need_operands(line, 1);
        return emit16(c_jal(target(0)));
      }
      if (m == "c.beqz") {
        need_operands(line, 2);
        return emit16(c_beqz(reg(0), target(1)));
      }
      if (m == "c.bnez") {
        need_operands(line, 2);
        return emit16(c_bnez(reg(0), target(1)));
      }
      if (m == "c.jr") {
        need_operands(line, 1);
        return emit16(c_jr(reg(0)));
      }
      if (m == "c.jalr") {
        need_operands(line, 1);
        return emit16(c_jalr(reg(0)));
      }
    } catch (const CheckError& e) {
      fail(line.number, std::string("bad compressed operand: ") + e.what());
    }
    fail(line.number, "unknown compressed mnemonic '" + m + "'");
  }

  u32 base_;
  std::vector<Line> lines_;
  Bytes image_;
  Program program_;
};

}  // namespace

u32 Program::label(const std::string& name) const {
  const auto it = labels.find(name);
  LACRV_CHECK_MSG(it != labels.end(), "unknown label " + name);
  return it->second;
}

Program assemble(const std::string& source, u32 base) {
  Assembler assembler(source, base);
  return assembler.take();
}

}  // namespace lacrv::rv
