#include "riscv/soc.h"

namespace lacrv::rv {

Soc::Soc(std::size_t ram_bytes) : cpu_(ram_bytes) {
  cpu_.set_mmio([this](u32 addr, u32& value, bool store) {
    if (store) {
      switch (addr) {
        case kUartTxAddr:
          uart_.push_back(static_cast<char>(value & 0xFF));
          return true;
        case kEocAddr:
          eoc_ = true;
          return true;
      }
      return false;
    }
    switch (addr) {
      case kCycleLoAddr:
        value = static_cast<u32>(cpu_.cycles());
        return true;
      case kCycleHiAddr:
        value = static_cast<u32>(cpu_.cycles() >> 32);
        return true;
      case kUartTxAddr:  // reading TX: last byte written (or 0)
        value = uart_.empty() ? 0 : static_cast<u8>(uart_.back());
        return true;
    }
    return false;
  });
}

void Soc::load(const Program& program) {
  cpu_.load_bytes(program.base, program.image);
}

void Soc::load_data(u32 addr, ByteView bytes) { cpu_.load_bytes(addr, bytes); }

bool Soc::run(u64 max_steps) {
  u64 steps = 0;
  while (!cpu_.halted() && !cpu_.trapped() && !eoc_ && steps < max_steps) {
    cpu_.step();
    ++steps;
  }
  // A trap is an abnormal stop: the program did not terminate.
  return cpu_.halted() || eoc_;
}

}  // namespace lacrv::rv
