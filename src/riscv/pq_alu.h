// The PQ-ALU (Fig. 5): the four hardware accelerators wrapped with the
// register-level instruction semantics of the pq.* extension
// (conventions documented in riscv/encoding.h, namespace pq).
#pragma once

#include <array>

#include "rtl/barrett_unit.h"
#include "rtl/gf_mul.h"
#include "rtl/mul_ter.h"
#include "rtl/sha256_core.h"

namespace lacrv::rv {

class PqAlu {
 public:
  struct Result {
    u32 rd_value = 0;
    /// Extra pipeline stall cycles beyond the 1-cycle issue (e.g. the n
    /// compute cycles of a pq.mul_ter START).
    u64 stall_cycles = 0;
  };

  /// Execute one pq.* instruction.
  Result execute(u32 funct3, u32 rs1_value, u32 rs2_value);

  rtl::MulTerRtl& mul_ter() { return mul_ter_; }
  rtl::Sha256Rtl& sha256() { return sha_; }
  rtl::BarrettRtl& barrett() { return barrett_; }

  /// Structural area of the whole PQ-ALU (the accelerator rows of
  /// Table III).
  rtl::AreaReport area() const;

 private:
  Result exec_mul_ter(u32 rs1, u32 rs2);
  Result exec_chien(u32 rs1, u32 rs2);
  Result exec_sha256(u32 rs1, u32 rs2);

  rtl::MulTerRtl mul_ter_{512};
  rtl::Sha256Rtl sha_;
  rtl::BarrettRtl barrett_;

  // MUL CHIEN state: four multiplier lanes per group, four groups
  // (enough for t = 16); `product` holds the feedback value.
  struct ChienLane {
    gf::Element constant = 0;
    gf::Element value = 0;
    gf::Element product = 0;
  };
  std::array<std::array<ChienLane, 4>, 4> chien_groups_{};
  std::array<rtl::GfMulRtl, 4> chien_muls_{};
};

}  // namespace lacrv::rv
