#include "riscv/pq_alu.h"

#include "common/check.h"
#include "riscv/encoding.h"
#include "rtl/chien_unit.h"

namespace lacrv::rv {

PqAlu::Result PqAlu::exec_mul_ter(u32 rs1, u32 rs2) {
  Result result;
  const std::size_t n = mul_ter_.length();
  switch (pq::mode_of(rs2)) {
    case pq::kMulTerLoad: {
      const u32 addr = rs2 >> 18 & 0x3FF;
      const u8 general[5] = {
          static_cast<u8>(rs1), static_cast<u8>(rs1 >> 8),
          static_cast<u8>(rs1 >> 16), static_cast<u8>(rs1 >> 24),
          static_cast<u8>(rs2)};
      for (int lane = 0; lane < 5; ++lane) {
        const std::size_t idx = 5 * addr + static_cast<std::size_t>(lane);
        if (idx >= n) break;
        const u32 tern_code = rs2 >> (8 + 2 * lane) & 0x3;
        mul_ter_.load_b(idx, static_cast<u8>(general[lane] % poly::kQ));
        mul_ter_.load_a(idx, tern_code == 1 ? i8{1}
                             : tern_code == 2 ? i8{-1}
                                              : i8{0});
      }
      break;
    }
    case pq::kMulTerStart: {
      mul_ter_.start(/*negacyclic=*/(rs2 & 1) != 0);
      result.stall_cycles = mul_ter_.run_to_completion();
      break;
    }
    case pq::kMulTerRead: {
      const u32 addr = rs2 & 0x3FF;
      u32 word = 0;
      for (int lane = 0; lane < 4; ++lane) {
        const std::size_t idx = 4 * addr + static_cast<std::size_t>(lane);
        if (idx >= n) break;
        word |= static_cast<u32>(mul_ter_.read_c(idx)) << (8 * lane);
      }
      result.rd_value = word;
      break;
    }
    case pq::kMulTerReset:
      mul_ter_.reset();
      break;
  }
  return result;
}

PqAlu::Result PqAlu::exec_chien(u32 rs1, u32 rs2) {
  Result result;
  const u32 mode = pq::mode_of(rs2);
  auto& group = chien_groups_[rs2 >> 24 & 0x3];
  switch (mode) {
    case pq::kChienLoadLeft:
    case pq::kChienLoadRight: {
      const int base = mode == pq::kChienLoadLeft ? 0 : 2;
      group[base].constant = static_cast<gf::Element>(rs1 & 0x1FF);
      group[base].value = static_cast<gf::Element>(rs1 >> 9 & 0x1FF);
      group[base + 1].constant = static_cast<gf::Element>(rs1 >> 18 & 0x1FF);
      group[base + 1].value = static_cast<gf::Element>(rs2 & 0x1FF);
      // Loading also primes the feedback registers, so a compute with the
      // loop bit set right after a load starts from the loaded values
      // ("the values are only loaded ... in the first round", Sec. IV-B).
      group[base].product = group[base].value;
      group[base + 1].product = group[base + 1].value;
      break;
    }
    case pq::kChienCompute: {
      auto& grp = chien_groups_[rs2 >> 4 & 0x3];
      const bool loop = (rs2 & pq::kChienLoopBit) != 0;
      u64 pass_cycles = 0;
      gf::Element sum = 0;
      for (int m = 0; m < 4; ++m) {
        ChienLane& lane = grp[static_cast<std::size_t>(m)];
        rtl::GfMulRtl& mul = chien_muls_[static_cast<std::size_t>(m)];
        mul.reset();
        mul.load(lane.constant, loop ? lane.product : lane.value);
        mul.start();
        pass_cycles = std::max(pass_cycles, mul.run_to_completion());
        lane.product = mul.result();
        sum = gf::add(sum, lane.product);
      }
      result.rd_value = sum;
      result.stall_cycles = pass_cycles;  // the four multipliers in lockstep
      break;
    }
    case pq::kChienReset:
      for (auto& g : chien_groups_)
        for (auto& lane : g) lane = ChienLane{};
      break;
  }
  return result;
}

PqAlu::Result PqAlu::exec_sha256(u32 rs1, u32 rs2) {
  Result result;
  switch (pq::mode_of(rs2)) {
    case pq::kShaLoad:
      sha_.load_byte(rs2 & 0x3F, static_cast<u8>(rs1));
      break;
    case pq::kShaHash:
      sha_.start();
      result.stall_cycles = sha_.run_to_completion();
      break;
    case pq::kShaRead: {
      const u32 word_idx = rs2 & 0x7;
      u32 word = 0;
      for (u32 i = 0; i < 4; ++i)
        word |= static_cast<u32>(sha_.read_digest_byte(4 * word_idx + i))
                << (8 * i);
      result.rd_value = word;
      break;
    }
    case pq::kShaReset:
      sha_.reset_state();
      break;
  }
  return result;
}

PqAlu::Result PqAlu::execute(u32 funct3, u32 rs1_value, u32 rs2_value) {
  switch (funct3) {
    case pq::kFunct3MulTer:
      return exec_mul_ter(rs1_value, rs2_value);
    case pq::kFunct3MulChien:
      return exec_chien(rs1_value, rs2_value);
    case pq::kFunct3Sha256:
      return exec_sha256(rs1_value, rs2_value);
    case pq::kFunct3Modq:
      return Result{barrett_.reduce(rs1_value & 0xFFFF), 0};
  }
  LACRV_CHECK_MSG(false, "undefined pq funct3");
}

rtl::AreaReport PqAlu::area() const {
  return rtl::combine("PQ-ALU",
                      {mul_ter_.area(), rtl::ChienRtl().area(), sha_.area(),
                       barrett_.area()});
}

}  // namespace lacrv::rv
