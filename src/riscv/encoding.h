// RV32IM instruction encoding plus the paper's post-quantum extension.
//
// The four custom instructions (Sec. V) are R-type under opcode 0x77:
//
//   31      25 24  20 19  15 14 12 11   7 6     0
//   [ funct7 ][ rs2 ][ rs1 ][f3 ][  rd  ][0x77   ]
//
//   funct3 = 0  pq.mul_ter     funct3 = 2  pq.sha256
//   funct3 = 1  pq.mul_chien   funct3 = 3  pq.modq
//
// "Remaining bits of the input registers ... are used to control the
// accelerator" — the paper defines the concept but not the exact layouts;
// the concrete register-value conventions of this implementation are
// specified here (pq namespace) and implemented by riscv/pq_alu.*.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.h"

namespace lacrv::rv {

// ---- base opcodes ---------------------------------------------------------
inline constexpr u32 kOpLui = 0b0110111;
inline constexpr u32 kOpAuipc = 0b0010111;
inline constexpr u32 kOpJal = 0b1101111;
inline constexpr u32 kOpJalr = 0b1100111;
inline constexpr u32 kOpBranch = 0b1100011;
inline constexpr u32 kOpLoad = 0b0000011;
inline constexpr u32 kOpStore = 0b0100011;
inline constexpr u32 kOpImm = 0b0010011;
inline constexpr u32 kOpReg = 0b0110011;
inline constexpr u32 kOpFence = 0b0001111;
inline constexpr u32 kOpSystem = 0b1110011;
/// The post-quantum extension opcode (Fig. 6).
inline constexpr u32 kOpPq = 0x77;

// ---- field packers / extractors -------------------------------------------
constexpr u32 encode_r(u32 opcode, u32 rd, u32 funct3, u32 rs1, u32 rs2,
                       u32 funct7) {
  return opcode | rd << 7 | funct3 << 12 | rs1 << 15 | rs2 << 20 |
         funct7 << 25;
}
constexpr u32 encode_i(u32 opcode, u32 rd, u32 funct3, u32 rs1, i32 imm) {
  return opcode | rd << 7 | funct3 << 12 | rs1 << 15 |
         (static_cast<u32>(imm) & 0xFFF) << 20;
}
constexpr u32 encode_s(u32 opcode, u32 funct3, u32 rs1, u32 rs2, i32 imm) {
  const u32 u = static_cast<u32>(imm);
  return opcode | (u & 0x1F) << 7 | funct3 << 12 | rs1 << 15 | rs2 << 20 |
         (u >> 5 & 0x7F) << 25;
}
constexpr u32 encode_b(u32 opcode, u32 funct3, u32 rs1, u32 rs2, i32 imm) {
  const u32 u = static_cast<u32>(imm);
  return opcode | (u >> 11 & 1) << 7 | (u >> 1 & 0xF) << 8 | funct3 << 12 |
         rs1 << 15 | rs2 << 20 | (u >> 5 & 0x3F) << 25 | (u >> 12 & 1) << 31;
}
constexpr u32 encode_u(u32 opcode, u32 rd, u32 imm20) {
  return opcode | rd << 7 | (imm20 & 0xFFFFF) << 12;
}
constexpr u32 encode_j(u32 opcode, u32 rd, i32 imm) {
  const u32 u = static_cast<u32>(imm);
  return opcode | rd << 7 | (u >> 12 & 0xFF) << 12 | (u >> 11 & 1) << 20 |
         (u >> 1 & 0x3FF) << 21 | (u >> 20 & 1) << 31;
}

constexpr u32 get_opcode(u32 insn) { return insn & 0x7F; }
constexpr u32 get_rd(u32 insn) { return insn >> 7 & 0x1F; }
constexpr u32 get_funct3(u32 insn) { return insn >> 12 & 0x7; }
constexpr u32 get_rs1(u32 insn) { return insn >> 15 & 0x1F; }
constexpr u32 get_rs2(u32 insn) { return insn >> 20 & 0x1F; }
constexpr u32 get_funct7(u32 insn) { return insn >> 25 & 0x7F; }

constexpr i32 imm_i(u32 insn) { return static_cast<i32>(insn) >> 20; }
constexpr i32 imm_s(u32 insn) {
  return (static_cast<i32>(insn) >> 25 << 5) |
         static_cast<i32>(insn >> 7 & 0x1F);
}
constexpr i32 imm_b(u32 insn) {
  return (static_cast<i32>(insn) >> 31 << 12) |
         static_cast<i32>((insn >> 7 & 1) << 11 | (insn >> 25 & 0x3F) << 5 |
                          (insn >> 8 & 0xF) << 1);
}
constexpr i32 imm_u(u32 insn) { return static_cast<i32>(insn & 0xFFFFF000); }
constexpr i32 imm_j(u32 insn) {
  return (static_cast<i32>(insn) >> 31 << 20) |
         static_cast<i32>((insn >> 12 & 0xFF) << 12 | (insn >> 20 & 1) << 11 |
                          (insn >> 21 & 0x3FF) << 1);
}

// ---- PQ extension register-value conventions ------------------------------
namespace pq {

inline constexpr u32 kFunct3MulTer = 0;
inline constexpr u32 kFunct3MulChien = 1;
inline constexpr u32 kFunct3Sha256 = 2;
inline constexpr u32 kFunct3Modq = 3;

/// Mode field: rs2[31:28] for all buffered units.
constexpr u32 mode_of(u32 rs2_value) { return rs2_value >> 28; }

// pq.mul_ter —
//  mode 0 LOAD:  rs1 = g0..g3 (bytes, little-endian lanes);
//                rs2[7:0] = g4; rs2[17:8] = t0..t4 (2 bits each:
//                0 -> 0, 1 -> +1, 2 -> -1); rs2[27:18] = chunk address
//                (coefficients 5*addr .. 5*addr+4).
//  mode 1 START: rs2[0] = conv_n (1 = negative wrapped convolution);
//                the core stalls for the unit's n compute cycles.
//  mode 2 READ:  rs2[9:0] = chunk address; rd = c[4*addr .. 4*addr+3]
//                packed as bytes, little-endian lanes.
//  mode 3 RESET: clear operand and result registers.
inline constexpr u32 kMulTerLoad = 0, kMulTerStart = 1, kMulTerRead = 2,
                     kMulTerReset = 3;

// pq.mul_chien —
//  mode 0 LOAD_LEFT:  multipliers 0/1 of the group in rs2[25:24]:
//                     const0 = rs1[8:0], value0 = rs1[17:9],
//                     const1 = rs1[26:18], value1 = rs2[8:0].
//  mode 1 LOAD_RIGHT: same fields for multipliers 2/3.
//  mode 2 COMPUTE:    rs2[0] = loop (feed previous products back into the
//                     second inputs); rs2[5:4] = group select; 9 compute
//                     cycles; rd = XOR of the four products (9 bits).
//  mode 3 RESET.
inline constexpr u32 kChienLoadLeft = 0, kChienLoadRight = 1,
                     kChienCompute = 2, kChienReset = 3;
inline constexpr u32 kChienLoopBit = 1u << 0;

// pq.sha256 —
//  mode 0 LOAD:  block[rs2[5:0]] = rs1[7:0]  (byte-wise input, Sec. V).
//  mode 1 HASH:  compress the loaded block (65 cycles, core stalls).
//  mode 2 READ:  rd = digest word rs2[2:0] (big-endian byte order packed
//                into a little-endian register word).
//  mode 3 RESET: restore the chaining state to the IV.
inline constexpr u32 kShaLoad = 0, kShaHash = 1, kShaRead = 2, kShaReset = 3;

// pq.modq — rd = rs1[15:0] mod 251 (Barrett datapath, single cycle).

}  // namespace pq

/// Human-readable disassembly (debugging aid; best effort).
std::string disassemble(u32 insn);

/// Disassemble a raw parcel: 16-bit compressed instructions are expanded
/// and prefixed with "c: "; illegal parcels yield "<illegal>".
std::string disassemble_parcel(u32 raw);

/// ABI/numeric register-name lookup: "x7", "t2", "a0", ... -> index.
std::optional<int> parse_register(const std::string& name);
/// Canonical ABI name of a register index.
std::string register_name(int index);

}  // namespace lacrv::rv
