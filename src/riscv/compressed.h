// RV32C — the compressed instruction set (the "C" in the paper's RV32IMC
// RISCY core). The ISS executes compressed code by expanding each 16-bit
// instruction to its 32-bit equivalent; pc advances by 2 and link
// registers receive pc + 2 (handled by the CPU's instruction-length
// plumbing).
#pragma once

#include "common/types.h"

namespace lacrv::rv {

/// True iff the two low bits select a compressed encoding.
constexpr bool is_compressed(u32 insn) { return (insn & 3) != 3; }

/// Expand a 16-bit RV32C instruction to its 32-bit equivalent.
/// Throws CheckError on illegal/unsupported encodings (FP loads/stores
/// are not implemented — the core has no F extension).
u32 expand_compressed(u16 insn);

// Encoders for tests and code generators (quadrant/funct fields per the
// RV32C spec). Register constraints (x8..x15 for the prime forms) are
// checked.
u16 c_addi4spn(int rd_p, u32 nzuimm);
u16 c_lw(int rd_p, int rs1_p, u32 uimm);
u16 c_sw(int rs2_p, int rs1_p, u32 uimm);
u16 c_nop();
u16 c_addi(int rd, i32 nzimm);
u16 c_jal(i32 offset);
u16 c_li(int rd, i32 imm);
u16 c_addi16sp(i32 nzimm);
u16 c_lui(int rd, i32 nzimm);
u16 c_srli(int rd_p, u32 shamt);
u16 c_srai(int rd_p, u32 shamt);
u16 c_andi(int rd_p, i32 imm);
u16 c_sub(int rd_p, int rs2_p);
u16 c_xor(int rd_p, int rs2_p);
u16 c_or(int rd_p, int rs2_p);
u16 c_and(int rd_p, int rs2_p);
u16 c_j(i32 offset);
u16 c_beqz(int rs1_p, i32 offset);
u16 c_bnez(int rs1_p, i32 offset);
u16 c_slli(int rd, u32 shamt);
u16 c_lwsp(int rd, u32 uimm);
u16 c_jr(int rs1);
u16 c_mv(int rd, int rs2);
u16 c_ebreak();
u16 c_jalr(int rs1);
u16 c_add(int rd, int rs2);
u16 c_swsp(int rs2, u32 uimm);

}  // namespace lacrv::rv
