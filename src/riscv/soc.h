// A PULPino-like mini-SoC around the RISCY-style core (the paper's
// platform, Sec. V): RAM plus a small memory-mapped peripheral block.
// Programs print through the UART register and signal completion via the
// end-of-computation register — the way PULPino firmware actually does.
//
// Memory map (a simplified PULPino layout):
//   0x0000_0000  RAM (instructions + data, `ram_bytes`)
//   0x1A10_0000  UART TX        (write a byte; captured into uart_output)
//   0x1A10_0004  EOC            (write any value: halt the simulation)
//   0x1A10_0008  CYCLE_LO       (read: current cycle count, low 32 bits)
//   0x1A10_000C  CYCLE_HI
#pragma once

#include <string>

#include "riscv/assembler.h"
#include "riscv/cpu.h"

namespace lacrv::rv {

inline constexpr u32 kUartTxAddr = 0x1A100000;
inline constexpr u32 kEocAddr = 0x1A100004;
inline constexpr u32 kCycleLoAddr = 0x1A100008;
inline constexpr u32 kCycleHiAddr = 0x1A10000C;

class Soc {
 public:
  explicit Soc(std::size_t ram_bytes = 1 << 20);

  /// Load a program image at its base address.
  void load(const Program& program);
  /// Load raw data into RAM.
  void load_data(u32 addr, ByteView bytes);

  /// Run until an EOC write, ebreak, or the step limit. Returns true if
  /// the program terminated (rather than hitting the limit).
  bool run(u64 max_steps = 100'000'000);

  /// Everything the program wrote to the UART so far.
  const std::string& uart_output() const { return uart_; }
  /// True once the program wrote the EOC register.
  bool eoc() const { return eoc_; }

  Cpu& cpu() { return cpu_; }
  const Cpu& cpu() const { return cpu_; }
  u64 cycles() const { return cpu_.cycles(); }

 private:
  Cpu cpu_;
  std::string uart_;
  bool eoc_ = false;
};

}  // namespace lacrv::rv
