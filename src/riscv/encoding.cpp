#include "riscv/encoding.h"

#include <array>
#include <sstream>

#include "common/check.h"
#include "riscv/compressed.h"

namespace lacrv::rv {
namespace {

constexpr std::array<const char*, 32> kAbiNames = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};

}  // namespace

std::optional<int> parse_register(const std::string& name) {
  for (int i = 0; i < 32; ++i)
    if (name == kAbiNames[i]) return i;
  if (name == "fp") return 8;
  if (name.size() >= 2 && name[0] == 'x') {
    int idx = 0;
    for (std::size_t i = 1; i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') return std::nullopt;
      idx = idx * 10 + (name[i] - '0');
    }
    if (idx < 32) return idx;
  }
  return std::nullopt;
}

std::string register_name(int index) {
  if (index < 0 || index >= 32) return "x?";
  return kAbiNames[static_cast<std::size_t>(index)];
}

std::string disassemble(u32 insn) {
  std::ostringstream os;
  const u32 op = get_opcode(insn);
  const u32 f3 = get_funct3(insn);
  const u32 f7 = get_funct7(insn);
  const std::string rd = register_name(static_cast<int>(get_rd(insn)));
  const std::string rs1 = register_name(static_cast<int>(get_rs1(insn)));
  const std::string rs2 = register_name(static_cast<int>(get_rs2(insn)));

  switch (op) {
    case kOpLui:
      os << "lui " << rd << ", " << (imm_u(insn) >> 12);
      break;
    case kOpAuipc:
      os << "auipc " << rd << ", " << (imm_u(insn) >> 12);
      break;
    case kOpJal:
      os << "jal " << rd << ", " << imm_j(insn);
      break;
    case kOpJalr:
      os << "jalr " << rd << ", " << imm_i(insn) << "(" << rs1 << ")";
      break;
    case kOpBranch: {
      static constexpr const char* kNames[] = {"beq",  "bne", "?", "?",
                                               "blt",  "bge", "bltu", "bgeu"};
      os << kNames[f3] << " " << rs1 << ", " << rs2 << ", " << imm_b(insn);
      break;
    }
    case kOpLoad: {
      static constexpr const char* kNames[] = {"lb", "lh", "lw", "?",
                                               "lbu", "lhu"};
      os << (f3 < 6 ? kNames[f3] : "?") << " " << rd << ", " << imm_i(insn)
         << "(" << rs1 << ")";
      break;
    }
    case kOpStore: {
      static constexpr const char* kNames[] = {"sb", "sh", "sw"};
      os << (f3 < 3 ? kNames[f3] : "?") << " " << rs2 << ", " << imm_s(insn)
         << "(" << rs1 << ")";
      break;
    }
    case kOpImm: {
      static constexpr const char* kNames[] = {"addi", "slli", "slti",
                                               "sltiu", "xori", "sr?i",
                                               "ori",  "andi"};
      if (f3 == 5)
        os << (f7 & 0x20 ? "srai " : "srli ") << rd << ", " << rs1 << ", "
           << (imm_i(insn) & 0x1F);
      else if (f3 == 1)
        os << "slli " << rd << ", " << rs1 << ", " << (imm_i(insn) & 0x1F);
      else
        os << kNames[f3] << " " << rd << ", " << rs1 << ", " << imm_i(insn);
      break;
    }
    case kOpReg: {
      const char* name = "?";
      if (f7 == 1) {
        static constexpr const char* kM[] = {"mul",  "mulh", "mulhsu",
                                             "mulhu", "div",  "divu",
                                             "rem",  "remu"};
        name = kM[f3];
      } else {
        static constexpr const char* kBase[] = {"add", "sll", "slt", "sltu",
                                                "xor", "srl", "or",  "and"};
        name = (f3 == 0 && (f7 & 0x20)) ? "sub"
               : (f3 == 5 && (f7 & 0x20)) ? "sra"
                                          : kBase[f3];
      }
      os << name << " " << rd << ", " << rs1 << ", " << rs2;
      break;
    }
    case kOpPq: {
      static constexpr const char* kNames[] = {"pq.mul_ter", "pq.mul_chien",
                                               "pq.sha256", "pq.modq"};
      os << (f3 < 4 ? kNames[f3] : "pq.?") << " " << rd << ", " << rs1
         << ", " << rs2;
      break;
    }
    case kOpSystem:
      os << (insn == 0x00100073 ? "ebreak" : "ecall");
      break;
    case kOpFence:
      os << "fence";
      break;
    default:
      os << ".word 0x" << std::hex << insn;
  }
  return os.str();
}

std::string disassemble_parcel(u32 raw) {
  if ((raw & 3) != 3) {
    try {
      return "c: " + disassemble(expand_compressed(static_cast<u16>(raw)));
    } catch (const CheckError&) {
      return "<illegal>";
    }
  }
  return disassemble(raw);
}

}  // namespace lacrv::rv
