// RV32IM instruction-set simulator with a RISCY-like cycle model and the
// PQ-ALU attached under opcode 0x77 (Fig. 5). This is the executable
// substrate for the ISA-extension kernels: the accelerated routines run
// as real machine code with the packing conventions of Sec. V, and the
// cycle counter models the 4-stage in-order pipeline (single-cycle ALU,
// 2-cycle loads, 3-cycle taken branches, 35-cycle divides, accelerator
// stalls while a unit computes).
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "riscv/pq_alu.h"

namespace lacrv::rv {

class IssProfiler;

/// Machine trap causes (mcause encoding of the privileged spec, plus a
/// custom cause for PQ-ALU protocol faults — causes >= 24 are designated
/// for custom use).
enum class TrapCause : u32 {
  kNone = 0xFFFFFFFFu,       // sentinel: no trap pending
  kInstructionFault = 1,      // fetch outside RAM / unclaimed MMIO
  kIllegalInstruction = 2,
  kLoadFault = 5,
  kStoreFault = 7,
  kPqUnit = 24,               // PQ-ALU rejected the operation (custom)
};

const char* trap_cause_name(TrapCause cause);

class Cpu {
 public:
  explicit Cpu(std::size_t mem_bytes = 1 << 20);

  // ---- program / data loading --------------------------------------------
  void load_words(u32 addr, std::span<const u32> words);
  void load_bytes(u32 addr, ByteView bytes);

  // ---- architectural state -----------------------------------------------
  u32 reg(int index) const { return regs_[static_cast<std::size_t>(index)]; }
  void set_reg(int index, u32 value);
  u32 pc() const { return pc_; }
  void set_pc(u32 pc) { pc_ = pc; }

  u8 read_byte(u32 addr) const;
  u32 read_word(u32 addr) const;
  void write_byte(u32 addr, u8 value);
  void write_word(u32 addr, u32 value);

  // ---- execution -----------------------------------------------------------
  /// Execute one instruction. Illegal instructions, memory faults and
  /// PQ-ALU protocol violations do not throw: they raise a machine trap
  /// (trapped() becomes true; mepc/mcause/mtval describe the fault) and
  /// the faulting instruction does not retire. Calling step() while a
  /// trap is pending is a host programming error (CheckError).
  void step();
  /// Run until ebreak/ecall, a trap, or the step limit; returns
  /// instructions retired. halted() tells whether the program finished;
  /// trapped() whether it died on a fault instead.
  u64 run(u64 max_steps = 100'000'000);
  bool halted() const { return halted_; }

  // ---- trap state ----------------------------------------------------------
  /// True iff execution stopped on an unhandled machine trap (there is no
  /// OS model, so traps are terminal until the host clears them).
  bool trapped() const { return trapped_; }
  /// Cause of the pending (or, after clear_trap(), most recent) trap;
  /// kNone if no trap was ever raised.
  TrapCause trap_cause() const { return trap_cause_; }
  /// PC of the faulting instruction (mepc semantics).
  u32 mepc() const { return mepc_; }
  /// Faulting address (memory faults) or instruction bits (illegal
  /// instruction / PQ faults) — mtval semantics.
  u32 mtval() const { return mtval_; }
  /// Acknowledge the trap so the host can patch state and resume (the
  /// moral equivalent of an mret from a host-provided handler). The pc is
  /// left at mepc; set_pc() to skip or redirect.
  void clear_trap();

  u64 cycles() const { return cycles_; }
  u64 instructions() const { return instructions_; }

  PqAlu& pq() { return pq_; }

  /// Attach a hot-spot profiler (riscv/profiler.h); every retired
  /// instruction reports its PC, bits and cycle cost. Null detaches;
  /// the detached cost is one branch per instruction.
  void set_profiler(IssProfiler* profiler) { profiler_ = profiler; }

  /// Optional memory-mapped I/O handler, consulted for any access that
  /// falls outside RAM. Returns true if it claimed the access; `value`
  /// carries the datum (in for stores, out for loads). Unclaimed
  /// out-of-range accesses fault as before.
  using MmioHandler = std::function<bool(u32 addr, u32& value, bool store)>;
  void set_mmio(MmioHandler handler) { mmio_ = std::move(handler); }

 private:
  void exec(u32 insn, u32 ilen);
  void raise_trap(TrapCause cause, u32 mtval);

  // Non-throwing memory paths for the execution pipeline (the public
  // accessors keep LACRV_CHECK for host debugging). Return false on an
  // access that neither RAM nor MMIO claims; the caller raises the trap.
  bool mem_load(u32 addr, u32 size_log2, bool sign, u32* value);
  bool mem_store(u32 addr, u32 size_log2, u32 value);

  std::vector<u8> memory_;
  std::array<u32, 32> regs_{};
  u32 pc_ = 0;
  bool halted_ = false;
  bool trapped_ = false;
  TrapCause trap_cause_ = TrapCause::kNone;
  u32 mepc_ = 0;
  u32 mtval_ = 0;
  u64 cycles_ = 0;
  u64 instructions_ = 0;
  PqAlu pq_;
  MmioHandler mmio_;
  IssProfiler* profiler_ = nullptr;
};

}  // namespace lacrv::rv
