// RV32IM instruction-set simulator with a RISCY-like cycle model and the
// PQ-ALU attached under opcode 0x77 (Fig. 5). This is the executable
// substrate for the ISA-extension kernels: the accelerated routines run
// as real machine code with the packing conventions of Sec. V, and the
// cycle counter models the 4-stage in-order pipeline (single-cycle ALU,
// 2-cycle loads, 3-cycle taken branches, 35-cycle divides, accelerator
// stalls while a unit computes).
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "riscv/pq_alu.h"

namespace lacrv::rv {

class Cpu {
 public:
  explicit Cpu(std::size_t mem_bytes = 1 << 20);

  // ---- program / data loading --------------------------------------------
  void load_words(u32 addr, std::span<const u32> words);
  void load_bytes(u32 addr, ByteView bytes);

  // ---- architectural state -----------------------------------------------
  u32 reg(int index) const { return regs_[static_cast<std::size_t>(index)]; }
  void set_reg(int index, u32 value);
  u32 pc() const { return pc_; }
  void set_pc(u32 pc) { pc_ = pc; }

  u8 read_byte(u32 addr) const;
  u32 read_word(u32 addr) const;
  void write_byte(u32 addr, u8 value);
  void write_word(u32 addr, u32 value);

  // ---- execution -----------------------------------------------------------
  /// Execute one instruction. Throws CheckError on illegal instructions
  /// or memory faults.
  void step();
  /// Run until ebreak/ecall or the step limit; returns instructions
  /// retired. halted() tells whether the program finished.
  u64 run(u64 max_steps = 100'000'000);
  bool halted() const { return halted_; }

  u64 cycles() const { return cycles_; }
  u64 instructions() const { return instructions_; }

  PqAlu& pq() { return pq_; }

  /// Optional memory-mapped I/O handler, consulted for any access that
  /// falls outside RAM. Returns true if it claimed the access; `value`
  /// carries the datum (in for stores, out for loads). Unclaimed
  /// out-of-range accesses fault as before.
  using MmioHandler = std::function<bool(u32 addr, u32& value, bool store)>;
  void set_mmio(MmioHandler handler) { mmio_ = std::move(handler); }

 private:
  void exec(u32 insn, u32 ilen);

  std::vector<u8> memory_;
  std::array<u32, 32> regs_{};
  u32 pc_ = 0;
  bool halted_ = false;
  u64 cycles_ = 0;
  u64 instructions_ = 0;
  PqAlu pq_;
  MmioHandler mmio_;
};

}  // namespace lacrv::rv
