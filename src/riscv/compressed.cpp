#include "riscv/compressed.h"

#include "common/check.h"
#include "riscv/encoding.h"

namespace lacrv::rv {
namespace {

constexpr u32 bit(u16 insn, int i) { return (insn >> i) & 1; }
constexpr u32 bits(u16 insn, int hi, int lo) {
  return (insn >> lo) & ((1u << (hi - lo + 1)) - 1);
}

/// rd'/rs' fields address x8..x15.
constexpr u32 prime_reg(u32 field) { return field + 8; }

int check_prime(int reg) {
  LACRV_CHECK_MSG(reg >= 8 && reg <= 15, "compressed prime register must be x8..x15");
  return reg - 8;
}

i32 sign_extend(u32 value, int width) {
  const u32 sign = 1u << (width - 1);
  return static_cast<i32>((value ^ sign) - sign);
}

// ---- immediate decoders (field scrambles per the RV32C spec) ---------------

u32 imm_addi4spn(u16 c) {
  return bits(c, 10, 7) << 6 | bits(c, 12, 11) << 4 | bit(c, 5) << 3 |
         bit(c, 6) << 2;
}
u32 imm_clw(u16 c) {
  return bit(c, 5) << 6 | bits(c, 12, 10) << 3 | bit(c, 6) << 2;
}
i32 imm_ci(u16 c) {  // c.addi / c.li / c.andi
  return sign_extend(bit(c, 12) << 5 | bits(c, 6, 2), 6);
}
i32 imm_cj(u16 c) {  // c.jal / c.j
  const u32 raw = bit(c, 12) << 11 | bit(c, 11) << 4 | bits(c, 10, 9) << 8 |
                  bit(c, 8) << 10 | bit(c, 7) << 6 | bit(c, 6) << 7 |
                  bits(c, 5, 3) << 1 | bit(c, 2) << 5;
  return sign_extend(raw, 12);
}
i32 imm_cb(u16 c) {  // c.beqz / c.bnez
  const u32 raw = bit(c, 12) << 8 | bits(c, 11, 10) << 3 |
                  bits(c, 6, 5) << 6 | bits(c, 4, 3) << 1 | bit(c, 2) << 5;
  return sign_extend(raw, 9);
}
i32 imm_addi16sp(u16 c) {
  const u32 raw = bit(c, 12) << 9 | bits(c, 4, 3) << 7 | bit(c, 5) << 6 |
                  bit(c, 2) << 5 | bit(c, 6) << 4;
  return sign_extend(raw, 10);
}
u32 imm_lwsp(u16 c) {
  return bits(c, 3, 2) << 6 | bit(c, 12) << 5 | bits(c, 6, 4) << 2;
}
u32 imm_swsp(u16 c) { return bits(c, 8, 7) << 6 | bits(c, 12, 9) << 2; }

}  // namespace

u32 expand_compressed(u16 c) {
  LACRV_CHECK_MSG(c != 0, "illegal compressed instruction 0x0000");
  const u32 quadrant = c & 3;
  const u32 funct3 = c >> 13;

  if (quadrant == 0) {
    const u32 rd_p = prime_reg(bits(c, 4, 2));
    const u32 rs1_p = prime_reg(bits(c, 9, 7));
    switch (funct3) {
      case 0b000: {  // c.addi4spn
        const u32 imm = imm_addi4spn(c);
        LACRV_CHECK_MSG(imm != 0, "c.addi4spn with zero immediate");
        return encode_i(kOpImm, rd_p, 0, 2, static_cast<i32>(imm));
      }
      case 0b010:  // c.lw
        return encode_i(kOpLoad, rd_p, 2, rs1_p,
                        static_cast<i32>(imm_clw(c)));
      case 0b110:  // c.sw
        return encode_s(kOpStore, 2, rs1_p, rd_p,
                        static_cast<i32>(imm_clw(c)));
    }
    LACRV_CHECK_MSG(false, "unsupported compressed quadrant-0 encoding");
  }

  if (quadrant == 1) {
    const u32 rd = bits(c, 11, 7);
    const u32 rd_p = prime_reg(bits(c, 9, 7));
    const u32 rs2_p = prime_reg(bits(c, 4, 2));
    switch (funct3) {
      case 0b000:  // c.addi (c.nop when rd=0)
        return encode_i(kOpImm, rd, 0, rd, imm_ci(c));
      case 0b001:  // c.jal (RV32 only)
        return encode_j(kOpJal, 1, imm_cj(c));
      case 0b010:  // c.li
        return encode_i(kOpImm, rd, 0, 0, imm_ci(c));
      case 0b011:
        if (rd == 2) {  // c.addi16sp
          const i32 imm = imm_addi16sp(c);
          LACRV_CHECK_MSG(imm != 0, "c.addi16sp with zero immediate");
          return encode_i(kOpImm, 2, 0, 2, imm);
        }
        return encode_u(kOpLui, rd, static_cast<u32>(imm_ci(c)) & 0xFFFFF);
      case 0b100: {
        const u32 funct2 = bits(c, 11, 10);
        const u32 shamt = bit(c, 12) << 5 | bits(c, 6, 2);
        switch (funct2) {
          case 0b00:  // c.srli
            LACRV_CHECK_MSG(shamt < 32, "RV32 shift amount");
            return encode_i(kOpImm, rd_p, 5, rd_p, static_cast<i32>(shamt));
          case 0b01:  // c.srai
            LACRV_CHECK_MSG(shamt < 32, "RV32 shift amount");
            return encode_i(kOpImm, rd_p, 5, rd_p,
                            static_cast<i32>(shamt | 0x400));
          case 0b10:  // c.andi
            return encode_i(kOpImm, rd_p, 7, rd_p, imm_ci(c));
          default: {  // register-register ops
            switch (bits(c, 6, 5)) {
              case 0b00:
                return encode_r(kOpReg, rd_p, 0, rd_p, rs2_p, 0x20);  // sub
              case 0b01:
                return encode_r(kOpReg, rd_p, 4, rd_p, rs2_p, 0);  // xor
              case 0b10:
                return encode_r(kOpReg, rd_p, 6, rd_p, rs2_p, 0);  // or
              default:
                return encode_r(kOpReg, rd_p, 7, rd_p, rs2_p, 0);  // and
            }
          }
        }
      }
      case 0b101:  // c.j
        return encode_j(kOpJal, 0, imm_cj(c));
      case 0b110:  // c.beqz
        return encode_b(kOpBranch, 0, rd_p, 0, imm_cb(c));
      case 0b111:  // c.bnez
        return encode_b(kOpBranch, 1, rd_p, 0, imm_cb(c));
    }
  }

  // quadrant == 2
  const u32 rd = bits(c, 11, 7);
  const u32 rs2 = bits(c, 6, 2);
  switch (funct3) {
    case 0b000: {  // c.slli
      const u32 shamt = bit(c, 12) << 5 | bits(c, 6, 2);
      LACRV_CHECK_MSG(shamt < 32, "RV32 shift amount");
      return encode_i(kOpImm, rd, 1, rd, static_cast<i32>(shamt));
    }
    case 0b010:  // c.lwsp
      LACRV_CHECK_MSG(rd != 0, "c.lwsp with rd=0 is reserved");
      return encode_i(kOpLoad, rd, 2, 2, static_cast<i32>(imm_lwsp(c)));
    case 0b100:
      if (bit(c, 12) == 0) {
        if (rs2 == 0) {  // c.jr
          LACRV_CHECK_MSG(rd != 0, "c.jr with rs1=0 is reserved");
          return encode_i(kOpJalr, 0, 0, rd, 0);
        }
        return encode_r(kOpReg, rd, 0, 0, rs2, 0);  // c.mv
      }
      if (rs2 == 0) {
        if (rd == 0) return 0x00100073;  // c.ebreak
        return encode_i(kOpJalr, 1, 0, rd, 0);  // c.jalr
      }
      return encode_r(kOpReg, rd, 0, rd, rs2, 0);  // c.add
    case 0b110:  // c.swsp
      return encode_s(kOpStore, 2, 2, rs2, static_cast<i32>(imm_swsp(c)));
  }
  LACRV_CHECK_MSG(false, "unsupported compressed quadrant-2 encoding");
}

// ---- encoders ---------------------------------------------------------------

namespace {

u32 scramble_cj(i32 offset) {
  const u32 u = static_cast<u32>(offset);
  return (u >> 11 & 1) << 10 | (u >> 4 & 1) << 9 | (u >> 8 & 3) << 7 |
         (u >> 10 & 1) << 6 | (u >> 6 & 1) << 5 | (u >> 7 & 1) << 4 |
         (u >> 1 & 7) << 1 | (u >> 5 & 1);
}


}  // namespace

u16 c_addi4spn(int rd_p, u32 nzuimm) {
  LACRV_CHECK(nzuimm != 0 && nzuimm < 1024 && nzuimm % 4 == 0);
  const u32 imm = (nzuimm >> 6 & 0xF) << 7 | (nzuimm >> 4 & 3) << 11 |
                  (nzuimm >> 3 & 1) << 5 | (nzuimm >> 2 & 1) << 6;
  return static_cast<u16>(0b000 << 13 | imm |
                          static_cast<u32>(check_prime(rd_p)) << 2 | 0b00);
}

u16 c_lw(int rd_p, int rs1_p, u32 uimm) {
  LACRV_CHECK(uimm < 128 && uimm % 4 == 0);
  const u32 imm = (uimm >> 6 & 1) << 5 | (uimm >> 3 & 7) << 10 |
                  (uimm >> 2 & 1) << 6;
  return static_cast<u16>(0b010 << 13 | imm |
                          static_cast<u32>(check_prime(rs1_p)) << 7 |
                          static_cast<u32>(check_prime(rd_p)) << 2 | 0b00);
}

u16 c_sw(int rs2_p, int rs1_p, u32 uimm) {
  LACRV_CHECK(uimm < 128 && uimm % 4 == 0);
  const u32 imm = (uimm >> 6 & 1) << 5 | (uimm >> 3 & 7) << 10 |
                  (uimm >> 2 & 1) << 6;
  return static_cast<u16>(0b110 << 13 | imm |
                          static_cast<u32>(check_prime(rs1_p)) << 7 |
                          static_cast<u32>(check_prime(rs2_p)) << 2 | 0b00);
}

u16 c_nop() { return 0x0001; }

u16 c_addi(int rd, i32 nzimm) {
  LACRV_CHECK(rd >= 0 && rd < 32 && nzimm >= -32 && nzimm <= 31);
  const u32 u = static_cast<u32>(nzimm);
  return static_cast<u16>(0b000 << 13 | (u >> 5 & 1) << 12 |
                          static_cast<u32>(rd) << 7 | (u & 0x1F) << 2 | 0b01);
}

u16 c_jal(i32 offset) {
  return static_cast<u16>(0b001 << 13 | scramble_cj(offset) << 2 | 0b01);
}

u16 c_li(int rd, i32 imm) {
  LACRV_CHECK(rd >= 0 && rd < 32 && imm >= -32 && imm <= 31);
  const u32 u = static_cast<u32>(imm);
  return static_cast<u16>(0b010 << 13 | (u >> 5 & 1) << 12 |
                          static_cast<u32>(rd) << 7 | (u & 0x1F) << 2 | 0b01);
}

u16 c_addi16sp(i32 nzimm) {
  LACRV_CHECK(nzimm != 0 && nzimm >= -512 && nzimm <= 496 && nzimm % 16 == 0);
  const u32 u = static_cast<u32>(nzimm);
  return static_cast<u16>(0b011 << 13 | (u >> 9 & 1) << 12 | 2u << 7 |
                          (u >> 4 & 1) << 6 | (u >> 6 & 1) << 5 |
                          (u >> 7 & 3) << 3 | (u >> 5 & 1) << 2 | 0b01);
}

u16 c_lui(int rd, i32 nzimm) {
  LACRV_CHECK(rd != 0 && rd != 2 && nzimm != 0 && nzimm >= -32 && nzimm <= 31);
  const u32 u = static_cast<u32>(nzimm);
  return static_cast<u16>(0b011 << 13 | (u >> 5 & 1) << 12 |
                          static_cast<u32>(rd) << 7 | (u & 0x1F) << 2 | 0b01);
}

namespace {
u16 c_shift(u32 funct2, int rd_p, u32 shamt) {
  LACRV_CHECK(shamt > 0 && shamt < 32);
  return static_cast<u16>(0b100 << 13 | funct2 << 10 |
                          static_cast<u32>(check_prime(rd_p)) << 7 |
                          (shamt & 0x1F) << 2 | 0b01);
}
u16 c_alu(u32 funct2, int rd_p, int rs2_p) {
  return static_cast<u16>(0b100 << 13 | 0b011 << 10 |
                          static_cast<u32>(check_prime(rd_p)) << 7 |
                          funct2 << 5 |
                          static_cast<u32>(check_prime(rs2_p)) << 2 | 0b01);
}
}  // namespace

u16 c_srli(int rd_p, u32 shamt) { return c_shift(0b00, rd_p, shamt); }
u16 c_srai(int rd_p, u32 shamt) { return c_shift(0b01, rd_p, shamt); }

u16 c_andi(int rd_p, i32 imm) {
  LACRV_CHECK(imm >= -32 && imm <= 31);
  const u32 u = static_cast<u32>(imm);
  return static_cast<u16>(0b100 << 13 | (u >> 5 & 1) << 12 | 0b10 << 10 |
                          static_cast<u32>(check_prime(rd_p)) << 7 |
                          (u & 0x1F) << 2 | 0b01);
}

u16 c_sub(int rd_p, int rs2_p) { return c_alu(0b00, rd_p, rs2_p); }
u16 c_xor(int rd_p, int rs2_p) { return c_alu(0b01, rd_p, rs2_p); }
u16 c_or(int rd_p, int rs2_p) { return c_alu(0b10, rd_p, rs2_p); }
u16 c_and(int rd_p, int rs2_p) { return c_alu(0b11, rd_p, rs2_p); }

u16 c_j(i32 offset) {
  return static_cast<u16>(0b101 << 13 | scramble_cj(offset) << 2 | 0b01);
}

namespace {
u16 c_branch(u32 funct3, int rs1_p, i32 offset) {
  LACRV_CHECK(offset >= -256 && offset <= 254 && offset % 2 == 0);
  const u32 u = static_cast<u32>(offset);
  return static_cast<u16>(funct3 << 13 | (u >> 8 & 1) << 12 |
                          (u >> 3 & 3) << 10 |
                          static_cast<u32>(check_prime(rs1_p)) << 7 |
                          (u >> 6 & 3) << 5 | (u >> 1 & 3) << 3 |
                          (u >> 5 & 1) << 2 | 0b01);
}
}  // namespace

u16 c_beqz(int rs1_p, i32 offset) { return c_branch(0b110, rs1_p, offset); }
u16 c_bnez(int rs1_p, i32 offset) { return c_branch(0b111, rs1_p, offset); }

u16 c_slli(int rd, u32 shamt) {
  LACRV_CHECK(rd != 0 && shamt > 0 && shamt < 32);
  return static_cast<u16>(0b000 << 13 | (shamt >> 5 & 1) << 12 |
                          static_cast<u32>(rd) << 7 | (shamt & 0x1F) << 2 |
                          0b10);
}

u16 c_lwsp(int rd, u32 uimm) {
  LACRV_CHECK(rd != 0 && uimm < 256 && uimm % 4 == 0);
  return static_cast<u16>(0b010 << 13 | (uimm >> 5 & 1) << 12 |
                          static_cast<u32>(rd) << 7 | (uimm >> 2 & 7) << 4 |
                          (uimm >> 6 & 3) << 2 | 0b10);
}

u16 c_jr(int rs1) {
  LACRV_CHECK(rs1 != 0);
  return static_cast<u16>(0b100 << 13 | static_cast<u32>(rs1) << 7 | 0b10);
}

u16 c_mv(int rd, int rs2) {
  LACRV_CHECK(rd != 0 && rs2 != 0);
  return static_cast<u16>(0b100 << 13 | static_cast<u32>(rd) << 7 |
                          static_cast<u32>(rs2) << 2 | 0b10);
}

u16 c_ebreak() { return 0x9002; }

u16 c_jalr(int rs1) {
  LACRV_CHECK(rs1 != 0);
  return static_cast<u16>(0b100 << 13 | 1u << 12 |
                          static_cast<u32>(rs1) << 7 | 0b10);
}

u16 c_add(int rd, int rs2) {
  LACRV_CHECK(rd != 0 && rs2 != 0);
  return static_cast<u16>(0b100 << 13 | 1u << 12 | static_cast<u32>(rd) << 7 |
                          static_cast<u32>(rs2) << 2 | 0b10);
}

u16 c_swsp(int rs2, u32 uimm) {
  LACRV_CHECK(uimm < 256 && uimm % 4 == 0);
  return static_cast<u16>(0b110 << 13 | (uimm >> 2 & 0xF) << 9 |
                          (uimm >> 6 & 3) << 7 | static_cast<u32>(rs2) << 2 |
                          0b10);
}

}  // namespace lacrv::rv
