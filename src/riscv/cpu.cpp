#include "riscv/cpu.h"

#include "common/check.h"
#include "common/costs.h"
#include "riscv/compressed.h"
#include "riscv/encoding.h"
#include "riscv/profiler.h"

namespace lacrv::rv {
namespace {

// RISCY-like cycle costs (see common/costs.h layer 1).
constexpr u64 kCycAlu = 1;
constexpr u64 kCycLoad = 2;   // single-cycle memory + average load-use stall
constexpr u64 kCycStore = 1;
constexpr u64 kCycBranchTaken = 3;
constexpr u64 kCycBranchNotTaken = 1;
constexpr u64 kCycJump = 2;
constexpr u64 kCycMul = 1;
constexpr u64 kCycDiv = 35;

}  // namespace

const char* trap_cause_name(TrapCause cause) {
  switch (cause) {
    case TrapCause::kNone: return "none";
    case TrapCause::kInstructionFault: return "instruction access fault";
    case TrapCause::kIllegalInstruction: return "illegal instruction";
    case TrapCause::kLoadFault: return "load access fault";
    case TrapCause::kStoreFault: return "store access fault";
    case TrapCause::kPqUnit: return "pq-alu fault";
  }
  return "unknown";
}

Cpu::Cpu(std::size_t mem_bytes) : memory_(mem_bytes, 0) {}

void Cpu::load_words(u32 addr, std::span<const u32> words) {
  for (std::size_t i = 0; i < words.size(); ++i)
    write_word(addr + static_cast<u32>(4 * i), words[i]);
}

void Cpu::load_bytes(u32 addr, ByteView bytes) {
  for (std::size_t i = 0; i < bytes.size(); ++i)
    write_byte(addr + static_cast<u32>(i), bytes[i]);
}

void Cpu::set_reg(int index, u32 value) {
  LACRV_CHECK(index >= 0 && index < 32);
  if (index != 0) regs_[static_cast<std::size_t>(index)] = value;
}

u8 Cpu::read_byte(u32 addr) const {
  if (addr >= memory_.size()) {
    u32 value = 0;
    if (mmio_ && mmio_(addr, value, /*store=*/false))
      return static_cast<u8>(value);
    LACRV_CHECK_MSG(false, "load address out of range");
  }
  return memory_[addr];
}

u32 Cpu::read_word(u32 addr) const {
  if (addr + 3 >= memory_.size() || addr + 3 < addr) {
    u32 value = 0;
    if (mmio_ && mmio_(addr, value, /*store=*/false)) return value;
    LACRV_CHECK_MSG(false, "load address out of range");
  }
  return load_le32(&memory_[addr]);
}

void Cpu::write_byte(u32 addr, u8 value) {
  if (addr >= memory_.size()) {
    u32 v = value;
    if (mmio_ && mmio_(addr, v, /*store=*/true)) return;
    LACRV_CHECK_MSG(false, "store address out of range");
  }
  memory_[addr] = value;
}

void Cpu::write_word(u32 addr, u32 value) {
  if (addr + 3 >= memory_.size() || addr + 3 < addr) {
    u32 v = value;
    if (mmio_ && mmio_(addr, v, /*store=*/true)) return;
    LACRV_CHECK_MSG(false, "store address out of range");
  }
  store_le32(&memory_[addr], value);
}

void Cpu::raise_trap(TrapCause cause, u32 mtval) {
  trapped_ = true;
  trap_cause_ = cause;
  mepc_ = pc_;
  mtval_ = mtval;
}

void Cpu::clear_trap() {
  // mcause/mepc/mtval persist (like the real CSRs) so handler code can
  // still read them after the acknowledge; only the pending flag clears.
  trapped_ = false;
}

bool Cpu::mem_load(u32 addr, u32 size_log2, bool sign, u32* value) {
  const auto rb = [&](u32 a, u8* out) {
    if (a < memory_.size()) {
      *out = memory_[a];
      return true;
    }
    u32 v = 0;
    if (mmio_ && mmio_(a, v, /*store=*/false)) {
      *out = static_cast<u8>(v);
      return true;
    }
    return false;
  };
  switch (size_log2) {
    case 0: {
      u8 b0 = 0;
      if (!rb(addr, &b0)) return false;
      *value = sign ? static_cast<u32>(static_cast<i32>(static_cast<i8>(b0)))
                    : b0;
      return true;
    }
    case 1: {
      u8 b0 = 0, b1 = 0;
      if (!rb(addr, &b0) || !rb(addr + 1, &b1)) return false;
      const u32 h = static_cast<u32>(b0) | static_cast<u32>(b1) << 8;
      *value = sign ? static_cast<u32>(static_cast<i32>(static_cast<i16>(h)))
                    : h;
      return true;
    }
    default: {
      if (addr + 3 < memory_.size() && addr + 3 >= addr) {
        *value = load_le32(&memory_[addr]);
        return true;
      }
      u32 v = 0;
      if (mmio_ && mmio_(addr, v, /*store=*/false)) {
        *value = v;
        return true;
      }
      return false;
    }
  }
}

bool Cpu::mem_store(u32 addr, u32 size_log2, u32 value) {
  const auto wb = [&](u32 a, u8 byte) {
    if (a < memory_.size()) {
      memory_[a] = byte;
      return true;
    }
    u32 v = byte;
    return mmio_ && mmio_(a, v, /*store=*/true);
  };
  switch (size_log2) {
    case 0:
      return wb(addr, static_cast<u8>(value));
    case 1:
      return wb(addr, static_cast<u8>(value)) &&
             wb(addr + 1, static_cast<u8>(value >> 8));
    default: {
      if (addr + 3 < memory_.size() && addr + 3 >= addr) {
        store_le32(&memory_[addr], value);
        return true;
      }
      u32 v = value;
      return mmio_ && mmio_(addr, v, /*store=*/true);
    }
  }
}

void Cpu::step() {
  LACRV_CHECK_MSG(!halted_, "step() after halt");
  LACRV_CHECK_MSG(!trapped_, "step() with a pending trap");
  // RV32IMC: 16-bit parcels whose low bits are not 0b11 are compressed
  // and expand to their 32-bit equivalent (pc advances by 2).
  u32 low = 0;
  if (!mem_load(pc_, 1, /*sign=*/false, &low)) {
    raise_trap(TrapCause::kInstructionFault, pc_);
    return;
  }
  u32 insn = 0, ilen = 4;
  if (is_compressed(low)) {
    try {
      insn = expand_compressed(static_cast<u16>(low));
    } catch (const CheckError&) {
      raise_trap(TrapCause::kIllegalInstruction, low);
      return;
    }
    ilen = 2;
  } else if (!mem_load(pc_, 2, /*sign=*/false, &insn)) {
    raise_trap(TrapCause::kInstructionFault, pc_);
    return;
  }
  const u32 fetch_pc = pc_;
  const u64 cycles_before = cycles_;
  exec(insn, ilen);
  // A faulting instruction does not retire.
  if (!trapped_) {
    ++instructions_;
    if (profiler_)
      profiler_->on_retire(fetch_pc, insn, cycles_ - cycles_before);
  }
}

u64 Cpu::run(u64 max_steps) {
  u64 steps = 0;
  while (!halted_ && !trapped_ && steps < max_steps) {
    step();
    if (!trapped_) ++steps;
  }
  return steps;
}

void Cpu::exec(u32 insn, u32 ilen) {
  const u32 op = get_opcode(insn);
  const int rd = static_cast<int>(get_rd(insn));
  const int rs1 = static_cast<int>(get_rs1(insn));
  const int rs2 = static_cast<int>(get_rs2(insn));
  const u32 f3 = get_funct3(insn);
  const u32 f7 = get_funct7(insn);
  const u32 a = reg(rs1);
  const u32 b = reg(rs2);
  u32 next_pc = pc_ + ilen;

  switch (op) {
    case kOpLui:
      set_reg(rd, static_cast<u32>(imm_u(insn)));
      cycles_ += kCycAlu;
      break;
    case kOpAuipc:
      set_reg(rd, pc_ + static_cast<u32>(imm_u(insn)));
      cycles_ += kCycAlu;
      break;
    case kOpJal:
      set_reg(rd, pc_ + ilen);
      next_pc = pc_ + static_cast<u32>(imm_j(insn));
      cycles_ += kCycJump;
      break;
    case kOpJalr:
      set_reg(rd, pc_ + ilen);
      next_pc = (a + static_cast<u32>(imm_i(insn))) & ~1u;
      cycles_ += kCycJump;
      break;
    case kOpBranch: {
      bool taken = false;
      switch (f3) {
        case 0: taken = a == b; break;
        case 1: taken = a != b; break;
        case 4: taken = static_cast<i32>(a) < static_cast<i32>(b); break;
        case 5: taken = static_cast<i32>(a) >= static_cast<i32>(b); break;
        case 6: taken = a < b; break;
        case 7: taken = a >= b; break;
        default:
          raise_trap(TrapCause::kIllegalInstruction, insn);
          return;
      }
      if (taken) next_pc = pc_ + static_cast<u32>(imm_b(insn));
      cycles_ += taken ? kCycBranchTaken : kCycBranchNotTaken;
      break;
    }
    case kOpLoad: {
      const u32 addr = a + static_cast<u32>(imm_i(insn));
      u32 value = 0;
      bool ok = false;
      switch (f3) {
        case 0: ok = mem_load(addr, 0, /*sign=*/true, &value); break;
        case 1: ok = mem_load(addr, 1, /*sign=*/true, &value); break;
        case 2: ok = mem_load(addr, 2, /*sign=*/false, &value); break;
        case 4: ok = mem_load(addr, 0, /*sign=*/false, &value); break;
        case 5: ok = mem_load(addr, 1, /*sign=*/false, &value); break;
        default:
          raise_trap(TrapCause::kIllegalInstruction, insn);
          return;
      }
      if (!ok) {
        raise_trap(TrapCause::kLoadFault, addr);
        return;
      }
      set_reg(rd, value);
      cycles_ += kCycLoad;
      break;
    }
    case kOpStore: {
      const u32 addr = a + static_cast<u32>(imm_s(insn));
      bool ok = false;
      switch (f3) {
        case 0: ok = mem_store(addr, 0, b); break;
        case 1: ok = mem_store(addr, 1, b); break;
        case 2: ok = mem_store(addr, 2, b); break;
        default:
          raise_trap(TrapCause::kIllegalInstruction, insn);
          return;
      }
      if (!ok) {
        raise_trap(TrapCause::kStoreFault, addr);
        return;
      }
      cycles_ += kCycStore;
      break;
    }
    case kOpImm: {
      const i32 imm = imm_i(insn);
      const u32 shamt = static_cast<u32>(imm) & 0x1F;
      u32 value = 0;
      switch (f3) {
        case 0: value = a + static_cast<u32>(imm); break;
        case 1: value = a << shamt; break;
        case 2: value = static_cast<i32>(a) < imm ? 1 : 0; break;
        case 3: value = a < static_cast<u32>(imm) ? 1 : 0; break;
        case 4: value = a ^ static_cast<u32>(imm); break;
        case 5:
          value = (static_cast<u32>(imm) & 0x400)
                      ? static_cast<u32>(static_cast<i32>(a) >>
                                         static_cast<i32>(shamt))
                      : a >> shamt;
          break;
        case 6: value = a | static_cast<u32>(imm); break;
        case 7: value = a & static_cast<u32>(imm); break;
      }
      set_reg(rd, value);
      cycles_ += kCycAlu;
      break;
    }
    case kOpReg: {
      u32 value = 0;
      u64 cost = kCycAlu;
      if (f7 == 1) {  // RV32M
        const i64 sa = static_cast<i32>(a), sb = static_cast<i32>(b);
        const u64 ua = a, ub = b;
        switch (f3) {
          case 0: value = a * b; cost = kCycMul; break;
          case 1: value = static_cast<u32>((sa * sb) >> 32); cost = kCycMul; break;
          case 2: value = static_cast<u32>((sa * static_cast<i64>(ub)) >> 32);
                  cost = kCycMul; break;
          case 3: value = static_cast<u32>((ua * ub) >> 32); cost = kCycMul; break;
          case 4:
            value = b == 0 ? ~0u
                    : (a == 0x80000000u && b == ~0u)
                        ? a
                        : static_cast<u32>(static_cast<i32>(a) /
                                           static_cast<i32>(b));
            cost = kCycDiv;
            break;
          case 5: value = b == 0 ? ~0u : a / b; cost = kCycDiv; break;
          case 6:
            value = b == 0 ? a
                    : (a == 0x80000000u && b == ~0u)
                        ? 0
                        : static_cast<u32>(static_cast<i32>(a) %
                                           static_cast<i32>(b));
            cost = kCycDiv;
            break;
          case 7: value = b == 0 ? a : a % b; cost = kCycDiv; break;
        }
      } else {
        switch (f3) {
          case 0: value = (f7 & 0x20) ? a - b : a + b; break;
          case 1: value = a << (b & 0x1F); break;
          case 2: value = static_cast<i32>(a) < static_cast<i32>(b) ? 1 : 0; break;
          case 3: value = a < b ? 1 : 0; break;
          case 4: value = a ^ b; break;
          case 5:
            value = (f7 & 0x20) ? static_cast<u32>(static_cast<i32>(a) >>
                                                   static_cast<i32>(b & 0x1F))
                                : a >> (b & 0x1F);
            break;
          case 6: value = a | b; break;
          case 7: value = a & b; break;
        }
      }
      set_reg(rd, value);
      cycles_ += cost;
      break;
    }
    case kOpPq: {
      // The PQ-ALU reports protocol violations (undefined funct3, bad
      // operand encodings, out-of-sequence unit use) as CheckError; at
      // the core boundary those become a custom machine trap rather than
      // a C++ exception escaping the guest.
      PqAlu::Result result;
      try {
        result = pq_.execute(f3, a, b);
      } catch (const CheckError&) {
        raise_trap(TrapCause::kPqUnit, insn);
        return;
      }
      set_reg(rd, result.rd_value);
      cycles_ += cost::kPqIssue + result.stall_cycles;
      break;
    }
    case kOpFence:
      cycles_ += kCycAlu;
      break;
    case kOpSystem: {
      if (f3 == 0) {
        // ecall / ebreak end the simulation (no OS model).
        halted_ = true;
        cycles_ += kCycAlu;
        break;
      }
      // Zicsr subset: read-only performance counters plus the machine
      // trap registers, enough for rdcycle/rdinstret-style
      // self-measurement and host trap inspection.
      if (f3 != 2 || rs1 != 0) {  // only csrrs rd, csr, x0 (csrr)
        raise_trap(TrapCause::kIllegalInstruction, insn);
        return;
      }
      const u32 csr = static_cast<u32>(imm_i(insn)) & 0xFFF;
      u32 value = 0;
      switch (csr) {
        case 0xC00: value = static_cast<u32>(cycles_); break;        // cycle
        case 0xC80: value = static_cast<u32>(cycles_ >> 32); break;  // cycleh
        case 0xC02: value = static_cast<u32>(instructions_); break;  // instret
        case 0xC82: value = static_cast<u32>(instructions_ >> 32); break;
        case 0x341: value = mepc_; break;                            // mepc
        case 0x342: value = static_cast<u32>(trap_cause_); break;    // mcause
        case 0x343: value = mtval_; break;                           // mtval
        default:
          raise_trap(TrapCause::kIllegalInstruction, insn);
          return;
      }
      set_reg(rd, value);
      cycles_ += kCycAlu;
      break;
    }
    default:
      raise_trap(TrapCause::kIllegalInstruction, insn);
      return;
  }
  pc_ = next_pc;
}

}  // namespace lacrv::rv
