#include "riscv/cpu.h"

#include "common/check.h"
#include "common/costs.h"
#include "riscv/compressed.h"
#include "riscv/encoding.h"

namespace lacrv::rv {
namespace {

// RISCY-like cycle costs (see common/costs.h layer 1).
constexpr u64 kCycAlu = 1;
constexpr u64 kCycLoad = 2;   // single-cycle memory + average load-use stall
constexpr u64 kCycStore = 1;
constexpr u64 kCycBranchTaken = 3;
constexpr u64 kCycBranchNotTaken = 1;
constexpr u64 kCycJump = 2;
constexpr u64 kCycMul = 1;
constexpr u64 kCycDiv = 35;

}  // namespace

Cpu::Cpu(std::size_t mem_bytes) : memory_(mem_bytes, 0) {}

void Cpu::load_words(u32 addr, std::span<const u32> words) {
  for (std::size_t i = 0; i < words.size(); ++i)
    write_word(addr + static_cast<u32>(4 * i), words[i]);
}

void Cpu::load_bytes(u32 addr, ByteView bytes) {
  for (std::size_t i = 0; i < bytes.size(); ++i)
    write_byte(addr + static_cast<u32>(i), bytes[i]);
}

void Cpu::set_reg(int index, u32 value) {
  LACRV_CHECK(index >= 0 && index < 32);
  if (index != 0) regs_[static_cast<std::size_t>(index)] = value;
}

u8 Cpu::read_byte(u32 addr) const {
  if (addr >= memory_.size()) {
    u32 value = 0;
    if (mmio_ && mmio_(addr, value, /*store=*/false))
      return static_cast<u8>(value);
    LACRV_CHECK_MSG(false, "load address out of range");
  }
  return memory_[addr];
}

u32 Cpu::read_word(u32 addr) const {
  if (addr + 3 >= memory_.size() || addr + 3 < addr) {
    u32 value = 0;
    if (mmio_ && mmio_(addr, value, /*store=*/false)) return value;
    LACRV_CHECK_MSG(false, "load address out of range");
  }
  return load_le32(&memory_[addr]);
}

void Cpu::write_byte(u32 addr, u8 value) {
  if (addr >= memory_.size()) {
    u32 v = value;
    if (mmio_ && mmio_(addr, v, /*store=*/true)) return;
    LACRV_CHECK_MSG(false, "store address out of range");
  }
  memory_[addr] = value;
}

void Cpu::write_word(u32 addr, u32 value) {
  if (addr + 3 >= memory_.size() || addr + 3 < addr) {
    u32 v = value;
    if (mmio_ && mmio_(addr, v, /*store=*/true)) return;
    LACRV_CHECK_MSG(false, "store address out of range");
  }
  store_le32(&memory_[addr], value);
}

void Cpu::step() {
  LACRV_CHECK_MSG(!halted_, "step() after halt");
  // RV32IMC: 16-bit parcels whose low bits are not 0b11 are compressed
  // and expand to their 32-bit equivalent (pc advances by 2).
  const u32 low = read_byte(pc_) | static_cast<u32>(read_byte(pc_ + 1)) << 8;
  if (is_compressed(low)) {
    exec(expand_compressed(static_cast<u16>(low)), 2);
  } else {
    exec(read_word(pc_), 4);
  }
  ++instructions_;
}

u64 Cpu::run(u64 max_steps) {
  u64 steps = 0;
  while (!halted_ && steps < max_steps) {
    step();
    ++steps;
  }
  return steps;
}

void Cpu::exec(u32 insn, u32 ilen) {
  const u32 op = get_opcode(insn);
  const int rd = static_cast<int>(get_rd(insn));
  const int rs1 = static_cast<int>(get_rs1(insn));
  const int rs2 = static_cast<int>(get_rs2(insn));
  const u32 f3 = get_funct3(insn);
  const u32 f7 = get_funct7(insn);
  const u32 a = reg(rs1);
  const u32 b = reg(rs2);
  u32 next_pc = pc_ + ilen;

  switch (op) {
    case kOpLui:
      set_reg(rd, static_cast<u32>(imm_u(insn)));
      cycles_ += kCycAlu;
      break;
    case kOpAuipc:
      set_reg(rd, pc_ + static_cast<u32>(imm_u(insn)));
      cycles_ += kCycAlu;
      break;
    case kOpJal:
      set_reg(rd, pc_ + ilen);
      next_pc = pc_ + static_cast<u32>(imm_j(insn));
      cycles_ += kCycJump;
      break;
    case kOpJalr:
      set_reg(rd, pc_ + ilen);
      next_pc = (a + static_cast<u32>(imm_i(insn))) & ~1u;
      cycles_ += kCycJump;
      break;
    case kOpBranch: {
      bool taken = false;
      switch (f3) {
        case 0: taken = a == b; break;
        case 1: taken = a != b; break;
        case 4: taken = static_cast<i32>(a) < static_cast<i32>(b); break;
        case 5: taken = static_cast<i32>(a) >= static_cast<i32>(b); break;
        case 6: taken = a < b; break;
        case 7: taken = a >= b; break;
        default:
          LACRV_CHECK_MSG(false, "illegal branch funct3");
      }
      if (taken) next_pc = pc_ + static_cast<u32>(imm_b(insn));
      cycles_ += taken ? kCycBranchTaken : kCycBranchNotTaken;
      break;
    }
    case kOpLoad: {
      const u32 addr = a + static_cast<u32>(imm_i(insn));
      u32 value = 0;
      switch (f3) {
        case 0: value = static_cast<u32>(static_cast<i32>(
                    static_cast<i8>(read_byte(addr)))); break;
        case 1: value = static_cast<u32>(static_cast<i32>(static_cast<i16>(
                    read_byte(addr) | read_byte(addr + 1) << 8))); break;
        case 2: value = read_word(addr); break;
        case 4: value = read_byte(addr); break;
        case 5: value = static_cast<u32>(read_byte(addr) |
                                         read_byte(addr + 1) << 8); break;
        default:
          LACRV_CHECK_MSG(false, "illegal load funct3");
      }
      set_reg(rd, value);
      cycles_ += kCycLoad;
      break;
    }
    case kOpStore: {
      const u32 addr = a + static_cast<u32>(imm_s(insn));
      switch (f3) {
        case 0: write_byte(addr, static_cast<u8>(b)); break;
        case 1:
          write_byte(addr, static_cast<u8>(b));
          write_byte(addr + 1, static_cast<u8>(b >> 8));
          break;
        case 2: write_word(addr, b); break;
        default:
          LACRV_CHECK_MSG(false, "illegal store funct3");
      }
      cycles_ += kCycStore;
      break;
    }
    case kOpImm: {
      const i32 imm = imm_i(insn);
      const u32 shamt = static_cast<u32>(imm) & 0x1F;
      u32 value = 0;
      switch (f3) {
        case 0: value = a + static_cast<u32>(imm); break;
        case 1: value = a << shamt; break;
        case 2: value = static_cast<i32>(a) < imm ? 1 : 0; break;
        case 3: value = a < static_cast<u32>(imm) ? 1 : 0; break;
        case 4: value = a ^ static_cast<u32>(imm); break;
        case 5:
          value = (static_cast<u32>(imm) & 0x400)
                      ? static_cast<u32>(static_cast<i32>(a) >>
                                         static_cast<i32>(shamt))
                      : a >> shamt;
          break;
        case 6: value = a | static_cast<u32>(imm); break;
        case 7: value = a & static_cast<u32>(imm); break;
      }
      set_reg(rd, value);
      cycles_ += kCycAlu;
      break;
    }
    case kOpReg: {
      u32 value = 0;
      u64 cost = kCycAlu;
      if (f7 == 1) {  // RV32M
        const i64 sa = static_cast<i32>(a), sb = static_cast<i32>(b);
        const u64 ua = a, ub = b;
        switch (f3) {
          case 0: value = a * b; cost = kCycMul; break;
          case 1: value = static_cast<u32>((sa * sb) >> 32); cost = kCycMul; break;
          case 2: value = static_cast<u32>((sa * static_cast<i64>(ub)) >> 32);
                  cost = kCycMul; break;
          case 3: value = static_cast<u32>((ua * ub) >> 32); cost = kCycMul; break;
          case 4:
            value = b == 0 ? ~0u
                    : (a == 0x80000000u && b == ~0u)
                        ? a
                        : static_cast<u32>(static_cast<i32>(a) /
                                           static_cast<i32>(b));
            cost = kCycDiv;
            break;
          case 5: value = b == 0 ? ~0u : a / b; cost = kCycDiv; break;
          case 6:
            value = b == 0 ? a
                    : (a == 0x80000000u && b == ~0u)
                        ? 0
                        : static_cast<u32>(static_cast<i32>(a) %
                                           static_cast<i32>(b));
            cost = kCycDiv;
            break;
          case 7: value = b == 0 ? a : a % b; cost = kCycDiv; break;
        }
      } else {
        switch (f3) {
          case 0: value = (f7 & 0x20) ? a - b : a + b; break;
          case 1: value = a << (b & 0x1F); break;
          case 2: value = static_cast<i32>(a) < static_cast<i32>(b) ? 1 : 0; break;
          case 3: value = a < b ? 1 : 0; break;
          case 4: value = a ^ b; break;
          case 5:
            value = (f7 & 0x20) ? static_cast<u32>(static_cast<i32>(a) >>
                                                   static_cast<i32>(b & 0x1F))
                                : a >> (b & 0x1F);
            break;
          case 6: value = a | b; break;
          case 7: value = a & b; break;
        }
      }
      set_reg(rd, value);
      cycles_ += cost;
      break;
    }
    case kOpPq: {
      const PqAlu::Result result = pq_.execute(f3, a, b);
      set_reg(rd, result.rd_value);
      cycles_ += cost::kPqIssue + result.stall_cycles;
      break;
    }
    case kOpFence:
      cycles_ += kCycAlu;
      break;
    case kOpSystem: {
      if (f3 == 0) {
        // ecall / ebreak end the simulation (no OS model).
        halted_ = true;
        cycles_ += kCycAlu;
        break;
      }
      // Zicsr subset: read-only performance counters, enough for
      // rdcycle/rdinstret-style self-measurement (how the paper's
      // numbers were taken on the FPGA).
      LACRV_CHECK_MSG(f3 == 2 && rs1 == 0,
                      "only csrrs rd, csr, x0 (csrr) is supported");
      const u32 csr = static_cast<u32>(imm_i(insn)) & 0xFFF;
      u32 value = 0;
      switch (csr) {
        case 0xC00: value = static_cast<u32>(cycles_); break;        // cycle
        case 0xC80: value = static_cast<u32>(cycles_ >> 32); break;  // cycleh
        case 0xC02: value = static_cast<u32>(instructions_); break;  // instret
        case 0xC82: value = static_cast<u32>(instructions_ >> 32); break;
        default:
          LACRV_CHECK_MSG(false, "unimplemented CSR " + std::to_string(csr));
      }
      set_reg(rd, value);
      cycles_ += kCycAlu;
      break;
    }
    default:
      LACRV_CHECK_MSG(false, "illegal opcode " + std::to_string(op) +
                                 " at pc " + std::to_string(pc_));
  }
  pc_ = next_pc;
}

}  // namespace lacrv::rv
