// ISS hot-spot profiler: per-PC and per-opcode-class attribution of
// retired cycles.
//
// Attach an IssProfiler to a Cpu and every retired instruction is
// charged to (a) its PC — later coalesced into contiguous hot ranges, a
// poor man's loop detector that works because the kernels are straight
// loops — and (b) its opcode class, splitting base-ISA work from the
// four pq.* custom instructions. The class split reproduces Table II's
// accelerator-vs-software story automatically: for an accelerated
// kernel the pq.* share is the accelerator time (issue + stall cycles),
// everything else is the software packing/control the paper's Sec. V
// accounts to the CPU.
//
// Cost: one branch per retired instruction when detached; one hash-map
// update when attached. The profiler is not thread-safe — use one per
// Cpu (the Cpu itself is single-threaded).
#pragma once

#include <array>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace lacrv::rv {

/// Opcode classes for cycle attribution. The four pq.* entries mirror
/// the funct3 assignment of encoding.h.
enum class OpClass : u8 {
  kAlu = 0,     // lui/auipc/op-imm/op (non-M), fence
  kMulDiv,      // RV32M
  kLoad,
  kStore,
  kBranch,
  kJump,        // jal/jalr
  kSystem,      // ecall/ebreak/csr
  kPqMulTer,
  kPqMulChien,
  kPqSha256,
  kPqModq,
  kCount,
};

const char* op_class_name(OpClass c);
OpClass classify_insn(u32 insn);
inline bool is_pq_class(OpClass c) {
  return c >= OpClass::kPqMulTer && c <= OpClass::kPqModq;
}

class IssProfiler {
 public:
  /// Called by the Cpu for every retired instruction with the cycles it
  /// consumed (including accelerator stall cycles for pq.* issues).
  void on_retire(u32 pc, u32 insn, u64 cycles);

  u64 total_cycles() const { return total_cycles_; }
  u64 total_instructions() const { return total_instructions_; }
  u64 class_cycles(OpClass c) const {
    return class_cycles_[static_cast<std::size_t>(c)];
  }
  u64 class_instructions(OpClass c) const {
    return class_instructions_[static_cast<std::size_t>(c)];
  }
  /// Cycles retired by the four pq.* instructions (the accelerator
  /// share: issue + stalls while a unit computes).
  u64 pq_cycles() const;
  /// Cycles retired by base-ISA instructions (the software share).
  u64 base_cycles() const { return total_cycles_ - pq_cycles(); }

  /// A contiguous run of executed PCs (gaps of at most `max_gap_bytes`
  /// between neighbouring sampled PCs), ranked by cycles.
  struct HotRange {
    u32 first_pc = 0;
    u32 last_pc = 0;   // inclusive
    u64 cycles = 0;
    u64 instructions = 0;
    u32 top_pc = 0;    // hottest single PC in the range
    u64 top_cycles = 0;
    u32 top_insn = 0;  // instruction bits at top_pc (for disassembly)
  };
  std::vector<HotRange> hot_ranges(u32 max_gap_bytes = 4) const;

  /// Ranked hot-loop report: cycle totals, the pq-vs-base split, the
  /// per-class table, and the top `top_n` hot ranges with the hottest
  /// instruction of each disassembled.
  void report(std::ostream& os, std::size_t top_n = 8) const;

  void reset();

 private:
  struct PcStat {
    u64 cycles = 0;
    u64 count = 0;
    u32 insn = 0;
  };
  std::unordered_map<u32, PcStat> pcs_;
  std::array<u64, static_cast<std::size_t>(OpClass::kCount)> class_cycles_{};
  std::array<u64, static_cast<std::size_t>(OpClass::kCount)>
      class_instructions_{};
  u64 total_cycles_ = 0;
  u64 total_instructions_ = 0;
};

}  // namespace lacrv::rv
