// A small two-pass RV32IMC assembler for the ISS.
//
// Supports: all RV32I computational/memory/control instructions used by
// the kernels, the M extension, the pq.* custom instructions, labels,
// `.word`/`.byte` data, and the pseudo-instructions nop / mv / li / la /
// j / ret / not / neg / rdcycle / rdinstret / csrr, and the compressed
// c.* mnemonics (emitted as 16-bit parcels). `li`/`la` always expand to lui+addi so label
// addresses are stable across passes. Comments start with '#' or ';'.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace lacrv::rv {

struct Program {
  /// Encoded words (instructions and data), loaded at `base`. The image
  /// is zero-padded to a word multiple (relevant with c.* mnemonics).
  std::vector<u32> words;
  /// Exact byte image (no padding).
  Bytes image;
  u32 base = 0;
  std::map<std::string, u32> labels;

  u32 label(const std::string& name) const;
};

/// Assemble source text; throws CheckError with a line-numbered message
/// on syntax errors or unknown mnemonics/labels.
Program assemble(const std::string& source, u32 base = 0);

}  // namespace lacrv::rv
