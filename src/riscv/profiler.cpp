#include "riscv/profiler.h"

#include <algorithm>
#include <iomanip>

#include "riscv/encoding.h"

namespace lacrv::rv {

const char* op_class_name(OpClass c) {
  switch (c) {
    case OpClass::kAlu: return "alu";
    case OpClass::kMulDiv: return "mul/div";
    case OpClass::kLoad: return "load";
    case OpClass::kStore: return "store";
    case OpClass::kBranch: return "branch";
    case OpClass::kJump: return "jump";
    case OpClass::kSystem: return "system";
    case OpClass::kPqMulTer: return "pq.mul_ter";
    case OpClass::kPqMulChien: return "pq.mul_chien";
    case OpClass::kPqSha256: return "pq.sha256";
    case OpClass::kPqModq: return "pq.modq";
    case OpClass::kCount: break;
  }
  return "?";
}

OpClass classify_insn(u32 insn) {
  switch (get_opcode(insn)) {
    case kOpLoad: return OpClass::kLoad;
    case kOpStore: return OpClass::kStore;
    case kOpBranch: return OpClass::kBranch;
    case kOpJal:
    case kOpJalr: return OpClass::kJump;
    case kOpSystem: return OpClass::kSystem;
    case kOpReg:
      if (get_funct7(insn) == 1) return OpClass::kMulDiv;
      return OpClass::kAlu;
    case kOpPq:
      switch (get_funct3(insn)) {
        case pq::kFunct3MulTer: return OpClass::kPqMulTer;
        case pq::kFunct3MulChien: return OpClass::kPqMulChien;
        case pq::kFunct3Sha256: return OpClass::kPqSha256;
        default: return OpClass::kPqModq;
      }
    default: return OpClass::kAlu;  // lui/auipc/op-imm/fence
  }
}

void IssProfiler::on_retire(u32 pc, u32 insn, u64 cycles) {
  PcStat& stat = pcs_[pc];
  stat.cycles += cycles;
  ++stat.count;
  stat.insn = insn;
  const auto c = static_cast<std::size_t>(classify_insn(insn));
  class_cycles_[c] += cycles;
  ++class_instructions_[c];
  total_cycles_ += cycles;
  ++total_instructions_;
}

u64 IssProfiler::pq_cycles() const {
  u64 sum = 0;
  for (std::size_t c = static_cast<std::size_t>(OpClass::kPqMulTer);
       c <= static_cast<std::size_t>(OpClass::kPqModq); ++c)
    sum += class_cycles_[c];
  return sum;
}

std::vector<IssProfiler::HotRange> IssProfiler::hot_ranges(
    u32 max_gap_bytes) const {
  std::vector<u32> pcs;
  pcs.reserve(pcs_.size());
  for (const auto& [pc, stat] : pcs_) pcs.push_back(pc);
  std::sort(pcs.begin(), pcs.end());

  std::vector<HotRange> ranges;
  for (std::size_t i = 0; i < pcs.size(); ++i) {
    const PcStat& stat = pcs_.at(pcs[i]);
    if (ranges.empty() || pcs[i] - ranges.back().last_pc > max_gap_bytes) {
      HotRange r;
      r.first_pc = r.last_pc = r.top_pc = pcs[i];
      ranges.push_back(r);
    }
    HotRange& r = ranges.back();
    r.last_pc = pcs[i];
    r.cycles += stat.cycles;
    r.instructions += stat.count;
    if (stat.cycles > r.top_cycles) {
      r.top_cycles = stat.cycles;
      r.top_pc = pcs[i];
      r.top_insn = stat.insn;
    }
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const HotRange& a, const HotRange& b) {
              return a.cycles > b.cycles;
            });
  return ranges;
}

void IssProfiler::report(std::ostream& os, std::size_t top_n) const {
  const auto pct = [this](u64 cycles) {
    return total_cycles_ == 0
               ? 0.0
               : 100.0 * static_cast<double>(cycles) /
                     static_cast<double>(total_cycles_);
  };

  os << "ISS hot-spot profile: " << total_instructions_
     << " instructions retired, " << total_cycles_ << " cycles\n";
  os << std::fixed << std::setprecision(1);
  os << "cycle split: pq.* " << pq_cycles() << " (" << pct(pq_cycles())
     << "%) | base ISA " << base_cycles() << " (" << pct(base_cycles())
     << "%)\n\nper-class breakdown:\n";
  for (std::size_t c = 0; c < static_cast<std::size_t>(OpClass::kCount);
       ++c) {
    if (class_instructions_[c] == 0) continue;
    os << "  " << std::setw(12) << std::left
       << op_class_name(static_cast<OpClass>(c)) << std::right
       << std::setw(12) << class_cycles_[c] << " cycles  (" << std::setw(5)
       << pct(class_cycles_[c]) << "%)  " << class_instructions_[c]
       << " insns\n";
  }

  const std::vector<HotRange> ranges = hot_ranges();
  os << "\nhot ranges (top " << std::min(top_n, ranges.size()) << " of "
     << ranges.size() << "):\n";
  for (std::size_t i = 0; i < ranges.size() && i < top_n; ++i) {
    const HotRange& r = ranges[i];
    os << "  #" << i + 1 << " [0x" << std::hex << r.first_pc << ", 0x"
       << r.last_pc << "]" << std::dec << "  " << r.cycles << " cycles ("
       << pct(r.cycles) << "%), " << r.instructions
       << " insns\n      hottest: 0x" << std::hex << r.top_pc << std::dec
       << "  " << disassemble(r.top_insn) << "  (" << r.top_cycles
       << " cycles)\n";
  }
}

void IssProfiler::reset() {
  pcs_.clear();
  class_cycles_.fill(0);
  class_instructions_.fill(0);
  total_cycles_ = 0;
  total_instructions_ = 0;
}

}  // namespace lacrv::rv
