// Small statistics helpers for the leakage-assessment tests (the
// Welch t-test methodology of the TVLA-style evaluation Walters & Roy
// [15] ran on their constant-time decoder), the noise-profile
// experiment, and the service layer's latency accounting.
#pragma once

#include <array>
#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace lacrv::stats {

inline double mean(const std::vector<double>& xs) {
  LACRV_CHECK(!xs.empty());
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

/// Unbiased sample variance.
inline double variance(const std::vector<double>& xs) {
  LACRV_CHECK(xs.size() >= 2);
  const double m = mean(xs);
  double sum = 0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size() - 1);
}

/// Welch's t-statistic between two samples. |t| > 4.5 is the customary
/// TVLA threshold for "leaks".
inline double welch_t(const std::vector<double>& a,
                      const std::vector<double>& b) {
  const double va = variance(a) / static_cast<double>(a.size());
  const double vb = variance(b) / static_cast<double>(b.size());
  const double denom = std::sqrt(va + vb);
  if (denom == 0.0) return 0.0;  // identical constant traces: no leak
  return (mean(a) - mean(b)) / denom;
}

inline constexpr double kTvlaThreshold = 4.5;

/// Lock-free log2-bucketed histogram for per-operation latencies
/// (micros) in the concurrent KEM service. Bucket i counts samples in
/// [2^i, 2^(i+1)); percentile() reports the upper bound of the bucket
/// the requested rank lands in, which is the right fidelity for "p99
/// under 2ms"-style service objectives.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 40;

  void record(u64 micros) {
    int b = 0;
    while ((u64{1} << (b + 1)) <= micros && b + 1 < kBuckets - 1) ++b;
    if (micros == 0) b = 0;
    buckets_[static_cast<std::size_t>(b)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(micros, std::memory_order_relaxed);
  }

  u64 count() const { return count_.load(std::memory_order_relaxed); }
  u64 sum_micros() const { return sum_.load(std::memory_order_relaxed); }

  /// Samples in bucket b, i.e. latencies in [2^b, 2^(b+1)) micros
  /// (bucket 0 additionally holds 0- and 1-micro samples; the last
  /// bucket holds everything from 2^(kBuckets-1) up).
  u64 bucket(int b) const {
    return buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
  }
  /// Upper bound of bucket b in micros (the Prometheus `le` edge).
  static constexpr u64 bucket_upper_micros(int b) {
    return u64{1} << (b + 1);
  }

  double mean_micros() const {
    const u64 n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }

  /// Upper bound of the bucket holding the p-th percentile sample
  /// (0 < p <= 100). Returns 0 on an empty histogram.
  u64 percentile_micros(double p) const {
    const u64 n = count();
    if (n == 0) return 0;
    const u64 rank = static_cast<u64>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    u64 seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += buckets_[static_cast<std::size_t>(b)].load(
          std::memory_order_relaxed);
      if (seen >= rank) return u64{1} << (b + 1);
    }
    return u64{1} << kBuckets;
  }

  std::string to_string() const {
    std::ostringstream os;
    os << count() << " samples | mean " << static_cast<u64>(mean_micros())
       << "us | p50 " << percentile_micros(50) << "us | p99 "
       << percentile_micros(99) << "us";
    return os.str();
  }

 private:
  std::array<std::atomic<u64>, kBuckets> buckets_{};
  std::atomic<u64> count_{0};
  std::atomic<u64> sum_{0};
};

}  // namespace lacrv::stats
