// Small statistics helpers for the leakage-assessment tests (the
// Welch t-test methodology of the TVLA-style evaluation Walters & Roy
// [15] ran on their constant-time decoder) and for the noise-profile
// experiment.
#pragma once

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace lacrv::stats {

inline double mean(const std::vector<double>& xs) {
  LACRV_CHECK(!xs.empty());
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

/// Unbiased sample variance.
inline double variance(const std::vector<double>& xs) {
  LACRV_CHECK(xs.size() >= 2);
  const double m = mean(xs);
  double sum = 0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size() - 1);
}

/// Welch's t-statistic between two samples. |t| > 4.5 is the customary
/// TVLA threshold for "leaks".
inline double welch_t(const std::vector<double>& a,
                      const std::vector<double>& b) {
  const double va = variance(a) / static_cast<double>(a.size());
  const double vb = variance(b) / static_cast<double>(b.size());
  const double denom = std::sqrt(va + vb);
  if (denom == 0.0) return 0.0;  // identical constant traces: no leak
  return (mean(a) - mean(b)) / denom;
}

inline constexpr double kTvlaThreshold = 4.5;

}  // namespace lacrv::stats
