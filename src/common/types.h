// Basic fixed-width aliases and byte/word helpers shared by every module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace lacrv {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

using Bytes = std::vector<u8>;
using ByteView = std::span<const u8>;

/// Load a 32-bit little-endian word from p.
constexpr u32 load_le32(const u8* p) {
  return static_cast<u32>(p[0]) | static_cast<u32>(p[1]) << 8 |
         static_cast<u32>(p[2]) << 16 | static_cast<u32>(p[3]) << 24;
}

/// Store a 32-bit word to p in little-endian order.
constexpr void store_le32(u8* p, u32 v) {
  p[0] = static_cast<u8>(v);
  p[1] = static_cast<u8>(v >> 8);
  p[2] = static_cast<u8>(v >> 16);
  p[3] = static_cast<u8>(v >> 24);
}

/// Load a 32-bit big-endian word from p (SHA-256 uses big-endian words).
constexpr u32 load_be32(const u8* p) {
  return static_cast<u32>(p[0]) << 24 | static_cast<u32>(p[1]) << 16 |
         static_cast<u32>(p[2]) << 8 | static_cast<u32>(p[3]);
}

/// Store a 32-bit word to p in big-endian order.
constexpr void store_be32(u8* p, u32 v) {
  p[0] = static_cast<u8>(v >> 24);
  p[1] = static_cast<u8>(v >> 16);
  p[2] = static_cast<u8>(v >> 8);
  p[3] = static_cast<u8>(v);
}

/// Hex-encode a byte range (lowercase, two chars per byte).
std::string to_hex(ByteView data);

/// Decode a hex string; throws std::invalid_argument on malformed input.
Bytes from_hex(const std::string& hex);

/// Constant-time byte-range comparison: returns true iff equal.
/// Used by the KEM re-encryption check (FO transform) to avoid a timing
/// oracle on the first differing byte.
bool ct_equal(ByteView a, ByteView b);

}  // namespace lacrv
