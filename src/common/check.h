// Precondition / invariant checking. LACRV_CHECK is used on public API
// boundaries (always on); LACRV_DCHECK marks internal invariants that are
// cheap enough to keep enabled in all build types of this project.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace lacrv {

/// Error thrown when an API precondition or internal invariant is violated.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace lacrv

#define LACRV_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr))                                                       \
      ::lacrv::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define LACRV_CHECK_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr))                                                       \
      ::lacrv::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#define LACRV_DCHECK(expr) LACRV_CHECK(expr)
