// Deterministic, seedable RNG for tests, benches and key generation demos.
// xoshiro256** — fast, well-distributed, and reproducible across platforms.
// NOT a CSPRNG; the cryptographic randomness in the library itself always
// flows through the SHA-256 PRG (hash/prg.h), as in LAC.
#pragma once

#include <array>

#include "common/types.h"

namespace lacrv {

class Xoshiro256 {
 public:
  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64,
  /// as recommended by the xoshiro authors.
  explicit Xoshiro256(u64 seed = 0x9e3779b97f4a7c15ULL);

  u64 next_u64();
  u32 next_u32() { return static_cast<u32>(next_u64() >> 32); }
  /// Uniform value in [0, bound) without modulo bias (rejection).
  u64 next_below(u64 bound);
  /// Fill a byte range with pseudo-random bytes.
  void fill(u8* out, std::size_t len);
  Bytes bytes(std::size_t len);

 private:
  std::array<u64, 4> s_{};
};

}  // namespace lacrv
