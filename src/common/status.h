// Typed error codes for the hardened public API. The robustness layer
// (docs/robustness.md) routes every recoverable failure — tampered
// ciphertexts, BCH decode failure beyond t, accelerator self-test
// mismatches — through these codes instead of exceptions, so a faulted
// accelerator degrades the stack gracefully rather than aborting it.
// CheckError remains reserved for caller bugs (violated preconditions).
#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace lacrv {

enum class Status {
  kOk = 0,
  /// FO re-encryption mismatch in decapsulation: the implicit-rejection
  /// key was returned. Diagnostic only — callers that expose this bit to
  /// the network re-open the CCA oracle implicit rejection closes.
  kRejected,
  /// BCH decoding failed (error locator degree beyond capacity t).
  kDecodeFailure,
  /// An accelerator failed its known-answer self-test and the operation
  /// fell back to (or must be retried on) the software path.
  kSelfTestFailure,
  /// A caller-supplied buffer/argument was null or malformed.
  kBadArgument,
  /// An unexpected internal invariant failure was contained at the API
  /// boundary instead of propagating as an exception.
  kInternalError,
  /// The service's bounded submission queue was full — backpressure, not
  /// failure: the request was never executed and may be resubmitted.
  kOverloaded,
  /// The request's deadline expired before (or between) execution
  /// attempts; the work was shed without completing.
  kDeadlineExceeded,
  /// The service (or an accelerator unit) is not currently serving:
  /// shutdown drained the request, or a circuit breaker is open.
  kUnavailable,
  /// Shadow verification re-executed the operation on the golden
  /// software models and the results diverged bit-for-bit: an
  /// accelerator silently corrupted a live answer (a fault the gating
  /// KATs could not see). The slot is quarantined; whether the caller
  /// sees this status or a golden-corrected answer is policy
  /// (verify::VerifyConfig::serve_golden_on_mismatch).
  kIntegrity,
};

const char* status_name(Status s);

/// Minimal result wrapper: a Status plus a value that is meaningful iff
/// ok(). Kept deliberately small — no exception machinery, trivially
/// usable from the NIST-style flat API.
template <typename T>
struct Result {
  Status status = Status::kOk;
  T value{};

  bool ok() const { return status == Status::kOk; }

  static Result success(T v) { return {Status::kOk, std::move(v)}; }
  static Result failure(Status s) { return {s, T{}}; }
};

/// Record of accelerator units that failed their construction-time KAT
/// self-test and were replaced by the software fallback (the degradation
/// ladder optimized -> reference of docs/robustness.md).
struct DegradeReport {
  struct Entry {
    const char* unit;     // "mul_ter", "chien", "sha256", ...
    Status status;        // why the unit was benched
    std::string detail;   // human-readable diagnosis
  };
  std::vector<Entry> entries;

  bool degraded() const { return !entries.empty(); }
  void add(const char* unit, Status status, std::string detail) {
    entries.push_back({unit, status, std::move(detail)});
  }
  std::string to_string() const;
};

inline const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kRejected: return "rejected";
    case Status::kDecodeFailure: return "decode-failure";
    case Status::kSelfTestFailure: return "self-test-failure";
    case Status::kBadArgument: return "bad-argument";
    case Status::kInternalError: return "internal-error";
    case Status::kOverloaded: return "overloaded";
    case Status::kDeadlineExceeded: return "deadline-exceeded";
    case Status::kUnavailable: return "unavailable";
    case Status::kIntegrity: return "integrity";
  }
  return "unknown";
}

/// Uniform status line for the CLI surfaces (keytool, playground,
/// kem_server): `[component] status-name: detail`. Keeping every binary
/// on one formatter means operators can grep one pattern across logs.
inline void print_status(std::ostream& os, const char* component, Status s,
                         const std::string& detail = {}) {
  os << "[" << component << "] " << status_name(s);
  if (!detail.empty()) os << ": " << detail;
  os << "\n";
}

inline std::string DegradeReport::to_string() const {
  if (entries.empty()) return "all accelerator self-tests passed";
  std::string out;
  for (const Entry& e : entries) {
    if (!out.empty()) out += "; ";
    out += e.unit;
    out += ": ";
    out += status_name(e.status);
    if (!e.detail.empty()) {
      out += " (";
      out += e.detail;
      out += ")";
    }
  }
  return out;
}

}  // namespace lacrv
