// RISCY (PULPino RI5CY, 4-stage in-order RV32IMC) cycle-cost model.
//
// Two layers of constants live here:
//
//  1. Architectural per-instruction costs (kAlu, kLoad, ...) taken from the
//     RI5CY pipeline: single-cycle ALU/mul, single-cycle data memory with a
//     load-use stall, 2-3 cycle control transfers, 35-cycle serial divider.
//
//  2. Composite per-step costs for the inner loops of the LAC software
//     kernels (kRefMultInnerStep, kSubSyndromeStep, ...). Each composite is
//     a documented sum of layer-1 costs describing the instruction sequence
//     a compiled RV32 inner loop executes. They are *calibrated*: where the
//     paper's Tables I/II pin a kernel's total cycle count, the composite
//     was cross-checked against (paper cycles) / (iteration count) and the
//     instruction-sequence assumption adjusted to match the reported
//     magnitude. EXPERIMENTS.md records the residual paper-vs-model error
//     per table cell.
//
// All timing-annotated code paths (src/poly, src/bch, src/lac, src/perf)
// charge exclusively through these constants, so the model is auditable in
// one place.
#pragma once

#include "common/types.h"

namespace lacrv::cost {

// ---- Layer 1: RISCY per-instruction costs -------------------------------
inline constexpr u64 kAlu = 1;          // add/sub/xor/shift/slt/...
inline constexpr u64 kMul = 1;          // single-cycle multiplier
inline constexpr u64 kDiv = 35;         // serial divider (div/rem)
inline constexpr u64 kLoad = 1;         // data memory hit
inline constexpr u64 kLoadUse = 2;      // load followed by dependent use
inline constexpr u64 kStore = 1;
inline constexpr u64 kBranchTaken = 3;  // flush penalty
inline constexpr u64 kBranchNotTaken = 1;
inline constexpr u64 kJump = 2;
inline constexpr u64 kCall = 4;         // jal + prologue share
inline constexpr u64 kRet = 4;          // epilogue share + jr
inline constexpr u64 kPqIssue = 1;      // custom 0x77 instruction issue

// ---- Layer 2: composite kernel step costs --------------------------------

// Reference (round-2 C code) dense ternary polynomial multiplication:
// the inner loop touches every (i, j) pair once — load b-coefficient,
// load/accumulate c, ternary-switch add/sub with wrap correction, store,
// index update, loop branch.  Table II pins n=512 -> 2,381,843 and
// n=1024 -> 9,482,261, i.e. ~9.07 cycles per (i, j) pair.
inline constexpr u64 kRefMultInnerStep = 9;
// Per-row (outer loop) overhead of the same kernel.
inline constexpr u64 kRefMultOuterStep = 12;

// Reference BCH, submission flavour (variable time, log/alog tables).
// Table I: syndromes 61,994 cycles / (400 bits x 32 syndromes) ≈ 4.8.
inline constexpr u64 kSubSyndromeStep = 5;
// BM early-exit scan when all syndromes are zero: 158 cycles / 32 ≈ 5.
inline constexpr u64 kSubBmZeroScanStep = 5;
// BM per (iteration x active-term) work with table multiplies:
// 10,172 / (32 x 16) ≈ 20.
inline constexpr u64 kSubBmTermStep = 20;
inline constexpr u64 kSubBmIterOverhead = 30;
// Chien with table multiplies: 107,431 / (257 x 17) ≈ 24.6.
inline constexpr u64 kSubChienTermStep = 24;
inline constexpr u64 kSubChienPointOverhead = 10;
inline constexpr u64 kSubChienRootExtra = 16;  // bit flip on a found root

// Constant-time BCH (Walters/Roy style): shift-and-add GF multiplication
// in software costs ~9 unrolled steps of ~3.5 instructions.
// Syndromes 89,335 / (400 x 32) ≈ 7.
inline constexpr u64 kCtSyndromeStep = 7;
// CT-BM: fixed 2t iterations over t+1 terms, two multiplies per term:
// 33,810 / 32 ≈ 1057 per iteration for t=16 -> ≈ 62 per term-pair + fixed.
inline constexpr u64 kCtBmTermStep = 62;
inline constexpr u64 kCtBmIterOverhead = 3;
// Walters' decoder differs "in a few clock cycles" with the data; model
// the masked-inversion residue as a tiny per-nonzero-discrepancy charge.
inline constexpr u64 kCtBmDiscrepancyResidue = 2;
// CT Chien in software: 380,546 / (257 x 17) ≈ 87 per term.
inline constexpr u64 kCtChienTermStep = 87;
inline constexpr u64 kCtChienPointOverhead = 7;

// BCH encoder (systematic LFSR division), per message-bit step over the
// parity register; cheap and identical in all flavours.
inline constexpr u64 kBchEncodeBitStep = 8;

// SHA-256 per-32-byte-PRG-block system cost, including the buffer and
// state management around the compression function. Table II's GenA rows
// pin the *difference* between the software and the pq.sha256 path to a
// mere ~256 cycles/block (LAC-128: 159,097 ref vs 154,746 opt over ~17
// blocks) — the paper itself notes the byte-wise accelerator interface
// makes the SHA-256 unit a weak accelerator. The absolute split below
// reproduces both rows; the glue around the hash dominates either way.
inline constexpr u64 kSwSha256Block = 1180;
inline constexpr u64 kHwSha256Block = 920;
// Tightly-coupled Keccak core (the future-work variant): 24-cycle
// permutation + start, 42 word transfers per 168-byte rate block.
inline constexpr u64 kHwKeccakBlock = 25 + 42 * 3;
// Software Keccak-f[1600] on RV32 is slow (~64-bit lane ops emulated);
// a portable C implementation runs ~10-14k cycles per permutation.
inline constexpr u64 kSwKeccakBlock = 12000;

// Accelerator-level detail (used by the RTL/ISS layer): byte-wise loads
// and a round-per-cycle core.
inline constexpr u64 kHwSha256LoadByte = kLoad + kPqIssue + kAlu;  // lbu+pq+addr
inline constexpr u64 kHwSha256Compress = 65;
inline constexpr u64 kHwSha256ReadWord = kPqIssue + kStore + kAlu;

// GenA rejection-sampling glue per produced coefficient (PRG buffer fetch,
// compare against q, store, index bookkeeping, PRNG-layer call overhead).
// Calibrated: GenA(n=512) = 17 blocks + 512 coeffs ≈ 148k vs paper 159k.
inline constexpr u64 kGenACoeffStep = 250;
// Fixed-weight ternary sampler: per-nonzero shuffle pick (uniform index
// with rejection, masked swap) and per-coefficient initialisation.
// Calibrated against the "Sample poly" column (h-scaled: LAC-256's h=512
// costs ~2x LAC-192's h=256 — 344,541 vs 165,092).
inline constexpr u64 kSampleWeightStep = 480;
inline constexpr u64 kSampleCoeffStep = 25;

// MUL TER via pq.mul_ter (Sec. V packing):
// - load: 5 general (8b) + 5 ternary (2b) per issue; software packs the
//   coefficients from byte arrays first (loads, shifts, ors, bounds).
// Calibrated: one n=512 negacyclic call ≈ 6.2k vs Table II's 6,390.
inline constexpr u64 kMulTerLoadChunk = 32;   // pack 5+5 coeffs + issue
inline constexpr u64 kMulTerCoeffsPerLoad = 5;
inline constexpr u64 kMulTerReadChunk = 18;   // issue + unpack 4 coeffs
inline constexpr u64 kMulTerCoeffsPerRead = 4;
inline constexpr u64 kMulTerStartOverhead = 4;
// recombination loops of Algorithms 1 & 2 per coefficient (load, add/sub,
// pq.modq reduction, store, index, branch)
inline constexpr u64 kSplitRecombineStep = 9;

// MUL CHIEN via pq.mul_chien: per evaluation point, per 4-multiplier group:
// 9 compute cycles + control/feedback issue; first group round also loads
// the lambda block (two packed issues).
inline constexpr u64 kChienHwGroupCompute = 9;
inline constexpr u64 kChienHwGroupControl = 12;
inline constexpr u64 kChienHwPointOverhead = 16;  // readback + compare + loop
inline constexpr u64 kChienHwLambdaLoad = 12;     // two packed issues + packing

// pq.modq (Barrett unit): single-cycle issue.
inline constexpr u64 kHwModq = kPqIssue;

// Generic per-call overhead of an accelerated kernel (function call,
// pointer setup, configuration issues).
inline constexpr u64 kKernelCallOverhead = 40;

// Scheme-level glue: serialization of keys/ciphertexts (per byte) and the
// message codec around v (q/2 offset add, 4-bit compress/decompress,
// threshold decision — per coefficient).
inline constexpr u64 kPackByteStep = 8;
inline constexpr u64 kCodecCoeffStep = 25;

}  // namespace lacrv::cost
