// Cycle accounting. Every timing-annotated code path (src/perf, and the
// instrumented kernels in poly/bch/lac) charges cycles into a CycleLedger.
// Charges carry a section label so a single run can report the per-function
// breakdown of the paper's tables (GenA / Sample poly / Multiplication /
// BCH Dec. in Table II; Syndrome / Error Loc. / Chien in Table I).
//
// A null ledger pointer is always allowed and means "don't account" — the
// functional libraries stay usable without any timing machinery.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace lacrv {

class CycleLedger {
 public:
  /// Add `cycles` to the current section (and to the grand total).
  void charge(u64 cycles) {
    total_ += cycles;
    if (!stack_.empty()) sections_[stack_.back()] += cycles;
  }

  /// Enter a named section. Sections nest; a charge is attributed to the
  /// innermost section only (parents report their own direct charges), so
  /// section values are disjoint and sum to total().
  void push_section(std::string name) { stack_.push_back(std::move(name)); }
  void pop_section() {
    if (!stack_.empty()) stack_.pop_back();
  }

  u64 total() const { return total_; }
  /// Cycles charged while `name` was the innermost section.
  u64 section(const std::string& name) const {
    auto it = sections_.find(name);
    return it == sections_.end() ? 0 : it->second;
  }
  const std::map<std::string, u64>& sections() const { return sections_; }

  void reset() {
    total_ = 0;
    sections_.clear();
    stack_.clear();
  }

 private:
  u64 total_ = 0;
  std::map<std::string, u64> sections_;
  std::vector<std::string> stack_;
};

/// RAII helper: enters a section on construction, leaves on destruction.
/// Ledger may be null, in which case the scope is a no-op.
class LedgerScope {
 public:
  LedgerScope(CycleLedger* ledger, std::string name) : ledger_(ledger) {
    if (ledger_) ledger_->push_section(std::move(name));
  }
  ~LedgerScope() {
    if (ledger_) ledger_->pop_section();
  }
  LedgerScope(const LedgerScope&) = delete;
  LedgerScope& operator=(const LedgerScope&) = delete;

 private:
  CycleLedger* ledger_;
};

/// Charge helper tolerant of a null ledger.
inline void charge(CycleLedger* ledger, u64 cycles) {
  if (ledger) ledger->charge(cycles);
}

}  // namespace lacrv
