#include "common/rng.h"

#include "common/check.h"

namespace lacrv {
namespace {

constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

u64 splitmix64(u64& state) {
  u64 z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Xoshiro256::Xoshiro256(u64 seed) {
  u64 sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

u64 Xoshiro256::next_u64() {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 Xoshiro256::next_below(u64 bound) {
  LACRV_CHECK(bound > 0);
  // Rejection sampling on the top of the range to remove modulo bias.
  const u64 limit = ~u64{0} - (~u64{0} % bound + 1) % bound;
  u64 v = next_u64();
  while (v > limit) v = next_u64();
  return v % bound;
}

void Xoshiro256::fill(u8* out, std::size_t len) {
  std::size_t i = 0;
  while (i + 8 <= len) {
    const u64 v = next_u64();
    for (int b = 0; b < 8; ++b) out[i + b] = static_cast<u8>(v >> (8 * b));
    i += 8;
  }
  if (i < len) {
    const u64 v = next_u64();
    for (int b = 0; i < len; ++i, ++b) out[i] = static_cast<u8>(v >> (8 * b));
  }
}

Bytes Xoshiro256::bytes(std::size_t len) {
  Bytes out(len);
  fill(out.data(), len);
  return out;
}

}  // namespace lacrv
