// Injectable monotonic time authority for the service layer.
//
// Everything deadline- or backoff-shaped in src/service/ asks a Clock
// for "now" and for "wait until", never std::chrono directly, so the
// deadline/backoff/breaker tests can run on a ManualClock where waiting
// is free and time only moves when the test (or a virtual sleep) says so
// — no real sleeps, no flaky timing assertions. This is the wall-clock
// sibling of the CycleLedger: the ledger counts modeled hardware cycles,
// the Clock orders service events.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "common/types.h"

namespace lacrv {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic microseconds since an arbitrary epoch.
  virtual u64 now_micros() = 0;

  /// Block until now_micros() >= deadline_micros or *cancel becomes true
  /// (cancel may be null). A ManualClock returns immediately, advancing
  /// virtual time instead of waiting.
  virtual void sleep_until(u64 deadline_micros,
                           const std::atomic<bool>* cancel = nullptr) = 0;

  void sleep_for(u64 micros, const std::atomic<bool>* cancel = nullptr) {
    sleep_until(now_micros() + micros, cancel);
  }
};

/// std::chrono::steady_clock, sliced into short real sleeps so a cancel
/// flag (service shutdown) is honoured within ~1ms.
class RealClock final : public Clock {
 public:
  u64 now_micros() override {
    const auto t = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::microseconds>(t).count());
  }

  void sleep_until(u64 deadline_micros,
                   const std::atomic<bool>* cancel = nullptr) override {
    constexpr u64 kSliceMicros = 1000;
    for (;;) {
      if (cancel && cancel->load(std::memory_order_acquire)) return;
      const u64 now = now_micros();
      if (now >= deadline_micros) return;
      const u64 wait = std::min(deadline_micros - now, kSliceMicros);
      std::this_thread::sleep_for(std::chrono::microseconds(wait));
    }
  }

  /// Process-wide instance for services constructed without an injected
  /// clock.
  static RealClock& instance() {
    static RealClock clock;
    return clock;
  }
};

/// Virtual time for deterministic tests. sleep_until() never blocks: it
/// advances the virtual now to the requested deadline, so retry backoff
/// and prober cadence consume virtual time only. advance() lets a test
/// expire a queued request's deadline from the outside.
class ManualClock final : public Clock {
 public:
  /// Start well past zero so a deadline of 0 ("already expired") is in
  /// the past from the first tick.
  explicit ManualClock(u64 start_micros = 1'000'000)
      : now_(start_micros) {}

  u64 now_micros() override {
    return now_.load(std::memory_order_acquire);
  }

  void sleep_until(u64 deadline_micros,
                   const std::atomic<bool>* /*cancel*/ = nullptr) override {
    // Monotonic ratchet: concurrent sleepers only ever move time forward.
    u64 now = now_.load(std::memory_order_acquire);
    while (now < deadline_micros &&
           !now_.compare_exchange_weak(now, deadline_micros,
                                       std::memory_order_acq_rel)) {
    }
  }

  void advance(u64 micros) {
    now_.fetch_add(micros, std::memory_order_acq_rel);
  }

 private:
  std::atomic<u64> now_;
};

}  // namespace lacrv
