// Arithmetic in GF(2^9) with primitive polynomial p(x) = 1 + x^4 + x^9
// (the field of LAC's BCH codes, Sec. IV-B of the paper).
//
// Elements are 9-bit values in "vector representation": bit i is the
// coefficient of alpha^i. alpha = 0b000000010 generates the multiplicative
// group of order 511.
//
// Two multipliers are provided on purpose:
//  * mul_table   — log/antilog lookup, fast but with secret-dependent table
//                  accesses; models the multiplication in the round-2 LAC
//                  submission decoder (the variable-time baseline).
//  * mul_shift_add — bit-serial shift-and-add with interleaved reduction;
//                  branch-free and table-free. This is exactly the dataflow
//                  of the MUL GF hardware unit (Fig. 3) and the multiplier
//                  used by the constant-time Walters/Roy-style decoder.
#pragma once

#include <array>

#include "common/types.h"

namespace lacrv::gf {

inline constexpr int kFieldBits = 9;               // m
inline constexpr u16 kFieldSize = 1u << kFieldBits;  // 512 elements
inline constexpr u16 kGroupOrder = kFieldSize - 1;   // 511
/// p(x) = x^9 + x^4 + 1, bit mask including the x^9 term.
inline constexpr u16 kPrimitivePoly = 0x211;
/// Reduction taps: alpha^9 = alpha^4 + 1.
inline constexpr u16 kReductionTaps = 0x011;
/// Out-of-band value stored in the log table for the element 0, which has
/// no discrete log. Real logs occupy [0, kGroupOrder); reading the
/// sentinel through any arithmetic path is a bug that `log()` guards
/// against (the check fires before the table is consulted).
inline constexpr u16 kLogZeroSentinel = kGroupOrder;

using Element = u16;  // 9 significant bits

/// alpha^e for e in [0, 511). alpha_pow(e) reduces e mod 511.
Element alpha_pow(u32 e);

/// Discrete log base alpha; precondition x != 0.
u16 log(Element x);

/// Addition = subtraction = XOR in characteristic 2.
constexpr Element add(Element a, Element b) { return a ^ b; }

/// Table-based multiplication (variable-time semantics, see header comment).
Element mul_table(Element a, Element b);

/// Bit-serial shift-and-add multiplication, 9 iterations, branch-free.
/// Mirrors the MUL GF RTL: per step the accumulator is multiplied by alpha
/// (shift + conditional reduction by masking) and b's next-highest bit
/// conditionally adds a.
Element mul_shift_add(Element a, Element b);

/// Multiplicative inverse; precondition x != 0.
Element inv(Element x);

/// x^e in the field (e >= 0), constant-through-structure square-and-multiply.
Element pow(Element x, u32 e);

/// Evaluate a polynomial with coefficients coeffs[0..deg] at point x,
/// Horner scheme, using the given multiplier flavour.
enum class MulKind { kTable, kShiftAdd };
Element poly_eval(std::span<const Element> coeffs, Element x, MulKind kind);

}  // namespace lacrv::gf
