#include "gf/gf512.h"

#include "common/check.h"

namespace lacrv::gf {
namespace {

struct Tables {
  std::array<Element, kGroupOrder> alog;  // alog[i] = alpha^i
  std::array<u16, kFieldSize> log;        // log[alog[i]] = i

  Tables() {
    Element x = 1;
    for (u16 i = 0; i < kGroupOrder; ++i) {
      alog[i] = x;
      log[x] = i;
      // multiply by alpha: shift, reduce by p(x) if the x^9 bit appears.
      x = static_cast<Element>(x << 1);
      if (x & kFieldSize) x = static_cast<Element>((x ^ kPrimitivePoly) & (kFieldSize - 1));
    }
    // 0 has no discrete log; use an out-of-band sentinel. log values live
    // in [0, kGroupOrder), so kGroupOrder can never be confused with a
    // real exponent — the old `log[0] = 0` aliased log[1] and would have
    // masked a missing zero-check as a silent multiply-by-alpha^0.
    log[0] = kLogZeroSentinel;
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

Element alpha_pow(u32 e) { return tables().alog[e % kGroupOrder]; }

u16 log(Element x) {
  LACRV_CHECK_MSG(x != 0 && x < kFieldSize, "log of 0 or out-of-field value");
  return tables().log[x];
}

Element mul_table(Element a, Element b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  return t.alog[(t.log[a] + t.log[b]) % kGroupOrder];
}

Element mul_shift_add(Element a, Element b) {
  // 9 steps, MSB of b first, matching the MUL GF control unit which feeds
  // b_8 in the first clock cycle. All data-dependent choices are masks.
  Element acc = 0;
  for (int i = kFieldBits - 1; i >= 0; --i) {
    // acc <- acc * alpha  (shift; fold the x^9 bit back via the taps)
    const Element overflow = static_cast<Element>(-((acc >> (kFieldBits - 1)) & 1));
    acc = static_cast<Element>(((acc << 1) & (kFieldSize - 1)) ^
                               (overflow & kReductionTaps));
    // acc <- acc + b_i * a
    const Element sel = static_cast<Element>(-((b >> i) & 1));
    acc = static_cast<Element>(acc ^ (sel & a));
  }
  return acc;
}

Element inv(Element x) {
  LACRV_CHECK_MSG(x != 0, "inverse of zero");
  const auto& t = tables();
  return t.alog[(kGroupOrder - t.log[x]) % kGroupOrder];
}

Element pow(Element x, u32 e) {
  Element result = 1;
  Element base = x;
  while (e > 0) {
    if (e & 1) result = mul_table(result, base);
    base = mul_table(base, base);
    e >>= 1;
  }
  return result;
}

Element poly_eval(std::span<const Element> coeffs, Element x, MulKind kind) {
  if (coeffs.empty()) return 0;
  Element acc = coeffs.back();
  for (std::size_t i = coeffs.size() - 1; i-- > 0;) {
    acc = (kind == MulKind::kTable) ? mul_table(acc, x) : mul_shift_add(acc, x);
    acc = add(acc, coeffs[i]);
  }
  return acc;
}

}  // namespace lacrv::gf
