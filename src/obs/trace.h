// Cross-layer span tracer emitting Chrome trace-event / Perfetto JSON.
//
// One Tracer instance can be installed process-wide; every instrumented
// layer (service requests, KEM phases, BCH decode, RTL unit busy
// windows) then records spans into it. Spans carry the thread-local
// *trace id* — the service sets it to the request id before running a
// job, so a single timeline connects a request's queue wait, retry and
// breaker events, KEM phase, and the accelerator busy windows that
// served it.
//
// Cost model: with no tracer installed, every instrumentation site is
// one relaxed atomic load (the TraceSpan constructor checks active()
// and stores null). Defining LACRV_NO_TRACING compiles the sites out
// entirely — TraceSpan and instant() become empty inline stubs. The
// Tracer class itself always exists so tools and tests can link it.
#pragma once

#include <atomic>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace lacrv::obs {

// ---- thread-local trace context -------------------------------------------

/// Trace id every event recorded on this thread is stamped with
/// (0: no request context).
u64 thread_trace_id();
void set_thread_trace_id(u64 id);

/// RAII: set the thread's trace id for a scope, restore the previous one
/// on exit (nesting-safe).
class TraceContextScope {
 public:
  explicit TraceContextScope(u64 id) : saved_(thread_trace_id()) {
    set_thread_trace_id(id);
  }
  ~TraceContextScope() { set_thread_trace_id(saved_); }
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  u64 saved_;
};

// ---- events ----------------------------------------------------------------

/// One trace event. `name` and `category` must be string literals (or
/// otherwise outlive the tracer) — the hot path never copies them.
struct TraceEvent {
  const char* name = "";
  const char* category = "";
  char phase = 'X';   // 'X' complete, 'i' instant
  u64 ts_micros = 0;  // relative to the tracer's epoch
  u64 dur_micros = 0;
  u64 trace_id = 0;
  u32 tid = 0;
  std::vector<std::pair<const char*, u64>> num_args;
  std::vector<std::pair<const char*, std::string>> str_args;
};

class Tracer {
 public:
  /// `capacity` bounds memory: events beyond it are dropped (and
  /// counted), never reallocated unboundedly under load.
  explicit Tracer(std::size_t capacity = 1 << 20);

  /// The process-wide active tracer (null: tracing disabled). One
  /// relaxed atomic load — this is the whole disabled-path cost.
  static Tracer* active() {
    return active_.load(std::memory_order_acquire);
  }
  /// Make this tracer the active one. The caller keeps ownership and
  /// must uninstall() before destroying it.
  void install() { active_.store(this, std::memory_order_release); }
  static void uninstall() { active_.store(nullptr, std::memory_order_release); }

  /// Microseconds since this tracer's construction (the trace epoch).
  u64 now_micros() const;

  /// Record a fully-formed event. Fills tid and, if the event carries
  /// none, the thread-local trace id. Thread-safe.
  void record(TraceEvent event);

  /// Convenience recorders (no-ops when capacity is exhausted).
  void complete_event(
      const char* name, const char* category, u64 ts_micros, u64 dur_micros,
      std::vector<std::pair<const char*, u64>> num_args = {},
      std::vector<std::pair<const char*, std::string>> str_args = {});
  void instant_event(
      const char* name, const char* category,
      std::vector<std::pair<const char*, u64>> num_args = {},
      std::vector<std::pair<const char*, std::string>> str_args = {});

  std::size_t size() const;
  u64 dropped() const { return dropped_.load(std::memory_order_relaxed); }
  /// Snapshot of all recorded events (copy under the lock).
  std::vector<TraceEvent> events() const;

  /// Chrome trace-event JSON ({"traceEvents": [...]}); loads directly in
  /// Perfetto / chrome://tracing.
  void write_chrome_json(std::ostream& os) const;

 private:
  static std::atomic<Tracer*> active_;

  const std::size_t capacity_;
  const u64 epoch_micros_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::atomic<u64> dropped_{0};
};

// ---- instrumentation sites --------------------------------------------------

#ifndef LACRV_NO_TRACING

/// RAII span: captures the active tracer and a start timestamp on
/// construction, emits one complete ('X') event on destruction. When no
/// tracer is installed the constructor is a single atomic load and every
/// other method is a null check.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category)
      : tracer_(Tracer::active()) {
    if (tracer_) {
      event_.name = name;
      event_.category = category;
      event_.ts_micros = tracer_->now_micros();
    }
  }
  ~TraceSpan() {
    if (tracer_) {
      event_.dur_micros = tracer_->now_micros() - event_.ts_micros;
      tracer_->record(std::move(event_));
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void arg(const char* key, u64 value) {
    if (tracer_) event_.num_args.emplace_back(key, value);
  }
  void arg(const char* key, std::string value) {
    if (tracer_) event_.str_args.emplace_back(key, std::move(value));
  }
  bool enabled() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_;
  TraceEvent event_;
};

/// Instant event at "now" on the active tracer (no-op when disabled).
inline void instant(const char* name, const char* category,
                    std::vector<std::pair<const char*, u64>> num_args = {},
                    std::vector<std::pair<const char*, std::string>> str_args =
                        {}) {
  if (Tracer* t = Tracer::active())
    t->instant_event(name, category, std::move(num_args),
                     std::move(str_args));
}

#else  // LACRV_NO_TRACING: the sites compile to nothing.

class TraceSpan {
 public:
  TraceSpan(const char*, const char*) {}
  void arg(const char*, u64) {}
  void arg(const char*, std::string) {}
  bool enabled() const { return false; }
};

inline void instant(const char*, const char*,
                    std::vector<std::pair<const char*, u64>> = {},
                    std::vector<std::pair<const char*, std::string>> = {}) {}

#endif  // LACRV_NO_TRACING

}  // namespace lacrv::obs
