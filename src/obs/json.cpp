#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace lacrv::obs::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const Value* Value::find(std::string_view key) const {
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

namespace {

/// Recursive-descent parser over a bounded view. Depth-limited so a
/// hostile input cannot blow the stack.
class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool run(Value* out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const char* what) {
    if (error_) {
      *error_ = what;
      *error_ += " at offset ";
      *error_ += std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool parse_string(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"')
      return fail("expected string");
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are beyond
          // what this repo's dumps ever contain; encode them raw).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(Value* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': {
        ++pos_;
        out->kind = Value::Kind::kObject;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        for (;;) {
          skip_ws();
          std::string key;
          if (!parse_string(&key)) return false;
          skip_ws();
          if (pos_ >= text_.size() || text_[pos_] != ':')
            return fail("expected ':'");
          ++pos_;
          Value v;
          if (!parse_value(&v, depth + 1)) return false;
          out->object.emplace_back(std::move(key), std::move(v));
          skip_ws();
          if (pos_ >= text_.size()) return fail("unterminated object");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == '}') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos_;
        out->kind = Value::Kind::kArray;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        for (;;) {
          Value v;
          if (!parse_value(&v, depth + 1)) return false;
          out->array.push_back(std::move(v));
          skip_ws();
          if (pos_ >= text_.size()) return fail("unterminated array");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == ']') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        out->kind = Value::Kind::kString;
        return parse_string(&out->str);
      case 't':
        out->kind = Value::Kind::kBool;
        out->boolean = true;
        return literal("true");
      case 'f':
        out->kind = Value::Kind::kBool;
        out->boolean = false;
        return literal("false");
      case 'n':
        out->kind = Value::Kind::kNull;
        return literal("null");
      default: {
        if (c != '-' && !std::isdigit(static_cast<unsigned char>(c)))
          return fail("unexpected character");
        const std::size_t start = pos_;
        if (text_[pos_] == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
          ++pos_;
        const std::string num(text_.substr(start, pos_ - start));
        char* end = nullptr;
        out->number = std::strtod(num.c_str(), &end);
        if (end != num.c_str() + num.size()) return fail("bad number");
        out->kind = Value::Kind::kNumber;
        return true;
      }
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse(std::string_view text, Value* out, std::string* error) {
  return Parser(text, error).run(out);
}

}  // namespace lacrv::obs::json
