#include "obs/metrics.h"

#include <sstream>

namespace lacrv::obs {
namespace {

void write_sample(std::ostream& os, const std::string& name,
                  const std::string& labels, double value) {
  os << name;
  if (!labels.empty()) os << "{" << labels << "}";
  // Counters and cycle totals are integral; render them without the
  // scientific notation a plain double stream would pick.
  if (value == static_cast<double>(static_cast<long long>(value)))
    os << " " << static_cast<long long>(value) << "\n";
  else
    os << " " << value << "\n";
}

std::string join_labels(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return a + "," + b;
}

}  // namespace

void MetricsRegistry::add_counter(std::string name, std::string help,
                                  const std::atomic<u64>* value,
                                  std::string labels) {
  Entry e;
  e.kind = Entry::Kind::kCounter;
  e.name = std::move(name);
  e.help = std::move(help);
  e.labels = std::move(labels);
  e.counter = value;
  add(std::move(e));
}

void MetricsRegistry::add_gauge(std::string name, std::string help,
                                std::function<double()> value,
                                std::string labels) {
  Entry e;
  e.kind = Entry::Kind::kGauge;
  e.name = std::move(name);
  e.help = std::move(help);
  e.labels = std::move(labels);
  e.gauge = std::move(value);
  add(std::move(e));
}

void MetricsRegistry::add_histogram(std::string name, std::string help,
                                    const stats::LatencyHistogram* histogram,
                                    std::string labels) {
  Entry e;
  e.kind = Entry::Kind::kHistogram;
  e.name = std::move(name);
  e.help = std::move(help);
  e.labels = std::move(labels);
  e.histogram = histogram;
  add(std::move(e));
}

void MetricsRegistry::add_ledger(std::string name, std::string help,
                                 const CycleLedger* ledger,
                                 std::string labels) {
  Entry e;
  e.kind = Entry::Kind::kLedger;
  e.name = std::move(name);
  e.help = std::move(help);
  e.labels = std::move(labels);
  e.ledger = ledger;
  add(std::move(e));
}

void MetricsRegistry::add(Entry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.push_back(std::move(entry));
}

void MetricsRegistry::expose_one(std::ostream& os, const Entry& e) {
  switch (e.kind) {
    case Entry::Kind::kCounter:
      write_sample(os, e.name, e.labels,
                   static_cast<double>(
                       e.counter->load(std::memory_order_relaxed)));
      break;
    case Entry::Kind::kGauge:
      write_sample(os, e.name, e.labels, e.gauge());
      break;
    case Entry::Kind::kHistogram: {
      const stats::LatencyHistogram& h = *e.histogram;
      u64 cumulative = 0;
      for (int b = 0; b < stats::LatencyHistogram::kBuckets; ++b) {
        cumulative += h.bucket(b);
        write_sample(
            os, e.name + "_bucket",
            join_labels(e.labels,
                        "le=\"" +
                            std::to_string(
                                stats::LatencyHistogram::bucket_upper_micros(
                                    b)) +
                            "\""),
            static_cast<double>(cumulative));
      }
      write_sample(os, e.name + "_bucket", join_labels(e.labels, "le=\"+Inf\""),
                   static_cast<double>(h.count()));
      write_sample(os, e.name + "_sum", e.labels,
                   static_cast<double>(h.sum_micros()));
      write_sample(os, e.name + "_count", e.labels,
                   static_cast<double>(h.count()));
      break;
    }
    case Entry::Kind::kLedger: {
      for (const auto& [section, cycles] : e.ledger->sections())
        write_sample(os, e.name,
                     join_labels(e.labels, "section=\"" + section + "\""),
                     static_cast<double>(cycles));
      write_sample(os, e.name + "_total", e.labels,
                   static_cast<double>(e.ledger->total()));
      break;
    }
  }
}

void MetricsRegistry::expose(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // One HELP/TYPE header per family even when several label sets were
  // registered under the same name (e.g. per-op latency histograms).
  std::map<std::string, bool> header_written;
  for (const Entry& e : entries_) {
    if (!header_written[e.name]) {
      header_written[e.name] = true;
      const char* type = e.kind == Entry::Kind::kCounter ? "counter"
                         : e.kind == Entry::Kind::kHistogram ? "histogram"
                                                             : "gauge";
      os << "# HELP " << e.name << " " << e.help << "\n";
      os << "# TYPE " << e.name << " " << type << "\n";
    }
    expose_one(os, e);
  }
}

std::string MetricsRegistry::expose_text() const {
  std::ostringstream os;
  expose(os);
  return os.str();
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

std::size_t MetricsRegistry::families() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace lacrv::obs
