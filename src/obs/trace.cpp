#include "obs/trace.h"

#include <chrono>

#include "obs/json.h"

namespace lacrv::obs {
namespace {

u64 steady_micros() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::microseconds>(t).count());
}

thread_local u64 tls_trace_id = 0;

/// Small dense thread ids for the trace (std::thread::id is opaque).
u32 this_thread_tid() {
  static std::atomic<u32> next{1};
  thread_local u32 tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

u64 thread_trace_id() { return tls_trace_id; }
void set_thread_trace_id(u64 id) { tls_trace_id = id; }

std::atomic<Tracer*> Tracer::active_{nullptr};

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity), epoch_micros_(steady_micros()) {}

u64 Tracer::now_micros() const { return steady_micros() - epoch_micros_; }

void Tracer::record(TraceEvent event) {
  event.tid = this_thread_tid();
  if (event.trace_id == 0) event.trace_id = tls_trace_id;
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

void Tracer::complete_event(
    const char* name, const char* category, u64 ts_micros, u64 dur_micros,
    std::vector<std::pair<const char*, u64>> num_args,
    std::vector<std::pair<const char*, std::string>> str_args) {
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = 'X';
  e.ts_micros = ts_micros;
  e.dur_micros = dur_micros;
  e.num_args = std::move(num_args);
  e.str_args = std::move(str_args);
  record(std::move(e));
}

void Tracer::instant_event(
    const char* name, const char* category,
    std::vector<std::pair<const char*, u64>> num_args,
    std::vector<std::pair<const char*, std::string>> str_args) {
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = 'i';
  e.ts_micros = now_micros();
  e.num_args = std::move(num_args);
  e.str_args = std::move(str_args);
  record(std::move(e));
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void Tracer::write_chrome_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    os << "{\"name\": \"" << json::escape(e.name) << "\", \"cat\": \""
       << json::escape(e.category) << "\", \"ph\": \"" << e.phase
       << "\", \"ts\": " << e.ts_micros;
    if (e.phase == 'X') os << ", \"dur\": " << e.dur_micros;
    if (e.phase == 'i') os << ", \"s\": \"t\"";  // thread-scoped instant
    os << ", \"pid\": 1, \"tid\": " << e.tid << ", \"args\": {";
    bool first = true;
    if (e.trace_id != 0) {
      os << "\"trace_id\": " << e.trace_id;
      first = false;
    }
    for (const auto& [key, value] : e.num_args) {
      os << (first ? "" : ", ") << "\"" << json::escape(key)
         << "\": " << value;
      first = false;
    }
    for (const auto& [key, value] : e.str_args) {
      os << (first ? "" : ", ") << "\"" << json::escape(key) << "\": \""
         << json::escape(value) << "\"";
      first = false;
    }
    os << "}}" << (i + 1 < events_.size() ? "," : "") << "\n";
  }
  os << "]}\n";
}

}  // namespace lacrv::obs
