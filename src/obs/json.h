// Minimal JSON support for the observability layer: an escaper shared by
// every machine-readable dump (the tracer, the bench --json records) and
// a small recursive-descent parser used by the trace/metrics checker and
// the end-to-end tests to validate what those dumps actually emit.
//
// Deliberately tiny — no DOM mutation, no serialization of parsed
// values, numbers as double (every value this repo emits fits).
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lacrv::obs::json {

/// Escape a string for inclusion inside JSON double quotes.
std::string escape(std::string_view s);

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  /// Insertion-ordered key/value pairs (duplicate keys kept as-is).
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// First value under `key` (objects only); null if absent.
  const Value* find(std::string_view key) const;
};

/// Parse a complete JSON document. Returns false (with a position-
/// annotated message in `error`, if given) on malformed input or
/// trailing garbage.
bool parse(std::string_view text, Value* out, std::string* error = nullptr);

}  // namespace lacrv::obs::json
