// Unified metrics registry with Prometheus-style text exposition.
//
// The repo grew three observability channels independently: the atomic
// ServiceCounters in src/service/, the lock-free LatencyHistogram in
// common/stats.h, and the CycleLedger section breakdown the paper tables
// are built from. This registry puts all three behind one interface: a
// producer registers its sources once (non-owning pointers / callbacks),
// and expose() renders a consistent snapshot in the Prometheus text
// format — the same dump whether it is requested mid-run ("on demand")
// or at shutdown.
//
// Sources are read at expose() time, so registration is cheap and the
// hot paths keep their existing lock-free counters; nothing is copied
// until somebody asks. Registered pointers must outlive the registry or
// be removed with clear().
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/ledger.h"
#include "common/stats.h"
#include "common/types.h"

namespace lacrv::obs {

class MetricsRegistry {
 public:
  /// Monotonic counter read from an atomic the producer keeps bumping.
  /// `labels` is the rendered label set without braces, e.g.
  /// `op="encaps"` (empty: no labels).
  void add_counter(std::string name, std::string help,
                   const std::atomic<u64>* value, std::string labels = {});

  /// Gauge evaluated at exposition time (queue depths, breaker states).
  void add_gauge(std::string name, std::string help,
                 std::function<double()> value, std::string labels = {});

  /// Log2-bucketed latency histogram, exposed with cumulative `le`
  /// buckets plus _sum and _count.
  void add_histogram(std::string name, std::string help,
                     const stats::LatencyHistogram* histogram,
                     std::string labels = {});

  /// CycleLedger breakdown: one `name{section="..."}` gauge per section
  /// plus `name_total`. The ledger is not thread-safe — register only
  /// ledgers that are quiescent whenever expose() runs.
  void add_ledger(std::string name, std::string help,
                  const CycleLedger* ledger, std::string labels = {});

  /// Render every registered family in the Prometheus text format.
  /// Families with the same name share one # HELP/# TYPE header.
  void expose(std::ostream& os) const;
  std::string expose_text() const;

  void clear();
  std::size_t families() const;

 private:
  struct Entry {
    enum class Kind { kCounter, kGauge, kHistogram, kLedger } kind;
    std::string name, help, labels;
    const std::atomic<u64>* counter = nullptr;
    std::function<double()> gauge;
    const stats::LatencyHistogram* histogram = nullptr;
    const CycleLedger* ledger = nullptr;
  };

  void add(Entry entry);
  static void expose_one(std::ostream& os, const Entry& e);

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

}  // namespace lacrv::obs
