#include "perf/rtl_backend.h"

#include <memory>

#include "common/costs.h"
#include "obs/trace.h"
#include "rtl/chien_unit.h"
#include "rtl/mul_ter.h"

namespace lacrv::perf {
namespace {

template <typename Vec>
std::size_t significant_length(const Vec& v) {
  std::size_t len = v.size();
  while (len > 0 && v[len - 1] == 0) --len;
  return len;
}

}  // namespace

poly::MulTer512 rtl_mul_ter() {
  // One persistent unit instance, like the single physical unit in the
  // PQ-ALU (shared_ptr: MulTer512 is a copyable std::function).
  return rtl_mul_ter(std::make_shared<rtl::MulTerRtl>(poly::kMulTerLength));
}

poly::MulTer512 rtl_mul_ter(std::shared_ptr<rtl::MulTerRtl> unit) {
  return [unit](const poly::Ternary& a, const poly::Coeffs& b,
                bool negacyclic, CycleLedger* ledger) {
    const std::size_t n = unit->length();
    unit->reset();
    for (std::size_t i = 0; i < n; ++i) {
      unit->load_a(i, a[i]);
      unit->load_b(i, b[i]);
    }
    unit->start(negacyclic);
    const u64 compute_cycles = unit->run_to_completion();

    // I/O charged with the pq.mul_ter instruction model; compute charged
    // with the cycles the RTL actually took.
    const std::size_t sig =
        std::max(significant_length(a), significant_length(b));
    const std::size_t load_chunks =
        (std::max<std::size_t>(sig, 1) + cost::kMulTerCoeffsPerLoad - 1) /
        cost::kMulTerCoeffsPerLoad;
    const std::size_t read_chunks =
        (n + cost::kMulTerCoeffsPerRead - 1) / cost::kMulTerCoeffsPerRead;
    charge(ledger, cost::kKernelCallOverhead +
                       load_chunks * cost::kMulTerLoadChunk +
                       cost::kMulTerStartOverhead + compute_cycles +
                       read_chunks * cost::kMulTerReadChunk);

    poly::Coeffs out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = unit->read_c(i);
    return out;
  };
}

bch::ChienStage rtl_chien() {
  return rtl_chien(std::make_shared<rtl::ChienRtl>());
}

bch::ChienStage rtl_chien(std::shared_ptr<rtl::ChienRtl> unit) {
  // Span name derived from the slot's canonical registry name, like the
  // rtl-internal "mul_ter.busy"/"sha256.busy" spans (a registry test
  // pins the correspondence).
  static const std::string kSpanName =
      std::string(lac::slot_name(lac::Slot::kChien)) + ".busy";
  return [unit](const bch::CodeSpec& spec, const bch::Locator& loc,
                CycleLedger* ledger) {
    // The Chien unit has no single busy signal (it advances lane by
    // lane); the busy window of one full locator scan is the trace span.
    obs::TraceSpan span(kSpanName.c_str(), "rtl");
    unit->configure(loc.lambda, spec.chien_first);  // resets unit cycles
    bch::ChienResult result;
    const int points = spec.chien_last - spec.chien_first + 1;
    span.arg("points", static_cast<u64>(points));
    for (int l = spec.chien_first; l <= spec.chien_last; ++l) {
      if (unit->eval_next() == 0) {
        ++result.roots_found;
        const int degree = (gf::kGroupOrder - l) % gf::kGroupOrder;
        if (degree < spec.length()) result.error_degrees.push_back(degree);
      }
    }
    const u64 groups = static_cast<u64>(unit->group_passes_per_point());
    charge(ledger,
           cost::kKernelCallOverhead + groups * cost::kChienHwLambdaLoad +
               unit->cycles() /* RTL multiplier cycles */ +
               static_cast<u64>(points) *
                   (groups * cost::kChienHwGroupControl +
                    cost::kChienHwPointOverhead));
    span.arg("cycles", unit->cycles());
    return result;
  };
}

hash::HashFn rtl_sha256(std::shared_ptr<rtl::Sha256Rtl> unit) {
  return [unit](ByteView data) { return unit->hash_message(data); };
}

poly::ModqFn rtl_modq() {
  return rtl_modq(std::make_shared<rtl::BarrettRtl>());
}

poly::ModqFn rtl_modq(std::shared_ptr<rtl::BarrettRtl> unit) {
  return [unit](u32 x, CycleLedger* ledger) {
    charge(ledger, cost::kHwModq);  // single-cycle pq.modq issue
    return unit->reduce(x);
  };
}

lac::Backend rtl_optimized_backend(DegradeReport* report) {
  auto registry = std::make_shared<lac::KernelRegistry>(
      lac::KernelRegistry::modeled());
  registry->inject_mul_ter(rtl_mul_ter(), report);
  registry->inject_chien(rtl_chien(), report);
  registry->inject_modq(rtl_modq(), poly::kQ, report);
  lac::Backend backend = lac::Backend::optimized_from(std::move(registry));
  backend.name = "opt-rtl";
  return backend;
}

}  // namespace lacrv::perf
