#include "perf/iss_kernels.h"

#include <sstream>

#include "common/check.h"
#include "riscv/assembler.h"
#include "riscv/cpu.h"
#include "riscv/profiler.h"

namespace lacrv::perf {
namespace {

constexpr u32 kBBase = 0x10000;   // 515 bytes of general coefficients (padded)
constexpr u32 kABase = 0x10400;   // 515 bytes of ternary codes (0/1/2, padded)
constexpr u32 kOutBase = 0x10800; // 512 result bytes

}  // namespace

std::string mul_ter_kernel_source(bool negacyclic) {
  std::ostringstream src;
  src << R"(
    # MUL TER driver: 512 coefficients, 5-per-issue load, 4-per-read out.
    # t0 = &b, t1 = &a_codes, t2 = chunk counter, t3 = limit
      li   a5, 0x30000000       # RESET
      pq.mul_ter zero, zero, a5
      li   t0, )" << kBBase << R"(
      li   t1, )" << kABase << R"(
      li   t2, 0
      li   t3, 103
    load_loop:
      # rs1 = g0..g3
      lbu  a0, 0(t0)
      lbu  a1, 1(t0)
      slli a1, a1, 8
      or   a0, a0, a1
      lbu  a1, 2(t0)
      slli a1, a1, 16
      or   a0, a0, a1
      lbu  a1, 3(t0)
      slli a1, a1, 24
      or   a0, a0, a1
      # rs2 = g4 | ternary codes << 8 | chunk << 18   (mode 0)
      lbu  a2, 4(t0)
      lbu  a3, 0(t1)
      slli a3, a3, 8
      or   a2, a2, a3
      lbu  a3, 1(t1)
      slli a3, a3, 10
      or   a2, a2, a3
      lbu  a3, 2(t1)
      slli a3, a3, 12
      or   a2, a2, a3
      lbu  a3, 3(t1)
      slli a3, a3, 14
      or   a2, a2, a3
      lbu  a3, 4(t1)
      slli a3, a3, 16
      or   a2, a2, a3
      slli a3, t2, 18
      or   a2, a2, a3
      pq.mul_ter zero, a0, a2
      addi t0, t0, 5
      addi t1, t1, 5
      addi t2, t2, 1
      blt  t2, t3, load_loop
      # START (mode 1), conv_n in bit 0
      li   a5, )" << (0x10000000u | (negacyclic ? 1u : 0u)) << R"(
      pq.mul_ter zero, zero, a5
      # read back 128 chunks of 4 coefficients
      li   t0, )" << kOutBase << R"(
      li   t2, 0
      li   t3, 128
      li   a5, 0x20000000
    read_loop:
      or   a4, a5, t2           # mode 2 | chunk
      pq.mul_ter a0, zero, a4
      sw   a0, 0(t0)
      addi t0, t0, 4
      addi t2, t2, 1
      blt  t2, t3, read_loop
      ebreak
  )";
  return src.str();
}

IssRunResult iss_mul_ter(const poly::Ternary& a, const poly::Coeffs& b,
                         bool negacyclic, rv::IssProfiler* profiler) {
  LACRV_CHECK(a.size() == 512 && b.size() == 512);
  rv::Cpu cpu(1 << 20);
  cpu.set_profiler(profiler);
  const rv::Program prog = rv::assemble(mul_ter_kernel_source(negacyclic));
  cpu.load_words(0, prog.words);

  Bytes b_bytes(515, 0), a_codes(515, 0);
  for (std::size_t i = 0; i < 512; ++i) {
    b_bytes[i] = b[i];
    a_codes[i] = a[i] == 1 ? 1 : a[i] == -1 ? 2 : 0;
  }
  cpu.load_bytes(kBBase, b_bytes);
  cpu.load_bytes(kABase, a_codes);

  cpu.run();
  LACRV_CHECK_MSG(cpu.halted(), "kernel did not terminate");

  IssRunResult result;
  result.result.resize(512);
  for (std::size_t i = 0; i < 512; ++i)
    result.result[i] = cpu.read_byte(kOutBase + static_cast<u32>(i));
  result.cycles = cpu.cycles();
  result.instructions = cpu.instructions();
  return result;
}

IssRunResult iss_modq(const std::vector<u16>& values,
                      rv::IssProfiler* profiler) {
  std::ostringstream src;
  src << R"(
      li   t0, 0x20000          # input (u16 words)
      li   t1, 0x30000          # output bytes
      li   t2, 0
      li   t3, )" << values.size() << R"(
    loop:
      lhu  a0, 0(t0)
      pq.modq a1, a0, zero
      sb   a1, 0(t1)
      addi t0, t0, 2
      addi t1, t1, 1
      addi t2, t2, 1
      blt  t2, t3, loop
      ebreak
  )";
  rv::Cpu cpu(1 << 20);
  cpu.set_profiler(profiler);
  const rv::Program prog = rv::assemble(src.str());
  cpu.load_words(0, prog.words);
  Bytes input(values.size() * 2);
  for (std::size_t i = 0; i < values.size(); ++i) {
    input[2 * i] = static_cast<u8>(values[i]);
    input[2 * i + 1] = static_cast<u8>(values[i] >> 8);
  }
  cpu.load_bytes(0x20000, input);
  cpu.run();
  LACRV_CHECK_MSG(cpu.halted(), "kernel did not terminate");

  IssRunResult result;
  result.result.resize(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    result.result[i] = cpu.read_byte(0x30000 + static_cast<u32>(i));
  result.cycles = cpu.cycles();
  result.instructions = cpu.instructions();
  return result;
}

IssRunResult iss_gen_a(const std::array<u8, 32>& seed, std::size_t count,
                       rv::IssProfiler* profiler) {
  // Memory map: the software-prepared padded block template lives at
  // kBlockBase (seed || counter || 0x80 || zeros || bit-length 288). The
  // kernel patches the 4 counter bytes, drives the core byte-wise, reads
  // back the digest and rejection-samples below q = 251.
  constexpr u32 kBlockBase = 0x20000;
  constexpr u32 kDigestBase = 0x20100;
  constexpr u32 kOutBase = 0x21000;

  std::ostringstream src;
  src << R"(
    # s2 = counter, s3 = produced count, s4 = target, s5 = out ptr
      li   s2, 0
      li   s3, 0
      li   s4, )" << count << R"(
      li   s5, )" << kOutBase << R"(
      li   s6, 251
    block_loop:
      # patch counter bytes 32..35 of the template (little endian)
      li   t0, )" << kBlockBase << R"(
      sb   s2, 32(t0)
      srli t1, s2, 8
      sb   t1, 33(t0)
      srli t1, s2, 16
      sb   t1, 34(t0)
      srli t1, s2, 24
      sb   t1, 35(t0)
      # reset chaining state (mode 3)
      li   t2, 0x30000000
      pq.sha256 zero, zero, t2
      # load the 64 block bytes (mode 0 | offset)
      li   t1, 0
      li   t3, 64
    load_loop:
      add  t4, t0, t1
      lbu  a0, 0(t4)
      pq.sha256 zero, a0, t1
      addi t1, t1, 1
      blt  t1, t3, load_loop
      # hash (mode 1)
      li   t2, 0x10000000
      pq.sha256 zero, zero, t2
      # read the 8 digest words (mode 2 | word) to kDigestBase
      li   t0, )" << kDigestBase << R"(
      li   t1, 0
      li   t3, 8
      li   t2, 0x20000000
    read_loop:
      or   a1, t2, t1
      pq.sha256 a0, zero, a1
      sw   a0, 0(t0)
      addi t0, t0, 4
      addi t1, t1, 1
      blt  t1, t3, read_loop
      # rejection-sample the 32 digest bytes
      li   t0, )" << kDigestBase << R"(
      li   t1, 0
      li   t3, 32
    sample_loop:
      bge  s3, s4, done
      add  t4, t0, t1
      lbu  a0, 0(t4)
      bgeu a0, s6, reject       # a0 >= 251 -> skip
      sb   a0, 0(s5)
      addi s5, s5, 1
      addi s3, s3, 1
    reject:
      addi t1, t1, 1
      blt  t1, t3, sample_loop
      addi s2, s2, 1
      j    block_loop
    done:
      ebreak
  )";

  rv::Cpu cpu(1 << 20);
  cpu.set_profiler(profiler);
  const rv::Program prog = rv::assemble(src.str());
  cpu.load_words(0, prog.words);

  // Padded single-block template: SHA256 input is seed || ctr (36 bytes).
  Bytes block(64, 0);
  std::copy(seed.begin(), seed.end(), block.begin());
  block[36] = 0x80;
  block[62] = 0x01;  // 288 bits = 0x0120, big-endian length field
  block[63] = 0x20;
  cpu.load_bytes(kBlockBase, block);

  cpu.run();
  LACRV_CHECK_MSG(cpu.halted(), "gen_a kernel did not terminate");

  IssRunResult result;
  result.result.resize(count);
  for (std::size_t i = 0; i < count; ++i)
    result.result[i] = cpu.read_byte(kOutBase + static_cast<u32>(i));
  result.cycles = cpu.cycles();
  result.instructions = cpu.instructions();
  return result;
}

namespace {

/// Emit one length-256 cyclic convolution on the unit: reset, load the
/// 256 significant coefficient pairs (51 full pq.mul_ter chunks plus a
/// one-coefficient tail so no neighbouring memory leaks into the unit),
/// start in positive-convolution mode, read the 512-coefficient product.
void emit_mul256(std::ostringstream& src, int id, u32 a_addr, u32 b_addr,
                 u32 out_addr) {
  src << "  # --- unit call " << id << " ---\n";
  src << "  li t2, 0x30000000\n  pq.mul_ter zero, zero, t2\n";  // reset
  src << "  li t0, " << b_addr << "\n  li t1, " << a_addr
      << "\n  li t2, 0\n  li t3, 51\n";
  src << "mload" << id << ":\n";
  src << R"(  lbu  a0, 0(t0)
  lbu  a1, 1(t0)
  slli a1, a1, 8
  or   a0, a0, a1
  lbu  a1, 2(t0)
  slli a1, a1, 16
  or   a0, a0, a1
  lbu  a1, 3(t0)
  slli a1, a1, 24
  or   a0, a0, a1
  lbu  a2, 4(t0)
  lbu  a3, 0(t1)
  slli a3, a3, 8
  or   a2, a2, a3
  lbu  a3, 1(t1)
  slli a3, a3, 10
  or   a2, a2, a3
  lbu  a3, 2(t1)
  slli a3, a3, 12
  or   a2, a2, a3
  lbu  a3, 3(t1)
  slli a3, a3, 14
  or   a2, a2, a3
  lbu  a3, 4(t1)
  slli a3, a3, 16
  or   a2, a2, a3
  slli a3, t2, 18
  or   a2, a2, a3
  pq.mul_ter zero, a0, a2
  addi t0, t0, 5
  addi t1, t1, 5
  addi t2, t2, 1
)";
  src << "  blt  t2, t3, mload" << id << "\n";
  // tail: coefficient 255 alone (chunk 51, lanes 1..4 zero)
  src << "  lbu  a0, 0(t0)\n  lbu  a2, 0(t1)\n  slli a2, a2, 8\n";
  src << "  li   a3, " << (51u << 18) << "\n  or   a2, a2, a3\n";
  src << "  pq.mul_ter zero, a0, a2\n";
  // start, cyclic mode
  src << "  li t2, 0x10000000\n  pq.mul_ter zero, zero, t2\n";
  // read back 128 chunks
  src << "  li t0, " << out_addr << "\n  li t2, 0\n  li t3, 128\n"
      << "  li a5, 0x20000000\n";
  src << "mread" << id << ":\n";
  src << R"(  or   a4, a5, t2
  pq.mul_ter a0, zero, a4
  sw   a0, 0(t0)
  addi t0, t0, 4
  addi t2, t2, 1
)";
  src << "  blt  t2, t3, mread" << id << "\n";
}

/// Emit `dst[i] (+|-)= src1[i] (+ src2[i])` over `count` coefficients
/// with pq.modq reduction. mode: 0 dst=src1, 1 dst+=src1+src2,
/// 2 dst+=src1, 3 dst-=src1+src2, 4 dst=src1-src2.
void emit_recombine(std::ostringstream& src, int id, int mode, u32 dst,
                    u32 src1, u32 src2, u32 count) {
  src << "  li t0, " << dst << "\n  li t1, " << src1 << "\n";
  if (mode == 1 || mode == 3 || mode == 4) src << "  li t4, " << src2 << "\n";
  src << "  li t2, 0\n  li t3, " << count << "\n";
  src << "rc" << id << ":\n";
  src << "  lbu a0, 0(t1)\n";
  if (mode == 1 || mode == 3 || mode == 4) {
    src << "  lbu a1, 0(t4)\n";
    src << (mode == 4 ? "  addi a1, a1, -251\n  sub a0, a0, a1\n"
                      : "  add a0, a0, a1\n");
    // mode 4: a0 = src1 - src2 + 251  (in [0, 501])
  }
  if (mode != 0 && mode != 4) {
    src << "  lbu a2, 0(t0)\n";
    if (mode == 3) {
      // dst - (src1+src2): add 2q to stay positive: dst + 502 - sum
      src << "  addi a2, a2, 502\n  sub a0, a2, a0\n";
    } else {
      src << "  add a0, a0, a2\n";
    }
  }
  if (mode != 0) src << "  pq.modq a0, a0, zero\n";
  src << "  sb   a0, 0(t0)\n";
  src << "  addi t0, t0, 1\n  addi t1, t1, 1\n";
  if (mode == 1 || mode == 3 || mode == 4) src << "  addi t4, t4, 1\n";
  src << "  addi t2, t2, 1\n";
  src << "  blt  t2, t3, rc" << id << "\n";
}

}  // namespace

IssRunResult iss_split_mul_1024(const poly::Ternary& a, const poly::Coeffs& b,
                                rv::IssProfiler* profiler) {
  LACRV_CHECK(a.size() == 1024 && b.size() == 1024);
  constexpr u32 kA = 0x10000;    // 1024 ternary codes
  constexpr u32 kB = 0x10800;    // 1024 general coefficients
  constexpr u32 kLow = 0x11000;  // 4 x 1024-byte Algorithm-2 results
  constexpr u32 kPart = 0x14000;  // 4 x 512-byte unit outputs
  constexpr u32 kOut = 0x15000;   // final 1024-byte result

  std::ostringstream src;
  int id = 0;
  // Algorithm 1 line 1-2: four split_mul_low calls over the 512-halves
  // (ll, hh, lh, hl). Algorithm 2 inside each: four length-256 unit calls
  // plus the three recombination passes.
  const std::array<std::pair<u32, u32>, 4> pairs = {{
      {kA, kB},              // al * bl
      {kA + 512, kB + 512},  // ah * bh
      {kA, kB + 512},        // al * bh
      {kA + 512, kB},        // ah * bl
  }};
  for (int p = 0; p < 4; ++p) {
    const auto [xa, xb] = pairs[static_cast<std::size_t>(p)];
    const u32 low = kLow + static_cast<u32>(p) * 0x400;
    // four 256-products: (l,l) (h,h) (l,h) (h,l)
    emit_mul256(src, id++, xa, xb, kPart);                       // ll
    emit_mul256(src, id++, xa + 256, xb + 256, kPart + 0x200);   // hh
    emit_mul256(src, id++, xa, xb + 256, kPart + 0x400);         // lh
    emit_mul256(src, id++, xa + 256, xb, kPart + 0x600);         // hl
    // Algorithm 2 recombination into `low` (1024 bytes)
    emit_recombine(src, 100 + 10 * p + 0, 0, low, kPart, 0, 512);
    emit_recombine(src, 100 + 10 * p + 1, 1, low + 256, kPart + 0x400,
                   kPart + 0x600, 512);
    emit_recombine(src, 100 + 10 * p + 2, 2, low + 512, kPart + 0x200, 0,
                   512);
  }
  // Algorithm 1 recombination: c = ll - hh; c[i+512] += lh[i] + hl[i]
  // (i < 512); c[i-512] -= lh[i] + hl[i] (i >= 512).
  const u32 ll = kLow, hh = kLow + 0x400, lh = kLow + 0x800,
            hl = kLow + 0xC00;
  emit_recombine(src, 200, 4, kOut, ll, hh, 1024);
  emit_recombine(src, 201, 1, kOut + 512, lh, hl, 512);
  emit_recombine(src, 202, 3, kOut, lh + 512, hl + 512, 512);
  src << "  ebreak\n";

  rv::Cpu cpu(1 << 20);
  cpu.set_profiler(profiler);
  const rv::Program prog = rv::assemble(src.str());
  cpu.load_words(0, prog.words);

  Bytes a_codes(1024), b_bytes(1024);
  for (std::size_t i = 0; i < 1024; ++i) {
    a_codes[i] = a[i] == 1 ? 1 : a[i] == -1 ? 2 : 0;
    b_bytes[i] = b[i];
  }
  cpu.load_bytes(kA, a_codes);
  cpu.load_bytes(kB, b_bytes);
  cpu.run();
  LACRV_CHECK_MSG(cpu.halted(), "split-mul kernel did not terminate");

  IssRunResult result;
  result.result.resize(1024);
  for (std::size_t i = 0; i < 1024; ++i)
    result.result[i] = cpu.read_byte(kOut + static_cast<u32>(i));
  result.cycles = cpu.cycles();
  result.instructions = cpu.instructions();
  return result;
}

IssChienResult iss_chien(std::span<const gf::Element> lambda, int first,
                         int last, rv::IssProfiler* profiler) {
  const int t = static_cast<int>(lambda.size()) - 1;
  LACRV_CHECK(t == 8 || t == 16);
  LACRV_CHECK(first <= last);
  const int groups = t / 4;
  constexpr u32 kOutBase2 = 0x40000;

  std::ostringstream src;
  // Prep: load each group's four (constant, value) pairs. The lane value
  // is lambda_k * alpha^(first*k) (software prep, as in ChienRtl); the
  // constant is alpha^k. With the loop-feedback bit clear, the first
  // compute returns the evaluation at `first + 1`... so we pre-position
  // the values at exponent (first - 1) and always set the loop bit after
  // loading: the g-th compute of point i multiplies value by alpha^k.
  for (int g = 0; g < groups; ++g) {
    std::array<u32, 4> consts{}, values{};
    for (int m = 0; m < 4; ++m) {
      const int k = 4 * g + m + 1;
      consts[static_cast<std::size_t>(m)] = gf::alpha_pow(static_cast<u32>(k));
      values[static_cast<std::size_t>(m)] = gf::mul_table(
          lambda[static_cast<std::size_t>(k)],
          gf::alpha_pow(static_cast<u32>(k) * static_cast<u32>(first - 1 + 511)));
    }
    const u32 rs1_left = consts[0] | values[0] << 9 | consts[1] << 18;
    const u32 rs2_left = values[1] | static_cast<u32>(g) << 24;
    const u32 rs1_right = consts[2] | values[2] << 9 | consts[3] << 18;
    const u32 rs2_right =
        0x10000000u | values[3] | static_cast<u32>(g) << 24;
    src << "li a0, " << rs1_left << "\nli a1, " << rs2_left
        << "\npq.mul_chien zero, a0, a1\n";
    src << "li a0, " << rs1_right << "\nli a1, " << rs2_right
        << "\npq.mul_chien zero, a0, a1\n";
  }
  // Group compute-control words (mode 2, loop bit set, group select).
  static constexpr const char* kCtrlRegs[4] = {"s2", "s3", "s4", "s5"};
  for (int g = 0; g < groups; ++g)
    src << "li " << kCtrlRegs[g] << ", "
        << (0x20000000u | 1u | static_cast<u32>(g) << 4) << "\n";
  src << "li s6, " << static_cast<u32>(lambda[0]) << "   # lambda_0\n";
  src << "li t0, " << kOutBase2 << "\nli t2, 0\nli t3, "
      << (last - first + 1) << "\n";
  src << "point_loop:\n  mv a6, s6\n";
  for (int g = 0; g < groups; ++g)
    src << "  pq.mul_chien a0, zero, " << kCtrlRegs[g]
        << "\n  xor a6, a6, a0\n";
  src << R"(  sltiu a0, a6, 1
  sb   a0, 0(t0)
  addi t0, t0, 1
  addi t2, t2, 1
  blt  t2, t3, point_loop
  ebreak
)";

  rv::Cpu cpu(1 << 20);
  cpu.set_profiler(profiler);
  const rv::Program prog = rv::assemble(src.str());
  cpu.load_words(0, prog.words);
  cpu.run();
  LACRV_CHECK_MSG(cpu.halted(), "chien kernel did not terminate");

  IssChienResult result;
  result.root_flags.resize(static_cast<std::size_t>(last - first + 1));
  for (std::size_t i = 0; i < result.root_flags.size(); ++i)
    result.root_flags[i] = cpu.read_byte(kOutBase2 + static_cast<u32>(i));
  result.cycles = cpu.cycles();
  result.instructions = cpu.instructions();
  return result;
}

}  // namespace lacrv::perf
