// The complete optimized BCH decoder as RV32 machine code: software
// syndromes (shift-and-add GF(2^9) arithmetic in assembly) and
// Berlekamp-Massey, plus the MUL CHIEN unit via pq.mul_chien for the
// root search — the exact software/hardware split of the paper's
// optimized implementation (Sec. IV-B / Table II "BCH Dec." column).
//
// This firmware validates *functionality* end to end (its corrected
// codewords must equal the C++ decoder's); its cycle count is an honest
// measurement of this particular firmware, not a calibrated model.
#pragma once

#include "bch/decoder.h"
#include "common/types.h"

namespace lacrv::perf {

struct IssBchResult {
  bch::BitVec corrected;  // codeword after in-place correction
  std::vector<gf::Element> syndromes;
  u64 cycles = 0;
  u64 instructions = 0;
};

/// Run the full decode firmware for the given code on the ISS.
IssBchResult iss_bch_decode(const bch::CodeSpec& spec,
                            const bch::BitVec& received);

}  // namespace lacrv::perf
