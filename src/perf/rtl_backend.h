// Optimized backend wired to the cycle-accurate RTL accelerator models.
//
// Backend::optimized() uses golden software models with an attached cost
// model; rtl_optimized_backend() instead drives rtl::MulTerRtl and
// rtl::ChienRtl clock by clock and charges the *observed* unit cycles
// plus the pq-instruction I/O model. Results must be bit-identical to the
// modeled backend (tests enforce this); cycle totals agree by construction
// because the RTL latencies (n, 9/pass) equal the modeled constants.
#pragma once

#include <memory>

#include "lac/backend.h"
#include "rtl/barrett_unit.h"
#include "rtl/chien_unit.h"
#include "rtl/mul_ter.h"
#include "rtl/sha256_core.h"

namespace lacrv::perf {

/// Construction injects the RTL callables of all four kernel slots
/// through the registry's KAT-gated substitution path; a failing unit is
/// benched in favour of the modeled software implementation and recorded
/// in `report` (null: silent degradation).
lac::Backend rtl_optimized_backend(DegradeReport* report = nullptr);

/// The MUL TER callable used by rtl_optimized_backend (exposed for tests
/// and benches).
poly::MulTer512 rtl_mul_ter();
/// The Chien stage driving rtl::ChienRtl (exposed for tests and benches).
bch::ChienStage rtl_chien();
/// The MOD q reduction driving rtl::BarrettRtl.
poly::ModqFn rtl_modq();

// Overloads on caller-owned units, so a harness can keep a handle to the
// physical unit (e.g. to arm a fault::FaultPlan) while the backend drives
// it through the same ISS conventions.
poly::MulTer512 rtl_mul_ter(std::shared_ptr<rtl::MulTerRtl> unit);
bch::ChienStage rtl_chien(std::shared_ptr<rtl::ChienRtl> unit);
/// Functional one-shot hasher over rtl::Sha256Rtl, for the sha256 slot
/// (Backend::with_hasher / KernelRegistry::inject_sha256).
hash::HashFn rtl_sha256(std::shared_ptr<rtl::Sha256Rtl> unit);
poly::ModqFn rtl_modq(std::shared_ptr<rtl::BarrettRtl> unit);

}  // namespace lacrv::perf
