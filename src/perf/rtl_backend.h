// Optimized backend wired to the cycle-accurate RTL accelerator models.
//
// Backend::optimized() uses golden software models with an attached cost
// model; rtl_optimized_backend() instead drives rtl::MulTerRtl and
// rtl::ChienRtl clock by clock and charges the *observed* unit cycles
// plus the pq-instruction I/O model. Results must be bit-identical to the
// modeled backend (tests enforce this); cycle totals agree by construction
// because the RTL latencies (n, 9/pass) equal the modeled constants.
#pragma once

#include "lac/backend.h"

namespace lacrv::perf {

lac::Backend rtl_optimized_backend();

/// The MUL TER callable used by rtl_optimized_backend (exposed for tests
/// and benches).
poly::MulTer512 rtl_mul_ter();
/// The Chien stage driving rtl::ChienRtl (exposed for tests and benches).
bch::ChienStage rtl_chien();

}  // namespace lacrv::perf
