#include "perf/tables.h"

#include <iomanip>

#include "common/rng.h"
#include "lac/context.h"
#include "lac/sampler.h"
#include "riscv/pq_alu.h"
#include "rtl/chien_unit.h"

#include <algorithm>
#include <functional>

namespace lacrv::perf {
namespace {

hash::Seed seed_of(u64 x) {
  hash::Seed s{};
  for (int i = 0; i < 8; ++i) s[i] = static_cast<u8>(x >> (8 * i));
  return s;
}

/// Deterministic noisy word: a valid codeword with `errors` injected bits.
bch::BitVec noisy_codeword(const bch::CodeSpec& spec, int errors, u64 seed) {
  Xoshiro256 rng(seed);
  bch::Message msg;
  rng.fill(msg.data(), msg.size());
  bch::BitVec cw = bch::encode(spec, msg);
  std::vector<int> picked;
  while (static_cast<int>(picked.size()) < errors) {
    const int pos = static_cast<int>(rng.next_below(spec.length()));
    if (std::find(picked.begin(), picked.end(), pos) == picked.end()) {
      picked.push_back(pos);
      cw[pos] ^= 1;
    }
  }
  return cw;
}

Table1Row table1_row_for(const bch::CodeSpec& spec, const std::string& scheme,
                         bch::Flavor flavor, int errors, u64 paper_decode) {
  const bch::BitVec word = noisy_codeword(spec, errors, 77 + errors);
  CycleLedger ledger;
  bch::decode(spec, word, flavor, &ledger);
  return {scheme,
          errors,
          ledger.section("bch_syndrome"),
          ledger.section("bch_error_loc"),
          ledger.section("bch_chien"),
          ledger.total(),
          paper_decode};
}

Table1Row table1_row(const std::string& scheme, bch::Flavor flavor,
                     int errors, u64 paper_decode) {
  return table1_row_for(bch::CodeSpec::bch_511_367_16(), scheme, flavor,
                        errors, paper_decode);
}

u64 with_ledger(const std::function<void(CycleLedger*)>& fn) {
  CycleLedger ledger;
  fn(&ledger);
  return ledger.total();
}

struct MeasuredConfig {
  u64 keygen, encaps, decaps, gen_a, sample, mult, bch_dec;
  u64 encaps_amortized, decaps_amortized, context_build;
};

MeasuredConfig measure(const lac::Params& params, const lac::Backend& backend) {
  MeasuredConfig m{};
  const hash::Seed master = seed_of(4242);
  // Full protocol runs.
  CycleLedger kg_ledger;
  const lac::KemKeyPair keys =
      lac::kem_keygen(params, backend, master, &kg_ledger);
  m.keygen = kg_ledger.total();

  CycleLedger enc_ledger;
  const lac::EncapsResult enc =
      lac::encapsulate(params, backend, keys.pk, seed_of(99), &enc_ledger);
  m.encaps = enc_ledger.total();

  CycleLedger dec_ledger;
  lac::decapsulate(params, backend, keys, enc.ct, &dec_ledger);
  m.decaps = dec_ledger.total();

  // Amortized-context runs: same operations through a prebuilt
  // KeyContext. The paper-faithful numbers above are untouched; these
  // satisfy op == op_amortized + context_build by construction.
  const lac::KeyContext ctx = lac::build_kem_context(params, backend, keys);
  m.context_build = ctx.build_cycles;
  CycleLedger enc_am;
  lac::encapsulate(params, backend, ctx, seed_of(99), &enc_am);
  m.encaps_amortized = enc_am.total();
  CycleLedger dec_am;
  lac::decapsulate(params, backend, ctx, enc.ct, &dec_am);
  m.decaps_amortized = dec_am.total();

  // Per-call bottleneck kernels (Table II's right-hand columns).
  m.gen_a = with_ledger([&](CycleLedger* ledger) {
    lac::gen_a(keys.pk.seed_a, params, backend.hash_impl, ledger);
  });
  m.sample = with_ledger([&](CycleLedger* ledger) {
    lac::sample_fixed_weight(seed_of(7), params, backend.hash_impl, ledger);
  });
  const poly::Coeffs a = lac::gen_a(keys.pk.seed_a, params);
  m.mult = with_ledger([&](CycleLedger* ledger) {
    if (backend.kind == lac::Backend::Kind::kOptimized)
      poly::mul_with_unit(keys.sk.s, a, backend.mul_unit, ledger);
    else
      poly::mul_ref(a, keys.sk.s, true, ledger);
  });
  m.bch_dec = with_ledger([&](CycleLedger* ledger) {
    const bch::BitVec word = noisy_codeword(*params.code, 0, 55);
    if (backend.chien)
      bch::decode_with_chien(*params.code, word, backend.bch_flavor,
                             backend.chien, ledger);
    else
      bch::decode(*params.code, word, backend.bch_flavor, ledger);
  });
  return m;
}

void format_row(std::ostream& os, const std::string& label, u64 value,
                std::optional<u64> paper) {
  os << "  " << std::left << std::setw(16) << label << std::right
     << std::setw(12) << value;
  if (paper) {
    const double err =
        100.0 * (static_cast<double>(value) - static_cast<double>(*paper)) /
        static_cast<double>(*paper);
    os << "   paper " << std::setw(12) << *paper << "  (" << std::showpos
       << std::fixed << std::setprecision(1) << err << "%" << std::noshowpos
       << ")";
  }
  os << "\n";
}

}  // namespace

std::vector<Table1Row> table1() {
  return {
      table1_row("LAC Subm.", bch::Flavor::kSubmission, 0, 171522),
      table1_row("LAC Subm.", bch::Flavor::kSubmission, 16, 179798),
      table1_row("Walters et al.", bch::Flavor::kConstantTime, 0, 514169),
      table1_row("Walters et al.", bch::Flavor::kConstantTime, 16, 514428),
  };
}

std::vector<Table1Row> table1_t8() {
  const bch::CodeSpec& spec = bch::CodeSpec::bch_511_439_8();
  return {
      table1_row_for(spec, "LAC Subm.", bch::Flavor::kSubmission, 0, 0),
      table1_row_for(spec, "LAC Subm.", bch::Flavor::kSubmission, 8, 0),
      table1_row_for(spec, "Walters et al.", bch::Flavor::kConstantTime, 0,
                     0),
      table1_row_for(spec, "Walters et al.", bch::Flavor::kConstantTime, 8,
                     0),
  };
}

void print_table1(std::ostream& os, const std::vector<Table1Row>& rows) {
  os << "Cycle count BCH decoding on RISC-V\n";
  os << std::left << std::setw(16) << "Scheme" << std::setw(7) << "Fails"
     << std::right << std::setw(10) << "Syndr." << std::setw(12)
     << "Error Loc." << std::setw(10) << "Chien" << std::setw(10) << "Decode"
     << std::setw(14) << "paper" << std::setw(9) << "dev%" << "\n";
  for (const auto& r : rows) {
    os << std::left << std::setw(16) << r.scheme << std::setw(7) << r.fails
       << std::right << std::setw(10) << r.syndrome << std::setw(12)
       << r.error_loc << std::setw(10) << r.chien << std::setw(10)
       << r.decode;
    if (r.paper_decode != 0) {
      const double err = 100.0 *
                         (static_cast<double>(r.decode) -
                          static_cast<double>(r.paper_decode)) /
                         static_cast<double>(r.paper_decode);
      os << std::setw(14) << r.paper_decode << std::setw(8) << std::showpos
         << std::fixed << std::setprecision(1) << err << "%" << std::noshowpos;
    } else {
      os << std::setw(22) << "(extension)";
    }
    os << "\n";
  }
}

Table2Row table2_row(const lac::Params& params, const lac::Backend& backend,
                     const std::string& scheme) {
  const MeasuredConfig m = measure(params, backend);
  Table2Row row;
  row.scheme = scheme;
  row.device = "RISC-V";
  row.keygen = m.keygen;
  row.encaps = m.encaps;
  row.decaps = m.decaps;
  row.gen_a = m.gen_a;
  row.sample_poly = m.sample;
  row.mult = m.mult;
  row.bch_dec = m.bch_dec;
  row.encaps_amortized = m.encaps_amortized;
  row.decaps_amortized = m.decaps_amortized;
  row.context_build = m.context_build;
  return row;
}

std::vector<Table2Row> table2() {
  std::vector<Table2Row> rows;
  // External baselines quoted by the paper.
  rows.push_back({"LAC-128 ref. [4]", "ARM Cortex-M4", "CCA (I)", 2266368,
                  3979851, 6303717, 0, 0, 0, 0, 0, 0, 0, true, std::nullopt});
  rows.push_back({"LAC-192 ref. [4]", "ARM Cortex-M4", "CCA (III)", 7532180,
                  9986506, 17452435, 0, 0, 0, 0, 0, 0, 0, true, std::nullopt});
  rows.push_back({"LAC-256 ref. [4]", "ARM Cortex-M4", "CCA (V)", 7665769,
                  13533851, 21125257, 0, 0, 0, 0, 0, 0, 0, true, std::nullopt});

  struct Config {
    const char* suffix;
    lac::Backend backend;
    std::array<std::array<u64, 7>, 3> paper;  // per level: kg,enc,dec,genA,sample,mult,bch
  };
  const std::array<Config, 3> configs = {
      Config{"ref.", lac::Backend::reference(),
             {{{2980721, 4969233, 7544632, 159097, 190173, 2381843, 161514},
               {10162116, 13388940, 22984529, 287609, 165092, 9482261, 78584},
               {10516000, 18165942, 27879782, 287736, 344541, 9482263,
                171622}}}},
      Config{"const. BCH", lac::Backend::reference_const_bch(),
             {{{2981055, 4969238, 7897403, 159192, 190256, 2381843, 514280},
               {10162502, 13388952, 23126138, 287736, 165185, 9482261,
                220181},
               {10515588, 18165040, 28220945, 287609, 344436, 9482263,
                513687}}}},
      Config{"opt.", lac::Backend::optimized(),
             {{{542814, 640237, 839132, 154746, 159134, 6390, 160295},
               {816635, 1086148, 1324014, 282264, 156320, 151354, 52142},
               {1086252, 1388366, 1759756, 282264, 291007, 151355,
                160296}}}}};

  const std::array<const lac::Params*, 3> levels = lac::Params::all();
  const std::array<const char*, 3> cats = {"CCA (I)", "CCA (III)", "CCA (V)"};
  for (const Config& config : configs) {
    for (std::size_t i = 0; i < levels.size(); ++i) {
      Table2Row row =
          table2_row(*levels[i], config.backend,
                     std::string(levels[i]->name) + " " + config.suffix);
      row.security = cats[i];
      row.paper = {{config.paper[i][0], config.paper[i][1],
                    config.paper[i][2]}};
      rows.push_back(std::move(row));
    }
  }

  rows.push_back({"NewHope opt. [8]", "RISC-V", "CPA (V)", 357052, 589285,
                  167647, 42050, 75682, 73827, 0, 0, 0, 0, true, std::nullopt});
  return rows;
}

void print_table2(std::ostream& os, const std::vector<Table2Row>& rows) {
  os << "Table II — cycle counts for the key encapsulation and "
        "performance bottlenecks\n";
  for (const auto& r : rows) {
    os << (r.external ? "[quoted] " : "") << r.scheme << " (" << r.device
       << ", " << r.security << ")\n";
    format_row(os, "Key-Generation", r.keygen,
               r.paper ? std::optional<u64>((*r.paper)[0]) : std::nullopt);
    format_row(os, "Encapsulation", r.encaps,
               r.paper ? std::optional<u64>((*r.paper)[1]) : std::nullopt);
    format_row(os, "Decapsulation", r.decaps,
               r.paper ? std::optional<u64>((*r.paper)[2]) : std::nullopt);
    if (r.gen_a || r.sample_poly || r.mult || r.bch_dec) {
      format_row(os, "GenA", r.gen_a, std::nullopt);
      format_row(os, "Sample poly", r.sample_poly, std::nullopt);
      format_row(os, "Multiplication", r.mult, std::nullopt);
      if (r.bch_dec) format_row(os, "BCH Dec.", r.bch_dec, std::nullopt);
    }
    if (r.context_build) {
      // Amortized view (not in the paper): per-op cycles once the key's
      // GenA + H(pk) live in a one-time context build.
      format_row(os, "Context build", r.context_build, std::nullopt);
      format_row(os, "Encaps (warm)", r.encaps_amortized, std::nullopt);
      format_row(os, "Decaps (warm)", r.decaps_amortized, std::nullopt);
    }
  }
}

Speedups headline_speedups(const std::vector<Table2Row>& rows) {
  const auto total_of = [&](const std::string& scheme) -> double {
    for (const auto& r : rows)
      if (r.scheme == scheme)
        return static_cast<double>(r.keygen + r.encaps + r.decaps);
    return 0;
  };
  return {total_of("LAC-128 ref.") / total_of("LAC-128 opt."),
          total_of("LAC-192 ref.") / total_of("LAC-192 opt."),
          total_of("LAC-256 ref.") / total_of("LAC-256 opt.")};
}

std::vector<Table3Row> table3() {
  rv::PqAlu alu;
  std::vector<Table3Row> rows;
  rows.push_back({rtl::pulpino_peripherals(), true, {{8769, 7369, 32, 0}}});

  const rtl::AreaReport pq = alu.area();
  rtl::AreaReport core = rtl::riscy_base_core();
  core += pq;
  core.name = "RISC-V core total";
  rows.push_back({core, false, {{53819, 13928, 0, 10}}});
  rows.push_back({alu.mul_ter().area(), false, {{31465, 9305, 0, 0}}});
  rows.push_back({rtl::ChienRtl().area(), false, {{86, 158, 0, 0}}});
  rows.push_back({alu.sha256().area(), false, {{1031, 1556, 0, 0}}});
  rows.push_back({alu.barrett().area(), false, {{35, 0, 0, 2}}});
  rows.push_back(
      {rtl::AreaReport{"NTT accelerator [8]", 886, 618, 1, 26}, true,
       std::nullopt});
  rows.push_back(
      {rtl::AreaReport{"Keccak accelerator [8]", 10435, 4225, 0, 0}, true,
       std::nullopt});
  return rows;
}

void print_table3(std::ostream& os, const std::vector<Table3Row>& rows) {
  os << "Table III — resource utilization\n";
  os << std::left << std::setw(28) << "Component" << std::right
     << std::setw(8) << "LUTs" << std::setw(11) << "Registers" << std::setw(7)
     << "BRAMs" << std::setw(6) << "DSPs" << "   (paper LUT/FF)\n";
  for (const auto& r : rows) {
    os << std::left << std::setw(28)
       << ((r.external ? "[quoted] " : "") + r.area.name) << std::right
       << std::setw(8) << r.area.luts << std::setw(11) << r.area.registers
       << std::setw(7) << r.area.brams << std::setw(6) << r.area.dsps;
    if (r.paper)
      os << "   " << (*r.paper)[0] << "/" << (*r.paper)[1];
    os << "\n";
  }
}

}  // namespace lacrv::perf
