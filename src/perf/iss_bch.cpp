#include "perf/iss_bch.h"

#include <sstream>

#include "common/check.h"
#include "riscv/assembler.h"
#include "riscv/cpu.h"

namespace lacrv::perf {
namespace {

// Memory map of the decode firmware.
constexpr u32 kWord = 0x30000;     // received bits, one byte each
constexpr u32 kAlphaJ = 0x31000;   // alpha^j, j = 1..2t (halfwords)
constexpr u32 kSynd = 0x31100;     // syndromes S_1..S_2t (halfwords)
constexpr u32 kLam = 0x31200;      // lambda[0..t] (halfwords)
constexpr u32 kBArr = 0x31300;     // BM helper B[0..t]
constexpr u32 kNext = 0x31400;     // BM next-lambda scratch
constexpr u32 kAlphaK = 0x31500;   // alpha^k, k = 1..t (halfwords)
constexpr u32 kAlphaKF = 0x31600;  // alpha^(k*first), k = 1..t

/// gf_mul subroutine: a0 * a1 -> a0 via 9 shift-and-add steps (the same
/// dataflow as MUL GF, in software). Clobbers a2, t5, t6.
constexpr const char* kGfMulSub = R"(
  gf_mul:
    li   t5, 9
    li   a2, 0
  gm_loop:
    slli a2, a2, 1
    srli t6, a2, 9
    andi t6, t6, 1
    neg  t6, t6
    andi t6, t6, 0x11
    xor  a2, a2, t6
    andi a2, a2, 511
    addi t5, t5, -1
    srl  t6, a1, t5
    andi t6, t6, 1
    neg  t6, t6
    and  t6, t6, a0
    xor  a2, a2, t6
    bne  t5, zero, gm_loop
    mv   a0, a2
    ret
)";

std::string decode_firmware(const bch::CodeSpec& spec) {
  const int t = spec.t;
  const int two_t = 2 * t;
  const int length = spec.length();
  const int groups = t / 4;

  std::ostringstream src;
  src << "  j main\n" << kGfMulSub << "\nmain:\n";

  // ---- syndromes: S_j = Horner_{i=L-1..0}(acc * alpha^j ^ r_i) ----------
  src << R"(
    li   s0, 1              # j
    li   s1, )" << two_t << R"(
  synd_outer:
    slli t0, s0, 1
    li   t1, )" << (kAlphaJ - 2) << R"(
    add  t1, t1, t0
    lhu  s2, 0(t1)          # alpha^j
    li   s3, 0              # acc
    li   s4, )" << (length - 1) << R"(
    li   s5, )" << kWord << R"(
  synd_inner:
    mv   a0, s3
    mv   a1, s2
    call gf_mul
    mv   s3, a0
    add  t1, s5, s4
    lbu  t2, 0(t1)
    xor  s3, s3, t2
    addi s4, s4, -1
    bge  s4, zero, synd_inner
    # store S_j
    slli t0, s0, 1
    li   t1, )" << (kSynd - 2) << R"(
    add  t1, t1, t0
    sh   s3, 0(t1)
    addi s0, s0, 1
    bge  s1, s0, synd_outer
)";

  // ---- Berlekamp-Massey (inversion-free): lambda' = b*lambda + d*x^m*B --
  src << R"(
    # init: lambda[0] = B[0] = 1, rest 0
    li   t0, )" << kLam << R"(
    li   t1, )" << kBArr << R"(
    li   t2, 1
    sh   t2, 0(t0)
    sh   t2, 0(t1)
    li   t3, 1
  bm_clear:
    slli t4, t3, 1
    add  t5, t0, t4
    sh   zero, 0(t5)
    add  t5, t1, t4
    sh   zero, 0(t5)
    addi t3, t3, 1
    li   t4, )" << t << R"(
    bge  t4, t3, bm_clear
    li   s0, 0              # L
    li   s1, 1              # m
    li   s2, 1              # b
    li   s3, 0              # r
  bm_iter:
    # d = sum_{i=0..L} lambda[i]*S[r-i]  (lambda[0] != 1 in general:
    # the inversion-free updates scale the whole polynomial)
    li   s4, 0              # d
    li   s5, 0              # i
  bm_disc:
    blt  s0, s5, bm_disc_done
    slli t0, s5, 1
    li   t1, )" << kLam << R"(
    add  t1, t1, t0
    lhu  a0, 0(t1)
    sub  t2, s3, s5
    slli t2, t2, 1
    li   t1, )" << kSynd << R"(
    add  t1, t1, t2
    lhu  a1, 0(t1)
    call gf_mul
    xor  s4, s4, a0
    addi s5, s5, 1
    j    bm_disc
  bm_disc_done:
    # NEXT[i] = gf_mul(b, lambda[i]) ^ (i >= m ? gf_mul(d, B[i-m]) : 0)
    li   s5, 0
  bm_next:
    slli t0, s5, 1
    li   t1, )" << kLam << R"(
    add  t1, t1, t0
    lhu  a1, 0(t1)
    mv   a0, s2
    call gf_mul
    mv   s6, a0
    blt  s5, s1, bm_next_store    # i < m: no B term
    sub  t2, s5, s1
    slli t2, t2, 1
    li   t1, )" << kBArr << R"(
    add  t1, t1, t2
    lhu  a1, 0(t1)
    mv   a0, s4
    call gf_mul
    xor  s6, s6, a0
  bm_next_store:
    slli t0, s5, 1
    li   t1, )" << kNext << R"(
    add  t1, t1, t0
    sh   s6, 0(t1)
    addi s5, s5, 1
    li   t2, )" << t << R"(
    bge  t2, s5, bm_next
    # state update: if d != 0 and 2L <= r: B <- lambda, L <- r+1-L, b <- d, m <- 1
    beq  s4, zero, bm_no_step
    slli t0, s0, 1
    blt  s3, t0, bm_no_step
    # copy lambda -> B
    li   s5, 0
  bm_copy:
    slli t0, s5, 1
    li   t1, )" << kLam << R"(
    add  t1, t1, t0
    lhu  t2, 0(t1)
    li   t1, )" << kBArr << R"(
    add  t1, t1, t0
    sh   t2, 0(t1)
    addi s5, s5, 1
    li   t2, )" << t << R"(
    bge  t2, s5, bm_copy
    addi t0, s3, 1
    sub  s0, t0, s0         # L = r+1-L
    mv   s2, s4             # b = d
    li   s1, 1              # m = 1
    j    bm_lam
  bm_no_step:
    addi s1, s1, 1
  bm_lam:
    # lambda <- NEXT
    li   s5, 0
  bm_lamcpy:
    slli t0, s5, 1
    li   t1, )" << kNext << R"(
    add  t1, t1, t0
    lhu  t2, 0(t1)
    li   t1, )" << kLam << R"(
    add  t1, t1, t0
    sh   t2, 0(t1)
    addi s5, s5, 1
    li   t2, )" << t << R"(
    bge  t2, s5, bm_lamcpy
    addi s3, s3, 1
    li   t0, )" << (two_t - 1) << R"(
    bge  t0, s3, bm_iter
)";

  // ---- Chien via pq.mul_chien ------------------------------------------
  // Load the groups: per lane k, value = gf_mul(lambda[k], alpha^(k*first)).
  for (int g = 0; g < groups; ++g) {
    // compute four lane values into s4..s7
    for (int m = 0; m < 4; ++m) {
      const int k = 4 * g + m + 1;
      src << "  li t1, " << (kLam + 2 * k) << "\n  lhu a0, 0(t1)\n";
      src << "  li t1, " << (kAlphaKF + 2 * (k - 1)) << "\n  lhu a1, 0(t1)\n";
      src << "  call gf_mul\n  mv s" << (4 + m) << ", a0\n";
    }
    // pack and issue LOAD_LEFT / LOAD_RIGHT
    for (int half = 0; half < 2; ++half) {
      const int k0 = 4 * g + 2 * half + 1;
      src << "  li t1, " << (kAlphaK + 2 * (k0 - 1)) << "\n  lhu a0, 0(t1)\n";
      src << "  slli t2, s" << (4 + 2 * half) << ", 9\n  or a0, a0, t2\n";
      src << "  li t1, " << (kAlphaK + 2 * k0) << "\n  lhu t2, 0(t1)\n";
      src << "  slli t2, t2, 18\n  or a0, a0, t2\n";
      src << "  li a1, " << ((half == 1 ? 0x10000000u : 0u) |
                             static_cast<u32>(g) << 24) << "\n";
      src << "  or a1, a1, s" << (5 + 2 * half) << "\n";
      src << "  pq.mul_chien zero, a0, a1\n";
    }
  }
  // compute-control words in s4..s7 (loop bit set)
  static constexpr const char* kCtrl[4] = {"s4", "s5", "s6", "s7"};
  for (int g = 0; g < groups; ++g)
    src << "  li " << kCtrl[g] << ", "
        << (0x20000000u | 1u | static_cast<u32>(g) << 4) << "\n";
  src << "  li t1, " << kLam << "\n  lhu s8, 0(t1)   # lambda_0\n";
  src << "  li s9, " << spec.chien_first << "      # l\n";
  src << "  li s10, " << spec.chien_last << "\n";
  src << "point_loop:\n  mv a6, s8\n";
  for (int g = 0; g < groups; ++g)
    src << "  pq.mul_chien a0, zero, " << kCtrl[g]
        << "\n  xor a6, a6, a0\n";
  src << R"(  bne  a6, zero, not_root
    # root at alpha^l -> error at degree 511 - l
    li   t0, 511
    sub  t0, t0, s9
    li   t1, )" << length << R"(
    bge  t0, t1, not_root
    li   t1, )" << kWord << R"(
    add  t1, t1, t0
    lbu  t2, 0(t1)
    xori t2, t2, 1
    sb   t2, 0(t1)
  not_root:
    addi s9, s9, 1
    bge  s10, s9, point_loop
    ebreak
)";
  return src.str();
}

}  // namespace

IssBchResult iss_bch_decode(const bch::CodeSpec& spec,
                            const bch::BitVec& received) {
  LACRV_CHECK(static_cast<int>(received.size()) == spec.length());
  LACRV_CHECK_MSG(spec.t % 4 == 0, "firmware assumes t multiple of 4");

  rv::Cpu cpu(1 << 20);
  const rv::Program prog = rv::assemble(decode_firmware(spec));
  cpu.load_words(0, prog.words);

  cpu.load_bytes(kWord, received);
  // constant tables (firmware data the toolchain would bake in)
  Bytes alpha_j(2 * static_cast<std::size_t>(2 * spec.t));
  for (int j = 1; j <= 2 * spec.t; ++j) {
    const gf::Element v = gf::alpha_pow(static_cast<u32>(j));
    alpha_j[2 * static_cast<std::size_t>(j - 1)] = static_cast<u8>(v);
    alpha_j[2 * static_cast<std::size_t>(j - 1) + 1] = static_cast<u8>(v >> 8);
  }
  cpu.load_bytes(kAlphaJ, alpha_j);
  Bytes alpha_k(2 * static_cast<std::size_t>(spec.t)),
      alpha_kf(2 * static_cast<std::size_t>(spec.t));
  for (int k = 1; k <= spec.t; ++k) {
    const gf::Element ak = gf::alpha_pow(static_cast<u32>(k));
    // The compute-with-loop issue multiplies by alpha^k *before* the
    // first readout, so lanes are pre-positioned one exponent early.
    const gf::Element akf = gf::alpha_pow(
        static_cast<u32>(k) * static_cast<u32>(spec.chien_first - 1));
    alpha_k[2 * static_cast<std::size_t>(k - 1)] = static_cast<u8>(ak);
    alpha_k[2 * static_cast<std::size_t>(k - 1) + 1] = static_cast<u8>(ak >> 8);
    alpha_kf[2 * static_cast<std::size_t>(k - 1)] = static_cast<u8>(akf);
    alpha_kf[2 * static_cast<std::size_t>(k - 1) + 1] =
        static_cast<u8>(akf >> 8);
  }
  cpu.load_bytes(kAlphaK, alpha_k);
  cpu.load_bytes(kAlphaKF, alpha_kf);

  cpu.run(50'000'000);
  LACRV_CHECK_MSG(cpu.halted(), "decode firmware did not terminate");

  IssBchResult result;
  result.corrected.resize(received.size());
  for (std::size_t i = 0; i < received.size(); ++i)
    result.corrected[i] = cpu.read_byte(kWord + static_cast<u32>(i));
  result.syndromes.resize(static_cast<std::size_t>(2 * spec.t));
  for (int j = 0; j < 2 * spec.t; ++j)
    result.syndromes[static_cast<std::size_t>(j)] = static_cast<gf::Element>(
        cpu.read_byte(kSynd + static_cast<u32>(2 * j)) |
        cpu.read_byte(kSynd + static_cast<u32>(2 * j + 1)) << 8);
  result.cycles = cpu.cycles();
  result.instructions = cpu.instructions();
  return result;
}

}  // namespace lacrv::perf
