// Kernels executed as real machine code on the RV32IM ISS with the PQ
// extension — ground truth for the instruction-level cost model. The
// assembly performs the software's share of the work exactly as Sec. V
// describes it: packing five general + five ternary coefficients per
// pq.mul_ter issue, starting the unit, and unpacking four result
// coefficients per read.
#pragma once

#include "common/types.h"
#include "gf/gf512.h"
#include "poly/ring.h"

namespace lacrv::rv {
class IssProfiler;
}  // namespace lacrv::rv

namespace lacrv::perf {

struct IssRunResult {
  poly::Coeffs result;
  u64 cycles = 0;
  u64 instructions = 0;
};

// Every kernel takes an optional profiler: when non-null it is attached
// to the ISS for the run, attributing retired cycles per PC and per
// opcode class (see riscv/profiler.h).

/// Full length-512 negacyclic (or cyclic) multiplication on the ISS via
/// pq.mul_ter: load 103 packed chunks, start, read back 128 chunks.
IssRunResult iss_mul_ter(const poly::Ternary& a, const poly::Coeffs& b,
                         bool negacyclic, rv::IssProfiler* profiler = nullptr);

/// Reduce each 16-bit input word modulo 251 via pq.modq in a loop.
IssRunResult iss_modq(const std::vector<u16>& values,
                      rv::IssProfiler* profiler = nullptr);

/// GenA on the ISS: expand a 32-byte seed into `count` uniform
/// coefficients below q through pq.sha256 (counter-mode blocks, software
/// rejection sampling) — must agree byte-for-byte with lac::gen_a.
IssRunResult iss_gen_a(const std::array<u8, 32>& seed, std::size_t count,
                       rv::IssProfiler* profiler = nullptr);

/// The full optimized n=1024 multiplication (LAC-192/256) as machine
/// code: Algorithms 1 and 2 drive sixteen length-256 cyclic convolutions
/// on the MUL TER unit and recombine with pq.modq — the complete software
/// side of the paper's "Multiplication 151,354 cycles" Table II cell.
IssRunResult iss_split_mul_1024(const poly::Ternary& a, const poly::Coeffs& b,
                                rv::IssProfiler* profiler = nullptr);

struct IssChienResult {
  /// One flag per scanned exponent: 1 iff Lambda(alpha^l) == 0.
  std::vector<u8> root_flags;
  u64 cycles = 0;
  u64 instructions = 0;
};

/// Full Chien window scan via pq.mul_chien: software preloads the lane
/// values (lambda_k * alpha^(first*k)) into the unit's groups, then each
/// point costs one compute issue per group with the loop-feedback bit set
/// (Sec. V's three operation modes). lambda has t+1 coefficients with t
/// in {8, 16}; the window is [first, last].
IssChienResult iss_chien(std::span<const gf::Element> lambda, int first,
                         int last, rv::IssProfiler* profiler = nullptr);

/// The assembly source of the mul_ter kernel (exposed so examples can
/// show and disassemble it).
std::string mul_ter_kernel_source(bool negacyclic);

}  // namespace lacrv::perf
