// Regeneration of the paper's evaluation tables.
//
// Each function runs the corresponding experiment on the timing-annotated
// implementations and returns structured rows; print_* renders them in the
// paper's layout next to the paper's reported values so the bench binaries
// double as the EXPERIMENTS.md evidence. Rows marked `external` quote
// numbers the paper itself quotes (ARM Cortex-M4 from pqm4 [4], the
// NewHope co-design [8]) — they are baselines the paper did not build
// either.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "lac/kem.h"
#include "rtl/area.h"

namespace lacrv::perf {

// ---- Table I: BCH(511,367,16) decoder cycle counts -------------------------
struct Table1Row {
  std::string scheme;  // "LAC Subm." / "Walters et al."
  int fails;
  u64 syndrome, error_loc, chien, decode;
  /// The paper's reported "Decode" value for this row (for comparison).
  u64 paper_decode;
};
std::vector<Table1Row> table1();
/// Extension beyond the paper: the same experiment for LAC-192's
/// BCH(511,439,8) code (the paper only tabulates t=16). paper_decode
/// carries 0 for these rows.
std::vector<Table1Row> table1_t8();
void print_table1(std::ostream& os, const std::vector<Table1Row>& rows);

// ---- Table II: KEM cycle counts --------------------------------------------
struct Table2Row {
  std::string scheme, device, security;
  u64 keygen = 0, encaps = 0, decaps = 0;
  // per-call bottleneck kernels (0 = not reported by the source row)
  u64 gen_a = 0, sample_poly = 0, mult = 0, bch_dec = 0;
  // Amortized-context columns (lac/context.h): per-op cycles once the
  // key's GenA expansion and H(pk) are hoisted into a one-time
  // context_build. Invariant: encaps == encaps_amortized + context_build
  // (same for decaps). 0 on external rows; the paper-faithful columns
  // above are unaffected.
  u64 encaps_amortized = 0, decaps_amortized = 0, context_build = 0;
  bool external = false;
  /// Paper values for keygen/encaps/decaps when the row reproduces a
  /// measured configuration.
  std::optional<std::array<u64, 3>> paper;
};
std::vector<Table2Row> table2();
void print_table2(std::ostream& os, const std::vector<Table2Row>& rows);

/// One measured Table II row for an arbitrary backend profile — e.g. a
/// per-slot implementation mix built through lac::KernelRegistry (the
/// --mix flag of bench/table2_kem_cycles). Same measurement harness as
/// table2(); `scheme` becomes the row label, security and paper columns
/// are left for the caller.
Table2Row table2_row(const lac::Params& params, const lac::Backend& backend,
                     const std::string& scheme);

/// Headline speedups (abstract): opt vs unprotected reference over
/// KeyGen + Encaps + Decaps. Paper: 7.66 / 14.42 / 13.36.
struct Speedups {
  double lac128, lac192, lac256;
};
Speedups headline_speedups(const std::vector<Table2Row>& rows);

// ---- Table III: resource utilization ---------------------------------------
struct Table3Row {
  rtl::AreaReport area;
  bool external = false;  // quoted row (platform baseline / NewHope [8])
  /// Paper values {LUT, FF, BRAM, DSP} for comparison, when applicable.
  std::optional<std::array<u64, 4>> paper;
};
std::vector<Table3Row> table3();
void print_table3(std::ostream& os, const std::vector<Table3Row>& rows);

}  // namespace lacrv::perf
