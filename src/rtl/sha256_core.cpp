#include "rtl/sha256_core.h"

#include "common/check.h"
#include "obs/trace.h"

namespace lacrv::rtl {
namespace {

constexpr std::array<u32, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr u32 rotr(u32 x, int n) { return (x >> n) | (x << (32 - n)); }

}  // namespace

void Sha256Rtl::reset_state() {
  state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  busy_ = false;
  round_ = 0;
}

void Sha256Rtl::load_byte(std::size_t offset, u8 value) {
  LACRV_CHECK(offset < block_.size());
  LACRV_CHECK_MSG(!busy_, "block write while compressing");
  block_[offset] = value;
}

void Sha256Rtl::start() {
  LACRV_CHECK_MSG(!busy_, "start while busy");
  for (int t = 0; t < 16; ++t) schedule_[t] = load_be32(&block_[4 * t]);
  working_ = state_;
  round_ = 0;
  busy_ = true;
}

void Sha256Rtl::tick() {
  ++cycles_;
  if (!busy_) return;
  FaultEdit edit;
  const bool faulted = fault_.consult(cycles_, &edit);
  if (faulted && edit.kind == FaultKind::kCycleSkew && round_ < 64) {
    // Swallowed edge: the round counter advances but the datapath does
    // not compute — one compression round is dropped.
    ++round_;
    return;
  }
  if (round_ < 64) {
    // One SHA-256 round per clock; the message schedule advances through
    // a 16-word rolling window in the same cycle.
    u32& a = working_[0];
    u32& e = working_[4];
    const u32 w = schedule_[round_ % 16];
    const u32 s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const u32 ch = (e & working_[5]) ^ (~e & working_[6]);
    const u32 t1 = working_[7] + s1 + ch + kK[round_] + w;
    const u32 s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const u32 maj = (a & working_[1]) ^ (a & working_[2]) ^
                    (working_[1] & working_[2]);
    const u32 t2 = s0 + maj;
    // schedule extension for round_ + 16
    const u32 w15 = schedule_[(round_ + 1) % 16];
    const u32 w2 = schedule_[(round_ + 14) % 16];
    const u32 sig0 = rotr(w15, 7) ^ rotr(w15, 18) ^ (w15 >> 3);
    const u32 sig1 = rotr(w2, 17) ^ rotr(w2, 19) ^ (w2 >> 10);
    schedule_[round_ % 16] =
        schedule_[round_ % 16] + sig0 + schedule_[(round_ + 9) % 16] + sig1;

    for (int i = 7; i > 0; --i) working_[i] = working_[i - 1];
    working_[4] += t1;  // e <- (old) d + t1; the shift moved d into slot 4
    working_[0] = t1 + t2;
    if (faulted && edit.kind != FaultKind::kCycleSkew) {
      u32& reg = working_[edit.lane % working_.size()];
      const u32 mask = 1u << (edit.bit % 32);
      switch (edit.kind) {
        case FaultKind::kBitFlip: reg ^= mask; break;
        case FaultKind::kStuckAtZero: reg &= ~mask; break;
        case FaultKind::kStuckAtOne: reg |= mask; break;
        case FaultKind::kCycleSkew: break;
      }
    }
    ++round_;
  } else {
    // state-update cycle: H <- H + working
    for (int i = 0; i < 8; ++i) state_[i] += working_[i];
    busy_ = false;
  }
}

u64 Sha256Rtl::run_to_completion() {
  // Busy window of one block compression (64 rounds + state update).
  obs::TraceSpan span("sha256.busy", "rtl");
  u64 ticks = 0;
  while (busy_) {
    tick();
    ++ticks;
  }
  span.arg("cycles", ticks);
  return ticks;
}

u8 Sha256Rtl::read_digest_byte(std::size_t idx) const {
  LACRV_CHECK(idx < 32);
  LACRV_CHECK_MSG(!busy_, "digest read while compressing");
  return static_cast<u8>(state_[idx / 4] >> (24 - 8 * (idx % 4)));
}

AreaReport Sha256Rtl::area() const {
  AreaReport report;
  report.name = "SHA256";
  // working (256) + rolling schedule (512) + chaining state (256) +
  // block staging buffer (512) + round counter / FSM (20).
  report.registers = 256 + 512 + 256 + 512 + 20;
  report.luts = kLutsSha256Core + 21;  // round datapath + control decode
  return report;
}

hash::Digest Sha256Rtl::hash_message(ByteView message) {
  obs::TraceSpan span("sha256.hash_message", "rtl");
  span.arg("bytes", static_cast<u64>(message.size()));
  const u64 cycles_before = cycles_;
  reset_state();
  // FIPS padding in software: 0x80, zeros, 64-bit big-endian bit length.
  Bytes padded(message.begin(), message.end());
  const u64 bits = static_cast<u64>(message.size()) * 8;
  padded.push_back(0x80);
  while (padded.size() % 64 != 56) padded.push_back(0);
  for (int i = 7; i >= 0; --i) padded.push_back(static_cast<u8>(bits >> (8 * i)));

  for (std::size_t off = 0; off < padded.size(); off += 64) {
    for (std::size_t i = 0; i < 64; ++i) load_byte(i, padded[off + i]);
    start();
    run_to_completion();
  }
  hash::Digest digest;
  for (std::size_t i = 0; i < digest.size(); ++i)
    digest[i] = read_digest_byte(i);
  span.arg("cycles", cycles_ - cycles_before);
  return digest;
}

}  // namespace lacrv::rtl
