// Cycle-accurate model of the MUL TER unit (Fig. 2).
//
// Architecture: n result registers c_0..c_{n-1} (8 bit), n Modular
// Arithmetic Units (add / subtract / forward mod q), per-MAU multiplexers
// selecting a_i or -a_i for the negative wrapped convolution, and a
// control unit that serialises one ternary coefficient per clock cycle
// (a_0 first). After exactly n clock cycles the registers hold
// c = a * b mod (x^n -+ 1).
//
// Per-cycle register update (derived from the rotate-and-accumulate
// schedule of the Liu/Wu NTRU multiplier the paper extends):
//   c_j <- c_{(j+1) mod n}  (+/-)  a_cntr * b_{(j+1) mod n}
// with the contribution negated iff conv_n is set and the b-lane wraps:
// (j+1) mod n + cntr >= n  — the paper's "sel_i = 1 iff i > n-1-cntr".
#pragma once

#include <vector>

#include "common/types.h"
#include "poly/ring.h"
#include "rtl/area.h"
#include "rtl/fault_hook.h"

namespace lacrv::rtl {

class MulTerRtl {
 public:
  explicit MulTerRtl(std::size_t n = 512);

  /// Clear all registers (the control unit's rst): b, a, c, counter.
  void reset();

  /// Load one general coefficient into operand register b_idx.
  void load_b(std::size_t idx, u8 coeff);
  /// Load one ternary coefficient (-1/0/1) into operand register a_idx.
  void load_a(std::size_t idx, i8 tern);

  /// Assert start with the selected convolution; the unit becomes busy for
  /// exactly n cycles.
  void start(bool negacyclic);
  /// Advance one clock cycle.
  void tick();
  bool busy() const { return busy_; }
  /// Run the started computation to completion; returns cycles consumed.
  u64 run_to_completion();

  /// Read result register c_idx (valid when !busy()).
  u8 read_c(std::size_t idx) const;

  // ---- probes for waveform tracing (no busy-state restrictions) ----------
  u8 peek_c(std::size_t idx) const { return c_[idx]; }
  std::size_t cntr() const { return cntr_; }
  i8 current_a() const { return busy_ ? a_[cntr_] : 0; }

  std::size_t length() const { return n_; }
  /// Total clock cycles ticked since construction/reset.
  u64 cycles() const { return cycles_; }

  /// Attach a fault-injection hook (non-owning; null detaches). Bit faults
  /// land in the result registers c and are re-normalised mod q by the
  /// MAU correction stage; cycle-skew swallows one serialised coefficient.
  void set_fault_hook(FaultHook* hook) { fault_.set(hook); }

  AreaReport area() const;

  /// Convenience wrapper with the golden-model signature: load, run,
  /// read back. Still fully cycle-accurate internally.
  poly::Coeffs multiply(const poly::Ternary& a, const poly::Coeffs& b,
                        bool negacyclic);

 private:
  std::size_t n_;
  std::vector<u8> b_;
  std::vector<i8> a_;
  std::vector<u8> c_;
  std::vector<u8> scratch_;  // next-state buffer reused across ticks
  std::size_t cntr_ = 0;
  bool negacyclic_ = false;
  bool busy_ = false;
  u64 cycles_ = 0;
  FaultHookSlot fault_;
};

}  // namespace lacrv::rtl
