// Thin fault-injection hook shared by all cycle-accurate accelerator
// models. Each unit consults its (optional) hook once per clock edge and
// applies the returned edit to its own register file — the unit knows its
// register widths and value domains, the hook only decides *when* and
// *where* a fault fires. A null hook is the fault-free fast path.
//
// The fault taxonomy matches docs/robustness.md:
//   kBitFlip      — transient single-event upset: one register bit XORed
//                   on exactly the edge the hook fires.
//   kStuckAtZero/ — permanent defect: the targeted bit is forced to 0/1
//   kStuckAtOne     on every edge the hook fires (hooks typically fire
//                   these unconditionally).
//   kCycleSkew    — clock/timing fault: the edge's state update is
//                   swallowed (a serialised coefficient, b-bit or hash
//                   round is dropped) while control state still advances.
#pragma once

#include <atomic>

#include "common/types.h"

namespace lacrv::rtl {

enum class FaultKind : u8 {
  kBitFlip,
  kStuckAtZero,
  kStuckAtOne,
  kCycleSkew,
};

struct FaultEdit {
  FaultKind kind = FaultKind::kBitFlip;
  /// Register lane index; units reduce it modulo their lane count.
  u32 lane = 0;
  /// Bit position within the lane; units reduce it modulo their width.
  u32 bit = 0;
};

class FaultHook {
 public:
  virtual ~FaultHook() = default;
  /// Consulted once per clock edge (or per operation for combinational
  /// units). `cycle` is the unit's local cycle/operation counter. Returns
  /// true iff a fault fires on this edge, filling *edit. Implementations
  /// must be safe to call from several units on different threads when
  /// the same hook is armed on more than one unit instance (the live-
  /// service campaign case).
  virtual bool on_edge(u64 cycle, FaultEdit* edit) = 0;
};

/// Atomic hook attachment point held by every RTL unit. A fault campaign
/// may arm or clear a plan while worker threads are mid-operation on the
/// unit (the KemService chaos path), so installation is a release store
/// and every per-edge consult is an acquire load — a unit observes either
/// the old hook, the new hook, or none, never a torn pointer. The null
/// slot stays the fault-free fast path.
class FaultHookSlot {
 public:
  FaultHookSlot() = default;
  // Copying a unit copies the current attachment (atomics are not
  // copyable by default; the slot's value semantics are just a pointer).
  FaultHookSlot(const FaultHookSlot& other) : hook_(other.get()) {}
  FaultHookSlot& operator=(const FaultHookSlot& other) {
    set(other.get());
    return *this;
  }

  void set(FaultHook* hook) { hook_.store(hook, std::memory_order_release); }
  FaultHook* get() const { return hook_.load(std::memory_order_acquire); }

  /// One edge: returns true iff a hook is installed and fires, filling
  /// *edit.
  bool consult(u64 cycle, FaultEdit* edit) const {
    FaultHook* hook = hook_.load(std::memory_order_acquire);
    return hook != nullptr && hook->on_edge(cycle, edit);
  }

 private:
  std::atomic<FaultHook*> hook_{nullptr};
};

}  // namespace lacrv::rtl
