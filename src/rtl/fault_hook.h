// Thin fault-injection hook shared by all cycle-accurate accelerator
// models. Each unit consults its (optional) hook once per clock edge and
// applies the returned edit to its own register file — the unit knows its
// register widths and value domains, the hook only decides *when* and
// *where* a fault fires. A null hook is the fault-free fast path.
//
// The fault taxonomy matches docs/robustness.md:
//   kBitFlip      — transient single-event upset: one register bit XORed
//                   on exactly the edge the hook fires.
//   kStuckAtZero/ — permanent defect: the targeted bit is forced to 0/1
//   kStuckAtOne     on every edge the hook fires (hooks typically fire
//                   these unconditionally).
//   kCycleSkew    — clock/timing fault: the edge's state update is
//                   swallowed (a serialised coefficient, b-bit or hash
//                   round is dropped) while control state still advances.
#pragma once

#include "common/types.h"

namespace lacrv::rtl {

enum class FaultKind : u8 {
  kBitFlip,
  kStuckAtZero,
  kStuckAtOne,
  kCycleSkew,
};

struct FaultEdit {
  FaultKind kind = FaultKind::kBitFlip;
  /// Register lane index; units reduce it modulo their lane count.
  u32 lane = 0;
  /// Bit position within the lane; units reduce it modulo their width.
  u32 bit = 0;
};

class FaultHook {
 public:
  virtual ~FaultHook() = default;
  /// Consulted once per clock edge (or per operation for combinational
  /// units). `cycle` is the unit's local cycle/operation counter. Returns
  /// true iff a fault fires on this edge, filling *edit.
  virtual bool on_edge(u64 cycle, FaultEdit* edit) = 0;
};

}  // namespace lacrv::rtl
