// Cycle-accurate model of the MUL GF unit (Fig. 3): a 9-bit shift-and-add
// GF(2^9) multiplier with interleaved reduction by p(x) = 1 + x^4 + x^9.
//
// Datapath: shift register c_0..c_8 with a feedback tap from c_8 into the
// inputs of c_0 and c_4 (alpha^9 = 1 + alpha^4); AND gates form b_i * a
// and XOR gates accumulate it. The control unit serialises b MSB-first
// (b_8 in the first clock cycle) and stops the shift after m = 9 cycles.
#pragma once

#include "gf/gf512.h"
#include "rtl/area.h"
#include "rtl/fault_hook.h"

namespace lacrv::rtl {

class GfMulRtl {
 public:
  void reset();
  /// Load operands; a is the parallel input, b is serialised by the
  /// control unit.
  void load(gf::Element a, gf::Element b);
  void start();
  void tick();
  bool busy() const { return busy_; }
  u64 run_to_completion();
  gf::Element result() const;
  u64 cycles() const { return cycles_; }

  // ---- probes for waveform tracing ----------------------------------------
  gf::Element peek_accumulator() const { return c_; }
  int current_bit() const { return bit_; }

  static AreaReport area_single();

  /// Attach a fault-injection hook (non-owning; null detaches). Bit faults
  /// land in the 9-bit accumulator; cycle-skew drops one serialised b-bit.
  void set_fault_hook(FaultHook* hook) { fault_.set(hook); }

 private:
  gf::Element a_ = 0, b_ = 0, c_ = 0;
  int bit_ = 0;  // next b bit index (counts down from 8)
  bool busy_ = false;
  u64 cycles_ = 0;
  FaultHookSlot fault_;
};

}  // namespace lacrv::rtl
