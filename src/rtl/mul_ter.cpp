#include "rtl/mul_ter.h"

#include <cmath>

#include "common/check.h"
#include "obs/trace.h"

namespace lacrv::rtl {

MulTerRtl::MulTerRtl(std::size_t n)
    : n_(n), b_(n, 0), a_(n, 0), c_(n, 0), scratch_(n, 0) {
  LACRV_CHECK(n > 0);
}

void MulTerRtl::reset() {
  std::fill(b_.begin(), b_.end(), u8{0});
  std::fill(a_.begin(), a_.end(), i8{0});
  std::fill(c_.begin(), c_.end(), u8{0});
  cntr_ = 0;
  busy_ = false;
  cycles_ = 0;
}

void MulTerRtl::load_b(std::size_t idx, u8 coeff) {
  LACRV_CHECK(idx < n_);
  LACRV_CHECK(coeff < poly::kQ);
  LACRV_CHECK_MSG(!busy_, "operand write while computing");
  b_[idx] = coeff;
}

void MulTerRtl::load_a(std::size_t idx, i8 tern) {
  LACRV_CHECK(idx < n_);
  LACRV_CHECK(tern >= -1 && tern <= 1);
  LACRV_CHECK_MSG(!busy_, "operand write while computing");
  a_[idx] = tern;
}

void MulTerRtl::start(bool negacyclic) {
  LACRV_CHECK_MSG(!busy_, "start while busy");
  negacyclic_ = negacyclic;
  std::fill(c_.begin(), c_.end(), u8{0});
  cntr_ = 0;
  busy_ = true;
}

void MulTerRtl::tick() {
  ++cycles_;
  if (!busy_) return;
  FaultEdit edit;
  const bool faulted = fault_.consult(cycles_, &edit);
  if (faulted && edit.kind == FaultKind::kCycleSkew) {
    // The clock edge is swallowed: coefficient a_cntr never reaches the
    // MAUs, but the control counter still advances.
    if (++cntr_ == n_) busy_ = false;
    return;
  }
  const i8 ai = a_[cntr_];
  for (std::size_t j = 0; j < n_; ++j) {
    const std::size_t k = (j + 1) % n_;  // source register / b lane
    u8 v = c_[k];
    if (ai != 0) {
      const bool negate = negacyclic_ && (k + cntr_ >= n_);  // sel_i mux
      const bool subtract = (ai < 0) != negate;              // MAU mode
      v = subtract ? poly::sub_mod(v, b_[k]) : poly::add_mod(v, b_[k]);
    }
    scratch_[j] = v;
  }
  c_.swap(scratch_);
  if (faulted) {
    u8& reg = c_[edit.lane % n_];
    const u8 mask = static_cast<u8>(1u << (edit.bit % 8));
    switch (edit.kind) {
      case FaultKind::kBitFlip: reg = static_cast<u8>(reg ^ mask); break;
      case FaultKind::kStuckAtZero: reg = static_cast<u8>(reg & ~mask); break;
      case FaultKind::kStuckAtOne: reg = static_cast<u8>(reg | mask); break;
      case FaultKind::kCycleSkew: break;  // handled above
    }
    // The MAU forwards every register through its mod-q correction stage,
    // so an injected out-of-range value is re-normalised next edge; model
    // that here to keep the Z_q invariant downstream code relies on.
    reg = static_cast<u8>(reg % poly::kQ);
  }
  if (++cntr_ == n_) busy_ = false;
}

u64 MulTerRtl::run_to_completion() {
  // One busy window per started computation: exactly the interval the
  // unit's busy signal is high, with the cycle count as a span arg.
  obs::TraceSpan span("mul_ter.busy", "rtl");
  u64 ticks = 0;
  while (busy_) {
    tick();
    ++ticks;
  }
  span.arg("cycles", ticks);
  span.arg("n", static_cast<u64>(n_));
  return ticks;
}

u8 MulTerRtl::read_c(std::size_t idx) const {
  LACRV_CHECK(idx < n_);
  LACRV_CHECK_MSG(!busy_, "result read while computing");
  return c_[idx];
}

AreaReport MulTerRtl::area() const {
  AreaReport report;
  report.name = "Ternary Multiplier";
  // Exact flip-flop inventory: 8-bit result + 8-bit operand + 2-bit
  // ternary register per lane, plus control FSM / bus staging state.
  constexpr u64 kControlRegs = 89;
  report.registers = n_ * (8 + 8 + 2) + kControlRegs;
  const u64 write_chunks = (n_ + 4) / 5;  // 5 coefficients per pq issue
  report.luts = n_ * kLutsPerMau + n_ * kLutsPerConvMux +
                static_cast<u64>(std::llround(n_ * 8 * kLutsPerReadoutBit)) +
                write_chunks * kLutsPerWriteChunk;
  return report;
}

poly::Coeffs MulTerRtl::multiply(const poly::Ternary& a, const poly::Coeffs& b,
                                 bool negacyclic) {
  LACRV_CHECK(a.size() == n_ && b.size() == n_);
  for (std::size_t i = 0; i < n_; ++i) {
    load_a(i, a[i]);
    load_b(i, b[i]);
  }
  start(negacyclic);
  run_to_completion();
  poly::Coeffs out(n_);
  for (std::size_t i = 0; i < n_; ++i) out[i] = read_c(i);
  return out;
}

}  // namespace lacrv::rtl
