#include "rtl/trace.h"

#include "common/check.h"
#include "rtl/vcd.h"

namespace lacrv::rtl {

poly::Coeffs trace_mul_ter(MulTerRtl& unit, const poly::Ternary& a,
                           const poly::Coeffs& b, bool negacyclic,
                           std::ostream& vcd_stream, int probe_registers) {
  const std::size_t n = unit.length();
  LACRV_CHECK(a.size() == n && b.size() == n);
  probe_registers = std::min<int>(probe_registers, static_cast<int>(n));

  VcdWriter vcd(vcd_stream, "mul_ter");
  const auto clk = vcd.add_signal("clk", 1);
  const auto busy = vcd.add_signal("busy", 1);
  const auto conv_n = vcd.add_signal("conv_n", 1);
  const auto cntr = vcd.add_signal("cntr", 10);
  const auto a_i = vcd.add_signal("a_i", 2);  // ternary code 0/1/2
  std::vector<VcdWriter::SignalId> c_probes;
  for (int i = 0; i < probe_registers; ++i)
    c_probes.push_back(vcd.add_signal("c" + std::to_string(i), 8));
  vcd.begin();

  unit.reset();
  for (std::size_t i = 0; i < n; ++i) {
    unit.load_a(i, a[i]);
    unit.load_b(i, b[i]);
  }
  unit.start(negacyclic);

  u64 time = 0;
  const auto sample = [&](int clk_level) {
    vcd.advance(time++);
    vcd.change(clk, static_cast<u64>(clk_level));
    vcd.change(busy, unit.busy());
    vcd.change(conv_n, negacyclic);
    vcd.change(cntr, unit.cntr());
    const i8 ai = unit.current_a();
    vcd.change(a_i, ai == 1 ? 1u : ai == -1 ? 2u : 0u);
    for (int i = 0; i < probe_registers; ++i)
      vcd.change(c_probes[static_cast<std::size_t>(i)],
                 unit.peek_c(static_cast<std::size_t>(i)));
  };

  sample(0);
  while (unit.busy()) {
    sample(1);  // rising edge: registers update
    unit.tick();
    sample(0);
  }
  sample(1);
  vcd.finish(time);

  poly::Coeffs out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = unit.read_c(i);
  return out;
}

gf::Element trace_gf_mul(gf::Element a, gf::Element b,
                         std::ostream& vcd_stream) {
  VcdWriter vcd(vcd_stream, "mul_gf");
  const auto clk = vcd.add_signal("clk", 1);
  const auto busy = vcd.add_signal("busy", 1);
  const auto a_in = vcd.add_signal("a", 9);
  const auto b_bit = vcd.add_signal("b_i", 1);
  const auto acc = vcd.add_signal("c", 9);
  vcd.begin();

  GfMulRtl unit;
  unit.load(a, b);
  unit.start();

  u64 time = 0;
  const auto sample = [&](int clk_level) {
    vcd.advance(time++);
    vcd.change(clk, static_cast<u64>(clk_level));
    vcd.change(busy, unit.busy());
    vcd.change(a_in, a);
    const int bit = unit.current_bit();
    vcd.change(b_bit, bit >= 0 ? (b >> bit) & 1 : 0u);
    vcd.change(acc, unit.peek_accumulator());
  };

  sample(0);
  while (unit.busy()) {
    sample(1);
    unit.tick();
    sample(0);
  }
  sample(1);
  vcd.finish(time);
  return unit.result();
}

}  // namespace lacrv::rtl
