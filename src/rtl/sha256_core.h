// Cycle-accurate model of the SHA256 accelerator (from the authors' NTRU
// co-design [7], reused by this paper). Round-per-cycle core: a 64-byte
// block is loaded byte-wise (the pq.sha256 interface of Sec. V feeds 8
// bits per instruction), then 64 round cycles plus a state-update cycle
// produce the new chaining state. Padding is the software's job — the
// core only compresses blocks, exactly like the real accelerator.
#pragma once

#include <array>

#include "hash/sha256.h"
#include "rtl/area.h"
#include "rtl/fault_hook.h"

namespace lacrv::rtl {

class Sha256Rtl {
 public:
  Sha256Rtl() { reset_state(); }

  /// Reset the chaining state to the SHA-256 IV (the "reset internal
  /// state" configuration signal).
  void reset_state();
  /// Load one message byte into the block buffer (offset 0..63).
  void load_byte(std::size_t offset, u8 value);
  /// Start compressing the loaded block ("generate hash" signal).
  void start();
  void tick();
  bool busy() const { return busy_; }
  u64 run_to_completion();
  /// Read one byte of the current chaining state (big-endian digest order).
  u8 read_digest_byte(std::size_t idx) const;
  u64 cycles() const { return cycles_; }

  AreaReport area() const;

  /// Convenience: hash an arbitrary message through the core, performing
  /// the FIPS padding in "software". Returns the digest and leaves the
  /// cycle counter reflecting every core cycle consumed.
  hash::Digest hash_message(ByteView message);

  /// Attach a fault hook (non-owning; null detaches). Bit faults land in
  /// the 32-bit working registers a..h; cycle-skew drops one round.
  void set_fault_hook(FaultHook* hook) { fault_.set(hook); }

 private:
  std::array<u32, 8> state_{};
  std::array<u32, 8> working_{};
  std::array<u8, 64> block_{};
  std::array<u32, 16> schedule_{};  // rolling W window
  int round_ = 0;
  bool busy_ = false;
  u64 cycles_ = 0;
  FaultHookSlot fault_;
};

}  // namespace lacrv::rtl
