// Waveform capture for the accelerator models: run a computation clock by
// clock while dumping a VCD file — open the result in GTKWave to see the
// Fig. 2 / Fig. 3 dataflows (register rotation, serialized coefficients,
// shift-and-add reduction) exactly as an RTL engineer would.
#pragma once

#include <ostream>

#include "rtl/gf_mul.h"
#include "rtl/mul_ter.h"

namespace lacrv::rtl {

/// Run a MUL TER multiplication, tracing clk/cntr/busy, the serialized
/// ternary coefficient, and the first `probe_registers` result registers.
/// Returns the product.
poly::Coeffs trace_mul_ter(MulTerRtl& unit, const poly::Ternary& a,
                           const poly::Coeffs& b, bool negacyclic,
                           std::ostream& vcd, int probe_registers = 8);

/// Run one GF(2^9) multiplication, tracing the shift-register state and
/// the serialized b bit. Returns the product.
gf::Element trace_gf_mul(gf::Element a, gf::Element b, std::ostream& vcd);

}  // namespace lacrv::rtl
