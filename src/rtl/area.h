// Structural area model -> Table III.
//
// We cannot run Vivado here; instead every RTL model reports its primitive
// inventory (flip-flop bits, modular arithmetic units, muxes, gates) and
// this header maps the inventory to UltraScale+ LUT/FF/DSP estimates.
// Flip-flop counts are exact (they follow from the described architecture:
// e.g. the ternary multiplier holds 512 8-bit result registers, 512 8-bit
// operand registers and 512 2-bit ternary registers — 9,216 bits, matching
// the paper's 9,305 up to control state). LUT factors are calibrated
// packing rules; the *relations* Table III reports (the ternary multiplier
// dominating LUTs, the GF multipliers being negligible, the Barrett unit
// owning the only DSPs) follow from structure, not calibration.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace lacrv::rtl {

struct AreaReport {
  std::string name;
  u64 luts = 0;
  u64 registers = 0;
  u64 brams = 0;
  u64 dsps = 0;

  AreaReport& operator+=(const AreaReport& other) {
    luts += other.luts;
    registers += other.registers;
    brams += other.brams;
    dsps += other.dsps;
    return *this;
  }
};

// ---- LUT packing rules (6-input LUTs) ------------------------------------
// 8-bit modular add/subtract unit with mode select (the MAU of Fig. 2):
// two 8-bit adders, compare-against-q, 3-way output select.
inline constexpr u64 kLutsPerMau = 56;
// Per-MAU convolution-select mux + a_i negation path (Fig. 2 muxes).
inline constexpr u64 kLutsPerConvMux = 3;
// Readout multiplexing, per register bit routed to the 32-bit output bus.
inline constexpr double kLutsPerReadoutBit = 0.25;
// Write-enable decode per addressable chunk.
inline constexpr u64 kLutsPerWriteChunk = 2;
// GF(2^9) multiplier cell: 9 AND + 9 XOR + 2 tap XOR + enable (Fig. 3).
inline constexpr u64 kLutsPerGfMul = 21;
// SHA-256 round datapath: Sigma/Maj/Ch plus two 32-bit adder chains and
// the schedule sigma functions.
inline constexpr u64 kLutsSha256Core = 1010;
// Barrett correction logic (the multiplies live in DSPs).
inline constexpr u64 kLutsBarrett = 35;

/// Paper-reported platform baseline (PULPino peripherals/memíory and the
/// unmodified RISCY core). These are external to our accelerators and are
/// quoted, not derived — see DESIGN.md substitution table.
AreaReport pulpino_peripherals();
AreaReport riscy_base_core();

/// Sum a list of reports under a new name.
AreaReport combine(const std::string& name,
                   const std::vector<AreaReport>& parts);

}  // namespace lacrv::rtl
