#include "rtl/chien_unit.h"

#include "common/check.h"

namespace lacrv::rtl {

void ChienRtl::configure(std::span<const gf::Element> lambda, int first) {
  LACRV_CHECK(!lambda.empty());
  const int t = static_cast<int>(lambda.size()) - 1;
  LACRV_CHECK_MSG(t % kParallelMultipliers == 0,
                  "t must be a multiple of the multiplier count");
  lambda0_ = lambda[0];
  lanes_.clear();
  lanes_.reserve(t);
  for (int k = 1; k <= t; ++k) {
    Lane lane;
    lane.constant = gf::alpha_pow(static_cast<u32>(k));
    // Software preparation: position the lane at the window start.
    lane.value = gf::mul_table(
        lambda[k], gf::alpha_pow(static_cast<u32>(k) * first));
    lanes_.push_back(lane);
  }
  cycles_ = 0;
  points_ = 0;
}

gf::Element ChienRtl::eval_next() {
  LACRV_CHECK_MSG(!lanes_.empty(), "configure() first");
  FaultEdit edit;
  const bool faulted = fault_.consult(points_++, &edit);
  if (faulted && edit.kind != FaultKind::kCycleSkew) {
    gf::Element& value = lanes_[edit.lane % lanes_.size()].value;
    const gf::Element mask =
        static_cast<gf::Element>(1u << (edit.bit % gf::kFieldBits));
    switch (edit.kind) {
      case FaultKind::kBitFlip:
        value = static_cast<gf::Element>(value ^ mask);
        break;
      case FaultKind::kStuckAtZero:
        value = static_cast<gf::Element>(value & ~mask);
        break;
      case FaultKind::kStuckAtOne:
        value = static_cast<gf::Element>(value | mask);
        break;
      case FaultKind::kCycleSkew: break;
    }
  }
  // Combinational XOR tree over the lane registers plus lambda_0.
  gf::Element sum = lambda0_;
  for (const Lane& lane : lanes_) sum = gf::add(sum, lane.value);
  if (faulted && edit.kind == FaultKind::kCycleSkew) {
    // The advance edge is swallowed: the lanes keep their values, so the
    // next point re-evaluates the same exponent (timing skew).
    return sum;
  }

  // Advance: groups of four lanes share the four multipliers; each group
  // pass costs the 9 shift-and-add cycles of MUL GF.
  for (std::size_t g = 0; g < lanes_.size(); g += kParallelMultipliers) {
    u64 pass_cycles = 0;
    for (int m = 0; m < kParallelMultipliers; ++m) {
      Lane& lane = lanes_[g + m];
      GfMulRtl& mul = multipliers_[m];
      mul.reset();
      mul.load(lane.constant, lane.value);  // feedback into second input
      mul.start();
      pass_cycles = std::max(pass_cycles, mul.run_to_completion());
      lane.value = mul.result();
    }
    cycles_ += pass_cycles;  // the four multipliers run in lockstep
  }
  return sum;
}

AreaReport ChienRtl::area() const {
  // Four physical multipliers + the lambda_0 accumulator, feedback
  // selection and group sequencing state. Matches Table III's
  // "GF-Multipliers" row (86 LUTs, 158 registers).
  AreaReport report = GfMulRtl::area_single();
  report.name = "GF-Multipliers (Chien)";
  report.luts *= kParallelMultipliers;
  report.registers *= kParallelMultipliers;
  report.luts += 2;        // XOR combine tree packing
  report.registers += 26;  // lambda_0, loop/group control
  return report;
}

}  // namespace lacrv::rtl
