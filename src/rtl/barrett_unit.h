// Model of the MOD q unit (Sec. V): constant-time Barrett reduction for
// q = 251 — the pq.modq instruction's datapath. Two multiplications (the
// two DSP slices of Table III) and a correction stage; single-cycle issue
// from the core's perspective.
#pragma once

#include "poly/ring.h"
#include "rtl/area.h"
#include "rtl/fault_hook.h"

namespace lacrv::rtl {

class BarrettRtl {
 public:
  /// Reduce x (< 2^16) modulo 251 through the modelled datapath.
  u8 reduce(u32 x);

  /// Number of reductions performed (each is one pq.modq issue).
  u64 operations() const { return operations_; }

  AreaReport area() const;

  /// Attach a fault hook (non-owning; null detaches); consulted once per
  /// reduce() with the operation counter as the "cycle". Bit faults land
  /// in the 8-bit result register; cycle-skew skips the correction stage
  /// (the readback truncates the uncorrected remainder to 8 bits).
  void set_fault_hook(FaultHook* hook) { fault_.set(hook); }

 private:
  u64 operations_ = 0;
  FaultHookSlot fault_;
};

}  // namespace lacrv::rtl
