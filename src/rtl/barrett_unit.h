// Model of the MOD q unit (Sec. V): constant-time Barrett reduction for
// q = 251 — the pq.modq instruction's datapath. Two multiplications (the
// two DSP slices of Table III) and a correction stage; single-cycle issue
// from the core's perspective.
#pragma once

#include "poly/ring.h"
#include "rtl/area.h"

namespace lacrv::rtl {

class BarrettRtl {
 public:
  /// Reduce x (< 2^16) modulo 251 through the modelled datapath.
  u8 reduce(u32 x);

  /// Number of reductions performed (each is one pq.modq issue).
  u64 operations() const { return operations_; }

  AreaReport area() const;

 private:
  u64 operations_ = 0;
};

}  // namespace lacrv::rtl
