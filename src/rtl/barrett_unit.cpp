#include "rtl/barrett_unit.h"

#include "common/check.h"

namespace lacrv::rtl {

u8 BarrettRtl::reduce(u32 x) {
  LACRV_CHECK_MSG(x < (1u << 16), "datapath width is 16 bits");
  FaultEdit edit;
  const bool faulted = fault_.consult(operations_, &edit);
  ++operations_;
  // DSP #1: x * m with m = floor(2^16 / q) = 261.
  const u32 quotient_estimate = (x * 261u) >> 16;
  // DSP #2: quotient * q.
  u32 r = x - quotient_estimate * poly::kQ;
  if (faulted && edit.kind == FaultKind::kCycleSkew)
    return static_cast<u8>(r);  // correction stage skipped, raw readback
  // Correction stage (LUT logic): at most two conditional subtracts,
  // both always evaluated — constant time.
  const u32 ge1 = static_cast<u32>(-(static_cast<i32>(r >= poly::kQ)));
  r -= ge1 & poly::kQ;
  const u32 ge2 = static_cast<u32>(-(static_cast<i32>(r >= poly::kQ)));
  r -= ge2 & poly::kQ;
  u8 out = static_cast<u8>(r);
  if (faulted) {
    const u8 mask = static_cast<u8>(1u << (edit.bit % 8));
    switch (edit.kind) {
      case FaultKind::kBitFlip: out = static_cast<u8>(out ^ mask); break;
      case FaultKind::kStuckAtZero: out = static_cast<u8>(out & ~mask); break;
      case FaultKind::kStuckAtOne: out = static_cast<u8>(out | mask); break;
      case FaultKind::kCycleSkew: break;  // handled above
    }
  }
  return out;
}

AreaReport BarrettRtl::area() const {
  return {"Modulo (Barrett)", kLutsBarrett, 0, 0, 2};
}

}  // namespace lacrv::rtl
