#include "rtl/barrett_unit.h"

#include "common/check.h"

namespace lacrv::rtl {

u8 BarrettRtl::reduce(u32 x) {
  LACRV_CHECK_MSG(x < (1u << 16), "datapath width is 16 bits");
  ++operations_;
  // DSP #1: x * m with m = floor(2^16 / q) = 261.
  const u32 quotient_estimate = (x * 261u) >> 16;
  // DSP #2: quotient * q.
  u32 r = x - quotient_estimate * poly::kQ;
  // Correction stage (LUT logic): at most two conditional subtracts,
  // both always evaluated — constant time.
  const u32 ge1 = static_cast<u32>(-(static_cast<i32>(r >= poly::kQ)));
  r -= ge1 & poly::kQ;
  const u32 ge2 = static_cast<u32>(-(static_cast<i32>(r >= poly::kQ)));
  r -= ge2 & poly::kQ;
  return static_cast<u8>(r);
}

AreaReport BarrettRtl::area() const {
  return {"Modulo (Barrett)", kLutsBarrett, 0, 0, 2};
}

}  // namespace lacrv::rtl
