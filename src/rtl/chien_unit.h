// Cycle-accurate model of the MUL CHIEN unit (Fig. 4).
//
// Four MUL GF instances evaluate four locator terms in parallel; the
// locator is processed in groups of four (t=8 -> 2 group passes per point,
// t=16 -> 4, Eq. (4)). A feedback loop routes each multiplier's output
// back to its second input, so after the first round the lambda values
// never have to be re-loaded: lane k holds lambda_k * alpha^(i*k) and is
// multiplied by the constant alpha^k to advance to the next point.
#pragma once

#include <array>
#include <vector>

#include "rtl/gf_mul.h"

namespace lacrv::rtl {

class ChienRtl {
 public:
  static constexpr int kParallelMultipliers = 4;

  /// Configure for locator coefficients lambda[0..t] and evaluation window
  /// start exponent `first`. t must be a multiple of 4 (the paper's two
  /// code configurations use t = 8 and t = 16). The software prepares the
  /// initial lane values lambda_k * alpha^(first*k); from then on the unit
  /// runs purely on its feedback loop.
  void configure(std::span<const gf::Element> lambda, int first);

  /// Sum the current point's terms (combinational read), then advance all
  /// lanes one exponent through the GF multipliers. Returns
  /// Lambda(alpha^i) for the current i and moves to i+1.
  gf::Element eval_next();

  /// Clock cycles consumed by the multiplier array so far.
  u64 cycles() const { return cycles_; }
  int group_passes_per_point() const { return static_cast<int>(lanes_.size()) / kParallelMultipliers; }

  AreaReport area() const;

  /// Attach a fault hook to the lane feedback registers (non-owning; null
  /// detaches). Bit faults corrupt one lane's 9-bit value; cycle-skew
  /// freezes the lane advance so the next point re-evaluates stale values.
  void set_fault_hook(FaultHook* hook) { fault_.set(hook); }
  /// Attach a fault hook to the four shared GF multipliers.
  void set_gf_fault_hook(FaultHook* hook) {
    for (GfMulRtl& m : multipliers_) m.set_fault_hook(hook);
  }

 private:
  struct Lane {
    gf::Element constant;  // alpha^k, first multiplier input
    gf::Element value;     // lambda_k * alpha^(i*k), feedback register
  };
  gf::Element lambda0_ = 0;
  std::vector<Lane> lanes_;
  std::array<GfMulRtl, kParallelMultipliers> multipliers_{};
  u64 cycles_ = 0;
  u64 points_ = 0;  // eval_next() invocations since configure()
  FaultHookSlot fault_;
};

}  // namespace lacrv::rtl
