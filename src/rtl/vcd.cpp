#include "rtl/vcd.h"

#include "common/check.h"

namespace lacrv::rtl {
namespace {

/// Compact VCD identifier codes: printable ASCII 33..126, multi-char.
std::string code_for(std::size_t index) {
  std::string code;
  do {
    code.push_back(static_cast<char>(33 + index % 94));
    index /= 94;
  } while (index > 0);
  return code;
}

}  // namespace

VcdWriter::VcdWriter(std::ostream& os, std::string module)
    : os_(os), module_(std::move(module)) {}

VcdWriter::SignalId VcdWriter::add_signal(const std::string& name,
                                          int width) {
  LACRV_CHECK_MSG(!started_, "declare signals before begin()");
  LACRV_CHECK(width >= 1 && width <= 64);
  Signal signal;
  signal.name = name;
  signal.width = width;
  signal.code = code_for(signals_.size());
  signals_.push_back(std::move(signal));
  return signals_.size() - 1;
}

void VcdWriter::begin() {
  LACRV_CHECK_MSG(!started_, "begin() called twice");
  started_ = true;
  os_ << "$timescale 1ns $end\n";
  os_ << "$scope module " << module_ << " $end\n";
  for (const Signal& signal : signals_)
    os_ << "$var wire " << signal.width << " " << signal.code << " "
        << signal.name << " $end\n";
  os_ << "$upscope $end\n$enddefinitions $end\n";
  os_ << "#0\n";
  time_written_ = true;
}

void VcdWriter::advance(u64 time) {
  LACRV_CHECK_MSG(started_, "begin() first");
  LACRV_CHECK_MSG(time >= time_, "time must not go backwards");
  if (time != time_) {
    time_ = time;
    time_written_ = false;
  }
}

void VcdWriter::write_value(const Signal& signal, u64 value) {
  if (!time_written_) {
    os_ << "#" << time_ << "\n";
    time_written_ = true;
  }
  if (signal.width == 1) {
    os_ << (value & 1) << signal.code << "\n";
    return;
  }
  os_ << "b";
  for (int bit = signal.width - 1; bit >= 0; --bit)
    os_ << ((value >> bit) & 1);
  os_ << " " << signal.code << "\n";
}

void VcdWriter::change(SignalId id, u64 value) {
  LACRV_CHECK_MSG(started_, "begin() before recording changes");
  LACRV_CHECK(id < signals_.size());
  Signal& signal = signals_[id];
  if (signal.has_value && signal.last == value) return;
  signal.last = value;
  signal.has_value = true;
  write_value(signal, value);
}

void VcdWriter::finish(u64 end_time) {
  advance(end_time);
  if (!time_written_) os_ << "#" << time_ << "\n";
  time_written_ = true;
}

}  // namespace lacrv::rtl
