#include "rtl/area.h"

namespace lacrv::rtl {

AreaReport pulpino_peripherals() {
  // Table III "Peripherals/Memory" row (PULPino platform constant).
  return {"Peripherals/Memory", 8769, 7369, 32, 0};
}

AreaReport riscy_base_core() {
  // RISCY core without the PQ-ALU: Table III core total minus the four
  // accelerator rows (53,819-32,617 LUTs etc.); DSPs are the RV32M
  // multiplier blocks.
  return {"RISCY base core", 21202, 2909, 0, 8};
}

AreaReport combine(const std::string& name,
                   const std::vector<AreaReport>& parts) {
  AreaReport total;
  total.name = name;
  for (const auto& part : parts) total += part;
  return total;
}

}  // namespace lacrv::rtl
