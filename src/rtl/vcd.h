// Minimal VCD (IEEE 1364 value-change-dump) writer so the cycle-accurate
// accelerator models can be inspected in GTKWave & friends — the natural
// debug workflow for the RTL these models stand in for.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"

namespace lacrv::rtl {

class VcdWriter {
 public:
  using SignalId = std::size_t;

  /// The stream must outlive the writer. Declare signals, then call
  /// begin(); afterwards use advance()/change().
  explicit VcdWriter(std::ostream& os, std::string module = "lacrv");

  /// Declare a signal of 1..64 bits. Must precede begin().
  SignalId add_signal(const std::string& name, int width);

  /// Emit the header and the initial (all-X) dump.
  void begin();

  /// Move time forward to `time` (monotonically increasing).
  void advance(u64 time);

  /// Record a value change for a signal at the current time.
  void change(SignalId signal, u64 value);

  /// Emit the final timestamp; the writer must not be used afterwards.
  void finish(u64 end_time);

 private:
  struct Signal {
    std::string name;
    int width;
    std::string code;  // VCD identifier code
    u64 last = ~u64{0};
    bool has_value = false;
  };

  std::ostream& os_;
  std::string module_;
  std::vector<Signal> signals_;
  bool started_ = false;
  u64 time_ = 0;
  bool time_written_ = false;

  void write_value(const Signal& signal, u64 value);
};

}  // namespace lacrv::rtl
