#include "rtl/gf_mul.h"

#include "common/check.h"

namespace lacrv::rtl {

void GfMulRtl::reset() {
  a_ = b_ = c_ = 0;
  bit_ = 0;
  busy_ = false;
  cycles_ = 0;
}

void GfMulRtl::load(gf::Element a, gf::Element b) {
  LACRV_CHECK(a < gf::kFieldSize && b < gf::kFieldSize);
  LACRV_CHECK_MSG(!busy_, "operand write while computing");
  a_ = a;
  b_ = b;
}

void GfMulRtl::start() {
  LACRV_CHECK_MSG(!busy_, "start while busy");
  c_ = 0;                    // rst clears the shift register
  bit_ = gf::kFieldBits - 1;  // b_8 first
  busy_ = true;
}

void GfMulRtl::tick() {
  ++cycles_;
  if (!busy_) return;
  FaultEdit edit;
  const bool faulted = fault_.consult(cycles_, &edit);
  if (faulted && edit.kind == FaultKind::kCycleSkew) {
    // Swallowed edge: this b-bit never reaches the AND gates.
    if (--bit_ < 0) busy_ = false;
    return;
  }
  // Shift left; the c_8 output feeds back into c_0 and c_4.
  const gf::Element feedback =
      static_cast<gf::Element>(-((c_ >> (gf::kFieldBits - 1)) & 1));
  c_ = static_cast<gf::Element>(((c_ << 1) & (gf::kFieldSize - 1)) ^
                                (feedback & gf::kReductionTaps));
  // AND gates apply b_bit * a, XOR gates accumulate into the register.
  const gf::Element sel = static_cast<gf::Element>(-((b_ >> bit_) & 1));
  c_ = static_cast<gf::Element>(c_ ^ (sel & a_));
  if (faulted) {
    const gf::Element mask =
        static_cast<gf::Element>(1u << (edit.bit % gf::kFieldBits));
    switch (edit.kind) {
      case FaultKind::kBitFlip: c_ = static_cast<gf::Element>(c_ ^ mask); break;
      case FaultKind::kStuckAtZero:
        c_ = static_cast<gf::Element>(c_ & ~mask);
        break;
      case FaultKind::kStuckAtOne:
        c_ = static_cast<gf::Element>(c_ | mask);
        break;
      case FaultKind::kCycleSkew: break;  // handled above
    }
  }
  if (--bit_ < 0) busy_ = false;  // control unit deasserts en after 9 cycles
}

u64 GfMulRtl::run_to_completion() {
  u64 ticks = 0;
  while (busy_) {
    tick();
    ++ticks;
  }
  return ticks;
}

gf::Element GfMulRtl::result() const {
  LACRV_CHECK_MSG(!busy_, "result read while computing");
  return c_;
}

AreaReport GfMulRtl::area_single() {
  AreaReport report;
  report.name = "GF-Multiplier";
  // c shift register (9) + operand holds (9 + 9) + bit counter & enable.
  report.registers = 9 + 9 + 9 + 6;
  report.luts = kLutsPerGfMul;
  return report;
}

}  // namespace lacrv::rtl
