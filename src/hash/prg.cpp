#include "hash/prg.h"

#include "common/check.h"

namespace lacrv::hash {

void Sha256Prg::refill() {
  Sha256 h;
  u8 ctr[4];
  store_le32(ctr, counter_++);
  h.update(ByteView(seed_.data(), seed_.size()));
  h.update(ByteView(ctr, 4));
  block_ = h.finalize();
  compressions_ += h.compressions();
  pos_ = 0;
}

u8 Sha256Prg::next_byte() {
  if (pos_ >= kSha256DigestSize) refill();
  ++bytes_drawn_;
  return block_[pos_++];
}

u32 Sha256Prg::next_u32() {
  u32 v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<u32>(next_byte()) << (8 * i);
  return v;
}

void Sha256Prg::fill(u8* out, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) out[i] = next_byte();
}

u32 Sha256Prg::next_below(u32 bound) {
  LACRV_CHECK(bound > 0);
  if (bound <= 0x100) {
    // Byte-wise rejection: accept b < limit where limit is the largest
    // multiple of bound that fits in a byte range.
    const u32 limit = (0x100 / bound) * bound;
    u32 b = next_byte();
    while (b >= limit) b = next_byte();
    return b % bound;
  }
  const u64 span = u64{1} << 32;
  const u32 limit = static_cast<u32>((span / bound) * bound - 1);
  u32 v = next_u32();
  while (v > limit) v = next_u32();
  return v % bound;
}

}  // namespace lacrv::hash
