// Counter-mode PRG over SHA-256, the randomness expander used by LAC:
//   block_i = SHA256(seed || le32(i)),  i = 0, 1, 2, ...
// GenA draws uniform bytes from it (with rejection below q) and the ternary
// samplers draw shuffle randomness from it. Deterministic for a given seed,
// which is what the re-encryption step of the CCA decapsulation relies on.
#pragma once

#include <array>

#include "hash/sha256.h"

namespace lacrv::hash {

inline constexpr std::size_t kSeedSize = 32;
using Seed = std::array<u8, kSeedSize>;

class Sha256Prg {
 public:
  explicit Sha256Prg(const Seed& seed) : seed_(seed) {}

  /// Next pseudo-random byte.
  u8 next_byte();
  /// Next 32-bit word (little-endian over four next_byte() results).
  u32 next_u32();
  /// Fill a range with pseudo-random bytes.
  void fill(u8* out, std::size_t len);

  /// Uniform value in [0, bound) via rejection sampling on bytes/words.
  /// bound must be <= 0x100 for the byte path to apply; larger bounds use
  /// 32-bit rejection.
  u32 next_below(u32 bound);

  /// Number of SHA-256 compression invocations consumed so far — the
  /// timing models charge hash costs from this.
  u64 compressions() const { return compressions_; }
  /// Number of bytes drawn so far (including rejected ones).
  u64 bytes_drawn() const { return bytes_drawn_; }

 private:
  void refill();

  Seed seed_;
  u32 counter_ = 0;
  Digest block_{};
  std::size_t pos_ = kSha256DigestSize;  // force refill on first use
  u64 compressions_ = 0;
  u64 bytes_drawn_ = 0;
};

}  // namespace lacrv::hash
