#include "hash/sha256.h"

#include <cstring>

#include "common/check.h"

namespace lacrv::hash {
namespace {

constexpr std::array<u32, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<u32, 8> kInitialState = {0x6a09e667, 0xbb67ae85,
                                              0x3c6ef372, 0xa54ff53a,
                                              0x510e527f, 0x9b05688c,
                                              0x1f83d9ab, 0x5be0cd19};

constexpr u32 rotr(u32 x, int n) { return (x >> n) | (x << (32 - n)); }
constexpr u32 ch(u32 x, u32 y, u32 z) { return (x & y) ^ (~x & z); }
constexpr u32 maj(u32 x, u32 y, u32 z) { return (x & y) ^ (x & z) ^ (y & z); }
constexpr u32 big_sigma0(u32 x) { return rotr(x, 2) ^ rotr(x, 13) ^ rotr(x, 22); }
constexpr u32 big_sigma1(u32 x) { return rotr(x, 6) ^ rotr(x, 11) ^ rotr(x, 25); }
constexpr u32 small_sigma0(u32 x) { return rotr(x, 7) ^ rotr(x, 18) ^ (x >> 3); }
constexpr u32 small_sigma1(u32 x) { return rotr(x, 17) ^ rotr(x, 19) ^ (x >> 10); }

}  // namespace

void Sha256::reset() {
  state_ = kInitialState;
  buffered_ = 0;
  length_bits_ = 0;
  compressions_ = 0;
  finalized_ = false;
}

void Sha256::compress(const u8 block[kSha256BlockSize]) {
  u32 w[64];
  for (int t = 0; t < 16; ++t) w[t] = load_be32(block + 4 * t);
  for (int t = 16; t < 64; ++t)
    w[t] = small_sigma1(w[t - 2]) + w[t - 7] + small_sigma0(w[t - 15]) +
           w[t - 16];

  u32 a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  u32 e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int t = 0; t < 64; ++t) {
    const u32 t1 = h + big_sigma1(e) + ch(e, f, g) + kRoundConstants[t] + w[t];
    const u32 t2 = big_sigma0(a) + maj(a, b, c);
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
  ++compressions_;
}

void Sha256::update(ByteView data) {
  LACRV_CHECK_MSG(!finalized_, "update() after finalize(); call reset()");
  if (data.empty()) return;  // empty views may carry a null data()
  length_bits_ += static_cast<u64>(data.size()) * 8;
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take =
        std::min(kSha256BlockSize - buffered_, data.size());
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == kSha256BlockSize) {
      compress(buffer_);
      buffered_ = 0;
    }
  }
  while (offset + kSha256BlockSize <= data.size()) {
    compress(data.data() + offset);
    offset += kSha256BlockSize;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Digest Sha256::finalize() {
  LACRV_CHECK_MSG(!finalized_, "finalize() called twice; call reset()");
  finalized_ = true;
  // Padding: 0x80, zeros, then the 64-bit big-endian message length.
  u8 pad[kSha256BlockSize * 2] = {0x80};
  const std::size_t pad_len =
      (buffered_ < 56 ? 56 - buffered_ : 120 - buffered_);
  u8 len_be[8];
  for (int i = 0; i < 8; ++i)
    len_be[i] = static_cast<u8>(length_bits_ >> (56 - 8 * i));

  // Feed padding through the block buffer manually (update() is locked).
  std::memcpy(buffer_ + buffered_, pad, kSha256BlockSize - buffered_);
  if (buffered_ >= 56) {
    compress(buffer_);
    std::memset(buffer_, 0, kSha256BlockSize);
  }
  std::memcpy(buffer_ + 56, len_be, 8);
  compress(buffer_);
  (void)pad_len;

  Digest out;
  for (int i = 0; i < 8; ++i) store_be32(out.data() + 4 * i, state_[i]);
  return out;
}

Digest sha256(ByteView data) {
  Sha256 h;
  h.update(data);
  return h.finalize();
}

Digest sha256(ByteView a, ByteView b) {
  Sha256 h;
  h.update(a);
  h.update(b);
  return h.finalize();
}

}  // namespace lacrv::hash
