// Keccak-f[1600], SHA3-256 and the SHAKE-128 XOF.
//
// The paper's future-work item (Sec. VI-B): "Changing the SHA256
// accelerator with a Keccak accelerator to further increase the
// performance of LAC". NewHope's co-design [8] uses exactly this
// primitive for its much faster GenA. We implement it so the
// ablation bench can quantify what the swap would buy LAC.
#pragma once

#include <array>

#include "common/types.h"

namespace lacrv::hash {

using KeccakState = std::array<u64, 25>;

/// The Keccak-f[1600] permutation (24 rounds), in place.
void keccak_f1600(KeccakState& state);

/// SHA3-256 (rate 136, domain suffix 0x06).
std::array<u8, 32> sha3_256(ByteView data);

/// SHAKE-128 (rate 168, domain suffix 0x1F): absorb once, squeeze any
/// number of bytes.
class Shake128 {
 public:
  static constexpr std::size_t kRate = 168;

  explicit Shake128(ByteView seed);

  u8 next_byte();
  u32 next_u32();  // little-endian over four bytes
  void fill(u8* out, std::size_t len);
  /// Uniform value below bound via rejection (byte path for bound <= 256,
  /// 32-bit path above — same contract as Sha256Prg::next_below).
  u32 next_below(u32 bound);

  /// Keccak-f permutations performed so far (for timing models: one
  /// permutation produces a full 168-byte rate block).
  u64 permutations() const { return permutations_; }
  u64 bytes_drawn() const { return bytes_drawn_; }

 private:
  void squeeze_block();

  KeccakState state_{};
  std::array<u8, kRate> block_{};
  std::size_t pos_ = kRate;
  u64 permutations_ = 0;
  u64 bytes_drawn_ = 0;
};

}  // namespace lacrv::hash
