// SHA-256 (FIPS 180-4). LAC uses SHA-256 as its only symmetric primitive:
// seed expansion for GenA, randomness for the ternary samplers, and the
// hashes of the Fujisaki-Okamoto transform all run through it.
//
// Incremental (init/update/final) interface plus one-shot helpers.
#pragma once

#include <array>
#include <functional>

#include "common/types.h"

namespace lacrv::hash {

inline constexpr std::size_t kSha256DigestSize = 32;
inline constexpr std::size_t kSha256BlockSize = 64;

using Digest = std::array<u8, kSha256DigestSize>;

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(ByteView data);
  /// Finalize and return the digest. The object must be reset() before reuse.
  Digest finalize();

  /// Number of 64-byte compression-function invocations so far, including
  /// those triggered by padding in finalize(). The timing models use this
  /// to charge per-block costs that match what really executed.
  u64 compressions() const { return compressions_; }

 private:
  void compress(const u8 block[kSha256BlockSize]);

  std::array<u32, 8> state_{};
  u8 buffer_[kSha256BlockSize]{};
  std::size_t buffered_ = 0;
  u64 length_bits_ = 0;
  u64 compressions_ = 0;
  bool finalized_ = false;
};

/// One-shot SHA-256.
Digest sha256(ByteView data);

/// One-shot SHA-256 over the concatenation a || b (saves a buffer copy at
/// call sites like H(m || ct) in the KEM).
Digest sha256(ByteView a, ByteView b);

/// A pluggable one-shot SHA-256 implementation (e.g. the RTL accelerator
/// core). Implementations must be bit-identical to sha256(); the hardened
/// KEM path can cross-check them against the software hash at runtime.
using HashFn = std::function<Digest(ByteView)>;

}  // namespace lacrv::hash
