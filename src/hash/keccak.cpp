#include "hash/keccak.h"

#include "common/check.h"

namespace lacrv::hash {
namespace {

constexpr std::array<u64, 24> kRoundConstants = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL};

// rotation offsets (rho), indexed [x][y]
constexpr int kRho[5][5] = {{0, 36, 3, 41, 18},
                            {1, 44, 10, 45, 2},
                            {62, 6, 43, 15, 61},
                            {28, 55, 25, 21, 56},
                            {27, 20, 39, 8, 14}};

constexpr u64 rotl(u64 x, int n) {
  return n == 0 ? x : (x << n) | (x >> (64 - n));
}

/// Generic sponge: absorb `data` with the given rate and domain suffix,
/// leaving the state ready for squeezing.
KeccakState absorb(ByteView data, std::size_t rate, u8 suffix) {
  KeccakState state{};
  std::size_t offset = 0;
  // full blocks
  while (data.size() - offset >= rate) {
    for (std::size_t i = 0; i < rate; ++i)
      state[i / 8] ^= static_cast<u64>(data[offset + i]) << (8 * (i % 8));
    keccak_f1600(state);
    offset += rate;
  }
  // final partial block + padding
  for (std::size_t i = 0; offset + i < data.size(); ++i)
    state[i / 8] ^= static_cast<u64>(data[offset + i]) << (8 * (i % 8));
  const std::size_t tail = data.size() - offset;
  state[tail / 8] ^= static_cast<u64>(suffix) << (8 * (tail % 8));
  state[(rate - 1) / 8] ^= 0x80ULL << (8 * ((rate - 1) % 8));
  keccak_f1600(state);
  return state;
}

}  // namespace

void keccak_f1600(KeccakState& a) {
  const auto idx = [](int x, int y) { return x + 5 * y; };
  for (int round = 0; round < 24; ++round) {
    // theta
    u64 c[5], d[5];
    for (int x = 0; x < 5; ++x)
      c[x] = a[idx(x, 0)] ^ a[idx(x, 1)] ^ a[idx(x, 2)] ^ a[idx(x, 3)] ^
             a[idx(x, 4)];
    for (int x = 0; x < 5; ++x) {
      d[x] = c[(x + 4) % 5] ^ rotl(c[(x + 1) % 5], 1);
      for (int y = 0; y < 5; ++y) a[idx(x, y)] ^= d[x];
    }
    // rho + pi
    u64 b[25];
    for (int x = 0; x < 5; ++x)
      for (int y = 0; y < 5; ++y)
        b[idx(y, (2 * x + 3 * y) % 5)] = rotl(a[idx(x, y)], kRho[x][y]);
    // chi
    for (int x = 0; x < 5; ++x)
      for (int y = 0; y < 5; ++y)
        a[idx(x, y)] =
            b[idx(x, y)] ^ (~b[idx((x + 1) % 5, y)] & b[idx((x + 2) % 5, y)]);
    // iota
    a[0] ^= kRoundConstants[round];
  }
}

std::array<u8, 32> sha3_256(ByteView data) {
  const KeccakState state = absorb(data, 136, 0x06);
  std::array<u8, 32> digest;
  for (std::size_t i = 0; i < digest.size(); ++i)
    digest[i] = static_cast<u8>(state[i / 8] >> (8 * (i % 8)));
  return digest;
}

Shake128::Shake128(ByteView seed) { state_ = absorb(seed, kRate, 0x1F); }

void Shake128::squeeze_block() {
  // The state already holds squeezable bytes right after absorb(); a
  // permutation is applied before every *subsequent* block.
  if (permutations_ > 0) keccak_f1600(state_);
  ++permutations_;
  for (std::size_t i = 0; i < kRate; ++i)
    block_[i] = static_cast<u8>(state_[i / 8] >> (8 * (i % 8)));
  pos_ = 0;
}

u8 Shake128::next_byte() {
  if (pos_ >= kRate) squeeze_block();
  ++bytes_drawn_;
  return block_[pos_++];
}

void Shake128::fill(u8* out, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) out[i] = next_byte();
}

u32 Shake128::next_u32() {
  u32 v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<u32>(next_byte()) << (8 * i);
  return v;
}

u32 Shake128::next_below(u32 bound) {
  LACRV_CHECK(bound > 0);
  if (bound <= 0x100) {
    const u32 limit = (0x100 / bound) * bound;
    u32 b = next_byte();
    while (b >= limit) b = next_byte();
    return b % bound;
  }
  const u64 span = u64{1} << 32;
  const u32 limit = static_cast<u32>((span / bound) * bound - 1);
  u32 v = next_u32();
  while (v > limit) v = next_u32();
  return v % bound;
}

}  // namespace lacrv::hash
