#include "service/service.h"

#include <utility>

#include "fault/selftest.h"
#include "lac/backend.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perf/rtl_backend.h"

namespace lacrv::service {
namespace {

/// Canonical unit name of breaker i — the registry slot name, shared
/// with trace spans, bench keys and --mix flags.
const char* unit_name(std::size_t i) {
  return lac::slot_name(lac::kAllSlots[i]);
}

constexpr const char* op_name(OpKind op) {
  switch (op) {
    case OpKind::kEncaps: return "encaps";
    case OpKind::kDecaps: return "decaps";
    case OpKind::kGeneric: return "generic";
  }
  return "?";
}

}  // namespace

KemService::KemService(ServiceConfig config)
    : config_(config),
      params_(config.params ? config.params : &lac::Params::lac128()),
      clock_(config.clock ? config.clock : &RealClock::instance()),
      verifier_(config.verify),
      ctx_cache_(config.context_cache_capacity),
      queue_(config.queue_capacity) {
  // Provisioning: the service keypair is generated on the golden
  // software backend, so a faulted accelerator can corrupt requests but
  // never the long-lived key material.
  keys_ = lac::kem_keygen(*params_, lac::Backend::optimized(),
                          config_.key_seed);

  auto on_transition = [this](const char* unit, BreakerState from,
                              BreakerState to, const std::string& detail) {
    if (to == BreakerState::kOpen)
      counters_.breaker_trips.fetch_add(1, std::memory_order_relaxed);
    if (from == BreakerState::kHalfOpen && to == BreakerState::kClosed)
      counters_.breaker_recoveries.fetch_add(1, std::memory_order_relaxed);
    // The transition fires on whatever thread recorded the deciding
    // failure/probe, so the thread-local trace id links it to the
    // request that tripped (0 for prober-driven transitions).
    obs::instant("breaker.transition", "breaker", {},
                 {{"unit", std::string(unit)},
                  {"from", std::string(breaker_state_name(from))},
                  {"to", std::string(breaker_state_name(to))}});
    std::lock_guard<std::mutex> lock(report_mutex_);
    report_.add(unit,
                to == BreakerState::kOpen ? Status::kUnavailable : Status::kOk,
                std::string(breaker_state_name(from)) + " -> " +
                    breaker_state_name(to) + ": " + detail);
  };
  for (std::size_t i = 0; i < kNumUnits; ++i)
    breakers_[i].configure(unit_name(i), config_.breaker, on_transition);

  auto on_quarantine = [this](const char* slot, verify::QuarantineState from,
                              verify::QuarantineState to,
                              const std::string& detail) {
    if (to == verify::QuarantineState::kQuarantined)
      quarantine_trips_.fetch_add(1, std::memory_order_relaxed);
    if (to == verify::QuarantineState::kHealthy)
      quarantine_rejoins_.fetch_add(1, std::memory_order_relaxed);
    obs::instant("verify.quarantine_transition", "verify", {},
                 {{"slot", std::string(slot)},
                  {"from", std::string(verify::quarantine_state_name(from))},
                  {"to", std::string(verify::quarantine_state_name(to))}});
    std::lock_guard<std::mutex> lock(report_mutex_);
    report_.add(slot,
                to == verify::QuarantineState::kQuarantined
                    ? Status::kIntegrity
                    : Status::kOk,
                std::string("quarantine ") +
                    verify::quarantine_state_name(from) + " -> " +
                    verify::quarantine_state_name(to) + ": " + detail);
  };
  for (std::size_t i = 0; i < kNumUnits; ++i)
    quarantines_[i].configure(unit_name(i), config_.verify.quarantine,
                              on_quarantine);

  const std::size_t workers = std::max<std::size_t>(1, config_.workers);
  rigs_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    rigs_.push_back(std::make_unique<Rig>());
    build_rig(*rigs_.back());
  }
  prober_rig_ = std::make_unique<Rig>();
  build_rig(*prober_rig_);

  if (config_.use_key_context) {
    // The service key's context: first call builds (one gen_a + one
    // H(pk) for the whole service lifetime), the rest hit the cache and
    // share the same immutable object.
    for (auto& rig : rigs_)
      rig->key_ctx = ctx_cache_.get_or_build(*params_, rig->backend, keys_);
  }

  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
  if (config_.enable_prober) prober_ = std::thread([this] { prober_main(); });
}

KemService::~KemService() { stop(); }

void KemService::build_rig(Rig& rig) {
  rig.mul = std::make_shared<rtl::MulTerRtl>(poly::kMulTerLength);
  rig.chien = std::make_shared<rtl::ChienRtl>();
  rig.sha = std::make_shared<rtl::Sha256Rtl>();
  rig.barrett = std::make_shared<rtl::BarrettRtl>();

  // Breaker-switched callables: each consults its unit's breaker at
  // call time, so an open breaker reroutes every worker's very next
  // operation — no backend rebuild, no lock on the hot path beyond the
  // breaker's own. They are installed (not injected) into the rig's
  // registry profile: a callable that changes behaviour at runtime by
  // design cannot be gated behind a one-shot construction KAT; the
  // breakers + health probes own its validation instead.
  auto registry = std::make_shared<lac::KernelRegistry>(
      lac::KernelRegistry::modeled(params_->q));

  // A slot config pins to software keeps the registry's modeled callable
  // — no breaker switching, no usage flags (config choice, not
  // degradation).
  if (config_.slot_use_rtl[kMulIdx]) {
    const poly::MulTer512 rtl_mul = perf::rtl_mul_ter(rig.mul);
    const poly::MulTer512 sw_mul = lac::modeled_mul_ter();
    registry->mul_ter().install(
        [this, &rig, rtl_mul, sw_mul](const poly::Ternary& a,
                                      const poly::Coeffs& coeffs,
                                      bool negacyclic, CycleLedger* ledger) {
          if (unit_allowed(kMulIdx)) {
            rig.rtl_used[kMulIdx] = true;
            return rtl_mul(a, coeffs, negacyclic, ledger);
          }
          rig.fallback_used[kMulIdx] = true;
          return sw_mul(a, coeffs, negacyclic, ledger);
        });
  }

  if (config_.slot_use_rtl[kChienIdx]) {
    const bch::ChienStage rtl_chien = perf::rtl_chien(rig.chien);
    const bch::ChienStage sw_chien = lac::modeled_chien();
    registry->chien().install(
        [this, &rig, rtl_chien, sw_chien](const bch::CodeSpec& spec,
                                          const bch::Locator& loc,
                                          CycleLedger* ledger) {
          if (unit_allowed(kChienIdx)) {
            rig.rtl_used[kChienIdx] = true;
            return rtl_chien(spec, loc, ledger);
          }
          rig.fallback_used[kChienIdx] = true;
          return sw_chien(spec, loc, ledger);
        });
  }

  if (config_.slot_use_rtl[kShaIdx]) {
    const hash::HashFn rtl_sha = perf::rtl_sha256(rig.sha);
    registry->sha256().install([this, &rig, rtl_sha](ByteView data) {
      if (unit_allowed(kShaIdx)) {
        rig.rtl_used[kShaIdx] = true;
        return rtl_sha(data);
      }
      rig.fallback_used[kShaIdx] = true;
      return hash::sha256(data);
    });
  }

  // The BarrettRtl datapath is built for q = 251; a scheme profile with
  // a different modulus keeps the slot on its modeled implementation
  // (the same posture inject_modq's modulus validation enforces).
  if (config_.slot_use_rtl[kModqIdx] && params_->q == poly::kQ) {
    const poly::ModqFn rtl_modq = perf::rtl_modq(rig.barrett);
    const poly::ModqFn sw_modq = lac::modeled_modq();
    registry->modq().install(
        [this, &rig, rtl_modq, sw_modq](u32 x, CycleLedger* ledger) {
          if (unit_allowed(kModqIdx)) {
            rig.rtl_used[kModqIdx] = true;
            return rtl_modq(x, ledger);
          }
          rig.fallback_used[kModqIdx] = true;
          return sw_modq(x, ledger);
        });
  }

  lac::Backend b = lac::Backend::optimized_from(std::move(registry));
  b.name = "service";
  // The per-digest software cross-check stays on: it is the only
  // defense that catches a transient SHA fault mid-operation.
  b.verify_hash = true;
  rig.backend = std::move(b);

  if (config_.verify.enabled) {
    // The shadow re-execution backend: a fresh modeled registry with no
    // installed callables — no RTL units, no fault hooks, no breaker or
    // quarantine switching. Worker-private like the rest of the rig.
    rig.golden = lac::Backend::optimized_from(
        std::make_shared<lac::KernelRegistry>(
            lac::KernelRegistry::modeled(params_->q)));
    rig.golden.name = "golden-shadow";
  }

  // Per-slot KAT re-runs against this rig's own units, indexed like
  // breakers_ (barrett keyed under the modq slot).
  rig.unit_selftest = {
      [&rig](std::string* d) { return fault::selftest_mul_ter(*rig.mul, d); },
      [&rig](std::string* d) { return fault::selftest_chien(*rig.chien, d); },
      [&rig](std::string* d) { return fault::selftest_sha256(*rig.sha, d); },
      [&rig](std::string* d) {
        return fault::selftest_barrett(*rig.barrett, d);
      },
  };
}

void KemService::resolve(Task& task, KemResponse response) {
  if (task.callback) {
    // The callback path (submit_with_callback) delivers off-promise; a
    // throwing callback must not kill the worker or submitter thread.
    try {
      task.callback(std::move(response));
    } catch (...) {
    }
    return;
  }
  task.promise.set_value(std::move(response));
}

KemService::Task KemService::make_kem_task(KemRequest request) {
  Task task;
  task.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  task.op = request.op;
  task.deadline_micros = request.deadline_micros;
  task.submitted_micros = clock_->now_micros();
  task.request = std::move(request);
  return task;
}

KemResponse KemService::execute_kem(const KemRequest& request, Rig& rig) {
  const lac::KeyContext* ctx = rig.key_ctx.get();
  KemResponse r;
  if (request.op == OpKind::kEncaps) {
    lac::EncapsOutcome out =
        ctx ? lac::encapsulate_checked(*params_, rig.backend, *ctx,
                                       request.entropy)
            : lac::encapsulate_checked(*params_, rig.backend, keys_.pk,
                                       request.entropy);
    r.status = out.status;
    r.encaps = std::move(out.result);
    r.hash_fault_detected = out.hash_fault_detected;
    r.detail = std::move(out.detail);
  } else {
    lac::DecapsOutcome out =
        ctx ? lac::decapsulate_checked(*params_, rig.backend, *ctx,
                                       request.ct)
            : lac::decapsulate_checked(*params_, rig.backend, keys_,
                                       request.ct);
    r.status = out.status;
    r.key = out.key;
    r.hash_fault_detected = out.hash_fault_detected;
    r.detail = std::move(out.detail);
  }
  return r;
}

std::future<KemResponse> KemService::submit(KemRequest request) {
  return enqueue_task(make_kem_task(std::move(request)));
}

std::vector<std::future<KemResponse>> KemService::submit_batch(
    std::vector<KemRequest> requests) {
  counters_.batch_submissions.fetch_add(1, std::memory_order_relaxed);
  std::vector<Task> tasks;
  tasks.reserve(requests.size());
  std::vector<std::future<KemResponse>> futures;
  futures.reserve(requests.size());
  for (KemRequest& request : requests) {
    tasks.push_back(make_kem_task(std::move(request)));
    futures.push_back(tasks.back().promise.get_future());
  }
  counters_.submitted.fetch_add(tasks.size(), std::memory_order_relaxed);

  if (draining()) {
    for (Task& task : tasks) {
      counters_.shed_at_shutdown.fetch_add(1, std::memory_order_relaxed);
      KemResponse r;
      r.status = Status::kUnavailable;
      r.detail = stopping_.load(std::memory_order_acquire)
                     ? "service stopped"
                     : "service draining";
      resolve(task, std::move(r));
    }
    return futures;
  }

  // One lock round-trip admits the whole burst; whatever exceeds the
  // queue's remaining capacity is rejected per request, exactly like a
  // lone submit() racing a full queue.
  const std::size_t accepted = queue_.push_many(tasks);
  for (std::size_t i = accepted; i < tasks.size(); ++i) {
    counters_.rejected_overload.fetch_add(1, std::memory_order_relaxed);
    obs::instant("service.overloaded", "service", {{"request", tasks[i].id}});
    KemResponse r;
    r.status = Status::kOverloaded;
    r.detail = "submission queue full";
    resolve(tasks[i], std::move(r));
  }
  return futures;
}

void KemService::submit_with_callback(KemRequest request, Completion done) {
  Task task = make_kem_task(std::move(request));
  task.callback = std::move(done);
  // The promise/future pair stays unused; every completion path resolves
  // through the callback instead.
  enqueue_task(std::move(task));
}

std::future<KemResponse> KemService::submit_job(Job job, u64 deadline_micros) {
  Task task;
  task.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  task.op = OpKind::kGeneric;
  task.job = std::move(job);
  task.deadline_micros = deadline_micros;
  task.submitted_micros = clock_->now_micros();
  return enqueue_task(std::move(task));
}

std::future<KemResponse> KemService::enqueue_task(Task task) {
  std::future<KemResponse> future = task.promise.get_future();

  counters_.submitted.fetch_add(1, std::memory_order_relaxed);
  if (draining()) {
    counters_.shed_at_shutdown.fetch_add(1, std::memory_order_relaxed);
    KemResponse r;
    r.status = Status::kUnavailable;
    r.detail = stopping_.load(std::memory_order_acquire)
                   ? "service stopped"
                   : "service draining";
    resolve(task, std::move(r));
    return future;
  }
  const u64 task_id = task.id;
  if (!queue_.try_push(std::move(task))) {
    KemResponse r;
    if (draining()) {
      // Lost the race with drain()/stop() closing the queue: report the
      // shutdown verdict, not a spurious full-queue one.
      counters_.shed_at_shutdown.fetch_add(1, std::memory_order_relaxed);
      r.status = Status::kUnavailable;
      r.detail = "service draining";
    } else {
      counters_.rejected_overload.fetch_add(1, std::memory_order_relaxed);
      obs::instant("service.overloaded", "service", {{"request", task_id}});
      r.status = Status::kOverloaded;
      r.detail = "submission queue full";
    }
    resolve(task, std::move(r));
  }
  return future;
}

void KemService::worker_main(std::size_t index) {
  Rig& rig = *rigs_[index];
  const std::size_t max_batch = std::max<std::size_t>(1, config_.max_batch);
  for (;;) {
    std::vector<Task> batch = queue_.pop_batch(max_batch);
    if (batch.empty()) return;  // closed and drained
    counters_.micro_batches.fetch_add(1, std::memory_order_relaxed);
    // The batch span deliberately has no request trace id (it covers
    // several); trace_check matches attempts into batches by tid + time
    // containment.
    obs::TraceSpan batch_span("service.batch", "service");
    batch_span.arg("size", static_cast<u64>(batch.size()));
    for (Task& task : batch) process(std::move(task), rig);
  }
}

void KemService::process(Task task, Rig& rig) {
  // Every event this worker records while serving the request — service
  // spans, KEM phases, RTL busy windows, breaker transitions — carries
  // the request id as its trace id.
  obs::TraceContextScope trace_ctx(task.id);
  if (stopping_.load(std::memory_order_acquire)) {
    counters_.shed_at_shutdown.fetch_add(1, std::memory_order_relaxed);
    KemResponse r;
    r.status = Status::kUnavailable;
    r.detail = "service stopping";
    resolve(task, std::move(r));
    return;
  }
  if (expired(task.deadline_micros)) {
    // Shed while queued: the deadline passed before any execution.
    counters_.rejected_deadline.fetch_add(1, std::memory_order_relaxed);
    obs::instant("service.deadline_shed", "service",
                 {{"request", task.id}});
    KemResponse r;
    r.status = Status::kDeadlineExceeded;
    r.detail = "deadline expired while queued";
    resolve(task, std::move(r));
    return;
  }
  if (obs::Tracer* tracer = obs::Tracer::active()) {
    // Queue wait, reconstructed backwards: the service clock knows the
    // wait duration, the tracer's own clock anchors the end at "now".
    const u64 wait = clock_->now_micros() - task.submitted_micros;
    const u64 now = tracer->now_micros();
    tracer->complete_event("service.queued", "service",
                           now > wait ? now - wait : 0, wait,
                           {{"request", task.id}},
                           {{"op", op_name(task.op)}});
  }

  KemResponse response;
  int attempt = 0;
  bool deadline_hit = false;
  for (;;) {
    ++attempt;
    rig.rtl_used = {};
    rig.fallback_used = {};
    {
      obs::TraceSpan attempt_span("service.attempt", "service");
      attempt_span.arg("request", task.id);
      attempt_span.arg("attempt", static_cast<u64>(attempt));
      // The checked KEM entry points already contain CheckError; this
      // last-resort net turns anything else a faulted unit provokes into
      // a typed, retryable status — a worker thread must never die.
      try {
        response = task.job ? task.job(rig.backend)
                            : execute_kem(task.request, rig);
      } catch (const std::exception& e) {
        response = KemResponse{};
        response.status = Status::kInternalError;
        response.detail = std::string("uncaught exception: ") + e.what();
      } catch (...) {
        response = KemResponse{};
        response.status = Status::kInternalError;
        response.detail = "uncaught non-standard exception";
      }
      response.attempts = attempt;
      response.served_by_fallback = false;
      for (std::size_t i = 0; i < kNumUnits; ++i)
        response.served_by_fallback |= rig.fallback_used[i];
      attempt_span.arg("status", std::string(status_name(response.status)));
      if (response.served_by_fallback) attempt_span.arg("fallback", u64{1});
    }
    if (response.hash_fault_detected) {
      counters_.hash_faults_corrected.fetch_add(1, std::memory_order_relaxed);
      breakers_[kShaIdx].record_failure("runtime hash cross-check mismatch");
    }

    if (!retryable(response.status)) {
      record_successes(rig, response.hash_fault_detected);
      break;
    }

    counters_.failed_attempts.fetch_add(1, std::memory_order_relaxed);
    attribute_failure(rig, response.status);
    if (attempt >= config_.retry.max_attempts) break;

    const u64 delay = config_.retry.backoff_micros(attempt, task.id);
    if (task.deadline_micros != kNoDeadline &&
        clock_->now_micros() + delay >= task.deadline_micros) {
      // The next attempt could only start past the deadline: shed now
      // (deadline expired while executing).
      deadline_hit = true;
      break;
    }
    counters_.retries.fetch_add(1, std::memory_order_relaxed);
    obs::instant("service.retry_backoff", "service",
                 {{"request", task.id}, {"delay_micros", delay}});
    clock_->sleep_for(delay, &stopping_);
    if (stopping_.load(std::memory_order_acquire)) break;
    if (expired(task.deadline_micros)) {
      deadline_hit = true;
      break;
    }
  }

  if (deadline_hit) {
    counters_.rejected_deadline.fetch_add(1, std::memory_order_relaxed);
    obs::instant("service.deadline_shed", "service",
                 {{"request", task.id}, {"attempts", static_cast<u64>(attempt)}});
    KemResponse r;
    r.status = Status::kDeadlineExceeded;
    r.attempts = attempt;
    r.detail = "deadline expired during retry backoff after " +
               std::string(status_name(response.status));
    response = std::move(r);
  }
  maybe_shadow_verify(task, rig, response);
  finish(task, std::move(response));
}

void KemService::maybe_shadow_verify(const Task& task, Rig& rig,
                                     KemResponse& response) {
  if (!verifier_.enabled()) return;
  if (task.op != OpKind::kEncaps && task.op != OpKind::kDecaps) return;
  // Only statuses that delivered an answer are comparable: a shed or
  // refused request returned no bits an accelerator could have
  // corrupted.
  if (task.op == OpKind::kEncaps) {
    if (response.status != Status::kOk) return;
  } else if (response.status != Status::kOk &&
             response.status != Status::kRejected &&
             response.status != Status::kDecodeFailure) {
    return;
  }

  // Probation floor: a slot under suspicion forces its own sampling rate
  // onto every request that used it, over the configured baseline.
  u32 override_rate = 0;
  for (std::size_t i = 0; i < kNumUnits; ++i)
    if (rig.rtl_used[i])
      override_rate = std::max(override_rate,
                               quarantines_[i].sample_override_per_mille());
  if (!verifier_.should_verify(task.id, override_rate)) return;

  obs::TraceSpan span("verify.shadow", "verify");
  span.arg("request", task.id);
  span.arg("op", std::string(op_name(task.op)));
  verifier_.record_checked();
  response.shadow_checked = true;

  const verify::ShadowResult shadow =
      task.op == OpKind::kEncaps
          ? verify::shadow_encaps(*params_, rig.golden, keys_.pk,
                                  task.request.entropy, response.status,
                                  response.encaps)
          : verify::shadow_decaps(*params_, rig.golden, keys_,
                                  task.request.ct, response.status,
                                  response.key);

  if (!shadow.diverged) {
    for (std::size_t i = 0; i < kNumUnits; ++i)
      if (rig.rtl_used[i]) quarantines_[i].record_clean_verify();
    return;
  }
  span.arg("diverged", u64{1});

  std::string slots;
  for (std::size_t i = 0; i < kNumUnits; ++i) {
    if (!rig.rtl_used[i]) continue;
    if (!slots.empty()) slots += ",";
    slots += unit_name(i);
  }

  // Attribution: let the KATs try first — a slot whose KAT fails *now*
  // is the proven culprit and also feeds its breaker. When every KAT is
  // green (the evasive-transient case: the fault fired once, the live
  // operation consumed it, nothing is left for a KAT to see), every
  // slot the rig served via RTL in the final attempt is quarantined
  // conservatively; probation rejoins the innocent ones within a probe
  // interval plus a clean-verification window.
  bool attributed = false;
  std::string kat_detail;
  for (std::size_t i = 0; i < kNumUnits; ++i) {
    if (!rig.rtl_used[i]) continue;
    if (rig.unit_selftest[i](&kat_detail)) continue;
    attributed = true;
    breakers_[i].record_failure(kat_detail + " after verified divergence");
    quarantines_[i].record_mismatch("KAT-attributed divergence: " +
                                    shadow.detail);
  }
  if (!attributed) {
    for (std::size_t i = 0; i < kNumUnits; ++i)
      if (rig.rtl_used[i])
        quarantines_[i].record_mismatch("unattributed divergence (" +
                                        shadow.detail + ")");
  }

  verify::DivergenceRecord rec;
  rec.trace_id = task.id;
  rec.op = op_name(task.op);
  rec.slots = slots;
  rec.operand_digest =
      task.op == OpKind::kEncaps
          ? verify::encaps_operand_digest(task.request.entropy)
          : verify::decaps_operand_digest(*params_, task.request.ct);
  rec.detail = shadow.detail;
  verifier_.record_divergence(std::move(rec));
  obs::instant("verify.mismatch", "verify", {{"request", task.id}},
               {{"op", std::string(op_name(task.op))},
                {"slots", slots},
                {"diverged", shadow.detail}});

  if (verifier_.config().serve_golden_on_mismatch) {
    // Zero wrong answers leave the process for a sampled request: the
    // golden re-execution *is* the response.
    verifier_.record_corrected();
    if (task.op == OpKind::kEncaps) {
      response.status = shadow.golden_encaps.status;
      response.encaps = shadow.golden_encaps.result;
      response.hash_fault_detected |=
          shadow.golden_encaps.hash_fault_detected;
    } else {
      response.status = shadow.golden_decaps.status;
      response.key = shadow.golden_decaps.key;
      response.hash_fault_detected |=
          shadow.golden_decaps.hash_fault_detected;
    }
    response.integrity_corrected = true;
    response.detail =
        "shadow divergence corrected from golden (" + shadow.detail + ")";
  } else {
    verifier_.record_integrity_response();
    response.status = Status::kIntegrity;
    response.encaps = {};
    response.key = {};
    response.detail = "shadow divergence: " + shadow.detail;
  }
}

void KemService::attribute_failure(Rig& rig, Status status) {
  const std::string why = std::string("after ") + status_name(status);
  std::string detail;
  for (std::size_t i = 0; i < kNumUnits; ++i) {
    if (!breakers_[i].allow()) continue;
    if (!rig.unit_selftest[i](&detail))
      breakers_[i].record_failure(detail + " " + why);
  }
}

void KemService::record_successes(const Rig& rig, bool hash_fault) {
  for (std::size_t i = 0; i < kNumUnits; ++i) {
    if (!rig.rtl_used[i]) continue;
    // A corrected digest is not a sha256 success even though the op
    // completed — the failure was already recorded.
    if (i == kShaIdx && hash_fault) continue;
    breakers_[i].record_success();
  }
}

void KemService::finish(Task& task, KemResponse response) {
  counters_.completed.fetch_add(1, std::memory_order_relaxed);
  if (response.status == Status::kOk)
    counters_.ok.fetch_add(1, std::memory_order_relaxed);
  if (response.served_by_fallback)
    counters_.served_degraded.fetch_add(1, std::memory_order_relaxed);
  const u64 latency = clock_->now_micros() - task.submitted_micros;
  if (task.op == OpKind::kEncaps) counters_.encaps_latency.record(latency);
  if (task.op == OpKind::kDecaps) counters_.decaps_latency.record(latency);
  resolve(task, std::move(response));
}

bool KemService::probe_now() {
  std::lock_guard<std::mutex> lock(probe_mutex_);
  counters_.probes.fetch_add(1, std::memory_order_relaxed);
  bool all_passed = true;
  std::string detail;
  for (std::size_t i = 0; i < kNumUnits; ++i) {
    if (prober_rig_->unit_selftest[i](&detail)) {
      breakers_[i].probe_passed();
      // A passing KAT also walks a quarantined slot toward probation —
      // rejoin itself still requires clean *traffic* verification.
      quarantines_[i].probe_passed();
    } else {
      breakers_[i].probe_failed(detail);
      quarantines_[i].probe_failed(detail);
      all_passed = false;
    }
  }
  return all_passed;
}

void KemService::prober_main() {
  while (!stopping_.load(std::memory_order_acquire)) {
    clock_->sleep_for(config_.probe_interval_micros, &stopping_);
    if (stopping_.load(std::memory_order_acquire)) break;
    probe_now();
  }
}

void KemService::arm_faults(fault::FaultPlan& plan) {
  for (auto& rig : rigs_) {
    plan.arm(*rig->mul);
    plan.arm(*rig->chien);
    plan.arm(*rig->sha);
    plan.arm(*rig->barrett);
  }
  plan.arm(*prober_rig_->mul);
  plan.arm(*prober_rig_->chien);
  plan.arm(*prober_rig_->sha);
  plan.arm(*prober_rig_->barrett);
}

void KemService::clear_faults() {
  for (auto& rig : rigs_) {
    fault::FaultPlan::disarm(*rig->mul);
    fault::FaultPlan::disarm(*rig->chien);
    fault::FaultPlan::disarm(*rig->sha);
    fault::FaultPlan::disarm(*rig->barrett);
  }
  fault::FaultPlan::disarm(*prober_rig_->mul);
  fault::FaultPlan::disarm(*prober_rig_->chien);
  fault::FaultPlan::disarm(*prober_rig_->sha);
  fault::FaultPlan::disarm(*prober_rig_->barrett);
}

void KemService::stop() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);
  queue_.close();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
  if (prober_.joinable()) prober_.join();
  // Anything the workers did not reach is shed with a typed status.
  while (auto task = queue_.try_pop()) {
    counters_.shed_at_shutdown.fetch_add(1, std::memory_order_relaxed);
    KemResponse r;
    r.status = Status::kUnavailable;
    r.detail = "service stopped before execution";
    resolve(*task, std::move(r));
  }
}

void KemService::drain() {
  if (stopped_.exchange(true)) return;
  // New submissions are rejected from here on; stopping_ stays false so
  // the workers *execute* (not shed) everything already queued,
  // including retry backoffs of in-flight requests.
  draining_.store(true, std::memory_order_release);
  queue_.close();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
  stopping_.store(true, std::memory_order_release);
  if (prober_.joinable()) prober_.join();
  // The workers drained the closed queue to empty before exiting; this
  // loop only matters if a future refactor breaks that invariant.
  while (auto task = queue_.try_pop()) {
    counters_.shed_at_shutdown.fetch_add(1, std::memory_order_relaxed);
    KemResponse r;
    r.status = Status::kUnavailable;
    r.detail = "service drained before execution";
    resolve(*task, std::move(r));
  }
}

void KemService::register_metrics(obs::MetricsRegistry& registry) {
  const struct {
    const char* name;
    const char* help;
    const std::atomic<u64>* value;
  } kCounters[] = {
      {"lacrv_service_requests_submitted_total", "Requests submitted",
       &counters_.submitted},
      {"lacrv_service_requests_completed_total",
       "Requests fulfilled after execution (any final status)",
       &counters_.completed},
      {"lacrv_service_requests_ok_total", "Requests completed with kOk",
       &counters_.ok},
      {"lacrv_service_rejected_overload_total",
       "Submissions rejected with a full queue", &counters_.rejected_overload},
      {"lacrv_service_rejected_deadline_total",
       "Requests shed past their deadline", &counters_.rejected_deadline},
      {"lacrv_service_shed_at_shutdown_total",
       "Requests shed by stop()", &counters_.shed_at_shutdown},
      {"lacrv_service_retries_total", "Backoff-delayed re-executions",
       &counters_.retries},
      {"lacrv_service_failed_attempts_total",
       "Attempts that returned a retryable status",
       &counters_.failed_attempts},
      {"lacrv_service_served_degraded_total",
       "Requests served by >= 1 software fallback",
       &counters_.served_degraded},
      {"lacrv_service_hash_faults_corrected_total",
       "Accelerator digests caught by the software cross-check",
       &counters_.hash_faults_corrected},
      {"lacrv_service_breaker_trips_total", "Breaker closed/half-open -> open",
       &counters_.breaker_trips},
      {"lacrv_service_breaker_recoveries_total",
       "Breaker half-open -> closed", &counters_.breaker_recoveries},
      {"lacrv_service_probes_total", "Health-probe passes",
       &counters_.probes},
      {"lacrv_service_batch_submissions_total", "submit_batch() calls",
       &counters_.batch_submissions},
      {"lacrv_service_micro_batches_total",
       "Worker-side micro-batches popped", &counters_.micro_batches},
      {"lacrv_service_context_builds_total",
       "KeyContext cache misses (seed expansions run)",
       &ctx_cache_.builds()},
      {"lacrv_service_context_hits_total",
       "KeyContext cache hits (seed expansions amortized away)",
       &ctx_cache_.hits()},
      {"lacrv_service_context_corruptions_total",
       "Cached KeyContexts failing checkout checksum validation "
       "(dropped and rebuilt, never served)",
       &ctx_cache_.corruptions()},
      {"lacrv_verify_checked_total",
       "Requests shadow-verified against the golden models",
       &verifier_.checked()},
      {"lacrv_verify_mismatches_total",
       "Shadow verifications that diverged bit-for-bit from golden",
       &verifier_.mismatches()},
      {"lacrv_verify_corrected_total",
       "Diverged answers replaced by the golden re-execution",
       &verifier_.corrected()},
      {"lacrv_verify_integrity_responses_total",
       "Diverged answers withheld with kIntegrity",
       &verifier_.integrity_responses()},
      {"lacrv_verify_quarantine_trips_total",
       "Slot transitions into quarantined (verified mismatch)",
       &quarantine_trips_},
      {"lacrv_verify_rejoins_total",
       "Slots rejoining healthy after a clean probation",
       &quarantine_rejoins_},
  };
  for (const auto& c : kCounters)
    registry.add_counter(c.name, c.help, c.value);

  registry.add_gauge("lacrv_service_queue_depth",
                     "Requests waiting in the submission queue",
                     [this] { return static_cast<double>(queue_.depth()); });
  for (std::size_t i = 0; i < kNumUnits; ++i) {
    registry.add_gauge(
        "lacrv_service_breaker_state",
        "Per-unit breaker state (0 closed, 1 open, 2 half-open)",
        [this, i] {
          return static_cast<double>(
              static_cast<int>(breakers_[i].state()));
        },
        std::string("unit=\"") + unit_name(i) + "\"");
  }
  for (std::size_t i = 0; i < kNumUnits; ++i) {
    registry.add_gauge(
        "lacrv_verify_slot_state",
        "Per-slot quarantine state (0 healthy, 1 quarantined, "
        "2 probation-full, 3 probation-ramp)",
        [this, i] {
          return static_cast<double>(
              static_cast<int>(quarantines_[i].state()));
        },
        std::string("unit=\"") + unit_name(i) + "\"");
  }
  registry.add_histogram("lacrv_service_latency_micros",
                         "End-to-end request latency (submit -> completion)",
                         &counters_.encaps_latency, "op=\"encaps\"");
  registry.add_histogram("lacrv_service_latency_micros",
                         "End-to-end request latency (submit -> completion)",
                         &counters_.decaps_latency, "op=\"decaps\"");
}

DegradeReport KemService::degrade_report() const {
  std::lock_guard<std::mutex> lock(report_mutex_);
  return report_;
}

verify::QuarantineState KemService::quarantine_state(lac::Slot slot) const {
  for (std::size_t i = 0; i < kNumUnits; ++i)
    if (lac::kAllSlots[i] == slot) return quarantines_[i].state();
  return verify::QuarantineState::kHealthy;
}

BreakerState KemService::breaker_state(fault::Unit unit) const {
  switch (unit) {
    case fault::Unit::kMulTer: return breakers_[kMulIdx].state();
    case fault::Unit::kChien: return breakers_[kChienIdx].state();
    case fault::Unit::kSha256: return breakers_[kShaIdx].state();
    case fault::Unit::kBarrett: return breakers_[kModqIdx].state();
    default: return BreakerState::kClosed;
  }
}

}  // namespace lacrv::service
