#include "service/breaker.h"

#include <sstream>

namespace lacrv::service {

const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

bool CircuitBreaker::allow() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_ != BreakerState::kOpen;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

void CircuitBreaker::transition_locked(BreakerState to,
                                       const std::string& detail) {
  const BreakerState from = state_;
  if (from == to) return;
  state_ = to;
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  if (on_transition_) on_transition_(unit_, from, to, detail);
}

void CircuitBreaker::record_failure(const std::string& detail) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= policy_.failure_threshold) {
        std::ostringstream os;
        os << "tripped after " << consecutive_failures_
           << " consecutive failures (" << detail
           << "); traffic rerouted to software fallback";
        transition_locked(BreakerState::kOpen, os.str());
      }
      break;
    case BreakerState::kHalfOpen:
      // The recovery trial failed — a new (or still-present) fault raced
      // the half-open window. Back to open; only a fresh probe pass
      // re-opens the trial.
      transition_locked(BreakerState::kOpen,
                        "half-open trial failed (" + detail + ")");
      break;
    case BreakerState::kOpen:
      break;  // already rerouted
  }
}

void CircuitBreaker::record_success() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      if (++half_open_successes_ >= policy_.half_open_successes)
        transition_locked(BreakerState::kClosed,
                          "recovered; accelerator traffic restored");
      break;
    case BreakerState::kOpen:
      break;  // fallback successes say nothing about the unit
  }
}

void CircuitBreaker::probe_passed() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case BreakerState::kOpen:
      transition_locked(BreakerState::kHalfOpen,
                        "health probe KAT passed; trialing accelerator");
      break;
    case BreakerState::kHalfOpen:
      if (++half_open_successes_ >= policy_.half_open_successes)
        transition_locked(BreakerState::kClosed,
                          "recovered; accelerator traffic restored");
      break;
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
  }
}

void CircuitBreaker::probe_failed(const std::string& detail) {
  record_failure("probe: " + detail);
}

}  // namespace lacrv::service
