// Per-accelerator-unit circuit breaker.
//
// State machine (docs/robustness.md, "Runtime resilience"):
//
//   closed ──(consecutive failures >= threshold)──> open
//   open ──(health probe KAT passes)──> half-open
//   half-open ──(successes >= half_open_successes)──> closed
//   half-open ──(any failure)──> open
//
// While the breaker is not closed-or-half-open, allow() is false and the
// switched backend callables route the unit's traffic to the modeled
// software fallback — the degradation ladder's construction-time
// benching, re-applied at runtime and reversible. Transitions are
// reported through a callback so the service can append them to its
// DegradeReport and bump trip/recovery counters atomically with the
// state change.
#pragma once

#include <functional>
#include <mutex>

#include "common/status.h"
#include "common/types.h"

namespace lacrv::service {

enum class BreakerState : u8 { kClosed, kOpen, kHalfOpen };

const char* breaker_state_name(BreakerState s);

struct BreakerPolicy {
  /// Consecutive attributed failures (traffic or probe) that trip a
  /// closed breaker.
  int failure_threshold = 3;
  /// Successes (traffic through the unit, or passing probes) needed in
  /// half-open before the breaker closes again.
  int half_open_successes = 2;
};

class CircuitBreaker {
 public:
  /// `on_transition(unit, from, to, detail)` fires inside the state
  /// change (under the breaker mutex) — keep it cheap and non-reentrant.
  using TransitionFn = std::function<void(
      const char* unit, BreakerState from, BreakerState to,
      const std::string& detail)>;

  CircuitBreaker() = default;

  /// A mutex makes breakers unmovable, so arrays of them are default-
  /// constructed and configured in place — call before any concurrent
  /// use.
  void configure(const char* unit, BreakerPolicy policy,
                 TransitionFn on_transition) {
    unit_ = unit;
    policy_ = policy;
    on_transition_ = std::move(on_transition);
  }

  /// May the unit's hardware path serve the next operation? True in
  /// closed and half-open (half-open traffic is the trial that decides
  /// recovery), false in open.
  bool allow() const;

  BreakerState state() const;

  /// An operation attributed to this unit failed (a per-unit KAT run
  /// after a fault-indicating status came back red).
  void record_failure(const std::string& detail);
  /// An operation served through the unit's hardware path completed
  /// cleanly.
  void record_success();
  /// Background health probe outcomes. A passing probe half-opens an
  /// open breaker and counts toward closing a half-open one; a failing
  /// probe re-opens a half-open breaker and counts as a failure on a
  /// closed one (catching faults on units that current traffic cannot
  /// observe failing, e.g. a stuck-at multiplier that only corrupts
  /// encapsulations).
  void probe_passed();
  void probe_failed(const std::string& detail);

 private:
  void transition_locked(BreakerState to, const std::string& detail);

  const char* unit_ = "?";
  BreakerPolicy policy_;
  TransitionFn on_transition_;

  mutable std::mutex mutex_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
};

}  // namespace lacrv::service
