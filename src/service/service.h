// KemService — a resilient, concurrent front door over the PQ-ALU
// backends.
//
// A fixed worker pool consumes a bounded MPMC queue of KEM requests;
// when the queue is full, submission is rejected with a typed
// Status::kOverloaded (backpressure, never unbounded growth). Each
// request may carry an absolute deadline in the service clock's domain;
// work whose deadline has passed is shed with kDeadlineExceeded before
// execution and between retry attempts. Operations that come back with
// a fault-indicating Status are retried under RetryPolicy (capped
// exponential backoff, deterministic jitter); each failed attempt is
// *attributed* by re-running the per-unit self-test KATs on the
// worker's own accelerator units, and attributed failures feed per-unit
// circuit breakers. A tripped breaker atomically reroutes that unit's
// traffic — on every worker — to the modeled software fallback (the
// construction-time degradation ladder of docs/robustness.md, applied
// at runtime and reversible); a background health prober re-runs the
// KATs and walks the breaker back through half-open to closed when the
// unit recovers. Every transition lands in the service-level
// DegradeReport; every behaviour is countable via ServiceCounters.
//
// Threading model: each worker owns a private set of RTL units (one
// "physical PQ-ALU" per hardware thread), so units never race; the only
// cross-thread state is the breakers (mutex), the queue (mutex), the
// counters (atomics) and the fault-hook slots (atomic pointers — see
// rtl::FaultHookSlot), which is what lets a fault campaign arm and
// clear plans against a *live* service.
#pragma once

#include <array>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "fault/plan.h"
#include "lac/context.h"
#include "lac/kem.h"
#include "service/breaker.h"
#include "service/counters.h"
#include "service/queue.h"
#include "service/retry.h"
#include "verify/verifier.h"

namespace lacrv::obs {
class MetricsRegistry;
}  // namespace lacrv::obs

namespace lacrv::service {

/// Absolute deadline value meaning "no deadline".
inline constexpr u64 kNoDeadline = ~u64{0};

enum class OpKind : u8 { kEncaps, kDecaps, kGeneric };

/// One KEM request against the service keypair: clients encapsulate to
/// the service's public key, the service decapsulates ciphertexts — the
/// two halves of a KEM handshake terminator.
struct KemRequest {
  OpKind op = OpKind::kEncaps;
  /// Encapsulation entropy (caller-provided for determinism).
  hash::Seed entropy{};
  /// Ciphertext to decapsulate (op == kDecaps).
  lac::Ciphertext ct;
  /// Absolute deadline in the service clock's now_micros() domain.
  u64 deadline_micros = kNoDeadline;
};

struct KemResponse {
  /// Final typed verdict. kOk/kRejected/kDecodeFailure come from the
  /// checked KEM path; kOverloaded/kDeadlineExceeded/kUnavailable are
  /// service verdicts (the request was shed, not executed to
  /// completion).
  Status status = Status::kOk;
  /// Ciphertext + shared key (op == kEncaps, status == kOk).
  lac::EncapsResult encaps;
  /// Decapsulated key (op == kDecaps): the real shared secret on kOk,
  /// the implicit-rejection key on kRejected/kDecodeFailure — the FO
  /// contract survives the service layer.
  lac::SharedKey key{};
  /// Execution attempts consumed (0 if shed before the first).
  int attempts = 0;
  /// True iff any accelerator unit's traffic was served by the modeled
  /// software fallback during the final attempt.
  bool served_by_fallback = false;
  /// True iff the runtime hash cross-check caught (and corrected) a
  /// faulty accelerator digest.
  bool hash_fault_detected = false;
  /// True iff this response was re-executed on the golden models and
  /// compared bit-for-bit by the shadow verifier (clean or not).
  bool shadow_checked = false;
  /// True iff the shadow comparison diverged and the response carries
  /// the golden re-execution instead of the served answer
  /// (VerifyConfig::serve_golden_on_mismatch). With the policy off, the
  /// divergence surfaces as status == kIntegrity instead.
  bool integrity_corrected = false;
  std::string detail;
};

struct ServiceConfig {
  /// Parameter set (null: LAC-128).
  const lac::Params* params = nullptr;
  std::size_t workers = 4;
  std::size_t queue_capacity = 128;
  RetryPolicy retry;
  BreakerPolicy breaker;
  /// Spawn the background health prober (tests that drive probes
  /// manually via probe_now() turn this off for determinism).
  bool enable_prober = true;
  u64 probe_interval_micros = 20'000;
  /// Injected time authority (null: the process-wide RealClock).
  Clock* clock = nullptr;
  /// Seed for the service keypair (generated on the golden software
  /// backend — provisioning runs on verified hardware).
  hash::Seed key_seed{};
  /// Serve KEM requests from per-key precomputed contexts (lac/context.h):
  /// the service key's expansion of a and H(pk) are built once per worker
  /// start instead of re-derived on every request. False restores the
  /// paper-faithful per-request path (the bench's baseline column).
  bool use_key_context = true;
  /// Worker-side micro-batch limit: one queue lock round-trip drains up
  /// to this many already-queued requests. 1 disables batching.
  std::size_t max_batch = 8;
  /// Capacity of the KeyContext LRU (the service key plus client keys).
  std::size_t context_cache_capacity = 8;
  /// Per-slot implementation mix, indexed like lac::kAllSlots
  /// (mul_ter, chien, sha256, modq): true serves the slot from the
  /// worker's RTL unit behind its breaker, false pins it to the modeled
  /// software implementation outright (no breaker switching — the slot
  /// keeps the registry's modeled callable). Parse "mul_ter=rtl,..."
  /// specs with lac::parse_slot_mix; note a spec defaults unlisted slots
  /// to software, while this default is all-RTL.
  std::array<bool, lac::kNumSlots> slot_use_rtl = {true, true, true, true};
  /// Shadow verification + slot quarantine (src/verify/). Disabled by
  /// default: the service is bit- and cycle-identical to the
  /// pre-verification stack until switched on.
  verify::VerifyConfig verify;
};

class KemService {
 public:
  explicit KemService(ServiceConfig config = {});
  ~KemService();

  KemService(const KemService&) = delete;
  KemService& operator=(const KemService&) = delete;

  /// Enqueue a request. The returned future always completes with a
  /// typed status: immediately with kOverloaded when the queue is full
  /// (backpressure) or kUnavailable after stop(); otherwise when a
  /// worker finishes or sheds the request.
  std::future<KemResponse> submit(KemRequest request);

  /// Enqueue a request whose completion is delivered by invoking `done`
  /// instead of resolving a future — the event-driven submission path
  /// the async TCP front end (src/net/) rides on: an epoll loop cannot
  /// block on futures, a callback can enqueue the reply and wake it.
  /// The callback fires exactly once, with the same typed-status
  /// guarantees as submit(): immediately (on the caller's thread) for
  /// kOverloaded / kUnavailable rejections, on a worker thread
  /// otherwise. It must be thread-safe against the caller and must not
  /// throw (exceptions are swallowed so a worker thread never dies).
  using Completion = std::function<void(KemResponse)>;
  void submit_with_callback(KemRequest request, Completion done);

  /// Enqueue a whole burst under one queue lock acquisition. Futures are
  /// returned in request order; requests that do not fit the queue's
  /// remaining capacity complete immediately with kOverloaded (the same
  /// backpressure contract as submit(), decided per request).
  std::vector<std::future<KemResponse>> submit_batch(
      std::vector<KemRequest> requests);

  /// Low-level submission of an arbitrary job, executed on a worker
  /// thread with the worker's breaker-switched backend and the same
  /// deadline/retry machinery. Exists for the service tests (gate jobs,
  /// synthetic failures); production traffic uses submit().
  using Job = std::function<KemResponse(lac::Backend& backend)>;
  std::future<KemResponse> submit_job(Job job,
                                      u64 deadline_micros = kNoDeadline);

  /// Arm `plan` on every worker's and the prober's accelerator units —
  /// safe while requests are in flight (atomic hook installation). The
  /// plan must outlive the service or a clear_faults() call.
  void arm_faults(fault::FaultPlan& plan);
  /// Detach all fault hooks (ends the campaign; units heal unless the
  /// fault corrupted persistent unit state).
  void clear_faults();

  /// One synchronous health-probe pass: re-run the per-unit self-test
  /// KATs on the prober's units and feed the breakers. Returns true iff
  /// every KAT passed. The background prober calls exactly this.
  bool probe_now();

  /// Stop accepting work, cancel in-flight backoffs, join all threads
  /// and shed everything still queued with kUnavailable. Idempotent;
  /// the destructor calls it.
  void stop();

  /// Graceful shutdown: stop accepting new submissions (they are
  /// rejected with kUnavailable, detail "service draining"), let the
  /// workers *execute* everything already queued — in-flight retries
  /// and backoffs included — then join. The dual of stop(), which sheds
  /// queued work unexecuted. Idempotent, and stop() after drain() is a
  /// no-op; concurrent submitters never lose a completion either way.
  void drain();

  /// True once drain() or stop() has begun: new submissions are being
  /// rejected with kUnavailable.
  bool draining() const {
    return draining_.load(std::memory_order_acquire) ||
           stopping_.load(std::memory_order_acquire);
  }

  const lac::Params& params() const { return *params_; }
  /// The service keypair (pk is what clients encapsulate against).
  const lac::KemKeyPair& keys() const { return keys_; }
  Clock& clock() { return *clock_; }

  CountersSnapshot counters() const {
    CountersSnapshot s = counters_.snapshot(queue_.depth());
    s.context_builds =
        ctx_cache_.builds().load(std::memory_order_relaxed);
    s.context_hits = ctx_cache_.hits().load(std::memory_order_relaxed);
    return s;
  }
  /// The per-key context LRU (service key + client keys).
  const lac::ContextCache& context_cache() const { return ctx_cache_; }
  /// Register every service counter, the queue-depth and per-unit
  /// breaker-state gauges, and the per-op latency histograms with
  /// `registry` (non-owning: the service must outlive the registry's
  /// expose() calls).
  void register_metrics(obs::MetricsRegistry& registry);
  const ServiceCounters& raw_counters() const { return counters_; }
  /// Copy of the service-level transition log (breaker trips and
  /// recoveries).
  DegradeReport degrade_report() const;
  /// Breaker state for one of the four accelerator units (kMulTer,
  /// kChien, kSha256, kBarrett — the campaign name of the modq slot);
  /// other units report kClosed (no breaker).
  BreakerState breaker_state(fault::Unit unit) const;

  /// The shadow verifier: sampling counters and the bounded divergence
  /// log (see src/verify/verifier.h).
  const verify::ShadowVerifier& verifier() const { return verifier_; }
  /// Quarantine state of one registry slot.
  verify::QuarantineState quarantine_state(lac::Slot slot) const;
  /// Copy of the retained divergence records.
  std::vector<verify::DivergenceRecord> divergences() const {
    return verifier_.divergences();
  }

 private:
  // Breaker indices mirror the registry slot order (lac::kAllSlots), so
  // breakers_[i] is the breaker of slot lac::kAllSlots[i] and metric
  // labels come from lac::slot_name.
  static constexpr std::size_t kMulIdx = 0;
  static constexpr std::size_t kChienIdx = 1;
  static constexpr std::size_t kShaIdx = 2;
  static constexpr std::size_t kModqIdx = 3;
  static constexpr std::size_t kNumUnits = lac::kNumSlots;

  /// One worker's private PQ-ALU: RTL unit instances plus the
  /// breaker-switched backend that drives them. Usage flags are written
  /// only by the owning worker thread, inside one attempt.
  struct Rig {
    std::shared_ptr<rtl::MulTerRtl> mul;
    std::shared_ptr<rtl::ChienRtl> chien;
    std::shared_ptr<rtl::Sha256Rtl> sha;
    std::shared_ptr<rtl::BarrettRtl> barrett;
    std::array<bool, kNumUnits> rtl_used{};
    std::array<bool, kNumUnits> fallback_used{};
    /// Per-slot KAT re-run against this rig's own units, indexed like
    /// breakers_ (the one loop body attribute_failure / probe_now
    /// iterate instead of per-unit copies).
    std::array<std::function<bool(std::string*)>, kNumUnits> unit_selftest;
    lac::Backend backend;
    /// Golden scalar backend for shadow re-execution (built only when
    /// verification is enabled): pure modeled registry, no fault hooks,
    /// no breaker switching, owned by this rig's worker thread alone.
    lac::Backend golden;
    /// The service key's precomputed context (null when
    /// config.use_key_context is off): shared, immutable, read-only on
    /// the hot path.
    std::shared_ptr<const lac::KeyContext> key_ctx;
  };

  struct Task {
    u64 id = 0;
    OpKind op = OpKind::kGeneric;
    /// Generic payload (submit_job). KEM traffic leaves this empty and
    /// runs through execute_kem() so workers can use their cached
    /// KeyContext — the Job signature predates the context layer.
    Job job;
    KemRequest request;
    u64 deadline_micros = kNoDeadline;
    u64 submitted_micros = 0;
    std::promise<KemResponse> promise;
    /// Set on submit_with_callback() tasks: the completion is delivered
    /// here and the promise is left untouched.
    Completion callback;
  };

  Task make_kem_task(KemRequest request);
  /// Deliver the final response: invoke the callback (exceptions
  /// contained) or resolve the promise. Every completion site funnels
  /// through here so the two delivery modes cannot drift.
  static void resolve(Task& task, KemResponse response);
  /// Stamp id/clock, handle the stopping_ fast path, try_push, resolve
  /// the overload rejection — the single-submission tail shared by
  /// submit() and submit_job().
  std::future<KemResponse> enqueue_task(Task task);
  /// Run one KEM request on the rig's breaker-switched backend, through
  /// the rig's KeyContext when enabled.
  KemResponse execute_kem(const KemRequest& request, Rig& rig);
  void build_rig(Rig& rig);
  void worker_main(std::size_t index);
  void prober_main();
  void process(Task task, Rig& rig);
  /// Run per-unit KATs on the rig after a fault-indicating status and
  /// feed attributed failures to the breakers.
  void attribute_failure(Rig& rig, Status status);
  void record_successes(const Rig& rig, bool hash_fault);
  /// May slot i's hardware path serve? The breaker (attributed KAT
  /// failures) and the quarantine (verified output corruption) both get
  /// a veto.
  bool unit_allowed(std::size_t i) const {
    return breakers_[i].allow() && quarantines_[i].allow();
  }
  /// Post-execution shadow verification: sample, re-execute on the
  /// rig's golden backend, compare, quarantine + correct/refuse on
  /// divergence. Mutates `response` per VerifyConfig policy.
  void maybe_shadow_verify(const Task& task, Rig& rig,
                           KemResponse& response);
  bool expired(u64 deadline_micros) {
    return deadline_micros != kNoDeadline &&
           clock_->now_micros() >= deadline_micros;
  }
  void finish(Task& task, KemResponse response);

  ServiceConfig config_;
  const lac::Params* params_;
  Clock* clock_;
  lac::KemKeyPair keys_;

  std::array<CircuitBreaker, kNumUnits> breakers_;
  std::array<verify::SlotQuarantine, kNumUnits> quarantines_;
  verify::ShadowVerifier verifier_;
  std::atomic<u64> quarantine_trips_{0};
  std::atomic<u64> quarantine_rejoins_{0};
  mutable std::mutex report_mutex_;
  DegradeReport report_;

  ServiceCounters counters_;
  lac::ContextCache ctx_cache_;
  BoundedQueue<Task> queue_;
  std::atomic<u64> next_id_{1};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};

  std::vector<std::unique_ptr<Rig>> rigs_;  // one per worker
  std::unique_ptr<Rig> prober_rig_;
  std::mutex probe_mutex_;  // probe_now() may race the prober thread
  std::vector<std::thread> workers_;
  std::thread prober_;
};

}  // namespace lacrv::service
