// Observable service behaviour: monotonic counters + latency histograms.
//
// Every number here is an atomic the hot path bumps without locks; the
// snapshot is a consistent-enough read for dashboards and tests (each
// counter is individually exact, cross-counter sums may be mid-request
// by one).
#pragma once

#include <atomic>
#include <sstream>
#include <string>

#include "common/stats.h"
#include "common/types.h"

namespace lacrv::service {

struct CountersSnapshot {
  u64 submitted = 0;
  u64 completed = 0;        // fulfilled after execution (any final status)
  u64 ok = 0;               // completed with Status::kOk
  u64 rejected_overload = 0;
  u64 rejected_deadline = 0;
  u64 shed_at_shutdown = 0;
  u64 retries = 0;          // backoff-delayed re-executions
  u64 failed_attempts = 0;  // attempts that returned a retryable status
  u64 served_degraded = 0;  // requests that used >= 1 software fallback
  u64 hash_faults_corrected = 0;
  u64 breaker_trips = 0;
  u64 breaker_recoveries = 0;
  u64 probes = 0;
  u64 batch_submissions = 0;  // submit_batch() calls
  u64 micro_batches = 0;      // worker-side batches popped (any size)
  u64 context_builds = 0;     // KeyContext cache misses (expansions run)
  u64 context_hits = 0;       // KeyContext cache hits (expansions saved)
  std::size_t queue_depth = 0;

  std::string to_string() const {
    std::ostringstream os;
    os << "submitted " << submitted << " | completed " << completed
       << " (ok " << ok << ") | overloaded " << rejected_overload
       << " | deadline-exceeded " << rejected_deadline << " | shed "
       << shed_at_shutdown << " | retries " << retries
       << " | failed-attempts " << failed_attempts << " | degraded "
       << served_degraded << " | hash-faults-corrected "
       << hash_faults_corrected << " | breaker trips " << breaker_trips
       << " / recoveries " << breaker_recoveries << " | probes " << probes
       << " | batches " << batch_submissions << " / micro " << micro_batches
       << " | ctx builds " << context_builds << " / hits " << context_hits
       << " | queue depth " << queue_depth;
    return os.str();
  }
};

class ServiceCounters {
 public:
  std::atomic<u64> submitted{0};
  std::atomic<u64> completed{0};
  std::atomic<u64> ok{0};
  std::atomic<u64> rejected_overload{0};
  std::atomic<u64> rejected_deadline{0};
  std::atomic<u64> shed_at_shutdown{0};
  std::atomic<u64> retries{0};
  std::atomic<u64> failed_attempts{0};
  std::atomic<u64> served_degraded{0};
  std::atomic<u64> hash_faults_corrected{0};
  std::atomic<u64> breaker_trips{0};
  std::atomic<u64> breaker_recoveries{0};
  std::atomic<u64> probes{0};
  std::atomic<u64> batch_submissions{0};
  std::atomic<u64> micro_batches{0};

  /// End-to-end latency (submit -> completion), one histogram per op.
  stats::LatencyHistogram encaps_latency;
  stats::LatencyHistogram decaps_latency;

  CountersSnapshot snapshot(std::size_t queue_depth) const {
    CountersSnapshot s;
    s.submitted = submitted.load(std::memory_order_relaxed);
    s.completed = completed.load(std::memory_order_relaxed);
    s.ok = ok.load(std::memory_order_relaxed);
    s.rejected_overload = rejected_overload.load(std::memory_order_relaxed);
    s.rejected_deadline = rejected_deadline.load(std::memory_order_relaxed);
    s.shed_at_shutdown = shed_at_shutdown.load(std::memory_order_relaxed);
    s.retries = retries.load(std::memory_order_relaxed);
    s.failed_attempts = failed_attempts.load(std::memory_order_relaxed);
    s.served_degraded = served_degraded.load(std::memory_order_relaxed);
    s.hash_faults_corrected =
        hash_faults_corrected.load(std::memory_order_relaxed);
    s.breaker_trips = breaker_trips.load(std::memory_order_relaxed);
    s.breaker_recoveries = breaker_recoveries.load(std::memory_order_relaxed);
    s.probes = probes.load(std::memory_order_relaxed);
    s.batch_submissions = batch_submissions.load(std::memory_order_relaxed);
    s.micro_batches = micro_batches.load(std::memory_order_relaxed);
    // context_builds / context_hits live in the service's ContextCache;
    // KemService::counters() fills them after this snapshot.
    s.queue_depth = queue_depth;
    return s;
  }
};

}  // namespace lacrv::service
