// Retry policy for fault-indicating KEM statuses: capped exponential
// backoff with deterministic jitter.
//
// The jitter draw is a splitmix64 stream keyed on (policy seed, request
// id, attempt), so a given request retries on exactly the same virtual-
// time schedule in every run — the service tests pin backoff arithmetic
// without ever sleeping for real.
#pragma once

#include <algorithm>

#include "common/types.h"
#include "fault/plan.h"

namespace lacrv::service {

struct RetryPolicy {
  /// Total execution attempts per request, including the first. 1 means
  /// "never retry".
  int max_attempts = 3;
  /// Backoff before retry k (1-based) is min(base << (k-1), cap), plus
  /// jitter.
  u64 base_backoff_micros = 1'000;
  u64 max_backoff_micros = 64'000;
  /// Jitter amplitude as a fraction of the capped backoff, in percent.
  /// The draw is uniform in [0, jitter_percent] and always added (never
  /// subtracted), keeping the backoff a monotone lower bound.
  u32 jitter_percent = 25;
  u64 jitter_seed = 0x1ac5eed;

  /// Virtual-time delay before 1-based retry `retry_index` of request
  /// `request_id`.
  u64 backoff_micros(int retry_index, u64 request_id) const {
    const int shift = std::min(retry_index - 1, 62);
    // Saturate instead of shifting into overflow: once base << shift
    // would pass the cap, the capped value IS the cap.
    const u64 capped =
        (base_backoff_micros <= (max_backoff_micros >> shift))
            ? std::max(base_backoff_micros << shift, base_backoff_micros)
            : std::max(max_backoff_micros, base_backoff_micros);
    if (jitter_percent == 0) return capped;
    u64 state = jitter_seed ^ (request_id * 0x9E3779B97F4A7C15ull) ^
                static_cast<u64>(retry_index);
    const u64 amplitude = capped * jitter_percent / 100;
    const u64 jitter =
        amplitude == 0 ? 0 : fault::splitmix64(state) % (amplitude + 1);
    return capped + jitter;
  }
};

/// Statuses the service treats as fault-indicating and retries: the
/// typed failures a transient accelerator fault (or a tampered wire)
/// surfaces through the checked KEM path. kOk and the service-level
/// verdicts (overload, deadline, unavailable) are final.
inline bool retryable(Status s) {
  switch (s) {
    case Status::kRejected:
    case Status::kDecodeFailure:
    case Status::kSelfTestFailure:
    case Status::kInternalError:
      return true;
    default:
      return false;
  }
}

}  // namespace lacrv::service
