// Bounded MPMC submission queue with reject-on-full backpressure.
//
// try_push never blocks: a full queue is the caller's typed
// Status::kOverloaded, not an unbounded buffer — under sustained
// overload the service sheds load at the front door instead of growing
// latency without bound. pop blocks until work arrives or the queue is
// closed; close() wakes every waiter so shutdown never hangs a worker.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace lacrv::service {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// False iff the queue is full or closed (the item is not consumed in
  /// that case — std::move leaves it valid in the caller).
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed; nullopt
  /// means closed-and-empty (worker should exit).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking drain, used at shutdown to shed queued work with a
  /// typed status.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace lacrv::service
