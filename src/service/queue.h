// Bounded MPMC submission queue with reject-on-full backpressure.
//
// try_push never blocks: a full queue is the caller's typed
// Status::kOverloaded, not an unbounded buffer — under sustained
// overload the service sheds load at the front door instead of growing
// latency without bound. pop blocks until work arrives or the queue is
// closed; close() wakes every waiter so shutdown never hangs a worker.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace lacrv::service {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// False iff the queue is full or closed (the item is not consumed in
  /// that case — std::move leaves it valid in the caller).
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Push a prefix of `items` under a single lock acquisition (the
  /// batched-submission fast path: one mutex round-trip admits B
  /// requests). Returns how many were accepted — the first `accepted`
  /// elements are moved-from; the caller sheds the rest with its typed
  /// overload status. Accepts nothing once closed.
  std::size_t push_many(std::vector<T>& items) {
    std::size_t accepted = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return 0;
      while (accepted < items.size() && items_.size() < capacity_) {
        items_.push_back(std::move(items[accepted]));
        ++accepted;
      }
    }
    if (accepted > 0) not_empty_.notify_all();
    return accepted;
  }

  /// Blocks until an item is available or the queue is closed; nullopt
  /// means closed-and-empty (worker should exit).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Blocking micro-batch pop: waits like pop(), then drains up to `max`
  /// already-queued items in the same lock acquisition. An empty vector
  /// means closed-and-empty. Never waits for a batch to fill — batching
  /// only amortizes lock traffic that is already there.
  std::vector<T> pop_batch(std::size_t max) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    std::vector<T> out;
    out.reserve(std::min(max, items_.size()));
    while (!items_.empty() && out.size() < max) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return out;
  }

  /// Non-blocking drain, used at shutdown to shed queued work with a
  /// typed status.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace lacrv::service
