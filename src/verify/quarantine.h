// Per-registry-slot quarantine state machine — the escalation tier above
// the circuit breakers (service/breaker.h).
//
// A breaker reacts to failures the per-unit KATs can *attribute*; a
// quarantine reacts to what only per-request shadow verification can
// prove: a bit-for-bit divergence between the served answer and the
// golden software re-execution. Because a verified mismatch means the
// unit silently corrupted a live answer while its KATs were green, the
// rejoin bar is higher than a breaker's half-open trial:
//
//   healthy ──(verified mismatch)──────────────────────► quarantined
//   quarantined ──(rejoin_probes consecutive KAT passes)► probation-full
//   probation-full ──(probation_full_clean clean shadow
//                     verifications at 100% sampling)───► probation-ramp
//   probation-ramp ──(probation_ramp_clean clean shadow
//                     verifications at ramp_sample_per_mille)► healthy
//   any state ──(verified mismatch)────────────────────► quarantined
//
// While quarantined, allow() is false and the service's switched
// callables pin the slot's traffic to the golden software model — the
// same reroute an open breaker performs, but gated on proven output
// corruption rather than attributed KAT failures. During probation the
// hardware serves again under intensified shadow verification
// (sample_override_per_mille()); a single mismatch sends the slot
// straight back to quarantined and the ramp restarts from probes.
//
// Transitions are reported through a callback (under the mutex — keep it
// cheap and non-reentrant) so the service can append them to its
// DegradeReport and bump trip/rejoin counters atomically with the state
// change, exactly like CircuitBreaker does.
#pragma once

#include <functional>
#include <mutex>
#include <string>

#include "common/types.h"

namespace lacrv::verify {

enum class QuarantineState : u8 {
  kHealthy = 0,
  kQuarantined = 1,
  kProbationFull = 2,
  kProbationRamp = 3,
};

const char* quarantine_state_name(QuarantineState s);

struct QuarantinePolicy {
  /// Consecutive health-probe KAT passes required to leave quarantined
  /// for probation (a single failing probe resets the count).
  int rejoin_probes = 3;
  /// Clean shadow verifications (at 100% sampling) required to step from
  /// probation-full down to probation-ramp.
  int probation_full_clean = 16;
  /// Clean shadow verifications (at the ramped rate) required to rejoin
  /// healthy from probation-ramp.
  int probation_ramp_clean = 16;
  /// Shadow-verification rate applied to requests that used the slot
  /// while it is in probation-ramp (probation-full forces 1000).
  u32 ramp_sample_per_mille = 250;
};

class SlotQuarantine {
 public:
  using TransitionFn = std::function<void(
      const char* slot, QuarantineState from, QuarantineState to,
      const std::string& detail)>;

  SlotQuarantine() = default;

  /// A mutex makes quarantines unmovable, so arrays of them are default-
  /// constructed and configured in place — call before any concurrent
  /// use (the CircuitBreaker::configure idiom).
  void configure(const char* slot, QuarantinePolicy policy,
                 TransitionFn on_transition);

  /// May the slot's hardware path serve the next operation? False only
  /// in quarantined — probation traffic is the trial that decides
  /// rejoin.
  bool allow() const;

  QuarantineState state() const;

  /// Shadow-verification sampling floor this slot imposes on requests
  /// that used it: 1000 in probation-full, ramp_sample_per_mille in
  /// probation-ramp, 0 otherwise (the verifier takes the max against its
  /// configured baseline rate).
  u32 sample_override_per_mille() const;

  /// Shadow verification proved this slot's output (or a request that
  /// used it) diverged from golden. Trips from any state.
  void record_mismatch(const std::string& detail);

  /// A shadow-verified request that used this slot compared clean.
  /// Advances probation; a no-op in healthy and quarantined.
  void record_clean_verify();

  /// Health-probe KAT outcomes (fed by KemService::probe_now alongside
  /// the breakers). Passes walk quarantined toward probation-full;
  /// failures reset the walk. No-ops outside quarantined — probation
  /// rejoin is decided by clean *traffic* verification, not KATs, which
  /// the quarantined fault already evaded once.
  void probe_passed();
  void probe_failed(const std::string& detail);

 private:
  void transition_locked(QuarantineState to, const std::string& detail);

  const char* slot_ = "?";
  QuarantinePolicy policy_;
  TransitionFn on_transition_;

  mutable std::mutex mutex_;
  QuarantineState state_ = QuarantineState::kHealthy;
  int probe_passes_ = 0;
  int clean_verifies_ = 0;
};

}  // namespace lacrv::verify
