#include "verify/verifier.h"

#include "fault/plan.h"  // splitmix64

namespace lacrv::verify {
namespace {

void note(std::string& detail, const char* what) {
  if (!detail.empty()) detail += ", ";
  detail += what;
}

}  // namespace

ShadowResult shadow_encaps(const lac::Params& params,
                           const lac::Backend& golden,
                           const lac::PublicKey& pk,
                           const hash::Seed& entropy, Status served_status,
                           const lac::EncapsResult& served) {
  ShadowResult r;
  // Keyed path, null ledger: independent of contexts, charges nothing.
  r.golden_encaps =
      lac::encapsulate_checked(params, golden, pk, entropy, nullptr);
  if (r.golden_encaps.status != served_status) {
    note(r.detail, "status");
    r.detail += std::string(" (served ") + status_name(served_status) +
                ", golden " + status_name(r.golden_encaps.status) + ")";
    r.diverged = true;
  }
  if (r.golden_encaps.status == Status::kOk && served_status == Status::kOk) {
    if (served.ct.u != r.golden_encaps.result.ct.u ||
        served.ct.v != r.golden_encaps.result.ct.v) {
      note(r.detail, "ciphertext");
      r.diverged = true;
    }
    if (served.key != r.golden_encaps.result.key) {
      note(r.detail, "shared-key");
      r.diverged = true;
    }
  }
  return r;
}

ShadowResult shadow_decaps(const lac::Params& params,
                           const lac::Backend& golden,
                           const lac::KemKeyPair& keys,
                           const lac::Ciphertext& ct, Status served_status,
                           const lac::SharedKey& served_key) {
  ShadowResult r;
  r.golden_decaps = lac::decapsulate_checked(params, golden, keys, ct, nullptr);
  if (r.golden_decaps.status != served_status) {
    // A corrupted decapsulation often surfaces as the wrong *verdict*
    // (honest ciphertext pushed into implicit rejection, or vice versa)
    // before the key comparison even runs.
    note(r.detail, "status");
    r.detail += std::string(" (served ") + status_name(served_status) +
                ", golden " + status_name(r.golden_decaps.status) + ")";
    r.diverged = true;
  }
  if (served_key != r.golden_decaps.key) {
    note(r.detail, "shared-key");
    r.diverged = true;
  }
  return r;
}

hash::Digest encaps_operand_digest(const hash::Seed& entropy) {
  return hash::sha256(ByteView(entropy.data(), entropy.size()));
}

hash::Digest decaps_operand_digest(const lac::Params& params,
                                   const lac::Ciphertext& ct) {
  const Bytes wire = lac::serialize(params, ct);
  return hash::sha256(ByteView(wire.data(), wire.size()));
}

bool ShadowVerifier::should_verify(u64 request_id,
                                   u32 override_per_mille) const {
  if (!config_.enabled) return false;
  const u32 rate = std::max(config_.sample_per_mille, override_per_mille);
  if (rate == 0) return false;
  if (rate >= 1000) return true;
  u64 state = request_id ^ config_.sample_salt;
  return fault::splitmix64(state) % 1000 < rate;
}

void ShadowVerifier::record_divergence(DivergenceRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (records_.size() >= config_.max_divergence_records) return;
  records_.push_back(std::move(record));
}

std::vector<DivergenceRecord> ShadowVerifier::divergences() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

}  // namespace lacrv::verify
