#include "verify/quarantine.h"

namespace lacrv::verify {

const char* quarantine_state_name(QuarantineState s) {
  switch (s) {
    case QuarantineState::kHealthy: return "healthy";
    case QuarantineState::kQuarantined: return "quarantined";
    case QuarantineState::kProbationFull: return "probation-full";
    case QuarantineState::kProbationRamp: return "probation-ramp";
  }
  return "unknown";
}

void SlotQuarantine::configure(const char* slot, QuarantinePolicy policy,
                               TransitionFn on_transition) {
  slot_ = slot;
  policy_ = policy;
  on_transition_ = std::move(on_transition);
}

bool SlotQuarantine::allow() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_ != QuarantineState::kQuarantined;
}

QuarantineState SlotQuarantine::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

u32 SlotQuarantine::sample_override_per_mille() const {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case QuarantineState::kProbationFull: return 1000;
    case QuarantineState::kProbationRamp: return policy_.ramp_sample_per_mille;
    default: return 0;
  }
}

void SlotQuarantine::transition_locked(QuarantineState to,
                                       const std::string& detail) {
  const QuarantineState from = state_;
  if (from == to) return;
  state_ = to;
  probe_passes_ = 0;
  clean_verifies_ = 0;
  if (on_transition_) on_transition_(slot_, from, to, detail);
}

void SlotQuarantine::record_mismatch(const std::string& detail) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == QuarantineState::kQuarantined) return;  // already pinned
  transition_locked(QuarantineState::kQuarantined, detail);
}

void SlotQuarantine::record_clean_verify() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == QuarantineState::kProbationFull) {
    if (++clean_verifies_ >= policy_.probation_full_clean)
      transition_locked(QuarantineState::kProbationRamp,
                        std::to_string(clean_verifies_) +
                            " clean verifications at full sampling");
  } else if (state_ == QuarantineState::kProbationRamp) {
    if (++clean_verifies_ >= policy_.probation_ramp_clean)
      transition_locked(QuarantineState::kHealthy,
                        std::to_string(clean_verifies_) +
                            " clean verifications at ramped sampling");
  }
}

void SlotQuarantine::probe_passed() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != QuarantineState::kQuarantined) return;
  if (++probe_passes_ >= policy_.rejoin_probes)
    transition_locked(QuarantineState::kProbationFull,
                      std::to_string(probe_passes_) +
                          " consecutive probe passes");
}

void SlotQuarantine::probe_failed(const std::string& /*detail*/) {
  std::lock_guard<std::mutex> lock(mutex_);
  // The KATs catching the fault again is the breaker's jurisdiction; for
  // the quarantine it only proves the unit is not ready to rejoin.
  probe_passes_ = 0;
}

}  // namespace lacrv::verify
