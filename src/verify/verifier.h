// Shadow verification — the silent-data-corruption (SDC) detector.
//
// Every defense below this layer is *predictive*: construction KATs and
// health-probe KATs check an accelerator against known answers, and the
// per-digest hash cross-check guards one primitive. None of them can see
// a transient fault that fires during a live operation and is consumed
// by it — the unit computes one wrong answer, every subsequent KAT is
// green, and the corrupted ciphertext or shared key goes out the door.
// The shadow verifier closes exactly that gap: a configurable fraction
// of live requests (plus every request that used a slot under probation)
// is re-executed on the golden scalar models and compared bit-for-bit
// against the served answer.
//
// The golden re-execution is deliberately independent of the entire
// acceleration stack: a fresh modeled registry (pure software, no fault
// hooks, no breaker switching) driven through the *keyed* KEM entry
// points — not the KeyContext-amortized ones — with a null ledger. That
// buys three properties at once: a corrupted KeyContext cannot corrupt
// its own verdict, the shadow path charges zero cycles to any ledger
// (the paper-faithful Tables I–III accounting is untouched), and a
// divergence is attributable to the serving stack alone.
//
// Sampling is deterministic on the request id (splitmix64 keyed by a
// salt), so a given request is either always or never verified for a
// fixed config — reproducible test runs, no RNG on the hot path.
//
// On a mismatch the verifier records a DivergenceRecord (trace id, op,
// slots in use, an operand digest for offline reproduction) and the
// service quarantines the slots involved; policy decides whether the
// caller receives the golden re-execution result (default — zero wrong
// answers leave the process once sampling catches the fault) or a typed
// Status::kIntegrity refusal.
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "lac/context.h"
#include "verify/quarantine.h"

namespace lacrv::verify {

struct VerifyConfig {
  /// Master switch. Disabled, the service skips every shadow branch —
  /// bit- and cycle-identical to the pre-verification service.
  bool enabled = false;
  /// Baseline fraction of requests to shadow-verify, in permille
  /// (0 = only quarantine-probation overrides sample, 1000 = every
  /// request).
  u32 sample_per_mille = 0;
  /// On a verified mismatch, serve the golden re-execution result as the
  /// response (true: the caller sees a correct answer and the quarantine
  /// handles the unit) or withhold the answer with Status::kIntegrity
  /// (false: the caller is told the answer could not be trusted).
  bool serve_golden_on_mismatch = true;
  /// Bound on retained DivergenceRecords (oldest kept — the first
  /// divergences are the forensically interesting ones).
  std::size_t max_divergence_records = 64;
  /// Salt for the deterministic request-id sampler.
  u64 sample_salt = 0x5eed5a170c0ffee1ull;
  QuarantinePolicy quarantine;
};

/// Forensic record of one verified divergence.
struct DivergenceRecord {
  /// Request id == trace id: joins the record to the request's spans.
  u64 trace_id = 0;
  /// "encaps" or "decaps".
  const char* op = "?";
  /// Comma-joined registry slots the serving rig used via RTL during the
  /// final attempt — the quarantined suspects.
  std::string slots;
  /// SHA-256 over the operation's input operand (encaps: the entropy
  /// seed; decaps: the serialized ciphertext) — enough to re-run the
  /// divergent operation offline without retaining key material.
  hash::Digest operand_digest{};
  /// What diverged (status, ciphertext, shared key).
  std::string detail;
};

/// Outcome of one golden re-execution + comparison.
struct ShadowResult {
  bool diverged = false;
  /// Which fields diverged, human-readable.
  std::string detail;
  /// The golden outcome, for serve_golden_on_mismatch substitution.
  lac::EncapsOutcome golden_encaps;
  lac::DecapsOutcome golden_decaps;
};

/// Re-execute an encapsulation on `golden` (keyed path, null ledger) and
/// compare status + ciphertext + shared key bit-for-bit with what was
/// served. Only statuses that produced a served answer are comparable;
/// callers gate on that.
ShadowResult shadow_encaps(const lac::Params& params,
                           const lac::Backend& golden,
                           const lac::PublicKey& pk,
                           const hash::Seed& entropy, Status served_status,
                           const lac::EncapsResult& served);

/// Re-execute a decapsulation on `golden` and compare status + shared
/// key (the FO transform always yields a key — implicit rejection keys
/// must match bit-for-bit too, or the rejection path itself is
/// corrupt).
ShadowResult shadow_decaps(const lac::Params& params,
                           const lac::Backend& golden,
                           const lac::KemKeyPair& keys,
                           const lac::Ciphertext& ct, Status served_status,
                           const lac::SharedKey& served_key);

/// Operand digests for DivergenceRecords.
hash::Digest encaps_operand_digest(const hash::Seed& entropy);
hash::Digest decaps_operand_digest(const lac::Params& params,
                                   const lac::Ciphertext& ct);

/// Thread-safe sampling decision + counters + bounded divergence log.
/// One per service; the golden backends live in the per-worker rigs.
class ShadowVerifier {
 public:
  ShadowVerifier() = default;
  explicit ShadowVerifier(VerifyConfig config) : config_(config) {}

  const VerifyConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }

  /// Deterministic per-request decision. `override_per_mille` is the max
  /// probation floor of the slots the request used (0 when none).
  bool should_verify(u64 request_id, u32 override_per_mille = 0) const;

  void record_checked() {
    checked_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_corrected() {
    mismatches_.fetch_add(1, std::memory_order_relaxed);
    corrected_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_integrity_response() {
    mismatches_.fetch_add(1, std::memory_order_relaxed);
    integrity_responses_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_divergence(DivergenceRecord record);

  std::vector<DivergenceRecord> divergences() const;

  /// Monotonic counters, exposed by reference so MetricsRegistry samples
  /// them without locking (the ContextCache idiom).
  const std::atomic<u64>& checked() const { return checked_; }
  const std::atomic<u64>& mismatches() const { return mismatches_; }
  const std::atomic<u64>& corrected() const { return corrected_; }
  const std::atomic<u64>& integrity_responses() const {
    return integrity_responses_;
  }

 private:
  VerifyConfig config_;
  std::atomic<u64> checked_{0};
  std::atomic<u64> mismatches_{0};
  std::atomic<u64> corrected_{0};
  std::atomic<u64> integrity_responses_{0};
  mutable std::mutex mutex_;
  std::vector<DivergenceRecord> records_;
};

}  // namespace lacrv::verify
