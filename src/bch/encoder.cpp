#include "bch/encoder.h"

#include "common/check.h"
#include "common/costs.h"

namespace lacrv::bch {

BitVec encode(const CodeSpec& spec, const Message& msg, CycleLedger* ledger) {
  const int p = spec.parity_bits();
  // m(x) * x^p, then parity = remainder mod g(x).
  BitVec shifted(spec.length(), 0);
  for (int i = 0; i < spec.msg_bits; ++i) shifted[p + i] = get_bit(msg, i) ? 1 : 0;
  const BitVec parity = poly_mod_gf2(shifted, spec.generator);

  BitVec codeword = shifted;
  for (int j = 0; j < p; ++j) codeword[j] = parity[j];
  charge(ledger, static_cast<u64>(spec.msg_bits) * cost::kBchEncodeBitStep);
  return codeword;
}

BitVec encode_ct(const CodeSpec& spec, const Message& msg,
                 CycleLedger* ledger) {
  const int p = spec.parity_bits();
  // Systematic LFSR division with masked feedback: per message bit
  // (highest degree first) the generator is XORed into the parity
  // register under a mask derived from (bit ^ register output) — no
  // data-dependent branch or memory access.
  BitVec parity(static_cast<std::size_t>(p), 0);
  for (int i = spec.msg_bits - 1; i >= 0; --i) {
    const u8 feedback =
        static_cast<u8>(get_bit(msg, i) ^ parity[static_cast<std::size_t>(p - 1)]);
    const u8 mask = static_cast<u8>(-feedback);  // 0x00 or 0xFF
    // shift the register up by one, folding the generator in under mask
    for (int j = p - 1; j > 0; --j)
      parity[static_cast<std::size_t>(j)] = static_cast<u8>(
          parity[static_cast<std::size_t>(j - 1)] ^
          (mask & spec.generator[static_cast<std::size_t>(j)]));
    parity[0] = static_cast<u8>(mask & spec.generator[0]);
  }

  BitVec codeword(static_cast<std::size_t>(spec.length()), 0);
  for (int j = 0; j < p; ++j)
    codeword[static_cast<std::size_t>(j)] = parity[static_cast<std::size_t>(j)];
  for (int i = 0; i < spec.msg_bits; ++i)
    codeword[static_cast<std::size_t>(spec.message_degree(i))] =
        static_cast<u8>(get_bit(msg, i));
  // fixed schedule: p register updates per message bit
  charge(ledger, static_cast<u64>(spec.msg_bits) * cost::kBchEncodeBitStep);
  return codeword;
}

Message extract_message(const CodeSpec& spec, const BitVec& codeword) {
  LACRV_CHECK(static_cast<int>(codeword.size()) == spec.length());
  const int p = spec.parity_bits();
  Message msg{};
  for (int i = 0; i < spec.msg_bits; ++i) set_bit(msg, i, codeword[p + i]);
  return msg;
}

}  // namespace lacrv::bch
