// Error-locator computation (second decoder stage).
//
// kSubmission: classical Berlekamp–Massey with early exit on an all-zero
//   syndrome vector and data-dependent iteration work — this is what makes
//   the round-2 decoder's "Error Loc." row in Table I vary between 158
//   (no errors) and ~10k cycles (16 errors).
// kConstantTime: inversion-free BM with a fixed 2t-iteration schedule and
//   masked updates (Walters/Roy style). Its output is a *scalar multiple*
//   of the submission locator — same roots, same error positions.
#pragma once

#include <vector>

#include "bch/syndrome.h"

namespace lacrv::bch {

struct Locator {
  /// Coefficients lambda_0..lambda_t (fixed size t+1, high zeros unused).
  std::vector<gf::Element> lambda;
  /// LFSR length L reported by BM == number of errors if decodable.
  int degree = 0;
};

Locator berlekamp_massey(const CodeSpec& spec,
                         const std::vector<gf::Element>& synd, Flavor flavor,
                         CycleLedger* ledger = nullptr);

}  // namespace lacrv::bch
