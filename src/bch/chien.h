// Chien search (third decoder stage) — the paper's main BCH acceleration
// target. Evaluates the error locator at alpha^l for l in the code-spec
// window only (the message-bit positions of the shortened systematic
// codeword; Sec. IV-B): a root at alpha^l flags an error at codeword
// degree 511 - l.
#pragma once

#include <vector>

#include "bch/berlekamp.h"

namespace lacrv::bch {

struct ChienResult {
  /// Codeword degrees (bit positions) flagged as erroneous.
  std::vector<int> error_degrees;
  /// Number of roots found inside the scanned window.
  int roots_found = 0;
};

/// Software Chien search over [spec.chien_first, spec.chien_last].
/// Both flavours walk every point and all t+1 locator terms (matching the
/// near-identical 0-vs-16-error Chien cycle counts of Table I); they
/// differ in the GF multiplier and therefore in the charged cycle model.
ChienResult chien_search(const CodeSpec& spec, const Locator& loc,
                         Flavor flavor, CycleLedger* ledger = nullptr);

}  // namespace lacrv::bch
