#include "bch/decoder.h"

#include "common/check.h"
#include "obs/trace.h"

namespace lacrv::bch {

DecodeResult decode_with_chien(const CodeSpec& spec, const BitVec& received,
                               Flavor flavor, const ChienStage& chien,
                               CycleLedger* ledger) {
  LACRV_CHECK(static_cast<int>(received.size()) == spec.length());
  obs::TraceSpan span("bch.decode", "bch");
  span.arg("t", static_cast<u64>(spec.t));
  LedgerScope scope(ledger, "bch_dec");

  const auto synd = [&] {
    LedgerScope s(ledger, "bch_syndrome");
    return syndromes(spec, received, flavor, ledger);
  }();
  const Locator loc = [&] {
    LedgerScope s(ledger, "bch_error_loc");
    return berlekamp_massey(spec, synd, flavor, ledger);
  }();
  const ChienResult roots = [&] {
    LedgerScope s(ledger, "bch_chien");
    return chien(spec, loc, ledger);
  }();

  BitVec corrected = received;
  for (int degree : roots.error_degrees) corrected[degree] ^= 1;

  DecodeResult result;
  result.message = extract_message(spec, corrected);
  result.errors_corrected = static_cast<int>(roots.error_degrees.size());
  // Decodability: BM found a locator of degree <= t, AND the locator
  // splits into exactly that many distinct roots over the whole group.
  // The second half is the miscorrection guard: with more than t channel
  // errors, the (capped) BM recursion still emits some degree-<=t
  // polynomial, but a genuine error locator factors completely into
  // distinct roots of GF(2^9)^* — a garbage one almost never does.
  // Counting over all 511 exponents (not just the Chien message window)
  // keeps parity-bit errors decodable: their roots lie outside the window
  // and are deliberately left uncorrected, but they still count here.
  // Fixed trip count + shift-add multiplication keeps this constant-time;
  // no ledger charge, since the guard is host-side validation and not
  // part of the paper's measured decoder.
  int full_roots = 0;
  for (u32 l = 0; l < gf::kGroupOrder; ++l) {
    const gf::Element v =
        gf::poly_eval(loc.lambda, gf::alpha_pow(l), gf::MulKind::kShiftAdd);
    full_roots += v == 0 ? 1 : 0;
  }
  result.ok = loc.degree <= spec.t && full_roots == loc.degree;
  result.status = result.ok ? Status::kOk : Status::kDecodeFailure;
  return result;
}

DecodeResult decode(const CodeSpec& spec, const BitVec& received,
                    Flavor flavor, CycleLedger* ledger) {
  return decode_with_chien(
      spec, received, flavor,
      [flavor](const CodeSpec& s, const Locator& l, CycleLedger* led) {
        return chien_search(s, l, flavor, led);
      },
      ledger);
}

}  // namespace lacrv::bch
