#include "bch/decoder.h"

#include "common/check.h"

namespace lacrv::bch {

DecodeResult decode_with_chien(const CodeSpec& spec, const BitVec& received,
                               Flavor flavor, const ChienStage& chien,
                               CycleLedger* ledger) {
  LACRV_CHECK(static_cast<int>(received.size()) == spec.length());
  LedgerScope scope(ledger, "bch_dec");

  const auto synd = [&] {
    LedgerScope s(ledger, "bch_syndrome");
    return syndromes(spec, received, flavor, ledger);
  }();
  const Locator loc = [&] {
    LedgerScope s(ledger, "bch_error_loc");
    return berlekamp_massey(spec, synd, flavor, ledger);
  }();
  const ChienResult roots = [&] {
    LedgerScope s(ledger, "bch_chien");
    return chien(spec, loc, ledger);
  }();

  BitVec corrected = received;
  for (int degree : roots.error_degrees) corrected[degree] ^= 1;

  DecodeResult result;
  result.message = extract_message(spec, corrected);
  result.errors_corrected = static_cast<int>(roots.error_degrees.size());
  // Decodability: BM found a locator of degree <= t. The Chien window only
  // scans message positions (parity-bit errors are deliberately left
  // uncorrected — they do not affect the extracted message), so the root
  // count may legitimately be smaller than the locator degree.
  result.ok = loc.degree <= spec.t;
  return result;
}

DecodeResult decode(const CodeSpec& spec, const BitVec& received,
                    Flavor flavor, CycleLedger* ledger) {
  return decode_with_chien(
      spec, received, flavor,
      [flavor](const CodeSpec& s, const Locator& l, CycleLedger* led) {
        return chien_search(s, l, flavor, led);
      },
      ledger);
}

}  // namespace lacrv::bch
