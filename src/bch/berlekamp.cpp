#include "bch/berlekamp.h"

#include "common/check.h"
#include "common/costs.h"

namespace lacrv::bch {
namespace {

Locator bm_submission(const CodeSpec& spec,
                      const std::vector<gf::Element>& synd,
                      CycleLedger* ledger) {
  const int two_t = 2 * spec.t;
  if (all_zero(synd)) {
    // Early exit: the submission decoder just scans the syndromes.
    charge(ledger, static_cast<u64>(two_t) * cost::kSubBmZeroScanStep);
    Locator loc;
    loc.lambda.assign(spec.t + 1, 0);
    loc.lambda[0] = 1;
    return loc;
  }

  std::vector<gf::Element> lambda(spec.t + 2, 0), prev(spec.t + 2, 0);
  lambda[0] = prev[0] = 1;
  int L = 0, m = 1;
  gf::Element b = 1;
  u64 cycles = 0;
  for (int r = 0; r < two_t; ++r) {
    gf::Element d = synd[r];
    for (int i = 1; i <= L; ++i)
      d = gf::add(d, gf::mul_table(lambda[i], synd[r - i]));
    cycles += cost::kSubBmIterOverhead +
              static_cast<u64>(L) * cost::kSubBmTermStep;
    if (d == 0) {
      ++m;
      continue;
    }
    // lambda' = lambda - (d/b) x^m prev
    const gf::Element coef = gf::mul_table(d, gf::inv(b));
    std::vector<gf::Element> next = lambda;
    for (std::size_t i = 0; i + m < next.size(); ++i)
      next[i + m] = gf::add(next[i + m], gf::mul_table(coef, prev[i]));
    cycles += static_cast<u64>(L + 1) * cost::kSubBmTermStep;
    if (2 * L <= r) {
      prev = lambda;
      L = r + 1 - L;
      b = d;
      m = 1;
    } else {
      ++m;
    }
    lambda = std::move(next);
  }
  charge(ledger, cycles);

  Locator loc;
  loc.lambda.assign(lambda.begin(), lambda.begin() + spec.t + 1);
  loc.degree = L;
  return loc;
}

/// Branch-free select: mask ? a : b with mask in {0, 0x1FF-extended}.
gf::Element ct_select(gf::Element mask, gf::Element a, gf::Element b) {
  return static_cast<gf::Element>((mask & a) | (~mask & b));
}

/// 9-bit all-ones mask iff x != 0.
gf::Element nonzero_mask(gf::Element x) {
  // OR-fold the bits of x into bit 0, then sign-extend.
  u32 v = x;
  v |= v >> 4;
  v |= v >> 2;
  v |= v >> 1;
  return static_cast<gf::Element>(-(v & 1) & 0xFFFF);
}

Locator bm_constant_time(const CodeSpec& spec,
                         const std::vector<gf::Element>& synd,
                         CycleLedger* ledger) {
  const int two_t = 2 * spec.t;
  const int cap = spec.t + 1;
  // Inversion-free BM: lambda' = b*lambda + d*x^m*B. All loops run over
  // the full fixed capacity; conditions become masks.
  std::vector<gf::Element> lambda(cap, 0), B(cap, 0);
  lambda[0] = B[0] = 1;
  int L = 0, m = 1;
  gf::Element b = 1;
  u64 residue = 0;
  for (int r = 0; r < two_t; ++r) {
    gf::Element d = 0;
    for (int i = 0; i < cap; ++i) {
      // masked accumulate: only i <= min(r, L) terms contribute; the
      // multiplication itself always executes (fixed schedule).
      const gf::Element term =
          (i <= r) ? gf::mul_shift_add(lambda[i], synd[r - i]) : 0;
      const gf::Element in_range =
          static_cast<gf::Element>(-(static_cast<int>(i <= L)) & 0xFFFF);
      d = gf::add(d, static_cast<gf::Element>(term & in_range));
    }
    const gf::Element d_mask = nonzero_mask(d);
    residue += (d_mask ? cost::kCtBmDiscrepancyResidue : 0);
    const bool step_cond = (d != 0) && (2 * L <= r);
    const gf::Element c_mask =
        static_cast<gf::Element>(-(static_cast<int>(step_cond)) & 0xFFFF);

    // next = b*lambda + d*(B << m) — computed unconditionally.
    std::vector<gf::Element> next(cap, 0);
    for (int i = 0; i < cap; ++i) {
      gf::Element v = gf::mul_shift_add(b, lambda[i]);
      if (i >= m)
        v = gf::add(v, gf::mul_shift_add(d, B[i - m]));
      next[i] = v;
    }
    // Masked state update.
    for (int i = 0; i < cap; ++i)
      B[i] = ct_select(c_mask, lambda[i], B[i]);
    b = ct_select(c_mask, d, b);
    const int newL = r + 1 - L;
    L = step_cond ? newL : L;           // L is public (iteration structure)
    m = step_cond ? 1 : m + 1;
    lambda = std::move(next);
  }
  charge(ledger, static_cast<u64>(two_t) *
                     (static_cast<u64>(cap) * cost::kCtBmTermStep +
                      cost::kCtBmIterOverhead) +
                     residue);

  Locator loc;
  loc.lambda = std::move(lambda);
  loc.degree = L;
  return loc;
}

}  // namespace

Locator berlekamp_massey(const CodeSpec& spec,
                         const std::vector<gf::Element>& synd, Flavor flavor,
                         CycleLedger* ledger) {
  LACRV_CHECK(static_cast<int>(synd.size()) == 2 * spec.t);
  return flavor == Flavor::kSubmission ? bm_submission(spec, synd, ledger)
                                       : bm_constant_time(spec, synd, ledger);
}

}  // namespace lacrv::bch
