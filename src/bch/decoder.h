// Complete BCH decoders: syndromes -> Berlekamp-Massey -> Chien -> correct.
//
// decode(..., Flavor) selects between the two software decoders of
// Table I. decode_with_chien() lets a caller replace the Chien stage (the
// optimized implementation substitutes the MUL CHIEN hardware unit while
// keeping the constant-time software syndromes and BM — exactly the
// paper's co-design split).
#pragma once

#include <functional>

#include "bch/chien.h"
#include "bch/encoder.h"
#include "common/status.h"

namespace lacrv::bch {

struct DecodeResult {
  Message message{};
  /// True iff the word decoded to a consistent codeword (all located
  /// errors corrected; root count matches the locator degree).
  bool ok = false;
  /// Typed mirror of `ok`: Status::kOk, or Status::kDecodeFailure when
  /// the error locator degree exceeds the capacity t (more than t
  /// channel errors — the word is undecodable and `message` untrusted).
  Status status = Status::kDecodeFailure;
  int errors_corrected = 0;
};

/// Replacement Chien stage (e.g. the hardware unit model).
using ChienStage =
    std::function<ChienResult(const CodeSpec&, const Locator&, CycleLedger*)>;

DecodeResult decode(const CodeSpec& spec, const BitVec& received,
                    Flavor flavor, CycleLedger* ledger = nullptr);

DecodeResult decode_with_chien(const CodeSpec& spec, const BitVec& received,
                               Flavor flavor, const ChienStage& chien,
                               CycleLedger* ledger = nullptr);

}  // namespace lacrv::bch
