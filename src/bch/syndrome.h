// Syndrome computation — first stage of BCH decoding.
//
// Two flavours reproduce the two software decoders measured in Table I:
//  * kSubmission — the round-2 LAC submission style: log/antilog table
//    multiplications, ~5 cycles/bit-syndrome step (variable time at the
//    microarchitectural level through the table accesses).
//  * kConstantTime — Walters/Roy style: branch-free shift-and-add GF
//    multiplication, fixed control flow, ~7 cycles/bit-syndrome step.
#pragma once

#include <vector>

#include "bch/code.h"
#include "common/ledger.h"

namespace lacrv::bch {

enum class Flavor { kSubmission, kConstantTime };

/// S_j = r(alpha^j) for j = 1..2t, over the shortened length spec.length().
/// Returns 2t elements, S_1 first.
std::vector<gf::Element> syndromes(const CodeSpec& spec, const BitVec& r,
                                   Flavor flavor,
                                   CycleLedger* ledger = nullptr);

/// True iff every syndrome is zero (codeword already valid).
bool all_zero(const std::vector<gf::Element>& synd);

}  // namespace lacrv::bch
