#include "bch/code.h"

#include <algorithm>
#include <set>

#include "common/check.h"

namespace lacrv::bch {
namespace {

/// Minimal polynomial of alpha^e: product over the cyclotomic coset of e
/// of (x - alpha^j), computed in GF(2^9)[x]; the result has binary
/// coefficients by construction.
BitVec minimal_polynomial(int e) {
  // Cyclotomic coset {e, 2e, 4e, ...} mod 511.
  std::set<int> coset;
  int j = e % gf::kGroupOrder;
  while (!coset.count(j)) {
    coset.insert(j);
    j = (2 * j) % gf::kGroupOrder;
  }
  // Product of (x + alpha^j) with GF(512) coefficients.
  std::vector<gf::Element> poly = {1};  // constant 1, degree 0
  for (int exp : coset) {
    const gf::Element root = gf::alpha_pow(static_cast<u32>(exp));
    std::vector<gf::Element> next(poly.size() + 1, 0);
    for (std::size_t i = 0; i < poly.size(); ++i) {
      next[i + 1] = gf::add(next[i + 1], poly[i]);            // x * poly
      next[i] = gf::add(next[i], gf::mul_table(poly[i], root));  // root * poly
    }
    poly = std::move(next);
  }
  BitVec bits(poly.size());
  for (std::size_t i = 0; i < poly.size(); ++i) {
    LACRV_CHECK_MSG(poly[i] <= 1, "minimal polynomial not binary");
    bits[i] = static_cast<u8>(poly[i]);
  }
  return bits;
}

CodeSpec make_spec(int k, int t, int chien_first, int chien_last) {
  CodeSpec spec;
  spec.n = gf::kGroupOrder;
  spec.k = k;
  spec.t = t;
  spec.msg_bits = 256;
  spec.chien_first = chien_first;
  spec.chien_last = chien_last;
  spec.generator = compute_generator(t);
  LACRV_CHECK_MSG(static_cast<int>(spec.generator.size()) == spec.n - k + 1,
                  "generator degree does not match n - k");
  return spec;
}

}  // namespace

BitVec poly_mul_gf2(const BitVec& a, const BitVec& b) {
  LACRV_CHECK(!a.empty() && !b.empty());
  BitVec c(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a[i]) continue;
    for (std::size_t j = 0; j < b.size(); ++j) c[i + j] ^= b[j];
  }
  return c;
}

BitVec poly_mod_gf2(const BitVec& a, const BitVec& g) {
  LACRV_CHECK(!g.empty() && g.back() == 1);
  BitVec r = a;
  const std::size_t dg = g.size() - 1;
  for (std::size_t i = r.size(); i-- > dg;) {
    if (!r[i]) continue;
    for (std::size_t j = 0; j <= dg; ++j) r[i - dg + j] ^= g[j];
  }
  r.resize(std::min(r.size(), dg));
  r.resize(dg, 0);
  return r;
}

BitVec compute_generator(int t) {
  LACRV_CHECK(t >= 1 && 2 * t < gf::kGroupOrder);
  std::set<int> covered;
  BitVec g = {1};
  for (int e = 1; e <= 2 * t; ++e) {
    if (covered.count(e)) continue;
    // mark the whole coset of e as covered
    int j = e;
    while (!covered.count(j)) {
      covered.insert(j);
      j = (2 * j) % gf::kGroupOrder;
    }
    g = poly_mul_gf2(g, minimal_polynomial(e));
  }
  return g;
}

const CodeSpec& CodeSpec::bch_511_367_16() {
  static const CodeSpec spec = make_spec(367, 16, 112, 368);
  return spec;
}

const CodeSpec& CodeSpec::bch_511_439_8() {
  static const CodeSpec spec = make_spec(439, 8, 184, 440);
  return spec;
}

}  // namespace lacrv::bch
