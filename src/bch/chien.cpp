#include "bch/chien.h"

#include "common/check.h"
#include "common/costs.h"

namespace lacrv::bch {

ChienResult chien_search(const CodeSpec& spec, const Locator& loc,
                         Flavor flavor, CycleLedger* ledger) {
  const int terms = spec.t + 1;
  LACRV_CHECK(static_cast<int>(loc.lambda.size()) == terms);
  const gf::MulKind kind = flavor == Flavor::kSubmission
                               ? gf::MulKind::kTable
                               : gf::MulKind::kShiftAdd;
  const auto mul = [&](gf::Element a, gf::Element b) {
    return kind == gf::MulKind::kTable ? gf::mul_table(a, b)
                                       : gf::mul_shift_add(a, b);
  };

  // Running terms q_k = lambda_k * alpha^(k*l); per point the terms are
  // summed and then each multiplied by alpha^k to advance l by one.
  std::vector<gf::Element> q(terms);
  for (int k = 0; k < terms; ++k)
    q[k] = mul(loc.lambda[k],
               gf::alpha_pow(static_cast<u32>(k) * spec.chien_first));

  ChienResult result;
  const int points = spec.chien_last - spec.chien_first + 1;
  u64 cycles = 0;
  for (int l = spec.chien_first; l <= spec.chien_last; ++l) {
    gf::Element sum = 0;
    for (int k = 0; k < terms; ++k) sum = gf::add(sum, q[k]);
    if (sum == 0) {
      ++result.roots_found;
      const int degree = (gf::kGroupOrder - l) % gf::kGroupOrder;
      if (degree < spec.length()) result.error_degrees.push_back(degree);
      if (flavor == Flavor::kSubmission) cycles += cost::kSubChienRootExtra;
    }
    for (int k = 0; k < terms; ++k)
      q[k] = mul(q[k], gf::alpha_pow(static_cast<u32>(k)));
  }
  const u64 term_step = flavor == Flavor::kSubmission
                            ? cost::kSubChienTermStep
                            : cost::kCtChienTermStep;
  const u64 point_overhead = flavor == Flavor::kSubmission
                                 ? cost::kSubChienPointOverhead
                                 : cost::kCtChienPointOverhead;
  cycles += static_cast<u64>(points) *
            (static_cast<u64>(terms) * term_step + point_overhead);
  charge(ledger, cycles);
  return result;
}

}  // namespace lacrv::bch
