#include "bch/syndrome.h"

#include "common/check.h"
#include "common/costs.h"

namespace lacrv::bch {

std::vector<gf::Element> syndromes(const CodeSpec& spec, const BitVec& r,
                                   Flavor flavor, CycleLedger* ledger) {
  LACRV_CHECK(static_cast<int>(r.size()) == spec.length());
  const int two_t = 2 * spec.t;
  const gf::MulKind kind = flavor == Flavor::kSubmission
                               ? gf::MulKind::kTable
                               : gf::MulKind::kShiftAdd;
  std::vector<gf::Element> synd(two_t, 0);
  for (int j = 1; j <= two_t; ++j) {
    const gf::Element aj = gf::alpha_pow(static_cast<u32>(j));
    // Horner over the received bits, top degree first: S_j = r(alpha^j).
    gf::Element acc = 0;
    for (int i = spec.length() - 1; i >= 0; --i) {
      acc = kind == gf::MulKind::kTable ? gf::mul_table(acc, aj)
                                        : gf::mul_shift_add(acc, aj);
      acc = gf::add(acc, r[i]);
    }
    synd[j - 1] = acc;
  }
  const u64 step = flavor == Flavor::kSubmission ? cost::kSubSyndromeStep
                                                 : cost::kCtSyndromeStep;
  charge(ledger, static_cast<u64>(spec.length()) * two_t * step);
  return synd;
}

bool all_zero(const std::vector<gf::Element>& synd) {
  gf::Element acc = 0;
  for (gf::Element s : synd) acc |= s;
  return acc == 0;
}

}  // namespace lacrv::bch
