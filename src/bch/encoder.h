// Systematic BCH encoding of 256-bit messages (LAC's plaintext size).
#pragma once

#include <array>

#include "bch/code.h"
#include "common/ledger.h"

namespace lacrv::bch {

using Message = std::array<u8, 32>;  // 256 bits, LSB-first within each byte

/// Encode a 256-bit message into a shortened systematic codeword of
/// spec.length() bits: [parity | message].
BitVec encode(const CodeSpec& spec, const Message& msg,
              CycleLedger* ledger = nullptr);

/// Constant-time encoder: the message is secret (it carries the shared
/// key!), so the LFSR division must not branch on message bits. This
/// variant processes every bit with masked XORs — same output as
/// encode(), fixed control flow (Walters & Roy protect the encoder too).
BitVec encode_ct(const CodeSpec& spec, const Message& msg,
                 CycleLedger* ledger = nullptr);

/// Extract the message bits from a (corrected) codeword.
Message extract_message(const CodeSpec& spec, const BitVec& codeword);

/// Bit access helpers shared by the codec layers.
constexpr int get_bit(const Message& msg, int i) {
  return (msg[i >> 3] >> (i & 7)) & 1;
}
constexpr void set_bit(Message& msg, int i, int v) {
  if (v)
    msg[i >> 3] = static_cast<u8>(msg[i >> 3] | (1u << (i & 7)));
  else
    msg[i >> 3] = static_cast<u8>(msg[i >> 3] & ~(1u << (i & 7)));
}

}  // namespace lacrv::bch
