// BCH code construction over GF(2^9) (Sec. IV-B).
//
// LAC uses two shortened binary BCH codes:
//   BCH(511, 367, t=16) for LAC-128 / LAC-256
//   BCH(511, 439, t=8)  for LAC-192
// both shortened to a 256-bit message. The transmitted word layout is
//   [ parity bits p = n-k | 256 message bits ]   (systematic),
// i.e. message bit i sits at codeword degree p + i; the (k - 256) highest
// information positions are implicitly zero and never transmitted.
//
// Because only message-bit errors matter for plaintext recovery, the Chien
// search needs to scan just the exponent window covering those positions
// (error at degree j <=> root alpha^l with l = 511 - j):
// alpha^112..alpha^368 for t=16, alpha^184..alpha^440 for t=8 — exactly the
// windows stated in the paper.
#pragma once

#include <vector>

#include "gf/gf512.h"

namespace lacrv::bch {

using BitVec = std::vector<u8>;  // one bit per element, values 0/1

struct CodeSpec {
  int n;         // full code length (511)
  int k;         // full code dimension
  int t;         // error-correction capability
  int msg_bits;  // shortened message length (256)
  int chien_first;  // first alpha exponent scanned by Chien search
  int chien_last;   // last alpha exponent (inclusive)
  BitVec generator;  // g(x) coefficients, degree n-k

  int parity_bits() const { return n - k; }
  /// Transmitted (shortened) codeword length in bits.
  int length() const { return msg_bits + parity_bits(); }
  /// Codeword degree of message bit i.
  int message_degree(int i) const { return parity_bits() + i; }

  /// BCH(511, 367, 16), shortened to 256-bit messages (LAC-128/LAC-256).
  static const CodeSpec& bch_511_367_16();
  /// BCH(511, 439, 8), shortened to 256-bit messages (LAC-192).
  static const CodeSpec& bch_511_439_8();
};

/// Compute the generator polynomial of the binary BCH code with design
/// distance 2t+1 over GF(2^9): the product of the distinct minimal
/// polynomials of alpha^1 .. alpha^2t. Exposed for testing; the CodeSpec
/// factories use it.
BitVec compute_generator(int t);

/// Multiply two binary polynomials (coefficient vectors, LSB first).
BitVec poly_mul_gf2(const BitVec& a, const BitVec& b);

/// Remainder of a mod g over GF(2); g must be non-empty with leading 1.
BitVec poly_mod_gf2(const BitVec& a, const BitVec& g);

}  // namespace lacrv::bch
