#include "lac/pke.h"

#include "common/check.h"
#include "common/costs.h"
#include "lac/sampler.h"

namespace lacrv::lac {
namespace {

// Domain-separation tags for seed derivation.
constexpr u8 kTagSeedA = 0x01;
constexpr u8 kTagSecret = 0x02;
constexpr u8 kTagError = 0x03;
constexpr u8 kTagEncSecret = 0x04;
constexpr u8 kTagEncError1 = 0x05;
constexpr u8 kTagEncError2 = 0x06;

/// Multiply general b by ternary s in R_n according to the backend:
/// the optimized path drives the MUL TER unit (full product), reference
/// paths run the dense n^2 software loop. `out_len` < n requests the
/// reference partial product (encryption's v); the hardware unit always
/// computes the full product (the software trick doesn't apply to it).
poly::Coeffs backend_mul(const Params& params, const Backend& backend,
                         const poly::Coeffs& b, const poly::Ternary& s,
                         std::size_t out_len, CycleLedger* ledger) {
  LedgerScope scope(ledger, "mult");
  if (backend.kind == Backend::Kind::kOptimized) {
    poly::Coeffs full = poly::mul_with_unit(s, b, backend.mul_unit, ledger);
    full.resize(out_len);
    return full;
  }
  if (out_len < params.n) return poly::mul_ref_partial(b, s, out_len, ledger);
  return poly::mul_ref(b, s, /*negacyclic=*/true, ledger);
}

void charge_hash_blocks(CycleLedger* ledger, const Backend& backend,
                        u64 compressions) {
  charge(ledger, compressions * hash_block_cost(backend.hash_impl));
}

}  // namespace

hash::Seed derive_seed(const hash::Seed& seed, u8 tag) {
  hash::Sha256 h;
  h.update(ByteView(&tag, 1));
  h.update(ByteView(seed.data(), seed.size()));
  const hash::Digest d = h.finalize();
  hash::Seed out;
  std::copy(d.begin(), d.end(), out.begin());
  return out;
}

KeyPair keygen(const Params& params, const Backend& backend,
               const hash::Seed& master, CycleLedger* ledger) {
  KeyPair kp;
  kp.pk.seed_a = derive_seed(master, kTagSeedA);
  charge_hash_blocks(ledger, backend, 2);

  const poly::Coeffs a = gen_a(kp.pk.seed_a, params, backend.hash_impl, ledger);
  kp.sk.s = sample_fixed_weight(derive_seed(master, kTagSecret), params,
                                backend.hash_impl, ledger);
  const poly::Ternary e = sample_fixed_weight(derive_seed(master, kTagError),
                                              params, backend.hash_impl,
                                              ledger);

  const poly::Coeffs as =
      backend_mul(params, backend, a, kp.sk.s, params.n, ledger);
  kp.pk.b = poly::add(as, poly::from_ternary(e));
  charge(ledger, params.pk_bytes() * cost::kPackByteStep +
                     params.sk_bytes() * cost::kPackByteStep);
  return kp;
}

Ciphertext encrypt(const Params& params, const Backend& backend,
                   const PublicKey& pk, const bch::Message& msg,
                   const hash::Seed& coins, CycleLedger* ledger) {
  const poly::Coeffs a = gen_a(pk.seed_a, params, backend.hash_impl, ledger);
  return encrypt_with_a(params, backend, pk, a, msg, coins, ledger);
}

Ciphertext encrypt_with_a(const Params& params, const Backend& backend,
                          const PublicKey& pk, const poly::Coeffs& a,
                          const bch::Message& msg, const hash::Seed& coins,
                          CycleLedger* ledger) {
  LACRV_CHECK(pk.b.size() == params.n);
  LACRV_CHECK(a.size() == params.n);
  const poly::Ternary sp = sample_fixed_weight(
      derive_seed(coins, kTagEncSecret), params, backend.hash_impl, ledger);
  const poly::Ternary ep = sample_fixed_weight(
      derive_seed(coins, kTagEncError1), params, backend.hash_impl, ledger);
  // e'' only covers the lv transmitted coefficients of v; its weight is
  // scaled proportionally (rounded down to even), as in the LAC spec.
  const std::size_t lv = params.v_len();
  const std::size_t epp_weight = (params.weight * lv / params.n) & ~1u;
  const poly::Ternary epp = sample_fixed_weight_raw(
      derive_seed(coins, kTagEncError2), lv, epp_weight, backend.hash_impl,
      ledger, params.prg);
  charge_hash_blocks(ledger, backend, 6);

  Ciphertext ct;
  // u = a s' + e'  (full product)
  ct.u = poly::add(backend_mul(params, backend, a, sp, params.n, ledger),
                   poly::from_ternary(ep));

  // v = (b s')[0..lv) + e'' + encode(m), 4-bit compressed.
  const poly::Coeffs bs = backend_mul(params, backend, pk.b, sp, lv, ledger);
  const poly::Coeffs payload =
      encode_payload(params, msg, ledger, backend.bch_flavor);
  ct.v.resize(lv);
  for (std::size_t i = 0; i < lv; ++i) {
    u8 v = poly::add_mod(bs[i], payload[i]);
    if (epp[i] == 1)
      v = poly::add_mod(v, 1);
    else if (epp[i] == -1)
      v = poly::sub_mod(v, 1);
    ct.v[i] = compress4(v);
  }
  charge(ledger, lv * cost::kCodecCoeffStep +
                     params.ct_bytes() * cost::kPackByteStep);
  return ct;
}

DecryptResult decrypt(const Params& params, const Backend& backend,
                      const SecretKey& sk, const Ciphertext& ct,
                      CycleLedger* ledger) {
  LACRV_CHECK(ct.u.size() == params.n);
  LACRV_CHECK(ct.v.size() == params.v_len());
  // The reference decryption computes the full product u*s (Table II's
  // decapsulation rows match a full, not partial, multiplication).
  const poly::Coeffs us =
      backend_mul(params, backend, ct.u, sk.s, params.n, ledger);

  const std::size_t lv = params.v_len();
  poly::Coeffs w(lv);
  for (std::size_t i = 0; i < lv; ++i)
    w[i] = poly::sub_mod(decompress4(ct.v[i]), us[i]);
  charge(ledger, lv * cost::kCodecCoeffStep);

  const bch::DecodeResult decoded = decode_payload(params, backend, w, ledger);
  return DecryptResult{decoded.message, decoded.ok};
}

Bytes serialize(const Params& params, const PublicKey& pk) {
  Bytes out;
  out.reserve(params.pk_bytes());
  out.insert(out.end(), pk.seed_a.begin(), pk.seed_a.end());
  out.insert(out.end(), pk.b.begin(), pk.b.end());
  LACRV_CHECK(out.size() == params.pk_bytes());
  return out;
}

Bytes serialize(const Params& params, const Ciphertext& ct) {
  Bytes out;
  out.reserve(params.ct_bytes());
  out.insert(out.end(), ct.u.begin(), ct.u.end());
  for (std::size_t i = 0; i < ct.v.size(); i += 2) {
    u8 byte = static_cast<u8>(ct.v[i] & 0xF);
    if (i + 1 < ct.v.size()) byte |= static_cast<u8>((ct.v[i + 1] & 0xF) << 4);
    out.push_back(byte);
  }
  LACRV_CHECK(out.size() == params.ct_bytes());
  return out;
}

PublicKey deserialize_pk(const Params& params, ByteView bytes) {
  LACRV_CHECK(bytes.size() == params.pk_bytes());
  PublicKey pk;
  std::copy(bytes.begin(), bytes.begin() + hash::kSeedSize,
            pk.seed_a.begin());
  pk.b.assign(bytes.begin() + hash::kSeedSize, bytes.end());
  return pk;
}

Ciphertext deserialize_ct(const Params& params, ByteView bytes) {
  LACRV_CHECK(bytes.size() == params.ct_bytes());
  Ciphertext ct;
  ct.u.assign(bytes.begin(), bytes.begin() + params.n);
  ct.v.resize(params.v_len());
  for (std::size_t i = 0; i < ct.v.size(); ++i) {
    const u8 byte = bytes[params.n + i / 2];
    ct.v[i] = (i % 2 == 0) ? static_cast<u8>(byte & 0xF)
                           : static_cast<u8>(byte >> 4);
  }
  return ct;
}

}  // namespace lacrv::lac
