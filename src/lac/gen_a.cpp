#include "lac/gen_a.h"

#include <atomic>

#include "common/costs.h"
#include "hash/keccak.h"

namespace lacrv::lac {
namespace {
std::atomic<u64> g_gen_a_expansions{0};
}  // namespace

u64 gen_a_expansions() {
  return g_gen_a_expansions.load(std::memory_order_relaxed);
}

u64 hash_block_cost(HashImpl impl) {
  return impl == HashImpl::kSoftware ? cost::kSwSha256Block
                                     : cost::kHwSha256Block;
}

u64 prg_block_cost(PrgKind prg, HashImpl impl) {
  if (prg == PrgKind::kShake128)
    return impl == HashImpl::kSoftware ? cost::kSwKeccakBlock
                                       : cost::kHwKeccakBlock;
  return hash_block_cost(impl);
}

poly::Coeffs gen_a(const hash::Seed& seed, const Params& params,
                   HashImpl hash_impl, CycleLedger* ledger) {
  LedgerScope scope(ledger, "gen_a");
  g_gen_a_expansions.fetch_add(1, std::memory_order_relaxed);
  poly::Coeffs a(params.n);
  u64 blocks = 0;
  if (params.prg == PrgKind::kShake128) {
    hash::Shake128 prg(ByteView(seed.data(), seed.size()));
    for (auto& coeff : a)
      coeff = static_cast<u8>(prg.next_below(poly::kQ));
    blocks = prg.permutations();
  } else {
    hash::Sha256Prg prg(seed);
    for (auto& coeff : a)
      coeff = static_cast<u8>(prg.next_below(poly::kQ));
    blocks = prg.compressions();
  }
  charge(ledger, blocks * prg_block_cost(params.prg, hash_impl) +
                     params.n * cost::kGenACoeffStep);
  return a;
}

}  // namespace lacrv::lac
