#include "lac/context.h"

#include "common/check.h"
#include "common/costs.h"
#include "obs/trace.h"

namespace lacrv::lac {
namespace {

/// 64-bit FNV-1a, accumulated field by field. Not cryptographic — the
/// threat is memory corruption (a flipped DRAM bit, a stray write), not
/// an adversary forging a context, and the shadow verifier backstops
/// even that.
constexpr u64 kFnvOffset = 0xcbf29ce484222325ull;
constexpr u64 kFnvPrime = 0x100000001b3ull;

void fnv_bytes(u64& h, const void* data, std::size_t len) {
  const u8* p = static_cast<const u8*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

template <typename T>
void fnv_pod(u64& h, const T& v) {
  fnv_bytes(h, &v, sizeof(v));
}

template <typename T>
void fnv_vec(u64& h, const std::vector<T>& v) {
  fnv_pod(h, v.size());
  if (!v.empty()) fnv_bytes(h, v.data(), v.size() * sizeof(T));
}

}  // namespace

u64 context_checksum(const KeyContext& ctx) {
  u64 h = kFnvOffset;
  fnv_pod(h, ctx.params.n);
  fnv_bytes(h, ctx.pk.seed_a.data(), ctx.pk.seed_a.size());
  fnv_vec(h, ctx.pk.b);
  fnv_vec(h, ctx.a);
  fnv_vec(h, ctx.pk_bytes);
  fnv_bytes(h, ctx.pk_hash.data(), ctx.pk_hash.size());
  fnv_pod(h, ctx.has_secret);
  fnv_vec(h, ctx.s);
  fnv_vec(h, ctx.s_plus);
  fnv_vec(h, ctx.s_minus);
  fnv_bytes(h, ctx.z.data(), ctx.z.size());
  return h;
}

KeyContext build_key_context(const Params& params, const Backend& backend,
                             const PublicKey& pk, CycleLedger* ledger) {
  obs::TraceSpan span("kem.context_build", "kem");
  LACRV_CHECK(pk.b.size() == params.n);
  KeyContext ctx;
  ctx.params = params;
  ctx.pk = pk;
  // Charge into a private ledger first: build_cycles must capture exactly
  // what the per-request path would have spent (gen_a + H(pk) blocks), so
  // the caller's ledger sees one clean "context_build" section instead of
  // per-request "gen_a" attribution.
  CycleLedger build;
  ctx.a = gen_a(pk.seed_a, params, backend.hash_impl, &build);
  ctx.pk_bytes = serialize(params, pk);
  bool fault = false;
  ctx.pk_hash = tagged_hash(0x00, ctx.pk_bytes, {}, backend, &build, &fault);
  ctx.hash_fault_detected = fault;
  ctx.build_cycles = build.total();
  LedgerScope scope(ledger, "context_build");
  charge(ledger, ctx.build_cycles);
  ctx.checksum = context_checksum(ctx);
  return ctx;
}

KeyContext build_kem_context(const Params& params, const Backend& backend,
                             const KemKeyPair& keys, CycleLedger* ledger) {
  KeyContext ctx = build_key_context(params, backend, keys.pk, ledger);
  LACRV_CHECK(keys.sk.s.size() == params.n);
  ctx.has_secret = true;
  ctx.s = keys.sk.s;
  ctx.z = keys.z;
  // Sparse index form for mul_ref_indexed. Free in the cycle model — the
  // paper's reference multiplication walks the dense rows regardless, and
  // the indexed multiply keeps charging that same model.
  for (std::size_t j = 0; j < ctx.s.size(); ++j) {
    if (ctx.s[j] == 1) ctx.s_plus.push_back(static_cast<u16>(j));
    if (ctx.s[j] == -1) ctx.s_minus.push_back(static_cast<u16>(j));
  }
  // Re-stamp: the secret fields joined the covered set.
  ctx.checksum = context_checksum(ctx);
  return ctx;
}

Ciphertext encrypt(const Params& params, const Backend& backend,
                   const KeyContext& ctx, const bch::Message& msg,
                   const hash::Seed& coins, CycleLedger* ledger) {
  LACRV_CHECK_MSG(ctx.params.n == params.n && ctx.params.prg == params.prg,
                  "KeyContext built for different parameters");
  return encrypt_with_a(params, backend, ctx.pk, ctx.a, msg, coins, ledger);
}

DecryptResult decrypt(const Params& params, const Backend& backend,
                      const KeyContext& ctx, const Ciphertext& ct,
                      CycleLedger* ledger) {
  LACRV_CHECK_MSG(ctx.has_secret, "KeyContext lacks the secret key");
  LACRV_CHECK(ct.u.size() == params.n);
  LACRV_CHECK(ct.v.size() == params.v_len());
  // Mirrors pke.cpp decrypt() exactly (full product, Table II semantics);
  // the reference path runs from the precomputed index lists instead of
  // re-scanning the dense ternary vector. Bit-identical, same charges.
  poly::Coeffs us;
  {
    LedgerScope scope(ledger, "mult");
    if (backend.kind == Backend::Kind::kOptimized) {
      us = poly::mul_with_unit(ctx.s, ct.u, backend.mul_unit, ledger);
    } else {
      us = poly::mul_ref_indexed(ct.u, ctx.s_plus, ctx.s_minus,
                                 /*negacyclic=*/true, ledger);
    }
  }
  const std::size_t lv = params.v_len();
  poly::Coeffs w(lv);
  for (std::size_t i = 0; i < lv; ++i)
    w[i] = poly::sub_mod(decompress4(ct.v[i]), us[i]);
  charge(ledger, lv * cost::kCodecCoeffStep);

  const bch::DecodeResult decoded = decode_payload(params, backend, w, ledger);
  return DecryptResult{decoded.message, decoded.ok};
}

// ---- ContextCache ----------------------------------------------------------

ContextCache::ContextCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::size_t ContextCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::shared_ptr<const KeyContext> ContextCache::lookup_or_insert(
    const Params& params, const hash::Seed& seed_a, bool need_secret,
    const std::function<KeyContext()>& build) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->seed_a == seed_a && it->n == params.n && it->prg == params.prg &&
        (!need_secret || it->ctx->has_secret)) {
      // Checkout validation: a cached context is long-lived shared state;
      // serving a corrupted one would poison every request under the key
      // until eviction. A failed checksum drops the entry and falls
      // through to a fresh build — detected and rebuilt, never served.
      if (!context_integrity_ok(*it->ctx)) {
        corruptions_.fetch_add(1, std::memory_order_relaxed);
        entries_.erase(it);
        break;
      }
      entries_.splice(entries_.begin(), entries_, it);  // promote to MRU
      hits_.fetch_add(1, std::memory_order_relaxed);
      return entries_.front().ctx;
    }
  }
  // Build under the lock: concurrent first-touch workers then build the
  // shared key's context exactly once instead of racing N expansions.
  auto ctx = std::make_shared<const KeyContext>(build());
  builds_.fetch_add(1, std::memory_order_relaxed);
  entries_.push_front(Entry{seed_a, params.n, params.prg, ctx});
  // A secret-bearing context supersedes a secretless one for the same key.
  for (auto it = std::next(entries_.begin()); it != entries_.end();) {
    if (it->seed_a == seed_a && it->n == params.n && it->prg == params.prg &&
        !it->ctx->has_secret && ctx->has_secret) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  while (entries_.size() > capacity_) {
    entries_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return ctx;
}

bool ContextCache::corrupt_for_test(const hash::Seed& seed_a, std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.seed_a != seed_a || e.n != n) continue;
    // The cached object is shared immutable state by contract; the test
    // hook breaks that contract on purpose to model a memory fault.
    auto& a = const_cast<KeyContext&>(*e.ctx).a;
    if (a.empty()) return false;
    a[a.size() / 2] = static_cast<u8>(a[a.size() / 2] ^ 0x01u);
    return true;
  }
  return false;
}

std::shared_ptr<const KeyContext> ContextCache::get_or_build(
    const Params& params, const Backend& backend, const PublicKey& pk,
    CycleLedger* ledger) {
  return lookup_or_insert(params, pk.seed_a, /*need_secret=*/false, [&] {
    return build_key_context(params, backend, pk, ledger);
  });
}

std::shared_ptr<const KeyContext> ContextCache::get_or_build(
    const Params& params, const Backend& backend, const KemKeyPair& keys,
    CycleLedger* ledger) {
  return lookup_or_insert(params, keys.pk.seed_a, /*need_secret=*/true, [&] {
    return build_kem_context(params, backend, keys, ledger);
  });
}

}  // namespace lacrv::lac
