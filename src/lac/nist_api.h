// NIST-PQC-competition-style flat byte-buffer API, the interface SUPERCOP
// / pqm4 / liboqs consumers expect:
//
//   crypto_kem_keypair(pk, sk, randombytes)
//   crypto_kem_enc(ct, ss, pk, randombytes)
//   crypto_kem_dec(ss, ct, sk)
//
// pk/sk/ct/ss are caller-provided buffers of the sizes reported by the
// Sizes struct (sk is the full decapsulation key: s || z || pk).
// Randomness is injected as a callable so KATs and deterministic tests
// work the same way the NIST KAT harness drives randombytes().
#pragma once

#include <functional>

#include "lac/kem.h"

namespace lacrv::lac::nist {

/// Fills the buffer with fresh randomness (the NIST randombytes shape).
using RandomBytes = std::function<void(u8* out, std::size_t len)>;

struct Sizes {
  std::size_t public_key;
  std::size_t secret_key;
  std::size_t ciphertext;
  std::size_t shared_secret;  // always 32
};
Sizes sizes(const Params& params);

// All three calls return a typed Status and never throw: null buffers or
// malformed serialized inputs yield Status::kBadArgument with the output
// buffers untouched (the SUPERCOP convention of nonzero-on-error, made
// explicit). Decapsulation keeps implicit rejection: a tampered ct still
// returns kOk with the pseudo-random rejection key in ss.

/// Generate a key pair into pk / sk (buffers of sizes(params) lengths).
Status crypto_kem_keypair(const Params& params, const Backend& backend,
                          u8* pk, u8* sk, const RandomBytes& randombytes);

/// Encapsulate: writes ct and the 32-byte shared secret ss.
Status crypto_kem_enc(const Params& params, const Backend& backend, u8* ct,
                      u8* ss, const u8* pk, const RandomBytes& randombytes);

/// Decapsulate: writes the 32-byte shared secret ss (implicit rejection
/// on malformed ciphertexts — never fails observably).
Status crypto_kem_dec(const Params& params, const Backend& backend, u8* ss,
                      const u8* ct, const u8* sk);

}  // namespace lacrv::lac::nist
