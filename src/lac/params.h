// LAC parameter sets (2nd-round NIST submission, as used by the paper).
//
//            n     q   weight h   BCH code          D2   NIST cat.
// LAC-128    512   251  256       (511,367,16)      no   I
// LAC-192   1024   251  256       (511,439, 8)      no   III
// LAC-256   1024   251  512       (511,367,16)      yes  V
//
// weight h = number of nonzero coefficients of a secret/error polynomial
// (h/2 ones, h/2 minus-ones; LAC-192's sparser distribution is why its
// smaller t=8 code suffices). LAC-256 duplicates every codeword bit in v
// ("D2" encoding) to halve the effective bit-error rate.
#pragma once

#include <array>

#include "bch/code.h"
#include "hash/prg.h"
#include "poly/ring.h"

namespace lacrv::lac {

enum class SecurityLevel { kLac128, kLac192, kLac256 };

/// Which XOF expands seeds into polynomials. kSha256Ctr is LAC as
/// submitted (and as the paper builds); kShake128 is the paper's
/// future-work variant ("changing the SHA256 accelerator with a Keccak
/// accelerator"), realized here as a complete scheme variant.
enum class PrgKind { kSha256Ctr, kShake128 };

struct Params {
  SecurityLevel level;
  const char* name;
  std::size_t n;
  std::size_t weight;  // h
  const bch::CodeSpec* code;
  bool d2;
  int nist_category;
  PrgKind prg = PrgKind::kSha256Ctr;
  /// Coefficient modulus of the scheme. Every LAC set uses q = 251; the
  /// field exists so modulus-sensitive machinery (the modq registry
  /// slot, fault campaigns) takes its q from the scheme parameters
  /// instead of hard-coding poly::kQ — the extension point a second,
  /// different-modulus SchemeProfile plugs into.
  u32 q = poly::kQ;

  /// Bits of the (shortened) BCH codeword.
  std::size_t cw_bits() const { return static_cast<std::size_t>(code->length()); }
  /// Number of coefficients of v = cw_bits, doubled under D2.
  std::size_t v_len() const { return cw_bits() * (d2 ? 2 : 1); }

  /// Wire sizes in bytes (1 byte per coefficient of b; v compressed to
  /// 4 bits per coefficient). LAC-256: pk 1056, sk 1024, ct 1424 —
  /// matching the paper's Sec. VI numbers.
  std::size_t pk_bytes() const { return hash::kSeedSize + n; }
  std::size_t sk_bytes() const { return n; }
  std::size_t ct_bytes() const { return n + (v_len() + 1) / 2; }

  static const Params& lac128();
  static const Params& lac192();
  static const Params& lac256();
  /// SHAKE-128-based variants (future work of Sec. VI-B as a scheme).
  static const Params& lac128_shake();
  static const Params& lac192_shake();
  static const Params& lac256_shake();
  static const Params& get(SecurityLevel level);
  /// The paper's three parameter sets.
  static std::array<const Params*, 3> all();
  /// The SHAKE variants.
  static std::array<const Params*, 3> all_shake();
};

}  // namespace lacrv::lac
