#include "lac/params.h"

#include "common/check.h"

namespace lacrv::lac {

const Params& Params::lac128() {
  static const Params p{SecurityLevel::kLac128, "LAC-128", 512, 256,
                        &bch::CodeSpec::bch_511_367_16(), false, 1};
  return p;
}

const Params& Params::lac192() {
  static const Params p{SecurityLevel::kLac192, "LAC-192", 1024, 256,
                        &bch::CodeSpec::bch_511_439_8(), false, 3};
  return p;
}

const Params& Params::lac256() {
  static const Params p{SecurityLevel::kLac256, "LAC-256", 1024, 512,
                        &bch::CodeSpec::bch_511_367_16(), true, 5};
  return p;
}

const Params& Params::lac128_shake() {
  static const Params p{SecurityLevel::kLac128, "LAC-128-SHAKE", 512, 256,
                        &bch::CodeSpec::bch_511_367_16(), false, 1,
                        PrgKind::kShake128};
  return p;
}

const Params& Params::lac192_shake() {
  static const Params p{SecurityLevel::kLac192, "LAC-192-SHAKE", 1024, 256,
                        &bch::CodeSpec::bch_511_439_8(), false, 3,
                        PrgKind::kShake128};
  return p;
}

const Params& Params::lac256_shake() {
  static const Params p{SecurityLevel::kLac256, "LAC-256-SHAKE", 1024, 512,
                        &bch::CodeSpec::bch_511_367_16(), true, 5,
                        PrgKind::kShake128};
  return p;
}

std::array<const Params*, 3> Params::all_shake() {
  return {&lac128_shake(), &lac192_shake(), &lac256_shake()};
}

const Params& Params::get(SecurityLevel level) {
  switch (level) {
    case SecurityLevel::kLac128:
      return lac128();
    case SecurityLevel::kLac192:
      return lac192();
    case SecurityLevel::kLac256:
      return lac256();
  }
  LACRV_CHECK_MSG(false, "unknown security level");
}

std::array<const Params*, 3> Params::all() {
  return {&lac128(), &lac192(), &lac256()};
}

}  // namespace lacrv::lac
