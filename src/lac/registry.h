// The PQ-ALU kernel registry: one pluggable slot per accelerator
// primitive of the ISA extension (Sec. V) — MUL TER, MUL CHIEN, SHA-256
// and MOD q.
//
// Each PqUnit<Fn> bundles everything four PRs of growth had scattered
// into parallel per-unit copies:
//   * the golden software model with the pq-instruction cycle model
//     attached (the `modeled` implementation Backend::optimized() runs),
//   * an optionally injected implementation (RTL-backed callables from
//     perf/rtl_backend, or anything else with the same signature),
//   * the construction-time known-answer self-test that gates injection
//     (the single home of per-unit KAT logic — a guard test asserts no
//     other file constructs one),
//   * the degradation record wording of docs/robustness.md, and
//   * the canonical slot name used for trace spans, metric labels,
//     bench keys and `--mix` flags.
//
// A KernelRegistry holds the four slots; lac::Backend profiles are thin
// facades copying each slot's active callable into the legacy Backend
// fields, so every existing call site keeps compiling while fault
// campaigns, service breakers and health probes iterate registry slots
// instead of hand-kept unit lists.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bch/decoder.h"
#include "common/status.h"
#include "hash/sha256.h"
#include "poly/karatsuba.h"
#include "poly/split_mul.h"

namespace lacrv::lac {

/// The four PQ-ALU primitives, in funct3 order (docs/isa.md).
enum class Slot : u8 { kMulTer = 0, kChien = 1, kSha256 = 2, kModq = 3 };

inline constexpr std::size_t kNumSlots = 4;
inline constexpr std::array<Slot, kNumSlots> kAllSlots = {
    Slot::kMulTer, Slot::kChien, Slot::kSha256, Slot::kModq};

/// Canonical slot name: the one string used for trace spans
/// ("<name>.busy"), breaker metric labels (unit="<name>"), bench keys
/// and --mix flags. (The fault campaign's DegradeReport keeps its
/// historical "barrett" wording for the MOD q unit — see fault/plan.h.)
constexpr const char* slot_name(Slot slot) {
  switch (slot) {
    case Slot::kMulTer: return "mul_ter";
    case Slot::kChien: return "chien";
    case Slot::kSha256: return "sha256";
    case Slot::kModq: return "modq";
  }
  return "?";
}

// ---- modeled implementations (golden software + pq cycle model) ------------

/// MUL TER model used by optimized(): computes with mul_ter_sw and charges
/// the pq.mul_ter I/O + n compute cycles of Sec. V.
poly::MulTer512 modeled_mul_ter();
/// MUL CHIEN model used by optimized(): computes the window search and
/// charges per-point group compute/control/readback costs (Fig. 4).
bch::ChienStage modeled_chien();
/// MOD q model: barrett_reduce plus the single pq.modq issue cycle.
poly::ModqFn modeled_modq();
/// MOD q model for an arbitrary modulus (same single-issue cycle model).
/// modulus == poly::kQ serves the paper's Barrett datapath bit-exactly;
/// any other modulus reduces with a plain `%` — the software stand-in a
/// second-scheme profile starts from before it grows its own datapath.
poly::ModqFn modeled_modq_for(u32 modulus);

// ---- known-answer self-tests -----------------------------------------------
// The construction-time KATs that gate injection and feed the runtime
// health probes (fault::selftest_* adapt the raw RTL units onto these).
// Exactly one implementation per primitive lives in registry.cpp.

bool mul_ter_kat(const poly::MulTer512& unit, std::string* detail = nullptr);
bool chien_kat(const bch::ChienStage& stage, std::string* detail = nullptr);
bool sha256_kat(const hash::HashFn& fn, std::string* detail = nullptr);
bool modq_kat(const poly::ModqFn& fn, std::string* detail = nullptr);
/// modq KAT against an arbitrary modulus: correction-boundary inputs are
/// derived from the modulus (0, 1, m-1, m, m+1, 2m, ..., 2^16-1) instead
/// of the hard-coded q = 251 ladder.
bool modq_kat_mod(const poly::ModqFn& fn, u32 modulus,
                  std::string* detail = nullptr);

// ---- the kernel slot -------------------------------------------------------

/// One pluggable kernel slot. Fn is the callable interface the scheme
/// layer consumes (poly::MulTer512, bch::ChienStage, hash::HashFn,
/// poly::ModqFn).
template <typename Fn>
class PqUnit {
 public:
  /// KAT callables may capture configuration (e.g. the modq slot's
  /// modulus), so this is a std::function rather than a bare pointer.
  using Kat = std::function<bool(const Fn&, std::string*)>;

  PqUnit() = default;
  PqUnit(Slot slot, Fn modeled, Kat kat, const char* degrade_detail)
      : slot_(slot),
        modeled_(std::move(modeled)),
        active_(modeled_),
        kat_(kat),
        degrade_detail_(degrade_detail) {}

  Slot slot() const { return slot_; }
  const char* name() const { return slot_name(slot_); }
  /// The implementation the backend serves with (modeled until a
  /// successful inject()/install()).
  const Fn& active() const { return active_; }
  const Fn& modeled() const { return modeled_; }
  bool injected() const { return injected_; }

  /// Gate an implementation behind the slot's KAT. On failure the slot
  /// keeps serving the modeled implementation and the degradation is
  /// recorded in `report` with the docs/robustness.md wording.
  Status inject(Fn impl, DegradeReport* report = nullptr) {
    if (!kat_(impl, nullptr)) {
      if (report)
        report->add(name(), Status::kSelfTestFailure, degrade_detail_);
      return Status::kSelfTestFailure;
    }
    active_ = std::move(impl);
    injected_ = true;
    return Status::kOk;
  }

  /// Unchecked installation, for compositions that cannot pass a KAT as
  /// a whole (e.g. the service's breaker-switched callables, which
  /// change behaviour at runtime by design). The caller owns validation.
  void install(Fn impl) {
    active_ = std::move(impl);
    injected_ = true;
  }

  /// Re-run the KAT against the active implementation (health probing).
  bool self_test(std::string* detail = nullptr) const {
    return kat_(active_, detail);
  }

 private:
  Slot slot_ = Slot::kMulTer;
  Fn modeled_;
  Fn active_;
  Kat kat_;
  const char* degrade_detail_ = "";
  bool injected_ = false;
};

// ---- the registry ----------------------------------------------------------

class KernelRegistry {
 public:
  /// The paper's co-design profile: every slot backed by its golden
  /// software model with the pq-instruction cycle model attached —
  /// what Backend::optimized() serves before any injection. The modq
  /// slot (model and KAT) is built for `modq_modulus`; callers with
  /// scheme parameters in hand pass Params::q so the modulus flows from
  /// the scheme instead of the q = 251 constant.
  static KernelRegistry modeled(u32 modq_modulus = poly::kQ);

  /// The modulus this registry's modq slot models and validates against.
  u32 modq_modulus() const { return modq_modulus_; }

  PqUnit<poly::MulTer512>& mul_ter() { return mul_ter_; }
  PqUnit<bch::ChienStage>& chien() { return chien_; }
  PqUnit<hash::HashFn>& sha256() { return sha256_; }
  PqUnit<poly::ModqFn>& modq() { return modq_; }
  const PqUnit<poly::MulTer512>& mul_ter() const { return mul_ter_; }
  const PqUnit<bch::ChienStage>& chien() const { return chien_; }
  const PqUnit<hash::HashFn>& sha256() const { return sha256_; }
  const PqUnit<poly::ModqFn>& modq() const { return modq_; }

  Status inject_mul_ter(poly::MulTer512 impl, DegradeReport* report = nullptr) {
    return mul_ter_.inject(std::move(impl), report);
  }
  Status inject_chien(bch::ChienStage impl, DegradeReport* report = nullptr) {
    return chien_.inject(std::move(impl), report);
  }
  Status inject_sha256(hash::HashFn impl, DegradeReport* report = nullptr) {
    return sha256_.inject(std::move(impl), report);
  }
  /// MOD q injection validates the unit's configuration before the KAT
  /// runs: a unit built for a modulus other than this registry's
  /// modq_modulus() is rejected with kBadArgument at injection time
  /// instead of silently computing garbage (the same entry-validation
  /// posture as poly::full_product_with_unit's operand checks).
  Status inject_modq(poly::ModqFn impl, u32 modulus = poly::kQ,
                     DegradeReport* report = nullptr);

  /// Type-erased view of one slot, for code that iterates all four
  /// (fault campaigns, health probes, metric registration).
  struct SlotView {
    Slot slot;
    const char* name;
    bool injected;
    std::function<bool(std::string*)> self_test;
  };
  std::vector<SlotView> slots() const;

  /// Run every slot's KAT against its active implementation; failing
  /// slots are recorded under their canonical name.
  DegradeReport self_test_all() const;

 private:
  PqUnit<poly::MulTer512> mul_ter_;
  PqUnit<bch::ChienStage> chien_;
  PqUnit<hash::HashFn> sha256_;
  PqUnit<poly::ModqFn> modq_;
  u32 modq_modulus_ = poly::kQ;
};

/// Parse a per-slot implementation mix of the form
/// "mul_ter=rtl,sha256=sw,..." into a use-RTL flag per slot (unlisted
/// slots stay on the modeled software implementation). Returns false
/// and fills *error on an unknown slot name or value.
bool parse_slot_mix(const std::string& spec,
                    std::array<bool, kNumSlots>* use_rtl, std::string* error);

}  // namespace lacrv::lac
