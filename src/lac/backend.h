// Implementation backends — the five Table II configurations reduce to
// three on our platform:
//
//  * reference()            — round-2 software everywhere: dense n^2
//                             multiplication, submission (variable-time)
//                             BCH decoder, software SHA-256.
//  * reference_const_bch()  — same but with the Walters/Roy constant-time
//                             BCH decoder ("LAC const. BCH" rows).
//  * optimized()            — the paper's co-design: MUL TER via pq.mul_ter
//                             (with the two-level split for n = 1024),
//                             constant-time syndromes/BM plus the MUL CHIEN
//                             unit, and the pq.sha256 hash path.
//
// optimized() uses golden software models of the accelerators with the
// pq-instruction cycle model attached; optimized_with() lets the perf/rtl
// layer substitute cycle-accurate RTL-backed callables (results must be
// bit-identical — tests enforce it).
#pragma once

#include "bch/decoder.h"
#include "common/status.h"
#include "hash/sha256.h"
#include "lac/gen_a.h"
#include "poly/split_mul.h"

namespace lacrv::lac {

struct Backend {
  enum class Kind { kReference, kReferenceConstBch, kOptimized };

  Kind kind = Kind::kReference;
  const char* name = "ref";
  HashImpl hash_impl = HashImpl::kSoftware;
  bch::Flavor bch_flavor = bch::Flavor::kSubmission;
  /// Set iff kind == kOptimized: the MUL TER unit (cost model included).
  poly::MulTer512 mul_unit;
  /// Set iff kind == kOptimized: the MUL CHIEN stage (cost model included).
  bch::ChienStage chien;
  /// Optional functional hash implementation (e.g. the RTL SHA-256 core).
  /// Null means the software hash::Sha256 computes digests (the default;
  /// hash_impl then only selects the cycle model).
  hash::HashFn hasher;
  /// Hardened mode: every hasher digest is cross-checked against the
  /// software hash; on mismatch the KEM uses the software digest and the
  /// *_checked entry points report the detected fault.
  bool verify_hash = false;

  static Backend reference();
  static Backend reference_const_bch();
  static Backend optimized();
  /// Optimized backend with caller-provided accelerator implementations
  /// (e.g. the RTL models driven through the ISS conventions). Each
  /// injected unit must pass a known-answer self-test against the golden
  /// software model at construction; a failing unit is replaced by the
  /// modeled software implementation and recorded in `report` (the
  /// degradation ladder of docs/robustness.md).
  static Backend optimized_with(poly::MulTer512 mul_unit,
                                bch::ChienStage chien,
                                DegradeReport* report = nullptr);

  /// Install a functional hash implementation after a KAT self-test; a
  /// failing hasher is discarded (software hash keeps serving, recorded
  /// in `report`). `verify` enables the per-digest hardened cross-check.
  Backend& with_hasher(hash::HashFn hasher, bool verify = false,
                       DegradeReport* report = nullptr);
};

/// MUL TER model used by optimized(): computes with mul_ter_sw and charges
/// the pq.mul_ter I/O + n compute cycles of Sec. V.
poly::MulTer512 modeled_mul_ter();
/// MUL CHIEN model used by optimized(): computes the window search and
/// charges per-point group compute/control/readback costs (Fig. 4).
bch::ChienStage modeled_chien();

}  // namespace lacrv::lac
