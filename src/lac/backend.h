// Implementation backends — the five Table II configurations reduce to
// three on our platform:
//
//  * reference()            — round-2 software everywhere: dense n^2
//                             multiplication, submission (variable-time)
//                             BCH decoder, software SHA-256.
//  * reference_const_bch()  — same but with the Walters/Roy constant-time
//                             BCH decoder ("LAC const. BCH" rows).
//  * optimized()            — the paper's co-design: MUL TER via pq.mul_ter
//                             (with the two-level split for n = 1024),
//                             constant-time syndromes/BM plus the MUL CHIEN
//                             unit, the pq.sha256 hash path and the pq.modq
//                             Barrett slot.
//
// Every Backend is a thin facade over a lac::KernelRegistry profile
// (lac/registry.h): the factory builds (or adopts) a registry, and the
// slot's active callables are copied into the legacy fields below so the
// scheme layer keeps consuming plain std::functions. optimized() serves
// the modeled profile (golden software + pq cycle model);
// optimized_with()/with_hasher()/optimized_from() inject implementations
// through the registry's KAT-gated substitution path (e.g. the
// cycle-accurate RTL callables of perf/rtl_backend — results must be
// bit-identical; tests enforce it).
#pragma once

#include <memory>

#include "bch/decoder.h"
#include "common/status.h"
#include "hash/sha256.h"
#include "lac/gen_a.h"
#include "lac/registry.h"
#include "poly/split_mul.h"

namespace lacrv::lac {

struct Backend {
  enum class Kind { kReference, kReferenceConstBch, kOptimized };

  Kind kind = Kind::kReference;
  const char* name = "ref";
  HashImpl hash_impl = HashImpl::kSoftware;
  bch::Flavor bch_flavor = bch::Flavor::kSubmission;
  /// Set iff kind == kOptimized: the MUL TER unit (cost model included).
  poly::MulTer512 mul_unit;
  /// Set iff kind == kOptimized: the MUL CHIEN stage (cost model included).
  bch::ChienStage chien;
  /// Optional functional hash implementation (e.g. the RTL SHA-256 core).
  /// Null means the software hash::Sha256 computes digests (the default;
  /// hash_impl then only selects the cycle model).
  hash::HashFn hasher;
  /// Hardened mode: every hasher digest is cross-checked against the
  /// software hash; on mismatch the KEM uses the software digest and the
  /// *_checked entry points report the detected fault.
  bool verify_hash = false;
  /// Set iff kind == kOptimized: the MOD q reduction slot (pq.modq).
  /// Not on the KEM hot path (which reduces with add_mod/sub_mod), but
  /// drives the poly/ring general-multiplication reduction path and is
  /// injectable/breaker-tracked exactly like the other three units.
  poly::ModqFn modq;
  /// The registry profile behind the fields above (null for the
  /// reference backends, which never dispatch through the slots).
  std::shared_ptr<KernelRegistry> registry;

  static Backend reference();
  static Backend reference_const_bch();
  static Backend optimized();
  /// Optimized backend with caller-provided accelerator implementations
  /// (e.g. the RTL models driven through the ISS conventions). Each
  /// injected unit must pass a known-answer self-test against the golden
  /// software model at construction; a failing unit is replaced by the
  /// modeled software implementation and recorded in `report` (the
  /// degradation ladder of docs/robustness.md).
  static Backend optimized_with(poly::MulTer512 mul_unit,
                                bch::ChienStage chien,
                                DegradeReport* report = nullptr);
  /// Optimized backend over an explicit registry profile whose slots the
  /// caller already populated through KernelRegistry::inject_* (the
  /// per-slot mix path of the matrix test, the fault campaign and the
  /// --mix bench flags).
  static Backend optimized_from(std::shared_ptr<KernelRegistry> registry);

  /// Install a functional hash implementation after a KAT self-test; a
  /// failing hasher is discarded (software hash keeps serving, recorded
  /// in `report`). `verify` enables the per-digest hardened cross-check.
  Backend& with_hasher(hash::HashFn hasher, bool verify = false,
                       DegradeReport* report = nullptr);

  /// Re-copy the registry slots' active callables into the legacy
  /// fields (after direct slot mutation through registry).
  void sync_from_registry();
};

}  // namespace lacrv::lac
