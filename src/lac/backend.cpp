#include "lac/backend.h"

#include "common/costs.h"

namespace lacrv::lac {
namespace {

/// Number of trailing all-zero coefficients the software would not bother
/// transferring (the split path loads only the 256 significant
/// coefficients of each padded half).
template <typename Vec>
std::size_t significant_length(const Vec& v) {
  std::size_t len = v.size();
  while (len > 0 && v[len - 1] == 0) --len;
  return len;
}

}  // namespace

poly::MulTer512 modeled_mul_ter() {
  return [](const poly::Ternary& a, const poly::Coeffs& b, bool negacyclic,
            CycleLedger* ledger) {
    const std::size_t n = a.size();
    // Operand transfer: 5 general + 5 ternary coefficients per pq.mul_ter
    // issue; only the significant prefix is loaded (split calls transfer
    // 256 coefficients into the zero-initialised unit).
    const std::size_t sig =
        std::max(significant_length(a), significant_length(b));
    const std::size_t load_chunks =
        (std::max<std::size_t>(sig, 1) + cost::kMulTerCoeffsPerLoad - 1) /
        cost::kMulTerCoeffsPerLoad;
    const std::size_t read_chunks =
        (n + cost::kMulTerCoeffsPerRead - 1) / cost::kMulTerCoeffsPerRead;
    charge(ledger, cost::kKernelCallOverhead +
                       load_chunks * cost::kMulTerLoadChunk +
                       cost::kMulTerStartOverhead + n /* compute cycles */ +
                       read_chunks * cost::kMulTerReadChunk);
    return poly::mul_ter_sw(a, b, negacyclic);
  };
}

bch::ChienStage modeled_chien() {
  return [](const bch::CodeSpec& spec, const bch::Locator& loc,
            CycleLedger* ledger) {
    const u64 points = static_cast<u64>(spec.chien_last - spec.chien_first + 1);
    const u64 groups = static_cast<u64>(spec.t) / 4;  // 4 for t=16, 2 for t=8
    charge(ledger,
           cost::kKernelCallOverhead + groups * cost::kChienHwLambdaLoad +
               points * (groups * (cost::kChienHwGroupCompute +
                                   cost::kChienHwGroupControl) +
                         cost::kChienHwPointOverhead));
    // Functional result identical to the software search; only the cycle
    // model differs. Pass a null ledger so no software costs are charged.
    return bch::chien_search(spec, loc, bch::Flavor::kConstantTime, nullptr);
  };
}

Backend Backend::reference() {
  Backend b;
  b.kind = Kind::kReference;
  b.name = "ref";
  b.hash_impl = HashImpl::kSoftware;
  b.bch_flavor = bch::Flavor::kSubmission;
  return b;
}

Backend Backend::reference_const_bch() {
  Backend b;
  b.kind = Kind::kReferenceConstBch;
  b.name = "const-bch";
  b.hash_impl = HashImpl::kSoftware;
  b.bch_flavor = bch::Flavor::kConstantTime;
  return b;
}

Backend Backend::optimized() {
  return optimized_with(modeled_mul_ter(), modeled_chien());
}

Backend Backend::optimized_with(poly::MulTer512 mul_unit,
                                bch::ChienStage chien) {
  Backend b;
  b.kind = Kind::kOptimized;
  b.name = "opt";
  b.hash_impl = HashImpl::kAccelerated;
  b.bch_flavor = bch::Flavor::kConstantTime;
  b.mul_unit = std::move(mul_unit);
  b.chien = std::move(chien);
  return b;
}

}  // namespace lacrv::lac
